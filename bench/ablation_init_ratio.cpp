// Ablation A5 (Section VII-B): convergence of the division tier is
// independent of the initial ratio; starting between 30 % and 50 % merely
// shortens the transient.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/greengpu/policy.h"

int main() {
  using namespace gg;
  bench::banner("ablation_init_ratio",
                "Section VII-B: initial division ratio independence");

  std::printf("\nworkload,initial_share_pct,converged_share_pct,convergence_iteration\n");
  for (const std::string workload : {"kmeans", "hotspot"}) {
    double converged[6];
    int idx = 0;
    for (double init : {0.0, 0.05, 0.30, 0.50, 0.80, 0.95}) {
      greengpu::GreenGpuParams params;
      params.division.initial_ratio = init;
      const auto r = greengpu::run_experiment(
          workload, greengpu::Policy::division_only(params), bench::default_options());
      converged[idx++] = r.final_ratio;
      std::printf("%s,%.0f,%.0f,%zu\n", workload.c_str(), init * 100.0,
                  r.final_ratio * 100.0, r.convergence_iteration);
    }
    double lo = converged[0], hi = converged[0];
    for (double c : converged) {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    const std::string msg = workload + ": converged shares agree within one 5% step";
    bench::check(hi - lo <= 0.051, msg.c_str());
  }
  return 0;
}
