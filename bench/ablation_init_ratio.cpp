// Ablation A5 (Section VII-B): convergence of the division tier is
// independent of the initial ratio; starting between 30 % and 50 % merely
// shortens the transient.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/greengpu/policy.h"

int main(int argc, char** argv) {
  using namespace gg;
  bench::banner("ablation_init_ratio",
                "Section VII-B: initial division ratio independence");

  const std::vector<std::string> names = {"kmeans", "hotspot"};
  const std::vector<double> inits = {0.0, 0.05, 0.30, 0.50, 0.80, 0.95};
  bench::ExperimentBatch batch;
  for (const auto& workload : names) {
    for (double init : inits) {
      greengpu::GreenGpuParams params;
      params.division.initial_ratio = init;
      batch.add(workload, greengpu::Policy::division_only(params),
                bench::default_options());
    }
  }
  batch.run(bench::jobs_from_argv(argc, argv));

  std::printf("\nworkload,initial_share_pct,converged_share_pct,convergence_iteration\n");
  std::size_t slot = 0;
  for (const auto& workload : names) {
    double lo = 1.0, hi = 0.0;
    for (double init : inits) {
      const auto& r = batch[slot++];
      lo = std::min(lo, r.final_ratio);
      hi = std::max(hi, r.final_ratio);
      std::printf("%s,%.0f,%.0f,%zu\n", workload.c_str(), init * 100.0,
                  r.final_ratio * 100.0, r.convergence_iteration);
    }
    const std::string msg = workload + ": converged shares agree within one 5% step";
    bench::check(hi - lo <= 0.051, msg.c_str());
  }
  return 0;
}
