// Extension bench: the asynchronous-stack hypothetical, measured.
//
// Section VII-A could only *emulate* CPU throttling because the CUDA 3.2
// synchronous APIs pin the CPU at 100 % while the GPU computes.  The
// simulator can simply run the asynchronous stack (no busy-wait: the CPU
// truly idles between its chunks), letting ondemand throttle for real —
// a direct measurement of the scenario behind Fig. 6c.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/greengpu/policy.h"
#include "src/workloads/registry.h"

int main(int argc, char** argv) {
  using namespace gg;
  bench::banner("ablation_async_stack",
                "Fig. 6c revisited: emulated vs actually-asynchronous stack");

  // Three cells per workload: best-performance baseline, synchronous stack
  // with scaling (also provides the Fig. 6c emulation), asynchronous stack
  // with scaling.
  const std::vector<std::string> names = workloads::all_workload_names();
  greengpu::RunOptions async_options = bench::default_options();
  async_options.sync_spin = false;
  bench::ExperimentBatch batch;
  for (const auto& name : names) {
    batch.add(name, greengpu::Policy::best_performance(), bench::default_options());
    batch.add(name, greengpu::Policy::scaling_only(), bench::default_options());
    batch.add(name, greengpu::Policy::scaling_only(), async_options);
  }
  batch.run(bench::jobs_from_argv(argc, argv));

  std::printf(
      "\nworkload,sync_saving_pct,emulated_cpu_gpu_saving_pct,async_measured_saving_pct\n");

  RunningStats sync_s, emu_s, async_s;
  for (std::size_t w = 0; w < names.size(); ++w) {
    const auto& base = batch[3 * w];
    const auto& sync = batch[3 * w + 1];
    const auto& async = batch[3 * w + 2];

    const double base_e = base.total_energy().get();
    const double s1 = bench::saving_percent(base_e, sync.total_energy().get());
    const double s2 = bench::saving_percent(base_e, sync.emulated_cpu_throttle_energy().get());
    const double s3 = bench::saving_percent(base_e, async.total_energy().get());
    sync_s.add(s1);
    emu_s.add(s2);
    async_s.add(s3);
    std::printf("%s,%.2f,%.2f,%.2f\n", names[w].c_str(), s1, s2, s3);
  }

  std::printf("\n# averages\n");
  std::printf("synchronous stack, GPU scaling only:        %.2f%%\n", sync_s.mean());
  std::printf("emulated CPU throttling (paper's Fig. 6c):  %.2f%%\n", emu_s.mean());
  std::printf("asynchronous stack, measured:               %.2f%%\n", async_s.mean());

  std::printf("\n# shape checks\n");
  bench::check(emu_s.mean() > sync_s.mean(),
               "CPU throttling adds savings on top of GPU scaling (Fig. 6c)");
  bench::check(async_s.mean() >= emu_s.mean(),
               "a real asynchronous stack saves at least what the emulation "
               "credits (the emulation keeps the spin loop; async removes it)");
  return 0;
}
