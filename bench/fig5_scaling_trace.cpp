// Figure 5: runtime trace of the WMA frequency-scaling tier on
// streamcluster — utilizations, enforced frequencies and power, against the
// best-performance baseline.  The run starts at the driver-default lowest
// clocks; the scaling interval is 3 s (Section VII-A).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/greengpu/policy.h"

int main(int argc, char** argv) {
  gg::bench::expect_no_flags(argc, argv);
  using namespace gg;
  bench::banner("fig5_scaling_trace",
                "Fig. 5 (a-c), frequency scaling trace on streamcluster");

  greengpu::RunOptions options = bench::default_options();
  options.record_trace = true;
  options.trace_period = Seconds{3.0};

  const auto scaled =
      greengpu::run_experiment("streamcluster", greengpu::Policy::scaling_only(), options);
  const auto base = greengpu::run_experiment("streamcluster",
                                             greengpu::Policy::best_performance(), options);

  std::printf("\n# Fig. 5a/5b: utilizations and enforced frequencies (3 s samples)\n");
  std::printf("time_s,core_util,core_freq_mhz,mem_util,mem_freq_mhz\n");
  for (const auto& s : scaled.trace) {
    std::printf("%.0f,%.2f,%.0f,%.2f,%.0f\n", s.time.get(), s.gpu_core_util,
                s.gpu_core_freq.get(), s.gpu_mem_util, s.gpu_mem_freq.get());
  }

  std::printf("\n# Fig. 5c: GPU power, scaling vs best-performance\n");
  std::printf("time_s,power_scaling_W,power_best_performance_W\n");
  const std::size_t n = std::min(scaled.trace.size(), base.trace.size());
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("%.0f,%.1f,%.1f\n", scaled.trace[i].time.get(),
                scaled.trace[i].gpu_power.get(), base.trace[i].gpu_power.get());
  }

  std::printf("\n# summary\n");
  std::printf("exec time: scaling %.1f s vs best-performance %.1f s (%.2f%% longer)\n",
              scaled.exec_time.get(), base.exec_time.get(),
              100.0 * (scaled.exec_time.get() / base.exec_time.get() - 1.0));
  std::printf("GPU energy: scaling %.0f J vs best-performance %.0f J (%.2f%% saving)\n",
              scaled.gpu_energy.get(), base.gpu_energy.get(),
              bench::saving_percent(base.gpu_energy.get(), scaled.gpu_energy.get()));

  // Paper anchors: frequencies follow utilizations; memory converges to
  // 820 MHz (below the 900 MHz peak); power is lower throughout with similar
  // execution time.
  double final_mem = scaled.trace.empty() ? 0.0 : scaled.trace.back().gpu_mem_freq.get();
  std::size_t lower_power_samples = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (scaled.trace[i].gpu_power.get() <= base.trace[i].gpu_power.get() + 1e-9) {
      ++lower_power_samples;
    }
  }
  bench::check(final_mem <= 820.0 + 1e-9 && final_mem >= 740.0,
               "memory frequency converges below peak, to ~820 MHz (Fig. 5b)");
  bench::check(lower_power_samples >= n * 9 / 10,
               "scaling power <= best-performance power in >=90% of samples (Fig. 5c)");
  bench::check(scaled.exec_time.get() < base.exec_time.get() * 1.05,
               "similar execution time (Fig. 5c)");
  return 0;
}
