// Shared helpers for the figure-regeneration benches.
//
// Every bench prints (a) a CSV block that regenerates the paper figure's
// series and (b) a human-readable summary comparing the measured shape with
// the numbers the paper reports.  Absolute joules are not expected to match
// the 2012 testbed; the shapes are (see DESIGN.md section 5).
//
// Benches accept `--jobs N` (0 = all cores, default 1) and fan their
// independent experiment cells across a gg::common::JobPool.  Cells write to
// index-determined slots and all printing happens in a serial post-pass, so
// the output is byte-identical for every jobs value; only wall-clock changes.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/common/flags.h"
#include "src/common/job_pool.h"
#include "src/greengpu/runner.h"

namespace gg::bench {

inline greengpu::RunOptions default_options() {
  greengpu::RunOptions o;
  o.pool_workers = 0;  // use all host cores for the real kernels
  return o;
}

/// A mistyped flag exits 2 with a one-line error instead of silently running
/// the bench with its default — a sweep that quietly ignored --jobs=32 costs
/// hours before anyone notices.
[[noreturn]] inline void die_unknown(const std::invalid_argument& e) {
  std::fprintf(stderr, "%s\n", e.what());
  std::exit(2);
}

/// For benches with no options at all: any flag is unknown.
inline void expect_no_flags(int argc, const char* const* argv) {
  try {
    const Flags flags(argc, argv);
    flags.reject_unknown();
  } catch (const std::invalid_argument& e) {
    die_unknown(e);
  }
}

/// Parse `--jobs N` (0 = all cores; default 1 = serial).
inline std::size_t jobs_from_argv(int argc, const char* const* argv) {
  try {
    const Flags flags(argc, argv);
    const long long jobs = flags.get_int("jobs", 1);
    flags.reject_unknown();
    return jobs < 0 ? 0 : static_cast<std::size_t>(jobs);
  } catch (const std::invalid_argument& e) {
    die_unknown(e);
  }
}

/// Run fn(i) for i in [0, n) across `jobs` workers.  Results must go to
/// index-determined slots (see JobPool's determinism contract).
inline void parallel_cells(std::size_t jobs, std::size_t n,
                           const std::function<void(std::size_t)>& fn) {
  common::JobPool pool(jobs);
  pool.run(n, fn);
}

/// Deferred batch of experiment cells: add() every cell up front, run() them
/// across the pool, then read results by slot while printing serially.
class ExperimentBatch {
 public:
  /// Queue a cell; returns its result slot.
  std::size_t add(std::string workload, greengpu::Policy policy,
                  greengpu::RunOptions options) {
    cells_.push_back(Cell{std::move(workload), std::move(policy), std::move(options)});
    return cells_.size() - 1;
  }

  void run(std::size_t jobs) {
    results_.resize(cells_.size());
    parallel_cells(jobs, cells_.size(), [this](std::size_t i) {
      const Cell& c = cells_[i];
      results_[i] = greengpu::run_experiment(c.workload, c.policy, c.options);
    });
  }

  [[nodiscard]] const greengpu::ExperimentResult& operator[](std::size_t slot) const {
    return results_.at(slot);
  }

  [[nodiscard]] std::size_t size() const { return cells_.size(); }

 private:
  struct Cell {
    std::string workload;
    greengpu::Policy policy;
    greengpu::RunOptions options;
  };
  std::vector<Cell> cells_;
  std::vector<greengpu::ExperimentResult> results_;
};

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

inline double saving_percent(double baseline, double value) {
  return 100.0 * (1.0 - value / baseline);
}

inline void check(bool ok, const char* what) {
  std::printf("[%s] %s\n", ok ? "OK" : "MISS", what);
}

}  // namespace gg::bench
