// Shared helpers for the figure-regeneration benches.
//
// Every bench prints (a) a CSV block that regenerates the paper figure's
// series and (b) a human-readable summary comparing the measured shape with
// the numbers the paper reports.  Absolute joules are not expected to match
// the 2012 testbed; the shapes are (see DESIGN.md section 5).
#pragma once

#include <cstdio>
#include <string>

#include "src/greengpu/runner.h"

namespace gg::bench {

inline greengpu::RunOptions default_options() {
  greengpu::RunOptions o;
  o.pool_workers = 0;  // use all host cores for the real kernels
  return o;
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

inline double saving_percent(double baseline, double value) {
  return 100.0 * (1.0 - value / baseline);
}

inline void check(bool ok, const char* what) {
  std::printf("[%s] %s\n", ok ? "OK" : "MISS", what);
}

}  // namespace gg::bench
