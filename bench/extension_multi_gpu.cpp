// Extension bench: GreenGPU scaled out to multiple GPUs.
//
// The paper's testbed has one GeForce 8800, but its application structure is
// written for N ("one pthread for one GPU", Section VI).  This bench runs
// the divisible workloads on 1, 2 and 4 simulated cards and reports how the
// division tier spreads work and what it buys in time and energy.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/greengpu/multi_runner.h"

namespace {

using namespace gg;

void sweep(const std::string& workload) {
  std::printf("\n# %s across GPU counts (multi-profiling divider + per-card WMA)\n",
              workload.c_str());
  std::printf("gpus,exec_time_s,total_energy_J,cpu_share_pct,per_gpu_share_pct\n");
  for (std::size_t n : {1u, 2u, 4u}) {
    const auto r = greengpu::run_multi_experiment(
        workload, n, greengpu::MultiPolicy::green_gpu(greengpu::MultiDividerKind::kProfiling));
    double gpu_share = 0.0;
    for (std::size_t g = 1; g < r.final_shares.size(); ++g) gpu_share += r.final_shares[g];
    std::printf("%zu,%.1f,%.0f,%.1f,%.1f\n", n, r.exec_time.get(),
                r.total_energy().get(), r.final_shares[0] * 100.0,
                gpu_share / static_cast<double>(n) * 100.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  gg::bench::expect_no_flags(argc, argv);
  bench::banner("extension_multi_gpu",
                "Section VI extension: the pthread-per-GPU structure at N > 1");

  sweep("kmeans");
  sweep("hotspot");

  std::printf("\n# divider comparison on kmeans with 2 GPUs\n");
  std::printf("divider,exec_time_s,total_energy_J,shares\n");
  for (auto kind : {greengpu::MultiDividerKind::kStep, greengpu::MultiDividerKind::kProfiling}) {
    const auto r = greengpu::run_multi_experiment(
        "kmeans", 2, greengpu::MultiPolicy::division_only(kind));
    std::printf("%s,%.1f,%.0f,%.3f/%.3f/%.3f\n",
                kind == greengpu::MultiDividerKind::kStep ? "multi-step" : "multi-profiling",
                r.exec_time.get(), r.total_energy().get(), r.final_shares[0],
                r.final_shares[1], r.final_shares[2]);
  }

  std::printf("\n# shape checks\n");
  const auto one = greengpu::run_multi_experiment(
      "kmeans", 1, greengpu::MultiPolicy::green_gpu(greengpu::MultiDividerKind::kProfiling));
  const auto two = greengpu::run_multi_experiment(
      "kmeans", 2, greengpu::MultiPolicy::green_gpu(greengpu::MultiDividerKind::kProfiling));
  const auto four = greengpu::run_multi_experiment(
      "kmeans", 4, greengpu::MultiPolicy::green_gpu(greengpu::MultiDividerKind::kProfiling));
  bench::check(two.exec_time.get() < one.exec_time.get() * 0.6 &&
                   four.exec_time.get() < two.exec_time.get() * 0.7,
               "near-linear speedup from additional cards");
  bench::check(two.final_shares[0] < one.final_shares[0],
               "the CPU's relative share shrinks as GPUs are added");
  bench::check(std::abs(two.final_shares[1] - two.final_shares[2]) < 0.01,
               "identical cards receive identical shares");
  // Energy per unit of work improves despite an extra card's idle power:
  // the second card's throughput outweighs its overhead for this workload.
  bench::check(two.total_energy().get() < one.total_energy().get(),
               "two cards finish the fixed job with less total energy");
  return 0;
}
