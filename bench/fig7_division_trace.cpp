// Figure 7: workload-division traces for kmeans and hotspot — per-iteration
// CPU share and per-side execution times — plus the Section VII-B static
// sweep comparison against the energy-optimal division.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/greengpu/policy.h"

namespace {

using namespace gg;

greengpu::ExperimentResult trace_for(const std::string& name, double initial_ratio) {
  greengpu::GreenGpuParams params;
  params.division.initial_ratio = initial_ratio;
  return greengpu::run_experiment(name, greengpu::Policy::division_only(params),
                                  bench::default_options());
}

void print_trace(const char* fig, const std::string& name,
                 const greengpu::ExperimentResult& r) {
  std::printf("\n# Fig. %s: %s division trace (initial CPU share %.0f%%)\n", fig,
              name.c_str(), r.iterations.front().cpu_ratio * 100.0);
  std::printf("iteration,cpu_share_pct,cpu_time_s,gpu_time_s\n");
  for (const auto& it : r.iterations) {
    std::printf("%zu,%.0f,%.1f,%.1f\n", it.index, it.cpu_ratio * 100.0,
                it.cpu_time.get(), it.gpu_time.get());
  }
  std::printf("# converged to %.0f/%.0f (CPU/GPU) after iteration %zu\n",
              r.final_ratio * 100.0, (1.0 - r.final_ratio) * 100.0,
              r.convergence_iteration);
}

/// Best static division by energy over a 5 % grid (the paper's oracle).
std::pair<double, greengpu::ExperimentResult> static_optimum(const std::string& name) {
  double best_r = 0.0;
  greengpu::ExperimentResult best{};
  double best_e = 1e300;
  for (int pct = 0; pct <= 90; pct += 5) {
    auto r = greengpu::run_experiment(name, greengpu::Policy::static_division(pct / 100.0),
                                      bench::default_options());
    if (r.total_energy().get() < best_e) {
      best_e = r.total_energy().get();
      best_r = pct / 100.0;
      best = std::move(r);
    }
  }
  return {best_r, std::move(best)};
}

}  // namespace

int main(int argc, char** argv) {
  gg::bench::expect_no_flags(argc, argv);
  bench::banner("fig7_division_trace",
                "Fig. 7 (a, b) + Section VII-B static-optimum comparison");

  const auto kmeans = trace_for("kmeans", 0.30);
  print_trace("7a", "kmeans", kmeans);
  const auto hotspot = trace_for("hotspot", 0.30);
  print_trace("7b", "hotspot", hotspot);

  std::printf("\n# Section VII-B: static sweep vs dynamic division\n");
  const auto [kmeans_opt_r, kmeans_opt] = static_optimum("kmeans");
  std::printf(
      "kmeans: energy-optimal static %.0f/%.0f (paper: 15/85); dynamic converges to "
      "%.0f/%.0f (paper: 20/80)\n",
      kmeans_opt_r * 100.0, (1.0 - kmeans_opt_r) * 100.0, kmeans.final_ratio * 100.0,
      (1.0 - kmeans.final_ratio) * 100.0);
  const double kmeans_slower =
      100.0 * (kmeans.exec_time.get() / kmeans_opt.exec_time.get() - 1.0);
  std::printf("kmeans: dynamic division is %.2f%% slower than the optimum (paper: 5.45%%)\n",
              kmeans_slower);

  const auto [hotspot_opt_r, hotspot_opt] = static_optimum("hotspot");
  std::printf(
      "hotspot: energy-optimal static %.0f/%.0f (paper: 50/50); dynamic converges to "
      "%.0f/%.0f (paper: 50/50)\n",
      hotspot_opt_r * 100.0, (1.0 - hotspot_opt_r) * 100.0, hotspot.final_ratio * 100.0,
      (1.0 - hotspot.final_ratio) * 100.0);
  const double hotspot_saving = bench::saving_percent(
      greengpu::run_experiment("hotspot", greengpu::Policy::best_performance(),
                               bench::default_options())
          .total_energy()
          .get(),
      hotspot.total_energy().get());
  const double hotspot_opt_saving = bench::saving_percent(
      greengpu::run_experiment("hotspot", greengpu::Policy::best_performance(),
                               bench::default_options())
          .total_energy()
          .get(),
      hotspot_opt.total_energy().get());
  std::printf("hotspot: dynamic attains %.1f%% of the optimal static saving (paper: 99%%)\n",
              100.0 * hotspot_saving / hotspot_opt_saving);

  std::printf("\n# shape checks\n");
  bench::check(kmeans.convergence_iteration <= 6,
               "kmeans converges within a handful of iterations (Fig. 7a)");
  bench::check(std::abs(kmeans.final_ratio - kmeans_opt_r) <= 0.051,
               "kmeans dynamic division within one step of the optimum");
  bench::check(std::abs(hotspot.final_ratio - 0.50) < 1e-9,
               "hotspot converges exactly to 50/50 (Fig. 7b)");
  bench::check(kmeans_slower < 10.0,
               "dynamic division within ~6% of the optimal execution time");

  // Initial-ratio independence (Section VII-B).
  const auto from_low = trace_for("kmeans", 0.05);
  const auto from_high = trace_for("kmeans", 0.80);
  std::printf("\nkmeans converged share from r0=5%%: %.0f%%, from r0=80%%: %.0f%%\n",
              from_low.final_ratio * 100.0, from_high.final_ratio * 100.0);
  bench::check(std::abs(from_low.final_ratio - from_high.final_ratio) <= 0.051,
               "convergence independent of the initial ratio (Section VII-B)");
  return 0;
}
