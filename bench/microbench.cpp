// Hot-path microbenchmarks (google-benchmark): controller update costs, the
// discrete-event core, and the device model — the pieces whose overhead the
// paper argues is "light-weight" (Sections V and VI).

#include <benchmark/benchmark.h>

#include <sstream>

#include "src/common/json.h"
#include "src/common/rng.h"
#include "src/cudalite/nvml.h"
#include "src/cudalite/nvsettings.h"
#include "src/cudalite/thread_pool.h"
#include "src/greengpu/division.h"
#include "src/greengpu/runner.h"
#include "src/greengpu/loss.h"
#include "src/greengpu/weight_table.h"
#include "src/greengpu/wma_scaler.h"
#include "src/sim/event_queue.h"
#include "src/sim/gpu_device.h"
#include "src/sim/platform.h"
#include "src/workloads/sobol.h"

namespace {

using namespace gg;
using namespace gg::literals;

std::vector<double> losses(double u, double alpha) {
  const auto umeans = greengpu::umean_table(sim::geforce8800_core_table());
  std::vector<double> out(umeans.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = greengpu::component_loss(u, umeans[i], alpha);
  }
  return out;
}

void BM_WmaUpdate(benchmark::State& state) {
  greengpu::WeightTable table(6, 6);
  const auto cl = losses(0.63, 0.15);
  const auto ml = losses(0.41, 0.02);
  for (auto _ : state) {
    table.update(cl, ml, 0.3, 0.2, 1e-2);
    benchmark::DoNotOptimize(table.argmax());
  }
}
BENCHMARK(BM_WmaUpdate);

void BM_FixedWmaUpdate(benchmark::State& state) {
  greengpu::FixedWeightTable table(6, 6);
  const auto cl = losses(0.63, 0.15);
  const auto ml = losses(0.41, 0.02);
  for (auto _ : state) {
    table.update(cl, ml, 0.3, 0.2);
    benchmark::DoNotOptimize(table.argmax());
  }
}
BENCHMARK(BM_FixedWmaUpdate);

/// Pre-blended loss rows, as QuantizedLossTable hands them to the fused path.
std::vector<double> scaled_losses(double u, double alpha, double scale) {
  auto out = losses(u, alpha);
  for (double& x : out) x *= scale;
  return out;
}

void BM_WmaUpdateFused(benchmark::State& state) {
  greengpu::WeightTable table(6, 6);
  const auto cl = scaled_losses(0.63, 0.15, 0.3);
  const auto ml = scaled_losses(0.41, 0.02, 0.7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.update_fused(cl.data(), ml.data(), 0.8, 1e-2));
  }
}
BENCHMARK(BM_WmaUpdateFused);

void BM_FixedWmaUpdateFused(benchmark::State& state) {
  greengpu::FixedWeightTable table(6, 6);
  const auto cl = scaled_losses(0.63, 0.15, 0.3);
  const auto ml = scaled_losses(0.41, 0.02, 0.7);
  const std::uint32_t one_minus_beta_raw = UQ08::from_double(0.8).raw();
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.update_fused(cl.data(), ml.data(), one_minus_beta_raw));
  }
}
BENCHMARK(BM_FixedWmaUpdateFused);

/// Full Algorithm 1 step (NVML read + loss rows + weight update + argmax +
/// actuation) through the fused fast path vs the straight-line reference.
/// Ring retention on both so neither pays unbounded log growth.
void scaler_step_bench(benchmark::State& state, bool reference) {
  sim::Platform platform;
  cudalite::NvmlDevice nvml(platform);
  cudalite::NvSettings settings(platform);
  greengpu::WmaParams params;
  params.reference_impl = reference;
  greengpu::GpuFrequencyScaler scaler(nvml, settings, params);
  scaler.set_record(greengpu::RecordOptions{greengpu::RecordMode::kRing, 64});
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scaler.step(Seconds{t}));
    t += 3.0;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ScalerStepFast(benchmark::State& state) { scaler_step_bench(state, false); }
BENCHMARK(BM_ScalerStepFast);

void BM_ScalerStepReference(benchmark::State& state) { scaler_step_bench(state, true); }
BENCHMARK(BM_ScalerStepReference);

void BM_LossComputation(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(losses(rng.uniform(), 0.15));
  }
}
BENCHMARK(BM_LossComputation);

void BM_DivisionStep(benchmark::State& state) {
  const greengpu::DivisionParams params;
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(greengpu::division_step(
        params, 0.30, Seconds{1.0 + rng.uniform()}, Seconds{1.0 + rng.uniform()}));
  }
}
BENCHMARK(BM_DivisionStep);

void BM_EventQueueScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < 1000; ++i) {
      q.schedule_in(Seconds{static_cast<double>(i)}, [] {});
    }
    q.run_until_empty();
    benchmark::DoNotOptimize(q.fired_count());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleFire);

void BM_EventQueueScheduleCancelFire(benchmark::State& state) {
  // Half the scheduled events are cancelled before any fire: the lazy-deleted
  // entries ride through every heap sift until compaction reclaims them.
  for (auto _ : state) {
    sim::EventQueue q;
    std::vector<sim::EventHandle> handles;
    handles.reserve(500);
    for (int i = 0; i < 1000; ++i) {
      sim::EventHandle h = q.schedule_in(Seconds{static_cast<double>(i)}, [] {});
      if (i & 1) handles.push_back(h);
    }
    for (auto& h : handles) h.cancel();
    q.run_until_empty();
    benchmark::DoNotOptimize(q.fired_count());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleCancelFire);

void BM_EventQueueCancelChurn(benchmark::State& state) {
  // DVFS-style rescheduling: a standing population of in-flight completions is
  // repeatedly cancelled and replaced, so cancelled entries vastly outnumber
  // live ones unless the queue compacts.
  constexpr std::size_t kPending = 512;
  constexpr int kRounds = 16;
  for (auto _ : state) {
    sim::EventQueue q;
    std::vector<sim::EventHandle> handles(kPending);
    double base = 1.0;
    for (std::size_t i = 0; i < kPending; ++i) {
      handles[i] = q.schedule_at(Seconds{base + static_cast<double>(i)}, [] {});
    }
    for (int round = 0; round < kRounds; ++round) {
      base += 1.0;
      for (std::size_t i = 0; i < kPending; ++i) {
        handles[i].cancel();
        handles[i] = q.schedule_at(Seconds{base + static_cast<double>(i)}, [] {});
      }
    }
    q.run_until_empty();
    benchmark::DoNotOptimize(q.fired_count());
  }
  state.SetItemsProcessed(state.iterations() * kPending * (kRounds + 1));
}
BENCHMARK(BM_EventQueueCancelChurn);

void BM_GpuKernelCycle(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    sim::GpuDevice gpu(q, sim::GpuSpec{}, sim::geforce8800_core_table(),
                       sim::geforce8800_memory_table(), 0, 0);
    sim::KernelWork w;
    w.units = 100.0;
    w.overhead_per_unit = Seconds{1e-3};
    for (int i = 0; i < 100; ++i) gpu.submit(w, {});
    q.run_until_empty();
    benchmark::DoNotOptimize(gpu.kernels_completed());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_GpuKernelCycle);

void BM_GpuMidKernelRetarget(benchmark::State& state) {
  sim::EventQueue q;
  sim::GpuDevice gpu(q, sim::GpuSpec{}, sim::geforce8800_core_table(),
                     sim::geforce8800_memory_table(), 0, 0);
  sim::KernelWork w;
  w.units = 1e9;
  w.core_cycles_per_unit = 1e6;
  gpu.submit(w, {});
  std::size_t level = 0;
  for (auto _ : state) {
    level = (level + 1) % 6;
    gpu.set_core_level(level);  // accounts + reschedules completion
  }
}
BENCHMARK(BM_GpuMidKernelRetarget);

void BM_SobolSample(benchmark::State& state) {
  workloads::Sobol sobol(4);
  std::uint64_t i = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sobol.sample(i, i & 3));
    ++i;
  }
}
BENCHMARK(BM_SobolSample);

void BM_JsonWriterReport(benchmark::State& state) {
  for (auto _ : state) {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    w.key("runs");
    w.begin_array();
    for (int i = 0; i < 36; ++i) {
      w.begin_object();
      w.kv("workload", "kmeans");
      w.kv("energy", 1024815.0 + i);
      w.kv("verified", true);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    benchmark::DoNotOptimize(os.str());
  }
}
BENCHMARK(BM_JsonWriterReport);

void BM_CampaignCell(benchmark::State& state) {
  // End-to-end cost of one campaign cell (the unit the parallel experiment
  // engine fans out): full lud run under the frequency-scaling policy.
  greengpu::RunOptions options;
  options.pool_workers = 1;
  for (auto _ : state) {
    const auto r = greengpu::run_experiment(
        "lud", greengpu::Policy::scaling_only(), options);
    benchmark::DoNotOptimize(r.total_energy().get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CampaignCell);

void BM_ThreadPoolParallelFor(benchmark::State& state) {
  cudalite::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::vector<double> xs(1 << 16, 1.0);
  for (auto _ : state) {
    pool.parallel_for_chunks(xs.size(), [&xs](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) xs[i] *= 1.0000001;
    });
    benchmark::DoNotOptimize(xs.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(xs.size()));
}
BENCHMARK(BM_ThreadPoolParallelFor)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
