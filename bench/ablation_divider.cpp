// Extension bench: division-algorithm comparison (Section V-B: the step
// heuristic is a quality/overhead trade-off; "sophisticated global optimal
// algorithms" can be integrated).
//
//   step            — the paper's tier 1 (5 % steps + oscillation safeguard)
//   qilin-profiling — Luk et al. [16]: rate-based jump to the time-balance
//   energy-model    — least-squares energy model, argmin over a fine grid

#include <cstdio>

#include "bench/bench_util.h"
#include "src/greengpu/policy.h"

namespace {

using namespace gg;

struct Row {
  greengpu::ExperimentResult result;
};

greengpu::ExperimentResult oracle(const std::string& workload) {
  double best = 1e300;
  greengpu::ExperimentResult best_r{};
  for (int pct = 0; pct <= 90; pct += 5) {
    auto r = greengpu::run_experiment(workload, greengpu::Policy::static_division(pct / 100.0),
                                      bench::default_options());
    if (r.total_energy().get() < best) {
      best = r.total_energy().get();
      best_r = std::move(r);
    }
  }
  return best_r;
}

}  // namespace

int main() {
  bench::banner("ablation_divider",
                "Section V-B extension: division-algorithm comparison");

  std::printf(
      "\nworkload,divider,final_share_pct,convergence_iteration,exec_time_s,"
      "total_energy_J,energy_vs_oracle_pct\n");

  for (const std::string workload : {"kmeans", "hotspot"}) {
    const auto best = oracle(workload);
    double step_energy = 0.0, qilin_energy = 0.0, model_energy = 0.0;
    for (auto kind : {greengpu::DividerKind::kStep, greengpu::DividerKind::kProfiling,
                      greengpu::DividerKind::kEnergyModel}) {
      const auto r = greengpu::run_experiment(
          workload, greengpu::Policy::division_with(kind), bench::default_options());
      const double gap =
          100.0 * (r.total_energy().get() / best.total_energy().get() - 1.0);
      if (kind == greengpu::DividerKind::kStep) step_energy = r.total_energy().get();
      if (kind == greengpu::DividerKind::kProfiling) qilin_energy = r.total_energy().get();
      if (kind == greengpu::DividerKind::kEnergyModel) model_energy = r.total_energy().get();
      std::printf("%s,%s,%.1f,%zu,%.1f,%.0f,%+.2f\n", workload.c_str(),
                  std::string(greengpu::to_string(kind)).c_str(), r.final_ratio * 100.0,
                  r.convergence_iteration, r.exec_time.get(), r.total_energy().get(), gap);
    }
    std::printf("# %s oracle (best static): %.0f J\n", workload.c_str(),
                best.total_energy().get());
    if (workload == "kmeans") {
      std::printf("\n# shape checks (kmeans)\n");
      bench::check(qilin_energy <= step_energy,
                   "rate-based profiling matches or beats the step heuristic");
      bench::check(model_energy <= step_energy * 1.001,
                   "the energy-model divider is no worse than the step heuristic");
      bench::check(step_energy <= best.total_energy().get() * 1.10,
                   "the paper's light-weight heuristic stays within 10% of the oracle");
    }
  }
  return 0;
}
