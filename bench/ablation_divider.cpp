// Extension bench: division-algorithm comparison (Section V-B: the step
// heuristic is a quality/overhead trade-off; "sophisticated global optimal
// algorithms" can be integrated).
//
//   step            — the paper's tier 1 (5 % steps + oscillation safeguard)
//   qilin-profiling — Luk et al. [16]: rate-based jump to the time-balance
//   energy-model    — least-squares energy model, argmin over a fine grid

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/greengpu/policy.h"

namespace {

using namespace gg;

constexpr greengpu::DividerKind kDividers[] = {greengpu::DividerKind::kStep,
                                               greengpu::DividerKind::kProfiling,
                                               greengpu::DividerKind::kEnergyModel};

struct WorkloadSlots {
  std::size_t oracle_first{0};  // 19 static-division cells (0..90% in 5% steps)
  std::size_t divider_first{0};
};

WorkloadSlots queue_workload(bench::ExperimentBatch& batch, const std::string& workload) {
  WorkloadSlots slots;
  slots.oracle_first = batch.size();
  for (int pct = 0; pct <= 90; pct += 5) {
    batch.add(workload, greengpu::Policy::static_division(pct / 100.0),
              bench::default_options());
  }
  slots.divider_first = batch.size();
  for (auto kind : kDividers) {
    batch.add(workload, greengpu::Policy::division_with(kind), bench::default_options());
  }
  return slots;
}

const greengpu::ExperimentResult& oracle_best(const bench::ExperimentBatch& batch,
                                              const WorkloadSlots& slots) {
  const greengpu::ExperimentResult* best = &batch[slots.oracle_first];
  for (std::size_t i = 1; i < 19; ++i) {
    const auto& r = batch[slots.oracle_first + i];
    if (r.total_energy().get() < best->total_energy().get()) best = &r;
  }
  return *best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("ablation_divider",
                "Section V-B extension: division-algorithm comparison");

  const std::vector<std::string> names = {"kmeans", "hotspot"};
  bench::ExperimentBatch batch;
  std::vector<WorkloadSlots> slots;
  for (const auto& workload : names) slots.push_back(queue_workload(batch, workload));
  batch.run(bench::jobs_from_argv(argc, argv));

  std::printf(
      "\nworkload,divider,final_share_pct,convergence_iteration,exec_time_s,"
      "total_energy_J,energy_vs_oracle_pct\n");

  for (std::size_t w = 0; w < names.size(); ++w) {
    const std::string& workload = names[w];
    const auto& best = oracle_best(batch, slots[w]);
    double step_energy = 0.0, qilin_energy = 0.0, model_energy = 0.0;
    for (std::size_t k = 0; k < std::size(kDividers); ++k) {
      const auto kind = kDividers[k];
      const auto& r = batch[slots[w].divider_first + k];
      const double gap =
          100.0 * (r.total_energy().get() / best.total_energy().get() - 1.0);
      if (kind == greengpu::DividerKind::kStep) step_energy = r.total_energy().get();
      if (kind == greengpu::DividerKind::kProfiling) qilin_energy = r.total_energy().get();
      if (kind == greengpu::DividerKind::kEnergyModel) model_energy = r.total_energy().get();
      std::printf("%s,%s,%.1f,%zu,%.1f,%.0f,%+.2f\n", workload.c_str(),
                  std::string(greengpu::to_string(kind)).c_str(), r.final_ratio * 100.0,
                  r.convergence_iteration, r.exec_time.get(), r.total_energy().get(), gap);
    }
    std::printf("# %s oracle (best static): %.0f J\n", workload.c_str(),
                best.total_energy().get());
    if (workload == "kmeans") {
      std::printf("\n# shape checks (kmeans)\n");
      bench::check(qilin_energy <= step_energy,
                   "rate-based profiling matches or beats the step heuristic");
      bench::check(model_energy <= step_energy * 1.001,
                   "the energy-model divider is no worse than the step heuristic");
      bench::check(step_energy <= best.total_energy().get() * 1.10,
                   "the paper's light-weight heuristic stays within 10% of the oracle");
    }
  }
  return 0;
}
