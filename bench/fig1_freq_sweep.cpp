// Figure 1: normalized execution time and relative energy under static GPU
// frequency sweeps, for core-bounded nbody and memory-bounded streamcluster.
//
//   1a/1b: memory frequency 900 -> 500 MHz, cores at peak.
//   1c/1d: core frequency 576 -> 300 MHz, memory at peak.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/greengpu/policy.h"
#include "src/sim/dvfs.h"

namespace {

using namespace gg;

struct SweepPoint {
  double freq_mhz;
  double norm_time;
  double rel_energy;
};

struct Sweep {
  std::string workload;
  bool sweep_memory;
  std::vector<std::size_t> slots;  // one per DVFS level
};

Sweep queue_sweep(bench::ExperimentBatch& batch, const std::string& workload,
                  bool sweep_memory) {
  const sim::DvfsTable table =
      sweep_memory ? sim::geforce8800_memory_table() : sim::geforce8800_core_table();
  Sweep sweep{workload, sweep_memory, {}};
  for (std::size_t level = 0; level < table.levels(); ++level) {
    const auto policy = sweep_memory ? greengpu::Policy::static_pair(0, level)
                                     : greengpu::Policy::static_pair(level, 0);
    sweep.slots.push_back(batch.add(workload, policy, bench::default_options()));
  }
  return sweep;
}

std::vector<SweepPoint> sweep_points(const bench::ExperimentBatch& batch,
                                     const Sweep& sweep) {
  const sim::DvfsTable table = sweep.sweep_memory ? sim::geforce8800_memory_table()
                                                  : sim::geforce8800_core_table();
  std::vector<SweepPoint> points;
  double base_time = 0.0, base_energy = 0.0;
  for (std::size_t level = 0; level < sweep.slots.size(); ++level) {
    const auto& r = batch[sweep.slots[level]];
    if (level == 0) {
      base_time = r.exec_time.get();
      base_energy = r.gpu_energy.get();
    }
    points.push_back(SweepPoint{table.frequency(level).get(),
                                r.exec_time.get() / base_time,
                                r.gpu_energy.get() / base_energy});
  }
  return points;
}

void print_sweep(const char* fig, const Sweep& sweep,
                 const std::vector<SweepPoint>& points) {
  std::printf("\n# Fig. %s: %s, %s frequency sweep (%s at peak)\n", fig,
              sweep.workload.c_str(), sweep.sweep_memory ? "memory" : "core",
              sweep.sweep_memory ? "cores" : "memory");
  std::printf("%s_mhz,normalized_time,relative_energy\n",
              sweep.sweep_memory ? "mem" : "core");
  for (const auto& p : points) {
    std::printf("%.0f,%.4f,%.4f\n", p.freq_mhz, p.norm_time, p.rel_energy);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("fig1_freq_sweep", "Fig. 1 (a-d), Section III-A case study");

  bench::ExperimentBatch batch;
  const Sweep nbody_mem_sweep = queue_sweep(batch, "nbody", /*sweep_memory=*/true);
  const Sweep sc_mem_sweep = queue_sweep(batch, "streamcluster", /*sweep_memory=*/true);
  const Sweep nbody_core_sweep = queue_sweep(batch, "nbody", /*sweep_memory=*/false);
  const Sweep sc_core_sweep = queue_sweep(batch, "streamcluster", /*sweep_memory=*/false);
  batch.run(bench::jobs_from_argv(argc, argv));

  const auto nbody_mem = sweep_points(batch, nbody_mem_sweep);
  const auto sc_mem = sweep_points(batch, sc_mem_sweep);
  const auto nbody_core = sweep_points(batch, nbody_core_sweep);
  const auto sc_core = sweep_points(batch, sc_core_sweep);

  print_sweep("1a/1b (nbody)", nbody_mem_sweep, nbody_mem);
  print_sweep("1a/1b (streamcluster)", sc_mem_sweep, sc_mem);
  print_sweep("1c/1d (nbody)", nbody_core_sweep, nbody_core);
  print_sweep("1c/1d (streamcluster)", sc_core_sweep, sc_core);

  // Shape checks against the paper's observations.
  std::printf("\n# shape checks\n");
  bench::check(nbody_mem.back().norm_time < 1.05,
               "nbody: memory throttling has negligible time impact (Fig. 1a)");
  bench::check(nbody_mem.back().rel_energy < 1.0,
               "nbody: memory throttling saves energy (Fig. 1b)");
  bench::check(nbody_core.back().norm_time > 1.3,
               "nbody: core throttling hurts performance (Fig. 1c)");
  bench::check(nbody_core.back().rel_energy > 1.0,
               "nbody: core throttling hurts energy (Fig. 1d)");
  bench::check(sc_core[3].norm_time < 1.05 && sc_core[3].rel_energy < 1.0,
               "SC: core at 410 MHz saves energy with negligible loss (Sec. III-A)");
  bench::check(sc_core[5].norm_time > 1.1,
               "SC: core below the knee hurts performance (Sec. III-A)");
  bench::check(sc_mem.back().norm_time > 1.1 && sc_mem.back().rel_energy > sc_mem[1].rel_energy,
               "SC: deep memory throttling impacts time and energy (Fig. 1a/1b)");
  return 0;
}
