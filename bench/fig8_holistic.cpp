// Figure 8: GreenGPU as a holistic solution — per-iteration energy of
// GreenGPU vs Division-only vs Frequency-scaling-only for hotspot and
// kmeans, plus the headline numbers of Section VII-C.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/greengpu/policy.h"
#include "src/workloads/registry.h"

namespace {

using namespace gg;

struct Runs {
  greengpu::ExperimentResult base;      // Rodinia default: all-GPU at peak
  greengpu::ExperimentResult scaling;   // frequency scaling only
  greengpu::ExperimentResult division;  // division only
  greengpu::ExperimentResult green;     // holistic
};

std::size_t queue_all(bench::ExperimentBatch& batch, const std::string& name) {
  const std::size_t first =
      batch.add(name, greengpu::Policy::best_performance(), bench::default_options());
  batch.add(name, greengpu::Policy::scaling_only(), bench::default_options());
  batch.add(name, greengpu::Policy::division_only(), bench::default_options());
  batch.add(name, greengpu::Policy::green_gpu(), bench::default_options());
  return first;
}

Runs collect_all(const bench::ExperimentBatch& batch, std::size_t first) {
  return Runs{batch[first], batch[first + 1], batch[first + 2], batch[first + 3]};
}

void print_figure(const char* fig, const std::string& name, const Runs& r) {
  std::printf("\n# Fig. %s: %s per-iteration energy and division share\n", fig,
              name.c_str());
  std::printf(
      "iteration,greengpu_share_pct,greengpu_J,division_J,frequency_scaling_J\n");
  const std::size_t n = std::min(
      {r.green.iterations.size(), r.division.iterations.size(), r.scaling.iterations.size()});
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("%zu,%.0f,%.0f,%.0f,%.0f\n", i,
                r.green.iterations[i].cpu_ratio * 100.0,
                r.green.iterations[i].total_energy().get(),
                r.division.iterations[i].total_energy().get(),
                r.scaling.iterations[i].total_energy().get());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("fig8_holistic", "Fig. 8 (a, b) + Section VII-C headline numbers");

  bench::ExperimentBatch batch;
  const std::size_t hotspot_first = queue_all(batch, "hotspot");
  const std::size_t kmeans_first = queue_all(batch, "kmeans");
  batch.run(bench::jobs_from_argv(argc, argv));

  const Runs hotspot = collect_all(batch, hotspot_first);
  print_figure("8a", "hotspot", hotspot);
  const Runs kmeans = collect_all(batch, kmeans_first);
  print_figure("8b", "kmeans", kmeans);

  auto summarize = [](const char* name, const Runs& r, double paper_vs_div,
                      double paper_vs_scaling) {
    const double vs_div = bench::saving_percent(r.division.total_energy().get(),
                                                r.green.total_energy().get());
    const double vs_scaling = bench::saving_percent(r.scaling.total_energy().get(),
                                                    r.green.total_energy().get());
    std::printf(
        "%s: GreenGPU saves %.2f%% vs Division (paper: %.2f%%) and %.2f%% vs "
        "Frequency-scaling (paper: %.2f%%)\n",
        name, vs_div, paper_vs_div, vs_scaling, paper_vs_scaling);
    return std::pair{vs_div, vs_scaling};
  };

  std::printf("\n# Section VII-C summary\n");
  const auto [h_div, h_scal] = summarize("hotspot", hotspot, 7.88, 28.76);
  const auto [k_div, k_scal] = summarize("kmeans", kmeans, 1.60, 12.05);

  const double total_default =
      hotspot.base.total_energy().get() + kmeans.base.total_energy().get();
  const double total_green =
      hotspot.green.total_energy().get() + kmeans.green.total_energy().get();
  const double holistic_saving = bench::saving_percent(total_default, total_green);
  std::printf(
      "GreenGPU vs Rodinia default (all-GPU, peak clocks), kmeans+hotspot: %.2f%% "
      "energy saving (paper: 21.04%%)\n",
      holistic_saving);

  const double time_delta =
      100.0 * ((hotspot.green.exec_time.get() + kmeans.green.exec_time.get()) /
                   (hotspot.division.exec_time.get() + kmeans.division.exec_time.get()) -
               1.0);
  std::printf("GreenGPU execution time vs division-only: %+.2f%% (paper: +1.7%%)\n",
              time_delta);

  std::printf("\n# shape checks\n");
  bench::check(h_div > 0 && k_div > 0, "GreenGPU beats Division on both workloads");
  bench::check(h_scal > 0 && k_scal > 0, "GreenGPU beats Frequency-scaling on both");
  bench::check(h_scal > h_div && k_scal > k_div,
               "division contributes more than scaling on this testbed (Sec. VII-C)");
  bench::check(holistic_saving > 10.0, "holistic saving is a double-digit effect");
  bench::check(time_delta < 5.0, "small execution-time cost vs division-only");
  return 0;
}
