// Ablation A7: controller robustness under injected platform faults.
//
// Sweeps a uniform fault probability across every channel of the
// sim::FaultInjector (dropped/stale/corrupt utilization reads, rejected/
// delayed/clamped clock writes, failed kernel launches and host chunks,
// plus rate-scaled thermal-throttle episodes) and
// runs the full GreenGPU policy both un-hardened (the paper's daemon, which
// assumes a perfect platform) and hardened (stale-sample hold, bounded
// retries, rerouting, watchdog).  The hardened stack must finish every
// iteration with verified output at every rate and report the energy/time
// cost of degradation; the un-hardened stack is expected to DNF (watchdog
// abort) or diverge once the rate is high enough.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/greengpu/policy.h"

namespace {

using namespace gg;

struct Outcome {
  bool completed{false};   // run finished (no watchdog abort)
  bool verified{false};    // results matched the scalar reference
  double exec_time{0.0};
  double energy{0.0};
  std::size_t degraded{0};     // degraded iterations
  std::size_t fault_events{0};
  std::uint64_t watchdog_trips{0};
};

Outcome run(const std::string& workload, double rate, bool hardened,
            std::uint64_t seed) {
  greengpu::GreenGpuParams params;
  params.hardening.enabled = hardened;
  greengpu::RunOptions options = bench::default_options();
  options.faults = sim::FaultConfig::uniform(rate, seed);
  if (rate > 0.0) {
    // Thermal-throttle episodes arrive more often as the platform gets
    // flakier: a few per run at 20%.  uniform() covers only the per-call
    // channels; episodes are time-driven, so scale the MTBF with the rate.
    options.faults.throttle_mtbf = Seconds{60.0 / rate};
    options.faults.throttle_duration = Seconds{30.0};
  }
  Outcome o;
  try {
    const auto r =
        greengpu::run_experiment(workload, greengpu::Policy::green_gpu(params), options);
    o.completed = true;
    o.verified = r.verified;
    o.exec_time = r.exec_time.get();
    o.energy = r.total_energy().get();
    o.degraded = r.degraded_iterations;
    o.fault_events = r.fault_events.size();
    o.watchdog_trips = r.watchdog_trips;
  } catch (const greengpu::ExperimentAborted&) {
    o.completed = false;  // DNF
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("ablation_fault_rate",
                "robustness extension: hardened vs un-hardened GreenGPU on a "
                "flaky platform");

  const std::string workload = "kmeans";
  constexpr std::uint64_t kSeed = 0x5EEDFA517ULL;
  const double rates[] = {0.0, 0.02, 0.05, 0.10, 0.20};

  // Cells catch ExperimentAborted (an expected DNF outcome), so this sweep
  // fans out over raw cell indices instead of ExperimentBatch.  Slot layout:
  // 2*rate_index + (0 = hardened, 1 = un-hardened).
  Outcome hardened_at[5];
  Outcome unhardened_at[5];
  bench::parallel_cells(bench::jobs_from_argv(argc, argv), 10, [&](std::size_t i) {
    const double rate = rates[i / 2];
    const bool hardened = (i % 2) == 0;
    (hardened ? hardened_at : unhardened_at)[i / 2] =
        run(workload, rate, hardened, kSeed);
  });

  std::printf(
      "\nworkload,fault_rate,policy,completed,verified,exec_time_s,total_energy_J,"
      "degraded_iters,fault_events,watchdog_trips\n");
  for (int idx = 0; idx < 5; ++idx) {
    const double rate = rates[idx];
    const Outcome& h = hardened_at[idx];
    const Outcome& u = unhardened_at[idx];
    std::printf("%s,%.2f,hardened,%d,%d,%.1f,%.0f,%zu,%zu,%llu\n", workload.c_str(),
                rate, h.completed ? 1 : 0, h.verified ? 1 : 0, h.exec_time, h.energy,
                h.degraded, h.fault_events,
                static_cast<unsigned long long>(h.watchdog_trips));
    std::printf("%s,%.2f,unhardened,%d,%d,%.1f,%.0f,%zu,%zu,%llu\n", workload.c_str(),
                rate, u.completed ? 1 : 0, u.verified ? 1 : 0, u.exec_time, u.energy,
                u.degraded, u.fault_events,
                static_cast<unsigned long long>(u.watchdog_trips));
  }

  std::printf("\n# robustness checks\n");
  bool hardened_all_ok = true;
  for (const Outcome& h : hardened_at) {
    hardened_all_ok = hardened_all_ok && h.completed && h.verified;
  }
  bench::check(hardened_all_ok,
               "hardened policy completes with verified output at every fault rate "
               "(including >= 10%)");
  bench::check(hardened_at[0].fault_events == 0,
               "rate 0 injects nothing (fault layer is a no-op when disabled)");
  bench::check(hardened_at[4].degraded > 0,
               "at 20% the hardened run reports the degradation it absorbed");
  bench::check(hardened_at[4].energy > 0.0 &&
                   hardened_at[4].exec_time >= hardened_at[0].exec_time,
               "degradation has a measurable perf cost (hardened 20% >= fault-free)");
  const Outcome& u_high = unhardened_at[3];  // 10%
  bench::check(!u_high.completed || !u_high.verified ||
                   u_high.exec_time > hardened_at[3].exec_time,
               "un-hardened policy at 10% DNFs, fails verify, or is slower than "
               "hardened");

  // Determinism: the whole sweep is a function of the seed.
  const Outcome again = run(workload, 0.10, /*hardened=*/true, kSeed);
  bench::check(again.completed == hardened_at[3].completed &&
                   again.energy == hardened_at[3].energy &&
                   again.exec_time == hardened_at[3].exec_time &&
                   again.fault_events == hardened_at[3].fault_events,
               "re-running with the same seed reproduces joules, time, and the "
               "fault schedule exactly");
  return 0;
}
