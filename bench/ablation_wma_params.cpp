// Ablation A2: sensitivity of the WMA scaler to its tuned constants
// (alpha_c = 0.15, alpha_m = 0.02, phi = 0.3, beta = 0.2 in the paper,
// derived from manual tuning — Section V-A notes this as future work).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/greengpu/policy.h"

namespace {

using namespace gg;

struct Outcome {
  double gpu_saving_pct;
  double slowdown_pct;
};

std::size_t queue_scaled(bench::ExperimentBatch& batch, const greengpu::WmaParams& wma,
                         const std::string& workload) {
  greengpu::GreenGpuParams params;
  params.wma = wma;
  return batch.add(workload, greengpu::Policy::scaling_only(params),
                   bench::default_options());
}

Outcome collect(const bench::ExperimentBatch& batch, std::size_t base_slot,
                std::size_t scaled_slot) {
  const auto& base = batch[base_slot];
  const auto& scaled = batch[scaled_slot];
  return Outcome{bench::saving_percent(base.gpu_energy.get(), scaled.gpu_energy.get()),
                 100.0 * (scaled.exec_time.get() / base.exec_time.get() - 1.0)};
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("ablation_wma_params", "Section V-A: alpha/phi/beta sensitivity");
  // lud: steady medium-core / low-memory utilization, the regime where the
  // energy-vs-performance blend actually moves the equilibrium level.
  const std::string workload = "lud";

  const std::vector<double> alpha_cores = {0.02, 0.05, 0.15, 0.40, 0.80};
  const std::vector<double> alpha_mems = {0.01, 0.02, 0.10, 0.40};
  const std::vector<double> phis = {0.1, 0.3, 0.5, 0.9};
  const std::vector<double> betas = {0.05, 0.2, 0.5, 0.9};

  // One shared baseline serves every sweep point.
  bench::ExperimentBatch batch;
  const std::size_t base_slot = batch.add(
      workload, greengpu::Policy::best_performance(), bench::default_options());
  std::vector<std::size_t> alpha_core_slots, alpha_mem_slots, phi_slots, beta_slots;
  for (double a : alpha_cores) {
    greengpu::WmaParams wma;
    wma.alpha_core = a;
    alpha_core_slots.push_back(queue_scaled(batch, wma, workload));
  }
  for (double a : alpha_mems) {
    greengpu::WmaParams wma;
    wma.alpha_mem = a;
    alpha_mem_slots.push_back(queue_scaled(batch, wma, workload));
  }
  for (double phi : phis) {
    greengpu::WmaParams wma;
    wma.phi = phi;
    phi_slots.push_back(queue_scaled(batch, wma, workload));
  }
  for (double beta : betas) {
    greengpu::WmaParams wma;
    wma.beta = beta;
    beta_slots.push_back(queue_scaled(batch, wma, workload));
  }
  const std::size_t paper_slot =
      queue_scaled(batch, greengpu::WmaParams{}, workload);
  batch.run(bench::jobs_from_argv(argc, argv));

  std::printf("\n# alpha_core sweep (paper: 0.15) on %s\n", workload.c_str());
  std::printf("alpha_core,gpu_saving_pct,slowdown_pct\n");
  double saving_low_alpha = 0.0, saving_high_alpha = 0.0;
  for (std::size_t i = 0; i < alpha_cores.size(); ++i) {
    const double a = alpha_cores[i];
    const Outcome o = collect(batch, base_slot, alpha_core_slots[i]);
    if (a == 0.02) saving_low_alpha = o.gpu_saving_pct;
    if (a == 0.80) saving_high_alpha = o.gpu_saving_pct;
    std::printf("%.2f,%.2f,%.2f\n", a, o.gpu_saving_pct, o.slowdown_pct);
  }

  std::printf("\n# alpha_mem sweep (paper: 0.02)\n");
  std::printf("alpha_mem,gpu_saving_pct,slowdown_pct\n");
  for (std::size_t i = 0; i < alpha_mems.size(); ++i) {
    const Outcome o = collect(batch, base_slot, alpha_mem_slots[i]);
    std::printf("%.2f,%.2f,%.2f\n", alpha_mems[i], o.gpu_saving_pct, o.slowdown_pct);
  }

  std::printf("\n# phi sweep (paper: 0.3)\n");
  std::printf("phi,gpu_saving_pct,slowdown_pct\n");
  for (std::size_t i = 0; i < phis.size(); ++i) {
    const Outcome o = collect(batch, base_slot, phi_slots[i]);
    std::printf("%.1f,%.2f,%.2f\n", phis[i], o.gpu_saving_pct, o.slowdown_pct);
  }

  std::printf("\n# beta sweep (paper: 0.2)\n");
  std::printf("beta,gpu_saving_pct,slowdown_pct\n");
  for (std::size_t i = 0; i < betas.size(); ++i) {
    const Outcome o = collect(batch, base_slot, beta_slots[i]);
    std::printf("%.2f,%.2f,%.2f\n", betas[i], o.gpu_saving_pct, o.slowdown_pct);
  }

  std::printf("\n# shape checks\n");
  bench::check(saving_high_alpha >= saving_low_alpha,
               "larger alpha favours energy saving (Table I semantics)");
  const Outcome paper = collect(batch, base_slot, paper_slot);
  bench::check(paper.slowdown_pct < 3.0, "paper constants keep slowdown marginal");
  return 0;
}
