// Ablation A2: sensitivity of the WMA scaler to its tuned constants
// (alpha_c = 0.15, alpha_m = 0.02, phi = 0.3, beta = 0.2 in the paper,
// derived from manual tuning — Section V-A notes this as future work).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/greengpu/policy.h"

namespace {

using namespace gg;

struct Outcome {
  double gpu_saving_pct;
  double slowdown_pct;
};

Outcome run_with(const greengpu::WmaParams& wma, const std::string& workload) {
  greengpu::GreenGpuParams params;
  params.wma = wma;
  const auto base = greengpu::run_experiment(workload, greengpu::Policy::best_performance(),
                                             bench::default_options());
  const auto scaled = greengpu::run_experiment(
      workload, greengpu::Policy::scaling_only(params), bench::default_options());
  return Outcome{bench::saving_percent(base.gpu_energy.get(), scaled.gpu_energy.get()),
                 100.0 * (scaled.exec_time.get() / base.exec_time.get() - 1.0)};
}

}  // namespace

int main() {
  bench::banner("ablation_wma_params", "Section V-A: alpha/phi/beta sensitivity");
  // lud: steady medium-core / low-memory utilization, the regime where the
  // energy-vs-performance blend actually moves the equilibrium level.
  const std::string workload = "lud";

  std::printf("\n# alpha_core sweep (paper: 0.15) on %s\n", workload.c_str());
  std::printf("alpha_core,gpu_saving_pct,slowdown_pct\n");
  double saving_low_alpha = 0.0, saving_high_alpha = 0.0;
  for (double a : {0.02, 0.05, 0.15, 0.40, 0.80}) {
    greengpu::WmaParams wma;
    wma.alpha_core = a;
    const Outcome o = run_with(wma, workload);
    if (a == 0.02) saving_low_alpha = o.gpu_saving_pct;
    if (a == 0.80) saving_high_alpha = o.gpu_saving_pct;
    std::printf("%.2f,%.2f,%.2f\n", a, o.gpu_saving_pct, o.slowdown_pct);
  }

  std::printf("\n# alpha_mem sweep (paper: 0.02)\n");
  std::printf("alpha_mem,gpu_saving_pct,slowdown_pct\n");
  for (double a : {0.01, 0.02, 0.10, 0.40}) {
    greengpu::WmaParams wma;
    wma.alpha_mem = a;
    const Outcome o = run_with(wma, workload);
    std::printf("%.2f,%.2f,%.2f\n", a, o.gpu_saving_pct, o.slowdown_pct);
  }

  std::printf("\n# phi sweep (paper: 0.3)\n");
  std::printf("phi,gpu_saving_pct,slowdown_pct\n");
  for (double phi : {0.1, 0.3, 0.5, 0.9}) {
    greengpu::WmaParams wma;
    wma.phi = phi;
    const Outcome o = run_with(wma, workload);
    std::printf("%.1f,%.2f,%.2f\n", phi, o.gpu_saving_pct, o.slowdown_pct);
  }

  std::printf("\n# beta sweep (paper: 0.2)\n");
  std::printf("beta,gpu_saving_pct,slowdown_pct\n");
  for (double beta : {0.05, 0.2, 0.5, 0.9}) {
    greengpu::WmaParams wma;
    wma.beta = beta;
    const Outcome o = run_with(wma, workload);
    std::printf("%.2f,%.2f,%.2f\n", beta, o.gpu_saving_pct, o.slowdown_pct);
  }

  std::printf("\n# shape checks\n");
  bench::check(saving_high_alpha >= saving_low_alpha,
               "larger alpha favours energy saving (Table I semantics)");
  const Outcome paper = run_with(greengpu::WmaParams{}, workload);
  bench::check(paper.slowdown_pct < 3.0, "paper constants keep slowdown marginal");
  return 0;
}
