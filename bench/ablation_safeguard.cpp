// Ablation A3: the oscillation safeguard of Section V-B.  Without it the
// discrete division grid makes the ratio bounce between two points every
// iteration; the paper reports the resulting re-division overheads
// "significantly degrade system performance".

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/greengpu/policy.h"

namespace {

using namespace gg;

struct Outcome {
  int ratio_changes;
  double exec_time;
  double energy;
  double final_ratio;
};

std::size_t queue_run(bench::ExperimentBatch& batch, bool safeguard,
                      const std::string& workload) {
  greengpu::GreenGpuParams params;
  params.division.safeguard = safeguard;
  return batch.add(workload, greengpu::Policy::division_only(params),
                   bench::default_options());
}

Outcome collect(const bench::ExperimentBatch& batch, std::size_t slot) {
  const auto& r = batch[slot];
  int changes = 0;
  for (std::size_t i = 1; i < r.iterations.size(); ++i) {
    if (r.iterations[i].cpu_ratio != r.iterations[i - 1].cpu_ratio) ++changes;
  }
  return Outcome{changes, r.exec_time.get(), r.total_energy().get(), r.final_ratio};
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("ablation_safeguard", "Section V-B: oscillation safeguard on/off");

  const std::vector<std::string> names = {"kmeans", "hotspot"};
  bench::ExperimentBatch batch;
  std::vector<std::pair<std::size_t, std::size_t>> slots;  // (on, off) per workload
  for (const auto& workload : names) {
    slots.emplace_back(queue_run(batch, true, workload),
                       queue_run(batch, false, workload));
  }
  batch.run(bench::jobs_from_argv(argc, argv));

  std::printf("\nworkload,safeguard,ratio_changes,exec_time_s,total_energy_J,final_share_pct\n");
  for (std::size_t w = 0; w < names.size(); ++w) {
    const Outcome on = collect(batch, slots[w].first);
    const Outcome off = collect(batch, slots[w].second);
    std::printf("%s,on,%d,%.1f,%.0f,%.0f\n", names[w].c_str(), on.ratio_changes,
                on.exec_time, on.energy, on.final_ratio * 100.0);
    std::printf("%s,off,%d,%.1f,%.0f,%.0f\n", names[w].c_str(), off.ratio_changes,
                off.exec_time, off.energy, off.final_ratio * 100.0);
  }

  std::printf("\n# shape checks (kmeans has an off-grid optimum, so it oscillates)\n");
  const Outcome on = collect(batch, slots[0].first);
  const Outcome off = collect(batch, slots[0].second);
  bench::check(off.ratio_changes > 2 * on.ratio_changes,
               "disabling the safeguard causes persistent re-divisions");
  bench::check(on.ratio_changes <= 6, "with the safeguard the ratio settles for good");
  return 0;
}
