// Ablation A3: the oscillation safeguard of Section V-B.  Without it the
// discrete division grid makes the ratio bounce between two points every
// iteration; the paper reports the resulting re-division overheads
// "significantly degrade system performance".

#include <cstdio>

#include "bench/bench_util.h"
#include "src/greengpu/policy.h"

namespace {

using namespace gg;

struct Outcome {
  int ratio_changes;
  double exec_time;
  double energy;
  double final_ratio;
};

Outcome run(bool safeguard, const std::string& workload) {
  greengpu::GreenGpuParams params;
  params.division.safeguard = safeguard;
  const auto r = greengpu::run_experiment(workload, greengpu::Policy::division_only(params),
                                          bench::default_options());
  int changes = 0;
  for (std::size_t i = 1; i < r.iterations.size(); ++i) {
    if (r.iterations[i].cpu_ratio != r.iterations[i - 1].cpu_ratio) ++changes;
  }
  return Outcome{changes, r.exec_time.get(), r.total_energy().get(), r.final_ratio};
}

}  // namespace

int main() {
  bench::banner("ablation_safeguard", "Section V-B: oscillation safeguard on/off");

  std::printf("\nworkload,safeguard,ratio_changes,exec_time_s,total_energy_J,final_share_pct\n");
  for (const std::string workload : {"kmeans", "hotspot"}) {
    const Outcome on = run(true, workload);
    const Outcome off = run(false, workload);
    std::printf("%s,on,%d,%.1f,%.0f,%.0f\n", workload.c_str(), on.ratio_changes,
                on.exec_time, on.energy, on.final_ratio * 100.0);
    std::printf("%s,off,%d,%.1f,%.0f,%.0f\n", workload.c_str(), off.ratio_changes,
                off.exec_time, off.energy, off.final_ratio * 100.0);
  }

  std::printf("\n# shape checks (kmeans has an off-grid optimum, so it oscillates)\n");
  const Outcome on = run(true, "kmeans");
  const Outcome off = run(false, "kmeans");
  bench::check(off.ratio_changes > 2 * on.ratio_changes,
               "disabling the safeguard causes persistent re-divisions");
  bench::check(on.ratio_changes <= 6, "with the safeguard the ratio settles for good");
  return 0;
}
