// Ablation: sensitivity of the headline results to the GPU power-model
// split.  The paper's conclusions rest on where the card's power goes —
// clock trees (recoverable by frequency-only throttling) versus switching
// activity (recoverable only by doing less work) versus static base.  This
// bench re-runs the Fig. 6a average under alternative splits with the same
// 145 W full-load total, showing which conclusions are calibration-robust.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/greengpu/wma_scaler.h"
#include "src/greengpu/cpu_governor.h"
#include "src/cudalite/api.h"
#include "src/cudalite/nvml.h"
#include "src/cudalite/nvsettings.h"
#include "src/workloads/registry.h"

namespace {

using namespace gg;

struct Split {
  const char* name;
  double base, core_clock, core_active, mem_clock, mem_active;
};

/// Run one workload under best-performance and scaling-only on a platform
/// with the given power split; return the GPU energy saving percent.
double gpu_saving(const std::string& workload_name, const Split& split) {
  sim::GpuSpec spec;
  spec.p_base = Watts{split.base};
  spec.p_core_clock = Watts{split.core_clock};
  spec.p_core_active = Watts{split.core_active};
  spec.p_mem_clock = Watts{split.mem_clock};
  spec.p_mem_active = Watts{split.mem_active};

  double energy[2] = {0.0, 0.0};
  for (int mode = 0; mode < 2; ++mode) {
    sim::Platform platform(spec, sim::geforce8800_core_table(),
                           sim::geforce8800_memory_table(), 5, 5, sim::CpuSpec{},
                           sim::phenom2_table(), 0);
    cudalite::Runtime rt(platform);
    cudalite::NvmlDevice nvml(platform);
    cudalite::NvSettings settings(platform);
    std::unique_ptr<greengpu::GpuFrequencyScaler> scaler;
    if (mode == 1) {
      scaler = std::make_unique<greengpu::GpuFrequencyScaler>(nvml, settings,
                                                              greengpu::WmaParams{});
      scaler->attach(platform.queue());
    } else {
      settings.set_clock_levels(0, 0);
    }
    const auto workload = workloads::make_workload(workload_name);
    workload->setup(rt);
    auto stream = rt.create_stream();
    const auto e0 = platform.snapshot();
    for (std::size_t iter = 0; iter < workload->iterations(); ++iter) {
      bool g = false, c = false;
      workload->run_iteration(rt, stream, iter, 0.0, [&] { g = true; }, [&] { c = true; });
      rt.wait_until([&] { return g && c; });
      workload->finish_iteration(rt, iter);
    }
    workload->teardown(rt);
    if (scaler) scaler->detach();
    const auto e1 = platform.snapshot();
    energy[mode] = sim::Platform::delta(e0, e1).gpu.get();
  }
  return bench::saving_percent(energy[0], energy[1]);
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("ablation_power_model",
                "robustness of Fig. 6a to the GPU power-split calibration");

  const Split splits[] = {
      {"repo default (clock-heavy)", 35, 32, 38, 20, 20},
      {"activity-heavy", 35, 15, 55, 8, 32},
      {"balanced", 35, 25, 45, 15, 25},
      {"static-heavy", 60, 22, 28, 15, 20},
  };

  // Each (split, workload) cell builds its own Platform, so they fan out
  // directly; savings land in index-determined slots.
  const auto names = workloads::all_workload_names();
  std::vector<double> saving(std::size(splits) * names.size());
  bench::parallel_cells(
      bench::jobs_from_argv(argc, argv), saving.size(), [&](std::size_t i) {
        saving[i] = gpu_saving(names[i % names.size()], splits[i / names.size()]);
      });

  std::printf("\nsplit,avg_gpu_saving_pct,max_gpu_saving_pct\n");
  double default_avg = 0.0, activity_avg = 0.0;
  for (std::size_t s = 0; s < std::size(splits); ++s) {
    const Split& split = splits[s];
    RunningStats savings;
    for (std::size_t w = 0; w < names.size(); ++w) {
      savings.add(saving[s * names.size() + w]);
    }
    std::printf("\"%s\",%.2f,%.2f\n", split.name, savings.mean(), savings.max());
    if (split.name == splits[0].name) default_avg = savings.mean();
    if (std::string(split.name) == "activity-heavy") activity_avg = savings.mean();
  }

  std::printf("\n# shape checks\n");
  bench::check(default_avg > 0.0 && activity_avg > 0.0,
               "frequency scaling saves GPU energy under every split");
  bench::check(default_avg > activity_avg,
               "savings scale with the clock-tree share (the mechanism, not "
               "the calibration, drives the result)");
  return 0;
}
