// Figure 2: total system energy versus static CPU work share for kmeans.
// The paper varies the CPU share from 0 % to 90 % and finds a U-shaped curve
// with its minimum at a small non-zero share (10 % on their testbed).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/greengpu/policy.h"

int main(int argc, char** argv) {
  using namespace gg;
  bench::banner("fig2_division_sweep", "Fig. 2, Section III-B case study (kmeans)");

  bench::ExperimentBatch batch;
  std::vector<int> percents;
  for (int pct = 0; pct <= 90; pct += 5) {
    percents.push_back(pct);
    batch.add("kmeans", greengpu::Policy::static_division(pct / 100.0),
              bench::default_options());
  }
  batch.run(bench::jobs_from_argv(argc, argv));

  std::printf("\ncpu_share_percent,total_energy_J,exec_time_s,relative_energy\n");
  double base_energy = 0.0;
  double best_energy = 1e300;
  double best_ratio = 0.0;
  for (std::size_t i = 0; i < percents.size(); ++i) {
    const int pct = percents[i];
    const auto& r = batch[i];
    const double e = r.total_energy().get();
    if (pct == 0) base_energy = e;
    if (e < best_energy) {
      best_energy = e;
      best_ratio = pct / 100.0;
    }
    std::printf("%d,%.0f,%.1f,%.4f\n", pct, e, r.exec_time.get(), e / base_energy);
  }

  std::printf("\n# energy-minimal static division: %.0f%% CPU (paper: 10%%)\n",
              best_ratio * 100.0);
  std::printf("# saving vs all-GPU at the optimum: %.2f%%\n",
              bench::saving_percent(base_energy, best_energy));
  bench::check(best_ratio > 0.0 && best_ratio <= 0.25,
               "minimum at a small non-zero CPU share (Fig. 2)");
  bench::check(best_energy < base_energy,
               "CPU+GPU cooperation beats GPU-exclusive execution (Fig. 2)");
  return 0;
}
