// Extension bench: swapping the CPU governor (Section IV: "other more
// sophisticated DVFS-based processor power management strategies ... can
// also be integrated into GreenGPU").
//
// Compares the linux-classic governors plus a WMA-based CPU learner inside
// the full GreenGPU stack, on a divided workload (kmeans) and a GPU-only
// spinning workload (streamcluster).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/greengpu/policy.h"

namespace {

using namespace gg;

void sweep(const std::string& workload) {
  std::printf("\n# %s under GreenGPU with each CPU governor\n", workload.c_str());
  std::printf("governor,total_energy_J,exec_time_s,final_share_pct\n");
  double perf_energy = 0.0;
  for (auto kind : {greengpu::CpuGovernorKind::kPerformance,
                    greengpu::CpuGovernorKind::kOndemand,
                    greengpu::CpuGovernorKind::kConservative,
                    greengpu::CpuGovernorKind::kWma,
                    greengpu::CpuGovernorKind::kPowersave}) {
    greengpu::Policy policy = greengpu::Policy::green_gpu();
    policy.cpu_governor = kind;
    policy.name = std::string("greengpu+") + std::string(greengpu::to_string(kind));
    const auto r = greengpu::run_experiment(workload, policy, bench::default_options());
    if (kind == greengpu::CpuGovernorKind::kPerformance) {
      perf_energy = r.total_energy().get();
    }
    std::printf("%s,%.0f,%.1f,%.0f\n", std::string(greengpu::to_string(kind)).c_str(),
                r.total_energy().get(), r.exec_time.get(), r.final_ratio * 100.0);
  }
  (void)perf_energy;
}

}  // namespace

int main() {
  bench::banner("ablation_cpu_governor",
                "Section IV extension: pluggable CPU DVFS strategies");

  sweep("kmeans");
  sweep("streamcluster");

  std::printf("\n# shape checks\n");
  auto energy_with = [](const std::string& wl, greengpu::CpuGovernorKind kind) {
    greengpu::Policy policy = greengpu::Policy::green_gpu();
    policy.cpu_governor = kind;
    return greengpu::run_experiment(wl, policy, bench::default_options());
  };
  // Spin pegs the CPU at 100%, so on a GPU-resident workload ondemand ==
  // performance (the Section VII-A failure the paper reports).
  const auto sc_perf = energy_with("streamcluster", greengpu::CpuGovernorKind::kPerformance);
  const auto sc_ondemand = energy_with("streamcluster", greengpu::CpuGovernorKind::kOndemand);
  bench::check(std::abs(sc_ondemand.total_energy().get() - sc_perf.total_energy().get()) <
                   0.005 * sc_perf.total_energy().get(),
               "ondemand cannot beat performance under the spinning stack (Sec. VII-A)");
  // On a divided workload the CPU computes at 100% anyway; powersave pays a
  // large time penalty that division only partially absorbs.
  const auto km_perf = energy_with("kmeans", greengpu::CpuGovernorKind::kPerformance);
  const auto km_powersave = energy_with("kmeans", greengpu::CpuGovernorKind::kPowersave);
  bench::check(km_powersave.exec_time.get() > km_perf.exec_time.get() * 1.02,
               "powersave slows the divided workload");
  bench::check(km_powersave.final_ratio < km_perf.final_ratio,
               "the division tier compensates by shifting work to the GPU");
  return 0;
}
