// Extension bench: swapping the CPU governor (Section IV: "other more
// sophisticated DVFS-based processor power management strategies ... can
// also be integrated into GreenGPU").
//
// Compares the linux-classic governors plus a WMA-based CPU learner inside
// the full GreenGPU stack, on a divided workload (kmeans) and a GPU-only
// spinning workload (streamcluster).

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/greengpu/policy.h"

namespace {

using namespace gg;

constexpr greengpu::CpuGovernorKind kKinds[] = {
    greengpu::CpuGovernorKind::kPerformance, greengpu::CpuGovernorKind::kOndemand,
    greengpu::CpuGovernorKind::kConservative, greengpu::CpuGovernorKind::kWma,
    greengpu::CpuGovernorKind::kPowersave};

std::size_t queue_sweep(bench::ExperimentBatch& batch, const std::string& workload) {
  std::size_t first = batch.size();
  for (auto kind : kKinds) {
    greengpu::Policy policy = greengpu::Policy::green_gpu();
    policy.cpu_governor = kind;
    policy.name = std::string("greengpu+") + std::string(greengpu::to_string(kind));
    batch.add(workload, policy, bench::default_options());
  }
  return first;
}

void print_sweep(const bench::ExperimentBatch& batch, std::size_t first,
                 const std::string& workload) {
  std::printf("\n# %s under GreenGPU with each CPU governor\n", workload.c_str());
  std::printf("governor,total_energy_J,exec_time_s,final_share_pct\n");
  for (std::size_t i = 0; i < std::size(kKinds); ++i) {
    const auto& r = batch[first + i];
    std::printf("%s,%.0f,%.1f,%.0f\n",
                std::string(greengpu::to_string(kKinds[i])).c_str(),
                r.total_energy().get(), r.exec_time.get(), r.final_ratio * 100.0);
  }
}

std::size_t kind_index(greengpu::CpuGovernorKind kind) {
  for (std::size_t i = 0; i < std::size(kKinds); ++i) {
    if (kKinds[i] == kind) return i;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("ablation_cpu_governor",
                "Section IV extension: pluggable CPU DVFS strategies");

  bench::ExperimentBatch batch;
  const std::size_t km_first = queue_sweep(batch, "kmeans");
  const std::size_t sc_first = queue_sweep(batch, "streamcluster");
  batch.run(bench::jobs_from_argv(argc, argv));

  print_sweep(batch, km_first, "kmeans");
  print_sweep(batch, sc_first, "streamcluster");

  std::printf("\n# shape checks\n");
  // Spin pegs the CPU at 100%, so on a GPU-resident workload ondemand ==
  // performance (the Section VII-A failure the paper reports).
  const auto& sc_perf = batch[sc_first + kind_index(greengpu::CpuGovernorKind::kPerformance)];
  const auto& sc_ondemand = batch[sc_first + kind_index(greengpu::CpuGovernorKind::kOndemand)];
  bench::check(std::abs(sc_ondemand.total_energy().get() - sc_perf.total_energy().get()) <
                   0.005 * sc_perf.total_energy().get(),
               "ondemand cannot beat performance under the spinning stack (Sec. VII-A)");
  // On a divided workload the CPU computes at 100% anyway; powersave pays a
  // large time penalty that division only partially absorbs.
  const auto& km_perf = batch[km_first + kind_index(greengpu::CpuGovernorKind::kPerformance)];
  const auto& km_powersave = batch[km_first + kind_index(greengpu::CpuGovernorKind::kPowersave)];
  bench::check(km_powersave.exec_time.get() > km_perf.exec_time.get() * 1.02,
               "powersave slows the divided workload");
  bench::check(km_powersave.final_ratio < km_perf.final_ratio,
               "the division tier compensates by shifting work to the GPU");
  return 0;
}
