// Table II: workload summary — enlargement parameters and the measured GPU
// core/memory utilization characterization of every workload, collected from
// a best-performance run on the simulated testbed.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/greengpu/policy.h"
#include "src/workloads/registry.h"

namespace {

using namespace gg;

const char* classify(double u, double fluct) {
  if (fluct > 0.15) return "fluctuating";
  if (u >= 0.75) return "high";
  if (u >= 0.40) return "medium";
  return "low";
}

std::pair<RunningStats, RunningStats> utilization(const greengpu::ExperimentResult& r) {
  RunningStats core, mem;
  for (const auto& s : r.trace) {
    core.add(s.gpu_core_util);
    mem.add(s.gpu_mem_util);
  }
  return {core, mem};
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("table2_characterization", "Table II workload summary");

  const std::vector<std::string> names = workloads::all_workload_names();
  greengpu::RunOptions o = bench::default_options();
  o.record_trace = true;
  o.trace_period = Seconds{1.0};
  bench::ExperimentBatch batch;
  for (const auto& name : names) {
    batch.add(name, greengpu::Policy::best_performance(), o);
  }
  batch.run(bench::jobs_from_argv(argc, argv));

  std::printf(
      "\nworkload,iterations,sim_units_per_iter,avg_core_util,avg_mem_util,core_class,"
      "mem_class,paper_description\n");

  for (std::size_t w = 0; w < names.size(); ++w) {
    const auto wl = workloads::make_workload(names[w]);
    const std::size_t iters = wl->iterations();
    const double units = wl->profile(0).units_per_iteration;
    const std::string description(wl->description());

    const auto [core, mem] = utilization(batch[w]);
    const double core_fluct = core.stddev();
    const double mem_fluct = mem.stddev();
    std::printf("%s,%zu,%.0f,%.2f,%.2f,%s,%s,\"%s\"\n", names[w].c_str(), iters, units,
                core.mean(), mem.mean(), classify(core.mean(), core_fluct),
                classify(mem.mean(), mem_fluct), description.c_str());
  }

  std::printf("\n# checks against Table II utilization classes\n");
  auto measured = [&](const std::string& name) {
    for (std::size_t w = 0; w < names.size(); ++w) {
      if (names[w] == name) return utilization(batch[w]);
    }
    return std::pair<RunningStats, RunningStats>{};
  };
  const auto [bfs_c, bfs_m] = measured("bfs");
  bench::check(bfs_c.mean() > 0.75 && bfs_m.mean() > 0.75,
               "bfs: high core and memory utilization");
  const auto [pf_c, pf_m] = measured("pathfinder");
  bench::check(pf_c.mean() < 0.40 && pf_m.mean() < 0.30,
               "PF: low core and memory utilization");
  const auto [qg_c, qg_m] = measured("QG");
  bench::check(qg_c.stddev() > 0.15, "QG: utilizations highly fluctuate");
  const auto [sc_c, sc_m] = measured("streamcluster");
  bench::check(sc_c.stddev() > 0.1 || sc_m.stddev() > 0.1,
               "streamcluster: utilizations highly fluctuate");
  return 0;
}
