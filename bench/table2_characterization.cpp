// Table II: workload summary — enlargement parameters and the measured GPU
// core/memory utilization characterization of every workload, collected from
// a best-performance run on the simulated testbed.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/greengpu/policy.h"
#include "src/workloads/registry.h"

namespace {

using namespace gg;

const char* classify(double u, double fluct) {
  if (fluct > 0.15) return "fluctuating";
  if (u >= 0.75) return "high";
  if (u >= 0.40) return "medium";
  return "low";
}

}  // namespace

int main() {
  bench::banner("table2_characterization", "Table II workload summary");

  std::printf(
      "\nworkload,iterations,sim_units_per_iter,avg_core_util,avg_mem_util,core_class,"
      "mem_class,paper_description\n");

  for (const auto& name : workloads::all_workload_names()) {
    const auto wl = workloads::make_workload(name);
    const std::size_t iters = wl->iterations();
    const double units = wl->profile(0).units_per_iteration;
    const std::string description(wl->description());

    greengpu::RunOptions o = bench::default_options();
    o.record_trace = true;
    o.trace_period = Seconds{1.0};
    const auto r = greengpu::run_experiment(*wl, greengpu::Policy::best_performance(), o);

    RunningStats core, mem;
    for (const auto& s : r.trace) {
      core.add(s.gpu_core_util);
      mem.add(s.gpu_mem_util);
    }
    const double core_fluct = core.stddev();
    const double mem_fluct = mem.stddev();
    std::printf("%s,%zu,%.0f,%.2f,%.2f,%s,%s,\"%s\"\n", name.c_str(), iters, units,
                core.mean(), mem.mean(), classify(core.mean(), core_fluct),
                classify(mem.mean(), mem_fluct), description.c_str());
  }

  std::printf("\n# checks against Table II utilization classes\n");
  auto measured = [](const std::string& name) {
    greengpu::RunOptions o = bench::default_options();
    o.record_trace = true;
    o.trace_period = Seconds{1.0};
    const auto r =
        greengpu::run_experiment(name, greengpu::Policy::best_performance(), o);
    RunningStats core, mem;
    for (const auto& s : r.trace) {
      core.add(s.gpu_core_util);
      mem.add(s.gpu_mem_util);
    }
    return std::pair{core, mem};
  };
  const auto [bfs_c, bfs_m] = measured("bfs");
  bench::check(bfs_c.mean() > 0.75 && bfs_m.mean() > 0.75,
               "bfs: high core and memory utilization");
  const auto [pf_c, pf_m] = measured("pathfinder");
  bench::check(pf_c.mean() < 0.40 && pf_m.mean() < 0.30,
               "PF: low core and memory utilization");
  const auto [qg_c, qg_m] = measured("QG");
  bench::check(qg_c.stddev() > 0.15, "QG: utilizations highly fluctuate");
  const auto [sc_c, sc_m] = measured("streamcluster");
  bench::check(sc_c.stddev() > 0.1 || sc_m.stddev() > 0.1,
               "streamcluster: utilizations highly fluctuate");
  return 0;
}
