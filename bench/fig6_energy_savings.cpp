// Figure 6: energy savings of the frequency-scaling tier versus the
// best-performance baseline, for every Table II workload.
//
//   6a: total GPU energy saving (paper: 5.97 % average, up to 14.53 %).
//   6b: dynamic GPU energy saving, idle energy subtracted (paper: 29.2 %
//       average with 2.95 % longer execution time).
//   6c: emulated CPU+GPU throttling, total energy (paper: 12.48 % average).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/greengpu/policy.h"
#include "src/workloads/registry.h"

int main(int argc, char** argv) {
  using namespace gg;
  bench::banner("fig6_energy_savings",
                "Fig. 6 (a-c), frequency-scaling savings per workload");

  const auto names = workloads::all_workload_names();
  bench::ExperimentBatch batch;
  for (const auto& name : names) {
    batch.add(name, greengpu::Policy::best_performance(), bench::default_options());
    batch.add(name, greengpu::Policy::scaling_only(), bench::default_options());
  }
  batch.run(bench::jobs_from_argv(argc, argv));

  std::printf(
      "\nworkload,gpu_saving_pct,dynamic_saving_pct,slowdown_pct,cpu_gpu_saving_pct\n");

  RunningStats gpu_saving, dyn_saving, slowdown, cpu_gpu_saving;
  for (std::size_t w = 0; w < names.size(); ++w) {
    const auto& name = names[w];
    const auto& base = batch[2 * w];
    const auto& scaled = batch[2 * w + 1];

    const double g = bench::saving_percent(base.gpu_energy.get(), scaled.gpu_energy.get());
    const double d = bench::saving_percent(base.gpu_dynamic_energy().get(),
                                           scaled.gpu_dynamic_energy().get());
    const double s = 100.0 * (scaled.exec_time.get() / base.exec_time.get() - 1.0);
    // Fig. 6c emulation: spin phases priced at the lowest CPU P-state.
    const double cg = bench::saving_percent(base.total_energy().get(),
                                            scaled.emulated_cpu_throttle_energy().get());

    gpu_saving.add(g);
    dyn_saving.add(d);
    slowdown.add(s);
    cpu_gpu_saving.add(cg);
    std::printf("%s,%.2f,%.2f,%.2f,%.2f\n", name.c_str(), g, d, s, cg);
  }

  std::printf("\n# averages (paper values in parentheses)\n");
  std::printf("Fig. 6a GPU energy saving:      avg %.2f%%, max %.2f%%  (paper: 5.97%%, max 14.53%%)\n",
              gpu_saving.mean(), gpu_saving.max());
  std::printf("Fig. 6b dynamic energy saving:  avg %.2f%%             (paper: 29.2%%)\n",
              dyn_saving.mean());
  std::printf("Fig. 6b execution time increase: avg %.2f%%            (paper: 2.95%%)\n",
              slowdown.mean());
  std::printf("Fig. 6c CPU+GPU (emulated):     avg %.2f%%             (paper: 12.48%%)\n",
              cpu_gpu_saving.mean());

  bench::check(gpu_saving.mean() > 2.0 && gpu_saving.mean() < 15.0,
               "single-digit average total GPU saving (Fig. 6a)");
  bench::check(gpu_saving.max() > 8.0, "double-digit saving for the best workload (Fig. 6a)");
  bench::check(dyn_saving.mean() > 1.5 * gpu_saving.mean(),
               "dynamic savings several times larger than total (Fig. 6b)");
  bench::check(slowdown.mean() < 5.0, "marginal average slowdown (Fig. 6b)");
  bench::check(cpu_gpu_saving.mean() > gpu_saving.mean() * 0.8,
               "CPU throttling adds substantial savings (Fig. 6c)");
  return 0;
}
