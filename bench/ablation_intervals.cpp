// Ablation A4: the two-tier decoupling rule of Section IV — the division
// interval (one iteration) should be much longer than the frequency-scaling
// interval ("no less than 40x") so the WMA loop settles within one division
// epoch.  Sweeping the scaling interval against a fixed iteration length
// shows the interference when the rule is violated.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/greengpu/policy.h"

namespace {

using namespace gg;

struct Outcome {
  double energy;
  double exec_time;
  double final_ratio;
  std::uint64_t gpu_transitions;
};

Outcome collect(const greengpu::ExperimentResult& r) {
  return Outcome{r.total_energy().get(), r.exec_time.get(), r.final_ratio,
                 r.gpu_frequency_transitions};
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("ablation_intervals",
                "Section IV: division/scaling interval ratio (the >=40x rule)");

  // kmeans iterations last ~124 s at peak; the paper's scaling interval of
  // 3 s gives a ratio of ~41x.
  const std::vector<double> intervals = {1.0, 3.0, 12.0, 40.0, 124.0};
  bench::ExperimentBatch batch;
  for (double interval : intervals) {
    greengpu::GreenGpuParams params;
    params.wma.interval = Seconds{interval};
    batch.add("kmeans", greengpu::Policy::green_gpu(params), bench::default_options());
  }
  batch.run(bench::jobs_from_argv(argc, argv));

  std::printf("\nscaling_interval_s,approx_ratio,total_energy_J,exec_time_s,final_share_pct,gpu_freq_transitions\n");
  double energy_at_rule = 0.0, energy_violated = 0.0;
  std::uint64_t transitions_at_rule = 0, transitions_violated = 0;
  double ratio_at_rule = 0.0, ratio_violated = 0.0;
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const double interval = intervals[i];
    const Outcome o = collect(batch[i]);
    const double ratio = 124.0 / interval;
    if (interval == 3.0) {
      energy_at_rule = o.energy;
      transitions_at_rule = o.gpu_transitions;
      ratio_at_rule = o.final_ratio;
    }
    if (interval == 124.0) {
      energy_violated = o.energy;
      transitions_violated = o.gpu_transitions;
      ratio_violated = o.final_ratio;
    }
    std::printf("%.0f,%.0fx,%.0f,%.1f,%.0f,%llu\n", interval, ratio, o.energy,
                o.exec_time, o.final_ratio * 100.0,
                static_cast<unsigned long long>(o.gpu_transitions));
  }

  std::printf("\n# shape checks\n");
  // Section IV's rationale: with the rule honoured the WMA loop settles
  // within one division epoch (few frequency transitions, stable division);
  // with one scaling step per iteration the scaler keeps adjusting across
  // epochs.  Reproduction note: in this deterministic testbed the division
  // tier is robust enough that total energy stays within ~0.5% either way —
  // the rule buys stability, not extra joules.
  bench::check(transitions_at_rule < transitions_violated,
               "honouring the rule lets the scaler settle within one epoch");
  bench::check(ratio_at_rule == ratio_violated,
               "the division outcome itself is robust to the interval choice");
  bench::check(std::abs(energy_at_rule - energy_violated) / energy_at_rule < 0.01,
               "energy within 1% across interval choices (no destructive interference)");
  return 0;
}
