// Ablation A1 (Section V-B design choice): workload-division step size.
// "The system takes a long time to converge ... if we use a small step.
//  There will be large oscillation if we use a large step."

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/greengpu/policy.h"

int main(int argc, char** argv) {
  using namespace gg;
  bench::banner("ablation_step", "Section V-B: division step-size trade-off");

  const std::vector<double> steps = {0.01, 0.02, 0.05, 0.10, 0.20};
  bench::ExperimentBatch batch;
  for (double step : steps) {
    greengpu::GreenGpuParams params;
    params.division.step = step;
    batch.add("kmeans", greengpu::Policy::division_only(params),
              bench::default_options());
  }
  batch.run(bench::jobs_from_argv(argc, argv));

  std::printf("\nstep_pct,convergence_iteration,final_cpu_share_pct,exec_time_s,total_energy_J\n");
  double conv_small = 0.0, conv_large = 0.0;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const double step = steps[i];
    const auto& r = batch[i];
    const double conv = r.convergence_iteration == static_cast<std::size_t>(-1)
                            ? -1.0
                            : static_cast<double>(r.convergence_iteration);
    if (step == 0.01) conv_small = conv;
    if (step == 0.05) conv_large = conv;
    std::printf("%.0f,%.0f,%.0f,%.1f,%.0f\n", step * 100.0, conv, r.final_ratio * 100.0,
                r.exec_time.get(), r.total_energy().get());
  }

  std::printf("\n# shape checks\n");
  bench::check(conv_small > conv_large,
               "smaller steps take longer to converge (Section V-B)");
  return 0;
}
