// Trace replay: capture a GPU utilization trace anywhere (for example with
//   nvidia-smi --query-gpu=utilization.gpu,utilization.memory
//              --format=csv,noheader -l 1
// plus a timestamp column) and let the simulated GreenGPU stack manage an
// application with that exact utilization signature.
//
//   ./build/examples/trace_replay [trace.csv]
//
// Without an argument, a bursty synthetic trace is used.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "src/common/flags.h"
#include "src/greengpu/greengpu.h"
#include "src/workloads/trace_workload.h"

int main(int argc, char** argv) {
  using namespace gg;
  std::string trace_path;
  try {
    const Flags flags(argc, argv);
    flags.reject_unknown();
    if (!flags.positional().empty()) trace_path = flags.positional().front();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  auto make_workload = [&]() -> workloads::TraceWorkload {
    if (!trace_path.empty()) {
      std::ifstream in(trace_path);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", trace_path.c_str());
        std::exit(1);
      }
      return workloads::TraceWorkload::from_csv(in);
    }
    // Synthetic bursty trace: compute bursts with idle-ish gaps.
    return workloads::TraceWorkload({{0.95, 0.40, 12.0},
                                     {0.15, 0.08, 9.0},
                                     {0.60, 0.55, 12.0},
                                     {0.10, 0.05, 9.0},
                                     {0.95, 0.40, 12.0}});
  };

  workloads::TraceWorkload base_wl = make_workload();
  std::printf("replaying %zu phases (%.0f s of trace)\n\n", base_wl.phases().size(),
              base_wl.trace_duration().get());

  const auto base =
      greengpu::run_experiment(base_wl, greengpu::Policy::best_performance(), {});
  workloads::TraceWorkload scaled_wl = make_workload();
  greengpu::RunOptions options;
  options.record_trace = true;
  options.trace_period = Seconds{3.0};
  const auto scaled =
      greengpu::run_experiment(scaled_wl, greengpu::Policy::scaling_only(), options);

  std::printf("time  core%%/mem%%  -> clocks enforced by the WMA daemon\n");
  for (const auto& s : scaled.trace) {
    std::printf("%4.0f   %3.0f / %3.0f  -> %4.0f / %4.0f MHz\n", s.time.get(),
                s.gpu_core_util * 100.0, s.gpu_mem_util * 100.0,
                s.gpu_core_freq.get(), s.gpu_mem_freq.get());
  }

  std::printf("\nbest-performance: %7.1f s  GPU %7.0f J\n", base.exec_time.get(),
              base.gpu_energy.get());
  std::printf("WMA scaling:      %7.1f s  GPU %7.0f J  (%.2f%% GPU energy saving)\n",
              scaled.exec_time.get(), scaled.gpu_energy.get(),
              100.0 * (1.0 - scaled.gpu_energy.get() / base.gpu_energy.get()));
  std::printf("results %s\n",
              (base.verified && scaled.verified) ? "verified" : "NOT verified");
  return 0;
}
