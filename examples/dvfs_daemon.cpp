// Frequency-scaling demo (tier 2): the WMA daemon reacting to a fluctuating
// workload, using the same interfaces the paper's Python daemon used —
// NVML-style utilization queries in, nvidia-settings-style clock writes out.
//
//   ./build/examples/dvfs_daemon [workload]   (default: streamcluster)

#include <cstdio>
#include <stdexcept>
#include <string>

#include "src/common/flags.h"
#include "src/cudalite/api.h"
#include "src/cudalite/nvml.h"
#include "src/cudalite/nvsettings.h"
#include "src/greengpu/wma_scaler.h"
#include "src/workloads/registry.h"

int main(int argc, char** argv) {
  using namespace gg;
  std::string name = "streamcluster";
  try {
    const Flags flags(argc, argv);
    flags.reject_unknown();
    if (!flags.positional().empty()) name = flags.positional().front();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  // Assemble the stack by hand (the runner does this for you normally) to
  // show the moving parts: platform, runtime, monitoring, actuation, daemon.
  sim::Platform platform;
  cudalite::Runtime rt(platform);
  cudalite::NvmlDevice nvml(platform);
  cudalite::NvSettings settings(platform);

  greengpu::WmaParams params;  // alpha_c 0.15, alpha_m 0.02, phi 0.3, beta 0.2, 3 s
  greengpu::GpuFrequencyScaler daemon(nvml, settings, params);
  daemon.attach(platform.queue());

  std::printf("GreenGPU tier 2 demo: WMA frequency-scaling daemon on '%s'\n",
              name.c_str());
  std::printf("GPU starts at the driver-default lowest clocks (%.0f / %.0f MHz)\n\n",
              platform.gpu().core_frequency().get(), platform.gpu().mem_frequency().get());

  const auto workload = workloads::make_workload(name);
  workload->setup(rt);
  auto stream = rt.create_stream();
  const auto start_energy = platform.snapshot();
  for (std::size_t iter = 0; iter < workload->iterations(); ++iter) {
    bool gpu_done = false, cpu_done = false;
    workload->run_iteration(rt, stream, iter, 0.0, [&] { gpu_done = true; },
                            [&] { cpu_done = true; });
    rt.wait_until([&] { return gpu_done && cpu_done; });
    workload->finish_iteration(rt, iter);
  }
  workload->teardown(rt);
  daemon.detach();

  std::printf("time(s)  core%%  mem%%   -> enforced clocks (MHz)\n");
  for (const auto& d : daemon.decisions()) {
    std::printf("%6.0f   %3.0f    %3.0f    -> %4.0f / %4.0f\n", d.time.get(),
                d.core_util * 100.0, d.mem_util * 100.0,
                settings.core_table().frequency(d.chosen.core).get(),
                settings.mem_table().frequency(d.chosen.mem).get());
  }

  const auto end_energy = platform.snapshot();
  const auto delta = sim::Platform::delta(start_energy, end_energy);
  std::printf("\nrun finished in %.1f simulated seconds; GPU energy %.0f J\n",
              delta.elapsed.get(), delta.gpu.get());
  std::printf("results %s; %llu clock transitions\n",
              workload->verify() ? "verified" : "NOT verified",
              static_cast<unsigned long long>(platform.gpu().frequency_transitions()));
  return 0;
}
