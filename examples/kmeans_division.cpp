// Workload-division demo (tier 1): watch the controller balance kmeans
// between CPU and GPU, exactly like Fig. 7a.
//
//   ./build/examples/kmeans_division [initial_cpu_share_percent]

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "src/common/flags.h"
#include "src/greengpu/policy.h"
#include "src/greengpu/runner.h"
#include "src/workloads/kmeans.h"

int main(int argc, char** argv) {
  using namespace gg;
  double initial = 0.30;
  try {
    const Flags flags(argc, argv);
    flags.reject_unknown();
    if (!flags.positional().empty()) {
      initial = std::atof(flags.positional().front().c_str()) / 100.0;
    }
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (initial < 0.0 || initial > 0.95) {
    std::fprintf(stderr, "initial share must be in [0, 95] percent\n");
    return 1;
  }

  std::printf("GreenGPU tier 1 demo: dynamic workload division on kmeans\n");
  std::printf("initial division: %.0f%% CPU / %.0f%% GPU, step 5%%\n\n",
              initial * 100.0, (1.0 - initial) * 100.0);

  greengpu::GreenGpuParams params;
  params.division.initial_ratio = initial;
  workloads::Kmeans workload{};
  const auto result = greengpu::run_experiment(
      workload, greengpu::Policy::division_only(params), {});

  std::printf("iter  cpu%%   tc(s)    tg(s)   decision\n");
  for (const auto& it : result.iterations) {
    const char* decision = "";
    switch (it.division_action) {
      case greengpu::DivisionAction::kIncreaseCpu: decision = "CPU faster -> +5% CPU"; break;
      case greengpu::DivisionAction::kDecreaseCpu: decision = "CPU slower -> -5% CPU"; break;
      case greengpu::DivisionAction::kHold: decision = "balanced -> hold"; break;
      case greengpu::DivisionAction::kHoldSafeguard: decision = "would oscillate -> hold"; break;
      case greengpu::DivisionAction::kHoldAtBound: decision = "at bound -> hold"; break;
      case greengpu::DivisionAction::kHoldDegraded: decision = "faulted -> hold"; break;
    }
    std::printf("%4zu  %3.0f  %7.1f  %7.1f   %s\n", it.index, it.cpu_ratio * 100.0,
                it.cpu_time.get(), it.gpu_time.get(), decision);
    if (it.index >= 14 && result.iterations.size() > 16) {
      std::printf("  ... (%zu more identical iterations)\n",
                  result.iterations.size() - it.index - 1);
      break;
    }
  }

  std::printf("\nconverged division: %.0f%% CPU / %.0f%% GPU (after iteration %zu)\n",
              result.final_ratio * 100.0, (1.0 - result.final_ratio) * 100.0,
              result.convergence_iteration);
  std::printf("execution time %.1f s, total energy %.0f J, results %s\n",
              result.exec_time.get(), result.total_energy().get(),
              result.verified ? "verified" : "NOT verified");
  return 0;
}
