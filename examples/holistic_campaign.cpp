// Full evaluation campaign: every Table II workload under every policy,
// printed as one summary table — a compact reproduction of the paper's whole
// experimental section.
//
//   ./build/examples/holistic_campaign

#include <cstdio>
#include <vector>
#include <stdexcept>
#include "src/common/flags.h"

#include "src/greengpu/policy.h"
#include "src/greengpu/runner.h"
#include "src/workloads/registry.h"

int main(int argc, char** argv) {
  try {
    const gg::Flags flags(argc, argv);
    flags.reject_unknown();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  using namespace gg;

  std::printf("GreenGPU evaluation campaign (simulated 8800 GTX + Phenom II X2)\n");
  std::printf("energies are total system joules (both meters); savings vs best-performance\n\n");
  std::printf("%-14s %12s | %-28s | %-28s | %-28s\n", "workload", "baseline(J)",
              "frequency-scaling", "division", "greengpu");

  double sum_base = 0.0, sum_green = 0.0;
  for (const auto& name : workloads::all_workload_names()) {
    const auto base = greengpu::run_experiment(name, greengpu::Policy::best_performance(), {});
    const auto scaling = greengpu::run_experiment(name, greengpu::Policy::scaling_only(), {});
    const auto division = greengpu::run_experiment(name, greengpu::Policy::division_only(), {});
    const auto green = greengpu::run_experiment(name, greengpu::Policy::green_gpu(), {});

    auto cell = [&](const greengpu::ExperimentResult& r) {
      static char buf[64];
      const double saving = 100.0 * (1.0 - r.total_energy().get() / base.total_energy().get());
      const double dt = 100.0 * (r.exec_time.get() / base.exec_time.get() - 1.0);
      std::snprintf(buf, sizeof buf, "%7.0f J %+6.2f%% t%+6.1f%%", r.total_energy().get(),
                    saving, dt);
      return std::string(buf);
    };

    std::printf("%-14s %12.0f | %s | %s | %s %s\n", name.c_str(),
                base.total_energy().get(), cell(scaling).c_str(), cell(division).c_str(),
                cell(green).c_str(),
                (base.verified && scaling.verified && division.verified && green.verified)
                    ? ""
                    : "[VERIFY FAILED]");
    sum_base += base.total_energy().get();
    sum_green += green.total_energy().get();
  }

  std::printf("\nfleet total: GreenGPU %.0f J vs baseline %.0f J -> %.2f%% energy saving\n",
              sum_green, sum_base, 100.0 * (1.0 - sum_green / sum_base));
  std::printf("(the paper reports 21.04%% over its two divisible workloads; GPU-only\n");
  std::printf(" workloads see the frequency-scaling share of the savings only)\n");
  return 0;
}
