// Bringing your own application under GreenGPU management: implement the
// Workload interface (here via the ProfiledWorkload helper), and the runner's
// two tiers manage it like any Rodinia benchmark.
//
// The example app is a divisible Monte-Carlo pi estimator: each iteration
// throws a batch of darts, split r/(1-r) between the CPU and GPU paths.
//
//   ./build/examples/custom_workload

#include <cmath>
#include <cstdio>
#include <vector>

#include "src/common/rng.h"
#include <stdexcept>
#include "src/common/flags.h"
#include "src/greengpu/policy.h"
#include "src/greengpu/runner.h"
#include "src/workloads/workload.h"

namespace {

using namespace gg;

class MonteCarloPi final : public workloads::ProfiledWorkload {
 public:
  static constexpr std::size_t kDarts = 200000;   // real darts per iteration
  static constexpr std::size_t kIterations = 20;

  [[nodiscard]] std::string_view name() const override { return "mc_pi"; }
  [[nodiscard]] std::string_view description() const override {
    return "Custom workload: Monte-Carlo pi (compute-heavy, divisible)";
  }
  [[nodiscard]] std::size_t iterations() const override { return kIterations; }
  [[nodiscard]] bool divisible() const override { return true; }

  [[nodiscard]] workloads::IntensityProfile profile(std::size_t) const override {
    // Compute-bound (high core, light memory); one simulated iteration ~20 s
    // of GPU time at peak; the CPU path is 4x slower per dart.
    return workloads::IntensityProfile{0.85, 0.15, 2.0e-5, 1.0e6, 4.0, 0.9};
  }

  void setup(cudalite::Runtime& rt) override {
    hits_.assign(kDarts, 0);
    total_hits_ = 0;
    dev_scratch_ = rt.alloc<int>(kDarts);
    done_ = false;
  }

  void finish_iteration(cudalite::Runtime&, std::size_t) override {
    for (int h : hits_) total_hits_ += h;
  }

  void teardown(cudalite::Runtime& rt) override {
    rt.free(dev_scratch_);
    done_ = true;
  }

  [[nodiscard]] bool verify() const override {
    if (!done_) return false;
    const double pi = 4.0 * static_cast<double>(total_hits_) /
                      static_cast<double>(kDarts * kIterations);
    return std::fabs(pi - M_PI) < 0.01;
  }

  [[nodiscard]] double estimate() const {
    return 4.0 * static_cast<double>(total_hits_) /
           static_cast<double>(kDarts * kIterations);
  }

 protected:
  [[nodiscard]] std::size_t real_items() const override { return kDarts; }

  void gpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) override {
    throw_darts(begin, end, iter);
  }
  void cpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) override {
    throw_darts(begin, end, iter);
  }

 private:
  void throw_darts(std::size_t begin, std::size_t end, std::size_t iter) {
    for (std::size_t i = begin; i < end; ++i) {
      // Counter-based randomness: identical result for any split.
      Rng rng(iter * kDarts + i);
      const double x = rng.uniform();
      const double y = rng.uniform();
      hits_[i] = (x * x + y * y <= 1.0) ? 1 : 0;
    }
  }

  std::vector<int> hits_;
  long long total_hits_{0};
  cudalite::DeviceBuffer<int> dev_scratch_;
  bool done_{false};
};

}  // namespace

int main(int argc, char** argv) {
  try {
    const gg::Flags flags(argc, argv);
    flags.reject_unknown();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  std::printf("Custom workload under GreenGPU: Monte-Carlo pi\n\n");

  MonteCarloPi base_wl;
  const auto base =
      greengpu::run_experiment(base_wl, greengpu::Policy::best_performance(), {});
  MonteCarloPi green_wl;
  const auto green = greengpu::run_experiment(green_wl, greengpu::Policy::green_gpu(), {});

  std::printf("pi estimate: %.5f (both runs compute the identical value: %s)\n",
              green_wl.estimate(),
              green_wl.estimate() == base_wl.estimate() ? "yes" : "NO");
  std::printf("best-performance: %8.1f s  %9.0f J\n", base.exec_time.get(),
              base.total_energy().get());
  std::printf("greengpu:         %8.1f s  %9.0f J  (%.2f%% energy saving)\n",
              green.exec_time.get(), green.total_energy().get(),
              100.0 * (1.0 - green.total_energy().get() / base.total_energy().get()));
  std::printf("converged division: %.0f%% CPU / %.0f%% GPU\n",
              green.final_ratio * 100.0, (1.0 - green.final_ratio) * 100.0);
  std::printf("results %s\n", (base.verified && green.verified) ? "verified" : "NOT verified");
  return 0;
}
