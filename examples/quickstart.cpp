// Quickstart: run one workload under the GreenGPU holistic policy and under
// the best-performance baseline, and print the energy comparison.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [workload]
//
// The workload argument is any Table II name (default: kmeans).

#include <cstdio>
#include <stdexcept>
#include <string>

#include "src/common/flags.h"
#include "src/greengpu/policy.h"
#include "src/greengpu/runner.h"
#include "src/workloads/registry.h"

int main(int argc, char** argv) {
  using namespace gg;
  std::string name = "kmeans";
  try {
    const Flags flags(argc, argv);
    flags.reject_unknown();
    if (!flags.positional().empty()) name = flags.positional().front();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  std::printf("GreenGPU quickstart: workload '%s'\n", name.c_str());
  std::printf("simulated testbed: GeForce 8800 GTX + Phenom II X2 (see DESIGN.md)\n\n");

  greengpu::RunOptions options;
  const greengpu::ExperimentResult base =
      greengpu::run_experiment(name, greengpu::Policy::best_performance(), options);
  const greengpu::ExperimentResult green =
      greengpu::run_experiment(name, greengpu::Policy::green_gpu(), options);

  auto report = [](const greengpu::ExperimentResult& r) {
    std::printf("  %-18s exec %8.1f s   GPU %9.0f J   CPU %9.0f J   total %9.0f J   %s\n",
                r.policy.c_str(), r.exec_time.get(), r.gpu_energy.get(),
                r.cpu_energy.get(), r.total_energy().get(),
                r.verified ? "results verified" : "VERIFY FAILED");
  };
  report(base);
  report(green);

  const double saving =
      100.0 * (1.0 - green.total_energy() / base.total_energy());
  const double slowdown = 100.0 * (green.exec_time / base.exec_time - 1.0);
  std::printf("\nGreenGPU vs best-performance: %.2f%% energy saving, %.2f%% time delta\n",
              saving, slowdown);
  if (green.final_ratio > 0.0) {
    std::printf("final workload division: %.0f%% CPU / %.0f%% GPU\n",
                100.0 * green.final_ratio, 100.0 * (1.0 - green.final_ratio));
  }
  return 0;
}
