// Multi-GPU demo: run kmeans across the CPU and several simulated GPUs and
// watch the division tier spread the work.
//
//   ./build/examples/multi_gpu [gpu_count]   (default 2)

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "src/common/flags.h"
#include "src/greengpu/multi_runner.h"
#include "src/workloads/kmeans.h"

int main(int argc, char** argv) {
  using namespace gg;
  std::size_t gpus = 2;
  try {
    const Flags flags(argc, argv);
    flags.reject_unknown();
    if (!flags.positional().empty()) {
      gpus = static_cast<std::size_t>(std::atoi(flags.positional().front().c_str()));
    }
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (gpus == 0 || gpus > 16) {
    std::fprintf(stderr, "gpu_count must be in [1, 16]\n");
    return 1;
  }

  std::printf("GreenGPU multi-GPU demo: kmeans on CPU + %zu simulated 8800 GTX cards\n\n",
              gpus);

  workloads::Kmeans workload{};
  const auto result = greengpu::run_multi_experiment(
      workload, gpus,
      greengpu::MultiPolicy::green_gpu(greengpu::MultiDividerKind::kProfiling));

  std::printf("iter  shares (CPU");
  for (std::size_t g = 0; g < gpus; ++g) std::printf(" | GPU%zu", g);
  std::printf(")          slot times (s)\n");
  for (const auto& it : result.iterations) {
    if (it.index > 6 && it.index + 2 < result.iterations.size()) continue;
    std::printf("%4zu  ", it.index);
    for (double s : it.shares) std::printf("%5.1f%% ", s * 100.0);
    std::printf("   ");
    for (const Seconds t : it.slot_times) std::printf("%7.1f ", t.get());
    std::printf("\n");
  }

  std::printf("\nexec time %.1f s, total energy %.0f J (CPU %.0f J",
              result.exec_time.get(), result.total_energy().get(),
              result.cpu_energy.get());
  for (std::size_t g = 0; g < gpus; ++g) {
    std::printf(", GPU%zu %.0f J", g, result.per_gpu_energy[g].get());
  }
  std::printf(")\nresults %s\n", result.verified ? "verified" : "NOT verified");
  return 0;
}
