#include "src/workloads/profile.h"

#include <gtest/gtest.h>

namespace gg::workloads {
namespace {

using namespace gg::literals;

const sim::GpuSpec kGpu{};
const sim::CpuSpec kCpu{};

TEST(MakeGpuEstimate, PeakUtilizationMatchesTargets) {
  IntensityProfile p{0.6, 0.3, 1e-3, 100.0, 4.0, 0.8};
  const auto e = make_gpu_estimate(kGpu, 576_MHz, 900_MHz, p, 100.0);
  EXPECT_DOUBLE_EQ(e.units, 100.0);
  // Reconstruct utilizations: t_core / t_unit at peak.
  const double t_core = e.core_cycles_per_unit / kGpu.core_throughput(576_MHz);
  const double t_mem = e.mem_bytes_per_unit / kGpu.mem_bandwidth(900_MHz);
  const double t_unit = std::max({t_core, t_mem, e.overhead_per_unit_s});
  EXPECT_NEAR(t_unit, 1e-3, 1e-15);
  EXPECT_NEAR(t_core / t_unit, 0.6, 1e-12);
  EXPECT_NEAR(t_mem / t_unit, 0.3, 1e-12);
}

TEST(MakeGpuEstimate, ValidatesInputs) {
  IntensityProfile p;
  p.core_util = 1.5;
  EXPECT_THROW(make_gpu_estimate(kGpu, 576_MHz, 900_MHz, p, 1.0), std::invalid_argument);
  p = IntensityProfile{};
  p.unit_time_s = 0.0;
  EXPECT_THROW(make_gpu_estimate(kGpu, 576_MHz, 900_MHz, p, 1.0), std::invalid_argument);
  p = IntensityProfile{};
  EXPECT_THROW(make_gpu_estimate(kGpu, 576_MHz, 900_MHz, p, 0.0), std::invalid_argument);
}

TEST(MakeCpuWork, SlowdownSetsDuration) {
  IntensityProfile p{0.5, 0.5, 1e-3, 100.0, 6.0, 0.85};
  const sim::CpuWork w = make_cpu_work(kCpu, 2800_MHz, p, 50.0);
  EXPECT_DOUBLE_EQ(w.units, 50.0);
  // Per-unit CPU time at peak = slowdown * gpu unit time.
  const double t_compute = w.ops_per_unit / kCpu.throughput(2800_MHz);
  const double t_unit = t_compute + w.overhead_per_unit.get();
  EXPECT_NEAR(t_unit, 6.0e-3, 1e-12);
  // Compute fraction splits the unit time.
  EXPECT_NEAR(t_compute / t_unit, 0.85, 1e-9);
}

TEST(MakeCpuWork, ValidatesInputs) {
  IntensityProfile p;
  EXPECT_THROW(make_cpu_work(kCpu, 2800_MHz, p, 0.0), std::invalid_argument);
  p.cpu_slowdown = 0.0;
  EXPECT_THROW(make_cpu_work(kCpu, 2800_MHz, p, 1.0), std::invalid_argument);
  p = IntensityProfile{};
  p.cpu_compute_fraction = 1.2;
  EXPECT_THROW(make_cpu_work(kCpu, 2800_MHz, p, 1.0), std::invalid_argument);
}

TEST(MakeCpuWork, UsesAllCoresByDefault) {
  IntensityProfile p{0.5, 0.5, 1e-3, 100.0, 6.0, 0.85};
  EXPECT_EQ(make_cpu_work(kCpu, 2800_MHz, p, 1.0).active_cores, 0);
}

/// The balance identity behind the division tier: with CPU share r, the CPU
/// chunk takes r*slowdown and the GPU chunk (1-r), both relative to the
/// all-GPU iteration time.  Equal finish at r* = 1/(1+slowdown).
class BalanceTest : public ::testing::TestWithParam<double> {};

TEST_P(BalanceTest, EqualTimeShareMatchesFormula) {
  const double s = GetParam();
  IntensityProfile p{0.5, 0.3, 1e-3, 1000.0, s, 0.85};
  const double r_star = 1.0 / (1.0 + s);
  const auto gpu = make_gpu_estimate(kGpu, 576_MHz, 900_MHz, p, (1.0 - r_star) * 1000.0);
  const auto cpu = make_cpu_work(kCpu, 2800_MHz, p, r_star * 1000.0);
  const double t_gpu = gpu.units * std::max({gpu.core_cycles_per_unit /
                                                 kGpu.core_throughput(576_MHz),
                                             gpu.mem_bytes_per_unit /
                                                 kGpu.mem_bandwidth(900_MHz),
                                             gpu.overhead_per_unit_s});
  const double t_cpu = cpu.units * (cpu.ops_per_unit / kCpu.throughput(2800_MHz) +
                                    cpu.overhead_per_unit.get());
  EXPECT_NEAR(t_gpu, t_cpu, 1e-9 * t_gpu);
}

INSTANTIATE_TEST_SUITE_P(SlowdownSweep, BalanceTest,
                         ::testing::Values(1.0, 2.0, 4.0, 6.0, 9.0, 14.0));

}  // namespace
}  // namespace gg::workloads
