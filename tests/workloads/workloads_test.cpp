// Parameterized correctness tests over the full Table II workload suite:
// every workload must run end-to-end on the simulated stack and verify its
// results against the scalar reference, under several policies.
#include <gtest/gtest.h>

#include "src/greengpu/policy.h"
#include "src/greengpu/runner.h"
#include "src/workloads/registry.h"

namespace gg::workloads {
namespace {

class WorkloadSuiteTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadSuiteTest, RegistryConstructs) {
  const WorkloadPtr wl = make_workload(GetParam());
  ASSERT_NE(wl, nullptr);
  EXPECT_GT(wl->iterations(), 0u);
  EXPECT_FALSE(wl->name().empty());
  EXPECT_FALSE(wl->description().empty());
}

TEST_P(WorkloadSuiteTest, ProfileTargetsAreValidUtilizations) {
  const WorkloadPtr wl = make_workload(GetParam());
  for (std::size_t it = 0; it < wl->iterations(); ++it) {
    const IntensityProfile p = wl->profile(it);
    EXPECT_GE(p.core_util, 0.0);
    EXPECT_LE(p.core_util, 1.0);
    EXPECT_GE(p.mem_util, 0.0);
    EXPECT_LE(p.mem_util, 1.0);
    EXPECT_GT(p.unit_time_s, 0.0);
    EXPECT_GT(p.units_per_iteration, 0.0);
    EXPECT_GT(p.cpu_slowdown, 0.0);
  }
}

TEST_P(WorkloadSuiteTest, VerifiesUnderBestPerformance) {
  const WorkloadPtr wl = make_workload(GetParam());
  greengpu::RunOptions o;
  o.pool_workers = 2;
  const auto r = greengpu::run_experiment(*wl, greengpu::Policy::best_performance(), o);
  EXPECT_TRUE(r.verified) << GetParam();
  EXPECT_GT(r.exec_time.get(), 0.0);
  EXPECT_GT(r.gpu_energy.get(), 0.0);
}

TEST_P(WorkloadSuiteTest, VerifiesUnderGreenGpu) {
  // Results must be identical (and correct) regardless of how the work was
  // divided and clocked.
  const WorkloadPtr wl = make_workload(GetParam());
  greengpu::RunOptions o;
  o.pool_workers = 2;
  const auto r = greengpu::run_experiment(*wl, greengpu::Policy::green_gpu(), o);
  EXPECT_TRUE(r.verified) << GetParam();
}

TEST_P(WorkloadSuiteTest, ScalingNeverIncreasesGpuEnergyMuch) {
  // Frequency scaling may cost a little time but must not blow up energy:
  // the WMA's loss weighting is performance-first.
  const std::string name = GetParam();
  greengpu::RunOptions o;
  o.pool_workers = 2;
  const auto base =
      greengpu::run_experiment(name, greengpu::Policy::best_performance(), o);
  const auto scaled = greengpu::run_experiment(name, greengpu::Policy::scaling_only(), o);
  EXPECT_LT(scaled.gpu_energy.get(), base.gpu_energy.get() * 1.02) << name;
  EXPECT_LT(scaled.exec_time.get(), base.exec_time.get() * 1.10) << name;
}

INSTANTIATE_TEST_SUITE_P(TableII, WorkloadSuiteTest,
                         ::testing::ValuesIn(all_workload_names()),
                         [](const auto& param_info) {
                           std::string n = param_info.param;
                           for (char& c : n) {
                             if (c == '-' || c == ' ') c = '_';
                           }
                           return n;
                         });

TEST(Registry, AllNamesCount) { EXPECT_EQ(all_workload_names().size(), 9u); }

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_workload("not-a-workload"), std::invalid_argument);
}

TEST(Registry, AliasesResolve) {
  EXPECT_EQ(make_workload("PF")->name(), "pathfinder");
  EXPECT_EQ(make_workload("qrng")->name(), "QG");
  EXPECT_EQ(make_workload("SC")->name(), "streamcluster");
  EXPECT_EQ(make_workload("srad")->name(), "srad_v2");
}

TEST(Registry, DivisibleWorkloadsArePaperPair) {
  const auto names = divisible_workload_names();
  ASSERT_EQ(names.size(), 2u);
  for (const auto& n : names) {
    EXPECT_TRUE(make_workload(n)->divisible());
  }
  // All others are GPU-only in the paper's experiments.
  for (const auto& n : all_workload_names()) {
    const auto wl = make_workload(n);
    const bool should_divide = n == "kmeans" || n == "hotspot";
    EXPECT_EQ(wl->divisible(), should_divide) << n;
  }
}

TEST(FluctuatingWorkloads, ProfilesActuallyFluctuate) {
  // Table II flags QG and streamcluster as highly fluctuating.
  for (const auto& name : {"QG", "streamcluster"}) {
    const auto wl = make_workload(name);
    double lo = 1.0, hi = 0.0;
    for (std::size_t it = 0; it < wl->iterations(); ++it) {
      const double u = wl->profile(it).core_util;
      lo = std::min(lo, u);
      hi = std::max(hi, u);
    }
    EXPECT_GT(hi - lo, 0.3) << name;
  }
}

TEST(StableWorkloads, ProfilesAreConstant) {
  for (const auto& name : {"bfs", "lud", "nbody", "pathfinder", "srad_v2",
                           "hotspot", "kmeans"}) {
    const auto wl = make_workload(name);
    const IntensityProfile first = wl->profile(0);
    for (std::size_t it = 1; it < wl->iterations(); ++it) {
      EXPECT_EQ(wl->profile(it).core_util, first.core_util) << name;
      EXPECT_EQ(wl->profile(it).mem_util, first.mem_util) << name;
    }
  }
}

TEST(TableIIClasses, UtilizationClassesMatchPaper) {
  auto core_of = [](const char* n) { return make_workload(n)->profile(0).core_util; };
  auto mem_of = [](const char* n) { return make_workload(n)->profile(0).mem_util; };
  // bfs: high core and memory.
  EXPECT_GE(core_of("bfs"), 0.75);
  EXPECT_GE(mem_of("bfs"), 0.75);
  // lud, hotspot, kmeans: medium core, low memory.
  for (const char* n : {"lud", "hotspot", "kmeans"}) {
    EXPECT_GE(core_of(n), 0.4) << n;
    EXPECT_LE(core_of(n), 0.7) << n;
    EXPECT_LE(mem_of(n), 0.35) << n;
  }
  // pathfinder: low both.
  EXPECT_LE(core_of("pathfinder"), 0.4);
  EXPECT_LE(mem_of("pathfinder"), 0.3);
  // nbody: core-bounded (Section III-A).
  EXPECT_GE(core_of("nbody"), 0.9);
  // srad: high core, medium memory.
  EXPECT_GE(core_of("srad_v2"), 0.75);
  EXPECT_GE(mem_of("srad_v2"), 0.35);
  EXPECT_LE(mem_of("srad_v2"), 0.65);
}

}  // namespace
}  // namespace gg::workloads
