#include "src/workloads/trace_workload.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/greengpu/policy.h"
#include "src/greengpu/runner.h"

namespace gg::workloads {
namespace {

TEST(TraceWorkload, ValidatesPhases) {
  EXPECT_THROW(TraceWorkload({}), std::invalid_argument);
  EXPECT_THROW(TraceWorkload({{1.5, 0.5, 1.0}}), std::invalid_argument);
  EXPECT_THROW(TraceWorkload({{0.5, 0.5, 0.0}}), std::invalid_argument);
}

TEST(TraceWorkload, PhasesDriveProfiles) {
  TraceWorkload wl({{0.9, 0.3, 2.0}, {0.2, 0.1, 4.0}});
  EXPECT_EQ(wl.iterations(), 2u);
  EXPECT_DOUBLE_EQ(wl.profile(0).core_util, 0.9);
  EXPECT_DOUBLE_EQ(wl.profile(1).core_util, 0.2);
  // Phase duration = units * unit_time.
  EXPECT_NEAR(wl.profile(0).units_per_iteration * wl.profile(0).unit_time_s, 2.0, 1e-12);
  EXPECT_NEAR(wl.trace_duration().get(), 6.0, 1e-12);
}

TEST(TraceWorkload, CsvParsingMergesEqualSamples) {
  std::istringstream csv(
      "time_s,core_util,mem_util\n"
      "0,50,20\n"
      "1,50,20\n"
      "2,90,70\n"
      "3,90,70\n"
      "4,10,5\n");
  const TraceWorkload wl = TraceWorkload::from_csv(csv);
  ASSERT_EQ(wl.phases().size(), 3u);
  EXPECT_DOUBLE_EQ(wl.phases()[0].core_util, 0.50);
  EXPECT_DOUBLE_EQ(wl.phases()[0].duration_s, 2.0);  // two 1 s samples
  EXPECT_DOUBLE_EQ(wl.phases()[1].core_util, 0.90);
  EXPECT_DOUBLE_EQ(wl.phases()[1].mem_util, 0.70);
  EXPECT_DOUBLE_EQ(wl.phases()[2].core_util, 0.10);
}

TEST(TraceWorkload, CsvAcceptsFractions) {
  std::istringstream csv("0,0.5,0.2\n1,0.5,0.2\n");
  const TraceWorkload wl = TraceWorkload::from_csv(csv);
  EXPECT_DOUBLE_EQ(wl.phases()[0].core_util, 0.5);
}

TEST(TraceWorkload, CsvRejectsGarbage) {
  std::istringstream bad("0,0.5\n");
  EXPECT_THROW(TraceWorkload::from_csv(bad), std::invalid_argument);
  std::istringstream backwards("1,0.5,0.5\n0,0.5,0.5\n");
  EXPECT_THROW(TraceWorkload::from_csv(backwards), std::invalid_argument);
}

TEST(TraceWorkload, RunsAndVerifiesUnderScaling) {
  TraceWorkload wl({{0.9, 0.4, 10.0}, {0.2, 0.1, 10.0}, {0.9, 0.4, 10.0}});
  greengpu::RunOptions o;
  o.pool_workers = 2;
  const auto r = greengpu::run_experiment(wl, greengpu::Policy::scaling_only(), o);
  EXPECT_TRUE(r.verified);
  // Replay at peak clocks takes the trace duration (plus the clock ramp).
  EXPECT_GE(r.exec_time.get(), 30.0 - 1e-6);
  EXPECT_LT(r.exec_time.get(), 33.0);
}

TEST(TraceWorkload, ScalingSavesEnergyOnIdleHeavyTrace) {
  TraceWorkload base_wl({{0.3, 0.15, 30.0}});
  TraceWorkload scaled_wl({{0.3, 0.15, 30.0}});
  greengpu::RunOptions o;
  o.pool_workers = 2;
  const auto base =
      greengpu::run_experiment(base_wl, greengpu::Policy::best_performance(), o);
  const auto scaled =
      greengpu::run_experiment(scaled_wl, greengpu::Policy::scaling_only(), o);
  EXPECT_TRUE(base.verified);
  EXPECT_TRUE(scaled.verified);
  EXPECT_LT(scaled.gpu_energy.get(), base.gpu_energy.get());
}

}  // namespace
}  // namespace gg::workloads
