#include <gtest/gtest.h>

#include "src/greengpu/runner.h"
#include "src/workloads/kmeans_pipeline.h"
#include "src/workloads/registry.h"
#include "src/workloads/srad_stream.h"

namespace gg::workloads {
namespace {

using greengpu::ExperimentResult;
using greengpu::Policy;
using greengpu::RunOptions;

RunOptions quick_options() {
  RunOptions options;
  options.pool_workers = 2;
  return options;
}

/// Sum of an iteration-record field across the run.
double total_overlap(const ExperimentResult& r) {
  double s = 0.0;
  for (const auto& it : r.iterations) s += it.overlap_time.get();
  return s;
}
double total_copy_busy(const ExperimentResult& r) {
  double s = 0.0;
  for (const auto& it : r.iterations) s += it.copy_busy_time.get();
  return s;
}

// The tentpole claim, checked with real compute on both workloads: the
// pipelined schedule computes the SAME answer as the synchronous baseline
// and finishes >= 1.3x faster (transfer-bound by construction) for less
// total energy.
TEST(PipelineWorkloads, KmeansPipelineVerifiesAndBeatsSynchronousBaseline) {
  KmeansPipelineConfig sync_cfg;
  sync_cfg.pipelined = false;
  KmeansPipeline sync_wl(sync_cfg);
  const ExperimentResult sync =
      run_experiment(sync_wl, Policy::best_performance(), quick_options());
  ASSERT_TRUE(sync.verified);

  KmeansPipelineConfig pipe_cfg;
  pipe_cfg.pipelined = true;
  KmeansPipeline pipe_wl(pipe_cfg);
  const ExperimentResult pipe =
      run_experiment(pipe_wl, Policy::best_performance(), quick_options());
  ASSERT_TRUE(pipe.verified);

  EXPECT_GE(sync.exec_time.get() / pipe.exec_time.get(), 1.3);
  EXPECT_LT(pipe.total_energy().get(), sync.total_energy().get());
  // The pipelined run overlapped most of its transfer time with kernels;
  // the synchronous run overlapped none.
  EXPECT_GT(total_copy_busy(pipe), 0.0);
  EXPECT_GT(total_overlap(pipe), 0.3 * total_copy_busy(pipe));
  EXPECT_DOUBLE_EQ(total_overlap(sync), 0.0);
}

TEST(PipelineWorkloads, SradStreamVerifiesAndBeatsSynchronousBaseline) {
  SradStreamConfig sync_cfg;
  sync_cfg.pipelined = false;
  SradStream sync_wl(sync_cfg);
  const ExperimentResult sync =
      run_experiment(sync_wl, Policy::best_performance(), quick_options());
  ASSERT_TRUE(sync.verified);

  SradStreamConfig pipe_cfg;
  pipe_cfg.pipelined = true;
  SradStream pipe_wl(pipe_cfg);
  const ExperimentResult pipe =
      run_experiment(pipe_wl, Policy::best_performance(), quick_options());
  ASSERT_TRUE(pipe.verified);

  EXPECT_GE(sync.exec_time.get() / pipe.exec_time.get(), 1.3);
  EXPECT_LT(pipe.total_energy().get(), sync.total_energy().get());
  EXPECT_GT(total_overlap(pipe), 0.0);
  EXPECT_DOUBLE_EQ(total_overlap(sync), 0.0);
}

TEST(PipelineWorkloads, DeeperPipelinesStillVerify) {
  for (const std::size_t depth : {std::size_t{3}, std::size_t{4}}) {
    KmeansPipelineConfig kc;
    kc.stream_depth = depth;
    kc.iterations = 4;
    KmeansPipeline km(kc);
    EXPECT_TRUE(run_experiment(km, Policy::best_performance(), quick_options()).verified)
        << "kmeans_pipeline depth " << depth;

    SradStreamConfig sc;
    sc.stream_depth = depth;
    sc.iterations = 4;
    SradStream sr(sc);
    EXPECT_TRUE(run_experiment(sr, Policy::best_performance(), quick_options()).verified)
        << "srad_stream depth " << depth;
  }
}

TEST(PipelineWorkloads, ModelOnlyRunIsTimingIdenticalToFullRun) {
  for (const std::string& name : pipeline_workload_names()) {
    RunOptions full = quick_options();
    const ExperimentResult real = greengpu::run_experiment(
        name, Policy::best_performance(), full);
    RunOptions model = quick_options();
    model.model_only = true;
    const ExperimentResult modeled = greengpu::run_experiment(
        name, Policy::best_performance(), model);
    EXPECT_TRUE(real.verified) << name;
    EXPECT_TRUE(modeled.verify_skipped) << name;
    EXPECT_DOUBLE_EQ(modeled.exec_time.get(), real.exec_time.get()) << name;
    EXPECT_DOUBLE_EQ(modeled.gpu_energy.get(), real.gpu_energy.get()) << name;
    EXPECT_DOUBLE_EQ(modeled.cpu_energy.get(), real.cpu_energy.get()) << name;
  }
}

TEST(PipelineWorkloads, RegistryAppliesPipelineTuning) {
  const PipelineTuning saved = pipeline_tuning();
  PipelineTuning tuning;
  tuning.pipelined = false;
  tuning.stream_depth = 3;
  tuning.chunks = 5;
  set_pipeline_tuning(tuning);

  auto km = make_workload("kmeans_pipeline");
  const auto& kc = dynamic_cast<KmeansPipeline&>(*km).config();
  EXPECT_FALSE(kc.pipelined);
  EXPECT_EQ(kc.stream_depth, 3u);
  EXPECT_EQ(kc.chunks, 5u);

  auto sr = make_workload("srad_stream");
  const auto& sc = dynamic_cast<SradStream&>(*sr).config();
  EXPECT_FALSE(sc.pipelined);
  EXPECT_EQ(sc.frames_per_iteration, 5u);

  set_pipeline_tuning(saved);
  // The Table II suite is untouched: pipeline workloads are opt-in.
  for (const std::string& name : all_workload_names()) {
    EXPECT_NE(name, "kmeans_pipeline");
    EXPECT_NE(name, "srad_stream");
  }
}

}  // namespace
}  // namespace gg::workloads
