// Direct algorithm-level tests of the workload kernels (beyond the
// end-to-end verify() checks): boundary conditions, invariants and known
// small cases.
#include <gtest/gtest.h>

#include "src/greengpu/policy.h"
#include "src/greengpu/runner.h"
#include "src/workloads/bfs.h"
#include "src/workloads/hotspot.h"
#include "src/workloads/kmeans.h"
#include "src/workloads/lud.h"
#include "src/workloads/nbody.h"
#include "src/workloads/pathfinder.h"
#include "src/workloads/qrng.h"
#include "src/workloads/srad.h"
#include "src/workloads/streamcluster.h"

namespace gg::workloads {
namespace {

greengpu::RunOptions fast() {
  greengpu::RunOptions o;
  o.pool_workers = 2;
  return o;
}

template <typename W>
greengpu::ExperimentResult run(W& wl) {
  return greengpu::run_experiment(wl, greengpu::Policy::best_performance(), fast());
}

// --- kmeans -----------------------------------------------------------------

TEST(KmeansKernel, CentroidsConvergeTowardBlobAnchors) {
  KmeansConfig cfg;
  cfg.points = 4096;
  cfg.dims = 2;
  cfg.clusters = 3;
  cfg.iterations = 15;
  Kmeans wl(cfg);
  const auto r = run(wl);
  ASSERT_TRUE(r.verified);
  // After convergence every point's nearest centroid must be closer than
  // the blob spacing; cheap sanity: centroids are finite and distinct.
  const auto& c = wl.centroids();
  ASSERT_EQ(c.size(), 3u * 2u);
  for (double v : c) EXPECT_TRUE(std::isfinite(v));
  EXPECT_NE(c[0], c[2]);
}

TEST(KmeansKernel, SeedChangesData) {
  KmeansConfig a;
  a.points = 64;
  KmeansConfig b = a;
  b.seed = a.seed + 1;
  Kmeans wa(a), wb(b);
  EXPECT_NE(wa.centroids()[0], wb.centroids()[0]);
}

// --- hotspot ----------------------------------------------------------------

TEST(HotspotKernel, TemperaturesStayBounded) {
  HotspotConfig cfg;
  cfg.rows = 32;
  cfg.cols = 32;
  cfg.iterations = 20;
  Hotspot wl(cfg);
  const auto r = run(wl);
  EXPECT_TRUE(r.verified);
  // With coupling to an 80-degree ambient and bounded power injection, the
  // grid cannot blow up: verify() already checked exact values; this test
  // guards the physical plausibility of the stencil constants.
}

TEST(HotspotKernel, SingleRowGridHandlesBoundaries) {
  HotspotConfig cfg;
  cfg.rows = 1;
  cfg.cols = 16;
  cfg.iterations = 4;
  Hotspot wl(cfg);
  EXPECT_TRUE(run(wl).verified);
}

// --- bfs --------------------------------------------------------------------

TEST(BfsKernel, ChainGraphDistancesAreExact) {
  BfsConfig cfg;
  cfg.nodes = 64;
  cfg.avg_degree = 1;  // only the chain edges v-1 -> v
  cfg.iterations = 70;  // > diameter
  Bfs wl(cfg);
  const auto r = run(wl);
  ASSERT_TRUE(r.verified);
  const auto& d = wl.distances();
  ASSERT_EQ(d.size(), 64u);
  for (std::size_t v = 0; v < 64; ++v) EXPECT_EQ(d[v], static_cast<int>(v));
}

TEST(BfsKernel, DistancesMonotoneNonNegative) {
  BfsConfig cfg;
  cfg.nodes = 512;
  cfg.iterations = 40;
  Bfs wl(cfg);
  ASSERT_TRUE(run(wl).verified);
  for (int d : wl.distances()) EXPECT_GE(d, 0);
  EXPECT_EQ(wl.distances()[0], 0);  // the source
}

// --- lud --------------------------------------------------------------------

TEST(LudKernel, SmallMatrixVerifies) {
  LudConfig cfg;
  cfg.dim = 8;
  cfg.iterations = 3;
  Lud wl(cfg);
  EXPECT_TRUE(run(wl).verified);
}

TEST(LudKernel, RejectsDegenerateDim) {
  LudConfig cfg;
  cfg.dim = 1;
  EXPECT_THROW(Lud{cfg}, std::invalid_argument);
}

// --- nbody ------------------------------------------------------------------

TEST(NbodyKernel, MomentumApproximatelyConserved) {
  // Softened pairwise forces are antisymmetric, so total momentum drifts
  // only by integration error.
  NbodyConfig cfg;
  cfg.bodies = 128;
  cfg.iterations = 10;
  Nbody wl(cfg);
  EXPECT_TRUE(run(wl).verified);
  // verify() compares against the serial reference bitwise; conservation is
  // implied if the reference is physical.  Spot-check finiteness through a
  // longer run with a larger dt.
  NbodyConfig wild = cfg;
  wild.dt = 5e-3;
  Nbody wl2(wild);
  EXPECT_TRUE(run(wl2).verified);
}

// --- pathfinder ---------------------------------------------------------------

TEST(PathfinderKernel, CostsAreMonotoneNonDecreasingInRows) {
  PathfinderConfig cfg;
  cfg.cols = 64;
  cfg.iterations = 12;
  Pathfinder wl(cfg);
  EXPECT_TRUE(run(wl).verified);
  // Weights are non-negative, so the DP cost of any cell is at least the
  // minimum first-row weight.
  int min_w = 100;
  for (std::size_t c = 0; c < 64; ++c) min_w = std::min(min_w, wl.weight(0, c));
  EXPECT_GE(min_w, 0);
}

TEST(PathfinderKernel, WeightsDeterministicAndBounded) {
  PathfinderConfig cfg;
  Pathfinder wl(cfg);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      const int w = wl.weight(r, c);
      EXPECT_GE(w, 0);
      EXPECT_LT(w, 10);
      EXPECT_EQ(w, wl.weight(r, c));  // pure function of (row, col)
    }
  }
}

// --- QG ---------------------------------------------------------------------

TEST(QrngKernel, IterationSumsNearExpectation) {
  QrngConfig cfg;
  cfg.points = 4096;
  cfg.iterations = 4;
  cfg.phase_length = 2;
  Qrng wl(cfg);
  ASSERT_TRUE(run(wl).verified);
  ASSERT_EQ(wl.iteration_sums().size(), 4u);
  // Light-phase iterations emit raw quasirandom values: their mean is ~0.5.
  const double light_mean = wl.iteration_sums()[2] / 4096.0;
  EXPECT_NEAR(light_mean, 0.5, 0.02);
  // Heavy-phase iterations emit a symmetric transform: mean near 0.
  const double heavy_mean = wl.iteration_sums()[0] / 4096.0;
  EXPECT_NEAR(heavy_mean, 0.0, 0.05);
}

TEST(QrngKernel, RadicalInverseKnownValues) {
  EXPECT_DOUBLE_EQ(Qrng::radical_inverse(1), 0.5);
  EXPECT_DOUBLE_EQ(Qrng::radical_inverse(2), 0.25);
  EXPECT_DOUBLE_EQ(Qrng::radical_inverse(3), 0.75);
  EXPECT_DOUBLE_EQ(Qrng::radical_inverse(4), 0.125);
  EXPECT_DOUBLE_EQ(Qrng::radical_inverse(0), 0.0);
}

// --- srad ---------------------------------------------------------------------

TEST(SradKernel, IntensitiesStayPositive) {
  SradConfig cfg;
  cfg.rows = 24;
  cfg.cols = 24;
  cfg.iterations = 12;
  Srad wl(cfg);
  EXPECT_TRUE(run(wl).verified);
}

TEST(SradKernel, StrongDiffusionStillVerifies) {
  SradConfig cfg;
  cfg.rows = 16;
  cfg.cols = 16;
  cfg.iterations = 8;
  cfg.lambda = 0.2;
  Srad wl(cfg);
  EXPECT_TRUE(run(wl).verified);
}

// --- streamcluster ------------------------------------------------------------

TEST(StreamclusterKernel, CostNeverIncreasesAcrossRounds) {
  StreamclusterConfig cfg;
  cfg.points = 512;
  cfg.dims = 8;
  cfg.iterations = 12;
  Streamcluster wl(cfg);
  ASSERT_TRUE(run(wl).verified);
  // Every accepted candidate strictly reduces the total assignment cost,
  // and rejected ones leave it unchanged — so the final cost is at most the
  // initial all-to-point-0 cost.
  double initial = 0.0;
  {
    Streamcluster fresh(cfg);  // recompute the initial cost definitionally
    sim::Platform platform;
    cudalite::Runtime rt(platform, 2);
    fresh.setup(rt);
    fresh.teardown(rt);
    initial = fresh.total_cost();
  }
  EXPECT_LE(wl.total_cost(), initial + 1e-9);
  EXPECT_GT(wl.total_cost(), 0.0);
}

}  // namespace
}  // namespace gg::workloads
