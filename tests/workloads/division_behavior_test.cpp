// Division-specific behaviour of the two divisible workloads (kmeans and
// hotspot): correctness under arbitrary splits and the paper's convergence
// anchors.
#include <gtest/gtest.h>

#include "src/greengpu/policy.h"
#include "src/greengpu/runner.h"
#include "src/workloads/hotspot.h"
#include "src/workloads/kmeans.h"

namespace gg::workloads {
namespace {

greengpu::RunOptions fast() {
  greengpu::RunOptions o;
  o.pool_workers = 2;
  return o;
}

KmeansConfig small_kmeans() {
  KmeansConfig cfg;
  cfg.points = 1024;
  cfg.dims = 4;
  cfg.clusters = 5;
  cfg.iterations = 10;
  return cfg;
}

HotspotConfig small_hotspot() {
  HotspotConfig cfg;
  cfg.rows = 48;
  cfg.cols = 48;
  cfg.iterations = 10;
  return cfg;
}

class SplitRatioTest : public ::testing::TestWithParam<double> {};

TEST_P(SplitRatioTest, KmeansCorrectUnderAnyStaticSplit) {
  Kmeans wl(small_kmeans());
  const auto r =
      greengpu::run_experiment(wl, greengpu::Policy::static_division(GetParam()), fast());
  EXPECT_TRUE(r.verified) << "ratio " << GetParam();
}

TEST_P(SplitRatioTest, HotspotCorrectUnderAnyStaticSplit) {
  Hotspot wl(small_hotspot());
  const auto r =
      greengpu::run_experiment(wl, greengpu::Policy::static_division(GetParam()), fast());
  EXPECT_TRUE(r.verified) << "ratio " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RatioSweep, SplitRatioTest,
                         ::testing::Values(0.0, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90));

TEST(KmeansDivision, ConvergesNearPaperRatio) {
  // Paper Section VII-B: the static optimum is 15/85 and the dynamic
  // algorithm lands on 15-20 % CPU.
  Kmeans wl{};  // default (paper-calibrated) profile
  const auto r = greengpu::run_experiment(wl, greengpu::Policy::division_only(), fast());
  EXPECT_GE(r.final_ratio, 0.10);
  EXPECT_LE(r.final_ratio, 0.20);
  EXPECT_TRUE(r.verified);
}

TEST(HotspotDivision, ConvergesToFiftyFifty) {
  // Paper Section VII-B: hotspot's optimum is 50/50 and the algorithm
  // converges exactly there.
  Hotspot wl{};
  const auto r = greengpu::run_experiment(wl, greengpu::Policy::division_only(), fast());
  EXPECT_NEAR(r.final_ratio, 0.50, 1e-9);
  EXPECT_TRUE(r.verified);
}

TEST(KmeansDivision, InitialRatioDoesNotChangeConvergence) {
  // Section VII-B: "our algorithm converges to the balanced workload
  // division regardless of this initial division ratio."
  double converged[3];
  int idx = 0;
  for (double init : {0.05, 0.30, 0.80}) {
    greengpu::GreenGpuParams params;
    params.division.initial_ratio = init;
    Kmeans wl{};
    const auto r =
        greengpu::run_experiment(wl, greengpu::Policy::division_only(params), fast());
    converged[idx++] = r.final_ratio;
  }
  EXPECT_NEAR(converged[0], converged[1], 0.051);
  EXPECT_NEAR(converged[1], converged[2], 0.051);
}

TEST(KmeansDivision, ExecutionTimesBalanceAfterConvergence) {
  Kmeans wl{};
  const auto r = greengpu::run_experiment(wl, greengpu::Policy::division_only(), fast());
  ASSERT_FALSE(r.iterations.empty());
  const auto& last = r.iterations.back();
  // Both sides finish within 10 % of each other at the converged division.
  EXPECT_GT(last.cpu_time.get(), 0.0);
  EXPECT_NEAR(last.cpu_time.get() / last.gpu_time.get(), 1.0, 0.10);
}

TEST(HotspotDivision, DivisionShortensIterations) {
  Hotspot base_wl{};
  const auto base =
      greengpu::run_experiment(base_wl, greengpu::Policy::best_performance(), fast());
  Hotspot div_wl{};
  const auto divided =
      greengpu::run_experiment(div_wl, greengpu::Policy::division_only(), fast());
  EXPECT_LT(divided.exec_time.get(), base.exec_time.get());
  EXPECT_LT(divided.total_energy().get(), base.total_energy().get());
}

TEST(KmeansDivision, ResultsIdenticalAcrossPolicies) {
  // The clustering output must not depend on the energy policy.
  Kmeans a(small_kmeans());
  Kmeans b(small_kmeans());
  (void)greengpu::run_experiment(a, greengpu::Policy::best_performance(), fast());
  (void)greengpu::run_experiment(b, greengpu::Policy::green_gpu(), fast());
  ASSERT_EQ(a.centroids().size(), b.centroids().size());
  for (std::size_t i = 0; i < a.centroids().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.centroids()[i], b.centroids()[i]);
  }
}

}  // namespace
}  // namespace gg::workloads
