#include "src/workloads/sobol.h"

#include <gtest/gtest.h>

#include <set>

#include "src/common/rng.h"
#include "src/workloads/qrng.h"

namespace gg::workloads {
namespace {

TEST(Sobol, DimensionBoundsChecked) {
  EXPECT_THROW(Sobol(0), std::invalid_argument);
  EXPECT_THROW(Sobol(9), std::invalid_argument);
  Sobol s(8);
  EXPECT_EQ(s.dimensions(), 8u);
  EXPECT_THROW(s.sample(1, 8), std::out_of_range);
}

TEST(Sobol, PointZeroIsOrigin) {
  Sobol s(4);
  for (std::size_t d = 0; d < 4; ++d) EXPECT_EQ(s.sample(0, d), 0.0);
}

TEST(Sobol, DimensionZeroIsVanDerCorput) {
  Sobol s(1);
  for (std::uint64_t i = 1; i < 500; ++i) {
    EXPECT_NEAR(s.sample(i, 0), Qrng::radical_inverse(i), 1e-15) << i;
  }
}

TEST(Sobol, FirstDimensionOneValuesMatchClassicSequence) {
  // The second Sobol dimension's first points are the known
  // 0, 1/2, 1/4, 3/4, 3/8, 7/8, ... (Gray-code order with m = {1, 3}).
  Sobol s(2);
  EXPECT_DOUBLE_EQ(s.sample(1, 1), 0.5);
  EXPECT_DOUBLE_EQ(s.sample(2, 1), 0.75);
  EXPECT_DOUBLE_EQ(s.sample(3, 1), 0.25);
}

TEST(Sobol, SamplesInUnitInterval) {
  Sobol s(8);
  for (std::uint64_t i = 0; i < 2000; ++i) {
    for (std::size_t d = 0; d < 8; ++d) {
      const double x = s.sample(i, d);
      EXPECT_GE(x, 0.0);
      EXPECT_LT(x, 1.0);
    }
  }
}

TEST(Sobol, FirstPowerOfTwoBlockIsStratified) {
  // The first 2^k points of any dimension hit every dyadic interval
  // [j/2^k, (j+1)/2^k) exactly once — the defining (0,1)-sequence property.
  Sobol s(8);
  constexpr int k = 7;
  constexpr std::uint64_t n = 1ULL << k;
  for (std::size_t d = 0; d < 8; ++d) {
    std::set<std::uint64_t> cells;
    for (std::uint64_t i = 0; i < n; ++i) {
      cells.insert(static_cast<std::uint64_t>(s.sample(i, d) * n));
    }
    EXPECT_EQ(cells.size(), n) << "dimension " << d;
  }
}

TEST(Sobol, BeatsPseudorandomUniformity) {
  Sobol s(3);
  const double sobol_dev = uniformity_deviation(s, 2, 4096);
  // Pseudorandom reference deviation at the same sample count.
  Rng rng(7);
  constexpr int kAnchors = 64;
  double worst = 0.0;
  std::vector<double> xs(4096);
  for (auto& x : xs) x = rng.uniform();
  for (int a = 1; a <= kAnchors; ++a) {
    const double threshold = static_cast<double>(a) / kAnchors;
    std::size_t below = 0;
    for (double x : xs) {
      if (x < threshold) ++below;
    }
    worst = std::max(worst, std::fabs(below / 4096.0 - threshold));
  }
  EXPECT_LT(sobol_dev, worst / 2.0);
  EXPECT_LT(sobol_dev, 0.002);
}

TEST(Sobol, PointReturnsAllDimensions) {
  Sobol s(5);
  const auto p = s.point(17);
  ASSERT_EQ(p.size(), 5u);
  for (std::size_t d = 0; d < 5; ++d) EXPECT_DOUBLE_EQ(p[d], s.sample(17, d));
}

TEST(Sobol, DimensionsAreDistinct) {
  Sobol s(4);
  // Different dimensions must not be identical streams.
  // (Occasional coincidences are inherent — e.g. every dimension maps
  // index 1 to 0.5 — but the streams must diverge overall.)
  int equal = 0;
  for (std::uint64_t i = 1; i < 200; ++i) {
    if (s.sample(i, 1) == s.sample(i, 2)) ++equal;
  }
  EXPECT_LT(equal, 20);
}

}  // namespace
}  // namespace gg::workloads
