// Race stress for common::JobPool — the campaign fan-out engine.
//
// These tests are written for the TSan lane (GREENGPU_SANITIZE=thread):
// they hammer the pool's claim/retire transitions, exception bookkeeping
// and batch recycling hard enough that any unguarded shared state trips the
// race detector, and they re-assert the determinism contract (byte-identical
// output for any worker count, faults included) while doing so.  They pass
// in every lane; TSan is what gives the "no data races" half its teeth.
#include "src/common/job_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/greengpu/campaign.h"
#include "src/greengpu/policy.h"
#include "src/sim/event_queue.h"

namespace gg::common {
namespace {

TEST(JobPoolStress, RepeatedFanOutAcrossPoolSizes) {
  // Many short batches across several pool widths: stresses the batch
  // publish/retire handshake, where a stale `current_` read would race.
  for (const std::size_t workers : {2u, 4u, 8u}) {
    JobPool pool(workers);
    for (int round = 0; round < 40; ++round) {
      const std::vector<int> out = pool.map<int>(
          96, [round](std::size_t i) { return static_cast<int>(i) * 3 + round; });
      for (std::size_t i = 0; i < out.size(); ++i) {
        ASSERT_EQ(out[i], static_cast<int>(i) * 3 + round);
      }
    }
  }
}

TEST(JobPoolStress, ExceptionStormKeepsLowestIndexDeterministic) {
  // Faulty jobs at fixed indices: the pool must stop issuing work after the
  // first failure and rethrow the lowest-index exception no matter which
  // worker hit one first — racing error bookkeeping would break both.
  JobPool pool(8);
  for (int round = 0; round < 60; ++round) {
    try {
      pool.run(64, [](std::size_t i) {
        if (i % 7 == 3) {
          throw std::runtime_error("job " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "job 3");
    }
  }
}

TEST(JobPoolStress, NestedEventQueueChurnInsideJobs) {
  // Every job owns a private EventQueue and churns its slab (schedule,
  // cancel, reschedule-from-callback).  Queues are single-owner by
  // contract; running many side by side under TSan proves the slab pooling
  // shares nothing across instances.
  JobPool pool(4);
  const std::vector<std::uint64_t> fired =
      pool.map<std::uint64_t>(32, [](std::size_t job) {
        sim::EventQueue q;
        std::vector<sim::EventHandle> handles;
        int chained = 0;
        for (int round = 0; round < 20; ++round) {
          handles.clear();
          for (int e = 0; e < 50; ++e) {
            handles.push_back(q.schedule_in(
                Seconds{0.001 * (e % 10 + 1)}, [&q, &chained] {
                  if (chained < 5) {
                    ++chained;
                    q.schedule_in(Seconds{0.0005}, [] {});
                  }
                }));
          }
          for (std::size_t h = 0; h < handles.size(); h += 3) handles[h].cancel();
          chained = 0;
          q.run_until(q.now() + Seconds{1.0});
        }
        return q.fired_count() + job * 0;  // job silences unused warnings
      });
  // Identical deterministic churn in every job: identical counts.
  for (const std::uint64_t f : fired) EXPECT_EQ(f, fired[0]);
}

/// CSV + JSON reports for the campaign at a given worker count.
std::pair<std::string, std::string> campaign_reports(std::size_t jobs) {
  greengpu::CampaignConfig cfg;
  cfg.workloads = {"pathfinder", "lud"};
  cfg.policies = {greengpu::Policy::best_performance(), greengpu::Policy::green_gpu()};
  cfg.options.faults.seed = 20260806;
  cfg.options.faults.util_drop_rate = 0.05;
  cfg.options.faults.util_stale_rate = 0.05;
  cfg.options.faults.clock_reject_rate = 0.05;
  cfg.jobs = jobs;
  const greengpu::CampaignResult r = run_campaign(cfg);
  std::ostringstream csv, json;
  write_campaign_csv(csv, r);
  write_campaign_json(json, r);
  return {csv.str(), json.str()};
}

TEST(JobPoolStress, CampaignFanOutUnderFaultInjectionStaysByteIdentical) {
  // The end-to-end race stress the lint/TSan lane exists for: full faulted
  // campaign cells (platform + event queue + fault injector per cell)
  // fanned across workers, with the report compared byte-for-byte against
  // the serial run.
  const auto serial = campaign_reports(1);
  EXPECT_EQ(serial, campaign_reports(4));
}

}  // namespace
}  // namespace gg::common
