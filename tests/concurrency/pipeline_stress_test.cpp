// Race stress for the asynchronous multi-stream pipeline path.
//
// Written for the TSan lane (GREENGPU_SANITIZE=thread): many campaign cells
// running pipeline workloads concurrently exercise StreamScheduler::pump,
// the copy-engine FIFO and the eager real-compute pool from several worker
// threads at once, and re-assert byte-identical reports while doing so.
// Passes in every lane; TSan gives the "no data races" half its teeth.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/greengpu/campaign.h"
#include "src/workloads/registry.h"

namespace gg::greengpu {
namespace {

std::string report(CampaignConfig cfg, std::size_t jobs) {
  cfg.jobs = jobs;
  const CampaignResult r = run_campaign(cfg);
  std::ostringstream csv;
  std::ostringstream json;
  write_campaign_csv(csv, r);
  write_campaign_json(json, r);
  return csv.str() + "\n" + json.str();
}

TEST(PipelineStress, ParallelPipelineCellsAreRaceFreeAndDeterministic) {
  // Both pipeline workloads under all four paper policies, with per-cell
  // thread pools executing the eager kernels: every cell drives its own
  // simulation while the job pool fans them out.
  CampaignConfig cfg;
  cfg.workloads = workloads::pipeline_workload_names();
  cfg.options.pool_workers = 2;
  const std::string golden = report(cfg, 1);
  for (const std::size_t jobs : {2u, 4u, 8u}) {
    EXPECT_EQ(report(cfg, jobs), golden) << "jobs=" << jobs;
  }
}

TEST(PipelineStress, BatchEngineUnderContentionMatchesScalar) {
  CampaignConfig cfg;
  cfg.workloads = workloads::pipeline_workload_names();
  cfg.options.pool_workers = 4;
  const std::string golden = report(cfg, 1);
  cfg.engine = CampaignEngine::kBatch;
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(report(cfg, 8), golden) << "round " << round;
  }
}

}  // namespace
}  // namespace gg::greengpu
