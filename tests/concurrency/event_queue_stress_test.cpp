// Race stress for sim::EventQueue slab reuse under concurrent campaigns.
//
// The queue is single-owner by contract (one simulation, one thread); what
// must hold under concurrency is *isolation*: N queues churning their
// pooled slabs side by side share nothing — no static free list, no global
// sequence counter — so per-queue behaviour is bit-identical to a solo run.
// TSan (GREENGPU_SANITIZE=thread) turns any accidental sharing into a hard
// failure; in debug/TSan builds common::ThreadChecker additionally aborts
// if a queue is ever driven from two threads.
#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/greengpu/campaign.h"
#include "src/greengpu/policy.h"

namespace gg::sim {
namespace {

/// Deterministic slab-heavy churn: schedule bursts, cancel a comb pattern,
/// reschedule from callbacks, drain.  Returns (fired, compactions) —
/// identical for every isolated queue by construction.
std::pair<std::uint64_t, std::uint64_t> churn(int rounds) {
  EventQueue q;
  for (int round = 0; round < rounds; ++round) {
    std::vector<EventHandle> handles;
    for (int e = 0; e < 200; ++e) {
      handles.push_back(q.schedule_in(Seconds{0.001 * (e % 16 + 1)}, [&q] {
        if (q.pending_count() < 8) q.schedule_in(Seconds{0.0001}, [] {});
      }));
    }
    // Cancel a majority so compaction kicks in and slots recycle hard.
    for (std::size_t h = 0; h < handles.size(); ++h) {
      if (h % 4 != 0) handles[h].cancel();
    }
    q.run_until(q.now() + Seconds{0.5});
  }
  q.run_until_empty();
  return {q.fired_count(), q.compaction_count()};
}

TEST(EventQueueStress, ConcurrentPrivateQueuesReuseSlabsIndependently) {
  const auto reference = churn(25);
  EXPECT_GT(reference.first, 0u);
  EXPECT_GT(reference.second, 0u);  // the cancel comb must actually compact

  constexpr int kThreads = 8;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> results(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&results, t] { results[t] = churn(25); });
    }
    for (auto& t : threads) t.join();
  }
  for (const auto& r : results) EXPECT_EQ(r, reference);
}

TEST(EventQueueStress, HandleLifetimesSpanQueueDestruction) {
  // Slab slots must survive as long as any handle can still ask about
  // them, even after the owning queue died — per thread, many times over.
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int round = 0; round < 200; ++round) {
        EventHandle survivor;
        {
          EventQueue q;
          survivor = q.schedule_in(Seconds{1.0}, [] {});
          q.schedule_in(Seconds{0.5}, [] {}).cancel();
          q.run_until(Seconds{0.1});
        }
        EXPECT_TRUE(survivor.valid());
        EXPECT_FALSE(survivor.fired());
      }
    });
  }
  for (auto& t : threads) t.join();
}

TEST(EventQueueStress, ConcurrentCampaignsStayByteIdentical) {
  // Two whole campaigns running at once, each fanning cells over its own
  // JobPool — every cell owns a platform, an event queue and a fault
  // injector, so this is the heaviest cross-instance slab traffic the repo
  // generates.  Both must reproduce the serial report byte-for-byte.
  auto report = [](std::size_t jobs) {
    greengpu::CampaignConfig cfg;
    cfg.workloads = {"pathfinder"};
    cfg.policies = {greengpu::Policy::best_performance(), greengpu::Policy::green_gpu()};
    cfg.options.faults.seed = 77;
    cfg.options.faults.util_stale_rate = 0.05;
    cfg.options.faults.clock_reject_rate = 0.05;
    cfg.jobs = jobs;
    const greengpu::CampaignResult r = run_campaign(cfg);
    std::ostringstream csv;
    write_campaign_csv(csv, r);
    return csv.str();
  };
  const std::string serial = report(1);
  std::string a, b;
  std::thread ta([&] { a = report(2); });
  std::thread tb([&] { b = report(2); });
  ta.join();
  tb.join();
  EXPECT_EQ(a, serial);
  EXPECT_EQ(b, serial);
}

}  // namespace
}  // namespace gg::sim
