// Streaming-telemetry tests: TelemetryHub backpressure (ring overflow with
// exact DROPPED accounting, drop-oldest ordering after a partial drain,
// heartbeats, stall eviction, the subscriber-table bound), TelemetryFeed
// purity (the event stream is a pure function of the record sequence,
// breaker transitions included), and ServiceCore's WATCH plumbing — a live
// subscription and a `WATCH FROM <seq>` resume must both be byte-identical
// to the offline `events_window()` regeneration of the same journal.
#include "src/service/telemetry.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/greengpu/telemetry.h"
#include "src/service/core.h"
#include "src/service/journal.h"

namespace gg::service {
namespace {

TelemetryConfig hub_config(std::size_t ring, std::size_t max_subs,
                           std::uint64_t heartbeat, std::uint64_t stall) {
  TelemetryConfig c;
  c.ring_capacity = ring;
  c.max_subscribers = max_subs;
  c.heartbeat_ticks = heartbeat;
  c.stall_budget_ticks = stall;
  return c;
}

/// Drain every pending frame (stops before a heartbeat would be due).
std::vector<std::string> drain(TelemetryHub& hub, std::uint64_t id) {
  std::vector<std::string> frames;
  while (auto frame = hub.next_frame(id)) frames.push_back(*frame);
  return frames;
}

TEST(TelemetryHub, DeliversLiveEventsInOrder) {
  TelemetryHub hub(hub_config(8, 4, 40, 400));
  const std::uint64_t id = hub.subscribe(1, {});
  ASSERT_NE(id, 0u);
  hub.publish("alpha");
  hub.publish("beta");
  hub.publish("gamma");
  EXPECT_EQ(hub.published(), 3u);
  const auto frames = drain(hub, id);
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0], "EVENT 1 alpha");
  EXPECT_EQ(frames[1], "EVENT 2 beta");
  EXPECT_EQ(frames[2], "EVENT 3 gamma");
  EXPECT_EQ(hub.next_frame(id), std::nullopt);
  EXPECT_EQ(hub.dropped_total(), 0u);
}

TEST(TelemetryHub, OverflowDropsOldestAndAccountsExactly) {
  TelemetryHub hub(hub_config(4, 4, 40, 400));
  const std::uint64_t id = hub.subscribe(1, {});
  ASSERT_NE(id, 0u);
  for (int i = 1; i <= 10; ++i) hub.publish("e" + std::to_string(i));
  const auto frames = drain(hub, id);
  // The four newest survive; the six oldest are accounted, never silent.
  ASSERT_EQ(frames.size(), 5u);
  EXPECT_EQ(frames[0], "DROPPED 6");
  EXPECT_EQ(frames[1], "EVENT 7 e7");
  EXPECT_EQ(frames[2], "EVENT 8 e8");
  EXPECT_EQ(frames[3], "EVENT 9 e9");
  EXPECT_EQ(frames[4], "EVENT 10 e10");
  // Delivered + dropped covers every published event exactly once.
  EXPECT_EQ((frames.size() - 1) + hub.dropped_total(), hub.published());
  EXPECT_EQ(hub.dropped_total(), 6u);
}

TEST(TelemetryHub, DropOldestStaysOrderedAfterPartialDrain) {
  // Regression: the ring must stay circular once the head has advanced —
  // a drain followed by refill + overflow must still drop the *oldest*.
  TelemetryHub hub(hub_config(4, 4, 40, 400));
  const std::uint64_t id = hub.subscribe(1, {});
  ASSERT_NE(id, 0u);
  for (int i = 1; i <= 4; ++i) hub.publish("e" + std::to_string(i));
  EXPECT_EQ(hub.next_frame(id), "EVENT 1 e1");
  EXPECT_EQ(hub.next_frame(id), "EVENT 2 e2");
  hub.publish("e5");
  hub.publish("e6");  // ring full again: 3,4,5,6
  hub.publish("e7");  // overwrites 3 — the oldest undelivered
  const auto frames = drain(hub, id);
  ASSERT_EQ(frames.size(), 5u);
  EXPECT_EQ(frames[0], "DROPPED 1");
  EXPECT_EQ(frames[1], "EVENT 4 e4");
  EXPECT_EQ(frames[2], "EVENT 5 e5");
  EXPECT_EQ(frames[3], "EVENT 6 e6");
  EXPECT_EQ(frames[4], "EVENT 7 e7");
}

TEST(TelemetryHub, BacklogDrainsBeforeLiveRing) {
  TelemetryHub hub(hub_config(8, 4, 40, 400));
  hub.seed(3);  // three events published by a previous life
  const std::uint64_t id = hub.subscribe(2, {"old-two", "old-three"});
  ASSERT_NE(id, 0u);
  hub.publish("live-four");
  const auto frames = drain(hub, id);
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0], "EVENT 2 old-two");
  EXPECT_EQ(frames[1], "EVENT 3 old-three");
  EXPECT_EQ(frames[2], "EVENT 4 live-four");
}

TEST(TelemetryHub, SeedRefusedWithLiveSubscribers) {
  TelemetryHub hub(hub_config(8, 4, 40, 400));
  hub.seed(5);
  EXPECT_EQ(hub.published(), 5u);
  const std::uint64_t id = hub.subscribe(6, {});
  ASSERT_NE(id, 0u);
  EXPECT_THROW(hub.seed(7), std::logic_error);
}

TEST(TelemetryHub, HeartbeatAfterIdleTicks) {
  TelemetryHub hub(hub_config(8, 4, /*heartbeat=*/3, 400));
  const std::uint64_t id = hub.subscribe(1, {});
  ASSERT_NE(id, 0u);
  for (int t = 0; t < 2; ++t) {
    EXPECT_TRUE(hub.tick().empty());
    EXPECT_EQ(hub.next_frame(id), std::nullopt) << "tick " << t;
  }
  EXPECT_TRUE(hub.tick().empty());
  EXPECT_EQ(hub.next_frame(id), "HEARTBEAT last=0");
  // Delivering the heartbeat restarts the idle clock.
  EXPECT_EQ(hub.next_frame(id), std::nullopt);
  // An event delivery also restarts it; the heartbeat then reports the
  // newest published seq.
  hub.publish("ping-material");
  EXPECT_EQ(hub.next_frame(id), "EVENT 1 ping-material");
  for (int t = 0; t < 3; ++t) EXPECT_TRUE(hub.tick().empty());
  EXPECT_EQ(hub.next_frame(id), "HEARTBEAT last=1");
}

TEST(TelemetryHub, StallBudgetEvictsOnlyTheStalledSubscriber) {
  TelemetryHub hub(hub_config(8, 4, 40, /*stall=*/5));
  const std::uint64_t slow = hub.subscribe(1, {});
  const std::uint64_t healthy = hub.subscribe(1, {});
  ASSERT_NE(slow, 0u);
  ASSERT_NE(healthy, 0u);
  hub.publish("wedged-frame");
  for (int t = 0; t < 4; ++t) {
    hub.note_progress(slow, false);
    hub.note_progress(healthy, true);
    EXPECT_TRUE(hub.tick().empty()) << "tick " << t;
  }
  hub.note_progress(slow, false);
  const auto evicted = hub.tick();
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], slow);
  EXPECT_EQ(hub.subscriber_count(), 1u);
  EXPECT_EQ(hub.evicted_total(), 1u);
  // The hub already forgot the evicted id; polling it is a harmless no-op.
  EXPECT_EQ(hub.next_frame(slow), std::nullopt);
}

TEST(TelemetryHub, ProgressResetsTheStallClock) {
  TelemetryHub hub(hub_config(8, 4, 40, /*stall=*/3));
  const std::uint64_t id = hub.subscribe(1, {});
  ASSERT_NE(id, 0u);
  hub.publish("frame");
  for (int round = 0; round < 4; ++round) {
    hub.note_progress(id, false);
    EXPECT_TRUE(hub.tick().empty());
    hub.note_progress(id, false);
    EXPECT_TRUE(hub.tick().empty());
    hub.note_progress(id, true);  // one byte moved: the budget refills
    EXPECT_TRUE(hub.tick().empty());
  }
  EXPECT_EQ(hub.subscriber_count(), 1u);
  EXPECT_EQ(hub.evicted_total(), 0u);
}

TEST(TelemetryHub, SubscriberTableBound) {
  TelemetryHub hub(hub_config(8, /*max_subs=*/2, 40, 400));
  const std::uint64_t a = hub.subscribe(1, {});
  const std::uint64_t b = hub.subscribe(1, {});
  ASSERT_NE(a, 0u);
  ASSERT_NE(b, 0u);
  EXPECT_EQ(hub.subscribe(1, {}), 0u) << "table full must refuse, not grow";
  hub.unsubscribe(a);
  EXPECT_NE(hub.subscribe(1, {}), 0u) << "a freed slot is reusable";
  EXPECT_EQ(hub.subscriber_count(), 2u);
}

TEST(TelemetryHub, DecisionRecorderRingWrapFeedsLiveSubscriber) {
  // The controller-side DecisionRecorder and the hub's per-subscriber ring
  // are independent bounds: a wrapped recorder still hands the hub its tail
  // in arrival order, and the recorder's lifetime total (what OutcomeRecord
  // journals as scaler=/moves=) is unaffected by the wrap.
  greengpu::DecisionRecorder<int> recorder(
      greengpu::RecordOptions{greengpu::RecordMode::kRing, 4});
  for (int i = 1; i <= 10; ++i) recorder.push(i);
  EXPECT_EQ(recorder.total(), 10u);
  ASSERT_EQ(recorder.retained(), 4u);

  TelemetryHub hub(hub_config(8, 4, 40, 400));
  const std::uint64_t id = hub.subscribe(1, {});
  ASSERT_NE(id, 0u);
  for (const int decision : recorder.snapshot()) {
    hub.publish("scaler decision=" + std::to_string(decision) +
                " total=" + std::to_string(recorder.total()));
  }
  const auto frames = drain(hub, id);
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames[0], "EVENT 1 scaler decision=7 total=10");
  EXPECT_EQ(frames[1], "EVENT 2 scaler decision=8 total=10");
  EXPECT_EQ(frames[2], "EVENT 3 scaler decision=9 total=10");
  EXPECT_EQ(frames[3], "EVENT 4 scaler decision=10 total=10");
}

// -- TelemetryFeed: the stream is a pure function of the record sequence ----

ServiceRecord admit_record(std::uint64_t seq) {
  ServiceRecord r;
  r.kind = RecordKind::kAdmit;
  r.admit.seq = seq;
  r.admit.workload = "bfs";
  r.admit.policy = "best-performance";
  r.admit.seed = 0x5EEDULL + seq;
  return r;
}

ServiceRecord start_record(std::uint64_t seq, std::uint64_t device) {
  ServiceRecord r;
  r.kind = RecordKind::kStart;
  r.start.seq = seq;
  r.start.device = device;
  return r;
}

ServiceRecord outcome_record(std::uint64_t seq, std::uint64_t device, bool ok) {
  ServiceRecord r;
  r.kind = RecordKind::kOutcome;
  r.outcome.seq = seq;
  r.outcome.device = device;
  r.outcome.status = ok ? OutcomeStatus::kOk : OutcomeStatus::kFailed;
  return r;
}

TEST(TelemetryFeed, DerivesBreakerTransitionsFromTheRecordStream) {
  ServiceConfig config;
  config.devices = 2;
  config.breaker.failure_threshold = 2;
  config.breaker.probe_after = 2;

  std::vector<ServiceRecord> records;
  records.push_back(admit_record(1));
  records.push_back(start_record(1, 0));
  records.push_back(outcome_record(1, 0, false));  // failure 1 of 2
  records.push_back(start_record(2, 0));
  records.push_back(outcome_record(2, 0, false));  // opens device 0
  records.push_back(start_record(3, 1));
  records.push_back(outcome_record(3, 1, true));   // probe clock: 1 of 2
  records.push_back(start_record(4, 1));
  records.push_back(outcome_record(4, 1, true));   // probe clock: 2 of 2
  records.push_back(start_record(5, 0));           // the claim *is* the probe
  records.push_back(outcome_record(5, 0, true));   // probe succeeds

  const auto events = telemetry_events(config, records);
  // Eleven record renders plus three derived breaker events.
  ASSERT_EQ(events.size(), 14u);
  EXPECT_EQ(events[5],
            "breaker device=0 transition=opened state=open completions=2");
  EXPECT_EQ(events[11],
            "breaker device=0 transition=probing state=half-open completions=4");
  EXPECT_EQ(events[13],
            "breaker device=0 transition=closed state=closed completions=5");
  // Every non-breaker payload is the record's render() line verbatim, so an
  // EVENT payload for an outcome is byte-identical to its report line.
  EXPECT_EQ(events[0], render(records[0]));
  EXPECT_EQ(events[12], render(records[10]));

  // Purity: folding the same records again yields the identical stream.
  EXPECT_EQ(telemetry_events(config, records), events);
}

TEST(TelemetryFeed, FailedProbeEmitsReopened) {
  ServiceConfig config;
  config.devices = 2;
  config.breaker.failure_threshold = 1;
  config.breaker.probe_after = 1;

  std::vector<ServiceRecord> records;
  records.push_back(start_record(1, 0));
  records.push_back(outcome_record(1, 0, false));  // opens immediately
  records.push_back(start_record(2, 1));
  records.push_back(outcome_record(2, 1, true));   // probe due
  records.push_back(start_record(3, 0));           // probe claim
  records.push_back(outcome_record(3, 0, false));  // probe fails

  const auto events = telemetry_events(config, records);
  ASSERT_EQ(events.size(), 9u);
  EXPECT_EQ(events[2],
            "breaker device=0 transition=opened state=open completions=1");
  EXPECT_EQ(events[6],
            "breaker device=0 transition=probing state=half-open completions=2");
  EXPECT_EQ(events[8],
            "breaker device=0 transition=reopened state=open completions=3");
}

// -- ServiceCore: WATCH, resume cursors, and the offline twin ---------------

class TelemetryCoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto dir = std::filesystem::temp_directory_path();
    const std::string stem =
        std::string("gg_telemetry_") +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    journal_ = (dir / (stem + ".journal")).string();
    std::filesystem::remove(journal_);
  }
  void TearDown() override { std::filesystem::remove(journal_); }

  static ServiceConfig small_config() {
    ServiceConfig config;
    config.devices = 2;
    config.queue_capacity = 4;
    config.seed = 0x5EEDULL;
    return config;
  }

  static std::vector<std::string> drain_core(ServiceCore& core,
                                             std::uint64_t id) {
    std::vector<std::string> frames;
    while (auto frame = core.next_frame(id)) frames.push_back(*frame);
    return frames;
  }

  std::string journal_;
};

TEST_F(TelemetryCoreTest, LiveStreamMatchesOfflineRegeneration) {
  const ServiceConfig config = small_config();
  ServiceCore core(config, journal_, /*resume=*/false);

  std::string reply;
  const std::uint64_t id = core.watch("WATCH", reply);
  ASSERT_NE(id, 0u) << reply;
  EXPECT_EQ(reply, "200 watching from=1 last=0");

  EXPECT_EQ(core.handle_line("SUBMIT bfs best-performance"), "202 accepted seq=1");
  EXPECT_EQ(core.handle_line("SUBMIT kmeans greengpu"), "202 accepted seq=2");
  while (core.step()) {
  }

  // admit, start, outcome for each of the two requests.
  EXPECT_EQ(core.telemetry().published(), 6u);
  EXPECT_EQ(core.journal_records(), 6u);
  const auto frames = drain_core(core, id);
  ASSERT_EQ(frames.size(), 6u);

  std::string live;
  for (const auto& frame : frames) live += frame + "\n";
  std::string offline;
  std::string error;
  ASSERT_TRUE(ServiceCore::events_window(config, journal_, 1, offline, error))
      << error;
  EXPECT_EQ(live, offline) << "a live tail and the offline regeneration must "
                              "be byte-identical";
}

TEST_F(TelemetryCoreTest, ResumeCursorReplaysByteIdentical) {
  const ServiceConfig config = small_config();
  ServiceCore core(config, journal_, /*resume=*/false);
  for (int i = 0; i < 3; ++i) {
    core.handle_line("SUBMIT bfs best-performance");
  }
  while (core.step()) {
  }
  const std::uint64_t published = core.telemetry().published();
  ASSERT_EQ(published, 9u);

  // Resume from the middle: the backlog is regenerated from the journal.
  std::string reply;
  const std::uint64_t id = core.watch("WATCH FROM 4", reply);
  ASSERT_NE(id, 0u) << reply;
  EXPECT_EQ(reply, "200 watching from=4 last=9");
  const auto frames = drain_core(core, id);
  ASSERT_EQ(frames.size(), 6u);

  std::string resumed;
  for (const auto& frame : frames) resumed += frame + "\n";
  std::string offline;
  std::string error;
  ASSERT_TRUE(ServiceCore::events_window(config, journal_, 4, offline, error))
      << error;
  EXPECT_EQ(resumed, offline)
      << "WATCH FROM must replay exactly what an uninterrupted subscriber saw";

  // New live events splice gaplessly behind a drained resume stream.
  core.handle_line("SUBMIT bfs best-performance");
  const auto tail = drain_core(core, id);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].rfind("EVENT 10 admit seq=4 ", 0), 0u) << tail[0];
}

TEST_F(TelemetryCoreTest, RefusesBadAndBeyondCursors) {
  ServiceCore core(small_config(), journal_, /*resume=*/false);
  core.handle_line("SUBMIT bfs best-performance");
  while (core.step()) {
  }
  ASSERT_EQ(core.telemetry().published(), 3u);

  std::string reply;
  EXPECT_EQ(core.watch("WATCH FROM 0", reply), 0u);
  EXPECT_EQ(reply, "400 bad cursor 0 (event seqs start at 1)");
  EXPECT_EQ(core.watch("WATCH FROM soon", reply), 0u);
  EXPECT_EQ(reply, "400 bad cursor soon");
  EXPECT_EQ(core.watch("WATCH FROM 1 2", reply), 0u);
  EXPECT_EQ(reply, "400 usage: WATCH [FROM <seq>]");
  EXPECT_EQ(core.watch("WATCH FROM 5", reply), 0u);
  EXPECT_EQ(reply, "400 cursor 5 beyond stream (last=3)");
  // from == published + 1 is the live-tail boundary: legal, empty backlog.
  EXPECT_NE(core.watch("WATCH FROM 4", reply), 0u);
  EXPECT_EQ(reply, "200 watching from=4 last=3");
  // On a request connection the verb is rejected, never streamed.
  EXPECT_EQ(core.handle_line("WATCH"),
            "400 watch requires a streaming connection");
}

TEST_F(TelemetryCoreTest, WatchersFullRefusedWith503) {
  ServiceConfig config = small_config();
  config.telemetry.max_subscribers = 2;
  ServiceCore core(config, journal_, /*resume=*/false);
  std::string reply;
  ASSERT_NE(core.watch("WATCH", reply), 0u);
  ASSERT_NE(core.watch("WATCH", reply), 0u);
  const std::uint64_t refused = core.watch("WATCH", reply);
  EXPECT_EQ(refused, 0u);
  EXPECT_EQ(reply, "503 watchers-full max=2");
}

TEST_F(TelemetryCoreTest, ResumedDaemonSeedsTheStreamPosition) {
  const ServiceConfig config = small_config();
  {
    ServiceCore core(config, journal_, /*resume=*/false);
    core.handle_line("SUBMIT bfs best-performance");
    while (core.step()) {
    }
    ASSERT_EQ(core.telemetry().published(), 3u);
  }
  // A restarted daemon folds the journal through its feed, so event seqs
  // continue where the previous life stopped instead of restarting at 1.
  ServiceCore resumed(config, journal_, /*resume=*/true);
  EXPECT_EQ(resumed.telemetry().published(), 3u);
  EXPECT_EQ(resumed.journal_records(), 3u);
  std::string reply;
  const std::uint64_t id = resumed.watch("WATCH FROM 1", reply);
  ASSERT_NE(id, 0u) << reply;
  EXPECT_EQ(reply, "200 watching from=1 last=3");
  const auto frames = drain_core(resumed, id);
  ASSERT_EQ(frames.size(), 3u);
  std::string resumed_stream;
  for (const auto& frame : frames) resumed_stream += frame + "\n";
  std::string offline;
  std::string error;
  ASSERT_TRUE(ServiceCore::events_window(config, journal_, 1, offline, error))
      << error;
  EXPECT_EQ(resumed_stream, offline);
}

}  // namespace
}  // namespace gg::service
