// In-process tests of the greengpud state machine: admission over the line
// protocol, execution, drain, kill-point crashes, resume and replay — the
// whole service without a socket or a thread.  The CI smoke job drives the
// same matrix through the real daemon binary.
#include "src/service/core.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "src/common/killpoint.h"
#include "src/common/snapshot.h"
#include "src/service/journal.h"

namespace gg::service {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class ServiceCoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto dir = std::filesystem::temp_directory_path();
    const std::string stem =
        std::string("gg_core_") +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    journal_ = (dir / (stem + ".journal")).string();
    control_journal_ = (dir / (stem + "_control.journal")).string();
    report_ = (dir / (stem + ".report")).string();
    control_report_ = (dir / (stem + "_control.report")).string();
    for (const auto& p : {journal_, control_journal_, report_, control_report_}) {
      std::filesystem::remove(p);
    }
  }
  void TearDown() override {
    common::disarm_kill_points();
    for (const auto& p : {journal_, control_journal_, report_, control_report_}) {
      std::filesystem::remove(p);
    }
  }

  static ServiceConfig small_config() {
    ServiceConfig config;
    config.devices = 2;
    config.queue_capacity = 4;
    config.seed = 0x5EEDULL;
    return config;
  }

  std::string journal_;
  std::string control_journal_;
  std::string report_;
  std::string control_report_;
};

TEST_F(ServiceCoreTest, SubmitExecuteReport) {
  ServiceCore core(small_config(), journal_, /*resume=*/false);
  EXPECT_EQ(core.handle_line("SUBMIT bfs best-performance"), "202 accepted seq=1");
  EXPECT_EQ(core.stats().submitted, 1u);
  EXPECT_EQ(core.stats().admitted, 1u);
  EXPECT_EQ(core.queue_depth(), 1u);

  EXPECT_TRUE(core.step());
  EXPECT_EQ(core.stats().completed, 1u);
  EXPECT_GT(core.vtime().get(), 0.0);
  EXPECT_EQ(core.handle_line("STATUS 1"), "200 status seq=1 state=ok");
  EXPECT_FALSE(core.step()) << "queue drained";

  core.write_report(report_);
  std::istringstream lines(read_file(report_));
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("admit seq=1 workload=bfs policy=best-performance", 0), 0u)
      << line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("start seq=1 device=0 vtime=0.000000", 0), 0u) << line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("outcome seq=1 device=0 status=ok", 0), 0u) << line;
  EXPECT_FALSE(std::getline(lines, line)) << "exactly three records";
}

TEST_F(ServiceCoreTest, ProtocolRejectsGarbageWithoutSideEffects) {
  ServiceCore core(small_config(), journal_, /*resume=*/false);
  EXPECT_EQ(core.handle_line("PING"), "200 pong");
  EXPECT_EQ(core.handle_line(""), "400 empty request");
  EXPECT_EQ(core.handle_line("FROB"), "400 unknown verb FROB");
  EXPECT_EQ(core.handle_line("STATUS 9"), "404 unknown-seq 9");
  EXPECT_EQ(core.handle_line("STATUS x"), "400 bad seq");
  // Bad submissions cost no seq and leave no journal record.
  EXPECT_EQ(core.handle_line("SUBMIT").rfind("400", 0), 0u);
  EXPECT_EQ(core.handle_line("SUBMIT nope best-performance").rfind("400", 0), 0u);
  EXPECT_EQ(core.handle_line("SUBMIT bfs nope").rfind("400", 0), 0u);
  EXPECT_EQ(core.handle_line("SUBMIT bfs greengpu frobs=1").rfind("400", 0), 0u);
  EXPECT_EQ(core.handle_line("SUBMIT bfs greengpu priority=x").rfind("400", 0), 0u);
  EXPECT_EQ(core.stats().submitted, 0u);
  EXPECT_EQ(core.handle_line("SUBMIT bfs greengpu priority=1 deadline=9000 iters=5"),
            "202 accepted seq=1");
}

TEST_F(ServiceCoreTest, PauseHoldsWorkResumeReleasesIt) {
  ServiceCore core(small_config(), journal_, /*resume=*/false);
  EXPECT_EQ(core.handle_line("PAUSE"), "200 paused");
  EXPECT_EQ(core.handle_line("SUBMIT bfs best-performance"), "202 accepted seq=1");
  EXPECT_TRUE(core.paused());
  EXPECT_FALSE(core.step()) << "paused core claims nothing";
  EXPECT_EQ(core.handle_line("RESUME"), "200 resumed");
  EXPECT_TRUE(core.step());
}

TEST_F(ServiceCoreTest, OverloadShedsAndDrainRefusesNewWork) {
  ServiceConfig config = small_config();
  config.queue_capacity = 1;
  ServiceCore core(config, journal_, /*resume=*/false);
  EXPECT_EQ(core.handle_line("SUBMIT bfs best-performance"), "202 accepted seq=1");
  EXPECT_EQ(core.handle_line("SUBMIT bfs best-performance"),
            "503 shed seq=2 reason=queue-full");
  // A higher-priority arrival displaces the queued request instead.
  EXPECT_EQ(core.handle_line("SUBMIT bfs best-performance priority=3"),
            "202 accepted seq=3");
  EXPECT_EQ(core.handle_line("STATUS 1"), "200 status seq=1 state=evicted");
  EXPECT_EQ(core.stats().evicted, 1u);

  EXPECT_EQ(core.handle_line("DRAIN"), "200 draining");
  EXPECT_EQ(core.handle_line("SUBMIT bfs best-performance"),
            "503 shed seq=4 reason=draining");
  EXPECT_FALSE(core.drained()) << "seq=3 still queued";
  EXPECT_TRUE(core.step());
  EXPECT_TRUE(core.drained()) << "nothing queued or in flight: safe to exit";
}

TEST_F(ServiceCoreTest, GenerousDeadlineIsMet) {
  ServiceCore core(small_config(), journal_, /*resume=*/false);
  EXPECT_EQ(core.handle_line("SUBMIT bfs best-performance deadline=900000"),
            "202 accepted seq=1");
  EXPECT_TRUE(core.step());
  core.write_report(report_);
  EXPECT_NE(read_file(report_).find("deadline=met"), std::string::npos);
}

TEST_F(ServiceCoreTest, ResumedRunMatchesUninterruptedRunByteForByte) {
  const char* submissions[] = {
      "SUBMIT bfs best-performance priority=1",
      "SUBMIT bfs greengpu",
      "SUBMIT bfs scaling priority=2",
  };
  {  // Control: never killed.
    ServiceCore core(small_config(), control_journal_, /*resume=*/false);
    for (const char* s : submissions) ASSERT_EQ(core.handle_line(s).substr(0, 3), "202");
    while (core.step()) {}
    core.write_report(control_report_);
  }
  {  // Live run, killed after one completion…
    ServiceCore core(small_config(), journal_, /*resume=*/false);
    for (const char* s : submissions) ASSERT_EQ(core.handle_line(s).substr(0, 3), "202");
    ASSERT_TRUE(core.step());
  }
  {  // …and resumed: counters, backlog and the rest of the work are rebuilt.
    ServiceCore core(small_config(), journal_, /*resume=*/true);
    EXPECT_EQ(core.stats().submitted, 3u);
    EXPECT_EQ(core.stats().admitted, 3u);
    EXPECT_EQ(core.stats().completed, 1u);
    EXPECT_EQ(core.queue_depth(), 2u);
    EXPECT_EQ(core.handle_line("STATUS 3"), "200 status seq=3 state=ok")
        << "priority 2 ran first";
    while (core.step()) {}
    core.write_report(report_);
  }
  EXPECT_EQ(read_file(report_), read_file(control_report_));
}

TEST_F(ServiceCoreTest, CrashBeforeResultIsReexecutedOnResume) {
  {  // Control.
    ServiceCore core(small_config(), control_journal_, /*resume=*/false);
    ASSERT_EQ(core.handle_line("SUBMIT bfs best-performance"), "202 accepted seq=1");
    ASSERT_EQ(core.handle_line("SUBMIT bfs greengpu"), "202 accepted seq=2");
    while (core.step()) {}
    core.write_report(control_report_);
  }
  {  // The request executes but dies before its outcome is journaled.
    ServiceCore core(small_config(), journal_, /*resume=*/false);
    ASSERT_EQ(core.handle_line("SUBMIT bfs best-performance"), "202 accepted seq=1");
    ASSERT_EQ(core.handle_line("SUBMIT bfs greengpu"), "202 accepted seq=2");
    common::arm_kill_point(common::KillPoint::kServicePreResult, 1,
                           common::CrashMode::kThrow);
    EXPECT_THROW((void)core.step(), common::CrashInjected);
  }
  {
    ServiceCore core(small_config(), journal_, /*resume=*/true);
    EXPECT_EQ(core.stats().completed, 0u);
    EXPECT_EQ(core.handle_line("STATUS 1"), "200 status seq=1 state=running")
        << "the journaled claim is back in flight";
    while (core.step()) {}
    core.write_report(report_);
  }
  EXPECT_EQ(read_file(report_), read_file(control_report_));
}

TEST_F(ServiceCoreTest, JournaledClaimOutranksTheRebuiltQueue) {
  // A claim is journaled before execution precisely so this scenario cannot
  // reorder history: seq=1 was claimed (priority 0), then a priority-5
  // request arrived, then the daemon died.  The resumed daemon must finish
  // seq=1 first — like the live run does — not let the rebuilt priority
  // queue run seq=2 ahead of it.
  {  // Control: the live run survives its in-process crash and retries.
    ServiceCore core(small_config(), control_journal_, /*resume=*/false);
    ASSERT_EQ(core.handle_line("SUBMIT bfs best-performance"), "202 accepted seq=1");
    common::arm_kill_point(common::KillPoint::kServicePreResult, 1,
                           common::CrashMode::kThrow);
    EXPECT_THROW((void)core.step(), common::CrashInjected);
    ASSERT_EQ(core.handle_line("SUBMIT bfs greengpu priority=5"),
              "202 accepted seq=2");
    while (core.step()) {}
    core.write_report(control_report_);
  }
  {  // Same story, but the crash kills the process instead.
    ServiceCore core(small_config(), journal_, /*resume=*/false);
    ASSERT_EQ(core.handle_line("SUBMIT bfs best-performance"), "202 accepted seq=1");
    common::arm_kill_point(common::KillPoint::kServicePreResult, 1,
                           common::CrashMode::kThrow);
    EXPECT_THROW((void)core.step(), common::CrashInjected);
    ASSERT_EQ(core.handle_line("SUBMIT bfs greengpu priority=5"),
              "202 accepted seq=2");
    // Process death here: the core is dropped with seq=1 claimed.
  }
  {
    ServiceCore core(small_config(), journal_, /*resume=*/true);
    while (core.step()) {}
    core.write_report(report_);
  }
  const std::string report = read_file(report_);
  EXPECT_EQ(report, read_file(control_report_));
  EXPECT_LT(report.find("outcome seq=1"), report.find("outcome seq=2"))
      << "claim order survived the restart";
}

TEST_F(ServiceCoreTest, SupervisedRetryAfterInProcessCrash) {
  ServiceCore core(small_config(), journal_, /*resume=*/false);
  ASSERT_EQ(core.handle_line("SUBMIT bfs best-performance"), "202 accepted seq=1");
  common::arm_kill_point(common::KillPoint::kServicePreResult, 1,
                         common::CrashMode::kThrow);
  EXPECT_THROW((void)core.step(), common::CrashInjected);
  core.note_restart();
  // The kill-point was single-shot; the retry re-executes the same claim and
  // lands exactly one outcome.
  EXPECT_TRUE(core.step());
  EXPECT_EQ(core.stats().completed, 1u);
  EXPECT_EQ(core.stats().restarts, 1u);
  core.write_report(report_);
  const std::string report = read_file(report_);
  EXPECT_EQ(report.find("outcome seq=1"), report.rfind("outcome seq=1"))
      << "one outcome, not two, despite the retry";
}

TEST_F(ServiceCoreTest, CrashAfterAdmitLosesTheReplyNotTheRequest) {
  {
    ServiceCore core(small_config(), journal_, /*resume=*/false);
    common::arm_kill_point(common::KillPoint::kServicePostAdmit, 1,
                           common::CrashMode::kThrow);
    EXPECT_THROW((void)core.handle_line("SUBMIT bfs best-performance"),
                 common::CrashInjected);
    // The client never saw "202", but the admission is journaled.
  }
  ServiceCore core(small_config(), journal_, /*resume=*/true);
  EXPECT_EQ(core.stats().admitted, 1u);
  EXPECT_EQ(core.handle_line("STATUS 1"), "200 status seq=1 state=queued");
  EXPECT_TRUE(core.step());
  EXPECT_EQ(core.handle_line("STATUS 1"), "200 status seq=1 state=ok");
}

TEST_F(ServiceCoreTest, ResumeRefusesAForeignConfiguration) {
  {
    ServiceCore core(small_config(), journal_, /*resume=*/false);
    ASSERT_EQ(core.handle_line("SUBMIT bfs best-performance"), "202 accepted seq=1");
  }
  ServiceConfig other = small_config();
  other.seed = 0xD1FFULL;
  EXPECT_THROW(ServiceCore(other, journal_, /*resume=*/true),
               common::SnapshotError);
}

TEST_F(ServiceCoreTest, ReplayWindowMatchesTheReportAndRejectsBadWindows) {
  ServiceConfig config = small_config();
  {
    ServiceCore core(config, journal_, /*resume=*/false);
    ASSERT_EQ(core.handle_line("SUBMIT bfs best-performance"), "202 accepted seq=1");
    ASSERT_EQ(core.handle_line("SUBMIT bfs greengpu"), "202 accepted seq=2");
    while (core.step()) {}
    core.write_report(report_);
  }
  const std::string report = read_file(report_);
  std::string out;
  std::string error;
  // admit, admit, start, outcome, start, outcome = 6 records.
  ASSERT_TRUE(ServiceCore::replay_window(config, journal_, 0, 5, out, error))
      << error;
  EXPECT_EQ(out, report);

  // A sub-window replays to the same slice of the report.
  ASSERT_TRUE(ServiceCore::replay_window(config, journal_, 2, 3, out, error))
      << error;
  std::istringstream lines(report);
  std::string slice;
  std::string line;
  for (int i = 0; std::getline(lines, line); ++i) {
    if (i >= 2 && i <= 3) slice += line + "\n";
  }
  EXPECT_EQ(out, slice);

  EXPECT_FALSE(ServiceCore::replay_window(config, journal_, 4, 99, out, error));
  EXPECT_NE(error.find("out of range"), std::string::npos) << error;

  // Replay under the wrong configuration is refused up front by the
  // journal fingerprint, naming the file.
  ServiceConfig other = config;
  other.seed = 0xD1FFULL;
  EXPECT_FALSE(ServiceCore::replay_window(other, journal_, 0, 5, out, error));
  EXPECT_NE(error.find(journal_), std::string::npos) << error;
}

TEST_F(ServiceCoreTest, ReplayDetectsATamperedOutcome) {
  ServiceConfig config = small_config();
  {
    ServiceCore core(config, journal_, /*resume=*/false);
    ASSERT_EQ(core.handle_line("SUBMIT bfs best-performance"), "202 accepted seq=1");
    ASSERT_TRUE(core.step());
  }
  // Append a forged outcome for seq=1 whose exec_time cannot come from the
  // deterministic re-execution (vtime_after keeps vtime_before consistent so
  // the forgery is only detectable by actually replaying the run).
  auto records = ServiceJournal::read(journal_, config.fingerprint());
  OutcomeRecord forged = records.back().outcome;
  forged.exec_time += 1.0;
  forged.vtime_after += 1.0;
  {
    ServiceJournal journal(journal_, config.fingerprint(), /*fresh=*/false);
    journal.outcome(forged);
  }
  std::string out;
  std::string error;
  const std::size_t last = records.size();  // index of the forged record
  EXPECT_FALSE(ServiceCore::replay_window(config, journal_, last, last, out, error));
  EXPECT_NE(error.find("exec_time"), std::string::npos) << error;
}

TEST_F(ServiceCoreTest, ReplayOfAnEmptyJournalIsAnError) {
  ServiceConfig config = small_config();
  { ServiceCore core(config, journal_, /*resume=*/false); }
  std::string out;
  std::string error;
  EXPECT_FALSE(ServiceCore::replay_window(config, journal_, 0, 0, out, error));
  EXPECT_NE(error.find("no records"), std::string::npos) << error;
}

}  // namespace
}  // namespace gg::service
