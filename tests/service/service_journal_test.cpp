#include "src/service/journal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "src/common/snapshot.h"

namespace gg::service {
namespace {

constexpr std::uint64_t kFingerprint = 0x5EEDF00DULL;

class ServiceJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             (std::string("gg_service_journal_") +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".bin"))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
};

Request sample_admit() {
  Request r;
  r.seq = 7;
  r.workload = "bfs";
  r.policy = "greengpu";
  r.priority = 2;
  r.deadline = Seconds{12.5};
  r.iterations = 40;
  r.seed = 99;
  r.vtime_admit = Seconds{1.25};
  return r;
}

OutcomeRecord sample_outcome() {
  OutcomeRecord o;
  o.seq = 7;
  o.device = 1;
  o.status = OutcomeStatus::kOk;
  o.exec_time = 3.5;
  o.gpu_energy = 10.0;
  o.cpu_energy = 4.0;
  o.verified = true;
  o.fault_events = 2;
  o.watchdog_trips = 1;
  o.scaler_decisions = 5;
  o.division_moves = 3;
  o.deadline = DeadlineVerdict::kMet;
  o.vtime_after = 4.75;
  return o;
}

TEST_F(ServiceJournalTest, RoundTripsAllRecordKinds) {
  {
    ServiceJournal journal(path_, kFingerprint, /*fresh=*/true);
    journal.admit(sample_admit());
    journal.shed({8, "kmeans", "division", 0, "queue-full"});
    journal.start({7, 1, 1.25});
    journal.outcome(sample_outcome());
  }
  const auto records = ServiceJournal::read(path_, kFingerprint);
  ASSERT_EQ(records.size(), 4u);

  ASSERT_EQ(records[0].kind, RecordKind::kAdmit);
  const Request& a = records[0].admit;
  EXPECT_EQ(a.seq, 7u);
  EXPECT_EQ(a.workload, "bfs");
  EXPECT_EQ(a.policy, "greengpu");
  EXPECT_EQ(a.priority, 2u);
  EXPECT_DOUBLE_EQ(a.deadline.get(), 12.5);
  EXPECT_EQ(a.iterations, 40u);
  EXPECT_EQ(a.seed, 99u);
  EXPECT_DOUBLE_EQ(a.vtime_admit.get(), 1.25);

  ASSERT_EQ(records[1].kind, RecordKind::kShed);
  EXPECT_EQ(records[1].shed.seq, 8u);
  EXPECT_EQ(records[1].shed.reason, "queue-full");

  ASSERT_EQ(records[2].kind, RecordKind::kStart);
  EXPECT_EQ(records[2].start.seq, 7u);
  EXPECT_EQ(records[2].start.device, 1u);
  EXPECT_DOUBLE_EQ(records[2].start.vtime, 1.25);

  ASSERT_EQ(records[3].kind, RecordKind::kOutcome);
  const OutcomeRecord& o = records[3].outcome;
  EXPECT_EQ(o.seq, 7u);
  EXPECT_EQ(o.device, 1u);
  EXPECT_EQ(o.status, OutcomeStatus::kOk);
  EXPECT_DOUBLE_EQ(o.exec_time, 3.5);
  EXPECT_TRUE(o.verified);
  EXPECT_EQ(o.fault_events, 2u);
  EXPECT_EQ(o.watchdog_trips, 1u);
  EXPECT_EQ(o.scaler_decisions, 5u);
  EXPECT_EQ(o.division_moves, 3u);
  EXPECT_EQ(o.deadline, DeadlineVerdict::kMet);
  EXPECT_DOUBLE_EQ(o.vtime_after, 4.75);
}

TEST_F(ServiceJournalTest, RenderIsByteStable) {
  // The report is the concatenation of these lines; replay compares them
  // byte-for-byte, so the exact text is contract, not cosmetics.
  ServiceRecord admit;
  admit.kind = RecordKind::kAdmit;
  admit.admit = sample_admit();
  EXPECT_EQ(render(admit),
            "admit seq=7 workload=bfs policy=greengpu priority=2 "
            "deadline=12.500000 iters=40 seed=99 vtime=1.250000");

  ServiceRecord shed;
  shed.kind = RecordKind::kShed;
  shed.shed = {8, "kmeans", "division", 0, "queue-full"};
  EXPECT_EQ(render(shed),
            "shed seq=8 workload=kmeans policy=division priority=0 "
            "reason=queue-full");

  ServiceRecord start;
  start.kind = RecordKind::kStart;
  start.start = {7, 1, 1.25};
  EXPECT_EQ(render(start), "start seq=7 device=1 vtime=1.250000");

  ServiceRecord outcome;
  outcome.kind = RecordKind::kOutcome;
  outcome.outcome = sample_outcome();
  EXPECT_EQ(render(outcome),
            "outcome seq=7 device=1 status=ok exec=3.500000 gpu_j=10.000000 "
            "cpu_j=4.000000 verified=1 faults=2 watchdog=1 scaler=5 moves=3 "
            "deadline=met vtime=4.750000");

  outcome.outcome.status = OutcomeStatus::kFailed;
  outcome.outcome.deadline = DeadlineVerdict::kViolated;
  const std::string failed = render(outcome);
  EXPECT_NE(failed.find("status=failed"), std::string::npos);
  EXPECT_NE(failed.find("deadline=violated"), std::string::npos);
}

TEST_F(ServiceJournalTest, AppendAfterReopenExtends) {
  {
    ServiceJournal journal(path_, kFingerprint, /*fresh=*/true);
    journal.admit(sample_admit());
  }
  {
    ServiceJournal journal(path_, kFingerprint, /*fresh=*/false);
    journal.outcome(sample_outcome());
  }
  EXPECT_EQ(ServiceJournal::read(path_, kFingerprint).size(), 2u);
}

TEST_F(ServiceJournalTest, FreshTruncatesAndFingerprintGuards) {
  {
    ServiceJournal journal(path_, kFingerprint, /*fresh=*/true);
    journal.admit(sample_admit());
  }
  { ServiceJournal journal(path_, kFingerprint, /*fresh=*/true); }
  EXPECT_TRUE(ServiceJournal::read(path_, kFingerprint).empty());
  // A journal written under one configuration refuses another; the error
  // names the file and the offending byte offset.
  try {
    (void)ServiceJournal::read(path_, kFingerprint + 1);
    FAIL() << "expected SnapshotError";
  } catch (const common::SnapshotError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path_), std::string::npos) << what;
    EXPECT_NE(what.find("byte"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace gg::service
