// Chaos soak of the socket transport: a real SocketServer on a real AF_UNIX
// socket, with sim::SocketFaultInjector perturbing every transport syscall.
//
// Two regimes:
//   * recoverable faults (short reads/writes, EINTR, stalled peers) must be
//     completely masked — every request gets its exact reply, and a WATCH
//     stream arrives gapless and byte-identical to the offline regeneration;
//   * lethal faults (EPIPE, mid-frame disconnect) must kill only the peer's
//     connection — the daemon keeps serving and evicted watchers leave the
//     hub — never the process.
//
// The shell-level twin (tools/service_chaos.sh) drives the same matrix
// through the real binary with kill/stall/reconnect on top.
#include "src/service/socket_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/service/core.h"
#include "src/sim/fault.h"

namespace gg::service {
namespace {

ServiceConfig soak_config() {
  ServiceConfig config;
  config.devices = 2;
  config.queue_capacity = 8;
  config.seed = 0x5EEDULL;
  // Fast heartbeats (~100 ms at the 50 ms poll tick) so the idle-stream
  // path is exercised within the test's lifetime.
  config.telemetry.heartbeat_ticks = 2;
  return config;
}

/// The daemon shell in miniature: core + mutex + serve() on a thread, with
/// requests executed synchronously inside the handler so the test needs no
/// separate executor loop.
class StreamSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto dir = std::filesystem::temp_directory_path();
    const std::string stem =
        std::string("gg_soak_") +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    journal_ = (dir / (stem + ".journal")).string();
    socket_path_ = (dir / (stem + ".sock")).string();
    std::filesystem::remove(journal_);
    std::filesystem::remove(socket_path_);
  }

  void TearDown() override {
    stop_server();
    std::filesystem::remove(journal_);
    std::filesystem::remove(socket_path_);
  }

  void start_server(const ServiceConfig& config,
                    sim::SocketFaultInjector* injector) {
    core_ = std::make_unique<ServiceCore>(config, journal_, /*resume=*/false);
    server_ = std::make_unique<SocketServer>(socket_path_);
    server_->set_fault_injector(injector);

    const LineHandler handler = [this](const std::string& line) {
      std::lock_guard<std::mutex> lock(mu_);
      std::string reply = core_->handle_line(line);
      while (core_->step()) {
      }
      return reply;
    };
    StreamHooks hooks;
    hooks.subscribe = [this](const std::string& line, std::string& reply) {
      std::lock_guard<std::mutex> lock(mu_);
      return core_->watch(line, reply);
    };
    hooks.unsubscribe = [this](std::uint64_t id) {
      std::lock_guard<std::mutex> lock(mu_);
      core_->unwatch(id);
    };
    hooks.next_frame = [this](std::uint64_t id) {
      std::lock_guard<std::mutex> lock(mu_);
      return core_->next_frame(id);
    };
    hooks.note_progress = [this](std::uint64_t id, bool progressed) {
      std::lock_guard<std::mutex> lock(mu_);
      core_->telemetry_progress(id, progressed);
    };
    hooks.tick = [this] {
      std::lock_guard<std::mutex> lock(mu_);
      return core_->telemetry_tick();
    };
    thread_ = std::thread([this, handler, hooks] {
      server_->serve(handler, hooks, stop_);
    });
  }

  void stop_server() {
    if (thread_.joinable()) {
      stop_.store(true, std::memory_order_release);
      thread_.join();
    }
    server_.reset();
    core_.reset();
  }

  std::size_t subscriber_count() {
    std::lock_guard<std::mutex> lock(mu_);
    return core_->telemetry().subscriber_count();
  }

  std::string journal_;
  std::string socket_path_;
  std::mutex mu_;
  std::unique_ptr<ServiceCore> core_;
  std::unique_ptr<SocketServer> server_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

TEST_F(StreamSoakTest, RecoverableFaultsAreMaskedCompletely) {
  const ServiceConfig config = soak_config();
  sim::SocketFaultConfig faults;
  faults.seed = 0xC4A05ULL;
  faults.short_write_rate = 0.15;
  faults.short_read_rate = 0.15;
  faults.eintr_rate = 0.10;
  faults.stall_rate = 0.10;
  sim::SocketFaultInjector injector(faults);
  start_server(config, &injector);

  // A watcher tails the stream from event 1.  Every submitted request emits
  // admit + start + outcome, so three jobs end the stream at seq 9.
  constexpr int kJobs = 3;
  constexpr std::uint64_t kLastSeq = 3 * kJobs;
  std::atomic<bool> watching{false};
  std::vector<std::string> frames;
  std::thread watcher([&] {
    socket_watch(socket_path_, "WATCH", /*idle_timeout_ms=*/10000,
                 [&](const std::string& frame) {
                   frames.push_back(frame);
                   watching.store(true, std::memory_order_release);
                   return frame.rfind("EVENT " + std::to_string(kLastSeq) + " ",
                                      0) != 0;
                 });
  });
  while (!watching.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  for (int k = 1; k <= kJobs; ++k) {
    EXPECT_EQ(socket_request(socket_path_, "SUBMIT bfs best-performance"),
              "202 accepted seq=" + std::to_string(k) + "\n");
    EXPECT_EQ(socket_request(socket_path_, "STATUS " + std::to_string(k)),
              "200 status seq=" + std::to_string(k) + " state=ok\n");
  }
  EXPECT_EQ(socket_request(socket_path_, "PING"), "200 pong\n");
  watcher.join();

  // The handshake arrived before any event; the stream is gapless: every
  // EVENT seq from 1 to kLastSeq exactly once, nothing dropped, heartbeats
  // interleaved freely.
  ASSERT_FALSE(frames.empty());
  EXPECT_EQ(frames[0], "200 watching from=1 last=0");
  std::string events;
  std::uint64_t expected_seq = 1;
  for (std::size_t i = 1; i < frames.size(); ++i) {
    const std::string& frame = frames[i];
    if (frame.rfind("HEARTBEAT ", 0) == 0) continue;
    ASSERT_NE(frame.rfind("DROPPED ", 0), 0u)
        << "a fast consumer must never lose events to transport chaos";
    ASSERT_EQ(frame.rfind("EVENT " + std::to_string(expected_seq) + " ", 0), 0u)
        << "gap at frame: " << frame;
    ++expected_seq;
    events += frame + "\n";
  }
  EXPECT_EQ(expected_seq, kLastSeq + 1);

  // Byte-identity with the offline regeneration of the same journal.
  stop_server();
  std::string offline;
  std::string error;
  ASSERT_TRUE(ServiceCore::events_window(config, journal_, 1, offline, error))
      << error;
  EXPECT_EQ(events, offline);

  // The soak only means something if chaos actually fired.
  EXPECT_GT(injector.injected(), 0u);
  EXPECT_GT(injector.count(sim::SocketFault::kShortWrite) +
                injector.count(sim::SocketFault::kShortRead),
            0u);
}

TEST_F(StreamSoakTest, LethalFaultsEvictPeersNotTheDaemon) {
  const ServiceConfig config = soak_config();
  sim::SocketFaultConfig faults;
  faults.seed = 0xDEADULL;
  faults.epipe_rate = 0.5;       // half of all server writes find a dead peer
  faults.disconnect_rate = 0.25;  // a quarter of reads see a vanished peer
  sim::SocketFaultInjector injector(faults);
  start_server(config, &injector);

  // Watchers whose connections the injector severs: the daemon must
  // unsubscribe them (eviction path), never die with them.
  for (int w = 0; w < 3; ++w) {
    (void)socket_watch(socket_path_, "WATCH", /*idle_timeout_ms=*/200,
                       [](const std::string&) { return true; });
  }

  // Request connections keep working between injected kills.  A dropped
  // connection surfaces to this blocking client as EOF (empty reply) —
  // count the clean round trips.
  int clean = 0;
  for (int i = 0; i < 40; ++i) {
    try {
      if (socket_request(socket_path_, "PING") == "200 pong\n") ++clean;
    } catch (const std::runtime_error&) {
      // connect/write raced an injected kill; the daemon itself is fine
    }
  }
  EXPECT_GT(clean, 0) << "the daemon must keep serving through peer deaths";
  EXPECT_GT(injector.count(sim::SocketFault::kEpipe) +
                injector.count(sim::SocketFault::kDisconnect),
            0u);

  // Every severed watcher leaves the hub once the server notices the kill.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (subscriber_count() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(subscriber_count(), 0u);

  // And a clean shutdown still works: serve() exits within one poll tick.
  stop_server();
}

}  // namespace
}  // namespace gg::service
