#include "src/service/breaker.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <utility>

namespace gg::service {
namespace {

BreakerConfig config(int threshold, int probe_after) {
  BreakerConfig c;
  c.failure_threshold = threshold;
  c.probe_after = probe_after;
  return c;
}

TEST(CircuitBreaker, RejectsZeroDevices) {
  EXPECT_THROW(CircuitBreaker(0, config(3, 4)), std::invalid_argument);
}

TEST(CircuitBreaker, RoundRobinCursorIsTheCompletionCount) {
  CircuitBreaker b(2, config(3, 4));
  EXPECT_EQ(b.acquire(), 0u);
  // acquire() alone never advances the cursor — only completions do, because
  // only completions are journaled and a resumed breaker must converge.
  EXPECT_EQ(b.acquire(), 0u);
  b.on_result(0, true);
  EXPECT_EQ(b.acquire(), 1u);
  b.on_result(1, true);
  EXPECT_EQ(b.acquire(), 0u);
  EXPECT_EQ(b.completions(), 2u);
}

TEST(CircuitBreaker, OpensAfterConsecutiveFailuresOnly) {
  CircuitBreaker b(2, config(2, 4));
  EXPECT_EQ(b.on_result(0, false), CircuitBreaker::Event::kNone);
  // A success resets the consecutive-failure count…
  EXPECT_EQ(b.on_result(0, true), CircuitBreaker::Event::kNone);
  EXPECT_EQ(b.state(0), CircuitBreaker::State::kClosed);
  // …so quarantine needs the full threshold again.
  EXPECT_EQ(b.on_result(0, false), CircuitBreaker::Event::kNone);
  EXPECT_EQ(b.on_result(0, false), CircuitBreaker::Event::kOpened);
  EXPECT_EQ(b.state(0), CircuitBreaker::State::kOpen);
}

TEST(CircuitBreaker, OpenDeviceIsSkippedByRotation) {
  CircuitBreaker b(2, config(2, 4));
  b.on_result(0, false);
  b.on_result(0, false);  // device 0 quarantined, completions = 2
  ASSERT_EQ(b.state(0), CircuitBreaker::State::kOpen);
  // Cursor 2 % 2 = 0 points at the open device; rotation steps past it.
  EXPECT_EQ(b.acquire(), 1u);
}

TEST(CircuitBreaker, ProbesAfterEnoughCompletionsElsewhere) {
  CircuitBreaker b(2, config(2, 3));
  b.on_result(0, false);
  b.on_result(0, false);  // opened_at = 2
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(b.acquire(), 1u) << "not probe-ready yet";
    b.on_result(1, true);
  }
  b.on_result(1, true);  // completions = 5 >= opened_at + probe_after
  EXPECT_EQ(b.acquire(), 0u);
  EXPECT_EQ(b.state(0), CircuitBreaker::State::kHalfOpen);
  // The probe succeeds: the device is healthy again.
  EXPECT_EQ(b.on_result(0, true), CircuitBreaker::Event::kClosed);
  EXPECT_EQ(b.state(0), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, FailedProbeReopensAndRestartsTheClock) {
  CircuitBreaker b(2, config(2, 3));
  b.on_result(0, false);
  b.on_result(0, false);  // opened_at = 2
  b.on_result(1, true);
  b.on_result(1, true);
  b.on_result(1, true);  // completions = 5: probe due
  ASSERT_EQ(b.acquire(), 0u);
  EXPECT_EQ(b.on_result(0, false), CircuitBreaker::Event::kReopened);
  EXPECT_EQ(b.state(0), CircuitBreaker::State::kOpen);
  // opened_at restarted at 6: the very next acquire goes back to rotation.
  EXPECT_EQ(b.acquire(), 1u);
  b.on_result(1, true);
  b.on_result(1, true);
  EXPECT_EQ(b.acquire(), 1u) << "probe clock restarted, 8 < 6 + 3";
  b.on_result(1, true);  // completions = 9
  EXPECT_EQ(b.acquire(), 0u) << "second probe due";
}

TEST(CircuitBreaker, AllOpenForceProbesTheLongestQuarantined) {
  CircuitBreaker b(2, config(1, 100));
  b.on_result(1, false);  // device 1 opened first (opened_at = 1)
  b.on_result(0, false);  // device 0 opened second (opened_at = 2)
  ASSERT_EQ(b.state(0), CircuitBreaker::State::kOpen);
  ASSERT_EQ(b.state(1), CircuitBreaker::State::kOpen);
  // No probe is due (probe_after = 100), but the queue must not stall:
  // the longest-quarantined device gets a forced half-open probe.
  EXPECT_EQ(b.acquire(), 1u);
  EXPECT_EQ(b.state(1), CircuitBreaker::State::kHalfOpen);
}

TEST(CircuitBreaker, HalfOpenProbeSurvivesRacingCompletions) {
  // A probe is a single in-flight request, but the daemon keeps executing:
  // completions on healthy devices land *between* the probe's dispatch
  // (acquire) and its outcome.  Those racing completions must neither
  // disturb the half-open state nor trick acquire() into dispatching a
  // second probe at the same device.
  CircuitBreaker b(3, config(2, 2));
  b.on_result(0, false);
  b.on_result(0, false);  // device 0 quarantined, opened_at = 2
  b.on_result(1, true);
  b.on_result(1, true);  // completions = 4: probe due
  ASSERT_EQ(b.acquire(), 0u);
  ASSERT_EQ(b.state(0), CircuitBreaker::State::kHalfOpen);
  // The race: two healthy completions arrive while the probe is in flight.
  EXPECT_EQ(b.on_result(1, true), CircuitBreaker::Event::kNone);
  EXPECT_EQ(b.on_result(2, true), CircuitBreaker::Event::kNone);
  EXPECT_EQ(b.state(0), CircuitBreaker::State::kHalfOpen)
      << "racing completions must not resolve the probe";
  // completions = 6, cursor 6 % 3 = 0 points at the half-open device —
  // rotation steps past it instead of double-probing.
  EXPECT_EQ(b.acquire(), 1u);
  // The probe outcome finally lands and resolves the quarantine.
  EXPECT_EQ(b.on_result(0, true), CircuitBreaker::Event::kClosed);
  EXPECT_EQ(b.state(0), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, RacedProbeFailureCountsTheRacingCompletions) {
  CircuitBreaker b(3, config(2, 2));
  b.on_result(0, false);
  b.on_result(0, false);  // opened_at = 2
  b.on_result(1, true);
  b.on_result(1, true);  // probe due at 4
  ASSERT_EQ(b.acquire(), 0u);
  b.on_result(1, true);
  b.on_result(2, true);  // racing completions: 6
  // The probe fails after the race: re-quarantined with the clock restarted
  // from *now* (7), so the raced completions do not shorten the next wait.
  EXPECT_EQ(b.on_result(0, false), CircuitBreaker::Event::kReopened);
  EXPECT_EQ(b.acquire(), 1u) << "7 < 7 + 2: not probe-ready";
  b.on_result(1, true);
  EXPECT_EQ(b.acquire(), 2u) << "8 < 7 + 2: still waiting";
  b.on_result(2, true);  // completions = 9
  EXPECT_EQ(b.acquire(), 0u) << "second probe due at 9";
  EXPECT_EQ(b.state(0), CircuitBreaker::State::kHalfOpen);
}

TEST(CircuitBreaker, ReplayingOutcomesRebuildsIdenticalState) {
  // The resume property the daemon relies on: state is a pure function of
  // the outcome sequence, so feeding the same (device, ok) stream into a
  // fresh breaker converges to the same acquire() behaviour.
  const std::pair<std::size_t, bool> outcomes[] = {
      {0, true}, {1, false}, {0, true}, {1, false}, {1, false}, {0, true}};
  CircuitBreaker live(2, config(2, 2));
  CircuitBreaker rebuilt(2, config(2, 2));
  for (const auto& [device, ok] : outcomes) live.on_result(device, ok);
  for (const auto& [device, ok] : outcomes) rebuilt.on_result(device, ok);
  EXPECT_EQ(live.completions(), rebuilt.completions());
  for (std::size_t d = 0; d < 2; ++d) EXPECT_EQ(live.state(d), rebuilt.state(d));
  EXPECT_EQ(live.acquire(), rebuilt.acquire());
}

}  // namespace
}  // namespace gg::service
