#include "src/service/admission.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace gg::service {
namespace {

Request make_request(std::uint64_t seq, std::uint64_t priority = 0,
                     double deadline = 0.0) {
  Request r;
  r.seq = seq;
  r.workload = "bfs";
  r.policy = "greengpu";
  r.priority = priority;
  r.deadline = Seconds{deadline};
  return r;
}

TEST(AdmissionController, RejectsNonPositiveDefaultCost) {
  EXPECT_THROW(AdmissionController(4, 0.0), std::invalid_argument);
}

TEST(AdmissionController, AdmitsUntilCapacityThenShedsQueueFull) {
  AdmissionController adm(2, 60.0);
  EXPECT_TRUE(adm.offer(make_request(1), Seconds{0.0}, false).admitted);
  EXPECT_TRUE(adm.offer(make_request(2), Seconds{0.0}, false).admitted);
  const auto d = adm.offer(make_request(3), Seconds{0.0}, false);
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, "queue-full");
  EXPECT_FALSE(d.evicted.has_value());
  EXPECT_EQ(adm.depth(), 2u);
}

TEST(AdmissionController, HigherPriorityArrivalEvictsLowestPriority) {
  AdmissionController adm(2, 60.0);
  ASSERT_TRUE(adm.offer(make_request(1, /*priority=*/2), Seconds{0.0}, false).admitted);
  ASSERT_TRUE(adm.offer(make_request(2, /*priority=*/0), Seconds{0.0}, false).admitted);
  const auto d = adm.offer(make_request(3, /*priority=*/1), Seconds{0.0}, false);
  EXPECT_TRUE(d.admitted);
  ASSERT_TRUE(d.evicted.has_value());
  EXPECT_EQ(d.evicted->seq, 2u);  // the priority-0 request is displaced
  EXPECT_EQ(adm.depth(), 2u);
}

TEST(AdmissionController, EqualPriorityArrivalDoesNotEvict) {
  // Eviction requires *strictly* outranking the queue's worst — otherwise a
  // full queue of equals would churn forever, shedding old work for new.
  AdmissionController adm(1, 60.0);
  ASSERT_TRUE(adm.offer(make_request(1, /*priority=*/1), Seconds{0.0}, false).admitted);
  const auto d = adm.offer(make_request(2, /*priority=*/1), Seconds{0.0}, false);
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, "queue-full");
}

TEST(AdmissionController, DrainingShedsEverything) {
  AdmissionController adm(4, 60.0);
  const auto d = adm.offer(make_request(1, /*priority=*/99), Seconds{0.0}, true);
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, "draining");
  EXPECT_EQ(adm.depth(), 0u);
}

TEST(AdmissionController, DeadlineUsesDefaultEstimateBeforeObservations) {
  AdmissionController adm(4, 60.0);
  // Own cost (60) alone blows a 50 s budget; a 70 s budget fits.
  const auto tight = adm.offer(make_request(1, 0, /*deadline=*/50.0),
                               Seconds{0.0}, false);
  EXPECT_FALSE(tight.admitted);
  EXPECT_EQ(tight.reason, "deadline-unmeetable");
  EXPECT_TRUE(adm.offer(make_request(2, 0, /*deadline=*/70.0), Seconds{0.0}, false)
                  .admitted);
}

TEST(AdmissionController, DeadlineCountsInflightAndOutrankingQueueOnly) {
  AdmissionController adm(4, 10.0);
  // Queue: one request that outranks the arrival (priority 5) and one that
  // does not (priority 0).  Estimated wait for a priority-1 arrival =
  // inflight (7) + outranking queued (10) + own (10) = 27.
  ASSERT_TRUE(adm.offer(make_request(1, /*priority=*/5), Seconds{0.0}, false).admitted);
  ASSERT_TRUE(adm.offer(make_request(2, /*priority=*/0), Seconds{0.0}, false).admitted);
  EXPECT_FALSE(adm.offer(make_request(3, /*priority=*/1, /*deadline=*/26.0),
                         Seconds{7.0}, false)
                   .admitted);
  EXPECT_TRUE(adm.offer(make_request(4, /*priority=*/1, /*deadline=*/27.0),
                        Seconds{7.0}, false)
                  .admitted);
}

TEST(AdmissionController, ObservedCostIsMaxSoFar) {
  AdmissionController adm(4, 60.0);
  EXPECT_DOUBLE_EQ(adm.estimate("bfs", "greengpu").get(), 60.0);
  adm.observe_cost("bfs", "greengpu", Seconds{10.0});
  EXPECT_DOUBLE_EQ(adm.estimate("bfs", "greengpu").get(), 10.0);
  adm.observe_cost("bfs", "greengpu", Seconds{25.0});
  EXPECT_DOUBLE_EQ(adm.estimate("bfs", "greengpu").get(), 25.0);
  adm.observe_cost("bfs", "greengpu", Seconds{5.0});
  EXPECT_DOUBLE_EQ(adm.estimate("bfs", "greengpu").get(), 25.0);
  // Other pairs are unaffected.
  EXPECT_DOUBLE_EQ(adm.estimate("kmeans", "greengpu").get(), 60.0);
}

TEST(AdmissionController, NextIsPriorityThenFifo) {
  AdmissionController adm(4, 60.0);
  ASSERT_TRUE(adm.offer(make_request(1, 0), Seconds{0.0}, false).admitted);
  ASSERT_TRUE(adm.offer(make_request(2, 3), Seconds{0.0}, false).admitted);
  ASSERT_TRUE(adm.offer(make_request(3, 3), Seconds{0.0}, false).admitted);
  EXPECT_EQ(adm.next()->seq, 2u);
  EXPECT_EQ(adm.next()->seq, 3u);
  EXPECT_EQ(adm.next()->seq, 1u);
  EXPECT_EQ(adm.next(), std::nullopt);
}

TEST(AdmissionController, RequeueBypassesAdmissionButNotCapacity) {
  AdmissionController adm(1, 60.0);
  // requeue ignores deadlines/draining — the request already passed
  // admission in the run that journaled it…
  adm.requeue(make_request(1, 0, /*deadline=*/1.0));
  EXPECT_EQ(adm.depth(), 1u);
  // …but a journal with more pending work than the queue can hold means the
  // configuration changed; that is corruption, not a shed.
  EXPECT_THROW(adm.requeue(make_request(2)), std::logic_error);
}

}  // namespace
}  // namespace gg::service
