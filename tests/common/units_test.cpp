#include "src/common/units.h"

#include <gtest/gtest.h>

#include <sstream>

namespace gg {
namespace {

using namespace gg::literals;

TEST(Units, DefaultConstructedIsZero) {
  Seconds s;
  EXPECT_EQ(s.get(), 0.0);
}

TEST(Units, LiteralsProduceExpectedValues) {
  EXPECT_DOUBLE_EQ((2.5_s).get(), 2.5);
  EXPECT_DOUBLE_EQ((250_ms).get(), 0.25);
  EXPECT_DOUBLE_EQ((3_J).get(), 3.0);
  EXPECT_DOUBLE_EQ((1.5_W).get(), 1.5);
  EXPECT_DOUBLE_EQ((900_MHz).get(), 900.0);
}

TEST(Units, AdditionAndSubtractionStayInDimension) {
  const Seconds a = 2_s + 3_s;
  EXPECT_DOUBLE_EQ(a.get(), 5.0);
  EXPECT_DOUBLE_EQ((a - 1_s).get(), 4.0);
}

TEST(Units, ScalarMultiplyAndDivide) {
  EXPECT_DOUBLE_EQ((2_s * 3.0).get(), 6.0);
  EXPECT_DOUBLE_EQ((3.0 * 2_s).get(), 6.0);
  EXPECT_DOUBLE_EQ((6_s / 3.0).get(), 2.0);
}

TEST(Units, RatioOfLikeQuantitiesIsDimensionless) {
  const double ratio = 6_s / 3_s;
  EXPECT_DOUBLE_EQ(ratio, 2.0);
}

TEST(Units, EnergyEqualsPowerTimesTime) {
  const Joules e = 10_W * 3_s;
  EXPECT_DOUBLE_EQ(e.get(), 30.0);
  EXPECT_DOUBLE_EQ((3_s * 10_W).get(), 30.0);
}

TEST(Units, PowerEqualsEnergyOverTime) {
  EXPECT_DOUBLE_EQ((30_J / 3_s).get(), 10.0);
}

TEST(Units, TimeEqualsEnergyOverPower) {
  EXPECT_DOUBLE_EQ((30_J / 10_W).get(), 3.0);
}

TEST(Units, ComparisonOperators) {
  EXPECT_LT(1_s, 2_s);
  EXPECT_GE(2_s, 2_s);
  EXPECT_EQ(2_s, 2_s);
  EXPECT_NE(1_s, 2_s);
}

TEST(Units, CompoundAssignment) {
  Seconds s{1.0};
  s += 2_s;
  EXPECT_DOUBLE_EQ(s.get(), 3.0);
  s -= 1_s;
  EXPECT_DOUBLE_EQ(s.get(), 2.0);
  s *= 4.0;
  EXPECT_DOUBLE_EQ(s.get(), 8.0);
  s /= 2.0;
  EXPECT_DOUBLE_EQ(s.get(), 4.0);
}

TEST(Units, UnaryNegation) { EXPECT_DOUBLE_EQ((-(2_s)).get(), -2.0); }

TEST(Units, StreamOutput) {
  std::ostringstream oss;
  oss << 2.5_W;
  EXPECT_EQ(oss.str(), "2.5");
}

TEST(ClampUnit, ClampsBelowZero) { EXPECT_EQ(clamp_unit(-0.5), 0.0); }
TEST(ClampUnit, ClampsAboveOne) { EXPECT_EQ(clamp_unit(1.5), 1.0); }
TEST(ClampUnit, PassesThroughInterior) { EXPECT_DOUBLE_EQ(clamp_unit(0.42), 0.42); }

TEST(ApproxEqual, ExactValues) { EXPECT_TRUE(approx_equal(1.0, 1.0)); }
TEST(ApproxEqual, WithinTolerance) { EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12)); }
TEST(ApproxEqual, OutsideTolerance) { EXPECT_FALSE(approx_equal(1.0, 1.1)); }

}  // namespace
}  // namespace gg
