#include "src/common/fixed_point.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gg {
namespace {

TEST(UQ08, EndpointsExact) {
  EXPECT_DOUBLE_EQ(UQ08::zero().to_double(), 0.0);
  EXPECT_DOUBLE_EQ(UQ08::one().to_double(), 1.0);
}

TEST(UQ08, FromDoubleSaturates) {
  EXPECT_EQ(UQ08::from_double(-0.5), UQ08::zero());
  EXPECT_EQ(UQ08::from_double(1.5), UQ08::one());
}

TEST(UQ08, RoundTripErrorBounded) {
  // Quantization error of Q0.8 must be at most half an LSB (1/510).
  for (int i = 0; i <= 1000; ++i) {
    const double v = static_cast<double>(i) / 1000.0;
    const double back = UQ08::from_double(v).to_double();
    EXPECT_LE(std::fabs(back - v), 0.5 / 255.0 + 1e-12);
  }
}

TEST(UQ08, MultiplyByOneIsIdentity) {
  for (int raw = 0; raw <= 255; ++raw) {
    const auto x = UQ08::from_raw(static_cast<std::uint8_t>(raw));
    EXPECT_EQ((x * UQ08::one()).raw(), x.raw());
  }
}

TEST(UQ08, MultiplyByZeroIsZero) {
  const auto x = UQ08::from_double(0.7);
  EXPECT_EQ((x * UQ08::zero()).raw(), 0);
}

TEST(UQ08, MultiplyMatchesRealArithmetic) {
  // Fixed-point product must round-to-nearest of the real product.
  for (int a = 0; a <= 255; a += 7) {
    for (int b = 0; b <= 255; b += 11) {
      const auto fa = UQ08::from_raw(static_cast<std::uint8_t>(a));
      const auto fb = UQ08::from_raw(static_cast<std::uint8_t>(b));
      const double real = fa.to_double() * fb.to_double();
      EXPECT_LE(std::fabs((fa * fb).to_double() - real), 0.5 / 255.0 + 1e-12);
    }
  }
}

TEST(UQ08, MultiplyIsCommutative) {
  const auto a = UQ08::from_double(0.3);
  const auto b = UQ08::from_double(0.8);
  EXPECT_EQ((a * b).raw(), (b * a).raw());
}

TEST(UQ08, MultiplyNeverIncreases) {
  // x * y <= min(x, y) must hold for values in [0, 1].
  for (int a = 0; a <= 255; a += 5) {
    for (int b = 0; b <= 255; b += 5) {
      const auto fa = UQ08::from_raw(static_cast<std::uint8_t>(a));
      const auto fb = UQ08::from_raw(static_cast<std::uint8_t>(b));
      EXPECT_LE((fa * fb).raw(), std::min(fa.raw(), fb.raw()));
    }
  }
}

TEST(UQ08, SaturatingAdd) {
  const auto big = UQ08::from_double(0.9);
  EXPECT_EQ(saturating_add(big, big), UQ08::one());
  EXPECT_EQ(saturating_add(UQ08::zero(), big), big);
}

TEST(UQ08, ComplementIsExact) {
  for (int raw = 0; raw <= 255; ++raw) {
    const auto x = UQ08::from_raw(static_cast<std::uint8_t>(raw));
    EXPECT_EQ(x.complement().raw(), 255 - raw);
    EXPECT_EQ(x.complement().complement().raw(), raw);
  }
}

TEST(UQ08, Ordering) {
  EXPECT_LT(UQ08::from_double(0.2), UQ08::from_double(0.8));
  EXPECT_EQ(UQ08::from_double(0.5), UQ08::from_double(0.5));
}

}  // namespace
}  // namespace gg
