#include "src/common/backoff.h"

#include <gtest/gtest.h>

#include <vector>

namespace gg::common {
namespace {

TEST(BackoffConfig, ValidateNamesTheField) {
  BackoffConfig bad;
  bad.initial = Seconds{0.0};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.multiplier = 0.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.max = Seconds{0.001};  // < initial
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.jitter = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  EXPECT_NO_THROW(BackoffConfig{}.validate());
}

TEST(ExponentialBackoff, DoublesAndSaturates) {
  BackoffConfig cfg;
  cfg.initial = Seconds{1.0};
  cfg.multiplier = 2.0;
  cfg.max = Seconds{4.0};
  cfg.jitter = 0.0;  // exact sequence
  ExponentialBackoff backoff(cfg);
  EXPECT_DOUBLE_EQ(backoff.next().get(), 1.0);
  EXPECT_DOUBLE_EQ(backoff.next().get(), 2.0);
  EXPECT_DOUBLE_EQ(backoff.next().get(), 4.0);
  EXPECT_DOUBLE_EQ(backoff.next().get(), 4.0);  // saturated at max
  EXPECT_EQ(backoff.attempts(), 4);
}

TEST(ExponentialBackoff, JitterIsBoundedAndDeterministic) {
  BackoffConfig cfg;
  cfg.initial = Seconds{1.0};
  cfg.multiplier = 1.0;  // constant base isolates the jitter term
  cfg.max = Seconds{1.0};
  cfg.jitter = 0.25;
  std::vector<double> first;
  {
    ExponentialBackoff backoff(cfg);
    for (int i = 0; i < 16; ++i) {
      const double d = backoff.next().get();
      EXPECT_GE(d, 0.75);
      EXPECT_LE(d, 1.25);
      first.push_back(d);
    }
  }
  ExponentialBackoff again(cfg);
  for (int i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(again.next().get(), first[i]) << "delay " << i;
  }
}

TEST(ExponentialBackoff, SeedChangesTheSchedule) {
  BackoffConfig a;
  BackoffConfig b;
  b.seed = a.seed + 1;
  ExponentialBackoff ba(a);
  ExponentialBackoff bb(b);
  bool differs = false;
  for (int i = 0; i < 8; ++i) {
    differs = differs || ba.next().get() != bb.next().get();
  }
  EXPECT_TRUE(differs);
}

TEST(ExponentialBackoff, ResetRestartsBaseNotJitterStream) {
  BackoffConfig cfg;
  cfg.initial = Seconds{1.0};
  cfg.max = Seconds{8.0};
  ExponentialBackoff backoff(cfg);
  const double d0 = backoff.next().get();
  (void)backoff.next();
  backoff.reset();
  EXPECT_EQ(backoff.attempts(), 0);
  const double d0_again = backoff.next().get();
  // Base is back near `initial` (within jitter)…
  EXPECT_NEAR(d0_again, 1.0, cfg.jitter);
  // …but the jitter stream advanced, so the delay is not a replay.
  EXPECT_NE(d0, d0_again);
}

TEST(ExponentialBackoff, NeverNegativeEvenWithFullJitter) {
  BackoffConfig cfg;
  cfg.jitter = 1.0;
  ExponentialBackoff backoff(cfg);
  for (int i = 0; i < 64; ++i) EXPECT_GE(backoff.next().get(), 0.0);
}

}  // namespace
}  // namespace gg::common
