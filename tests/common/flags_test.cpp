#include "src/common/flags.h"

#include <gtest/gtest.h>

namespace gg {
namespace {

TEST(Flags, EqualsSyntax) {
  Flags f({"--workload=kmeans", "--ratio=0.15"});
  EXPECT_EQ(f.get_string("workload"), "kmeans");
  EXPECT_DOUBLE_EQ(f.get_double("ratio", 0.0), 0.15);
}

TEST(Flags, SpaceSyntax) {
  Flags f({"--workload", "kmeans", "--iterations", "40"});
  EXPECT_EQ(f.get_string("workload"), "kmeans");
  EXPECT_EQ(f.get_int("iterations", 0), 40);
}

TEST(Flags, BareBooleans) {
  Flags f({"--csv", "--verbose"});
  EXPECT_TRUE(f.get_bool("csv", false));
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_FALSE(f.get_bool("absent", false));
  EXPECT_TRUE(f.get_bool("absent2", true));
}

TEST(Flags, BooleanValues) {
  Flags f({"--a=1", "--b=false", "--c=YES", "--d=off"});
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_FALSE(f.get_bool("b", true));
  EXPECT_TRUE(f.get_bool("c", false));
  EXPECT_FALSE(f.get_bool("d", true));
}

TEST(Flags, BadBooleanThrows) {
  Flags f({"--a=maybe"});
  EXPECT_THROW(f.get_bool("a", false), std::invalid_argument);
}

TEST(Flags, Positional) {
  // Note: a non-flag token right after `--key` binds as its value (space
  // syntax), so positionals must precede flags or follow a `--k=v` form.
  Flags f({"run", "--csv", "--x=1", "extra"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "run");
  EXPECT_EQ(f.positional()[1], "extra");
  EXPECT_TRUE(f.get_bool("csv", false));  // followed by a flag: bare boolean
}

TEST(Flags, NumbersValidated) {
  Flags f({"--x=3.5abc", "--y=12"});
  EXPECT_THROW(f.get_double("x", 0.0), std::invalid_argument);
  EXPECT_EQ(f.get_int("y", 0), 12);
  EXPECT_THROW(f.get_int("x", 0), std::invalid_argument);
}

TEST(Flags, NegativeNumbers) {
  Flags f({"--x=-2.5", "--n=-7"});
  EXPECT_DOUBLE_EQ(f.get_double("x", 0.0), -2.5);
  EXPECT_EQ(f.get_int("n", 0), -7);
}

TEST(Flags, MissingReturnsFallback) {
  Flags f({});
  EXPECT_EQ(f.get_string("absent", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(f.get_double("absent", 2.0), 2.0);
}

TEST(Flags, StringRequiredForBareFlag) {
  Flags f({"--trace"});
  EXPECT_THROW(f.get_string("trace"), std::invalid_argument);
}

TEST(Flags, UnconsumedDetectsTypos) {
  Flags f({"--workload=kmeans", "--worklaod=typo"});
  (void)f.get_string("workload");
  const auto leftover = f.unconsumed();
  ASSERT_EQ(leftover.size(), 1u);
  EXPECT_EQ(leftover[0], "worklaod");
}

TEST(Flags, HasMarksConsumed) {
  Flags f({"--a=1"});
  EXPECT_TRUE(f.has("a"));
  EXPECT_TRUE(f.unconsumed().empty());
}

TEST(Flags, MalformedThrows) {
  EXPECT_THROW(Flags({"--"}), std::invalid_argument);
  EXPECT_THROW(Flags({"--=v"}), std::invalid_argument);
}

TEST(Flags, ArgcArgvConstructorSkipsProgramName) {
  const char* argv[] = {"prog", "--x=1"};
  Flags f(2, argv);
  EXPECT_EQ(f.get_int("x", 0), 1);
}

TEST(Flags, LastValueWins) {
  Flags f({"--x=1", "--x=2"});
  EXPECT_EQ(f.get_int("x", 0), 2);
}

TEST(Flags, RejectUnknownPassesWhenEverythingIsConsumed) {
  Flags f({"--workload=kmeans", "--csv"});
  (void)f.get_string("workload");
  (void)f.get_bool("csv", false);
  EXPECT_NO_THROW(f.reject_unknown());
}

TEST(Flags, RejectUnknownNamesEveryStrayFlag) {
  Flags f({"--workload=kmeans", "--worklaod=typo", "--frob"});
  (void)f.get_string("workload");
  try {
    f.reject_unknown();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.rfind("unknown flag:", 0), 0u) << what;
    EXPECT_NE(what.find("--worklaod"), std::string::npos) << what;
    EXPECT_NE(what.find("--frob"), std::string::npos) << what;
    EXPECT_EQ(what.find("--workload="), std::string::npos) << what;
  }
}

TEST(Flags, RejectUnknownIgnoresPositionals) {
  Flags f({"trace.csv", "--csv"});
  (void)f.get_bool("csv", false);
  EXPECT_NO_THROW(f.reject_unknown());
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "trace.csv");
}

}  // namespace
}  // namespace gg
