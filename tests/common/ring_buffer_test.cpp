#include "src/common/ring_buffer.h"

#include <gtest/gtest.h>

namespace gg {
namespace {

TEST(RingBuffer, ZeroCapacityThrows) {
  EXPECT_THROW(RingBuffer<int>(0), std::invalid_argument);
}

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> rb(3);
  EXPECT_TRUE(rb.empty());
  EXPECT_FALSE(rb.full());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 3u);
}

TEST(RingBuffer, PushUntilFull) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  EXPECT_EQ(rb.size(), 2u);
  rb.push(3);
  EXPECT_TRUE(rb.full());
}

TEST(RingBuffer, OverwritesOldest) {
  RingBuffer<int> rb(3);
  for (int i = 1; i <= 5; ++i) rb.push(i);
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.oldest(), 3);
  EXPECT_EQ(rb.newest(), 5);
  EXPECT_EQ(rb[0], 3);
  EXPECT_EQ(rb[1], 4);
  EXPECT_EQ(rb[2], 5);
}

TEST(RingBuffer, IndexOutOfRangeThrows) {
  RingBuffer<int> rb(3);
  rb.push(1);
  EXPECT_THROW(rb[1], std::out_of_range);
}

TEST(RingBuffer, NewestOnEmptyThrows) {
  RingBuffer<int> rb(2);
  EXPECT_THROW(rb.newest(), std::out_of_range);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> rb(2);
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(9);
  EXPECT_EQ(rb.newest(), 9);
  EXPECT_EQ(rb.oldest(), 9);
}

TEST(RingBuffer, CapacityOneBehaves) {
  RingBuffer<int> rb(1);
  rb.push(1);
  rb.push(2);
  EXPECT_EQ(rb.size(), 1u);
  EXPECT_EQ(rb.newest(), 2);
  EXPECT_EQ(rb.oldest(), 2);
}

}  // namespace
}  // namespace gg
