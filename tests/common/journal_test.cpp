#include "src/common/journal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/snapshot.h"

namespace gg::common {
namespace {

constexpr Journal::Format kFormat{/*magic=*/0x54534554u, /*version=*/1};
constexpr std::uint64_t kFingerprint = 0xABCDEF0123456789ULL;

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("gg_journal_test_" +
              std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
              "_" + ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".bin"))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  [[nodiscard]] std::uintmax_t file_size() const {
    return std::filesystem::file_size(path_);
  }

  std::string path_;
};

std::vector<std::uint8_t> payload(std::initializer_list<int> bytes) {
  std::vector<std::uint8_t> out;
  for (int b : bytes) out.push_back(static_cast<std::uint8_t>(b));
  return out;
}

TEST_F(JournalTest, RoundTripsRecords) {
  {
    Journal journal(path_, kFormat, kFingerprint, /*fresh=*/true);
    journal.append(1, payload({1, 2, 3}));
    journal.append(7, payload({}));
    journal.append(2, payload({9}));
  }
  const auto records = Journal::read(path_, kFormat, kFingerprint);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].tag, 1u);
  EXPECT_EQ(records[0].payload, payload({1, 2, 3}));
  EXPECT_EQ(records[1].tag, 7u);
  EXPECT_TRUE(records[1].payload.empty());
  EXPECT_EQ(records[2].tag, 2u);
}

TEST_F(JournalTest, AppendAfterReopenExtends) {
  {
    Journal journal(path_, kFormat, kFingerprint, /*fresh=*/true);
    journal.append(1, payload({1}));
  }
  {
    Journal journal(path_, kFormat, kFingerprint, /*fresh=*/false);
    journal.append(2, payload({2}));
  }
  EXPECT_EQ(Journal::read(path_, kFormat, kFingerprint).size(), 2u);
}

TEST_F(JournalTest, FreshTruncatesOldContent) {
  {
    Journal journal(path_, kFormat, kFingerprint, /*fresh=*/true);
    journal.append(1, payload({1}));
  }
  { Journal journal(path_, kFormat, kFingerprint, /*fresh=*/true); }
  EXPECT_TRUE(Journal::read(path_, kFormat, kFingerprint).empty());
}

TEST_F(JournalTest, TornTailIsTruncatedEarlierRecordsSurvive) {
  {
    Journal journal(path_, kFormat, kFingerprint, /*fresh=*/true);
    journal.append(1, payload({1, 2, 3, 4}));
    journal.append(2, payload({5, 6, 7, 8}));
  }
  // Chop the last record mid-payload, as a kill during append would.
  const std::uintmax_t full = file_size();
  std::filesystem::resize_file(path_, full - 2);
  const auto records = Journal::read(path_, kFormat, kFingerprint);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].tag, 1u);
  // read() repaired the file in place: the torn tail is gone for good.
  EXPECT_LT(file_size(), full - 2);
}

TEST_F(JournalTest, CorruptPayloadIsDetectedByCrc) {
  {
    Journal journal(path_, kFormat, kFingerprint, /*fresh=*/true);
    journal.append(1, payload({1, 2, 3, 4}));
  }
  {  // flip the final payload byte
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    f.put('\xFF');
  }
  EXPECT_TRUE(Journal::read(path_, kFormat, kFingerprint).empty());
}

TEST_F(JournalTest, FingerprintMismatchNamesPathAndOffset) {
  { Journal journal(path_, kFormat, kFingerprint, /*fresh=*/true); }
  try {
    (void)Journal::read(path_, kFormat, kFingerprint + 1);
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path_), std::string::npos) << what;
    EXPECT_NE(what.find("byte"), std::string::npos) << what;
  }
}

TEST_F(JournalTest, ForeignMagicNamesPathAndOffset) {
  { Journal journal(path_, kFormat, kFingerprint, /*fresh=*/true); }
  Journal::Format foreign = kFormat;
  foreign.magic ^= 0xFFu;
  try {
    (void)Journal::read(path_, foreign, kFingerprint);
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path_), std::string::npos) << what;
    EXPECT_NE(what.find("byte"), std::string::npos) << what;
  }
}

TEST_F(JournalTest, MissingFileNamesPath) {
  try {
    (void)Journal::read(path_, kFormat, kFingerprint);
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find(path_), std::string::npos) << e.what();
  }
}

TEST_F(JournalTest, TruncateToDropsTailRecords) {
  std::uint64_t second_offset = 0;
  {
    Journal journal(path_, kFormat, kFingerprint, /*fresh=*/true);
    journal.append(1, payload({1}));
    journal.append(2, payload({2}));
    journal.append(3, payload({3}));
  }
  {
    const auto records = Journal::read(path_, kFormat, kFingerprint);
    ASSERT_EQ(records.size(), 3u);
    second_offset = records[1].offset;
  }
  Journal::truncate_to(path_, second_offset);
  const auto records = Journal::read(path_, kFormat, kFingerprint);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].tag, 1u);
}

}  // namespace
}  // namespace gg::common
