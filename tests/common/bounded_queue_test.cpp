#include "src/common/bounded_queue.h"

#include <gtest/gtest.h>

#include <string>

namespace gg::common {
namespace {

struct Item {
  int priority{0};
  int seq{0};
};

/// "a outranks b": higher priority, then older (lower seq).
bool outranks(const Item& a, const Item& b) {
  if (a.priority != b.priority) return a.priority > b.priority;
  return a.seq < b.seq;
}

TEST(BoundedQueue, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedQueue<int>(0), std::invalid_argument);
}

TEST(BoundedQueue, TryPushRefusesWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueue, PopFrontIsFifo) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.try_push(1));
  ASSERT_TRUE(q.try_push(2));
  EXPECT_EQ(q.pop_front().value(), 1);
  EXPECT_EQ(q.pop_front().value(), 2);
  EXPECT_EQ(q.pop_front(), std::nullopt);
}

TEST(BoundedQueue, EvictWorstRemovesMinimumTiesToOldest) {
  BoundedQueue<Item> q(4);
  ASSERT_TRUE(q.try_push({2, 1}));
  ASSERT_TRUE(q.try_push({0, 2}));
  ASSERT_TRUE(q.try_push({0, 3}));
  ASSERT_TRUE(q.try_push({1, 4}));
  const auto worst = q.evict_worst(outranks);
  ASSERT_TRUE(worst.has_value());
  // Both priority-0 items are minimal; the *younger* one (seq 3) is evicted
  // because seq 2 outranks it — eviction prefers to keep older requests.
  EXPECT_EQ(worst->priority, 0);
  EXPECT_EQ(worst->seq, 3);
  EXPECT_EQ(q.size(), 3u);
}

TEST(BoundedQueue, PopBestReturnsMaximumFifoWithinPriority) {
  BoundedQueue<Item> q(4);
  ASSERT_TRUE(q.try_push({1, 1}));
  ASSERT_TRUE(q.try_push({2, 2}));
  ASSERT_TRUE(q.try_push({2, 3}));
  ASSERT_TRUE(q.try_push({1, 4}));
  EXPECT_EQ(q.pop_best(outranks)->seq, 2);  // highest priority, oldest first
  EXPECT_EQ(q.pop_best(outranks)->seq, 3);
  EXPECT_EQ(q.pop_best(outranks)->seq, 1);  // then the priority-1 band, FIFO
  EXPECT_EQ(q.pop_best(outranks)->seq, 4);
  EXPECT_EQ(q.pop_best(outranks), std::nullopt);
}

TEST(BoundedQueue, EmptyQueueEdgeCases) {
  BoundedQueue<std::string> q(1);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pop_front(), std::nullopt);
  EXPECT_EQ(q.evict_worst([](const std::string&, const std::string&) { return false; }),
            std::nullopt);
}

TEST(BoundedQueue, ItemsViewIsInsertionOrder) {
  BoundedQueue<int> q(3);
  ASSERT_TRUE(q.try_push(7));
  ASSERT_TRUE(q.try_push(5));
  ASSERT_TRUE(q.try_push(6));
  ASSERT_EQ(q.items().size(), 3u);
  EXPECT_EQ(q.items()[0], 7);
  EXPECT_EQ(q.items()[1], 5);
  EXPECT_EQ(q.items()[2], 6);
}

}  // namespace
}  // namespace gg::common
