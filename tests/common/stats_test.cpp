#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gg {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, ResetClearsState) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Percentile, EmptyReturnsZero) { EXPECT_EQ(percentile({}, 50), 0.0); }

TEST(Percentile, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50), 2.0);
}

TEST(Percentile, InterpolatesBetweenPoints) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25), 2.5);
}

TEST(Percentile, Extremes) {
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 9.0}, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 9.0}, 100), 9.0);
}

TEST(GeometricMean, KnownValue) {
  EXPECT_NEAR(geometric_mean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(GeometricMean, EmptyReturnsZero) { EXPECT_EQ(geometric_mean({}), 0.0); }

TEST(Mean, KnownValue) { EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0); }
TEST(Mean, EmptyReturnsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(Ewma, FirstSampleSeeds) {
  Ewma e(0.5);
  EXPECT_FALSE(e.seeded());
  EXPECT_DOUBLE_EQ(e.update(10.0), 10.0);
  EXPECT_TRUE(e.seeded());
}

TEST(Ewma, BlendsSubsequentSamples) {
  Ewma e(0.5);
  e.update(10.0);
  EXPECT_DOUBLE_EQ(e.update(20.0), 15.0);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);
}

TEST(Ewma, AlphaOneTracksInput) {
  Ewma e(1.0);
  e.update(1.0);
  EXPECT_DOUBLE_EQ(e.update(7.0), 7.0);
}

}  // namespace
}  // namespace gg
