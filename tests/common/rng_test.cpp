#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace gg {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_int(17), 17u);
  }
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(15);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntOneAlwaysZero) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(1), 0u);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(19);
  constexpr int kN = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng rng(21);
  constexpr int kN = 50000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(33);
  Rng child = a.fork();
  // The fork must not replay the parent's stream.
  Rng b(33);
  b.next();  // parent consumed one value during fork
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Splitmix, KnownNonZeroAndDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  const auto a = splitmix64(s1);
  const auto b = splitmix64(s2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, 0u);
  EXPECT_EQ(s1, s2);
  EXPECT_NE(splitmix64(s1), a);  // stream advances
}

}  // namespace
}  // namespace gg
