#include "src/common/snapshot.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "src/common/killpoint.h"
#include "src/common/rng.h"
#include "src/common/stats.h"

namespace gg::common {
namespace {

/// Fresh per-test scratch directory under the system temp root.  Named
/// after the running test so concurrent ctest jobs never collide, and
/// wiped on entry so reruns start clean.
std::filesystem::path test_dir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      (std::string("gg_") + info->test_suite_name() + "_" + info->name());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<std::uint8_t> read_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_bytes(const std::filesystem::path& path,
                 const std::vector<std::uint8_t>& bytes) {
  // GG_LINT_ALLOW(checkpoint-write): corruption harness — these tests plant
  // deliberately torn/bit-flipped snapshots to prove readers reject them.
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

SnapshotWriter sample_writer() {
  SnapshotWriter w;
  w.u8(0xAB);
  w.b(true);
  w.b(false);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.f64(-1234.5e-6);
  w.str("greengpu");
  w.f64_vec({0.0, -0.0, 1.5, 2.5});
  return w;
}

void expect_sample(SnapshotReader& r) {
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_TRUE(r.b());
  EXPECT_FALSE(r.b());
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(r.f64(), -1234.5e-6);
  EXPECT_EQ(r.str(), "greengpu");
  const std::vector<double> v = r.f64_vec();
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[2], 1.5);
  r.expect_done();
}

TEST(Snapshot, Crc32MatchesKnownVector) {
  // The canonical IEEE-802.3 check value for "123456789".
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data, sizeof data), 0xCBF43926u);
  EXPECT_EQ(crc32(data, 0), 0u);
}

TEST(Snapshot, PayloadRoundTripsThroughFrame) {
  const SnapshotWriter w = sample_writer();
  const std::vector<std::uint8_t> frame = w.frame();
  SnapshotReader r = SnapshotReader::from_frame(frame.data(), frame.size());
  expect_sample(r);
}

TEST(Snapshot, DoublesRestoreBitIdentically) {
  SnapshotWriter w;
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::quiet_NaN());
  w.f64(std::numeric_limits<double>::denorm_min());
  w.f64(std::numeric_limits<double>::infinity());
  const std::vector<std::uint8_t> frame = w.frame();
  SnapshotReader r = SnapshotReader::from_frame(frame.data(), frame.size());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()), std::bit_cast<std::uint64_t>(-0.0));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()),
            std::bit_cast<std::uint64_t>(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  r.expect_done();
}

TEST(Snapshot, FileRoundTripIsAtomic) {
  const std::filesystem::path dir = test_dir();
  const std::string path = (dir / "state.ggsn").string();
  sample_writer().write_atomic(path);
  // The temp file must not survive a successful rename.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  SnapshotReader r = SnapshotReader::from_file(path);
  expect_sample(r);
}

TEST(Snapshot, MissingFileThrows) {
  const std::filesystem::path dir = test_dir();
  EXPECT_THROW((void)SnapshotReader::from_file((dir / "nope.ggsn").string()),
               SnapshotError);
}

TEST(Snapshot, TruncatedFileThrowsAtEveryLength) {
  const std::filesystem::path dir = test_dir();
  const std::string path = (dir / "state.ggsn").string();
  sample_writer().write_atomic(path);
  const std::vector<std::uint8_t> good = read_bytes(path);
  ASSERT_GT(good.size(), 20u);
  // Chop the frame at the header boundary, inside the header and inside the
  // payload: every prefix must be rejected, never partially loaded.
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{3}, std::size_t{19}, good.size() / 2,
        good.size() - 1}) {
    std::vector<std::uint8_t> cut(good.begin(),
                                  good.begin() + static_cast<std::ptrdiff_t>(len));
    write_bytes(path, cut);
    EXPECT_THROW((void)SnapshotReader::from_file(path), SnapshotError)
        << "length " << len;
  }
}

TEST(Snapshot, BadMagicThrows) {
  const std::filesystem::path dir = test_dir();
  const std::string path = (dir / "state.ggsn").string();
  sample_writer().write_atomic(path);
  std::vector<std::uint8_t> bytes = read_bytes(path);
  bytes[0] ^= 0xFF;
  write_bytes(path, bytes);
  EXPECT_THROW((void)SnapshotReader::from_file(path), SnapshotError);
}

TEST(Snapshot, WrongSchemaVersionThrows) {
  const std::filesystem::path dir = test_dir();
  const std::string path = (dir / "state.ggsn").string();
  sample_writer().write_atomic(path);
  std::vector<std::uint8_t> bytes = read_bytes(path);
  bytes[4] = static_cast<std::uint8_t>(kSnapshotVersion + 1);  // version field
  write_bytes(path, bytes);
  try {
    (void)SnapshotReader::from_file(path);
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(Snapshot, FlippedPayloadBitFailsCrc) {
  const std::filesystem::path dir = test_dir();
  const std::string path = (dir / "state.ggsn").string();
  sample_writer().write_atomic(path);
  std::vector<std::uint8_t> bytes = read_bytes(path);
  bytes.back() ^= 0x01;  // last payload byte
  write_bytes(path, bytes);
  EXPECT_THROW((void)SnapshotReader::from_file(path), SnapshotError);
}

TEST(Snapshot, LengthFieldMismatchThrows) {
  const SnapshotWriter w = sample_writer();
  std::vector<std::uint8_t> frame = w.frame();
  frame[8] ^= 0x01;  // declared payload length (LE u64 at offset 8)
  EXPECT_THROW((void)SnapshotReader::from_frame(frame.data(), frame.size()),
               SnapshotError);
}

TEST(Snapshot, OverReadAndTrailingBytesThrow) {
  SnapshotWriter w;
  w.u32(7);
  const std::vector<std::uint8_t> frame = w.frame();
  {
    SnapshotReader r = SnapshotReader::from_frame(frame.data(), frame.size());
    (void)r.u32();
    EXPECT_THROW((void)r.u8(), SnapshotError);  // past the end
  }
  {
    SnapshotReader r = SnapshotReader::from_frame(frame.data(), frame.size());
    (void)r.u8();
    EXPECT_THROW(r.expect_done(), SnapshotError);  // 3 bytes unconsumed
  }
}

TEST(Snapshot, CrashMidCheckpointKeepsPreviousSnapshot) {
  const std::filesystem::path dir = test_dir();
  const std::string path = (dir / "state.ggsn").string();
  sample_writer().write_atomic(path);

  // The mid-checkpoint kill-point sits between the temp-file write and the
  // rename: a crash there must leave the previous snapshot untouched.
  arm_kill_point(KillPoint::kMidCheckpoint, 1, CrashMode::kThrow);
  SnapshotWriter next;
  next.str("new state that must not land");
  EXPECT_THROW(next.write_atomic(path), CrashInjected);
  disarm_kill_points();

  SnapshotReader r = SnapshotReader::from_file(path);
  expect_sample(r);  // still the old content, fully valid
}

TEST(Snapshot, RngStateRoundTripContinuesExactStream) {
  Rng a(0xFEEDF00Dull);
  (void)a.uniform();
  (void)a.normal();  // leaves a cached spare in the state
  const Rng::State st = a.state();

  SnapshotWriter w;
  for (const std::uint64_t word : st.s) w.u64(word);
  w.f64(st.spare);
  w.b(st.have_spare);
  const std::vector<std::uint8_t> frame = w.frame();

  SnapshotReader r = SnapshotReader::from_frame(frame.data(), frame.size());
  Rng::State restored;
  for (auto& word : restored.s) word = r.u64();
  restored.spare = r.f64();
  restored.have_spare = r.b();
  r.expect_done();

  Rng b;
  b.restore_state(restored);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(a.next(), b.next()) << "diverged at draw " << i;
  }
  ASSERT_EQ(a.normal(), b.normal());
}

TEST(Snapshot, EwmaRestoreContinuesFilter) {
  Ewma a(0.25);
  (void)a.update(10.0);
  (void)a.update(4.0);
  Ewma b(0.25);
  b.restore(a.value(), a.seeded());
  EXPECT_EQ(a.update(7.0), b.update(7.0));
  // An unseeded restore must re-seed on the first sample.
  Ewma c(0.25);
  c.restore(0.0, false);
  EXPECT_EQ(c.update(3.5), 3.5);
}

}  // namespace
}  // namespace gg::common
