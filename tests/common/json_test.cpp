#include "src/common/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace gg {
namespace {

TEST(JsonEscape, PlainPassesThrough) { EXPECT_EQ(json_escape("abc 123"), "abc 123"); }

TEST(JsonEscape, SpecialCharacters) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

TEST(JsonNumber, FiniteRoundTrip) {
  EXPECT_EQ(json_number(1.0), "1");
  EXPECT_EQ(std::stod(json_number(0.1)), 0.1);
}

TEST(JsonNumber, NonFiniteBecomesNull) {
  EXPECT_EQ(json_number(std::nan("")), "null");
  EXPECT_EQ(json_number(HUGE_VAL), "null");
}

TEST(JsonWriter, EmptyObject) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.end_object();
  EXPECT_EQ(os.str(), "{}");
  EXPECT_TRUE(w.complete());
}

TEST(JsonWriter, ObjectWithScalars) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("name", "kmeans");
  w.kv("energy", 12.5);
  w.kv("iters", 40);
  w.kv("verified", true);
  w.key("missing");
  w.null();
  w.end_object();
  EXPECT_EQ(os.str(),
            R"({"name":"kmeans","energy":12.5,"iters":40,"verified":true,"missing":null})");
}

TEST(JsonWriter, NestedArraysAndObjects) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("runs");
  w.begin_array();
  for (int i = 0; i < 2; ++i) {
    w.begin_object();
    w.kv("i", i);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  EXPECT_EQ(os.str(), R"({"runs":[{"i":0},{"i":1}]})");
  EXPECT_TRUE(w.complete());
}

TEST(JsonWriter, ArrayOfScalars) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  w.value(1);
  w.value("two");
  w.value(3.5);
  w.end_array();
  EXPECT_EQ(os.str(), R"([1,"two",3.5])");
}

TEST(JsonWriter, KeyEscaped) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("we\"ird", 1);
  w.end_object();
  EXPECT_EQ(os.str(), R"({"we\"ird":1})");
}

TEST(JsonWriter, MisuseThrows) {
  std::ostringstream os;
  JsonWriter w(os);
  EXPECT_THROW(w.key("k"), std::logic_error);  // key outside object
  w.begin_object();
  EXPECT_THROW(w.value(1), std::logic_error);  // value where key required
  EXPECT_THROW(w.end_array(), std::logic_error);
  w.key("k");
  EXPECT_THROW(w.end_object(), std::logic_error);  // dangling key
}

TEST(JsonWriter, SingleRootEnforced) {
  std::ostringstream os;
  JsonWriter w(os);
  w.value(1);
  EXPECT_TRUE(w.complete());
  EXPECT_THROW(w.value(2), std::logic_error);
}

}  // namespace
}  // namespace gg
