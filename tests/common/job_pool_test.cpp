#include "src/common/job_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace gg::common {
namespace {

TEST(JobPoolTest, WorkerCountDefaultsToAtLeastOne) {
  JobPool pool(0);
  EXPECT_GE(pool.worker_count(), 1u);
  JobPool three(3);
  EXPECT_EQ(three.worker_count(), 3u);
}

TEST(JobPoolTest, RunVisitsEveryIndexExactlyOnce) {
  JobPool pool(4);
  std::vector<std::atomic<int>> visits(100);
  pool.run(visits.size(), [&](std::size_t i) { visits[i].fetch_add(1); });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(JobPoolTest, ZeroTasksIsANoOp) {
  JobPool pool(4);
  bool called = false;
  pool.run(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(JobPoolTest, SingleTaskRunsInline) {
  JobPool pool(8);
  int value = 0;
  pool.run(1, [&](std::size_t i) { value = static_cast<int>(i) + 41; });
  EXPECT_EQ(value, 41);
}

TEST(JobPoolTest, MapWritesIndexDeterminedSlots) {
  JobPool pool(4);
  const std::vector<int> out =
      pool.map<int>(64, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(JobPoolTest, ResultsIdenticalForAnyWorkerCount) {
  auto compute = [](std::size_t workers) {
    JobPool pool(workers);
    return pool.map<double>(200, [](std::size_t i) {
      double x = 1.0;
      for (std::size_t k = 0; k < i % 17; ++k) x = x * 1.25 + static_cast<double>(i);
      return x;
    });
  };
  const auto serial = compute(1);
  EXPECT_EQ(serial, compute(2));
  EXPECT_EQ(serial, compute(8));
}

TEST(JobPoolTest, LowestIndexExceptionWins) {
  JobPool pool(4);
  try {
    pool.run(32, [](std::size_t i) {
      if (i == 7 || i == 23) {
        throw std::runtime_error("job " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "job 7");
  }
}

TEST(JobPoolTest, NoNewIndicesAfterFailure) {
  JobPool pool(2);
  std::atomic<std::size_t> started{0};
  std::atomic<bool> failing_job_started{false};
  EXPECT_THROW(
      pool.run(1000,
               [&](std::size_t i) {
                 started.fetch_add(1);
                 if (i == 0) {
                   failing_job_started.store(true);
                   throw std::logic_error("first job fails");
                 }
                 // Other jobs cannot finish before job 0 is underway, and each
                 // then takes ~1ms, so the second worker cannot drain the
                 // 999-job tail inside job 0's throw-to-record window (which
                 // made the original zero-cost jobs flaky under machine load).
                 while (!failing_job_started.load()) std::this_thread::yield();
                 std::this_thread::sleep_for(std::chrono::milliseconds(1));
               }),
      std::logic_error);
  // In-flight jobs may finish, but the tail of the batch is never issued.
  EXPECT_LT(started.load(), 1000u);
}

TEST(JobPoolTest, PoolIsReusableAfterAnException) {
  JobPool pool(4);
  EXPECT_THROW(pool.run(8, [](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  std::atomic<int> sum{0};
  pool.run(10, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(JobPoolTest, BackToBackBatches) {
  JobPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::vector<int> out(round + 1, -1);
    pool.run(out.size(), [&](std::size_t i) { out[i] = static_cast<int>(i); });
    const int expect = (round * (round + 1)) / 2;
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), expect);
  }
}

TEST(JobPoolTest, RunBatchesCoversEveryIndexExactlyOnce) {
  JobPool pool(4);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{8}, std::size_t{9}}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.run_batches(n, 4, [&](std::size_t first, std::size_t last) {
      ASSERT_LT(first, last);
      ASSERT_LE(last, n);
      for (std::size_t i = first; i < last; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " i=" << i;
    }
  }
}

TEST(JobPoolTest, RunBatchesGroupsAreContiguousAndAligned) {
  JobPool pool(1);
  std::vector<std::pair<std::size_t, std::size_t>> groups;
  pool.run_batches(10, 4, [&](std::size_t first, std::size_t last) {
    groups.emplace_back(first, last);
  });
  const std::vector<std::pair<std::size_t, std::size_t>> expect{
      {0, 4}, {4, 8}, {8, 10}};
  EXPECT_EQ(groups, expect);
}

TEST(JobPoolTest, RunBatchesZeroBatchBehavesAsSize1) {
  JobPool pool(2);
  std::atomic<int> calls{0};
  pool.run_batches(5, 0, [&](std::size_t first, std::size_t last) {
    EXPECT_EQ(last, first + 1);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 5);
}

TEST(JobPoolTest, RunBatchesPropagatesExceptions) {
  JobPool pool(2);
  EXPECT_THROW(pool.run_batches(8, 3,
                                [](std::size_t first, std::size_t) {
                                  if (first == 3) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
}

}  // namespace
}  // namespace gg::common
