#include "src/common/csv.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace gg {
namespace {

TEST(CsvEscape, PlainFieldUnchanged) { EXPECT_EQ(csv_escape("abc"), "abc"); }

TEST(CsvEscape, CommaQuoted) { EXPECT_EQ(csv_escape("a,b"), "\"a,b\""); }

TEST(CsvEscape, QuoteDoubledAndQuoted) { EXPECT_EQ(csv_escape("a\"b"), "\"a\"\"b\""); }

TEST(CsvEscape, NewlineQuoted) { EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\""); }

TEST(CsvNumber, CompactFormatting) {
  EXPECT_EQ(csv_number(1.0), "1");
  EXPECT_EQ(csv_number(0.25), "0.25");
  EXPECT_EQ(csv_number(1e6), "1e+06");
}

TEST(CsvNumber, SpecialValues) {
  EXPECT_EQ(csv_number(std::nan("")), "nan");
  EXPECT_EQ(csv_number(HUGE_VAL), "inf");
  EXPECT_EQ(csv_number(-HUGE_VAL), "-inf");
}

TEST(CsvWriter, WritesRows) {
  std::ostringstream oss;
  CsvWriter w(oss);
  w.row({"a", "b"});
  w.row({"1", "2"});
  EXPECT_EQ(oss.str(), "a,b\n1,2\n");
  EXPECT_EQ(w.rows_written(), 2u);
}

TEST(CsvWriter, RowValuesMixedTypes) {
  std::ostringstream oss;
  CsvWriter w(oss);
  w.row_values("name", 42, 2.5);
  EXPECT_EQ(oss.str(), "name,42,2.5\n");
}

TEST(CsvWriter, EscapesInRow) {
  std::ostringstream oss;
  CsvWriter w(oss);
  w.row({"a,b", "c"});
  EXPECT_EQ(oss.str(), "\"a,b\",c\n");
}

TEST(CsvParse, SimpleLine) {
  const auto fields = csv_parse_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(CsvParse, QuotedField) {
  const auto fields = csv_parse_line("\"a,b\",c");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "a,b");
}

TEST(CsvParse, EscapedQuote) {
  const auto fields = csv_parse_line("\"a\"\"b\"");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "a\"b");
}

TEST(CsvParse, EmptyFields) {
  const auto fields = csv_parse_line("a,,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "");
}

TEST(CsvParse, IgnoresCarriageReturn) {
  const auto fields = csv_parse_line("a,b\r");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "b");
}

TEST(CsvRoundTrip, EscapeThenParse) {
  const std::string nasty = "He said \"hi\", twice\nor more";
  const auto fields = csv_parse_line(csv_escape(nasty));
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], nasty);
}

}  // namespace
}  // namespace gg
