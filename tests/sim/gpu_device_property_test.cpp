// Property tests: the GPU device's piecewise execution and energy accounting
// against an independent analytic oracle, under randomized kernels and
// randomized mid-flight DVFS schedules.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/sim/gpu_device.h"

namespace gg::sim {
namespace {

using namespace gg::literals;

struct LevelChange {
  double time;
  std::size_t core_level;
  std::size_t mem_level;
};

/// Independent oracle: integrate work depletion and power over the piecewise
/// constant frequency schedule.
struct Oracle {
  GpuSpec spec;
  DvfsTable core = geforce8800_core_table();
  DvfsTable mem = geforce8800_memory_table();

  [[nodiscard]] double unit_time(const KernelWork& w, std::size_t cl, std::size_t ml) const {
    const double t_core = w.core_cycles_per_unit / spec.core_throughput(core.frequency(cl));
    const double t_mem = w.mem_bytes_per_unit / spec.mem_bandwidth(mem.frequency(ml));
    return std::max({t_core, t_mem, w.overhead_per_unit.get()});
  }

  /// Completion time of a kernel started at t=0 under the change schedule
  /// (changes sorted by time; initial levels are changes[0] at time 0).
  [[nodiscard]] double completion_time(const KernelWork& w,
                                       const std::vector<LevelChange>& changes) const {
    double done = 0.0;
    double t = 0.0;
    for (std::size_t i = 0; i < changes.size(); ++i) {
      const double ut = unit_time(w, changes[i].core_level, changes[i].mem_level);
      const double segment_end =
          i + 1 < changes.size() ? changes[i + 1].time : 1e300;
      const double remaining_units = w.units - done;
      const double finish = t + remaining_units * ut;
      if (finish <= segment_end + 1e-15) return finish;
      done += (segment_end - t) / ut;
      t = segment_end;
    }
    return t;  // unreachable for well-formed schedules
  }

  /// Energy from t=0 to `until` with the kernel busy [0, completion) and the
  /// device idle afterwards.
  [[nodiscard]] double energy(const KernelWork& w, const std::vector<LevelChange>& changes,
                              double completion, double until) const {
    double e = 0.0;
    for (std::size_t i = 0; i < changes.size(); ++i) {
      const double seg_start = changes[i].time;
      const double seg_end = i + 1 < changes.size() ? changes[i + 1].time : until;
      if (seg_start >= until) break;
      const double end = std::min(seg_end, until);
      const double fc = core.frequency(changes[i].core_level) / core.peak();
      const double fm = mem.frequency(changes[i].mem_level) / mem.peak();
      // Busy portion of this segment.
      const double busy_end = std::min(end, completion);
      if (busy_end > seg_start) {
        const double ut = unit_time(w, changes[i].core_level, changes[i].mem_level);
        const double uc = (w.core_cycles_per_unit /
                           spec.core_throughput(core.frequency(changes[i].core_level))) /
                          ut;
        const double um = (w.mem_bytes_per_unit /
                           spec.mem_bandwidth(mem.frequency(changes[i].mem_level))) /
                          ut;
        e += spec.power(fc, uc, fm, um).get() * (busy_end - seg_start);
      }
      // Idle portion.
      if (end > std::max(seg_start, completion)) {
        e += spec.power(fc, 0.0, fm, 0.0).get() * (end - std::max(seg_start, completion));
      }
    }
    return e;
  }
};

class GpuPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GpuPropertyTest, CompletionAndEnergyMatchOracleUnderRandomDvfs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  const Oracle oracle;

  EventQueue queue;
  GpuDevice gpu(queue, GpuSpec{}, geforce8800_core_table(), geforce8800_memory_table(),
                0, 0);

  // Random kernel: utils in [0.05, 1.0], unit time ~1 ms, 100-2000 units.
  KernelWork w;
  w.units = 100.0 + rng.uniform() * 1900.0;
  const double uc = 0.05 + 0.95 * rng.uniform();
  const double um = 0.05 + 0.95 * rng.uniform();
  const double unit_s = 5e-4 + 1.5e-3 * rng.uniform();
  w.core_cycles_per_unit = uc * unit_s * gpu.spec().core_throughput(576_MHz);
  w.mem_bytes_per_unit = um * unit_s * gpu.spec().mem_bandwidth(900_MHz);
  w.overhead_per_unit = Seconds{unit_s};

  // Random DVFS schedule: 0-8 changes within the plausible runtime.
  std::vector<LevelChange> changes{{0.0, 0, 0}};
  const double horizon = w.units * unit_s * 2.0;
  const int n_changes = static_cast<int>(rng.uniform_int(9));
  double t = 0.0;
  for (int i = 0; i < n_changes; ++i) {
    t += rng.uniform() * horizon / 8.0;
    changes.push_back(LevelChange{t, rng.uniform_int(6), rng.uniform_int(6)});
  }

  double done_at = -1.0;
  gpu.submit(w, [&] { done_at = queue.now().get(); });
  for (std::size_t i = 1; i < changes.size(); ++i) {
    queue.run_until(Seconds{changes[i].time});
    gpu.set_core_level(changes[i].core_level);
    gpu.set_mem_level(changes[i].mem_level);
  }
  queue.run_until_empty();

  const double expected_completion = oracle.completion_time(w, changes);
  ASSERT_GT(done_at, 0.0);
  EXPECT_NEAR(done_at, expected_completion, 1e-9 * (1.0 + expected_completion));

  // Advance past completion and compare total energy.
  const double until = std::max(done_at, changes.back().time) + 1.0;
  queue.run_until(Seconds{until});
  const double expected_energy = oracle.energy(w, changes, done_at, until);
  EXPECT_NEAR(gpu.energy().get(), expected_energy, 1e-6 * (1.0 + expected_energy));

  // Counter invariants.
  const GpuActivityCounters c = gpu.counters();
  EXPECT_NEAR(c.busy_integral, done_at, 1e-9 * (1.0 + done_at));
  EXPECT_LE(c.core_util_integral, c.busy_integral + 1e-9);
  EXPECT_LE(c.mem_util_integral, c.busy_integral + 1e-9);
  EXPECT_GE(c.core_util_integral, 0.0);
  EXPECT_EQ(gpu.kernels_completed(), 1u);
}

INSTANTIATE_TEST_SUITE_P(RandomSchedules, GpuPropertyTest, ::testing::Range(0, 25));

TEST(GpuPropertyExtra, BackToBackKernelsConserveWork) {
  // N kernels of equal work at fixed clocks must finish in exactly N times
  // the single-kernel duration, regardless of submission pattern.
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    EventQueue queue;
    GpuDevice gpu(queue, GpuSpec{}, geforce8800_core_table(), geforce8800_memory_table(),
                  rng.uniform_int(6), rng.uniform_int(6));
    KernelWork w;
    w.units = 10.0;
    w.overhead_per_unit = Seconds{1e-3 + 1e-3 * rng.uniform()};
    const double single = gpu.predict_duration(w).get();
    const int n = 1 + static_cast<int>(rng.uniform_int(6));
    int completed = 0;
    for (int i = 0; i < n; ++i) gpu.submit(w, [&] { ++completed; });
    queue.run_until_empty();
    EXPECT_EQ(completed, n);
    EXPECT_NEAR(queue.now().get(), single * n, 1e-9 * n);
  }
}

}  // namespace
}  // namespace gg::sim
