// Tests for the deterministic fault-injection layer (sim/fault.h).

#include "src/sim/fault.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/platform.h"

namespace gg::sim {
namespace {

TEST(FaultConfig, DefaultIsNoFaults) {
  FaultConfig cfg;
  EXPECT_FALSE(cfg.any_faults());
  EXPECT_NO_THROW(cfg.validate());
}

TEST(FaultConfig, ValidateNamesTheBadField) {
  FaultConfig cfg;
  cfg.util_drop_rate = 1.5;
  try {
    cfg.validate();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("util_drop_rate"), std::string::npos);
  }
  cfg = FaultConfig{};
  cfg.launch_fail_rate = -0.1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(FaultConfig, PartitionedChannelSumsMustStayBelowOne) {
  FaultConfig cfg;
  cfg.util_drop_rate = 0.5;
  cfg.util_stale_rate = 0.4;
  cfg.util_corrupt_rate = 0.3;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = FaultConfig{};
  cfg.clock_reject_rate = 0.6;
  cfg.clock_delay_rate = 0.6;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(FaultConfig, DelayAndThrottleNeedPositiveDurations) {
  FaultConfig cfg;
  cfg.clock_delay_rate = 0.2;
  cfg.clock_delay = Seconds{0.0};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = FaultConfig{};
  cfg.throttle_mtbf = Seconds{10.0};
  cfg.throttle_duration = Seconds{0.0};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(FaultConfig, UniformSplitsPartitionedChannels) {
  const FaultConfig cfg = FaultConfig::uniform(0.3, 42);
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_TRUE(cfg.any_faults());
  EXPECT_EQ(cfg.seed, 42u);
  EXPECT_DOUBLE_EQ(cfg.util_drop_rate + cfg.util_stale_rate + cfg.util_corrupt_rate, 0.3);
  EXPECT_DOUBLE_EQ(cfg.clock_reject_rate + cfg.clock_delay_rate + cfg.clock_clamp_rate,
                   0.3);
  EXPECT_DOUBLE_EQ(cfg.launch_fail_rate, 0.3);
  EXPECT_DOUBLE_EQ(cfg.host_fail_rate, 0.3);
  EXPECT_THROW((void)FaultConfig::uniform(1.5), std::invalid_argument);
}

TEST(FaultInjector, ZeroRatesNeverFault) {
  Platform platform;
  FaultInjector inj(platform.queue(), FaultConfig{});
  inj.add_gpu(platform.gpu(), 0);
  inj.start();
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(inj.draw_util_fault(0), UtilFault::kNone);
    EXPECT_EQ(inj.draw_clock_fault(0), ClockFault::kNone);
    EXPECT_FALSE(inj.draw_launch_fail(0));
    EXPECT_FALSE(inj.draw_host_fail());
  }
  EXPECT_FALSE(inj.throttled(0));
  EXPECT_TRUE(inj.events().empty());
}

TEST(FaultInjector, SameSeedSameSchedule) {
  const FaultConfig cfg = FaultConfig::uniform(0.35, 1234);
  Platform p1;
  Platform p2;
  FaultInjector a(p1.queue(), cfg);
  FaultInjector b(p2.queue(), cfg);
  a.add_gpu(p1.gpu(), 0);
  b.add_gpu(p2.gpu(), 0);
  a.start();
  b.start();
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.draw_util_fault(0), b.draw_util_fault(0));
    EXPECT_EQ(a.draw_clock_fault(0), b.draw_clock_fault(0));
    EXPECT_EQ(a.draw_launch_fail(0), b.draw_launch_fail(0));
    EXPECT_EQ(a.draw_host_fail(), b.draw_host_fail());
  }
}

TEST(FaultInjector, DifferentSeedsDiffer) {
  Platform p1;
  Platform p2;
  FaultInjector a(p1.queue(), FaultConfig::uniform(0.5, 1));
  FaultInjector b(p2.queue(), FaultConfig::uniform(0.5, 2));
  a.add_gpu(p1.gpu(), 0);
  b.add_gpu(p2.gpu(), 0);
  int differ = 0;
  for (int i = 0; i < 200; ++i) {
    if (a.draw_launch_fail(0) != b.draw_launch_fail(0)) ++differ;
  }
  EXPECT_GT(differ, 0);
}

TEST(FaultInjector, GpusMustRegisterInOrderBeforeStart) {
  Platform platform(2);
  FaultInjector inj(platform.queue(), FaultConfig{});
  EXPECT_THROW(inj.add_gpu(platform.gpu(1), 1), std::invalid_argument);
  inj.add_gpu(platform.gpu(0), 0);
  inj.start();
  EXPECT_THROW(inj.add_gpu(platform.gpu(1), 1), std::logic_error);
}

TEST(FaultInjector, CorruptUtilizationStaysInPercentRange) {
  Platform platform;
  FaultInjector inj(platform.queue(), FaultConfig::uniform(0.5));
  inj.add_gpu(platform.gpu(), 0);
  for (int i = 0; i < 100; ++i) {
    const auto [core, mem] = inj.corrupt_utilization(0);
    EXPECT_LE(core, 100u);
    EXPECT_LE(mem, 100u);
  }
}

TEST(FaultInjector, ThrottleEpisodePinsLowestThenRestoresRequested) {
  Platform platform;
  FaultConfig cfg;
  cfg.throttle_mtbf = Seconds{5.0};
  cfg.throttle_duration = Seconds{2.0};
  FaultInjector& inj = platform.install_faults(cfg);

  GpuDevice& gpu = platform.gpu();
  gpu.set_core_level(0);
  gpu.set_mem_level(0);
  inj.note_requested_levels(0, 0, 0);

  // Walk simulated time until the first episode begins.
  Seconds t{0.0};
  while (!inj.throttled(0) && t < Seconds{200.0}) {
    t = t + Seconds{0.5};
    platform.queue().run_until(t);
  }
  ASSERT_TRUE(inj.throttled(0)) << "no episode within 200 s at mtbf 5 s";
  EXPECT_EQ(gpu.core_level(), gpu.core_table().lowest_level());
  EXPECT_EQ(gpu.mem_level(), gpu.mem_table().lowest_level());

  // Mid-episode request: the episode end must restore this, not the
  // pre-episode levels.
  inj.note_requested_levels(0, 1, 1);
  while (inj.throttled(0)) {
    t = t + Seconds{0.5};
    platform.queue().run_until(t);
  }
  EXPECT_EQ(gpu.core_level(), 1u);
  EXPECT_EQ(gpu.mem_level(), 1u);

  bool saw_start = false;
  bool saw_end = false;
  for (const FaultEvent& e : inj.events()) {
    if (e.outcome == FaultOutcome::kThrottleStart) saw_start = true;
    if (e.outcome == FaultOutcome::kThrottleEnd) {
      EXPECT_TRUE(saw_start);
      saw_end = true;
    }
    EXPECT_EQ(e.channel, FaultChannel::kThermal);
  }
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_end);
}

TEST(FaultInjector, StopEndsActiveEpisode) {
  Platform platform;
  FaultConfig cfg;
  cfg.throttle_mtbf = Seconds{1.0};
  cfg.throttle_duration = Seconds{1000.0};
  FaultInjector& inj = platform.install_faults(cfg);
  Seconds t{0.0};
  while (!inj.throttled(0) && t < Seconds{100.0}) {
    t = t + Seconds{0.5};
    platform.queue().run_until(t);
  }
  ASSERT_TRUE(inj.throttled(0));
  inj.stop();
  EXPECT_FALSE(inj.throttled(0));
}

TEST(FaultInjector, EventLogTimestampsAreMonotonic) {
  Platform platform;
  FaultConfig cfg;
  cfg.throttle_mtbf = Seconds{2.0};
  cfg.throttle_duration = Seconds{1.0};
  platform.install_faults(cfg);
  platform.queue().run_until(Seconds{60.0});
  const auto& events = platform.faults()->events();
  ASSERT_GT(events.size(), 2u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].time.get(), events[i - 1].time.get());
  }
}

TEST(FaultStrings, AllEnumeratorsHaveNames) {
  EXPECT_EQ(to_string(FaultChannel::kThermal), "thermal");
  EXPECT_EQ(to_string(FaultChannel::kHarness), "harness");
  EXPECT_EQ(to_string(FaultOutcome::kRerouted), "rerouted");
  EXPECT_EQ(to_string(FaultOutcome::kWatchdogTrip), "watchdog-trip");
}

}  // namespace
}  // namespace gg::sim
