#include "src/sim/cpu_device.h"

#include <gtest/gtest.h>

namespace gg::sim {
namespace {

using namespace gg::literals;

class CpuDeviceTest : public ::testing::Test {
 protected:
  CpuDeviceTest() : cpu_(queue_, CpuSpec{}, phenom2_table(), 0) {}

  /// Pure-compute work lasting `seconds` at the peak P-state on all cores.
  [[nodiscard]] CpuWork compute_for(double seconds, double units = 1.0) const {
    CpuWork w;
    w.units = units;
    w.ops_per_unit = cpu_.spec().throughput(2800_MHz) * seconds / units;
    return w;
  }

  EventQueue queue_;
  CpuDevice cpu_;
};

TEST_F(CpuDeviceTest, RejectsInvalidWork) {
  CpuWork w;
  EXPECT_THROW(cpu_.submit(w, {}), std::invalid_argument);  // zero work
  w.ops_per_unit = 1.0;
  w.active_cores = 3;  // > 2 cores
  EXPECT_THROW(cpu_.submit(w, {}), std::invalid_argument);
  w.active_cores = 0;
  w.units = 0.0;
  EXPECT_THROW(cpu_.submit(w, {}), std::invalid_argument);
}

TEST_F(CpuDeviceTest, PredictDurationAtPeak) {
  EXPECT_NEAR(cpu_.predict_duration(compute_for(2.0)).get(), 2.0, 1e-12);
}

TEST_F(CpuDeviceTest, DurationScalesInverselyWithFrequency) {
  const CpuWork w = compute_for(1.0);
  cpu_.set_level(3);  // 800 MHz
  EXPECT_NEAR(cpu_.predict_duration(w).get(), 2800.0 / 800.0, 1e-9);
}

TEST_F(CpuDeviceTest, OverheadComponentDoesNotScaleWithFrequency) {
  CpuWork w;
  w.units = 10.0;
  w.overhead_per_unit = 0.1_s;
  const double at_peak = cpu_.predict_duration(w).get();
  cpu_.set_level(3);
  EXPECT_NEAR(cpu_.predict_duration(w).get(), at_peak, 1e-12);
}

TEST_F(CpuDeviceTest, HalfCoresHalvesThroughput) {
  CpuWork w = compute_for(1.0);
  w.active_cores = 1;
  EXPECT_NEAR(cpu_.predict_duration(w).get(), 2.0, 1e-9);
}

TEST_F(CpuDeviceTest, CompletionAtExactTime) {
  double done_at = -1.0;
  cpu_.submit(compute_for(1.5), [&] { done_at = queue_.now().get(); });
  EXPECT_TRUE(cpu_.busy());
  queue_.run_until_empty();
  EXPECT_NEAR(done_at, 1.5, 1e-9);
  EXPECT_EQ(cpu_.tasks_completed(), 1u);
}

TEST_F(CpuDeviceTest, MidTaskFrequencyChangeIsPiecewiseExact) {
  double done_at = -1.0;
  cpu_.submit(compute_for(1.0), [&] { done_at = queue_.now().get(); });
  queue_.run_until(0.5_s);
  cpu_.set_level(1);  // 2100 MHz
  queue_.run_until_empty();
  EXPECT_NEAR(done_at, 0.5 + 0.5 * 2800.0 / 2100.0, 1e-9);
}

TEST_F(CpuDeviceTest, UtilizationFullWhileWorking) {
  cpu_.submit(compute_for(1.0), {});
  EXPECT_DOUBLE_EQ(cpu_.utilization_now(), 1.0);
  queue_.run_until_empty();
  EXPECT_DOUBLE_EQ(cpu_.utilization_now(), 0.0);
}

TEST_F(CpuDeviceTest, SingleCoreTaskIsHalfUtilization) {
  CpuWork w = compute_for(1.0);
  w.active_cores = 1;
  cpu_.submit(w, {});
  EXPECT_DOUBLE_EQ(cpu_.utilization_now(), 0.5);
  queue_.run_until_empty();
}

TEST_F(CpuDeviceTest, SpinningReadsFullUtilization) {
  // The synchronous-stack behaviour of Section VII-A: the GPU-owner pthread
  // and the active-wait OpenMP barriers keep every core at 100 %.
  cpu_.set_spinning(true);
  EXPECT_DOUBLE_EQ(cpu_.utilization_now(), 1.0);
  queue_.run_until(2_s);
  const CpuActivityCounters c = cpu_.counters();
  EXPECT_NEAR(c.util_integral, 2.0, 1e-9);
  EXPECT_NEAR(c.spin_integral, 2.0, 1e-9);
  cpu_.set_spinning(false);
  EXPECT_DOUBLE_EQ(cpu_.utilization_now(), 0.0);
}

TEST_F(CpuDeviceTest, ActiveWorkOverridesSpinFlag) {
  cpu_.set_spinning(true);
  cpu_.submit(compute_for(1.0), {});
  queue_.run_until_empty();
  const CpuActivityCounters c = cpu_.counters();
  // Spin time only accrues while no work is active.
  EXPECT_NEAR(c.spin_integral, 0.0, 1e-9);
  EXPECT_NEAR(c.busy_integral, 1.0, 1e-9);
}

TEST_F(CpuDeviceTest, SpinEnergyAccrues) {
  cpu_.set_spinning(true);
  queue_.run_until(3_s);
  const double spin_e = cpu_.spin_energy().get();
  const double spin_power = cpu_.power_at(0, 1.0).get();  // all cores pegged
  EXPECT_NEAR(spin_e, spin_power * 3.0, 1e-6);
  EXPECT_NEAR(cpu_.energy().get(), spin_e, 1e-6);
}

TEST_F(CpuDeviceTest, IdleEnergyMatchesIdlePower) {
  queue_.run_until(5_s);
  EXPECT_NEAR(cpu_.energy().get(), cpu_.idle_power(0).get() * 5.0, 1e-9);
}

TEST_F(CpuDeviceTest, VoltageScalingReducesPowerSuperlinearly) {
  // Dynamic power at the lowest P-state must drop faster than frequency
  // alone (V^2 scaling).
  const double p_peak = cpu_.power_at(0, 1.0).get() - cpu_.idle_power(0).get();
  const double p_low = cpu_.power_at(3, 1.0).get() - cpu_.idle_power(3).get();
  const double f_ratio = 800.0 / 2800.0;
  EXPECT_LT(p_low / p_peak, f_ratio);
}

TEST_F(CpuDeviceTest, IdlePowerIncludesBoard) {
  EXPECT_GE(cpu_.idle_power(3).get(), cpu_.spec().p_board.get());
}

TEST_F(CpuDeviceTest, FifoTasks) {
  std::vector<int> order;
  cpu_.submit(compute_for(1.0), [&] { order.push_back(1); });
  cpu_.submit(compute_for(1.0), [&] { order.push_back(2); });
  EXPECT_EQ(cpu_.queued(), 1u);
  queue_.run_until_empty();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(CpuDeviceTest, EnergyOfKnownRunMatchesHandComputation) {
  // 1 s fully busy at peak, then 1 s idle.
  cpu_.submit(compute_for(1.0), {});
  queue_.run_until(2_s);
  const CpuSpec& s = cpu_.spec();
  const double busy_p = s.p_board.get() + s.p_static.get() + 2.0 * s.p_dyn_per_core.get();
  const double idle_p = cpu_.idle_power(0).get();
  EXPECT_NEAR(cpu_.energy().get(), busy_p * 1.0 + idle_p * 1.0, 1e-6);
}

}  // namespace
}  // namespace gg::sim
