#include "src/sim/platform.h"

#include <gtest/gtest.h>

#include "src/sim/monitor.h"
#include "src/sim/trace.h"

#include <sstream>

namespace gg::sim {
namespace {

using namespace gg::literals;

TEST(Platform, TestbedDefaults) {
  Platform p;
  EXPECT_EQ(p.gpu().core_level(), p.gpu().core_table().lowest_level());
  EXPECT_EQ(p.gpu().mem_level(), p.gpu().mem_table().lowest_level());
  EXPECT_EQ(p.cpu().level(), 0u);
  EXPECT_EQ(p.now(), 0_s);
}

TEST(Platform, SnapshotDeltaAttributesEnergy) {
  Platform p;
  const EnergySnapshot a = p.snapshot();
  p.queue().run_until(10_s);
  const EnergySnapshot b = p.snapshot();
  const EnergyDelta d = Platform::delta(a, b);
  EXPECT_DOUBLE_EQ(d.elapsed.get(), 10.0);
  EXPECT_GT(d.gpu.get(), 0.0);  // idle power accrues
  EXPECT_GT(d.cpu.get(), 0.0);
  EXPECT_DOUBLE_EQ(d.total().get(), d.gpu.get() + d.cpu.get());
}

TEST(Platform, MultiGpuSnapshotPerCardCoherent) {
  Platform p(3);
  EXPECT_EQ(p.gpu_count(), 3u);
  p.gpu(1).set_core_level(0);  // one card at peak clocks, two at the floor
  p.gpu(1).set_mem_level(0);
  p.queue().run_until(10_s);
  const EnergySnapshot s = p.snapshot();
  ASSERT_EQ(s.per_gpu.size(), 3u);
  Joules sum{0.0};
  for (const Joules e : s.per_gpu) sum += e;
  EXPECT_NEAR(s.gpu.get(), sum.get(), 1e-9);
  // The peak-clocked card idles hotter than the floored ones.
  EXPECT_GT(s.per_gpu[1].get(), s.per_gpu[0].get());
  EXPECT_NEAR(s.per_gpu[0].get(), s.per_gpu[2].get(), 1e-9);
}

TEST(Platform, ZeroGpusRejected) {
  EXPECT_THROW(Platform{0}, std::invalid_argument);
}

TEST(Platform, IdlePowerAtPeakIsSumOfDevices) {
  Platform p;
  const Watts expected = p.gpu().idle_power(0, 0) + p.cpu().idle_power(0);
  EXPECT_DOUBLE_EQ(p.idle_power_at_peak().get(), expected.get());
}

TEST(Platform, BusTransferTimeFormula) {
  Platform p;
  const Seconds t = p.bus().transfer_time(3.0e9);
  EXPECT_NEAR(t.get(), 1.0 + 15e-6, 1e-9);
}

TEST(GpuUtilSampler, WindowedAverages) {
  Platform p;
  p.gpu().set_core_level(0);
  p.gpu().set_mem_level(0);
  GpuUtilSampler sampler(p.gpu(), p.queue());
  // Kernel busy for 1 s at (0.6, 0.2), window of 2 s -> halves.
  KernelWork w;
  w.units = 1.0;
  const GpuSpec& s = p.gpu().spec();
  w.core_cycles_per_unit = 0.6 * 1.0 * s.core_throughput(576_MHz);
  w.mem_bytes_per_unit = 0.2 * 1.0 * s.mem_bandwidth(900_MHz);
  w.overhead_per_unit = 1_s;
  p.gpu().submit(w, {});
  p.queue().run_until(2_s);
  const GpuUtilization u = sampler.sample();
  EXPECT_NEAR(u.core, 0.3, 1e-9);
  EXPECT_NEAR(u.memory, 0.1, 1e-9);
  // Second window: idle.
  p.queue().run_until(3_s);
  const GpuUtilization u2 = sampler.sample();
  EXPECT_NEAR(u2.core, 0.0, 1e-12);
}

TEST(GpuUtilSampler, EmptyWindowReturnsZero) {
  Platform p;
  GpuUtilSampler sampler(p.gpu(), p.queue());
  const GpuUtilization u = sampler.sample();  // zero elapsed time
  EXPECT_EQ(u.core, 0.0);
  EXPECT_EQ(u.memory, 0.0);
}

TEST(CpuUtilSampler, WindowedAverage) {
  Platform p;
  CpuUtilSampler sampler(p.cpu(), p.queue());
  CpuWork w;
  w.units = 1.0;
  w.ops_per_unit = p.cpu().spec().throughput(2800_MHz) * 1.0;
  p.cpu().submit(w, {});
  p.queue().run_until(4_s);
  EXPECT_NEAR(sampler.sample(), 0.25, 1e-9);
}

TEST(TraceRecorder, SamplesAtPeriod) {
  Platform p;
  TraceRecorder trace(p, 1_s);
  p.queue().run_until(5.5_s);
  trace.stop();
  ASSERT_EQ(trace.samples().size(), 5u);
  EXPECT_DOUBLE_EQ(trace.samples()[0].time.get(), 1.0);
  EXPECT_DOUBLE_EQ(trace.samples()[4].time.get(), 5.0);
}

TEST(TraceRecorder, RecordsFrequenciesAndPower) {
  Platform p;
  p.gpu().set_core_level(0);
  p.gpu().set_mem_level(0);
  TraceRecorder trace(p, 1_s);
  p.queue().run_until(2_s);
  trace.stop();
  ASSERT_GE(trace.samples().size(), 1u);
  const TraceSample& s = trace.samples()[0];
  EXPECT_DOUBLE_EQ(s.gpu_core_freq.get(), 576.0);
  EXPECT_DOUBLE_EQ(s.gpu_mem_freq.get(), 900.0);
  EXPECT_DOUBLE_EQ(s.cpu_freq.get(), 2800.0);
  EXPECT_NEAR(s.gpu_power.get(), p.gpu().idle_power(0, 0).get(), 1e-9);
}

TEST(TraceRecorder, StopPreventsFurtherSamples) {
  Platform p;
  TraceRecorder trace(p, 1_s);
  p.queue().run_until(2.5_s);
  trace.stop();
  p.queue().run_until(10_s);
  EXPECT_EQ(trace.samples().size(), 2u);
}

TEST(TraceRecorder, CsvOutputHasHeaderAndRows) {
  Platform p;
  TraceRecorder trace(p, 1_s);
  p.queue().run_until(3_s);
  trace.stop();
  std::ostringstream oss;
  trace.write_csv(oss);
  std::istringstream iss(oss.str());
  std::string line;
  std::getline(iss, line);
  EXPECT_NE(line.find("gpu_core_mhz"), std::string::npos);
  int rows = 0;
  while (std::getline(iss, line)) ++rows;
  EXPECT_EQ(rows, 3);
}

}  // namespace
}  // namespace gg::sim
