#include "src/sim/specs.h"

#include <gtest/gtest.h>

namespace gg::sim {
namespace {

using namespace gg::literals;

TEST(GpuSpec, ThroughputFormulas) {
  GpuSpec s;
  // 128 SPs at 576 MHz.
  EXPECT_DOUBLE_EQ(s.core_throughput(576_MHz), 128.0 * 576e6);
  // 96 bytes/clock at 900 MHz = 86.4 GB/s, the 8800 GTX datasheet number.
  EXPECT_DOUBLE_EQ(s.mem_bandwidth(900_MHz), 86.4e9);
}

TEST(GpuSpec, PowerAtFullLoadIsComponentSum) {
  GpuSpec s;
  const double expected = s.p_base.get() + s.p_core_clock.get() + s.p_core_active.get() +
                          s.p_mem_clock.get() + s.p_mem_active.get();
  EXPECT_NEAR(s.power(1.0, 1.0, 1.0, 1.0).get(), expected, 1e-12);
}

TEST(GpuSpec, PowerMonotoneInEveryArgument) {
  GpuSpec s;
  const double base = s.power(0.8, 0.5, 0.8, 0.5).get();
  EXPECT_GT(s.power(0.9, 0.5, 0.8, 0.5).get(), base);
  EXPECT_GT(s.power(0.8, 0.6, 0.8, 0.5).get(), base);
  EXPECT_GT(s.power(0.8, 0.5, 0.9, 0.5).get(), base);
  EXPECT_GT(s.power(0.8, 0.5, 0.8, 0.6).get(), base);
}

TEST(GpuSpec, FullLoadMatchesCardClassTdp) {
  // The modelled card draws ~145 W flat out — 8800 GTX territory.
  GpuSpec s;
  const double full = s.power(1.0, 1.0, 1.0, 1.0).get();
  EXPECT_GT(full, 120.0);
  EXPECT_LT(full, 180.0);
}

TEST(CpuSpec, ThroughputScalesWithCoresAndFrequency) {
  CpuSpec s;
  EXPECT_DOUBLE_EQ(s.throughput(2800_MHz), 2.0 * 3.0 * 2800e6);
  EXPECT_DOUBLE_EQ(s.throughput(1400_MHz), s.throughput(2800_MHz) / 2.0);
}

TEST(CpuSpec, PowerQuadraticInVoltage) {
  CpuSpec s;
  const double hi = s.power(1.0, 1.0, 2.0).get() - s.p_board.get();
  const double half_v = s.power(1.0, 0.5, 2.0).get() - s.p_board.get();
  // static*v^2 + dyn*f*v^2*u: halving V quarters both non-board terms.
  EXPECT_NEAR(half_v, hi / 4.0, 1e-9);
}

TEST(CpuSpec, PowerLinearInUtilization) {
  CpuSpec s;
  const double idle = s.power(1.0, 1.0, 0.0).get();
  const double one = s.power(1.0, 1.0, 1.0).get();
  const double two = s.power(1.0, 1.0, 2.0).get();
  EXPECT_NEAR(two - one, one - idle, 1e-12);
}

TEST(BusSpec, TransferTimeIsLatencyPlusBandwidth) {
  BusSpec bus;
  EXPECT_NEAR(bus.transfer_time(0.0).get(), 15e-6, 1e-15);
  EXPECT_NEAR(bus.transfer_time(3.0e9).get(), 1.0 + 15e-6, 1e-12);
  // Time is additive in bytes beyond the fixed latency.
  const double a = bus.transfer_time(1e6).get();
  const double b = bus.transfer_time(2e6).get();
  EXPECT_NEAR(b - a, 1e6 / bus.bandwidth_bytes_per_s, 1e-15);
}

}  // namespace
}  // namespace gg::sim
