#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/snapshot.h"

namespace gg::sim {
namespace {

using namespace gg::literals;

TEST(EventQueue, StartsAtTimeZeroEmpty) {
  EventQueue q;
  EXPECT_EQ(q.now(), 0_s);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3_s, [&] { order.push_back(3); });
  q.schedule_at(1_s, [&] { order.push_back(1); });
  q.schedule_at(2_s, [&] { order.push_back(2); });
  q.run_until_empty();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 3_s);
}

TEST(EventQueue, SameTimeFifoOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1_s, [&order, i] { order.push_back(i); });
  }
  q.run_until_empty();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  q.schedule_at(2_s, [] {});
  q.run_until(2_s);
  bool fired = false;
  q.schedule_in(3_s, [&] { fired = true; });
  q.run_until(5_s);
  EXPECT_TRUE(fired);
  EXPECT_EQ(q.now(), 5_s);
}

TEST(EventQueue, RunUntilAdvancesClockWithoutEvents) {
  EventQueue q;
  q.run_until(10_s);
  EXPECT_EQ(q.now(), 10_s);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(5_s, [&] { ++fired; });
  q.schedule_at(5.0001_s, [&] { ++fired; });
  q.run_until(5_s);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 5_s);
}

TEST(EventQueue, PastScheduleThrows) {
  EventQueue q;
  q.run_until(5_s);
  EXPECT_THROW(q.schedule_at(4_s, [] {}), std::invalid_argument);
}

TEST(EventQueue, PastRunUntilThrows) {
  EventQueue q;
  q.run_until(5_s);
  EXPECT_THROW(q.run_until(4_s), std::invalid_argument);
}

TEST(EventQueue, EmptyActionThrows) {
  EventQueue q;
  EXPECT_THROW(q.schedule_at(1_s, EventQueue::Action{}), std::invalid_argument);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.schedule_at(1_s, [&] { fired = true; });
  h.cancel();
  q.run_until_empty();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(h.cancelled());
  EXPECT_FALSE(h.fired());
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterFire) {
  EventQueue q;
  EventHandle h = q.schedule_at(1_s, [] {});
  q.run_until_empty();
  EXPECT_TRUE(h.fired());
  h.cancel();  // no-op after firing
  EXPECT_TRUE(h.fired());
}

TEST(EventQueue, DefaultHandleIsInvalid) {
  EventHandle h;
  EXPECT_FALSE(h.valid());
  h.cancel();  // must not crash
}

TEST(EventQueue, PendingCountExcludesCancelled) {
  EventQueue q;
  q.schedule_at(1_s, [] {});
  EventHandle h = q.schedule_at(2_s, [] {});
  EXPECT_EQ(q.pending_count(), 2u);
  h.cancel();
  EXPECT_EQ(q.pending_count(), 1u);
  EXPECT_FALSE(q.empty());
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  std::vector<double> times;
  std::function<void()> chain = [&] {
    times.push_back(q.now().get());
    if (times.size() < 3) q.schedule_in(1_s, chain);
  };
  q.schedule_at(1_s, chain);
  q.run_until_empty();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(EventQueue, EventCanCancelLaterEvent) {
  EventQueue q;
  bool second = false;
  EventHandle h = q.schedule_at(2_s, [&] { second = true; });
  q.schedule_at(1_s, [&] { h.cancel(); });
  q.run_until_empty();
  EXPECT_FALSE(second);
}

TEST(EventQueue, FiredCountCountsOnlyFired) {
  EventQueue q;
  q.schedule_at(1_s, [] {});
  EventHandle h = q.schedule_at(2_s, [] {});
  h.cancel();
  q.run_until_empty();
  EXPECT_EQ(q.fired_count(), 1u);
}

TEST(EventQueue, StepReturnsFalseWhenOnlyCancelled) {
  EventQueue q;
  EventHandle h = q.schedule_at(1_s, [] {});
  h.cancel();
  EXPECT_FALSE(q.step());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CompactionRebuildsWhenCancelledAreTheMajority) {
  EventQueue q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 128; ++i) {
    handles.push_back(q.schedule_at(Seconds{1.0 + i}, [] {}));
  }
  // Cancel a majority, but keep the earliest event live so the lazy
  // pop-from-the-top path cannot shed them one by one.
  for (int i = 1; i <= 70; ++i) handles[static_cast<std::size_t>(i)].cancel();
  EXPECT_EQ(q.queued_count(), 128u);
  EXPECT_EQ(q.pending_count(), 58u);
  EXPECT_EQ(q.compaction_count(), 0u);

  EXPECT_FALSE(q.empty());  // majority cancelled -> one-pass rebuild
  EXPECT_EQ(q.compaction_count(), 1u);
  EXPECT_EQ(q.queued_count(), 58u);
  EXPECT_EQ(q.pending_count(), 58u);

  q.run_until_empty();
  EXPECT_EQ(q.fired_count(), 58u);
}

TEST(EventQueue, SmallQueuesAreNeverCompacted) {
  EventQueue q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 32; ++i) {
    handles.push_back(q.schedule_at(Seconds{1.0 + i}, [] {}));
  }
  for (int i = 1; i <= 20; ++i) handles[static_cast<std::size_t>(i)].cancel();
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.compaction_count(), 0u);  // below the rebuild threshold
  EXPECT_EQ(q.queued_count(), 32u);     // lazy deletion still in place
  q.run_until_empty();
  EXPECT_EQ(q.fired_count(), 12u);
  EXPECT_EQ(q.compaction_count(), 0u);
}

TEST(EventQueue, CompactionPreservesFifoOrderAndOutcomes) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventHandle> cancelled;
  std::vector<EventHandle> live;
  for (int i = 0; i < 100; ++i) {
    // Everything at the same timestamp: FIFO order must survive the rebuild.
    EventHandle h = q.schedule_at(1_s, [&order, i] { order.push_back(i); });
    if (i % 3 != 0) {
      cancelled.push_back(std::move(h));
    } else {
      live.push_back(std::move(h));
    }
  }
  for (auto& h : cancelled) h.cancel();
  q.run_until_empty();
  EXPECT_GE(q.compaction_count(), 1u);
  ASSERT_EQ(order.size(), 34u);
  for (std::size_t i = 1; i < order.size(); ++i) EXPECT_LT(order[i - 1], order[i]);
  for (const auto& h : live) EXPECT_TRUE(h.fired());
  for (const auto& h : cancelled) {
    EXPECT_TRUE(h.cancelled());
    EXPECT_FALSE(h.fired());
  }
}

TEST(EventQueue, HandlesOutliveTheQueue) {
  EventHandle fired, dropped;
  {
    EventQueue q;
    fired = q.schedule_at(1_s, [] {});
    dropped = q.schedule_at(2_s, [] {});
    dropped.cancel();
    q.run_until_empty();
  }
  EXPECT_TRUE(fired.fired());
  EXPECT_FALSE(fired.cancelled());
  EXPECT_TRUE(dropped.cancelled());
  EXPECT_FALSE(dropped.fired());
}

TEST(EventQueue, RetainedHandlesSurviveSlotRecycling) {
  EventQueue q;
  std::vector<EventHandle> kept;
  for (int round = 0; round < 50; ++round) {
    // Most handles are dropped immediately, so their slots recycle across
    // rounds; the kept ones must keep reporting their own outcome.
    for (int i = 0; i < 20; ++i) {
      EventHandle h = q.schedule_in(Seconds{1.0 + i}, [] {});
      if (i == 0) kept.push_back(std::move(h));
    }
    q.run_until_empty();
  }
  ASSERT_EQ(kept.size(), 50u);
  for (const auto& h : kept) {
    EXPECT_TRUE(h.fired());
    EXPECT_FALSE(h.cancelled());
  }
}

TEST(EventQueue, CancelChurnTriggersCompaction) {
  // DVFS-style rescheduling: a standing population is repeatedly cancelled
  // and replaced, so cancelled entries outgrow live ones between compactions.
  EventQueue q;
  constexpr std::size_t kPending = 100;
  std::vector<EventHandle> handles(kPending);
  double base = 1.0;
  for (std::size_t i = 0; i < kPending; ++i) {
    handles[i] = q.schedule_at(Seconds{base + static_cast<double>(i)}, [] {});
  }
  for (int round = 0; round < 8; ++round) {
    base += 1.0;
    for (std::size_t i = 0; i < kPending; ++i) {
      handles[i].cancel();
      handles[i] = q.schedule_at(Seconds{base + static_cast<double>(i)}, [] {});
    }
    EXPECT_EQ(q.pending_count(), kPending);
  }
  q.run_until_empty();
  EXPECT_EQ(q.fired_count(), kPending);
  EXPECT_GE(q.compaction_count(), 1u);
  for (const auto& h : handles) EXPECT_TRUE(h.fired());
}

TEST(EventQueue, MoveOnlyCaptureFires) {
  // unique_ptr capture: inline storage, relocated via move-construction.
  EventQueue q;
  auto value = std::make_unique<int>(42);
  int seen = 0;
  q.schedule_at(1_s, [p = std::move(value), &seen] { seen = *p; });
  q.run_until_empty();
  EXPECT_EQ(seen, 42);
}

TEST(EventQueue, OversizedCaptureFallsBackToHeapBox) {
  // A capture larger than the inline buffer must still work (boxed path).
  EventQueue q;
  struct Big {
    double payload[16];
  };
  Big big{};
  big.payload[0] = 1.5;
  big.payload[15] = 2.5;
  double sum = 0.0;
  q.schedule_at(1_s, [big, &sum] { sum = big.payload[0] + big.payload[15]; });
  q.run_until_empty();
  EXPECT_EQ(sum, 4.0);
}

TEST(EventQueue, ManyEventsStressOrder) {
  EventQueue q;
  std::vector<double> times;
  for (int i = 1000; i >= 1; --i) {
    q.schedule_at(Seconds{static_cast<double>(i)}, [&times, &q] {
      times.push_back(q.now().get());
    });
  }
  q.run_until_empty();
  ASSERT_EQ(times.size(), 1000u);
  for (std::size_t i = 1; i < times.size(); ++i) EXPECT_LT(times[i - 1], times[i]);
}

TEST(EventQueue, SnapshotRoundTripsClockAndCounters) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1_s, [&fired] { ++fired; });
  q.schedule_at(2_s, [&fired] { ++fired; });
  q.run_until(5_s);
  ASSERT_EQ(fired, 2);

  common::SnapshotWriter w;
  q.save(w);

  EventQueue restored;
  common::SnapshotReader r = common::SnapshotReader::from_payload(w.payload());
  restored.load(r);
  EXPECT_EQ(restored.now(), q.now());
  EXPECT_EQ(restored.fired_count(), q.fired_count());
  EXPECT_EQ(restored.compaction_count(), q.compaction_count());
  // The restored clock gates scheduling exactly like the original's.
  EXPECT_THROW(restored.schedule_at(1_s, [] {}), std::invalid_argument);
  bool ran = false;
  restored.schedule_at(6_s, [&ran] { ran = true; });
  restored.run_until(6_s);
  EXPECT_TRUE(ran);
}

TEST(EventQueue, SnapshotLoadRequiresEmptyQueue) {
  EventQueue q;
  q.run_until(3_s);
  common::SnapshotWriter w;
  q.save(w);

  EventQueue busy;
  busy.schedule_at(1_s, [] {});
  common::SnapshotReader r = common::SnapshotReader::from_payload(w.payload());
  EXPECT_THROW(busy.load(r), std::logic_error);
}

}  // namespace
}  // namespace gg::sim
