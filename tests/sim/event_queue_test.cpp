#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace gg::sim {
namespace {

using namespace gg::literals;

TEST(EventQueue, StartsAtTimeZeroEmpty) {
  EventQueue q;
  EXPECT_EQ(q.now(), 0_s);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3_s, [&] { order.push_back(3); });
  q.schedule_at(1_s, [&] { order.push_back(1); });
  q.schedule_at(2_s, [&] { order.push_back(2); });
  q.run_until_empty();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 3_s);
}

TEST(EventQueue, SameTimeFifoOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1_s, [&order, i] { order.push_back(i); });
  }
  q.run_until_empty();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  q.schedule_at(2_s, [] {});
  q.run_until(2_s);
  bool fired = false;
  q.schedule_in(3_s, [&] { fired = true; });
  q.run_until(5_s);
  EXPECT_TRUE(fired);
  EXPECT_EQ(q.now(), 5_s);
}

TEST(EventQueue, RunUntilAdvancesClockWithoutEvents) {
  EventQueue q;
  q.run_until(10_s);
  EXPECT_EQ(q.now(), 10_s);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(5_s, [&] { ++fired; });
  q.schedule_at(5.0001_s, [&] { ++fired; });
  q.run_until(5_s);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 5_s);
}

TEST(EventQueue, PastScheduleThrows) {
  EventQueue q;
  q.run_until(5_s);
  EXPECT_THROW(q.schedule_at(4_s, [] {}), std::invalid_argument);
}

TEST(EventQueue, PastRunUntilThrows) {
  EventQueue q;
  q.run_until(5_s);
  EXPECT_THROW(q.run_until(4_s), std::invalid_argument);
}

TEST(EventQueue, EmptyActionThrows) {
  EventQueue q;
  EXPECT_THROW(q.schedule_at(1_s, EventQueue::Action{}), std::invalid_argument);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.schedule_at(1_s, [&] { fired = true; });
  h.cancel();
  q.run_until_empty();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(h.cancelled());
  EXPECT_FALSE(h.fired());
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterFire) {
  EventQueue q;
  EventHandle h = q.schedule_at(1_s, [] {});
  q.run_until_empty();
  EXPECT_TRUE(h.fired());
  h.cancel();  // no-op after firing
  EXPECT_TRUE(h.fired());
}

TEST(EventQueue, DefaultHandleIsInvalid) {
  EventHandle h;
  EXPECT_FALSE(h.valid());
  h.cancel();  // must not crash
}

TEST(EventQueue, PendingCountExcludesCancelled) {
  EventQueue q;
  q.schedule_at(1_s, [] {});
  EventHandle h = q.schedule_at(2_s, [] {});
  EXPECT_EQ(q.pending_count(), 2u);
  h.cancel();
  EXPECT_EQ(q.pending_count(), 1u);
  EXPECT_FALSE(q.empty());
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  std::vector<double> times;
  std::function<void()> chain = [&] {
    times.push_back(q.now().get());
    if (times.size() < 3) q.schedule_in(1_s, chain);
  };
  q.schedule_at(1_s, chain);
  q.run_until_empty();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(EventQueue, EventCanCancelLaterEvent) {
  EventQueue q;
  bool second = false;
  EventHandle h = q.schedule_at(2_s, [&] { second = true; });
  q.schedule_at(1_s, [&] { h.cancel(); });
  q.run_until_empty();
  EXPECT_FALSE(second);
}

TEST(EventQueue, FiredCountCountsOnlyFired) {
  EventQueue q;
  q.schedule_at(1_s, [] {});
  EventHandle h = q.schedule_at(2_s, [] {});
  h.cancel();
  q.run_until_empty();
  EXPECT_EQ(q.fired_count(), 1u);
}

TEST(EventQueue, StepReturnsFalseWhenOnlyCancelled) {
  EventQueue q;
  EventHandle h = q.schedule_at(1_s, [] {});
  h.cancel();
  EXPECT_FALSE(q.step());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ManyEventsStressOrder) {
  EventQueue q;
  std::vector<double> times;
  for (int i = 1000; i >= 1; --i) {
    q.schedule_at(Seconds{static_cast<double>(i)}, [&times, &q] {
      times.push_back(q.now().get());
    });
  }
  q.run_until_empty();
  ASSERT_EQ(times.size(), 1000u);
  for (std::size_t i = 1; i < times.size(); ++i) EXPECT_LT(times[i - 1], times[i]);
}

}  // namespace
}  // namespace gg::sim
