// Property tests for the CPU device's piecewise execution under randomized
// work and DVFS schedules, against an independent analytic oracle.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/sim/cpu_device.h"

namespace gg::sim {
namespace {

struct LevelChange {
  double time;
  std::size_t level;
};

struct Oracle {
  CpuSpec spec;
  DvfsTable table = phenom2_table();

  [[nodiscard]] double unit_time(const CpuWork& w, std::size_t level) const {
    const double share = (w.active_cores == 0 ? spec.cores : w.active_cores) /
                         static_cast<double>(spec.cores);
    return w.overhead_per_unit.get() +
           w.ops_per_unit / (spec.throughput(table.frequency(level)) * share);
  }

  [[nodiscard]] double completion_time(const CpuWork& w,
                                       const std::vector<LevelChange>& changes) const {
    double done = 0.0;
    double t = 0.0;
    for (std::size_t i = 0; i < changes.size(); ++i) {
      const double ut = unit_time(w, changes[i].level);
      const double segment_end = i + 1 < changes.size() ? changes[i + 1].time : 1e300;
      const double finish = t + (w.units - done) * ut;
      if (finish <= segment_end + 1e-15) return finish;
      done += (segment_end - t) / ut;
      t = segment_end;
    }
    return t;
  }
};

class CpuPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CpuPropertyTest, CompletionMatchesOracleUnderRandomDvfs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 17);
  const Oracle oracle;

  EventQueue queue;
  CpuDevice cpu(queue, CpuSpec{}, phenom2_table(), 0);

  CpuWork w;
  w.units = 10.0 + rng.uniform() * 200.0;
  w.ops_per_unit = rng.uniform(0.0, 1.0) * 1e7;
  w.overhead_per_unit = Seconds{rng.uniform(0.0, 1.0) * 2e-3};
  if (w.ops_per_unit == 0.0 && w.overhead_per_unit == Seconds{0.0}) {
    w.overhead_per_unit = Seconds{1e-3};
  }
  w.active_cores = static_cast<int>(rng.uniform_int(3));  // 0 (=all), 1 or 2

  std::vector<LevelChange> changes{{0.0, 0}};
  const double horizon = oracle.completion_time(w, changes) * 3.0;
  const int n_changes = static_cast<int>(rng.uniform_int(6));
  double t = 0.0;
  for (int i = 0; i < n_changes; ++i) {
    t += rng.uniform() * horizon / 5.0;
    changes.push_back(LevelChange{t, rng.uniform_int(4)});
  }

  double done_at = -1.0;
  cpu.submit(w, [&] { done_at = queue.now().get(); });
  for (std::size_t i = 1; i < changes.size(); ++i) {
    queue.run_until(Seconds{changes[i].time});
    cpu.set_level(changes[i].level);
  }
  queue.run_until_empty();

  const double expected = oracle.completion_time(w, changes);
  EXPECT_NEAR(done_at, expected, 1e-9 * (1.0 + expected));
  EXPECT_EQ(cpu.tasks_completed(), 1u);

  // Utilization integral equals busy time times the core share.
  const double share = (w.active_cores == 0 ? 2 : w.active_cores) / 2.0;
  const CpuActivityCounters c = cpu.counters();
  EXPECT_NEAR(c.util_integral, done_at * share, 1e-9 * (1.0 + done_at));
  EXPECT_NEAR(c.busy_integral, done_at, 1e-9 * (1.0 + done_at));
}

INSTANTIATE_TEST_SUITE_P(RandomSchedules, CpuPropertyTest, ::testing::Range(0, 20));

TEST(CpuPropertyExtra, EnergyDecomposesIntoIdlePlusDynamic) {
  // For any P-state: E(busy T at level L) = idle_power(L)*T + dyn(L)*T.
  Rng rng(5);
  for (int trial = 0; trial < 8; ++trial) {
    EventQueue queue;
    const std::size_t level = rng.uniform_int(4);
    CpuDevice cpu(queue, CpuSpec{}, phenom2_table(), level);
    CpuWork w;
    w.units = 1.0;
    w.overhead_per_unit = Seconds{1.0 + rng.uniform() * 4.0};
    cpu.submit(w, {});
    queue.run_until_empty();
    const double t = queue.now().get();
    const double expected = cpu.power_at(level, 1.0).get() * t;
    EXPECT_NEAR(cpu.energy().get(), expected, 1e-6 * expected);
  }
}

}  // namespace
}  // namespace gg::sim
