#include "src/sim/power_meter.h"

#include <gtest/gtest.h>

namespace gg::sim {
namespace {

using namespace gg::literals;

TEST(EnergyIntegrator, IntegratesConstantPower) {
  EnergyIntegrator e;
  e.advance(2_s, 10_W);
  EXPECT_DOUBLE_EQ(e.energy().get(), 20.0);
}

TEST(EnergyIntegrator, PiecewiseConstant) {
  EnergyIntegrator e;
  e.advance(1_s, 10_W);   // 10 J
  e.advance(3_s, 5_W);    // + 10 J
  e.advance(3_s, 100_W);  // zero-length interval adds nothing
  EXPECT_DOUBLE_EQ(e.energy().get(), 20.0);
  EXPECT_EQ(e.last_time(), 3_s);
}

TEST(EnergyIntegrator, BackwardsTimeThrows) {
  EnergyIntegrator e;
  e.advance(2_s, 1_W);
  EXPECT_THROW(e.advance(1_s, 1_W), std::invalid_argument);
}

TEST(EnergyIntegrator, ResetRebasesTime) {
  EnergyIntegrator e;
  e.advance(2_s, 10_W);
  e.reset(2_s);
  EXPECT_DOUBLE_EQ(e.energy().get(), 0.0);
  e.advance(3_s, 10_W);
  EXPECT_DOUBLE_EQ(e.energy().get(), 10.0);
}

TEST(PowerMeter, EnergyMatchesIntegrator) {
  PowerMeter m;
  m.advance(1.5_s, 10_W);
  m.advance(4_s, 20_W);
  EXPECT_DOUBLE_EQ(m.energy().get(), 15.0 + 50.0);
}

TEST(PowerMeter, EmitsOneSamplePerSecond) {
  PowerMeter m;  // 1 Hz like the Wattsup Pro
  m.advance(3.5_s, 10_W);
  ASSERT_EQ(m.samples().size(), 3u);
  EXPECT_DOUBLE_EQ(m.samples()[0].time.get(), 1.0);
  EXPECT_DOUBLE_EQ(m.samples()[2].time.get(), 3.0);
  for (const auto& s : m.samples()) EXPECT_DOUBLE_EQ(s.average_power.get(), 10.0);
}

TEST(PowerMeter, SampleAveragesAcrossPowerChange) {
  PowerMeter m;
  m.advance(0.5_s, 10_W);  // first half of window 1
  m.advance(1_s, 30_W);    // second half
  ASSERT_EQ(m.samples().size(), 1u);
  EXPECT_DOUBLE_EQ(m.samples()[0].average_power.get(), 20.0);
}

TEST(PowerMeter, SamplesSplitLongInterval) {
  PowerMeter m;
  m.advance(10_s, 7_W);
  ASSERT_EQ(m.samples().size(), 10u);
  for (const auto& s : m.samples()) EXPECT_DOUBLE_EQ(s.average_power.get(), 7.0);
}

TEST(PowerMeter, CustomInterval) {
  PowerMeter m(0.5_s);
  m.advance(1_s, 4_W);
  ASSERT_EQ(m.samples().size(), 2u);
  EXPECT_DOUBLE_EQ(m.samples()[0].time.get(), 0.5);
}

TEST(PowerMeter, ResetClearsSamplesAndEnergy) {
  PowerMeter m;
  m.advance(2_s, 5_W);
  m.reset(2_s);
  EXPECT_DOUBLE_EQ(m.energy().get(), 0.0);
  EXPECT_TRUE(m.samples().empty());
  m.advance(3_s, 5_W);
  ASSERT_EQ(m.samples().size(), 1u);
  EXPECT_DOUBLE_EQ(m.samples()[0].time.get(), 3.0);
}

TEST(PowerMeter, PartialWindowNotEmitted) {
  PowerMeter m;
  m.advance(0.9_s, 10_W);
  EXPECT_TRUE(m.samples().empty());
  EXPECT_DOUBLE_EQ(m.energy().get(), 9.0);
}

}  // namespace
}  // namespace gg::sim
