#include "src/sim/copy_engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/snapshot.h"
#include "src/sim/platform.h"

namespace gg::sim {
namespace {

using namespace gg::literals;

class CopyEngineTest : public ::testing::Test {
 protected:
  /// Frequency-independent kernel: duration = units x overhead, so the
  /// platform's starting DVFS levels never matter.
  [[nodiscard]] static KernelWork kernel_of(double seconds) {
    KernelWork w;
    w.units = 1.0;
    w.overhead_per_unit = Seconds{seconds};
    return w;
  }

  [[nodiscard]] double transfer_seconds(double bytes) const {
    return platform_.bus().transfer_time(bytes).get();
  }

  Platform platform_;
  CopyEngine& ce_{platform_.copy_engine()};
  EventQueue& q_{platform_.queue()};
};

TEST_F(CopyEngineTest, TransferCompletesAtBusModelTime) {
  const double bytes = 3.0e9;  // 1 s at the default 3 GB/s + 15 us latency
  Seconds done{-1.0};
  ce_.submit(bytes, [&] { done = q_.now(); });
  EXPECT_TRUE(ce_.busy());
  q_.run_until(10_s);
  EXPECT_FALSE(ce_.busy());
  EXPECT_NEAR(done.get(), transfer_seconds(bytes), 1e-12);
}

TEST_F(CopyEngineTest, NegativeBytesRejected) {
  EXPECT_THROW(ce_.submit(-1.0, {}), std::invalid_argument);
}

TEST_F(CopyEngineTest, FifoOrderAndBackToBackTiming) {
  // Three transfers submitted together drain strictly in order, each
  // starting the instant its predecessor finishes.
  const double sizes[] = {3.0e9, 1.5e9, 6.0e8};
  std::vector<int> order;
  std::vector<double> when;
  for (int i = 0; i < 3; ++i) {
    ce_.submit(sizes[i], [&, i] {
      order.push_back(i);
      when.push_back(q_.now().get());
    });
  }
  EXPECT_EQ(ce_.queued(), 2u);  // two waiting behind the active transfer
  q_.run_until(10_s);
  ASSERT_EQ(order, (std::vector<int>{0, 1, 2}));
  double expected = 0.0;
  for (int i = 0; i < 3; ++i) {
    expected += transfer_seconds(sizes[i]);
    EXPECT_NEAR(when[static_cast<std::size_t>(i)], expected, 1e-12) << "transfer " << i;
  }
  const CopyEngineCounters c = ce_.counters();
  EXPECT_EQ(c.transfers_completed, 3u);
  EXPECT_DOUBLE_EQ(c.bytes_moved, sizes[0] + sizes[1] + sizes[2]);
  EXPECT_EQ(c.peak_queue_depth, 3u);
  EXPECT_NEAR(c.busy_integral, expected, 1e-12);
}

TEST_F(CopyEngineTest, OverlapIntegralCountsOnlyConcurrentKernelTime) {
  // Copy (≈0.5 s) entirely inside a 1 s kernel: overlap == copy busy time.
  const double bytes = 1.5e9;
  platform_.gpu().submit(kernel_of(1.0), {});
  ce_.submit(bytes, {});
  q_.run_until(10_s);
  CopyEngineCounters c = ce_.counters();
  const double tt = transfer_seconds(bytes);
  EXPECT_NEAR(c.busy_integral, tt, 1e-12);
  EXPECT_NEAR(c.overlap_integral, tt, 1e-12);

  // A second copy against an idle GPU adds busy time but no overlap.
  ce_.submit(bytes, {});
  q_.run_until(20_s);
  c = ce_.counters();
  EXPECT_NEAR(c.busy_integral, 2.0 * tt, 1e-12);
  EXPECT_NEAR(c.overlap_integral, tt, 1e-12);
}

TEST_F(CopyEngineTest, PartialOverlapIsClippedToKernelWindow) {
  // Kernel 0.3 s, copy ≈1 s, both issued at t=0: only the first 0.3 s of
  // the transfer overlaps.
  const double bytes = 3.0e9;
  platform_.gpu().submit(kernel_of(0.3), {});
  ce_.submit(bytes, {});
  q_.run_until(10_s);
  const CopyEngineCounters c = ce_.counters();
  EXPECT_NEAR(c.busy_integral, transfer_seconds(bytes), 1e-12);
  EXPECT_NEAR(c.overlap_integral, 0.3, 1e-12);
}

TEST_F(CopyEngineTest, SnapshotRoundTripsCounters) {
  ce_.submit(1.5e9, {});
  platform_.gpu().submit(kernel_of(0.2), {});
  q_.run_until(10_s);
  const CopyEngineCounters before = ce_.counters();

  common::SnapshotWriter w;
  ce_.save(w);

  Platform other;
  other.queue().run_until(platform_.now());
  common::SnapshotReader r = common::SnapshotReader::from_payload(w.payload());
  other.copy_engine().load(r);
  const CopyEngineCounters after = other.copy_engine().counters();
  EXPECT_DOUBLE_EQ(after.busy_integral, before.busy_integral);
  EXPECT_DOUBLE_EQ(after.overlap_integral, before.overlap_integral);
  EXPECT_DOUBLE_EQ(after.bytes_moved, before.bytes_moved);
  EXPECT_EQ(after.transfers_completed, before.transfers_completed);
  EXPECT_EQ(after.peak_queue_depth, before.peak_queue_depth);
}

TEST_F(CopyEngineTest, SnapshotRequiresQuiescence) {
  ce_.submit(1.5e9, {});
  common::SnapshotWriter w;
  EXPECT_THROW(ce_.save(w), common::SnapshotError);
  q_.run_until(10_s);
  EXPECT_NO_THROW(ce_.save(w));
}

}  // namespace
}  // namespace gg::sim
