#include "src/sim/dvfs.h"

#include <gtest/gtest.h>

namespace gg::sim {
namespace {

using namespace gg::literals;

TEST(DvfsTable, RejectsEmpty) {
  EXPECT_THROW(DvfsTable({}), std::invalid_argument);
}

TEST(DvfsTable, RejectsNonDescending) {
  EXPECT_THROW(DvfsTable({{500_MHz, 1.0}, {600_MHz, 1.0}}), std::invalid_argument);
  EXPECT_THROW(DvfsTable({{500_MHz, 1.0}, {500_MHz, 1.0}}), std::invalid_argument);
}

TEST(DvfsTable, RejectsNonPositive) {
  EXPECT_THROW(DvfsTable({{0_MHz, 1.0}}), std::invalid_argument);
  EXPECT_THROW(DvfsTable({{500_MHz, 0.0}}), std::invalid_argument);
}

TEST(DvfsTable, PeakFloorAndLevels) {
  const DvfsTable t = geforce8800_memory_table();
  EXPECT_EQ(t.levels(), 6u);
  EXPECT_EQ(t.peak(), 900_MHz);
  EXPECT_EQ(t.floor(), 500_MHz);
  EXPECT_EQ(t.lowest_level(), 5u);
}

TEST(DvfsTable, PaperMemoryLevels) {
  // Section VI quotes these exactly.
  const DvfsTable t = geforce8800_memory_table();
  const double expected[] = {900, 820, 740, 660, 580, 500};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(t.frequency(i).get(), expected[i]);
  }
}

TEST(DvfsTable, CoreTableIncludes410Knee) {
  // Section III-A cites 410 MHz as the streamcluster knee.
  const DvfsTable t = geforce8800_core_table();
  EXPECT_EQ(t.levels(), 6u);
  EXPECT_EQ(t.peak(), 576_MHz);
  EXPECT_DOUBLE_EQ(t.frequency(3).get(), 410.0);
}

TEST(DvfsTable, Phenom2Levels) {
  // Section VI: 2.8 GHz, 2.1 GHz, 1.3 GHz, 800 MHz.
  const DvfsTable t = phenom2_table();
  ASSERT_EQ(t.levels(), 4u);
  EXPECT_DOUBLE_EQ(t.frequency(0).get(), 2800.0);
  EXPECT_DOUBLE_EQ(t.frequency(3).get(), 800.0);
  // Voltage scales down with frequency (true DVFS).
  EXPECT_GT(t.voltage(0), t.voltage(3));
}

TEST(DvfsTable, LevelOutOfRangeThrows) {
  const DvfsTable t = phenom2_table();
  EXPECT_THROW(t.point(4), std::out_of_range);
}

TEST(DvfsTable, NearestLevel) {
  const DvfsTable t = geforce8800_memory_table();
  EXPECT_EQ(t.nearest_level(900_MHz), 0u);
  EXPECT_EQ(t.nearest_level(810_MHz), 1u);
  EXPECT_EQ(t.nearest_level(100_MHz), 5u);
  EXPECT_EQ(t.nearest_level(2000_MHz), 0u);
}

TEST(DvfsTable, RangeFractionEndpoints) {
  const DvfsTable t = geforce8800_memory_table();
  EXPECT_DOUBLE_EQ(t.range_fraction(0), 1.0);
  EXPECT_DOUBLE_EQ(t.range_fraction(t.lowest_level()), 0.0);
}

TEST(DvfsTable, RangeFractionLinearInFrequency) {
  const DvfsTable t = geforce8800_memory_table();
  // 820 is 320/400 of the way from 500 to 900.
  EXPECT_NEAR(t.range_fraction(1), 0.8, 1e-12);
  EXPECT_NEAR(t.range_fraction(2), 0.6, 1e-12);
}

TEST(DvfsTable, SingleLevelRangeFractionIsOne) {
  const DvfsTable t({{500_MHz, 1.0}});
  EXPECT_DOUBLE_EQ(t.range_fraction(0), 1.0);
}

TEST(FreqDomain, InitialLevelRespected) {
  FreqDomain d("x", geforce8800_memory_table(), 2);
  EXPECT_EQ(d.level(), 2u);
  EXPECT_EQ(d.frequency(), 740_MHz);
}

TEST(FreqDomain, BadInitialLevelThrows) {
  EXPECT_THROW(FreqDomain("x", phenom2_table(), 4), std::out_of_range);
}

TEST(FreqDomain, SetLevelTracksTransitions) {
  FreqDomain d("x", phenom2_table(), 0);
  EXPECT_FALSE(d.set_level(0));  // same level: no transition
  EXPECT_EQ(d.transitions(), 0u);
  EXPECT_TRUE(d.set_level(2));
  EXPECT_TRUE(d.set_level(1));
  EXPECT_EQ(d.transitions(), 2u);
  EXPECT_THROW(d.set_level(9), std::out_of_range);
}

}  // namespace
}  // namespace gg::sim
