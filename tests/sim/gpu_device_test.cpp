#include "src/sim/gpu_device.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gg::sim {
namespace {

using namespace gg::literals;

class GpuDeviceTest : public ::testing::Test {
 protected:
  GpuDeviceTest()
      : gpu_(queue_, GpuSpec{}, geforce8800_core_table(), geforce8800_memory_table(),
             /*core=*/0, /*mem=*/0) {}

  /// Work with the given peak-clock utilization targets and unit time.
  [[nodiscard]] KernelWork work_for(double uc, double um, double unit_s,
                                    double units) const {
    const GpuSpec& s = gpu_.spec();
    KernelWork w;
    w.units = units;
    w.core_cycles_per_unit = uc * unit_s * s.core_throughput(576_MHz);
    w.mem_bytes_per_unit = um * unit_s * s.mem_bandwidth(900_MHz);
    w.overhead_per_unit = Seconds{unit_s};
    return w;
  }

  EventQueue queue_;
  GpuDevice gpu_;
};

TEST_F(GpuDeviceTest, RejectsInvalidWork) {
  KernelWork w;  // zero everything
  EXPECT_THROW(gpu_.submit(w, {}), std::invalid_argument);
  w.units = 0.0;
  w.overhead_per_unit = 1_ms;
  EXPECT_THROW(gpu_.submit(w, {}), std::invalid_argument);
  w.units = 1.0;
  w.core_cycles_per_unit = -1.0;
  EXPECT_THROW(gpu_.submit(w, {}), std::invalid_argument);
}

TEST_F(GpuDeviceTest, PredictDurationAtPeakEqualsUnitTimeTimesUnits) {
  const KernelWork w = work_for(0.5, 0.3, 1e-3, 100.0);
  EXPECT_NEAR(gpu_.predict_duration(w).get(), 0.1, 1e-12);
}

TEST_F(GpuDeviceTest, PureCoreWorkDurationScalesWithCoreFrequency) {
  KernelWork w;
  w.units = 10.0;
  w.core_cycles_per_unit = gpu_.spec().core_throughput(576_MHz) * 0.01;  // 10ms/unit
  const double at_peak = gpu_.predict_duration(w).get();
  EXPECT_NEAR(at_peak, 0.1, 1e-12);
  gpu_.set_core_level(5);  // 300 MHz
  EXPECT_NEAR(gpu_.predict_duration(w).get(), at_peak * 576.0 / 300.0, 1e-9);
}

TEST_F(GpuDeviceTest, CompletionCallbackFiresAtExactTime) {
  const KernelWork w = work_for(0.6, 0.2, 1e-3, 50.0);
  double done_at = -1.0;
  gpu_.submit(w, [&] { done_at = queue_.now().get(); });
  EXPECT_TRUE(gpu_.busy());
  queue_.run_until_empty();
  EXPECT_NEAR(done_at, 0.05, 1e-9);
  EXPECT_FALSE(gpu_.busy());
  EXPECT_EQ(gpu_.kernels_completed(), 1u);
}

TEST_F(GpuDeviceTest, UtilizationsMatchTargetsAtPeak) {
  const KernelWork w = work_for(0.6, 0.2, 1e-3, 1000.0);
  gpu_.submit(w, {});
  EXPECT_NEAR(gpu_.core_utilization_now(), 0.6, 1e-12);
  EXPECT_NEAR(gpu_.mem_utilization_now(), 0.2, 1e-12);
  queue_.run_until_empty();
  EXPECT_EQ(gpu_.core_utilization_now(), 0.0);
  EXPECT_EQ(gpu_.mem_utilization_now(), 0.0);
}

TEST_F(GpuDeviceTest, ThrottlingWithinSlackIsFree) {
  // 50 % core utilization: dropping core clock to 66 % of peak must not
  // extend execution (the paper's observation 1).
  const KernelWork w = work_for(0.5, 0.2, 1e-3, 100.0);
  const double at_peak = gpu_.predict_duration(w).get();
  gpu_.set_core_level(2);  // 466 MHz ~ 0.81 of peak; slack bound is 0.5
  EXPECT_NEAR(gpu_.predict_duration(w).get(), at_peak, 1e-12);
  // Utilization rises to compensate.
  gpu_.submit(w, {});
  EXPECT_NEAR(gpu_.core_utilization_now(), 0.5 * 576.0 / 466.0, 1e-9);
  queue_.run_until_empty();
}

TEST_F(GpuDeviceTest, ThrottlingPastSlackStretchesExecution) {
  const KernelWork w = work_for(0.8, 0.2, 1e-3, 100.0);
  const double at_peak = gpu_.predict_duration(w).get();
  gpu_.set_core_level(5);  // 300 MHz: core stream needs 0.8*576/300 = 1.536x
  EXPECT_NEAR(gpu_.predict_duration(w).get(), at_peak * 0.8 * 576.0 / 300.0, 1e-9);
}

TEST_F(GpuDeviceTest, MemoryThrottleKneeMatchesUtilization) {
  // u_mem = 0.7 at 900 MHz: free down to 0.7*900 = 630 MHz, so 660 is free
  // and 580 is not — the Fig. 1 knee structure.
  const KernelWork w = work_for(0.3, 0.7, 1e-3, 10.0);
  const double at_peak = gpu_.predict_duration(w).get();
  gpu_.set_mem_level(3);  // 660 MHz
  EXPECT_NEAR(gpu_.predict_duration(w).get(), at_peak, 1e-12);
  gpu_.set_mem_level(4);  // 580 MHz < 630: now memory-bound
  EXPECT_NEAR(gpu_.predict_duration(w).get(), at_peak * 0.7 * 900.0 / 580.0, 1e-9);
}

TEST_F(GpuDeviceTest, MidKernelFrequencyChangeIsPiecewiseExact) {
  // Pure core kernel, 1 s at peak.  Run half at peak, then halve throughput:
  // completion must land at 0.5 + 0.5 * (576/300) s... computed piecewise.
  KernelWork w;
  w.units = 1.0;
  w.core_cycles_per_unit = gpu_.spec().core_throughput(576_MHz) * 1.0;
  double done_at = -1.0;
  gpu_.submit(w, [&] { done_at = queue_.now().get(); });
  queue_.run_until(0.5_s);
  gpu_.set_core_level(5);  // 300 MHz
  queue_.run_until_empty();
  EXPECT_NEAR(done_at, 0.5 + 0.5 * 576.0 / 300.0, 1e-9);
}

TEST_F(GpuDeviceTest, FifoOrderingOfKernels) {
  std::vector<int> order;
  const KernelWork w = work_for(0.5, 0.5, 1e-3, 10.0);
  gpu_.submit(w, [&] { order.push_back(1); });
  gpu_.submit(w, [&] { order.push_back(2); });
  EXPECT_EQ(gpu_.queued(), 1u);
  queue_.run_until_empty();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(gpu_.kernels_completed(), 2u);
}

TEST_F(GpuDeviceTest, CallbackCanSubmitNextKernel) {
  const KernelWork w = work_for(0.5, 0.5, 1e-3, 10.0);
  int completions = 0;
  gpu_.submit(w, [&] {
    ++completions;
    gpu_.submit(w, [&] { ++completions; });
  });
  queue_.run_until_empty();
  EXPECT_EQ(completions, 2);
}

TEST_F(GpuDeviceTest, CountersIntegrateUtilization) {
  const KernelWork w = work_for(0.6, 0.2, 1e-3, 100.0);  // 0.1 s busy
  gpu_.submit(w, {});
  queue_.run_until_empty();
  queue_.run_until(1_s);  // idle afterwards
  const GpuActivityCounters c = gpu_.counters();
  EXPECT_NEAR(c.busy_integral, 0.1, 1e-9);
  EXPECT_NEAR(c.core_util_integral, 0.06, 1e-9);
  EXPECT_NEAR(c.mem_util_integral, 0.02, 1e-9);
}

TEST_F(GpuDeviceTest, IdleEnergyMatchesIdlePowerFormula) {
  queue_.run_until(10_s);
  const Watts idle = gpu_.idle_power(0, 0);
  EXPECT_NEAR(gpu_.energy().get(), idle.get() * 10.0, 1e-9);
}

TEST_F(GpuDeviceTest, IdlePowerLowerAtLowerClocks) {
  const Watts peak_idle = gpu_.idle_power(0, 0);
  const Watts low_idle = gpu_.idle_power(5, 5);
  EXPECT_LT(low_idle, peak_idle);
  // Explicit formula: base + core_clock*f' + mem_clock*f'.
  const GpuSpec& s = gpu_.spec();
  EXPECT_NEAR(peak_idle.get(), s.p_base.get() + s.p_core_clock.get() + s.p_mem_clock.get(),
              1e-12);
}

TEST_F(GpuDeviceTest, BusyPowerAddsActivityTerms) {
  const KernelWork w = work_for(1.0, 1.0, 1e-3, 1000.0);
  gpu_.submit(w, {});
  const GpuSpec& s = gpu_.spec();
  const double expected = s.p_base.get() + s.p_core_clock.get() + s.p_core_active.get() +
                          s.p_mem_clock.get() + s.p_mem_active.get();
  EXPECT_NEAR(gpu_.power_now().get(), expected, 1e-9);
}

TEST_F(GpuDeviceTest, EnergyOfKnownRunMatchesHandComputation) {
  // 0.1 s busy at full utilization and peak clocks, then 0.9 s idle.
  const KernelWork w = work_for(1.0, 1.0, 1e-3, 100.0);
  gpu_.submit(w, {});
  queue_.run_until(1_s);
  const GpuSpec& s = gpu_.spec();
  const double busy_p = s.p_base.get() + s.p_core_clock.get() + s.p_core_active.get() +
                        s.p_mem_clock.get() + s.p_mem_active.get();
  const double idle_p = gpu_.idle_power(0, 0).get();
  EXPECT_NEAR(gpu_.energy().get(), busy_p * 0.1 + idle_p * 0.9, 1e-6);
}

TEST_F(GpuDeviceTest, TestbedDefaultStartsAtLowestClocks) {
  EventQueue q;
  GpuDevice gpu = GpuDevice::testbed_default(q);
  EXPECT_EQ(gpu.core_level(), gpu.core_table().lowest_level());
  EXPECT_EQ(gpu.mem_level(), gpu.mem_table().lowest_level());
}

TEST_F(GpuDeviceTest, FrequencyTransitionCount) {
  EXPECT_EQ(gpu_.frequency_transitions(), 0u);
  gpu_.set_core_level(1);
  gpu_.set_core_level(1);  // no change
  gpu_.set_mem_level(2);
  EXPECT_EQ(gpu_.frequency_transitions(), 2u);
}

}  // namespace
}  // namespace gg::sim
