#!/usr/bin/env python3
"""Tests for tools/gg_analyze.py (and the shared gglint package).

Seven halves of the contract:
  1. Taint fixtures — every interprocedural fixture under
     tests/tools/fixtures/ matches its golden under tests/tools/expected/
     byte-for-byte (chains, source sites, order), with the right exit code.
  2. Schema fixture trees — schema_clean passes the gate; schema_add (field
     added, version unbumped) and schema_reorder (typed fields swapped,
     version unbumped) fail with schema-drift, byte-exact.
  3. Bumped-version path — bumping kSnapshotVersion over a drifted tree
     downgrades schema-drift to schema-lock-stale (regenerate, don't block).
  4. Real tree — gg-analyze runs clean (every suppression carries a reason).
  5. Lock determinism — regenerating docs/snapshot_schema.lock into a temp
     file reproduces the committed bytes exactly.
  6. Suppression inventory — `--list-suppressions` matches the table
     committed between the GG_SUPPRESSIONS markers in
     docs/STATIC_ANALYSIS.md.
  7. JSON output — both gg-analyze and greengpu-lint emit parseable,
     stable-key-order JSON with counts that agree with the text mode.

Run directly or through ctest: python3 tests/tools/analyze_test.py --root <repo>
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
import tempfile

TAINT_FIXTURES = ["bad_transitive_alloc", "bad_fnptr_alloc",
                  "bad_overload_alloc", "bad_batch_transitive",
                  "bad_transitive_report", "bad_sync_transitive",
                  "clean_scanner_edges"]
SCHEMA_TREES = ["schema_clean", "schema_add", "schema_reorder"]

BEGIN_MARK = "<!-- BEGIN GG_SUPPRESSIONS (gg_analyze.py --list-suppressions) -->"
END_MARK = "<!-- END GG_SUPPRESSIONS -->"


def run_tool(root, tool, args):
    path = os.path.join(root, "tools", tool)
    return subprocess.run(
        [sys.executable, path, *args], capture_output=True, text=True)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--root",
        default=os.path.join(os.path.dirname(__file__), "..", ".."))
    root = os.path.abspath(parser.parse_args().root)
    failures = []

    def check(cond, label, detail=""):
        if not cond:
            failures.append(f"{label}\n{detail}" if detail else label)

    # 1. Taint fixtures against goldens.
    for name in TAINT_FIXTURES:
        fixture = os.path.join(root, "tests", "tools", "fixtures",
                               name + ".cpp")
        with open(os.path.join(root, "tests", "tools", "expected",
                               name + ".txt"), encoding="utf-8") as f:
            golden = f.read()
        result = run_tool(root, "gg_analyze.py", ["--root", root, fixture])
        expected_code = 1 if golden else 0
        check(result.returncode == expected_code,
              f"{name}: exit {result.returncode}, expected {expected_code}",
              result.stderr)
        check(result.stdout == golden, f"{name}: diagnostic mismatch",
              f"--- expected ---\n{golden}--- actual ---\n{result.stdout}")

    # 2. Schema fixture trees against goldens.
    for name in SCHEMA_TREES:
        tree = os.path.join(root, "tests", "tools", "fixtures", name)
        with open(os.path.join(root, "tests", "tools", "expected",
                               name + ".txt"), encoding="utf-8") as f:
            golden = f.read()
        result = run_tool(root, "gg_analyze.py", ["--root", tree])
        expected_code = 1 if golden else 0
        check(result.returncode == expected_code,
              f"{name}: exit {result.returncode}, expected {expected_code}",
              result.stderr)
        check(result.stdout == golden, f"{name}: diagnostic mismatch",
              f"--- expected ---\n{golden}--- actual ---\n{result.stdout}")

    # 3. Bump the version over the drifted tree: drift downgrades to stale.
    with tempfile.TemporaryDirectory() as tmp:
        tree = os.path.join(tmp, "schema_add")
        shutil.copytree(
            os.path.join(root, "tests", "tools", "fixtures", "schema_add"),
            tree)
        header = os.path.join(tree, "src", "common", "snapshot.h")
        with open(header, encoding="utf-8") as f:
            text = f.read()
        with open(header, "w", encoding="utf-8") as f:
            f.write(text.replace("kSnapshotVersion = 3", "kSnapshotVersion = 4"))
        result = run_tool(root, "gg_analyze.py", ["--root", tree])
        check(result.returncode == 1,
              f"bumped drift tree: exit {result.returncode}, expected 1")
        check("[schema-lock-stale]" in result.stdout
              and "[schema-drift]" not in result.stdout,
              "bumped drift tree: expected schema-lock-stale, not schema-drift",
              result.stdout)

    # 4. The real tree analyzes clean.
    result = run_tool(root, "gg_analyze.py", ["--root", root])
    check(result.returncode == 0 and not result.stdout,
          f"real tree not clean (exit {result.returncode})",
          result.stdout + result.stderr)

    # 5. Lock regeneration is bit-identical to the committed lock.
    committed = os.path.join(root, "docs", "snapshot_schema.lock")
    with open(committed, "rb") as f:
        committed_bytes = f.read()
    with tempfile.TemporaryDirectory() as tmp:
        regen = os.path.join(tmp, "snapshot_schema.lock")
        result = run_tool(root, "gg_analyze.py",
                          ["--root", root, "--write-lock", "--lock", regen])
        check(result.returncode == 0, "write-lock failed", result.stderr)
        with open(regen, "rb") as f:
            regen_bytes = f.read()
        check(regen_bytes == committed_bytes,
              "docs/snapshot_schema.lock does not regenerate bit-identically "
              "— rerun `python3 tools/gg_analyze.py --write-lock` and commit")

    # 6. Suppression inventory in docs/STATIC_ANALYSIS.md is in sync.
    result = run_tool(root, "gg_analyze.py",
                      ["--root", root, "--list-suppressions"])
    check(result.returncode == 0, "list-suppressions failed", result.stderr)
    with open(os.path.join(root, "docs", "STATIC_ANALYSIS.md"),
              encoding="utf-8") as f:
        doc = f.read()
    m = re.search(re.escape(BEGIN_MARK) + r"\n(.*?)" + re.escape(END_MARK),
                  doc, re.DOTALL)
    check(m is not None, "GG_SUPPRESSIONS markers missing from "
                         "docs/STATIC_ANALYSIS.md")
    if m is not None:
        check(m.group(1) == result.stdout,
              "suppression inventory out of sync — paste the output of "
              "`python3 tools/gg_analyze.py --list-suppressions` between the "
              "GG_SUPPRESSIONS markers in docs/STATIC_ANALYSIS.md",
              f"--- doc ---\n{m.group(1)}--- tool ---\n{result.stdout}")
    check("(MISSING REASON)" not in result.stdout,
          "suppression without a reason in the tree", result.stdout)

    # 7. JSON output: parseable, stable key order, counts agree with text.
    fixture = os.path.join(root, "tests", "tools", "fixtures",
                           "bad_transitive_alloc.cpp")
    for tool in ("gg_analyze.py", "greengpu_lint.py"):
        result = run_tool(root, tool,
                          ["--root", root, "--format", "json", fixture])
        try:
            doc = json.loads(result.stdout)
        except json.JSONDecodeError as err:
            check(False, f"{tool} --format json not parseable: {err}",
                  result.stdout)
            continue
        check(doc["count"] == len(doc["diagnostics"]),
              f"{tool}: count disagrees with diagnostics list")
        check(doc["count"] == sum(doc["rule_counts"].values()),
              f"{tool}: rule_counts disagree with count")
        stable = json.dumps(doc, indent=2, sort_keys=True) + "\n"
        check(result.stdout == stable, f"{tool}: JSON key order not stable")

    if failures:
        print(f"analyze_test: {len(failures)} failure(s)", file=sys.stderr)
        for f in failures:
            print(f, file=sys.stderr)
        return 1
    print(f"analyze_test: {len(TAINT_FIXTURES)} taint fixtures + "
          f"{len(SCHEMA_TREES)} schema trees + lock/inventory/json OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
