// Scanner edge-case fixture: everything here is CLEAN for both greengpu-lint
// and gg-analyze.  Raw string literals whose contents look like allocations
// (new, malloc(, push_back() — plus quotes, braces and parens that would
// desynchronize a naive scanner), allocations mentioned only in comments,
// digit separators, and a GG_HOT function built on all of it.
#include <cstddef>

#define GG_HOT

namespace fx {

// new int[8] and malloc(64) in a comment are not allocations.
/* neither is push_back(v) in a block comment,
   nor std::make_unique<int>() spanning lines. */

const char* kDoc = R"gg(
  This raw string mentions new Foo(), malloc(128), v.push_back(x) and
  std::to_string(7).  It also nests "quotes", unbalanced braces {{{ and
  parens ((( that must not confuse brace matching.
)gg";

const char* kPlain = "string with new and malloc( inside";  // not code

constexpr std::size_t kBig = 1'000'000;  // digit separators, not a char

int helper_math(int v) {
  return v + static_cast<int>(kBig % 7);
}

GG_HOT int hot_clean(int v) {
  // `new` below is inside a raw string operand, not an expression.
  const char* tag = R"(operator new lives here, inert)";
  (void)tag;
  (void)kDoc;
  (void)kPlain;
  return helper_math(v);  // clean chain
}

}  // namespace fx
