// Lint fixture: raw socket syscalls in the service layer must live inside
// GG_NONBLOCK_IO-annotated helper bodies.  The file name marks this as
// service code; a bare ::write/::read/::send/::recv outside an annotated
// body fires, the annotated helper is sanctioned, and qualified names like
// ServiceJournal::read() never match the global-scope syscall form.
#include <cstddef>

using ssize_t = long;
extern "C" ssize_t write(int, const void*, std::size_t);
extern "C" ssize_t read(int, void*, std::size_t);
extern "C" ssize_t send(int, const void*, std::size_t, int);

#define GG_NONBLOCK_IO

struct ServiceJournal {
  static int read(const char* path);
};

void reply_blocking(int fd, const char* data, std::size_t size) {
  (void)::write(fd, data, size);  // violation: blocks the poll thread
}

void drain_blocking(int fd, char* buf, std::size_t size) {
  (void)::read(fd, buf, size);     // violation
  (void)::send(fd, buf, size, 0);  // violation
}

GG_NONBLOCK_IO ssize_t write_some(int fd, const char* data, std::size_t size) {
  return ::write(fd, data, size);  // sanctioned: annotated helper body
}

int load_journal() {
  return ServiceJournal::read("gg.journal");  // qualified name, not a syscall
}
