// Lint fixture: a fully clean file — the linter must stay silent and exit 0.
#include <fstream>
#include <map>
#include <string>
#include <vector>

#define GG_HOT

struct Accumulator {
  double total{0.0};

  GG_HOT void add(double v) { total += v; }
};

double sum_sorted(const std::map<std::string, double>& cells) {
  double total = 0.0;
  for (const auto& kv : cells) total += kv.second;  // ordered: fine anywhere
  return total;
}

void write_report(const std::string& path, double total) {
  // An ordinary report file: plain ofstream is fine here.
  std::ofstream out(path);
  out << total << "\n";
}
