// Lint fixture: checkpoint/snapshot state must reach disk through the
// atomic write-rename helper (SnapshotWriter::write_atomic); a direct
// ofstream can be torn by a crash.  The file name marks this as checkpoint
// infrastructure, so every unsuppressed ofstream construction fires.
#include <fstream>
#include <string>

void write_snapshot_bad(const std::string& dir) {
  std::ofstream out(dir + "/state.ggsn", std::ios::binary);  // violation
  out << "weights";
}

void append_journal_bad(const std::string& journal_path) {
  std::ofstream out(journal_path, std::ios::app);  // violation
  out << "record";
}

void write_snapshot_suppressed(const std::string& dir) {
  // GG_LINT_ALLOW(checkpoint-write): fixture proves reasoned suppressions hold
  std::ofstream out(dir + "/state.ggsn", std::ios::binary);
  out << "weights";
}

void write_snapshot_bare_suppression(const std::string& dir) {
  // GG_LINT_ALLOW(checkpoint-write)
  std::ofstream out(dir + "/state.ggsn", std::ios::binary);
  out << "weights";
}
