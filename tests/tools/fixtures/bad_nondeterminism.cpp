// Lint fixture: every sanctioned-clock/randomness rule must fire here.
// This file is never compiled; it exists to pin greengpu-lint diagnostics.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int bad_seed() {
  std::random_device rd;  // violation: nondeterministic seed source
  return static_cast<int>(rd());
}

int bad_rand() {
  srand(42);      // violation: hidden global state
  return rand();  // violation: hidden global state
}

long bad_wall_clock() {
  const auto now = std::chrono::system_clock::now();  // violation: wall clock
  return now.time_since_epoch().count();
}

long bad_time() {
  return ::time(nullptr);  // violation: wall clock
}

const char* bad_env() {
  return std::getenv("GREENGPU_MODE");  // violation: host-dependent
}

int suppressed_ok() {
  // GG_LINT_ALLOW(nondeterminism): fixture proves reasoned suppressions hold
  return rand();
}

int operand(int x) { return x; }  // not a violation: 'rand(' inside a word

int comments_are_stripped() {
  // mentioning rand() or system_clock in a comment is fine
  return 0;
}
