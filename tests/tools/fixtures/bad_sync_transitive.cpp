// gg-analyze fixture: a GG_PIPELINE_STAGE callback reaching a blocking
// synchronize() through a helper.  The direct in-span case belongs to the
// intraprocedural pipeline-blocking-sync rule; this is the hidden one.
#define GG_PIPELINE_STAGE

namespace fx {

struct Device {
  void synchronize() {}
};

Device g_dev;

void drain_device() {
  g_dev.synchronize();  // blocking source hidden in a helper
}

void flip_buffers() {}

struct Pipeline {
  GG_PIPELINE_STAGE void on_stage_complete(int stage) {
    flip_buffers();  // fine: non-blocking helper
    drain_device();  // violation: stage -> drain_device -> synchronize()
    (void)stage;
  }
};

}  // namespace fx
