// gg-analyze fixture: a GG_HOT function reaching an allocation through a
// TWO-HOP call chain — exactly what the intraprocedural hot-alloc rule
// cannot see.  Also exercises: a reasoned call-site suppression, a clean
// helper chain, and a direct allocation left to the intra rule (gg-analyze
// must not double-report it).
#include <cstddef>
#include <vector>

#define GG_HOT

namespace fx {

std::vector<int> sink;

void grow_log(int v) {
  sink.push_back(v);  // the allocation source, two hops from the hot path
}

void record(int v) {
  grow_log(v + 1);  // hop 1
}

int pure_math(int v) {
  return v * 3;  // allocation-free helper chain
}

int shift(int v) {
  return pure_math(v) << 1;
}

GG_HOT int hot_entry(int v) {
  record(v);       // violation: hot_entry -> record -> grow_log -> push_back
  return shift(v); // fine: the whole chain is allocation-free
}

GG_HOT int hot_suppressed(int v) {
  // GG_LINT_ALLOW(hot-alloc-transitive): fixture proves reasoned call-site
  // suppressions hold for transitive findings
  record(v);
  return v;
}

}  // namespace fx
