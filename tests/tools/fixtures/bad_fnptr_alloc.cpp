// gg-analyze fixture: allocation reached through a function POINTER taken
// in a hot body (`&helper`) and through a call made inside a lambda defined
// in the hot body.  Both must count as hot-path call sites; a pointer to a
// clean helper must not.
#include <vector>

#define GG_HOT

namespace fx {

std::vector<int> sink;

void alloc_helper(int v) {
  sink.push_back(v);  // allocation source
}

int clean_helper(int v) {
  return v + 1;
}

void install(void (*cb)(int));
void observe(int (*cb)(int));

GG_HOT void hot_registers_pointer(int v) {
  install(&alloc_helper);  // violation: hands the hot path an allocating cb
  observe(&clean_helper);  // fine: the referenced function is clean
  (void)v;
}

GG_HOT void hot_lambda_calls(int v) {
  auto fn = [v] { alloc_helper(v); };  // violation: lambda body is hot span
  fn();
}

}  // namespace fx
