// Lint fixture: the filename contains "report", so this counts as a
// serialization path — unordered containers are banned outright here.
#include <string>
#include <unordered_map>

double report_total(const std::unordered_map<std::string, double>& cells) {
  double total = 0.0;
  for (const auto& kv : cells) total += kv.second;  // violation: unordered range-for
  return total;
}
