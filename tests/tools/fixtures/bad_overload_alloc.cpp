// gg-analyze fixture: overloaded names resolve conservatively — a call to
// `scale` taints if ANY same-named definition allocates, because the token
// scanner cannot do overload resolution.  The chain message must name the
// allocating overload's definition site.
#include <vector>

#define GG_HOT

namespace fx {

std::vector<double> history;

double scale(int v) {
  return v * 2.0;  // clean overload
}

double scale(double v) {
  history.push_back(v);  // allocating overload
  return v * 2.0;
}

GG_HOT double hot_calls_overload(int v) {
  return scale(v);  // violation: conservative — either overload may bind
}

}  // namespace fx
