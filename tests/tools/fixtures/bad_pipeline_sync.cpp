// Lint fixture: blocking waits inside GG_PIPELINE_STAGE stage callbacks.
// A synchronize()/device_synchronize() call in a stage serializes the
// pipeline the stage belongs to; ordering must come from events and
// completion callbacks.  The marker's own #define must not open a span.
#define GG_PIPELINE_STAGE

struct Stream {};

struct Runtime {
  void synchronize(Stream&) {}
  void device_synchronize() {}
  template <typename F>
  void memcpy_d2h_async(Stream&, F cb) {
    cb();
  }
};

void stage_bad_stream_sync(Runtime& rt, Stream& s) {
  rt.memcpy_d2h_async(s, [&rt, &s] GG_PIPELINE_STAGE {
    rt.synchronize(s);  // violation: blocks the stage's own stream
  });
}

void stage_bad_device_sync(Runtime& rt, Stream& s) {
  rt.memcpy_d2h_async(s, [&rt] GG_PIPELINE_STAGE {
    rt.device_synchronize();  // violation: drains the whole device mid-stage
  });
}

void stage_clean(Runtime& rt, Stream& s) {
  rt.memcpy_d2h_async(s, [] GG_PIPELINE_STAGE {
    // events + completion callbacks only: nothing blocking in here
  });
  rt.synchronize(s);  // fine: a blocking drain outside any stage callback
}

void stage_suppressed(Runtime& rt, Stream& s) {
  rt.memcpy_d2h_async(s, [&rt] GG_PIPELINE_STAGE {
    // GG_LINT_ALLOW(pipeline-blocking-sync): fixture proves reasoned suppressions hold
    rt.device_synchronize();
  });
}
