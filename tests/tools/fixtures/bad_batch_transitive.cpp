// gg-analyze fixture: GG_HOT_BATCH taint roots are LOOP BODIES only — the
// same allocating helper is fine from the prologue and a violation from
// inside the sweep.
#include <cstddef>
#include <vector>

#define GG_HOT_BATCH

namespace fx {

std::vector<double> scratch;

void grow_scratch(double v) {
  scratch.push_back(v);  // allocation source
}

double lane_math(double v) {
  return v * 0.5;  // clean helper
}

GG_HOT_BATCH void batch_sweep(const double* in, double* out, std::size_t n) {
  grow_scratch(0.0);  // fine: prologue call, amortized across the batch
  for (std::size_t i = 0; i < n; ++i) {
    grow_scratch(in[i]);     // violation: allocating chain per cell
    out[i] = lane_math(in[i]);  // fine: clean chain
  }
}

}  // namespace fx
