// Schema-gate fixture: a FIELD WAS ADDED (flags) to the serialized state
// but kSnapshotVersion was not bumped and the lock was not regenerated —
// the gate must fail with schema-drift.
#include "src/common/snapshot.h"

namespace fx {

struct ScalerState {
  std::uint64_t steps = 0;
  double ema = 0.0;
  bool harden = false;
  std::uint32_t flags = 0;  // the new field nobody versioned
  std::vector<double> history;

  void save(SnapshotWriter& w) const {
    w.u64(steps);
    w.f64(ema);
    w.b(harden);
    w.u32(flags);
    w.f64_vec(history);
  }

  void load(SnapshotReader& r) {
    steps = r.u64();
    ema = r.f64();
    harden = r.b();
    flags = r.u32();
    history = r.f64_vec();
  }
};

void save_state(const ScalerState& s, SnapshotWriter& w) {
  w.u32(kSnapshotVersion);
  s.save(w);
}

void load_state(ScalerState& s, SnapshotReader& r) {
  (void)r.u32();
  s.load(r);
}

}  // namespace fx
