// Schema-gate fixture stub of the real src/common/snapshot.h — gg-analyze
// only needs the version constant and the writer/reader parameter types.
#pragma once
#include <cstdint>
#include <string>
#include <vector>

namespace fx {

inline constexpr std::uint32_t kSnapshotVersion = 3;

class SnapshotWriter {
 public:
  void u8(std::uint8_t v);
  void b(bool v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void str(const std::string& s);
  void f64_vec(const std::vector<double>& v);
};

class SnapshotReader {
 public:
  std::uint8_t u8();
  bool b();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();
  std::vector<double> f64_vec();
};

}  // namespace fx
