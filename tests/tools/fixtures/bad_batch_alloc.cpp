// Lint fixture: GG_HOT_BATCH functions may allocate in their prologue but
// never inside a loop body — a loop there runs once per cell per iteration.
// Exercises: a flagged for-body and while-body, a clean prologue allocation,
// a reasoned suppression, and a plain GG_HOT neighbour (different rule).
#include <cstddef>
#include <string>
#include <vector>

#define GG_HOT
#define GG_HOT_BATCH

struct Cell {
  double value = 0.0;
  void step() { value += 1.0; }
};

GG_HOT_BATCH void batch_step_bad(Cell* const* live, std::size_t n) {
  std::vector<double> scratch(n);  // fine: prologue allocation, outside loops
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> lane(4);  // violation: local vector per cell
    lane[0] = live[i]->value;
    scratch.push_back(lane[0]);  // violation: container growth per cell
    live[i]->step();
  }
  bool any = n > 0;
  while (any) {
    std::string tag = std::to_string(n);  // violation: string construction
    any = !tag.empty() && false;
  }
}

GG_HOT_BATCH void batch_step_suppressed(Cell* const* live, std::size_t n) {
  std::vector<double> out;
  for (std::size_t i = 0; i < n; ++i) {
    // GG_LINT_ALLOW(batch-loop-alloc): fixture proves reasoned suppressions hold
    out.push_back(live[i]->value);
  }
}

GG_HOT_BATCH void batch_step_clean(Cell* const* live, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    live[i]->step();  // fine: no allocation in the loop body
  }
}

GG_HOT void scalar_hot(std::vector<int>& log, int v) {
  log.push_back(v);  // hot-alloc territory, not batch-loop-alloc
}
