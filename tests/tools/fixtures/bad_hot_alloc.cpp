// Lint fixture: GG_HOT bodies must be allocation-free; every pattern class
// fires once, and both suppression forms (reasoned, bare) are exercised.
#include <memory>
#include <string>
#include <vector>

#define GG_HOT

struct Recorder {
  std::vector<int> log;

  GG_HOT void hot_push(int v) {
    log.push_back(v);  // violation: container growth
  }

  GG_HOT int* hot_new() {
    return new int{7};  // violation: operator new
  }

  GG_HOT std::string hot_string(int v) {
    return std::to_string(v);  // violation: string construction
  }

  GG_HOT void hot_suppressed(int v) {
    // GG_LINT_ALLOW(hot-alloc): fixture proves reasoned suppressions hold
    log.push_back(v);
  }

  GG_HOT void hot_bare_suppression(int v) {
    // GG_LINT_ALLOW(hot-alloc)
    log.push_back(v);
  }

  void cold_push(int v) {
    log.push_back(v);  // fine: not GG_HOT
  }
};
