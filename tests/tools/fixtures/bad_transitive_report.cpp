// gg-analyze fixture: a "report" translation unit (the filename matches the
// report/serialization root set) whose entry point reaches a
// nondeterminism source through a helper chain.  A locally SUPPRESSED
// source must still taint — a helper's waiver is not a report-path waiver.
#include <cstdlib>
#include <string>

namespace fx {

const char* env_override() {
  // GG_LINT_ALLOW(nondeterminism): fixture — local waiver must NOT clear
  // the transitive report-path rule
  return std::getenv("FX_MODE");
}

const char* pick_mode() {
  return env_override();  // hop 1
}

std::string render_report() {
  const char* mode = pick_mode();  // violation: report -> pick_mode -> getenv
  return std::string(mode != nullptr ? mode : "default");
}

int column_width(int n) {
  return n + 2;  // fine: deterministic helper
}

}  // namespace fx
