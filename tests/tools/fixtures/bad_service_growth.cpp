// Lint fixture: container growth in the service layer must be bounded.
// The file name marks this as service code, so every unannotated
// push_back/emplace/push/insert fires; GG_BOUNDED(<reason>) on the growth
// line or the line above accepts it, and a bare GG_BOUNDED() is itself a
// diagnostic.
#include <deque>
#include <vector>

struct Request {
  int priority{0};
};

void enqueue_bad(std::deque<Request>& queue, const Request& r) {
  queue.push_back(r);  // violation: nothing bounds this
}

void enqueue_bad_emplace(std::vector<Request>& queue) {
  queue.emplace_back();  // violation
}

void enqueue_annotated(std::deque<Request>& queue, const Request& r) {
  // GG_BOUNDED(capacity checked by the caller's BoundedQueue facade)
  queue.push_back(r);
}

void enqueue_annotated_inline(std::vector<Request>& slots, const Request& r) {
  slots.push_back(r);  // GG_BOUNDED(one slot per device, fixed at startup)
}

void enqueue_bare_annotation(std::deque<Request>& queue, const Request& r) {
  // GG_BOUNDED()
  queue.push_back(r);
}

void enqueue_suppressed(std::deque<Request>& queue, const Request& r) {
  // GG_LINT_ALLOW(service-growth): fixture proves reasoned suppressions hold
  queue.push_back(r);
}
