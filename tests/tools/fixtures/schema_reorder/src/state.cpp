// Schema-gate fixture: two differently-typed fields SWAPPED PLACES in the
// write order (u64 steps <-> f64 ema) without a kSnapshotVersion bump —
// old snapshots would misload bit patterns into the wrong fields.  The
// gate must fail with schema-drift.
#include "src/common/snapshot.h"

namespace fx {

struct ScalerState {
  std::uint64_t steps = 0;
  double ema = 0.0;
  bool harden = false;
  std::vector<double> history;

  void save(SnapshotWriter& w) const {
    w.f64(ema);
    w.u64(steps);
    w.b(harden);
    w.f64_vec(history);
  }

  void load(SnapshotReader& r) {
    ema = r.f64();
    steps = r.u64();
    harden = r.b();
    history = r.f64_vec();
  }
};

void save_state(const ScalerState& s, SnapshotWriter& w) {
  w.u32(kSnapshotVersion);
  s.save(w);
}

void load_state(ScalerState& s, SnapshotReader& r) {
  (void)r.u32();
  s.load(r);
}

}  // namespace fx
