#!/usr/bin/env python3
"""Tests for tools/greengpu_lint.py.

Two halves:
  1. Fixture corpus — each file under tests/tools/fixtures/ has a golden
     diagnostic listing under tests/tools/expected/; the lint's stdout must
     match byte-for-byte (this is what "asserting exact diagnostic output"
     means: messages, paths, line numbers, order).  Fixtures whose golden
     file is non-empty must exit 1; clean ones must exit 0.
  2. Tree scan — the real tree must lint clean (exit 0, no output).  This is
     the same invocation CI and tools/lint.sh use.

Run directly or through ctest: python3 tests/tools/lint_test.py --root <repo>
"""

import argparse
import os
import subprocess
import sys

FIXTURES = ["bad_nondeterminism", "bad_report_unordered", "bad_hot_alloc",
            "bad_batch_alloc", "bad_pipeline_sync", "bad_checkpoint_write",
            "bad_service_growth", "bad_service_socket_write", "clean",
            "clean_scanner_edges"]


def run_lint(root, args):
    lint = os.path.join(root, "tools", "greengpu_lint.py")
    return subprocess.run(
        [sys.executable, lint, "--root", root, *args],
        capture_output=True, text=True)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--root", default=os.path.join(os.path.dirname(__file__), "..", ".."))
    root = os.path.abspath(parser.parse_args().root)

    failures = []

    for name in FIXTURES:
        fixture = os.path.join(root, "tests", "tools", "fixtures", name + ".cpp")
        golden_path = os.path.join(root, "tests", "tools", "expected", name + ".txt")
        with open(golden_path, encoding="utf-8") as f:
            golden = f.read()
        result = run_lint(root, [fixture])
        expected_code = 1 if golden else 0
        if result.returncode != expected_code:
            failures.append(
                f"{name}: exit {result.returncode}, expected {expected_code}\n"
                f"stderr: {result.stderr}")
        if result.stdout != golden:
            failures.append(
                f"{name}: diagnostic mismatch\n--- expected ---\n{golden}"
                f"--- actual ---\n{result.stdout}")

    tree = run_lint(root, [])
    if tree.returncode != 0 or tree.stdout:
        failures.append(
            f"tree scan not clean (exit {tree.returncode}):\n{tree.stdout}{tree.stderr}")

    if failures:
        print(f"lint_test: {len(failures)} failure(s)", file=sys.stderr)
        for f in failures:
            print(f, file=sys.stderr)
        return 1
    print(f"lint_test: {len(FIXTURES)} fixtures + tree scan OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
