#include "src/greengpu/runner.h"

#include <gtest/gtest.h>

#include "src/workloads/kmeans.h"
#include "src/workloads/streamcluster.h"

namespace gg::greengpu {
namespace {

workloads::KmeansConfig small_kmeans() {
  workloads::KmeansConfig cfg;
  cfg.points = 512;
  cfg.dims = 4;
  cfg.clusters = 4;
  cfg.iterations = 12;
  return cfg;
}

workloads::StreamclusterConfig small_sc() {
  workloads::StreamclusterConfig cfg;
  cfg.points = 256;
  cfg.dims = 8;
  cfg.iterations = 15;
  return cfg;
}

RunOptions fast_options() {
  RunOptions o;
  o.pool_workers = 2;
  return o;
}

TEST(Runner, BestPerformanceRunsAllOnGpuAtPeak) {
  workloads::Kmeans wl(small_kmeans());
  const auto r = run_experiment(wl, Policy::best_performance(), fast_options());
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.policy, "best-performance");
  EXPECT_EQ(r.final_ratio, 0.0);
  EXPECT_EQ(r.iterations.size(), 12u);
  for (const auto& it : r.iterations) {
    EXPECT_EQ(it.cpu_ratio, 0.0);
    EXPECT_EQ(it.cpu_time.get(), 0.0);
    EXPECT_GT(it.gpu_time.get(), 0.0);
    EXPECT_GT(it.total_energy().get(), 0.0);
  }
  EXPECT_EQ(r.gpu_frequency_transitions, 2u);  // lowest -> peak, once each
}

TEST(Runner, EnergiesAndTimesAreConsistent) {
  workloads::Kmeans wl(small_kmeans());
  const auto r = run_experiment(wl, Policy::best_performance(), fast_options());
  EXPECT_GT(r.exec_time.get(), 0.0);
  EXPECT_GT(r.gpu_energy.get(), 0.0);
  EXPECT_GT(r.cpu_energy.get(), 0.0);
  double iter_total = 0.0;
  for (const auto& it : r.iterations) iter_total += it.total_energy().get();
  // Iteration energies + setup/teardown transfers = run total.
  EXPECT_LE(iter_total, r.total_energy().get() + 1e-6);
  EXPECT_GT(iter_total, 0.9 * r.total_energy().get());
}

TEST(Runner, DynamicEnergyIsPositiveAndBelowTotal) {
  workloads::Kmeans wl(small_kmeans());
  const auto r = run_experiment(wl, Policy::best_performance(), fast_options());
  EXPECT_GT(r.gpu_dynamic_energy().get(), 0.0);
  EXPECT_LT(r.gpu_dynamic_energy().get(), r.gpu_energy.get());
}

TEST(Runner, StaticDivisionUsesFixedRatio) {
  workloads::Kmeans wl(small_kmeans());
  const auto r = run_experiment(wl, Policy::static_division(0.10), fast_options());
  EXPECT_TRUE(r.verified);
  for (const auto& it : r.iterations) EXPECT_DOUBLE_EQ(it.cpu_ratio, 0.10);
  EXPECT_DOUBLE_EQ(r.final_ratio, 0.10);
}

TEST(Runner, StaticPairHoldsLevels) {
  workloads::Streamcluster wl(small_sc());
  const auto r = run_experiment(wl, Policy::static_pair(3, 2), fast_options());
  EXPECT_TRUE(r.verified);
  // One transition per domain to reach the pair, none after.
  EXPECT_EQ(r.gpu_frequency_transitions, 2u);
}

TEST(Runner, DivisionPolicyConvergesAndRecordsActions) {
  workloads::Kmeans wl(small_kmeans());
  const auto r = run_experiment(wl, Policy::division_only(), fast_options());
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.final_ratio, 0.0);
  EXPECT_NE(r.convergence_iteration, static_cast<std::size_t>(-1));
  // kmeans profile: cpu_slowdown 6 -> balance near 1/7; converges to 0.15.
  EXPECT_NEAR(r.final_ratio, 0.15, 0.051);
}

TEST(Runner, DivisionIgnoredForNonDivisibleWorkload) {
  workloads::Streamcluster wl(small_sc());
  const auto r = run_experiment(wl, Policy::division_only(), fast_options());
  EXPECT_EQ(r.final_ratio, 0.0);
  for (const auto& it : r.iterations) EXPECT_EQ(it.cpu_ratio, 0.0);
}

TEST(Runner, ScalingPolicyRecordsDecisions) {
  workloads::Streamcluster wl(small_sc());
  const auto r = run_experiment(wl, Policy::scaling_only(), fast_options());
  EXPECT_TRUE(r.verified);
  EXPECT_FALSE(r.scaler_decisions.empty());
  EXPECT_FALSE(r.governor_decisions.empty());
}

TEST(Runner, ScalingSavesGpuEnergyOnStreamcluster) {
  workloads::Streamcluster wl_base(small_sc());
  const auto base = run_experiment(wl_base, Policy::best_performance(), fast_options());
  workloads::Streamcluster wl_scaled(small_sc());
  const auto scaled = run_experiment(wl_scaled, Policy::scaling_only(), fast_options());
  EXPECT_LT(scaled.gpu_energy.get(), base.gpu_energy.get());
  // With only marginal performance degradation (< 5 %).
  EXPECT_LT(scaled.exec_time.get(), base.exec_time.get() * 1.05);
}

TEST(Runner, TraceRecordedWhenRequested) {
  workloads::Streamcluster wl(small_sc());
  RunOptions o = fast_options();
  o.record_trace = true;
  o.trace_period = Seconds{1.0};
  const auto r = run_experiment(wl, Policy::scaling_only(), o);
  EXPECT_FALSE(r.trace.empty());
  // Roughly one sample per simulated second.
  EXPECT_NEAR(static_cast<double>(r.trace.size()), r.exec_time.get(), 3.0);
}

TEST(Runner, SpinAccountingPresentUnderSyncStack) {
  workloads::Streamcluster wl(small_sc());
  const auto r = run_experiment(wl, Policy::best_performance(), fast_options());
  // GPU-only run: the CPU spends essentially the whole run spinning.
  EXPECT_GT(r.cpu_spin_time.get(), 0.9 * r.exec_time.get());
  EXPECT_GT(r.cpu_spin_energy.get(), 0.0);
  // The Fig. 6c emulation must price spin at the lowest P-state, reducing
  // total energy.
  EXPECT_LT(r.emulated_cpu_throttle_energy().get(), r.total_energy().get());
}

TEST(Runner, AsyncStackRemovesSpin) {
  workloads::Streamcluster wl(small_sc());
  RunOptions o = fast_options();
  o.sync_spin = false;
  const auto r = run_experiment(wl, Policy::best_performance(), o);
  EXPECT_EQ(r.cpu_spin_time.get(), 0.0);
  EXPECT_EQ(r.cpu_spin_energy.get(), 0.0);
}

TEST(Runner, MaxIterationsTruncatesAndSkipsVerify) {
  workloads::Kmeans wl(small_kmeans());
  RunOptions o = fast_options();
  o.max_iterations = 3;
  const auto r = run_experiment(wl, Policy::best_performance(), o);
  EXPECT_EQ(r.iterations.size(), 3u);
  EXPECT_TRUE(r.verify_skipped);
}

TEST(Runner, RunByNameWorks) {
  RunOptions o = fast_options();
  o.max_iterations = 2;
  o.verify = false;
  const auto r = run_experiment("pathfinder", Policy::best_performance(), o);
  EXPECT_EQ(r.workload, "pathfinder");
  EXPECT_EQ(r.iterations.size(), 2u);
}

TEST(Runner, GreenGpuBeatsBaselineOnDivisibleWorkload) {
  workloads::Kmeans wl_base(small_kmeans());
  const auto base = run_experiment(wl_base, Policy::best_performance(), fast_options());
  workloads::Kmeans wl_green(small_kmeans());
  const auto green = run_experiment(wl_green, Policy::green_gpu(), fast_options());
  EXPECT_TRUE(green.verified);
  EXPECT_LT(green.total_energy().get(), base.total_energy().get());
}

TEST(Runner, DeterministicAcrossRuns) {
  workloads::Kmeans a(small_kmeans());
  workloads::Kmeans b(small_kmeans());
  const auto r1 = run_experiment(a, Policy::green_gpu(), fast_options());
  const auto r2 = run_experiment(b, Policy::green_gpu(), fast_options());
  EXPECT_EQ(r1.exec_time.get(), r2.exec_time.get());
  EXPECT_EQ(r1.total_energy().get(), r2.total_energy().get());
  EXPECT_EQ(r1.final_ratio, r2.final_ratio);
}

}  // namespace
}  // namespace gg::greengpu
