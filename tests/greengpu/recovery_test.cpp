#include "src/greengpu/recovery.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/snapshot.h"
#include "src/cudalite/api.h"
#include "src/greengpu/division.h"
#include "src/greengpu/wma_scaler.h"
#include "src/sim/crash.h"

namespace gg::greengpu {
namespace {

using common::KillPoint;
using common::SnapshotError;

/// Fresh per-test scratch directory (named after the running test, so
/// parallel ctest jobs never collide; wiped on entry).
std::filesystem::path test_dir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      (std::string("gg_") + info->test_suite_name() + "_" + info->name());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Two workloads x (baseline, scaling) — the smallest campaign that
/// exercises the scaler kill-points.  With faults, both policies are
/// hardened (un-hardened policies DNF by design on a faulty platform).
CampaignConfig small_config(bool faults) {
  CampaignConfig cfg;
  cfg.workloads = {"pathfinder", "lud"};
  Policy baseline = Policy::best_performance();
  Policy scaling = Policy::scaling_only();
  if (faults) {
    cfg.options.faults.seed = 1234;
    cfg.options.faults.util_drop_rate = 0.02;
    cfg.options.faults.launch_fail_rate = 0.01;
    baseline.params.hardening.enabled = true;
    scaling.params.hardening.enabled = true;
  }
  cfg.policies = {baseline, scaling};
  cfg.options.pool_workers = 2;
  return cfg;
}

/// The full report surface: byte-identical CSV + JSON is the headline
/// crash-consistency guarantee.
std::string report(const CampaignResult& r) {
  std::ostringstream csv;
  std::ostringstream json;
  write_campaign_csv(csv, r);
  write_campaign_json(json, r);
  return csv.str() + "\n" + json.str();
}

TEST(Recovery, DisabledCheckpointingFallsBackToPlainCampaign) {
  const CampaignConfig cfg = small_config(false);
  const CheckpointOptions off{};
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(report(run_campaign_checkpointed(cfg, off)), report(run_campaign(cfg)));
}

TEST(Recovery, UninterruptedCheckpointedRunMatchesPlain) {
  const std::filesystem::path dir = test_dir();
  const CampaignConfig cfg = small_config(false);
  const std::string golden = report(run_campaign(cfg));
  CheckpointOptions ckpt;
  ckpt.dir = dir.string();
  ckpt.every = 5;
  EXPECT_EQ(report(run_campaign_checkpointed(cfg, ckpt)), golden);
  EXPECT_TRUE(std::filesystem::exists(dir / "campaign.journal"));
  // Per-cell controller snapshots were written and are readable.
  EXPECT_TRUE(read_run_checkpoint_meta((dir / "cell-1.ggsn").string()).has_value());
}

TEST(Recovery, CheckpointCadenceNeverChangesReports) {
  // Checkpoints are pure observation: any cadence, same bytes.
  const CampaignConfig cfg = small_config(false);
  const std::filesystem::path dir = test_dir();
  std::vector<std::string> reports;
  for (const std::size_t every : {std::size_t{0}, std::size_t{3}, std::size_t{50}}) {
    CheckpointOptions ckpt;
    ckpt.dir = (dir / ("every-" + std::to_string(every))).string();
    ckpt.every = every;
    reports.push_back(report(run_campaign_checkpointed(cfg, ckpt)));
  }
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_EQ(reports[0], reports[2]);
}

// The headline guarantee: a campaign killed at ANY kill-point and resumed
// reports byte-identical CSV/JSON to an uninterrupted run — with and
// without fault injection, serial and parallel.
TEST(Recovery, KillAndResumeIsByteIdenticalAtEveryKillPoint) {
  struct Kill {
    KillPoint point;
    std::uint64_t nth;
  };
  const Kill kills[] = {
      {KillPoint::kPreScalerStep, 1},
      {KillPoint::kPostScalerStep, 5},
      {KillPoint::kMidCheckpoint, 1},
      {KillPoint::kMidCampaignCell, 2},
  };
  const std::filesystem::path dir = test_dir();
  std::size_t case_index = 0;
  for (const bool faults : {false, true}) {
    CampaignConfig cfg = small_config(faults);
    const std::string golden = report(run_campaign(cfg));
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{2}}) {
      cfg.jobs = jobs;
      for (const Kill& kill : kills) {
        SCOPED_TRACE(std::string("kill-point ") +
                     std::string(common::to_string(kill.point)) + ":" +
                     std::to_string(kill.nth) + " faults=" + (faults ? "on" : "off") +
                     " jobs=" + std::to_string(jobs));
        CheckpointOptions ckpt;
        ckpt.dir = (dir / ("case-" + std::to_string(case_index++))).string();
        sim::CrashInjector crash(kill.point, kill.nth, common::CrashMode::kThrow);
        RecoverySupervisor supervisor(cfg, ckpt);
        const CampaignResult resumed = supervisor.run();
        EXPECT_TRUE(crash.fired());
        EXPECT_GE(supervisor.restarts(), 1);
        EXPECT_EQ(report(resumed), golden);
      }
    }
  }
}

TEST(Recovery, SupervisorGivesUpPastRestartBudget) {
  const std::filesystem::path dir = test_dir();
  const CampaignConfig cfg = small_config(false);
  CheckpointOptions ckpt;
  ckpt.dir = dir.string();
  // A zero-budget supervisor must rethrow the very first crash instead of
  // resuming.
  sim::CrashInjector crash(KillPoint::kMidCampaignCell, 1, common::CrashMode::kThrow);
  RecoverySupervisor supervisor(cfg, ckpt, /*max_restarts=*/0);
  EXPECT_THROW((void)supervisor.run(), common::CrashInjected);
  EXPECT_EQ(supervisor.restarts(), 0);
}

TEST(Recovery, SupervisorExhaustsItsBudgetAgainstAPersistentCrash) {
  const std::filesystem::path dir = test_dir();
  const CampaignConfig cfg = small_config(false);
  CheckpointOptions ckpt;
  ckpt.dir = dir.string();
  // The crash fires on every attempt (shots far beyond the budget): a
  // persistent fault.  The supervisor spends its whole budget, then rethrows
  // rather than looping forever.
  sim::CrashInjector crash(KillPoint::kMidCampaignCell, 1, common::CrashMode::kThrow,
                           /*shots=*/100);
  common::BackoffConfig backoff;
  RecoverySupervisor supervisor(cfg, ckpt, /*max_restarts=*/3, backoff);
  EXPECT_THROW((void)supervisor.run(), common::CrashInjected);
  EXPECT_EQ(supervisor.restarts(), 3);

  // The planned delays are exactly the backoff schedule: exponential with
  // deterministic jitter, replayable from the same config.
  const std::vector<Seconds>& delays = supervisor.restart_delays();
  ASSERT_EQ(delays.size(), 3u);
  common::ExponentialBackoff replay(backoff);
  for (std::size_t i = 0; i < delays.size(); ++i) {
    EXPECT_DOUBLE_EQ(delays[i].get(), replay.next().get()) << "delay " << i;
  }
}

TEST(Recovery, SupervisorSurvivesExactlyAsManyCrashesAsItsBudget) {
  const std::filesystem::path dir = test_dir();
  const CampaignConfig cfg = small_config(false);
  const std::string golden = report(run_campaign(cfg));
  CheckpointOptions ckpt;
  ckpt.dir = dir.string();
  // Two shots, budget two: the fault dies before the supervisor does, and
  // the survivor's report is still byte-identical.
  sim::CrashInjector crash(KillPoint::kMidCampaignCell, 1, common::CrashMode::kThrow,
                           /*shots=*/2);
  RecoverySupervisor supervisor(cfg, ckpt, /*max_restarts=*/2);
  EXPECT_EQ(report(supervisor.run()), golden);
  EXPECT_EQ(supervisor.restarts(), 2);
  EXPECT_EQ(supervisor.restart_delays().size(), 2u);
}

TEST(Recovery, HeaderOnlyJournalResumesFromScratch) {
  // Degenerate journal #1: a run killed before its first cell was journaled
  // leaves a header and nothing else.  Resume must treat it as "no progress"
  // and still converge to the golden bytes.
  const std::filesystem::path dir = test_dir();
  CampaignConfig cfg = small_config(false);
  cfg.workloads = {"pathfinder"};
  cfg.policies = {Policy::best_performance()};
  const std::string golden = report(run_campaign(cfg));
  CheckpointOptions ckpt;
  ckpt.dir = dir.string();
  {
    sim::CrashInjector crash(KillPoint::kMidCampaignCell, 1, common::CrashMode::kThrow);
    EXPECT_THROW((void)run_campaign_checkpointed(cfg, ckpt), common::CrashInjected);
  }
  const std::string journal = (dir / "campaign.journal").string();
  const CampaignPlan plan = plan_campaign(cfg);
  const std::uint64_t fp = CampaignJournal::fingerprint(plan, cfg.options);
  EXPECT_TRUE(CampaignJournal::read(journal, fp).empty());

  ckpt.resume = true;
  EXPECT_EQ(report(run_campaign_checkpointed(cfg, ckpt)), golden);
}

TEST(Recovery, SingleCellCampaignKillsAndResumes) {
  // Degenerate journal #2: the smallest possible campaign, one cell.
  const std::filesystem::path dir = test_dir();
  CampaignConfig cfg = small_config(false);
  cfg.workloads = {"lud"};
  cfg.policies = {Policy::scaling_only()};
  const std::string golden = report(run_campaign(cfg));
  CheckpointOptions ckpt;
  ckpt.dir = dir.string();
  sim::CrashInjector crash(KillPoint::kPostScalerStep, 3, common::CrashMode::kThrow);
  RecoverySupervisor supervisor(cfg, ckpt);
  EXPECT_EQ(report(supervisor.run()), golden);
  EXPECT_TRUE(crash.fired());
}

TEST(Recovery, AllCellsCompleteResumeExecutesNothing) {
  // Degenerate journal #3: every cell already journaled.  Resume renders the
  // report straight from the journal; a kill-point armed at the very first
  // re-executed cell proves none runs.
  const std::filesystem::path dir = test_dir();
  const CampaignConfig cfg = small_config(false);
  const std::string golden = report(run_campaign(cfg));
  CheckpointOptions ckpt;
  ckpt.dir = dir.string();
  (void)run_campaign_checkpointed(cfg, ckpt);

  ckpt.resume = true;
  sim::CrashInjector tripwire(KillPoint::kMidCampaignCell, 1, common::CrashMode::kThrow);
  EXPECT_EQ(report(run_campaign_checkpointed(cfg, ckpt)), golden);
  EXPECT_FALSE(tripwire.fired()) << "a fully-journaled campaign re-ran a cell";
}

TEST(Recovery, JournalFingerprintMismatchRefusesResume) {
  const std::filesystem::path dir = test_dir();
  CampaignConfig cfg = small_config(false);
  CheckpointOptions ckpt;
  ckpt.dir = dir.string();
  (void)run_campaign_checkpointed(cfg, ckpt);

  // Same journal, different campaign: the fingerprint covers every option
  // a cell's results depend on, so resuming must refuse to mix results.
  cfg.options.max_iterations = 7;
  ckpt.resume = true;
  EXPECT_THROW((void)run_campaign_checkpointed(cfg, ckpt), SnapshotError);
}

TEST(Recovery, ForeignOrTruncatedJournalIsRejected) {
  const std::filesystem::path dir = test_dir();
  const CampaignConfig cfg = small_config(false);
  const CampaignPlan plan = plan_campaign(cfg);
  const std::uint64_t fp = CampaignJournal::fingerprint(plan, cfg.options);

  const std::string foreign = (dir / "foreign.journal").string();
  {
    // GG_LINT_ALLOW(checkpoint-write): planting a foreign file on purpose
    std::ofstream out(foreign, std::ios::binary);
    out << "this is not a campaign journal";
  }
  EXPECT_THROW((void)CampaignJournal::read(foreign, fp), SnapshotError);

  const std::string shorty = (dir / "short.journal").string();
  {
    // GG_LINT_ALLOW(checkpoint-write): planting a truncated header on purpose
    std::ofstream out(shorty, std::ios::binary);
    out << "GG";
  }
  EXPECT_THROW((void)CampaignJournal::read(shorty, fp), SnapshotError);
  EXPECT_THROW((void)CampaignJournal::read((dir / "missing.journal").string(), fp),
               SnapshotError);
}

TEST(Recovery, TornJournalTailIsTruncatedAndResumable) {
  const std::filesystem::path dir = test_dir();
  const CampaignConfig cfg = small_config(false);
  const std::string golden = report(run_campaign(cfg));
  CheckpointOptions ckpt;
  ckpt.dir = dir.string();
  (void)run_campaign_checkpointed(cfg, ckpt);

  const std::string journal = (dir / "campaign.journal").string();
  const auto good_size = std::filesystem::file_size(journal);
  {
    // Half a record header: exactly what an append killed between its two
    // flushes leaves behind.
    // GG_LINT_ALLOW(checkpoint-write): simulating the torn append itself
    std::ofstream out(journal, std::ios::binary | std::ios::app);
    const char torn[10] = {3, 0, 0, 0, 0, 0, 0, 0, 42, 42};
    out.write(torn, sizeof torn);
  }
  ASSERT_GT(std::filesystem::file_size(journal), good_size);

  const CampaignPlan plan = plan_campaign(cfg);
  const std::uint64_t fp = CampaignJournal::fingerprint(plan, cfg.options);
  const auto entries = CampaignJournal::read(journal, fp);
  EXPECT_EQ(entries.size(), plan.total());
  // read() dropped the torn tail in place.
  EXPECT_EQ(std::filesystem::file_size(journal), good_size);

  ckpt.resume = true;
  EXPECT_EQ(report(run_campaign_checkpointed(cfg, ckpt)), golden);
}

TEST(Recovery, RunCheckpointMetaRoundTripsAndRejectsCorruption) {
  const std::filesystem::path dir = test_dir();
  RunOptions options = campaign_default_options();
  options.max_iterations = 20;
  options.checkpoint_every = 10;
  options.checkpoint_dir = dir.string();
  options.checkpoint_tag = "probe";
  (void)run_experiment("pathfinder", Policy::scaling_only(), options);

  const std::string path = (dir / "probe.ggsn").string();
  const auto meta = read_run_checkpoint_meta(path);
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->iteration, 20u);
  EXPECT_GT(meta->sim_time, 0.0);
  EXPECT_TRUE(meta->has_scaler);
  EXPECT_FALSE(meta->has_divider);

  // Corrupt and missing files are a clean "no checkpoint", never a throw.
  std::filesystem::resize_file(path, 10);
  EXPECT_FALSE(read_run_checkpoint_meta(path).has_value());
  EXPECT_FALSE(read_run_checkpoint_meta((dir / "absent.ggsn").string()).has_value());
}

TEST(Recovery, DividerSaveLoadContinuesExactDecisionStream) {
  const DivisionParams params;
  DivisionController a(params);
  const auto feedback = [](int i) {
    IterationFeedback f;
    f.cpu_time = Seconds{1.0 + 0.05 * i};
    f.gpu_time = Seconds{1.6 - 0.03 * i};
    return f;
  };
  for (int i = 0; i < 8; ++i) (void)a.update(feedback(i));

  common::SnapshotWriter w;
  a.save(w);
  common::SnapshotReader r = common::SnapshotReader::from_payload(w.payload());
  DivisionController b(params);
  b.load(r);

  EXPECT_EQ(a.ratio(), b.ratio());
  EXPECT_EQ(a.decision_count(), b.decision_count());
  for (int i = 8; i < 24; ++i) {
    const DivisionDecision da = a.update(feedback(i));
    const DivisionDecision db = b.update(feedback(i));
    ASSERT_EQ(da.ratio, db.ratio) << "diverged at iteration " << i;
    ASSERT_EQ(da.action, db.action) << "diverged at iteration " << i;
  }
  EXPECT_EQ(a.converged(), b.converged());
}

TEST(Recovery, ScalerSnapshotRoundTripIsStable) {
  sim::Platform platform;
  cudalite::Runtime rt(platform, 2);
  cudalite::NvmlDevice nvml(platform);
  cudalite::NvSettings settings(platform);
  GpuFrequencyScaler a(nvml, settings, WmaParams{});
  for (int k = 0; k < 6; ++k) {
    platform.queue().run_until(platform.now() + Seconds{3.0});
    (void)a.step(platform.now());
  }

  common::SnapshotWriter first;
  a.save(first);
  GpuFrequencyScaler b(nvml, settings, WmaParams{});
  common::SnapshotReader r = common::SnapshotReader::from_payload(first.payload());
  b.load(r);
  common::SnapshotWriter second;
  b.save(second);
  // save -> load -> save is byte-stable: the snapshot captures the whole
  // learned state and nothing else.
  EXPECT_EQ(first.payload(), second.payload());
}

TEST(Recovery, ScalerLoadRejectsRetentionMismatch) {
  sim::Platform platform;
  cudalite::Runtime rt(platform, 2);
  cudalite::NvmlDevice nvml(platform);
  cudalite::NvSettings settings(platform);
  GpuFrequencyScaler a(nvml, settings, WmaParams{});
  platform.queue().run_until(Seconds{3.0});
  (void)a.step(platform.now());
  common::SnapshotWriter w;
  a.save(w);

  GpuFrequencyScaler c(nvml, settings, WmaParams{});
  RecordOptions counters;
  counters.mode = RecordMode::kCounters;
  c.set_record(counters);
  common::SnapshotReader r = common::SnapshotReader::from_payload(w.payload());
  EXPECT_THROW(c.load(r), SnapshotError);
}

}  // namespace
}  // namespace gg::greengpu
