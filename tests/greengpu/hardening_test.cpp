// Hardened-controller behaviour under injected faults: the scaler's
// stale-sample hold, the runner's retry/reroute/watchdog machinery, the
// strict zero-rate no-op guarantee, and fault-schedule determinism.

#include <gtest/gtest.h>

#include "src/cudalite/api.h"
#include "src/cudalite/nvml.h"
#include "src/cudalite/nvsettings.h"
#include "src/greengpu/runner.h"
#include "src/greengpu/wma_scaler.h"
#include "src/sim/fault.h"
#include "src/workloads/kmeans.h"

namespace gg::greengpu {
namespace {

using namespace gg::literals;

workloads::KmeansConfig small_kmeans() {
  workloads::KmeansConfig cfg;
  cfg.points = 512;
  cfg.dims = 4;
  cfg.clusters = 4;
  cfg.iterations = 12;
  return cfg;
}

RunOptions fast_options() {
  RunOptions o;
  o.pool_workers = 2;
  return o;
}

GreenGpuParams hardened_params() {
  GreenGpuParams p;
  p.hardening.enabled = true;
  return p;
}

TEST(ScalerHardening, HoldsOnStaleSamples) {
  sim::Platform platform;
  sim::FaultConfig cfg;
  cfg.util_stale_rate = 1.0;  // every query returns a zero-length window
  platform.install_faults(cfg);
  cudalite::NvmlDevice nvml(platform);
  cudalite::NvSettings settings(platform);
  WmaParams params;
  params.harden = true;
  GpuFrequencyScaler scaler(nvml, settings, params);
  const auto before = settings.clock_levels();
  platform.queue().run_until(3_s);
  const ScalerDecision d = scaler.step(platform.now());
  EXPECT_FALSE(d.sample_ok);
  EXPECT_EQ(scaler.held_steps(), 1u);
  EXPECT_EQ(settings.clock_levels(), before);  // no actuation on a held step
}

TEST(ScalerHardening, HoldsOnDroppedSamples) {
  sim::Platform platform;
  sim::FaultConfig cfg;
  cfg.util_drop_rate = 1.0;
  platform.install_faults(cfg);
  cudalite::NvmlDevice nvml(platform);
  cudalite::NvSettings settings(platform);
  WmaParams params;
  params.harden = true;
  GpuFrequencyScaler scaler(nvml, settings, params);
  platform.queue().run_until(3_s);
  scaler.step(platform.now());
  platform.queue().run_until(6_s);
  scaler.step(platform.now());
  EXPECT_EQ(scaler.held_steps(), 2u);
}

TEST(ScalerHardening, UnhardenedScalerNeverHolds) {
  sim::Platform platform;
  sim::FaultConfig cfg;
  cfg.util_stale_rate = 1.0;
  platform.install_faults(cfg);
  cudalite::NvmlDevice nvml(platform);
  cudalite::NvSettings settings(platform);
  GpuFrequencyScaler scaler(nvml, settings, WmaParams{});
  platform.queue().run_until(3_s);
  scaler.step(platform.now());
  EXPECT_EQ(scaler.held_steps(), 0u);  // baseline happily consumes the noise
}

TEST(RunnerHardening, HardenedCompletesAndVerifiesAtTenPercentFaults) {
  workloads::Kmeans wl(small_kmeans());
  RunOptions options = fast_options();
  options.faults = sim::FaultConfig::uniform(0.10);
  const auto r = run_experiment(wl, Policy::green_gpu(hardened_params()), options);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.iterations.size(), 12u);
  EXPECT_FALSE(r.fault_events.empty());
}

TEST(RunnerHardening, UnhardenedAbortsWhenLaunchesAlwaysFail) {
  workloads::Kmeans wl(small_kmeans());
  RunOptions options = fast_options();
  options.faults.launch_fail_rate = 1.0;
  EXPECT_THROW(run_experiment(wl, Policy::green_gpu(), options), ExperimentAborted);
}

TEST(RunnerHardening, HardenedReroutesWhenLaunchesAlwaysFail) {
  workloads::KmeansConfig cfg = small_kmeans();
  cfg.iterations = 4;
  workloads::Kmeans wl(cfg);
  RunOptions options = fast_options();
  options.faults.launch_fail_rate = 1.0;
  const auto r = run_experiment(wl, Policy::green_gpu(hardened_params()), options);
  EXPECT_TRUE(r.verified);  // every chunk still executed, via the CPU
  EXPECT_EQ(r.iterations.size(), 4u);
  EXPECT_EQ(r.degraded_iterations, 4u);
  bool saw_reroute = false;
  for (const auto& e : r.fault_events) {
    if (e.outcome == sim::FaultOutcome::kRerouted) saw_reroute = true;
  }
  EXPECT_TRUE(saw_reroute);
}

TEST(RunnerHardening, ZeroRateConfigIsBitIdenticalToNoConfig) {
  workloads::Kmeans wl(small_kmeans());
  const auto base = run_experiment(wl, Policy::green_gpu(), fast_options());
  RunOptions options = fast_options();
  options.faults = sim::FaultConfig{};  // explicit all-zero config
  const auto zero = run_experiment(wl, Policy::green_gpu(), options);
  EXPECT_EQ(base.exec_time.get(), zero.exec_time.get());
  EXPECT_EQ(base.gpu_energy.get(), zero.gpu_energy.get());
  EXPECT_EQ(base.cpu_energy.get(), zero.cpu_energy.get());
  EXPECT_TRUE(zero.fault_events.empty());
}

TEST(RunnerHardening, HardeningAloneIsBitIdenticalOnAPerfectPlatform) {
  // With no faults injected, enabling every hardening path must not change
  // a single bit of the trajectory: the guarded reads, checked writes and
  // admission checks all collapse to the original arithmetic.
  workloads::Kmeans wl(small_kmeans());
  const auto base = run_experiment(wl, Policy::green_gpu(), fast_options());
  const auto hard =
      run_experiment(wl, Policy::green_gpu(hardened_params()), fast_options());
  EXPECT_EQ(base.exec_time.get(), hard.exec_time.get());
  EXPECT_EQ(base.gpu_energy.get(), hard.gpu_energy.get());
  EXPECT_EQ(base.cpu_energy.get(), hard.cpu_energy.get());
  EXPECT_EQ(base.final_ratio, hard.final_ratio);
}

TEST(RunnerHardening, FaultScheduleIsIdenticalAcrossPoolSizes) {
  workloads::Kmeans wl(small_kmeans());
  RunOptions a = fast_options();
  a.pool_workers = 1;
  a.faults = sim::FaultConfig::uniform(0.10);
  RunOptions b = fast_options();
  b.pool_workers = 4;
  b.faults = sim::FaultConfig::uniform(0.10);
  const auto ra = run_experiment(wl, Policy::green_gpu(hardened_params()), a);
  const auto rb = run_experiment(wl, Policy::green_gpu(hardened_params()), b);
  EXPECT_EQ(ra.exec_time.get(), rb.exec_time.get());
  EXPECT_EQ(ra.gpu_energy.get(), rb.gpu_energy.get());
  EXPECT_EQ(ra.cpu_energy.get(), rb.cpu_energy.get());
  ASSERT_EQ(ra.fault_events.size(), rb.fault_events.size());
  for (std::size_t i = 0; i < ra.fault_events.size(); ++i) {
    EXPECT_EQ(ra.fault_events[i].time.get(), rb.fault_events[i].time.get());
    EXPECT_EQ(ra.fault_events[i].outcome, rb.fault_events[i].outcome);
    EXPECT_EQ(ra.fault_events[i].channel, rb.fault_events[i].channel);
  }
}

TEST(RunnerHardening, SameSeedReproducesExactly) {
  workloads::Kmeans wl(small_kmeans());
  RunOptions options = fast_options();
  options.faults = sim::FaultConfig::uniform(0.10, 777);
  const auto r1 = run_experiment(wl, Policy::green_gpu(hardened_params()), options);
  const auto r2 = run_experiment(wl, Policy::green_gpu(hardened_params()), options);
  EXPECT_EQ(r1.exec_time.get(), r2.exec_time.get());
  EXPECT_EQ(r1.gpu_energy.get(), r2.gpu_energy.get());
  EXPECT_EQ(r1.fault_events.size(), r2.fault_events.size());
  EXPECT_EQ(r1.degraded_iterations, r2.degraded_iterations);
}

TEST(RunnerHardening, IterationRecordsCountFaultsAndDegradation) {
  workloads::Kmeans wl(small_kmeans());
  RunOptions options = fast_options();
  options.faults = sim::FaultConfig::uniform(0.20);
  const auto r = run_experiment(wl, Policy::green_gpu(hardened_params()), options);
  std::size_t recorded = 0;
  std::size_t degraded = 0;
  for (const auto& it : r.iterations) {
    recorded += it.fault_events;
    if (it.degraded) ++degraded;
  }
  EXPECT_GT(recorded, 0u);
  EXPECT_EQ(degraded, r.degraded_iterations);
}

}  // namespace
}  // namespace gg::greengpu
