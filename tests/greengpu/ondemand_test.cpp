#include "src/greengpu/cpu_governor.h"

#include <gtest/gtest.h>

namespace gg::greengpu {
namespace {

using namespace gg::literals;

class OndemandTest : public ::testing::Test {
 protected:
  OndemandTest() : governor_(platform_, OndemandParams{}) {}

  void busy_for(Seconds t) {
    sim::CpuWork w;
    w.units = 1.0;
    w.overhead_per_unit = t;
    platform_.cpu().submit(w, {});
  }

  sim::Platform platform_;
  OndemandGovernor governor_;
};

TEST_F(OndemandTest, HighLoadJumpsToPeak) {
  // Start from a low P-state with a fully busy window.
  platform_.cpu().set_level(3);
  busy_for(1_s);
  platform_.queue().run_until(0.1_s);
  const GovernorDecision d = governor_.step(platform_.now());
  EXPECT_GT(d.util, 0.8);
  EXPECT_EQ(d.level, 0u);  // straight to the highest frequency
  EXPECT_EQ(platform_.cpu().level(), 0u);
}

TEST_F(OndemandTest, IdleStepsDownOneLevelAtATime) {
  platform_.queue().run_until(0.1_s);
  EXPECT_EQ(governor_.step(platform_.now()).level, 1u);
  platform_.queue().run_until(0.2_s);
  EXPECT_EQ(governor_.step(platform_.now()).level, 2u);
  platform_.queue().run_until(0.3_s);
  EXPECT_EQ(governor_.step(platform_.now()).level, 3u);
  // Clamps at the lowest level.
  platform_.queue().run_until(0.4_s);
  EXPECT_EQ(governor_.step(platform_.now()).level, 3u);
}

TEST_F(OndemandTest, MidUtilizationHoldsLevel) {
  platform_.cpu().set_level(1);
  // Busy half of the window on both cores -> utilization 0.5 between the
  // thresholds: no change.
  busy_for(0.05_s);
  platform_.queue().run_until(0.1_s);
  const GovernorDecision d = governor_.step(platform_.now());
  EXPECT_NEAR(d.util, 0.5, 0.01);
  EXPECT_EQ(d.level, 1u);
}

TEST_F(OndemandTest, SpinDefeatsThrottling) {
  // The paper's Section VII-A observation: the synchronous-wait spin keeps
  // one core saturated, so package utilization never falls below the
  // down-threshold and ondemand never throttles while the GPU computes.
  platform_.cpu().set_spinning(true);
  for (int k = 1; k <= 20; ++k) {
    platform_.queue().run_until(Seconds{0.1 * k});
    const GovernorDecision d = governor_.step(platform_.now());
    EXPECT_EQ(d.level, 0u);
    EXPECT_GT(d.util, 0.99);
  }
}

TEST_F(OndemandTest, PeriodicAttachDrivesDecisions) {
  governor_.attach();
  platform_.queue().run_until(1.05_s);
  governor_.detach();
  EXPECT_EQ(governor_.steps(), 10u);  // 100 ms interval
  // Idle the whole time: must have walked down to the floor.
  EXPECT_EQ(platform_.cpu().level(), 3u);
  // Detach stops further steps.
  platform_.queue().run_until(2_s);
  EXPECT_EQ(governor_.steps(), 10u);
}

TEST_F(OndemandTest, ReactsToLoadAfterIdle) {
  governor_.attach();
  platform_.queue().run_until(0.55_s);  // walk down to the floor
  EXPECT_EQ(platform_.cpu().level(), 3u);
  busy_for(0.5_s);
  platform_.queue().run_until(0.7_s);
  EXPECT_EQ(platform_.cpu().level(), 0u);  // jumped back to peak
  governor_.detach();
}

TEST_F(OndemandTest, DecisionsRecorded) {
  governor_.step(platform_.now());
  governor_.step(platform_.now());
  EXPECT_EQ(governor_.decisions().size(), 2u);
}

}  // namespace
}  // namespace gg::greengpu
