#include "src/greengpu/division.h"

#include <gtest/gtest.h>

namespace gg::greengpu {
namespace {

using namespace gg::literals;

DivisionParams default_params() { return DivisionParams{}; }

TEST(DivisionStep, CpuSlowerShedsWork) {
  const auto d = division_step(default_params(), 0.30, 20_s, 10_s);
  EXPECT_EQ(d.action, DivisionAction::kDecreaseCpu);
  EXPECT_NEAR(d.ratio, 0.25, 1e-12);
}

TEST(DivisionStep, CpuFasterGainsWork) {
  const auto d = division_step(default_params(), 0.30, 5_s, 10_s);
  EXPECT_EQ(d.action, DivisionAction::kIncreaseCpu);
  EXPECT_NEAR(d.ratio, 0.35, 1e-12);
}

TEST(DivisionStep, EqualTimesHold) {
  const auto d = division_step(default_params(), 0.30, 10_s, 10_s);
  EXPECT_EQ(d.action, DivisionAction::kHold);
  EXPECT_NEAR(d.ratio, 0.30, 1e-12);
}

TEST(DivisionStep, NearEqualTimesHoldWithinTolerance) {
  const auto d = division_step(default_params(), 0.30, Seconds{10.0}, Seconds{10.0001});
  EXPECT_EQ(d.action, DivisionAction::kHold);
}

TEST(DivisionStep, HoldAtLowerBound) {
  const auto d = division_step(default_params(), 0.0, 0_s, 10_s);
  // tc = 0 < tg: wants to increase — allowed.
  EXPECT_EQ(d.action, DivisionAction::kIncreaseCpu);
  EXPECT_NEAR(d.ratio, 0.05, 1e-12);
  // At the bound in the other direction it holds.
  const auto d2 = division_step(default_params(), 0.0, 10_s, 1_s);
  EXPECT_EQ(d2.action, DivisionAction::kHoldAtBound);
}

TEST(DivisionStep, ClampsAtMaxRatio) {
  DivisionParams p;
  p.max_ratio = 0.95;
  const auto d = division_step(p, 0.95, 1_s, 10_s);
  EXPECT_EQ(d.action, DivisionAction::kHoldAtBound);
  EXPECT_NEAR(d.ratio, 0.95, 1e-12);
}

TEST(DivisionStep, PaperSafeguardExample) {
  // Section V-B worked example: tc < tg at 10/90; moving to 15/85 predicts
  // tc' = (15/10)tc and tg' = (85/90)tg.  With tc = 9, tg = 10: tc' = 13.5 >
  // tg' = 9.44 — ordering flips, so the division holds.
  const auto d = division_step(default_params(), 0.10, 9_s, 10_s);
  EXPECT_EQ(d.action, DivisionAction::kHoldSafeguard);
  EXPECT_NEAR(d.ratio, 0.10, 1e-12);
}

TEST(DivisionStep, SafeguardAllowsNonOscillatingMove) {
  // tc = 2, tg = 10 at 10/90: moving to 15/85 predicts tc' = 3 < tg' = 9.44;
  // no flip, so the move proceeds.
  const auto d = division_step(default_params(), 0.10, 2_s, 10_s);
  EXPECT_EQ(d.action, DivisionAction::kIncreaseCpu);
  EXPECT_NEAR(d.ratio, 0.15, 1e-12);
}

TEST(DivisionStep, SafeguardSymmetricOnDecrease) {
  // CPU slower at 0.20; stepping to 0.15 would flip the ordering.
  // tc = 10, tg = 9.4: tc' = 7.5, tg' = 9.99 -> flip -> hold.
  const auto d = division_step(default_params(), 0.20, 10_s, Seconds{9.4});
  EXPECT_EQ(d.action, DivisionAction::kHoldSafeguard);
}

TEST(DivisionStep, SafeguardDisabledMovesAnyway) {
  DivisionParams p;
  p.safeguard = false;
  const auto d = division_step(p, 0.10, 9_s, 10_s);
  EXPECT_EQ(d.action, DivisionAction::kIncreaseCpu);
}

TEST(DivisionStep, NegativeTimesThrow) {
  EXPECT_THROW((void)division_step(default_params(), 0.3, Seconds{-1.0}, 1_s),
               std::invalid_argument);
}

TEST(DivisionStep, ZeroCpuTimeGainsWork) {
  // A zero-time side is an extreme imbalance, not a division-by-zero trap.
  const auto d = division_step(default_params(), 0.30, 0_s, 10_s);
  EXPECT_EQ(d.action, DivisionAction::kIncreaseCpu);
  EXPECT_NEAR(d.ratio, 0.35, 1e-12);
}

TEST(DivisionStep, ZeroGpuTimeShedsWork) {
  const auto d = division_step(default_params(), 0.30, 10_s, 0_s);
  EXPECT_EQ(d.action, DivisionAction::kDecreaseCpu);
  EXPECT_NEAR(d.ratio, 0.25, 1e-12);
}

TEST(DivisionStep, BothTimesZeroHold) {
  const auto d = division_step(default_params(), 0.30, 0_s, 0_s);
  EXPECT_EQ(d.action, DivisionAction::kHold);
  EXPECT_NEAR(d.ratio, 0.30, 1e-12);
}

TEST(DivisionStep, PinnedAtFullCpuHoldsAtBound) {
  DivisionParams p;
  p.max_ratio = 1.0;
  const auto d = division_step(p, 1.0, 1_s, 10_s);
  EXPECT_EQ(d.action, DivisionAction::kHoldAtBound);
  EXPECT_NEAR(d.ratio, 1.0, 1e-12);
}

TEST(DivisionStep, PinnedAtZeroCpuHoldsAtBound) {
  const auto d = division_step(default_params(), 0.0, 10_s, 0_s);
  EXPECT_EQ(d.action, DivisionAction::kHoldAtBound);
  EXPECT_NEAR(d.ratio, 0.0, 1e-12);
}

TEST(DivisionController, ValidatesParams) {
  DivisionParams p;
  p.step = 0.0;
  EXPECT_THROW(DivisionController{p}, std::invalid_argument);
  p = DivisionParams{};
  p.initial_ratio = 0.99;
  EXPECT_THROW(DivisionController{p}, std::invalid_argument);
  p = DivisionParams{};
  p.min_ratio = 0.5;
  p.max_ratio = 0.4;
  EXPECT_THROW(DivisionController{p}, std::invalid_argument);
}

TEST(DivisionController, StartsAtInitialRatio) {
  DivisionController c(default_params());
  EXPECT_DOUBLE_EQ(c.ratio(), 0.30);
}

/// Simulated proportional system: tc = ratio * cpu_cost, tg = (1-ratio) *
/// gpu_cost.  The controller must converge near the balance point for any
/// cost ratio and initial ratio.
class ConvergenceTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ConvergenceTest, ConvergesNearBalancePoint) {
  const double cpu_cost = std::get<0>(GetParam());   // slowdown factor
  const double initial = std::get<1>(GetParam());
  DivisionParams p;
  p.initial_ratio = initial;
  DivisionController c(p);
  for (int iter = 0; iter < 60; ++iter) {
    const double r = c.ratio();
    c.update(Seconds{r * cpu_cost}, Seconds{(1.0 - r) * 1.0});
  }
  EXPECT_TRUE(c.converged());
  // Balance point r* = 1 / (1 + cpu_cost); the converged ratio must be
  // within one step of it.
  const double r_star = 1.0 / (1.0 + cpu_cost);
  EXPECT_NEAR(c.ratio(), r_star, p.step + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    CostAndStartSweep, ConvergenceTest,
    ::testing::Combine(::testing::Values(1.0, 2.0, 4.0, 6.0, 9.0, 19.0),
                       ::testing::Values(0.0, 0.05, 0.30, 0.50, 0.80)));

TEST(DivisionController, NoOscillationAfterConvergence) {
  DivisionController c(default_params());
  const double cpu_cost = 6.0;
  std::vector<double> ratios;
  for (int iter = 0; iter < 40; ++iter) {
    const double r = c.ratio();
    ratios.push_back(r);
    c.update(Seconds{r * cpu_cost}, Seconds{(1.0 - r) * 1.0});
  }
  // Once converged, the ratio must never change again (the safeguard's
  // purpose: no 2-cycle between grid points).
  const double final_r = ratios.back();
  bool settled = false;
  for (double r : ratios) {
    if (r == final_r) settled = true;
    if (settled) {
      EXPECT_DOUBLE_EQ(r, final_r);
    }
  }
}

TEST(DivisionController, WithoutSafeguardOscillates) {
  DivisionParams p;
  p.safeguard = false;
  DivisionController c(p);
  // Optimum between grid points: cpu_cost = 6 -> r* = 1/7 ~ 0.143.
  std::vector<double> ratios;
  for (int iter = 0; iter < 40; ++iter) {
    const double r = c.ratio();
    ratios.push_back(r);
    c.update(Seconds{r * 6.0}, Seconds{(1.0 - r) * 1.0});
  }
  // The tail must alternate between 0.10 and 0.15.
  const std::size_t n = ratios.size();
  EXPECT_NE(ratios[n - 1], ratios[n - 2]);
  EXPECT_EQ(ratios[n - 1], ratios[n - 3]);
}

TEST(DivisionController, HistoryRecordsDecisions) {
  DivisionController c(default_params());
  c.update(20_s, 10_s);
  c.update(1_s, 10_s);
  ASSERT_EQ(c.history().size(), 2u);
  EXPECT_EQ(c.history()[0].action, DivisionAction::kDecreaseCpu);
  EXPECT_EQ(c.history()[1].action, DivisionAction::kIncreaseCpu);
}

TEST(DivisionController, DegradedFeedbackHoldsWithoutLearning) {
  DivisionController c(default_params());
  const double r0 = c.ratio();
  IterationFeedback fb;
  fb.cpu_time = 20_s;  // would normally shed CPU work...
  fb.gpu_time = 1_s;
  fb.degraded = true;  // ...but the times are fault noise
  const auto d = c.update(fb);
  EXPECT_EQ(d.action, DivisionAction::kHoldDegraded);
  EXPECT_DOUBLE_EQ(d.ratio, r0);
  EXPECT_DOUBLE_EQ(c.ratio(), r0);
  EXPECT_FALSE(c.converged(1));  // no evidence either way
  ASSERT_EQ(c.history().size(), 1u);
  EXPECT_EQ(c.history()[0].action, DivisionAction::kHoldDegraded);
  // The next informative iteration still moves.
  const auto d2 = c.update(IterationFeedback{20_s, 1_s});
  EXPECT_EQ(d2.action, DivisionAction::kDecreaseCpu);
}

TEST(DivisionController, DegradedFeedbackPreservesConvergenceStreak) {
  DivisionController c(default_params());
  c.update(10_s, 10_s);
  c.update(10_s, 10_s);
  ASSERT_TRUE(c.converged(2));
  IterationFeedback fb;
  fb.degraded = true;
  c.update(fb);
  EXPECT_TRUE(c.converged(2));  // a faulted iteration does not reset it
}

TEST(DivisionController, ResetRestoresInitialState) {
  DivisionController c(default_params());
  c.update(20_s, 10_s);
  c.reset();
  EXPECT_DOUBLE_EQ(c.ratio(), 0.30);
  EXPECT_TRUE(c.history().empty());
  EXPECT_FALSE(c.converged());
}

}  // namespace
}  // namespace gg::greengpu
