// Determinism invariants for the asynchronous pipeline workloads: campaign
// reports over kmeans_pipeline/srad_stream must be byte-identical across
// --jobs, across execution engines, under fault injection, and across a
// kill/resume cycle — the same guarantees the Table II suite already has.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "src/greengpu/campaign.h"
#include "src/greengpu/recovery.h"
#include "src/sim/crash.h"
#include "src/workloads/registry.h"

namespace gg::greengpu {
namespace {

using common::KillPoint;

std::filesystem::path test_dir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      (std::string("gg_") + info->test_suite_name() + "_" + info->name());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

CampaignConfig pipeline_config(bool faults) {
  CampaignConfig cfg;
  cfg.workloads = workloads::pipeline_workload_names();
  Policy baseline = Policy::best_performance();
  Policy scaling = Policy::scaling_only();
  if (faults) {
    cfg.options.faults.seed = 4242;
    cfg.options.faults.util_drop_rate = 0.05;
    cfg.options.faults.util_stale_rate = 0.05;
    cfg.options.faults.clock_reject_rate = 0.05;
    baseline.params.hardening.enabled = true;
    scaling.params.hardening.enabled = true;
  }
  cfg.policies = {baseline, scaling};
  cfg.options.pool_workers = 2;
  return cfg;
}

std::string report(CampaignConfig cfg, CampaignEngine engine, std::size_t jobs) {
  cfg.engine = engine;
  cfg.jobs = jobs;
  const CampaignResult r = run_campaign(cfg);
  std::ostringstream csv;
  std::ostringstream json;
  write_campaign_csv(csv, r);
  write_campaign_json(json, r);
  return csv.str() + "\n" + json.str();
}

TEST(PipelineIdentity, ReportsByteIdenticalAcrossJobsAndEngines) {
  for (const bool faults : {false, true}) {
    SCOPED_TRACE(faults ? "faults" : "fault-free");
    const CampaignConfig cfg = pipeline_config(faults);
    const std::string golden = report(cfg, CampaignEngine::kScalar, 1);
    EXPECT_EQ(report(cfg, CampaignEngine::kScalar, 2), golden);
    EXPECT_EQ(report(cfg, CampaignEngine::kScalar, 4), golden);
    EXPECT_EQ(report(cfg, CampaignEngine::kBatch, 1), golden);
    EXPECT_EQ(report(cfg, CampaignEngine::kBatch, 4), golden);
  }
}

TEST(PipelineIdentity, AllCellsVerify) {
  const CampaignResult r = run_campaign(pipeline_config(false));
  EXPECT_TRUE(r.all_verified());
  EXPECT_EQ(r.cells.size(), 4u);
}

TEST(PipelineIdentity, KillAndResumeIsByteIdentical) {
  const std::filesystem::path dir = test_dir();
  std::size_t case_index = 0;
  for (const bool faults : {false, true}) {
    const CampaignConfig cfg = pipeline_config(faults);
    const std::string golden = report(cfg, CampaignEngine::kScalar, 1);
    for (const KillPoint point : {KillPoint::kMidCampaignCell, KillPoint::kMidCheckpoint}) {
      SCOPED_TRACE(std::string("kill-point ") + std::string(common::to_string(point)) +
                   " faults=" + (faults ? "on" : "off"));
      CheckpointOptions ckpt;
      ckpt.dir = (dir / ("case-" + std::to_string(case_index++))).string();
      sim::CrashInjector crash(point, 1, common::CrashMode::kThrow);
      RecoverySupervisor supervisor(cfg, ckpt);
      const CampaignResult resumed = supervisor.run();
      EXPECT_TRUE(crash.fired());
      std::ostringstream csv;
      std::ostringstream json;
      write_campaign_csv(csv, resumed);
      write_campaign_json(json, resumed);
      EXPECT_EQ(csv.str() + "\n" + json.str(), golden);
    }
  }
}

}  // namespace
}  // namespace gg::greengpu
