#include "src/greengpu/multi_division.h"

#include <gtest/gtest.h>

#include <numeric>

namespace gg::greengpu {
namespace {

using namespace gg::literals;

/// Proportional multi-device system: slot i finishes its share in
/// share_i * cost_i (cost = seconds per full iteration on that slot alone).
std::vector<Seconds> run_system(const std::vector<double>& shares,
                                const std::vector<double>& costs) {
  std::vector<Seconds> times(shares.size());
  for (std::size_t i = 0; i < shares.size(); ++i) {
    times[i] = Seconds{shares[i] * costs[i]};
  }
  return times;
}

double spread(const std::vector<Seconds>& times) {
  double lo = 1e300, hi = 0.0;
  for (const Seconds t : times) {
    if (t.get() <= 0.0) continue;
    lo = std::min(lo, t.get());
    hi = std::max(hi, t.get());
  }
  return hi - lo;
}

TEST(Waterfill, SharesProportionalToRates) {
  const auto s = waterfill_shares({1.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s[0], 0.125);
  EXPECT_DOUBLE_EQ(s[1], 0.375);
  EXPECT_DOUBLE_EQ(s[2], 0.5);
}

TEST(Waterfill, ZeroRatesGiveZeroShares) {
  const auto s = waterfill_shares({0.0, 0.0});
  EXPECT_EQ(s[0], 0.0);
  EXPECT_EQ(s[1], 0.0);
}

TEST(MultiStepDivider, RequiresAtLeastTwoSlots) {
  EXPECT_THROW(MultiStepDivider(1), std::invalid_argument);
}

TEST(MultiStepDivider, InitialSharesSumToOne) {
  MultiStepDivider d(4);
  const auto& s = d.shares();
  EXPECT_NEAR(std::accumulate(s.begin(), s.end(), 0.0), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(s[0], 0.10);
  EXPECT_DOUBLE_EQ(s[1], 0.30);
}

TEST(MultiStepDivider, MovesWorkFromSlowestToFastest) {
  MultiStepDivider d(3);
  // CPU is 6x slower than either GPU.
  const std::vector<double> costs{6.0, 1.0, 1.0};
  const auto before = d.shares();
  d.update(run_system(before, costs));
  const auto& after = d.shares();
  EXPECT_LT(after[0], before[0]);  // slow CPU sheds work
  EXPECT_NEAR(std::accumulate(after.begin(), after.end(), 0.0), 1.0, 1e-12);
}

TEST(MultiStepDivider, BalancesHeterogeneousSlots) {
  MultiStepDivider d(3);
  const std::vector<double> costs{6.0, 1.0, 2.0};  // GPU1 twice as fast as GPU0...
  for (int i = 0; i < 60; ++i) d.update(run_system(d.shares(), costs));
  const auto times = run_system(d.shares(), costs);
  // Balanced within ~one step's worth of the makespan.
  double hi = 0.0;
  for (const Seconds t : times) hi = std::max(hi, t.get());
  EXPECT_LE(spread(times), 0.35 * hi);
  EXPECT_TRUE(d.converged());
}

TEST(MultiStepDivider, SharesStayNonNegative) {
  MultiStepDivider d(3);
  const std::vector<double> costs{100.0, 1.0, 1.0};  // hopeless CPU
  for (int i = 0; i < 40; ++i) d.update(run_system(d.shares(), costs));
  for (double s : d.shares()) EXPECT_GE(s, -1e-12);
  EXPECT_LE(d.shares()[0], 0.01);  // CPU share driven to ~0
}

TEST(MultiStepDivider, TimeCountMismatchThrows) {
  MultiStepDivider d(3);
  EXPECT_THROW(d.update({1_s, 2_s}), std::invalid_argument);
}

TEST(MultiStepDivider, ResetRestoresInitial) {
  MultiStepDivider d(3);
  d.update(run_system(d.shares(), {6.0, 1.0, 1.0}));
  d.reset();
  EXPECT_DOUBLE_EQ(d.shares()[0], 0.10);
  EXPECT_DOUBLE_EQ(d.shares()[1], 0.45);
}

TEST(MultiProfilingDivider, ConvergesToAnalyticShares) {
  MultiProfilingDivider d(3);
  const std::vector<double> costs{6.0, 1.0, 1.0};
  for (int i = 0; i < 8; ++i) d.update(run_system(d.shares(), costs));
  // Equal finish: shares proportional to 1/cost: {1/6, 1, 1}/sum = {1/13, 6/13, 6/13}.
  EXPECT_NEAR(d.shares()[0], 1.0 / 13.0, 1e-6);
  EXPECT_NEAR(d.shares()[1], 6.0 / 13.0, 1e-6);
  EXPECT_NEAR(d.shares()[2], 6.0 / 13.0, 1e-6);
  EXPECT_TRUE(d.converged());
}

TEST(MultiProfilingDivider, HandlesHeterogeneousGpus) {
  MultiProfilingDivider d(4);
  const std::vector<double> costs{8.0, 1.0, 2.0, 4.0};
  for (int i = 0; i < 10; ++i) d.update(run_system(d.shares(), costs));
  const auto times = run_system(d.shares(), costs);
  double hi = 0.0;
  for (const Seconds t : times) hi = std::max(hi, t.get());
  EXPECT_LE(spread(times), 0.02 * hi);  // near-perfect balance
}

TEST(MultiProfilingDivider, CpuCapRespected) {
  MultiProfilingParams p;
  p.max_cpu_share = 0.20;
  MultiProfilingDivider d(2, p);
  const std::vector<double> costs{0.5, 1.0};  // CPU twice as fast as the GPU
  for (int i = 0; i < 8; ++i) d.update(run_system(d.shares(), costs));
  EXPECT_LE(d.shares()[0], 0.20 + 1e-9);
  EXPECT_NEAR(d.shares()[0] + d.shares()[1], 1.0, 1e-9);
}

TEST(MultiProfilingDivider, RatesExposed) {
  MultiProfilingDivider d(2);
  d.update(run_system(d.shares(), {6.0, 1.0}));
  const auto rates = d.rates();
  EXPECT_NEAR(rates[0], 1.0 / 6.0, 1e-9);
  EXPECT_NEAR(rates[1], 1.0, 1e-9);
}

TEST(MultiDividerFactory, ProducesBothKinds) {
  EXPECT_EQ(make_multi_divider(MultiDividerKind::kStep, 3)->name(), "multi-step");
  EXPECT_EQ(make_multi_divider(MultiDividerKind::kProfiling, 3)->name(),
            "multi-profiling");
}

}  // namespace
}  // namespace gg::greengpu
