// DecisionRecorder retention modes and their threading through the runner
// and campaign layers.  Retention is pure telemetry: aggregates must stay
// bit-identical across modes.
#include "src/greengpu/telemetry.h"

#include <gtest/gtest.h>

#include "src/greengpu/campaign.h"
#include "src/greengpu/runner.h"

namespace gg::greengpu {
namespace {

TEST(DecisionRecorder, FullModeKeepsEverything) {
  DecisionRecorder<int> r(RecordOptions{RecordMode::kFull, 4});
  for (int i = 0; i < 10; ++i) r.push(i);
  EXPECT_EQ(r.total(), 10u);
  EXPECT_EQ(r.retained(), 10u);
  EXPECT_EQ(r.log().size(), 10u);
  EXPECT_EQ(r.snapshot(), (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(DecisionRecorder, RingModeKeepsTailInArrivalOrder) {
  DecisionRecorder<int> r(RecordOptions{RecordMode::kRing, 4});
  for (int i = 0; i < 3; ++i) r.push(i);
  EXPECT_EQ(r.snapshot(), (std::vector<int>{0, 1, 2}));  // not yet wrapped
  for (int i = 3; i < 11; ++i) r.push(i);
  EXPECT_EQ(r.total(), 11u);
  EXPECT_EQ(r.retained(), 4u);
  EXPECT_EQ(r.snapshot(), (std::vector<int>{7, 8, 9, 10}));
}

TEST(DecisionRecorder, CountersModeKeepsOnlyTheCount) {
  DecisionRecorder<int> r(RecordOptions{RecordMode::kCounters, 4});
  for (int i = 0; i < 1000; ++i) r.push(i);
  EXPECT_EQ(r.total(), 1000u);
  EXPECT_EQ(r.retained(), 0u);
  EXPECT_TRUE(r.snapshot().empty());
}

TEST(DecisionRecorder, TakeMovesRetainedRecordsOut) {
  DecisionRecorder<int> r(RecordOptions{RecordMode::kRing, 3});
  for (int i = 0; i < 5; ++i) r.push(i);
  EXPECT_EQ(r.take(), (std::vector<int>{2, 3, 4}));
  EXPECT_EQ(r.retained(), 0u);
  EXPECT_EQ(r.total(), 5u);  // lifetime count survives the take
}

TEST(DecisionRecorder, ZeroRingCapacityClampsToOne) {
  DecisionRecorder<int> r(RecordOptions{RecordMode::kRing, 0});
  for (int i = 0; i < 4; ++i) r.push(i);
  EXPECT_EQ(r.snapshot(), (std::vector<int>{3}));
}

TEST(RecordMode, StringRoundTrip) {
  EXPECT_EQ(record_mode_from_string("full"), RecordMode::kFull);
  EXPECT_EQ(record_mode_from_string("ring"), RecordMode::kRing);
  EXPECT_EQ(record_mode_from_string("counters"), RecordMode::kCounters);
  EXPECT_EQ(to_string(RecordMode::kRing), "ring");
  EXPECT_THROW((void)record_mode_from_string("verbose"), std::invalid_argument);
}

// --- runner threading ------------------------------------------------------

RunOptions with_mode(RecordMode mode) {
  RunOptions o;
  o.record.mode = mode;
  return o;
}

TEST(RunnerRecord, CountersModeDropsLogsButKeepsAggregatesIdentical) {
  const Policy policy = Policy::green_gpu();
  const ExperimentResult full =
      run_experiment("pathfinder", policy, with_mode(RecordMode::kFull));
  const ExperimentResult counters =
      run_experiment("pathfinder", policy, with_mode(RecordMode::kCounters));

  // Retention changed...
  EXPECT_FALSE(full.iterations.empty());
  EXPECT_FALSE(full.scaler_decisions.empty());
  EXPECT_TRUE(counters.iterations.empty());
  EXPECT_TRUE(counters.scaler_decisions.empty());
  EXPECT_TRUE(counters.governor_decisions.empty());
  // ...counts did not...
  EXPECT_EQ(counters.iteration_count, full.iterations.size());
  EXPECT_EQ(counters.scaler_decision_count, full.scaler_decisions.size());
  EXPECT_EQ(counters.governor_decision_count, full.governor_decisions.size());
  // ...and neither did any physical result (bit-exact).
  EXPECT_EQ(counters.exec_time.get(), full.exec_time.get());
  EXPECT_EQ(counters.gpu_energy.get(), full.gpu_energy.get());
  EXPECT_EQ(counters.cpu_energy.get(), full.cpu_energy.get());
  EXPECT_EQ(counters.final_ratio, full.final_ratio);
  EXPECT_EQ(counters.convergence_iteration, full.convergence_iteration);
}

TEST(RunnerRecord, RingModeRetainsTailOnly) {
  RunOptions o = with_mode(RecordMode::kRing);
  o.record.ring_capacity = 3;
  const ExperimentResult r = run_experiment("pathfinder", Policy::green_gpu(), o);
  ASSERT_GT(r.iteration_count, 3u);
  ASSERT_EQ(r.iterations.size(), 3u);
  // The tail is the *last* iterations, oldest first.
  EXPECT_EQ(r.iterations.back().index, r.iteration_count - 1);
  EXPECT_EQ(r.iterations.front().index, r.iteration_count - 3);
}

TEST(RunnerRecord, FullModeCountsMatchRetention) {
  const ExperimentResult r =
      run_experiment("pathfinder", Policy::green_gpu(), with_mode(RecordMode::kFull));
  EXPECT_EQ(r.iteration_count, r.iterations.size());
  EXPECT_EQ(r.scaler_decision_count, r.scaler_decisions.size());
  EXPECT_EQ(r.governor_decision_count, r.governor_decisions.size());
  EXPECT_EQ(r.fault_event_count, r.fault_events.size());
}

TEST(CampaignRecord, DefaultsToCountersOnly) {
  EXPECT_EQ(CampaignConfig{}.options.record.mode, RecordMode::kCounters);
  EXPECT_EQ(campaign_default_options().record.mode, RecordMode::kCounters);
  // Plain RunOptions keep the seed behaviour (full retention) so tests and
  // single CLI runs see every record.
  EXPECT_EQ(RunOptions{}.record.mode, RecordMode::kFull);
}

}  // namespace
}  // namespace gg::greengpu
