#include "src/greengpu/campaign.h"

#include <gtest/gtest.h>

#include <sstream>
#include <utility>

#include "src/common/csv.h"

namespace gg::greengpu {
namespace {

CampaignConfig small_config() {
  CampaignConfig cfg;
  cfg.workloads = {"pathfinder", "lud"};
  cfg.policies = {Policy::best_performance(), Policy::scaling_only()};
  cfg.options.pool_workers = 2;
  return cfg;
}

TEST(Campaign, RunsFullMatrix) {
  const CampaignResult r = run_campaign(small_config());
  EXPECT_EQ(r.workloads.size(), 2u);
  EXPECT_EQ(r.policy_names.size(), 2u);
  EXPECT_EQ(r.cells.size(), 4u);
  EXPECT_TRUE(r.all_verified());
}

TEST(Campaign, BaselineSavingsAreZero) {
  const CampaignResult r = run_campaign(small_config());
  for (std::size_t w = 0; w < r.workloads.size(); ++w) {
    EXPECT_DOUBLE_EQ(r.cell(w, 0).energy_saving, 0.0);
    EXPECT_DOUBLE_EQ(r.cell(w, 0).time_delta, 0.0);
  }
}

TEST(Campaign, ScalingSavesOnLowUtilizationWorkloads) {
  const CampaignResult r = run_campaign(small_config());
  // pathfinder and lud are the scaling tier's best cases.
  EXPECT_GT(r.cell(0, 1).energy_saving, 0.0);
  EXPECT_GT(r.cell(1, 1).energy_saving, 0.0);
  EXPECT_GT(r.mean_saving(1), 0.02);
}

TEST(Campaign, ProgressCallbackCounts) {
  std::size_t calls = 0;
  std::size_t last_completed = 0;
  (void)run_campaign(small_config(), [&](const std::string&, const std::string&,
                                         std::size_t completed, std::size_t total) {
    ++calls;
    EXPECT_EQ(total, 4u);
    EXPECT_GT(completed, last_completed);
    last_completed = completed;
  });
  EXPECT_EQ(calls, 4u);
}

TEST(Campaign, CellIndexValidation) {
  const CampaignResult r = run_campaign(small_config());
  EXPECT_THROW(r.cell(2, 0), std::out_of_range);
  EXPECT_THROW(r.cell(0, 2), std::out_of_range);
}

TEST(Campaign, CsvReportWellFormed) {
  const CampaignResult r = run_campaign(small_config());
  std::ostringstream os;
  write_campaign_csv(os, r);
  std::istringstream is(os.str());
  std::string line;
  std::getline(is, line);
  const auto header = csv_parse_line(line);
  EXPECT_EQ(header.front(), "workload");
  int rows = 0;
  while (std::getline(is, line)) {
    const auto fields = csv_parse_line(line);
    EXPECT_EQ(fields.size(), header.size());
    ++rows;
  }
  EXPECT_EQ(rows, 4);
}

TEST(Campaign, JsonReportContainsRunsAndSummary) {
  const CampaignResult r = run_campaign(small_config());
  std::ostringstream os;
  write_campaign_json(os, r);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"runs\":["), std::string::npos);
  EXPECT_NE(json.find("\"policy_summary\":["), std::string::npos);
  EXPECT_NE(json.find("\"all_verified\":true"), std::string::npos);
  // Both workloads appear.
  EXPECT_NE(json.find("\"pathfinder\""), std::string::npos);
  EXPECT_NE(json.find("\"lud\""), std::string::npos);
  // Rough structural sanity: balanced braces/brackets.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Campaign, MarkdownReportWellFormed) {
  const CampaignResult r = run_campaign(small_config());
  std::ostringstream os;
  write_campaign_markdown(os, r);
  const std::string md = os.str();
  std::istringstream is(md);
  std::string line;
  int rows = 0;
  std::size_t pipes = 0;
  while (std::getline(is, line)) {
    ++rows;
    const std::size_t n = std::count(line.begin(), line.end(), '|');
    if (rows == 1) pipes = n;
    EXPECT_EQ(n, pipes) << "row " << rows << ": " << line;  // rectangular table
  }
  // Header + separator + 2 workloads + mean row.
  EXPECT_EQ(rows, 5);
  EXPECT_NE(md.find("| pathfinder |"), std::string::npos);
  EXPECT_NE(md.find("**mean saving**"), std::string::npos);
}

TEST(Campaign, DefaultsCoverFullSuiteAndFourPolicies) {
  // Only check the configuration expansion, not a full (expensive) run.
  CampaignConfig cfg;
  cfg.workloads = {"lud"};  // keep the run small
  cfg.options.pool_workers = 2;
  const CampaignResult r = run_campaign(cfg);
  ASSERT_EQ(r.policy_names.size(), 4u);
  EXPECT_EQ(r.policy_names[0], "best-performance");
  EXPECT_EQ(r.policy_names[3], "greengpu");
}

// --- parallel engine determinism -----------------------------------------

/// CSV + JSON reports for the config at a given worker count.
std::pair<std::string, std::string> reports(CampaignConfig cfg, std::size_t jobs) {
  cfg.jobs = jobs;
  const CampaignResult r = run_campaign(cfg);
  std::ostringstream csv, json;
  write_campaign_csv(csv, r);
  write_campaign_json(json, r);
  return {csv.str(), json.str()};
}

/// Fault channels that perturb controller inputs without aborting runs.
CampaignConfig faulty_config() {
  CampaignConfig cfg = small_config();
  cfg.options.faults.seed = 1234;
  cfg.options.faults.util_drop_rate = 0.05;
  cfg.options.faults.util_stale_rate = 0.05;
  cfg.options.faults.util_corrupt_rate = 0.02;
  cfg.options.faults.clock_reject_rate = 0.05;
  return cfg;
}

TEST(CampaignParallel, ReportsByteIdenticalAcrossJobs) {
  const auto serial = reports(small_config(), 1);
  EXPECT_EQ(serial, reports(small_config(), 2));
  EXPECT_EQ(serial, reports(small_config(), 8));
}

TEST(CampaignParallel, ReportsByteIdenticalAcrossJobsUnderFaultInjection) {
  const auto serial = reports(faulty_config(), 1);
  EXPECT_EQ(serial, reports(faulty_config(), 2));
  EXPECT_EQ(serial, reports(faulty_config(), 8));
}

TEST(CampaignParallel, FaultInjectionActuallyPerturbsCells) {
  // Guard the test above against vacuity: the fault channels must be live.
  const CampaignResult r = run_campaign(faulty_config());
  std::size_t events = 0;
  // Campaigns default to counters-only retention, so the retained
  // fault_events vectors are empty; the exact count survives.
  for (const auto& cell : r.cells) {
    events += cell.result.fault_event_count;
    EXPECT_TRUE(cell.result.fault_events.empty());
    EXPECT_TRUE(cell.result.iterations.empty());
  }
  EXPECT_GT(events, 0u);
}

TEST(CampaignParallel, CellSeedForkDependsOnIndexOnly) {
  EXPECT_EQ(campaign_cell_seed(42, 3), campaign_cell_seed(42, 3));
  EXPECT_NE(campaign_cell_seed(42, 0), campaign_cell_seed(42, 1));
  EXPECT_NE(campaign_cell_seed(42, 0), campaign_cell_seed(43, 0));
}

TEST(CampaignParallel, ProgressStaysMonotonicWithWorkers) {
  CampaignConfig cfg = small_config();
  cfg.jobs = 4;
  std::size_t calls = 0;
  std::size_t last_completed = 0;
  (void)run_campaign(cfg, [&](const std::string&, const std::string&,
                              std::size_t completed, std::size_t total) {
    ++calls;
    EXPECT_EQ(total, 4u);
    EXPECT_GT(completed, last_completed);
    last_completed = completed;
  });
  EXPECT_EQ(calls, 4u);
  EXPECT_EQ(last_completed, 4u);
}

TEST(CampaignParallel, JobsZeroUsesAllCoresAndStaysDeterministic) {
  const auto serial = reports(small_config(), 1);
  EXPECT_EQ(serial, reports(small_config(), 0));
}

}  // namespace
}  // namespace gg::greengpu
