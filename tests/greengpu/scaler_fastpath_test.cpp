// Equivalence suite for the scaler fast path: the quantized loss tables,
// the fused weight updates (both table variants) and the full Algorithm 1
// step must be *bit-identical* to the straight-line reference — with the
// fault layer off and on.
#include "src/greengpu/wma_scaler.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/greengpu/loss.h"
#include "src/greengpu/runner.h"
#include "src/greengpu/weight_table.h"
#include "src/sim/dvfs.h"

namespace gg::greengpu {
namespace {

// --- quantized loss tables -------------------------------------------------

TEST(QuantizedLossTable, EveryRowMatchesComponentLossBitExactly) {
  for (const auto& table : {sim::geforce8800_core_table(), sim::geforce8800_memory_table()}) {
    const auto umean = umean_table(table);
    const QuantizedLossTable q(umean, 0.15, 0.3);
    for (unsigned pct = 0; pct <= 100; ++pct) {
      for (std::size_t i = 0; i < umean.size(); ++i) {
        const double want =
            0.3 * component_loss(static_cast<double>(pct) / 100.0, umean[i], 0.15);
        EXPECT_EQ(q.at(pct, i), want) << "pct=" << pct << " level=" << i;
      }
    }
  }
}

TEST(QuantizedLossTable, ZeroPercentRowIsPureEnergyLoss) {
  const std::vector<double> umean{0.0, 0.25, 0.5, 0.75, 1.0};
  const double alpha = 0.15;
  const QuantizedLossTable q(umean, alpha);
  // u = 0: every level wastes exactly its umean worth of capacity.
  for (std::size_t i = 0; i < umean.size(); ++i) {
    EXPECT_EQ(q.at(0, i), alpha * umean[i]);
  }
}

TEST(QuantizedLossTable, BoundaryUmeanRowHasZeroLossAtItsLevel) {
  // When the sampled percent lands exactly on a level's umean, that level's
  // loss is exactly zero (raw_loss yields 0/0 at u == umean).
  const std::vector<double> umean{0.0, 0.25, 0.5, 0.75, 1.0};
  const QuantizedLossTable q(umean, 0.15);
  EXPECT_EQ(q.at(0, 0), 0.0);
  EXPECT_EQ(q.at(25, 1), 0.0);
  EXPECT_EQ(q.at(50, 2), 0.0);
  EXPECT_EQ(q.at(75, 3), 0.0);
  EXPECT_EQ(q.at(100, 4), 0.0);
}

TEST(QuantizedLossTable, HundredPercentRowIsPurePerformanceLoss) {
  const std::vector<double> umean{0.0, 0.25, 0.5, 0.75, 1.0};
  const double alpha = 0.15;
  const QuantizedLossTable q(umean, alpha);
  for (std::size_t i = 0; i < umean.size(); ++i) {
    EXPECT_EQ(q.at(100, i), (1.0 - alpha) * (1.0 - umean[i]));
  }
}

TEST(QuantizedLossTable, CorruptPercentagesClampToHundredRow) {
  // Corrupt NVML samples can exceed 100; component_loss clamps u into [0,1],
  // and the table clamps the row index — same result.
  const auto umean = umean_table(sim::geforce8800_core_table());
  const QuantizedLossTable q(umean, 0.15);
  EXPECT_EQ(q.row(101), q.row(100));
  EXPECT_EQ(q.row(255), q.row(100));
  for (std::size_t i = 0; i < umean.size(); ++i) {
    EXPECT_EQ(q.at(200, i), component_loss(2.0, umean[i], 0.15));
  }
}

TEST(EwmaFilter, AlphaOnePassesSamplesThroughBitExactly) {
  // The fast path uses the quantized rows only when the EWMA pre-filter is
  // off (alpha == 1); this is the identity that makes that exact.
  Ewma f(1.0);
  Rng rng(3);
  for (int k = 0; k < 200; ++k) {
    const double x = static_cast<double>(rng.uniform_int(101)) / 100.0;
    EXPECT_EQ(f.update(x), x);
  }
}

// --- fused weight updates --------------------------------------------------

TEST(WeightTableFused, BitIdenticalToUpdateThenArgmaxOverRandomSequences) {
  Rng rng(7);
  const double phi = 0.3, beta = 0.2, floor = 1e-2;
  WeightTable ref(6, 5);
  WeightTable fast(6, 5);
  std::vector<double> cl(6), ml(5), scl(6), sml(5);
  for (int step = 0; step < 500; ++step) {
    for (auto& x : cl) x = rng.uniform();
    for (auto& x : ml) x = rng.uniform();
    for (std::size_t i = 0; i < cl.size(); ++i) scl[i] = phi * cl[i];
    for (std::size_t j = 0; j < ml.size(); ++j) sml[j] = (1.0 - phi) * ml[j];

    ref.update(cl, ml, phi, beta, floor);
    const PairIndex want = ref.argmax();
    const PairIndex got = fast.update_fused(scl.data(), sml.data(), 1.0 - beta, floor);

    ASSERT_EQ(got, want) << "step " << step;
    for (std::size_t i = 0; i < 6; ++i) {
      for (std::size_t j = 0; j < 5; ++j) {
        ASSERT_EQ(fast.weight(i, j), ref.weight(i, j))
            << "step " << step << " cell (" << i << "," << j << ")";
      }
    }
  }
}

TEST(WeightTableFused, TieBreaksTowardLowerIndicesLikeArgmax) {
  // Zero losses leave every weight at the shared maximum; both paths must
  // pick (0, 0).
  WeightTable fast(4, 4);
  const std::vector<double> zeros(4, 0.0);
  const PairIndex got = fast.update_fused(zeros.data(), zeros.data(), 0.8, 1e-2);
  EXPECT_EQ(got, (PairIndex{0, 0}));
}

TEST(FixedWeightTableFused, BitIdenticalToUpdateThenArgmaxOverRandomSequences) {
  Rng rng(11);
  const double phi = 0.3, beta = 0.2;
  const std::uint32_t one_minus_beta_raw = UQ08::from_double(1.0 - beta).raw();
  FixedWeightTable ref(6, 6);
  FixedWeightTable fast(6, 6);
  std::vector<double> cl(6), ml(6), scl(6), sml(6);
  for (int step = 0; step < 500; ++step) {
    for (auto& x : cl) x = rng.uniform();
    for (auto& x : ml) x = rng.uniform();
    for (std::size_t i = 0; i < cl.size(); ++i) scl[i] = phi * cl[i];
    for (std::size_t j = 0; j < ml.size(); ++j) sml[j] = (1.0 - phi) * ml[j];

    ref.update(cl, ml, phi, beta);
    const PairIndex want = ref.argmax();
    const PairIndex got = fast.update_fused(scl.data(), sml.data(), one_minus_beta_raw);

    ASSERT_EQ(got, want) << "step " << step;
    for (std::size_t i = 0; i < 6; ++i) {
      for (std::size_t j = 0; j < 6; ++j) {
        ASSERT_EQ(fast.weight(i, j).raw(), ref.weight(i, j).raw())
            << "step " << step << " cell (" << i << "," << j << ")";
      }
    }
  }
}

// --- full-stack decision-stream equivalence --------------------------------

ExperimentResult run_with(bool reference, bool faults, double filter_alpha,
                          const std::string& workload) {
  GreenGpuParams params;
  params.wma.reference_impl = reference;
  params.wma.util_filter_alpha = filter_alpha;
  params.hardening.enabled = faults;  // exercise hold/retry paths under faults
  RunOptions options;
  if (faults) {
    options.faults.seed = 99;
    options.faults.util_drop_rate = 0.08;
    options.faults.util_stale_rate = 0.05;
    options.faults.util_corrupt_rate = 0.05;
    options.faults.clock_reject_rate = 0.08;
  }
  return run_experiment(workload, Policy::scaling_only(params), options);
}

void expect_identical_streams(const ExperimentResult& fast, const ExperimentResult& ref) {
  // The decision stream drives the clocks, so stream identity implies the
  // whole simulation replayed identically — assert both layers bit-exactly.
  EXPECT_EQ(fast.exec_time.get(), ref.exec_time.get());
  EXPECT_EQ(fast.gpu_energy.get(), ref.gpu_energy.get());
  EXPECT_EQ(fast.cpu_energy.get(), ref.cpu_energy.get());
  ASSERT_EQ(fast.scaler_decisions.size(), ref.scaler_decisions.size());
  ASSERT_GT(fast.scaler_decisions.size(), 0u);
  for (std::size_t i = 0; i < fast.scaler_decisions.size(); ++i) {
    const ScalerDecision& a = fast.scaler_decisions[i];
    const ScalerDecision& b = ref.scaler_decisions[i];
    ASSERT_EQ(a.time.get(), b.time.get()) << "decision " << i;
    ASSERT_EQ(a.core_util, b.core_util) << "decision " << i;
    ASSERT_EQ(a.mem_util, b.mem_util) << "decision " << i;
    ASSERT_EQ(a.filtered_core_util, b.filtered_core_util) << "decision " << i;
    ASSERT_EQ(a.filtered_mem_util, b.filtered_mem_util) << "decision " << i;
    ASSERT_EQ(a.chosen, b.chosen) << "decision " << i;
    ASSERT_EQ(a.sample_ok, b.sample_ok) << "decision " << i;
    ASSERT_EQ(a.actuation_ok, b.actuation_ok) << "decision " << i;
  }
}

TEST(ScalerFastPath, DecisionStreamMatchesReferenceFaultFree) {
  expect_identical_streams(run_with(false, false, 1.0, "pathfinder"),
                           run_with(true, false, 1.0, "pathfinder"));
}

TEST(ScalerFastPath, DecisionStreamMatchesReferenceOnSecondWorkload) {
  expect_identical_streams(run_with(false, false, 1.0, "lud"),
                           run_with(true, false, 1.0, "lud"));
}

TEST(ScalerFastPath, DecisionStreamMatchesReferenceUnderFaultInjection) {
  const ExperimentResult fast = run_with(false, true, 1.0, "pathfinder");
  const ExperimentResult ref = run_with(true, true, 1.0, "pathfinder");
  // The fault channels must actually fire for this test to mean anything.
  EXPECT_GT(fast.fault_event_count, 0u);
  expect_identical_streams(fast, ref);
}

TEST(ScalerFastPath, DecisionStreamMatchesReferenceWithUtilFilterOn) {
  // alpha < 1 disables the quantized rows; the scratch-row path must still
  // be bit-identical to the reference.
  expect_identical_streams(run_with(false, false, 0.5, "pathfinder"),
                           run_with(true, false, 0.5, "pathfinder"));
}

TEST(ScalerFastPath, FastPathIsTheDefault) {
  EXPECT_FALSE(WmaParams{}.reference_impl);
}

}  // namespace
}  // namespace gg::greengpu
