#include "src/greengpu/batch_engine.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/greengpu/recovery.h"
#include "src/sim/crash.h"

namespace gg::greengpu {
namespace {

using common::KillPoint;

std::filesystem::path test_dir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      (std::string("gg_") + info->test_suite_name() + "_" + info->name());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

CampaignConfig small_config() {
  CampaignConfig cfg;
  cfg.workloads = {"pathfinder", "lud"};
  cfg.policies = {Policy::best_performance(), Policy::scaling_only()};
  cfg.options.pool_workers = 2;
  return cfg;
}

/// Fault channels that perturb controller inputs without aborting runs, so
/// un-hardened policies still finish and verify.
CampaignConfig faulty_config() {
  CampaignConfig cfg = small_config();
  cfg.options.faults.seed = 1234;
  cfg.options.faults.util_drop_rate = 0.05;
  cfg.options.faults.util_stale_rate = 0.05;
  cfg.options.faults.util_corrupt_rate = 0.02;
  cfg.options.faults.clock_reject_rate = 0.05;
  return cfg;
}

/// Fault-seed sweep whose replicates share a warm-up prefix: the batch
/// engine's prefix-fork path engages (stride > 1, warm-up > 0).
CampaignConfig replicate_config() {
  CampaignConfig cfg = faulty_config();
  cfg.workloads = {"lud"};
  cfg.fault_replicates = 3;
  cfg.options.faults_active_from = 4;
  return cfg;
}

/// The full report surface at a given engine/jobs combination.
std::string report(CampaignConfig cfg, CampaignEngine engine, std::size_t jobs) {
  cfg.engine = engine;
  cfg.jobs = jobs;
  const CampaignResult r = run_campaign(cfg);
  std::ostringstream csv;
  std::ostringstream json;
  write_campaign_csv(csv, r);
  write_campaign_json(json, r);
  return csv.str() + "\n" + json.str();
}

TEST(CampaignEngineNames, RoundTripAndRejection) {
  EXPECT_EQ(to_string(CampaignEngine::kScalar), "scalar");
  EXPECT_EQ(to_string(CampaignEngine::kBatch), "batch");
  EXPECT_EQ(campaign_engine_from_string("scalar"), CampaignEngine::kScalar);
  EXPECT_EQ(campaign_engine_from_string("batch"), CampaignEngine::kBatch);
  EXPECT_FALSE(campaign_engine_from_string("vector").has_value());
  EXPECT_FALSE(campaign_engine_from_string("").has_value());
  EXPECT_FALSE(campaign_engine_from_string("Batch").has_value());
}

TEST(CampaignPlanReplicates, ExpansionNamesAndStride) {
  CampaignConfig cfg = replicate_config();
  const CampaignPlan plan = plan_campaign(cfg);
  ASSERT_EQ(plan.policies.size(), 6u);  // 2 policies x 3 seed replicates
  EXPECT_EQ(plan.replicate_stride, 3u);
  EXPECT_EQ(plan.policies[0].name, "best-performance#s0");
  EXPECT_EQ(plan.policies[2].name, "best-performance#s2");
  EXPECT_EQ(plan.policies[3].name, "frequency-scaling#s0");
  // Replicates differ only in name (the seed forks by flat cell index).
  EXPECT_EQ(plan.policies[3].params.hardening.enabled,
            plan.policies[5].params.hardening.enabled);
}

TEST(CampaignPlanReplicates, NoExpansionWithoutFaultsOrBelowTwo) {
  CampaignConfig no_faults = small_config();
  no_faults.fault_replicates = 3;
  EXPECT_EQ(plan_campaign(no_faults).policies.size(), 2u);
  EXPECT_EQ(plan_campaign(no_faults).replicate_stride, 1u);

  CampaignConfig one = faulty_config();
  one.fault_replicates = 1;
  EXPECT_EQ(plan_campaign(one).policies.size(), 2u);
  EXPECT_EQ(plan_campaign(one).replicate_stride, 1u);
}

// --- the headline guarantee: batch == scalar, byte for byte ---------------

TEST(BatchEngine, ReportsMatchScalar) {
  const std::string scalar = report(small_config(), CampaignEngine::kScalar, 1);
  EXPECT_EQ(scalar, report(small_config(), CampaignEngine::kBatch, 1));
  EXPECT_EQ(scalar, report(small_config(), CampaignEngine::kBatch, 4));
}

TEST(BatchEngine, ReportsMatchScalarUnderFaultInjection) {
  const std::string scalar = report(faulty_config(), CampaignEngine::kScalar, 1);
  EXPECT_EQ(scalar, report(faulty_config(), CampaignEngine::kBatch, 1));
  EXPECT_EQ(scalar, report(faulty_config(), CampaignEngine::kBatch, 4));
}

TEST(BatchEngine, ForkedReplicatesMatchColdStartedScalarCells) {
  // Scalar runs every replicate cold (full warm-up simulated per cell);
  // batch simulates the warm-up once per group and forks the rest from the
  // snapshot.  Identical bytes prove forked cell == cold-started cell.
  const std::string scalar = report(replicate_config(), CampaignEngine::kScalar, 1);
  EXPECT_EQ(scalar, report(replicate_config(), CampaignEngine::kBatch, 1));
  EXPECT_EQ(scalar, report(replicate_config(), CampaignEngine::kBatch, 4));
}

TEST(BatchEngine, ReplicatesDrawDistinctFaultSchedules) {
  // Guard the identity tests against vacuity: the replicates must actually
  // differ (distinct forked seeds -> distinct fault event streams).
  CampaignConfig cfg = replicate_config();
  cfg.engine = CampaignEngine::kBatch;
  const CampaignResult r = run_campaign(cfg);
  ASSERT_EQ(r.cells.size(), 6u);
  // Cells 3..5 are frequency-scaling#s0..2 — the scaling tier samples
  // utilization and requests clocks, so the benign channels actually fire
  // there (best-performance never touches either, so its replicates are
  // legitimately identical).
  bool any_difference = false;
  for (std::size_t p = 4; p < 6; ++p) {
    if (r.cells[p].result.fault_event_count != r.cells[3].result.fault_event_count ||
        r.cells[p].result.total_energy().get() !=
            r.cells[3].result.total_energy().get()) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
  EXPECT_TRUE(r.all_verified());
}

TEST(BatchEngine, StatsReportMemoizationAndForks) {
  CampaignConfig cfg = replicate_config();
  const CampaignPlan plan = plan_campaign(cfg);
  BatchCampaignEngine engine(plan, cfg.options, /*jobs=*/1);
  std::vector<CampaignCell> cells(plan.total());
  std::vector<std::size_t> done_order;
  BatchCampaignEngine::Hooks hooks;
  hooks.on_done = [&](std::size_t i, const ExperimentResult&) {
    done_order.push_back(i);
  };
  engine.run(cells, hooks);

  const BatchCampaignEngine::Stats& stats = engine.stats();
  // One verify donor per workload row; everything else ran model-only.
  EXPECT_EQ(stats.full_runs, 1u);
  EXPECT_EQ(stats.model_runs, plan.total() - 1);
  // Each 3-replicate group forks 2 cells from its warm-up snapshot.
  EXPECT_EQ(stats.forked_cells, 4u);
  EXPECT_EQ(stats.prefix_iterations_saved, 4u * cfg.options.faults_active_from);
  // Publication within the row is flat-index order.
  const std::vector<std::size_t> expected{0, 1, 2, 3, 4, 5};
  EXPECT_EQ(done_order, expected);
  for (const auto& cell : cells) {
    EXPECT_TRUE(cell.result.verified);
    EXPECT_FALSE(cell.result.verify_skipped);
  }
}

TEST(BatchEngine, SkipCompletedLeavesDoneCellsUntouched) {
  CampaignConfig cfg = small_config();
  cfg.workloads = {"lud"};
  const CampaignPlan plan = plan_campaign(cfg);
  BatchCampaignEngine engine(plan, cfg.options, 1);
  engine.skip_completed({1, 0});
  std::vector<CampaignCell> cells(plan.total());
  cells[0].result.workload = "sentinel";
  engine.run(cells);
  EXPECT_EQ(cells[0].result.workload, "sentinel");  // not re-run
  EXPECT_EQ(cells[1].result.workload, "lud");
  // The skipped cell was the would-be donor; the remaining cell becomes the
  // row's verify donor and still verifies for real.
  EXPECT_TRUE(cells[1].result.verified);
  EXPECT_FALSE(cells[1].result.verify_skipped);
  EXPECT_EQ(engine.stats().full_runs, 1u);
  EXPECT_EQ(engine.stats().model_runs, 0u);
}

TEST(BatchEngine, VerifyOffRunsEverythingModelOnly) {
  CampaignConfig cfg = small_config();
  cfg.workloads = {"lud"};
  cfg.options.verify = false;
  const CampaignPlan plan = plan_campaign(cfg);
  BatchCampaignEngine engine(plan, cfg.options, 1);
  std::vector<CampaignCell> cells(plan.total());
  engine.run(cells);
  EXPECT_EQ(engine.stats().full_runs, 0u);
  EXPECT_EQ(engine.stats().model_runs, plan.total());
  for (const auto& cell : cells) {
    // Scalar semantics for verify-off: verified trivially true, skipped.
    EXPECT_TRUE(cell.result.verified);
    EXPECT_TRUE(cell.result.verify_skipped);
  }
  // And the reports still match the scalar engine byte for byte.
  EXPECT_EQ(report(cfg, CampaignEngine::kScalar, 1),
            report(cfg, CampaignEngine::kBatch, 1));
}

TEST(BatchEngine, SizeMismatchesThrow) {
  const CampaignPlan plan = plan_campaign(small_config());
  const RunOptions options = campaign_default_options();
  BatchCampaignEngine engine(plan, options, 1);
  std::vector<CampaignCell> wrong(plan.total() + 1);
  EXPECT_THROW(engine.run(wrong), std::invalid_argument);
  EXPECT_THROW(engine.skip_completed(std::vector<char>(plan.total() - 1, 0)),
               std::invalid_argument);
}

// --- crash/resume: the batch engine under the recovery machinery ----------

TEST(BatchRecovery, KillAndResumeMatchesScalarGolden) {
  const std::filesystem::path dir = test_dir();
  std::size_t case_index = 0;
  for (const bool faults : {false, true}) {
    CampaignConfig cfg = faults ? faulty_config() : small_config();
    const std::string golden = report(cfg, CampaignEngine::kScalar, 1);
    cfg.engine = CampaignEngine::kBatch;
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
      SCOPED_TRACE(std::string("faults=") + (faults ? "on" : "off") +
                   " jobs=" + std::to_string(jobs));
      cfg.jobs = jobs;
      CheckpointOptions ckpt;
      ckpt.dir = (dir / ("case-" + std::to_string(case_index++))).string();
      // Kill after the second finished-but-unjournaled cell; the supervisor
      // resumes from the journal and the batch engine re-runs the rest.
      sim::CrashInjector crash(KillPoint::kMidCampaignCell, 2,
                               common::CrashMode::kThrow);
      RecoverySupervisor supervisor(cfg, ckpt);
      const CampaignResult resumed = supervisor.run();
      EXPECT_TRUE(crash.fired());
      EXPECT_GE(supervisor.restarts(), 1);
      std::ostringstream csv;
      std::ostringstream json;
      write_campaign_csv(csv, resumed);
      write_campaign_json(json, resumed);
      EXPECT_EQ(csv.str() + "\n" + json.str(), golden);
    }
  }
}

TEST(BatchRecovery, ResumeCrossesEngines) {
  // A campaign journaled under the scalar engine resumes under the batch
  // engine (and vice versa): the journal fingerprint deliberately excludes
  // the engine because results are byte-identical across engines.
  const std::filesystem::path dir = test_dir();
  CampaignConfig cfg = faulty_config();
  const std::string golden = report(cfg, CampaignEngine::kScalar, 1);

  CheckpointOptions ckpt;
  ckpt.dir = dir.string();
  {
    // Kill the scalar run after its first journaled-capable cell...
    sim::CrashInjector crash(KillPoint::kMidCampaignCell, 2,
                             common::CrashMode::kThrow);
    cfg.engine = CampaignEngine::kScalar;
    EXPECT_THROW((void)run_campaign_checkpointed(cfg, ckpt), common::CrashInjected);
  }
  // ...then resume the same journal under the batch engine.
  cfg.engine = CampaignEngine::kBatch;
  ckpt.resume = true;
  const CampaignResult resumed = run_campaign_checkpointed(cfg, ckpt);
  std::ostringstream csv;
  std::ostringstream json;
  write_campaign_csv(csv, resumed);
  write_campaign_json(json, resumed);
  EXPECT_EQ(csv.str() + "\n" + json.str(), golden);
}

}  // namespace
}  // namespace gg::greengpu
