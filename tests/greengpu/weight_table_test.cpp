#include "src/greengpu/weight_table.h"

#include <gtest/gtest.h>

#include "src/common/snapshot.h"
#include "src/greengpu/loss.h"

namespace gg::greengpu {
namespace {

std::vector<double> losses_for(double u, const std::vector<double>& umeans, double alpha) {
  std::vector<double> out(umeans.size());
  for (std::size_t i = 0; i < umeans.size(); ++i) {
    out[i] = component_loss(u, umeans[i], alpha);
  }
  return out;
}

const std::vector<double> kUmeans{1.0, 0.8, 0.6, 0.4, 0.2, 0.0};

TEST(WeightTable, StartsUniform) {
  WeightTable t(6, 6);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) EXPECT_DOUBLE_EQ(t.weight(i, j), 1.0);
  }
}

TEST(WeightTable, ZeroDimensionThrows) {
  EXPECT_THROW(WeightTable(0, 6), std::invalid_argument);
  EXPECT_THROW(WeightTable(6, 0), std::invalid_argument);
}

TEST(WeightTable, IndexOutOfRangeThrows) {
  WeightTable t(2, 3);
  EXPECT_THROW(t.weight(2, 0), std::out_of_range);
  EXPECT_THROW(t.weight(0, 3), std::out_of_range);
}

TEST(WeightTable, LossSizeMismatchThrows) {
  WeightTable t(6, 6);
  EXPECT_THROW(t.update({0.1}, std::vector<double>(6, 0.1), 0.3, 0.2, 1e-9),
               std::invalid_argument);
}

TEST(WeightTable, InitialArgmaxIsPeakPair) {
  // Uniform weights tie-break toward the performance-safe peak pair.
  WeightTable t(6, 6);
  const PairIndex p = t.argmax();
  EXPECT_EQ(p.core, 0u);
  EXPECT_EQ(p.mem, 0u);
}

TEST(WeightTable, ArgmaxSelectsMinimalLossPair) {
  WeightTable t(6, 6);
  // Utilizations 0.6 core / 0.4 mem: the zero-loss pair is (2, 3).
  const auto cl = losses_for(0.6, kUmeans, 0.15);
  const auto ml = losses_for(0.4, kUmeans, 0.02);
  t.update(cl, ml, 0.3, 0.2, 1e-9);
  const PairIndex p = t.argmax();
  EXPECT_EQ(p.core, 2u);
  EXPECT_EQ(p.mem, 3u);
}

TEST(WeightTable, MaxWeightRenormalizedToOne) {
  WeightTable t(6, 6);
  for (int k = 0; k < 50; ++k) {
    t.update(losses_for(0.6, kUmeans, 0.15), losses_for(0.4, kUmeans, 0.02), 0.3, 0.2,
             1e-9);
  }
  EXPECT_DOUBLE_EQ(t.weight(2, 3), 1.0);  // zero-loss pair stays at 1
}

TEST(WeightTable, FloorBoundsWorstWeight) {
  WeightTable t(6, 6);
  for (int k = 0; k < 500; ++k) {
    t.update(losses_for(1.0, kUmeans, 0.15), losses_for(1.0, kUmeans, 0.02), 0.3, 0.2,
             1e-2);
  }
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) EXPECT_GE(t.weight(i, j), 1e-2);
  }
}

TEST(WeightTable, AdaptsWhenUtilizationChanges) {
  WeightTable t(6, 6);
  // Learn a low-utilization phase...
  for (int k = 0; k < 20; ++k) {
    t.update(losses_for(0.2, kUmeans, 0.15), losses_for(0.2, kUmeans, 0.02), 0.3, 0.2,
             1e-2);
  }
  EXPECT_EQ(t.argmax().core, 4u);
  // ...then a high-utilization phase takes over quickly because performance
  // losses are weighted heavily.
  for (int k = 0; k < 10; ++k) {
    t.update(losses_for(1.0, kUmeans, 0.15), losses_for(1.0, kUmeans, 0.02), 0.3, 0.2,
             1e-2);
  }
  EXPECT_EQ(t.argmax().core, 0u);
  EXPECT_EQ(t.argmax().mem, 0u);
}

TEST(WeightTable, ResetRestoresUniform) {
  WeightTable t(3, 3);
  t.update({0.5, 0.1, 0.9}, {0.2, 0.3, 0.4}, 0.3, 0.2, 1e-9);
  t.reset();
  EXPECT_DOUBLE_EQ(t.weight(2, 2), 1.0);
}

// --- Fixed-point variant ---------------------------------------------------

TEST(FixedWeightTable, StorageIs36BytesFor6x6) {
  // Section VI: "we only need a 36 bytes table (6x6x8)".
  FixedWeightTable t(6, 6);
  EXPECT_EQ(t.storage_bytes(), 36u);
}

TEST(FixedWeightTable, StartsSaturated) {
  FixedWeightTable t(6, 6);
  EXPECT_EQ(t.weight(0, 0), UQ08::one());
}

TEST(FixedWeightTable, TracksDoubleTableWithinQuantizationLimits) {
  // Section VI claims 8-bit precision is "accurate enough for the purpose of
  // picking up the largest weight".  Reproduction finding: that holds
  // exactly for the core dimension (alpha_c = 0.15 yields losses well above
  // one LSB), but the memory dimension's alpha_m = 0.02 produces per-step
  // losses below the Q0.8 LSB, so the 8-bit table resolves memory levels
  // only coarsely — and, with truncating arithmetic, always errs toward the
  // HIGHER frequency (the performance-safe side).  See EXPERIMENTS.md.
  const double utils[][2] = {{0.6, 0.4}, {0.9, 0.8}, {0.2, 0.1}, {1.0, 1.0},
                             {0.45, 0.7}, {0.0, 0.0}};
  for (const auto& u : utils) {
    WeightTable dbl(6, 6);
    FixedWeightTable fix(6, 6);
    const auto cl = losses_for(u[0], kUmeans, 0.15);
    const auto ml = losses_for(u[1], kUmeans, 0.02);
    for (int k = 0; k < 8; ++k) {
      dbl.update(cl, ml, 0.3, 0.2, 1e-2);
      fix.update(cl, ml, 0.3, 0.2);
    }
    const PairIndex a = dbl.argmax();
    const PairIndex b = fix.argmax();
    EXPECT_EQ(a.core, b.core) << "u_core=" << u[0] << " u_mem=" << u[1];
    // Memory: never over-throttled, and within two levels of the double
    // table's choice.
    EXPECT_LE(b.mem, a.mem) << "u_core=" << u[0] << " u_mem=" << u[1];
    EXPECT_LE(a.mem - b.mem, 2u) << "u_core=" << u[0] << " u_mem=" << u[1];
  }
}

TEST(FixedWeightTable, RenormalizationPreservesOrder) {
  FixedWeightTable t(6, 6);
  // Heavy uniform losses force repeated doubling renormalizations.
  for (int k = 0; k < 100; ++k) {
    t.update(losses_for(0.5, kUmeans, 0.15), losses_for(0.5, kUmeans, 0.02), 0.3, 0.2);
  }
  // The best pair for u = 0.5 is core umean 0.6 (index 2); mem conservative
  // side picks umean 0.6 as well.
  const PairIndex p = t.argmax();
  EXPECT_EQ(p.core, 2u);
  // Weights must stay in a representable, ordered state.
  EXPECT_GT(t.weight(p.core, p.mem).raw(), 127);
}

TEST(WeightTable, SnapshotRoundTripIsBitIdentical) {
  WeightTable t(6, 6);
  for (int k = 0; k < 5; ++k) {
    t.update(losses_for(0.55, kUmeans, 0.15), losses_for(0.3, kUmeans, 0.02), 0.3,
             0.2, 1e-9);
  }
  common::SnapshotWriter w;
  t.save(w);
  WeightTable restored(6, 6);
  common::SnapshotReader r = common::SnapshotReader::from_payload(w.payload());
  restored.load(r);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_EQ(t.weight(i, j), restored.weight(i, j));
    }
  }
  const PairIndex a = t.argmax();
  const PairIndex b = restored.argmax();
  EXPECT_EQ(a.core, b.core);
  EXPECT_EQ(a.mem, b.mem);
}

TEST(WeightTable, SnapshotDimensionMismatchThrows) {
  WeightTable t(6, 6);
  common::SnapshotWriter w;
  t.save(w);
  WeightTable other(4, 6);
  common::SnapshotReader r = common::SnapshotReader::from_payload(w.payload());
  EXPECT_THROW(other.load(r), common::SnapshotError);
}

TEST(FixedWeightTable, SnapshotRoundTripsRawEntries) {
  FixedWeightTable t(6, 6);
  for (int k = 0; k < 5; ++k) {
    t.update(losses_for(0.5, kUmeans, 0.15), losses_for(0.5, kUmeans, 0.02), 0.3, 0.2);
  }
  common::SnapshotWriter w;
  t.save(w);
  FixedWeightTable restored(6, 6);
  common::SnapshotReader r = common::SnapshotReader::from_payload(w.payload());
  restored.load(r);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_EQ(t.weight(i, j).raw(), restored.weight(i, j).raw());
    }
  }
  FixedWeightTable mismatch(6, 3);
  common::SnapshotReader r2 = common::SnapshotReader::from_payload(w.payload());
  EXPECT_THROW(mismatch.load(r2), common::SnapshotError);
}

TEST(FixedWeightTable, AllZeroRecoversToUniform) {
  FixedWeightTable t(2, 2);
  // Maximal loss drives everything to zero quickly; table must self-reset
  // rather than dead-lock at all-zero.
  for (int k = 0; k < 200; ++k) {
    t.update({1.0, 1.0}, {1.0, 1.0}, 0.5, 0.2);
  }
  EXPECT_GT(t.weight(0, 0).raw(), 0);
}

}  // namespace
}  // namespace gg::greengpu
