#include "src/greengpu/model_dividers.h"

#include <gtest/gtest.h>

namespace gg::greengpu {
namespace {

using namespace gg::literals;

/// Proportional system: tc = r * cpu_cost, tg = (1-r); energy model
/// E = P * makespan + C * r (what the EnergyModelDivider assumes; the real
/// simulator produces exactly this family of curves for profiled workloads).
struct FakeSystem {
  double cpu_cost{6.0};
  double p_sys{200.0};
  double c_cpu{20.0};

  [[nodiscard]] IterationFeedback run(double r) const {
    const double tc = r * cpu_cost;
    const double tg = 1.0 - r;
    const double makespan = std::max(tc, tg);
    return IterationFeedback{Seconds{tc}, Seconds{tg},
                             Joules{p_sys * makespan + c_cpu * r}};
  }
};

TEST(ProfilingDivider, JumpsToBalancePointAfterOneProbe) {
  ProfilingDivider d;
  const FakeSystem sys;
  d.update(sys.run(d.ratio()));
  // Balance point for cost 6 is 1/7.
  EXPECT_NEAR(d.ratio(), 1.0 / 7.0, 1e-9);
}

TEST(ProfilingDivider, SettlesAndReportsConvergence) {
  ProfilingDivider d;
  const FakeSystem sys;
  for (int i = 0; i < 5; ++i) d.update(sys.run(d.ratio()));
  EXPECT_TRUE(d.converged());
  EXPECT_NEAR(d.ratio(), 1.0 / 7.0, 1e-6);
}

TEST(ProfilingDivider, TracksRateChange) {
  ProfilingDivider d;
  FakeSystem sys;
  for (int i = 0; i < 5; ++i) d.update(sys.run(d.ratio()));
  // CPU becomes 3x faster mid-run (e.g. another process released the cores).
  sys.cpu_cost = 2.0;
  for (int i = 0; i < 12; ++i) d.update(sys.run(d.ratio()));
  EXPECT_NEAR(d.ratio(), 1.0 / 3.0, 0.01);
}

TEST(ProfilingDivider, ExposesRateEstimates) {
  ProfilingDivider d;
  const FakeSystem sys;
  d.update(sys.run(d.ratio()));
  EXPECT_NEAR(d.cpu_rate(), 1.0 / sys.cpu_cost, 1e-9);
  EXPECT_NEAR(d.gpu_rate(), 1.0, 1e-9);
}

TEST(ProfilingDivider, RespectsMaxRatio) {
  ProfilingDividerParams p;
  p.max_ratio = 0.10;
  ProfilingDivider d(p);
  FakeSystem sys;
  sys.cpu_cost = 0.5;  // CPU twice as fast: unconstrained target is 2/3
  for (int i = 0; i < 5; ++i) d.update(sys.run(d.ratio()));
  EXPECT_DOUBLE_EQ(d.ratio(), 0.10);
}

TEST(ProfilingDivider, ValidatesParams) {
  ProfilingDividerParams p;
  p.probe_ratio = 0.0;
  EXPECT_THROW(ProfilingDivider{p}, std::invalid_argument);
  p = ProfilingDividerParams{};
  p.rate_alpha = 0.0;
  EXPECT_THROW(ProfilingDivider{p}, std::invalid_argument);
}

TEST(ProfilingDivider, ResetRestoresProbe) {
  ProfilingDivider d;
  const FakeSystem sys;
  d.update(sys.run(d.ratio()));
  d.reset();
  EXPECT_DOUBLE_EQ(d.ratio(), 0.30);
  EXPECT_EQ(d.cpu_rate(), 0.0);
}

TEST(EnergyModelDivider, RecoversModelParameters) {
  EnergyModelDivider d;
  const FakeSystem sys;
  for (int i = 0; i < 6; ++i) d.update(sys.run(d.ratio()));
  EXPECT_NEAR(d.fitted_system_power(), sys.p_sys, 0.5);
  EXPECT_NEAR(d.fitted_cpu_share_cost(), sys.c_cpu, 0.5);
}

TEST(EnergyModelDivider, FindsEnergyMinimumNotTimeBalance) {
  // With a large CPU-share cost the energy optimum sits BELOW the
  // time-balance point — the distinction between Qilin's objective and
  // GreenGPU's.
  EnergyModelDivider d;
  FakeSystem sys;
  sys.c_cpu = 400.0;  // very expensive CPU participation
  for (int i = 0; i < 8; ++i) d.update(sys.run(d.ratio()));
  // Analytic optimum: E(r) = 200*max(6r, 1-r) + 400r.  On [0, 1/7] the
  // slope is -200 + 400 > 0, so r* = 0.
  EXPECT_NEAR(d.ratio(), 0.0, 0.011);
}

TEST(EnergyModelDivider, MatchesBalanceWhenShareCostSmall) {
  EnergyModelDivider d;
  const FakeSystem sys;  // modest c_cpu
  for (int i = 0; i < 8; ++i) d.update(sys.run(d.ratio()));
  // Optimum just below the balance point 1/7.
  EXPECT_GT(d.ratio(), 0.08);
  EXPECT_LE(d.ratio(), 1.0 / 7.0 + 0.011);
  EXPECT_TRUE(d.converged());
}

TEST(EnergyModelDivider, SecondIterationProbesHigh) {
  EnergyModelDivider d;
  const FakeSystem sys;
  EXPECT_DOUBLE_EQ(d.ratio(), 0.15);
  d.update(sys.run(d.ratio()));
  EXPECT_DOUBLE_EQ(d.ratio(), 0.45);
}

TEST(EnergyModelDivider, ValidatesParams) {
  EnergyModelDividerParams p;
  p.probe_low = p.probe_high;
  EXPECT_THROW(EnergyModelDivider{p}, std::invalid_argument);
  p = EnergyModelDividerParams{};
  p.search_step = 0.0;
  EXPECT_THROW(EnergyModelDivider{p}, std::invalid_argument);
}

TEST(EnergyModelDivider, ResetClearsFit) {
  EnergyModelDivider d;
  const FakeSystem sys;
  for (int i = 0; i < 4; ++i) d.update(sys.run(d.ratio()));
  d.reset();
  EXPECT_DOUBLE_EQ(d.ratio(), 0.15);
  EXPECT_EQ(d.fitted_system_power(), 0.0);
}

TEST(DividerKindStrings, RoundTripAndAliases) {
  for (auto kind :
       {DividerKind::kStep, DividerKind::kProfiling, DividerKind::kEnergyModel}) {
    EXPECT_EQ(divider_from_string(to_string(kind)), kind);
  }
  EXPECT_EQ(divider_from_string("qilin"), DividerKind::kProfiling);
  EXPECT_EQ(divider_from_string("energy"), DividerKind::kEnergyModel);
  EXPECT_THROW((void)divider_from_string("bogus"), std::invalid_argument);
}

TEST(DividerFactory, HonoursStepParams) {
  DivisionParams p;
  p.initial_ratio = 0.40;
  const auto step = make_divider(DividerKind::kStep, p);
  EXPECT_DOUBLE_EQ(step->ratio(), 0.40);
  EXPECT_EQ(step->name(), "step");
  const auto qilin = make_divider(DividerKind::kProfiling, p);
  EXPECT_DOUBLE_EQ(qilin->ratio(), 0.40);  // probe inherits the initial ratio
  const auto energy = make_divider(DividerKind::kEnergyModel, p);
  EXPECT_EQ(energy->name(), "energy-model");
}

/// All dividers, driven by the same proportional system, must end within a
/// step of the balance point and report convergence.
class AnyDividerTest : public ::testing::TestWithParam<DividerKind> {};

TEST_P(AnyDividerTest, ConvergesOnProportionalSystem) {
  const auto divider = make_divider(GetParam(), DivisionParams{});
  const FakeSystem sys;
  for (int i = 0; i < 25; ++i) divider->update(sys.run(divider->ratio()));
  EXPECT_TRUE(divider->converged());
  EXPECT_NEAR(divider->ratio(), 1.0 / 7.0, 0.06);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AnyDividerTest,
                         ::testing::Values(DividerKind::kStep, DividerKind::kProfiling,
                                           DividerKind::kEnergyModel));

TEST_P(AnyDividerTest, DegradedFeedbackHoldsTheRatio) {
  const auto divider = make_divider(GetParam(), DivisionParams{});
  const FakeSystem sys;
  for (int i = 0; i < 5; ++i) divider->update(sys.run(divider->ratio()));
  const double r = divider->ratio();
  IterationFeedback fb = sys.run(r);
  fb.cpu_time = fb.cpu_time + Seconds{100.0};  // wild fault-noise outlier
  fb.degraded = true;
  const auto d = divider->update(fb);
  EXPECT_EQ(d.action, DivisionAction::kHoldDegraded);
  EXPECT_DOUBLE_EQ(divider->ratio(), r);
}

}  // namespace
}  // namespace gg::greengpu
