#include "src/greengpu/wma_scaler.h"

#include <gtest/gtest.h>

#include "src/cudalite/api.h"

namespace gg::greengpu {
namespace {

using namespace gg::literals;

class WmaScalerTest : public ::testing::Test {
 protected:
  WmaScalerTest()
      : rt_(platform_, 2),
        nvml_(platform_),
        settings_(platform_),
        scaler_(nvml_, settings_, WmaParams{}) {}

  /// Submit a kernel that is busy at the given peak-clock utilizations for
  /// `seconds` of simulated time at peak clocks.
  void submit_busy(double uc, double um, double seconds) {
    auto stream = rt_.create_stream();
    cudalite::WorkEstimate est;
    est.units = seconds / 1e-3;
    const auto& spec = platform_.gpu().spec();
    est.core_cycles_per_unit = uc * 1e-3 * spec.core_throughput(576_MHz);
    est.mem_bytes_per_unit = um * 1e-3 * spec.mem_bandwidth(900_MHz);
    est.overhead_per_unit_s = 1e-3;
    rt_.launch_range(stream, 1, est, [](std::size_t, std::size_t) {});
  }

  sim::Platform platform_;
  cudalite::Runtime rt_;
  cudalite::NvmlDevice nvml_;
  cudalite::NvSettings settings_;
  GpuFrequencyScaler scaler_;
};

TEST_F(WmaScalerTest, IdleDevicePushedToLowestLevels) {
  platform_.queue().run_until(3_s);
  const ScalerDecision d = scaler_.step(platform_.now());
  EXPECT_EQ(d.core_util, 0.0);
  EXPECT_EQ(d.mem_util, 0.0);
  EXPECT_EQ(d.chosen.core, platform_.gpu().core_table().lowest_level());
  EXPECT_EQ(d.chosen.mem, platform_.gpu().mem_table().lowest_level());
}

TEST_F(WmaScalerTest, FullLoadReachesPeakLevels) {
  settings_.set_clock_levels(0, 0);
  submit_busy(1.0, 1.0, 100.0);
  for (int k = 0; k < 5; ++k) {
    platform_.queue().run_until(platform_.now() + 3_s);
    scaler_.step(platform_.now());
  }
  EXPECT_EQ(platform_.gpu().core_level(), 0u);
  EXPECT_EQ(platform_.gpu().mem_level(), 0u);
}

TEST_F(WmaScalerTest, ModerateLoadSettlesAtMatchingLevels) {
  // u_core 0.58 / u_mem 0.25 at peak: equilibrium is the core level whose
  // umean brackets the (frequency-compensated) utilization, and a
  // conservative memory level (alpha_m = 0.02).
  settings_.set_clock_levels(0, 0);
  submit_busy(0.58, 0.25, 1000.0);
  for (int k = 0; k < 10; ++k) {
    platform_.queue().run_until(platform_.now() + 3_s);
    scaler_.step(platform_.now());
  }
  // Core settles below peak but above the slack bound (0.58 -> >= 355 MHz).
  EXPECT_GT(platform_.gpu().core_level(), 0u);
  EXPECT_LE(platform_.gpu().core_level(), 3u);
  // Memory throttles at most to the level just above the 0.25 slack bound.
  EXPECT_GT(platform_.gpu().mem_level(), 0u);
  // Throttling stayed within slack: execution continues unimpeded, i.e. the
  // utilizations remain below 1.
  platform_.queue().run_until(platform_.now() + 3_s);
  const ScalerDecision d = scaler_.step(platform_.now());
  EXPECT_LT(d.core_util, 1.0);
  EXPECT_LT(d.mem_util, 1.0);
}

TEST_F(WmaScalerTest, RampFollowsUtilizationWithinOneInterval) {
  // Fig. 5: utilization ramps up and the next scaling step raises clocks.
  const ScalerDecision idle = scaler_.step(platform_.now());
  EXPECT_EQ(idle.chosen.core, 5u);
  submit_busy(0.9, 0.9, 100.0);
  platform_.queue().run_until(platform_.now() + 3_s);
  const ScalerDecision d = scaler_.step(platform_.now());
  EXPECT_GT(d.core_util, 0.8);
  EXPECT_LT(d.chosen.core, 3u);  // jumped up decisively
}

TEST_F(WmaScalerTest, AttachStepsPeriodically) {
  scaler_.attach(platform_.queue());
  platform_.queue().run_until(10_s);
  EXPECT_EQ(scaler_.steps(), 3u);  // 3 s interval
  scaler_.detach();
  platform_.queue().run_until(20_s);
  EXPECT_EQ(scaler_.steps(), 3u);
}

TEST_F(WmaScalerTest, DecisionsRecordUtilizations) {
  settings_.set_clock_levels(0, 0);
  submit_busy(0.4, 0.3, 3.0);
  platform_.queue().run_until(3_s);
  const ScalerDecision d = scaler_.step(platform_.now());
  EXPECT_NEAR(d.core_util, 0.4, 0.02);
  EXPECT_NEAR(d.mem_util, 0.3, 0.02);
  EXPECT_EQ(scaler_.decisions().size(), 1u);
}

TEST_F(WmaScalerTest, ResetForgetsHistory) {
  submit_busy(1.0, 1.0, 10.0);
  platform_.queue().run_until(3_s);
  scaler_.step(platform_.now());
  scaler_.reset();
  EXPECT_EQ(scaler_.steps(), 0u);
  EXPECT_TRUE(scaler_.decisions().empty());
  EXPECT_DOUBLE_EQ(scaler_.table().weight(5, 5), 1.0);
}

TEST_F(WmaScalerTest, UtilFilterSmoothsMeasurements) {
  WmaParams params;
  params.util_filter_alpha = 0.5;
  GpuFrequencyScaler filtered(nvml_, settings_, params);
  settings_.set_clock_levels(0, 0);
  // Alternate a busy and an idle window; the filtered utilization must sit
  // between the raw extremes after the second step.
  submit_busy(1.0, 1.0, 3.0);
  platform_.queue().run_until(platform_.now() + 3_s);
  const ScalerDecision d1 = filtered.step(platform_.now());
  EXPECT_NEAR(d1.filtered_core_util, d1.core_util, 1e-12);  // first sample seeds
  platform_.queue().run_until(platform_.now() + 3_s);  // idle window
  const ScalerDecision d2 = filtered.step(platform_.now());
  EXPECT_EQ(d2.core_util, 0.0);
  EXPECT_NEAR(d2.filtered_core_util, 0.5 * d1.core_util, 1e-9);
}

TEST_F(WmaScalerTest, BadFilterAlphaRejected) {
  WmaParams params;
  params.util_filter_alpha = 0.0;
  EXPECT_THROW(GpuFrequencyScaler(nvml_, settings_, params), std::invalid_argument);
  params.util_filter_alpha = 1.5;
  EXPECT_THROW(GpuFrequencyScaler(nvml_, settings_, params), std::invalid_argument);
}

TEST_F(WmaScalerTest, EnforcesArgmaxPairOnDevice) {
  platform_.queue().run_until(3_s);  // idle window
  const ScalerDecision d = scaler_.step(platform_.now());
  EXPECT_EQ(platform_.gpu().core_level(), d.chosen.core);
  EXPECT_EQ(platform_.gpu().mem_level(), d.chosen.mem);
}

}  // namespace
}  // namespace gg::greengpu
