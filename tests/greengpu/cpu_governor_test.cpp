#include "src/greengpu/cpu_governor.h"

#include <gtest/gtest.h>

namespace gg::greengpu {
namespace {

using namespace gg::literals;

class GovernorTest : public ::testing::Test {
 protected:
  void busy_for(Seconds t) {
    sim::CpuWork w;
    w.units = 1.0;
    w.overhead_per_unit = t;
    platform_.cpu().submit(w, {});
  }

  sim::Platform platform_;
};

TEST_F(GovernorTest, PerformancePinsPeak) {
  platform_.cpu().set_level(3);
  PerformanceGovernor gov(platform_);
  platform_.queue().run_until(0.1_s);
  EXPECT_EQ(gov.step(platform_.now()).level, 0u);
  EXPECT_EQ(platform_.cpu().level(), 0u);
}

TEST_F(GovernorTest, PowersavePinsFloor) {
  PowersaveGovernor gov(platform_);
  busy_for(1_s);  // even fully loaded
  platform_.queue().run_until(0.1_s);
  EXPECT_EQ(gov.step(platform_.now()).level, 3u);
}

TEST_F(GovernorTest, ConservativeStepsUpGradually) {
  platform_.cpu().set_level(3);
  ConservativeGovernor gov(platform_, OndemandParams{});
  busy_for(10_s);
  // Fully loaded: one level per step, not a jump (contrast with ondemand).
  platform_.queue().run_until(0.1_s);
  EXPECT_EQ(gov.step(platform_.now()).level, 2u);
  platform_.queue().run_until(0.2_s);
  EXPECT_EQ(gov.step(platform_.now()).level, 1u);
  platform_.queue().run_until(0.3_s);
  EXPECT_EQ(gov.step(platform_.now()).level, 0u);
  platform_.queue().run_until(0.4_s);
  EXPECT_EQ(gov.step(platform_.now()).level, 0u);  // clamps at peak
}

TEST_F(GovernorTest, ConservativeStepsDownWhenIdle) {
  ConservativeGovernor gov(platform_, OndemandParams{});
  platform_.queue().run_until(0.1_s);
  EXPECT_EQ(gov.step(platform_.now()).level, 1u);
}

TEST_F(GovernorTest, WmaGovernorThrottlesIdleAndRestoresUnderLoad) {
  WmaCpuGovernor gov(platform_);
  // Idle windows: learns its way to the floor.
  for (int k = 1; k <= 10; ++k) {
    platform_.queue().run_until(Seconds{0.1 * k});
    gov.step(platform_.now());
  }
  EXPECT_EQ(platform_.cpu().level(), 3u);
  // Full load: jumps back up quickly (performance-weighted losses).
  busy_for(20_s);
  std::size_t level_after = 99;
  for (int k = 11; k <= 14; ++k) {
    platform_.queue().run_until(Seconds{0.1 * k});
    level_after = gov.step(platform_.now()).level;
  }
  EXPECT_EQ(level_after, 0u);
}

TEST_F(GovernorTest, WmaGovernorTracksIntermediateLoad) {
  WmaCpuGovernor gov(platform_);
  // ~55% package utilization: the suitable P-state is an interior level.
  for (int k = 1; k <= 20; ++k) {
    busy_for(Seconds{0.055});
    platform_.queue().run_until(Seconds{0.1 * k});
    gov.step(platform_.now());
  }
  EXPECT_GT(platform_.cpu().level(), 0u);
  EXPECT_LT(platform_.cpu().level(), 3u);
}

TEST_F(GovernorTest, AttachDetachLifecycle) {
  PerformanceGovernor gov(platform_);
  gov.attach();
  platform_.queue().run_until(1.05_s);
  EXPECT_EQ(gov.steps(), 10u);
  gov.detach();
  platform_.queue().run_until(2_s);
  EXPECT_EQ(gov.steps(), 10u);
  EXPECT_EQ(gov.decisions().size(), 10u);
}

TEST_F(GovernorTest, ZeroIntervalRejected) {
  EXPECT_THROW(PerformanceGovernor(platform_, 0_s), std::invalid_argument);
}

TEST(GovernorKind, StringRoundTrip) {
  for (auto kind : {CpuGovernorKind::kNone, CpuGovernorKind::kPerformance,
                    CpuGovernorKind::kPowersave, CpuGovernorKind::kOndemand,
                    CpuGovernorKind::kConservative, CpuGovernorKind::kWma}) {
    EXPECT_EQ(cpu_governor_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(cpu_governor_from_string("bogus"), std::invalid_argument);
}

TEST(GovernorFactory, ProducesNamedGovernors) {
  sim::Platform platform;
  OndemandParams params;
  EXPECT_EQ(make_cpu_governor(CpuGovernorKind::kNone, platform, params), nullptr);
  for (auto kind : {CpuGovernorKind::kPerformance, CpuGovernorKind::kPowersave,
                    CpuGovernorKind::kOndemand, CpuGovernorKind::kConservative,
                    CpuGovernorKind::kWma}) {
    const auto gov = make_cpu_governor(kind, platform, params);
    ASSERT_NE(gov, nullptr);
    EXPECT_EQ(gov->name(), to_string(kind));
  }
}

}  // namespace
}  // namespace gg::greengpu
