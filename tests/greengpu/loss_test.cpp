#include "src/greengpu/loss.h"

#include <gtest/gtest.h>

#include "src/sim/dvfs.h"

namespace gg::greengpu {
namespace {

TEST(UmeanTable, EndpointsPerPaper) {
  // "We assume the peak frequency is suitable for utilization 100%.  The
  // lowest frequency is suitable for utilization 0%." (Section V-A)
  const auto u = umean_table(sim::geforce8800_memory_table());
  ASSERT_EQ(u.size(), 6u);
  EXPECT_DOUBLE_EQ(u.front(), 1.0);
  EXPECT_DOUBLE_EQ(u.back(), 0.0);
}

TEST(UmeanTable, LinearMapping) {
  const auto u = umean_table(sim::geforce8800_memory_table());
  // Equal 80 MHz spacing -> equal 0.2 umean spacing.
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_NEAR(u[i], 1.0 - 0.2 * static_cast<double>(i), 1e-12);
  }
}

TEST(RawLoss, TableIUpperBranch) {
  // u > umean: performance loss only, equal to the gap.
  const LevelLoss l = raw_loss(0.9, 0.6);
  EXPECT_DOUBLE_EQ(l.performance, 0.3);
  EXPECT_DOUBLE_EQ(l.energy, 0.0);
}

TEST(RawLoss, TableILowerBranch) {
  // u < umean: energy loss only.
  const LevelLoss l = raw_loss(0.2, 0.6);
  EXPECT_DOUBLE_EQ(l.energy, 0.4);
  EXPECT_DOUBLE_EQ(l.performance, 0.0);
}

TEST(RawLoss, ExactMatchIsZero) {
  const LevelLoss l = raw_loss(0.5, 0.5);
  EXPECT_EQ(l.energy, 0.0);
  EXPECT_EQ(l.performance, 0.0);
}

TEST(RawLoss, InputsClampedToUnitRange) {
  const LevelLoss l = raw_loss(1.7, 0.5);
  EXPECT_DOUBLE_EQ(l.performance, 0.5);
  const LevelLoss l2 = raw_loss(-0.3, 0.5);
  EXPECT_DOUBLE_EQ(l2.energy, 0.5);
}

TEST(ComponentLoss, Equation1Blend) {
  // l = alpha*l_e + (1-alpha)*l_p with the paper's alpha_c = 0.15.
  EXPECT_DOUBLE_EQ(component_loss(0.2, 0.6, 0.15), 0.15 * 0.4);
  EXPECT_DOUBLE_EQ(component_loss(0.9, 0.6, 0.15), 0.85 * 0.3);
}

TEST(ComponentLoss, SmallAlphaFavoursPerformance) {
  // alpha_m = 0.02: a performance shortfall costs 49x an equal energy
  // surplus, so the memory scaler is conservative.
  const double energy_side = component_loss(0.5, 0.6, 0.02);
  const double perf_side = component_loss(0.7, 0.6, 0.02);
  EXPECT_GT(perf_side / energy_side, 40.0);
}

TEST(ComponentLoss, AlphaOutOfRangeThrows) {
  EXPECT_THROW(component_loss(0.5, 0.5, -0.1), std::invalid_argument);
  EXPECT_THROW(component_loss(0.5, 0.5, 1.1), std::invalid_argument);
}

TEST(TotalLoss, Equation3Blend) {
  EXPECT_DOUBLE_EQ(total_loss(0.4, 0.8, 0.3), 0.3 * 0.4 + 0.7 * 0.8);
}

TEST(TotalLoss, PhiBoundsChecked) {
  EXPECT_THROW(total_loss(0.1, 0.1, -0.01), std::invalid_argument);
  EXPECT_THROW(total_loss(0.1, 0.1, 1.01), std::invalid_argument);
}

TEST(UpdatedWeight, Equation4) {
  // w' = w * (1 - (1-beta)*loss) with beta = 0.2.
  EXPECT_DOUBLE_EQ(updated_weight(1.0, 0.5, 0.2), 1.0 - 0.8 * 0.5);
}

TEST(UpdatedWeight, ZeroLossKeepsWeight) {
  EXPECT_DOUBLE_EQ(updated_weight(0.7, 0.0, 0.2), 0.7);
}

TEST(UpdatedWeight, FullLossLeavesBetaFraction) {
  EXPECT_NEAR(updated_weight(1.0, 1.0, 0.2), 0.2, 1e-12);
}

TEST(UpdatedWeight, ParameterValidation) {
  EXPECT_THROW(updated_weight(1.0, 0.5, 0.0), std::invalid_argument);
  EXPECT_THROW(updated_weight(1.0, 0.5, 1.0), std::invalid_argument);
  EXPECT_THROW(updated_weight(1.0, -0.1, 0.5), std::invalid_argument);
  EXPECT_THROW(updated_weight(1.0, 1.1, 0.5), std::invalid_argument);
}

// Property sweep: for any utilization, exactly one loss side is non-zero and
// both are bounded by 1.
class LossPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(LossPropertyTest, LossesAreComplementaryAndBounded) {
  const double u = GetParam();
  for (double umean : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const LevelLoss l = raw_loss(u, umean);
    EXPECT_GE(l.energy, 0.0);
    EXPECT_GE(l.performance, 0.0);
    EXPECT_LE(l.energy, 1.0);
    EXPECT_LE(l.performance, 1.0);
    EXPECT_TRUE(l.energy == 0.0 || l.performance == 0.0);
    EXPECT_NEAR(l.energy + l.performance, std::fabs(u - umean), 1e-12);
  }
}

TEST_P(LossPropertyTest, ComponentLossMonotoneInDistance) {
  const double u = GetParam();
  // Among levels on the same side of u, loss grows with |u - umean|.
  double prev_above = -1.0;
  for (double umean = u; umean <= 1.0; umean += 0.1) {
    const double l = component_loss(u, umean, 0.15);
    EXPECT_GE(l, prev_above);
    prev_above = l;
  }
}

INSTANTIATE_TEST_SUITE_P(UtilizationSweep, LossPropertyTest,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0));

}  // namespace
}  // namespace gg::greengpu
