// How the cudalite facades surface injected faults: NvmlDevice's fallible
// query, NvSettings' checked clock writes, and the Runtime's launch / host
// admission.  Rates of 1.0 force each outcome deterministically.

#include <gtest/gtest.h>

#include "src/cudalite/api.h"
#include "src/cudalite/nvml.h"
#include "src/cudalite/nvsettings.h"
#include "src/sim/fault.h"
#include "src/sim/platform.h"

namespace gg::cudalite {
namespace {

sim::FaultConfig one_channel(double sim::FaultConfig::* field) {
  sim::FaultConfig cfg;
  cfg.*field = 1.0;
  return cfg;
}

TEST(NvmlFacade, NoInjectorMatchesPerfectPath) {
  sim::Platform platform;
  ASSERT_EQ(platform.faults(), nullptr);
  NvmlDevice nvml(platform);
  platform.queue().run_until(Seconds{2.0});
  const UtilizationSample s = nvml.try_utilization_rates();
  EXPECT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s.window.get(), 2.0);
  EXPECT_EQ(s.rates.gpu, 0u);  // idle GPU
}

TEST(NvmlFacade, DropReturnsDriverErrorAndKeepsWindow) {
  sim::Platform platform;
  platform.install_faults(one_channel(&sim::FaultConfig::util_drop_rate));
  NvmlDevice nvml(platform);
  platform.queue().run_until(Seconds{1.0});
  const UtilizationSample s = nvml.try_utilization_rates();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status, NvmlStatus::kDriverError);
  EXPECT_DOUBLE_EQ(s.window.get(), 0.0);
  const auto& events = platform.faults()->events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].outcome, sim::FaultOutcome::kUtilDropped);
  EXPECT_EQ(events[0].channel, sim::FaultChannel::kUtilRead);
}

TEST(NvmlFacade, StaleRepeatsPreviousSampleWithZeroWindow) {
  sim::Platform platform;
  platform.install_faults(one_channel(&sim::FaultConfig::util_stale_rate));
  NvmlDevice nvml(platform);
  const UtilizationSample s = nvml.try_utilization_rates();
  EXPECT_TRUE(s.ok());  // the driver "succeeds" -- only the window betrays it
  EXPECT_DOUBLE_EQ(s.window.get(), 0.0);
}

TEST(NvmlFacade, CorruptAdvancesWindowButReturnsGarbage) {
  sim::Platform platform;
  platform.install_faults(one_channel(&sim::FaultConfig::util_corrupt_rate));
  NvmlDevice nvml(platform);
  platform.queue().run_until(Seconds{3.0});
  const UtilizationSample s = nvml.try_utilization_rates();
  EXPECT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s.window.get(), 3.0);  // counters were consumed
  EXPECT_LE(s.rates.gpu, 100u);
  EXPECT_LE(s.rates.memory, 100u);
}

TEST(NvSettingsFacade, NoInjectorAlwaysApplies) {
  sim::Platform platform;
  NvSettings settings(platform);
  const ClockWriteResult r = settings.set_clock_levels_checked(0, 0);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(settings.clock_levels(), (std::pair<std::size_t, std::size_t>{0, 0}));
}

TEST(NvSettingsFacade, RejectLeavesClocksUnchanged) {
  sim::Platform platform;
  platform.install_faults(one_channel(&sim::FaultConfig::clock_reject_rate));
  NvSettings settings(platform);
  const auto before = settings.clock_levels();
  const ClockWriteResult r = settings.set_clock_levels_checked(0, 0);
  EXPECT_EQ(r.status, ClockWriteStatus::kRejected);
  EXPECT_EQ(settings.clock_levels(), before);
}

TEST(NvSettingsFacade, DelayLandsAfterTheLatencyWindow) {
  sim::Platform platform;
  sim::FaultConfig cfg;
  cfg.clock_delay_rate = 1.0;
  cfg.clock_delay = Seconds{0.5};
  platform.install_faults(cfg);
  NvSettings settings(platform);
  const auto before = settings.clock_levels();
  ASSERT_NE(before.first, 0u);  // platform default is the lowest levels
  const ClockWriteResult r = settings.set_clock_levels_checked(0, 0);
  EXPECT_EQ(r.status, ClockWriteStatus::kDelayed);
  EXPECT_EQ(settings.clock_levels(), before);  // not yet
  platform.queue().run_until(Seconds{1.0});
  EXPECT_EQ(settings.clock_levels(), (std::pair<std::size_t, std::size_t>{0, 0}));
}

TEST(NvSettingsFacade, ClampMovesOneLevelPerWrite) {
  sim::Platform platform;
  platform.install_faults(one_channel(&sim::FaultConfig::clock_clamp_rate));
  NvSettings settings(platform);
  const auto [core0, mem0] = settings.clock_levels();
  ASSERT_GT(core0, 1u);  // several levels away from the peak
  ClockWriteResult r = settings.set_clock_levels_checked(0, 0);
  EXPECT_EQ(r.status, ClockWriteStatus::kClamped);
  EXPECT_EQ(r.core_level, core0 - 1);
  // Re-issuing the write walks one level at a time until it lands.
  int writes = 1;
  while (!r.ok() && writes < 32) {
    r = settings.set_clock_levels_checked(0, 0);
    ++writes;
  }
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(settings.clock_levels(), (std::pair<std::size_t, std::size_t>{0, 0}));
}

TEST(RuntimeFaults, LaunchFailureRejectsWithoutRetries) {
  sim::Platform platform;
  platform.install_faults(one_channel(&sim::FaultConfig::launch_fail_rate));
  Runtime rt(platform, 2);
  auto stream = rt.create_stream();
  WorkEstimate est;
  est.units = 1.0;
  est.overhead_per_unit_s = 1e-3;
  bool body_ran = false;
  bool completed = false;
  const bool accepted = rt.launch_range(
      stream, 8, est, [&](std::size_t, std::size_t) { body_ran = true; },
      [&] { completed = true; });
  EXPECT_FALSE(accepted);
  EXPECT_FALSE(body_ran);
  EXPECT_FALSE(completed);
  EXPECT_EQ(rt.stats().launches_rejected, 1u);
  EXPECT_EQ(rt.stats().kernels_launched, 0u);
}

TEST(RuntimeFaults, RetriesAreBoundedAndCounted) {
  sim::Platform platform;
  platform.install_faults(one_channel(&sim::FaultConfig::launch_fail_rate));
  Runtime rt(platform, 2);
  rt.set_fault_tolerance(FaultTolerance{3, false});
  auto stream = rt.create_stream();
  WorkEstimate est;
  est.units = 1.0;
  est.overhead_per_unit_s = 1e-3;
  const bool accepted =
      rt.launch_range(stream, 8, est, [](std::size_t, std::size_t) {});
  EXPECT_FALSE(accepted);  // rate 1.0 defeats every retry
  EXPECT_EQ(rt.stats().launch_retries, 3u);
  EXPECT_EQ(rt.stats().launches_rejected, 1u);
}

TEST(RuntimeFaults, RetriesRecoverTransientFailures) {
  // At 50 % failure, three retries almost always get a launch through;
  // run several launches and require at least one retry and zero rejects.
  sim::Platform platform;
  sim::FaultConfig cfg;
  cfg.launch_fail_rate = 0.5;
  platform.install_faults(cfg);
  Runtime rt(platform, 2);
  rt.set_fault_tolerance(FaultTolerance{8, false});
  auto stream = rt.create_stream();
  WorkEstimate est;
  est.units = 1.0;
  est.overhead_per_unit_s = 1e-4;
  int accepted = 0;
  for (int i = 0; i < 20; ++i) {
    if (rt.launch_range(stream, 4, est, [](std::size_t, std::size_t) {})) ++accepted;
    rt.synchronize(stream);
  }
  EXPECT_EQ(accepted, 20);
  EXPECT_GT(rt.stats().launch_retries, 0u);
  EXPECT_EQ(rt.stats().launches_rejected, 0u);
}

TEST(RuntimeFaults, HostSubmitFailureSkipsTheTask) {
  sim::Platform platform;
  platform.install_faults(one_channel(&sim::FaultConfig::host_fail_rate));
  Runtime rt(platform, 2);
  bool ran = false;
  bool completed = false;
  sim::CpuWork work;
  work.units = 1.0;
  work.overhead_per_unit = Seconds{1.0};
  const bool accepted = rt.host_submit(work, [&] { ran = true; }, [&] { completed = true; });
  EXPECT_FALSE(accepted);
  EXPECT_FALSE(ran);
  EXPECT_FALSE(completed);
  EXPECT_EQ(rt.stats().host_tasks_rejected, 1u);
}

TEST(RuntimeFaults, ZeroRateInjectorChangesNothing) {
  // An installed injector with all rates zero must be invisible.
  sim::Platform platform;
  platform.install_faults(sim::FaultConfig{});
  Runtime rt(platform, 2);
  auto stream = rt.create_stream();
  WorkEstimate est;
  est.units = 1.0;
  est.overhead_per_unit_s = 1e-3;
  EXPECT_TRUE(rt.launch_range(stream, 8, est, [](std::size_t, std::size_t) {}));
  rt.synchronize(stream);
  EXPECT_EQ(rt.stats().launch_retries, 0u);
  EXPECT_EQ(rt.stats().launches_rejected, 0u);
  EXPECT_TRUE(platform.faults()->events().empty());
}

}  // namespace
}  // namespace gg::cudalite
