// Determinism: results and simulated timing must be bit-identical across
// thread-pool sizes and repeated runs — the property that makes the
// reproduction's experiments trustworthy.
#include <gtest/gtest.h>

#include "src/greengpu/policy.h"
#include "src/greengpu/runner.h"
#include "src/workloads/kmeans.h"
#include "src/workloads/nbody.h"
#include "src/workloads/srad.h"

namespace gg {
namespace {

workloads::KmeansConfig tiny_kmeans() {
  workloads::KmeansConfig cfg;
  cfg.points = 2048;
  cfg.dims = 4;
  cfg.clusters = 6;
  cfg.iterations = 8;
  return cfg;
}

class PoolSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PoolSizeTest, KmeansBitIdenticalAcrossPoolSizes) {
  // Reference: single worker.
  workloads::Kmeans ref(tiny_kmeans());
  greengpu::RunOptions ref_opts;
  ref_opts.pool_workers = 1;
  const auto ref_result =
      greengpu::run_experiment(ref, greengpu::Policy::green_gpu(), ref_opts);

  workloads::Kmeans wl(tiny_kmeans());
  greengpu::RunOptions opts;
  opts.pool_workers = GetParam();
  const auto result = greengpu::run_experiment(wl, greengpu::Policy::green_gpu(), opts);

  // Simulated time and energy are independent of host parallelism.
  EXPECT_EQ(result.exec_time.get(), ref_result.exec_time.get());
  EXPECT_EQ(result.total_energy().get(), ref_result.total_energy().get());
  EXPECT_EQ(result.final_ratio, ref_result.final_ratio);
  // Computed results are bitwise identical.
  ASSERT_EQ(wl.centroids().size(), ref.centroids().size());
  for (std::size_t i = 0; i < wl.centroids().size(); ++i) {
    EXPECT_EQ(wl.centroids()[i], ref.centroids()[i]) << "centroid component " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Pools, PoolSizeTest, ::testing::Values(2, 3, 4, 8));

TEST(Determinism, RepeatedRunsIdentical) {
  for (int round = 0; round < 3; ++round) {
    workloads::NbodyConfig cfg;
    cfg.bodies = 256;
    cfg.iterations = 6;
    workloads::Nbody a(cfg);
    workloads::Nbody b(cfg);
    const auto ra = greengpu::run_experiment(a, greengpu::Policy::scaling_only(), {});
    const auto rb = greengpu::run_experiment(b, greengpu::Policy::scaling_only(), {});
    EXPECT_EQ(ra.exec_time.get(), rb.exec_time.get());
    EXPECT_EQ(ra.gpu_energy.get(), rb.gpu_energy.get());
    EXPECT_EQ(ra.cpu_energy.get(), rb.cpu_energy.get());
    ASSERT_EQ(ra.scaler_decisions.size(), rb.scaler_decisions.size());
    for (std::size_t i = 0; i < ra.scaler_decisions.size(); ++i) {
      EXPECT_EQ(ra.scaler_decisions[i].chosen.core, rb.scaler_decisions[i].chosen.core);
      EXPECT_EQ(ra.scaler_decisions[i].chosen.mem, rb.scaler_decisions[i].chosen.mem);
    }
  }
}

TEST(Determinism, SradIdenticalAcrossPolicies) {
  // The energy policy must never change numerical results.
  workloads::SradConfig cfg;
  cfg.rows = 32;
  cfg.cols = 32;
  cfg.iterations = 5;
  workloads::Srad a(cfg);
  workloads::Srad b(cfg);
  const auto ra = greengpu::run_experiment(a, greengpu::Policy::best_performance(), {});
  const auto rb = greengpu::run_experiment(b, greengpu::Policy::static_pair(5, 5), {});
  EXPECT_TRUE(ra.verified);
  EXPECT_TRUE(rb.verified);
  // Throttled clocks stretch simulated time but never change the math.
  EXPECT_GT(rb.exec_time.get(), ra.exec_time.get());
}

}  // namespace
}  // namespace gg
