#include "src/cudalite/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace gg::cudalite {
namespace {

TEST(ThreadPool, WorkerCountDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPool, ExplicitWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ChunksAreDisjointAndCovering) {
  ThreadPool pool(4);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  pool.parallel_for_chunks(777, [&](std::size_t b, std::size_t e) {
    std::lock_guard<std::mutex> lock(m);
    ranges.emplace_back(b, e);
  });
  std::sort(ranges.begin(), ranges.end());
  std::size_t expect_begin = 0;
  for (const auto& [b, e] : ranges) {
    EXPECT_EQ(b, expect_begin);
    EXPECT_GT(e, b);
    expect_begin = e;
  }
  EXPECT_EQ(expect_begin, 777u);
}

TEST(ThreadPool, ChunkCountBoundedByN) {
  ThreadPool pool(8);
  EXPECT_EQ(pool.chunk_count(0), 0u);
  EXPECT_EQ(pool.chunk_count(3), 3u);
  EXPECT_LE(pool.chunk_count(1000000), 8u * 4u);
}

TEST(ThreadPool, MapReduceDeterministicSum) {
  ThreadPool pool(4);
  std::vector<double> xs(10000);
  std::iota(xs.begin(), xs.end(), 1.0);
  const auto map = [&xs](std::size_t b, std::size_t e) {
    double s = 0.0;
    for (std::size_t i = b; i < e; ++i) s += xs[i];
    return s;
  };
  const auto combine = [](double a, double b) { return a + b; };
  const double s1 = pool.map_reduce<double>(xs.size(), 0.0, map, combine);
  const double s2 = pool.map_reduce<double>(xs.size(), 0.0, map, combine);
  EXPECT_EQ(s1, s2);  // bit-identical across runs (ordered combine)
  EXPECT_DOUBLE_EQ(s1, 10000.0 * 10001.0 / 2.0);
}

TEST(ThreadPool, ExceptionPropagatesToSubmitter) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 57) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool remains usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ManyBackToBackBatches) {
  // Regression test for the batch-lifetime race: rapid successive batches
  // must not crash or lose work.
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(50, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 50);
  }
}

TEST(ThreadPool, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.parallel_for(100, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, LargeNSmallPool) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(100000, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 99999ull * 100000ull / 2ull);
}

}  // namespace
}  // namespace gg::cudalite
