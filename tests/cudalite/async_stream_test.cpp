#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/cudalite/api.h"

namespace gg::cudalite {
namespace {

class AsyncStreamTest : public ::testing::Test {
 protected:
  AsyncStreamTest() : rt_(platform_, /*pool_workers=*/2) {}

  /// Frequency-independent kernel estimate: simulated duration = seconds.
  [[nodiscard]] static WorkEstimate kernel_of(double seconds) {
    WorkEstimate est;
    est.units = 1.0;
    est.overhead_per_unit_s = seconds;
    return est;
  }

  [[nodiscard]] double transfer_seconds(double bytes) const {
    return platform_.bus().transfer_time(bytes).get();
  }

  sim::Platform platform_;
  Runtime rt_;
};

TEST_F(AsyncStreamTest, CopyAndKernelOnSeparateStreamsOverlap) {
  auto copy_stream = rt_.create_stream();
  auto kern_stream = rt_.create_stream();
  auto dev = rt_.alloc<double>(16);
  std::vector<double> host(16, 1.0);

  const double sim_bytes = 1.5e9;  // ~0.5 s on the default bus
  const Seconds t0 = platform_.now();
  rt_.memcpy_h2d_async(copy_stream, dev, host, sim_bytes);
  ASSERT_TRUE(rt_.launch_range(kern_stream, 16, kernel_of(1.0),
                               [](std::size_t, std::size_t) {}));
  rt_.device_synchronize();

  // Makespan is the max of the two legs, not the sum: the DMA engine ran
  // under the kernel.
  EXPECT_NEAR((platform_.now() - t0).get(), 1.0, 1e-9);
  const RuntimeStats stats = rt_.stats();
  EXPECT_NEAR(stats.overlapped_seconds, transfer_seconds(sim_bytes), 1e-9);
  EXPECT_EQ(stats.async_copies, 1u);
  rt_.free(dev);
}

TEST_F(AsyncStreamTest, SameStreamOpsSerializeInOrder) {
  auto stream = rt_.create_stream();
  auto dev = rt_.alloc<double>(16);
  std::vector<double> host(16, 1.0);

  const double sim_bytes = 1.5e9;
  const Seconds t0 = platform_.now();
  rt_.memcpy_h2d_async(stream, dev, host, sim_bytes);
  ASSERT_TRUE(
      rt_.launch_range(stream, 16, kernel_of(1.0), [](std::size_t, std::size_t) {}));
  rt_.synchronize(stream);

  // In-order stream: upload then kernel, end to end.
  EXPECT_NEAR((platform_.now() - t0).get(), transfer_seconds(sim_bytes) + 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(rt_.stats().overlapped_seconds, 0.0);
  rt_.free(dev);
}

TEST_F(AsyncStreamTest, StreamWaitEventDefersDependentWork) {
  auto producer = rt_.create_stream();
  auto consumer = rt_.create_stream();
  auto dev = rt_.alloc<double>(16);
  std::vector<double> host(16, 2.0);

  const double sim_bytes = 1.5e9;
  const Seconds t0 = platform_.now();
  rt_.memcpy_h2d_async(producer, dev, host, sim_bytes);
  const Event uploaded = rt_.record_event(producer);
  rt_.stream_wait_event(consumer, uploaded);

  Seconds kernel_done{-1.0};
  ASSERT_TRUE(rt_.launch_range(
      consumer, 16, kernel_of(0.25), [](std::size_t, std::size_t) {},
      [&] { kernel_done = platform_.now(); }));
  rt_.device_synchronize();

  // The dependent kernel could not start before the upload completed.
  EXPECT_NEAR((kernel_done - t0).get(), transfer_seconds(sim_bytes) + 0.25, 1e-9);
  rt_.free(dev);
}

TEST_F(AsyncStreamTest, WaitOnCompletedEventIsFree) {
  auto a = rt_.create_stream();
  auto b = rt_.create_stream();
  // Nothing in flight on `a`: its event is born complete and must not stall
  // `b` or advance time.
  const Event e = rt_.record_event(a);
  rt_.stream_wait_event(b, e);
  const Seconds t0 = platform_.now();
  rt_.synchronize(b);
  EXPECT_EQ(platform_.now(), t0);
}

TEST_F(AsyncStreamTest, AsyncCallbackFiresAtSimulatedCompletion) {
  auto stream = rt_.create_stream();
  auto dev = rt_.alloc<int>(8);
  std::vector<int> host(8, 3);
  const double sim_bytes = 6.0e8;
  Seconds done{-1.0};
  rt_.memcpy_h2d_async(stream, dev, host, sim_bytes, [&] { done = platform_.now(); });
  rt_.synchronize(stream);
  EXPECT_NEAR(done.get(), transfer_seconds(sim_bytes), 1e-12);
  rt_.free(dev);
}

TEST_F(AsyncStreamTest, RealDataMovesEagerlyAtEnqueue) {
  auto stream = rt_.create_stream();
  auto dev = rt_.alloc<int>(100);
  std::vector<int> host(100);
  std::iota(host.begin(), host.end(), 0);

  // Before any simulated time passes the device buffer already holds the
  // data (host program order), and a D2H enqueue reads it back immediately.
  rt_.memcpy_h2d_async(stream, dev, host, 1.5e9);
  std::vector<int> back(100, -1);
  rt_.memcpy_d2h_async(stream, back.data(), dev, back.size(), 1.5e9);
  EXPECT_EQ(back, host);
  rt_.synchronize(stream);
  rt_.free(dev);
}

TEST_F(AsyncStreamTest, StatsCountExactBytesAndQueueDepth) {
  auto stream = rt_.create_stream();
  auto dev = rt_.alloc<double>(1000);
  std::vector<double> host(1000, 1.0);

  // No sim_bytes override: counters must reflect the real sizes, exactly.
  rt_.memcpy_h2d_async(stream, dev, host);
  ASSERT_TRUE(
      rt_.launch_range(stream, 8, kernel_of(0.01), [](std::size_t, std::size_t) {}));
  std::vector<double> back(500);
  rt_.memcpy_d2h_async(stream, back.data(), dev, back.size());
  const RuntimeStats mid = rt_.stats();
  rt_.synchronize(stream);

  const RuntimeStats stats = rt_.stats();
  EXPECT_EQ(stats.bytes_h2d, std::uint64_t{8000});
  EXPECT_EQ(stats.bytes_d2h, std::uint64_t{4000});
  EXPECT_EQ(stats.async_copies, 2u);
  EXPECT_EQ(stats.h2d_copies, 1u);
  EXPECT_EQ(stats.d2h_copies, 1u);
  // Kernel + trailing copy were both pending behind the in-flight upload.
  EXPECT_GE(mid.peak_stream_depth, 2u);
  rt_.free(dev);
}

}  // namespace
}  // namespace gg::cudalite
