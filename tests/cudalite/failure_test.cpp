// Failure injection: errors inside kernels and misuse of the runtime must
// surface as exceptions and leave the stack usable.
#include <gtest/gtest.h>

#include "src/cudalite/api.h"

namespace gg::cudalite {
namespace {

using namespace gg::literals;

class FailureTest : public ::testing::Test {
 protected:
  FailureTest() : rt_(platform_, 2) {}

  WorkEstimate small_estimate() {
    WorkEstimate est;
    est.units = 1.0;
    est.overhead_per_unit_s = 1e-3;
    return est;
  }

  sim::Platform platform_;
  Runtime rt_;
};

TEST_F(FailureTest, KernelExceptionPropagatesFromLaunch) {
  auto stream = rt_.create_stream();
  EXPECT_THROW(rt_.launch_range(stream, 100, small_estimate(),
                                [](std::size_t b, std::size_t) {
                                  if (b == 0) throw std::runtime_error("kernel bug");
                                }),
               std::runtime_error);
}

TEST_F(FailureTest, RuntimeUsableAfterKernelException) {
  auto stream = rt_.create_stream();
  try {
    rt_.launch_range(stream, 100, small_estimate(),
                     [](std::size_t, std::size_t) { throw std::runtime_error("boom"); });
  } catch (const std::runtime_error&) {
  }
  // NOTE: the failed launch was still submitted to the simulated device
  // (real CUDA would poison the context; we keep going).  Drain it.
  rt_.synchronize(stream);
  int sum = 0;
  rt_.launch_range(stream, 10, small_estimate(),
                   [&](std::size_t b, std::size_t e) { sum += static_cast<int>(e - b); });
  rt_.synchronize(stream);
  EXPECT_EQ(sum, 10);
}

TEST_F(FailureTest, HostTaskExceptionPropagates) {
  sim::CpuWork w;
  w.units = 1.0;
  w.overhead_per_unit = 1_ms;
  EXPECT_THROW(rt_.host_submit(w, [] { throw std::logic_error("host bug"); }),
               std::logic_error);
}

TEST_F(FailureTest, WaitWithNothingPendingThrowsInsteadOfHanging) {
  // wait_until with an unsatisfiable predicate and an empty queue must not
  // deadlock: it reports the logic error.
  EXPECT_THROW(rt_.wait_until([] { return false; }), std::logic_error);
}

TEST_F(FailureTest, SetDeviceOutOfRangeThrows) {
  EXPECT_EQ(rt_.device_count(), 1u);
  EXPECT_THROW(rt_.set_device(1), std::out_of_range);
  EXPECT_EQ(rt_.current_device(), 0u);
}

TEST_F(FailureTest, UseAfterFreeIsCaughtByRangeCheck) {
  auto buf = rt_.alloc<int>(8);
  rt_.free(buf);
  std::vector<int> host(8, 0);
  EXPECT_THROW(rt_.memcpy_h2d(buf, host), std::out_of_range);  // invalidated handle
}

TEST_F(FailureTest, SpinStateRestoredAfterWaitError) {
  try {
    rt_.wait_until([] { return false; });
  } catch (const std::logic_error&) {
  }
  EXPECT_FALSE(platform_.cpu().spinning());
}

TEST_F(FailureTest, ZeroUnitEstimateRejected) {
  auto stream = rt_.create_stream();
  WorkEstimate est;  // all zero
  EXPECT_THROW(rt_.launch_range(stream, 4, est, [](std::size_t, std::size_t) {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace gg::cudalite
