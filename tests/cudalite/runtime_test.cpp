#include "src/cudalite/api.h"

#include <gtest/gtest.h>

#include <numeric>

namespace gg::cudalite {
namespace {

using namespace gg::literals;

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() : rt_(platform_, /*pool_workers=*/2) {}

  sim::Platform platform_;
  Runtime rt_;
};

TEST_F(RuntimeTest, AllocTracksStats) {
  auto buf = rt_.alloc<double>(100);
  EXPECT_TRUE(buf.valid());
  EXPECT_EQ(buf.size(), 100u);
  EXPECT_EQ(rt_.stats().device_bytes_in_use, 800u);
  rt_.free(buf);
  EXPECT_FALSE(buf.valid());
  EXPECT_EQ(rt_.stats().device_bytes_in_use, 0u);
  EXPECT_EQ(rt_.stats().device_bytes_peak, 800u);
}

TEST_F(RuntimeTest, ZeroAllocThrows) {
  EXPECT_THROW(rt_.alloc<int>(0), std::invalid_argument);
}

TEST_F(RuntimeTest, FreeUnknownPointerThrows) {
  DeviceBuffer<int> fake;
  EXPECT_NO_THROW(rt_.free(fake));  // null is a no-op, like cudaFree(0)
  auto buf = rt_.alloc<int>(4);
  auto copy = buf;
  rt_.free(buf);
  EXPECT_THROW(rt_.free(copy), std::invalid_argument);
}

TEST_F(RuntimeTest, MemcpyRoundTripPreservesData) {
  std::vector<int> host(1000);
  std::iota(host.begin(), host.end(), 0);
  auto dev = rt_.alloc<int>(1000);
  rt_.memcpy_h2d(dev, host);
  std::vector<int> back;
  rt_.memcpy_d2h(back, dev);
  EXPECT_EQ(back, host);
}

TEST_F(RuntimeTest, MemcpyChargesBusTime) {
  std::vector<double> host(1 << 20);  // 8 MiB
  auto dev = rt_.alloc<double>(host.size());
  const Seconds before = platform_.now();
  rt_.memcpy_h2d(dev, host);
  const double bytes = static_cast<double>(host.size() * sizeof(double));
  const Seconds expected = platform_.bus().transfer_time(bytes);
  EXPECT_NEAR((platform_.now() - before).get(), expected.get(), 1e-12);
  EXPECT_EQ(rt_.stats().h2d_copies, 1u);
  EXPECT_EQ(rt_.stats().bytes_h2d, host.size() * sizeof(double));
}

TEST_F(RuntimeTest, MemcpyOutOfRangeThrows) {
  auto dev = rt_.alloc<int>(10);
  std::vector<int> host(11);
  EXPECT_THROW(rt_.memcpy_h2d(dev, host), std::out_of_range);
}

TEST_F(RuntimeTest, LaunchExecutesEveryThread) {
  auto stream = rt_.create_stream();
  std::vector<std::atomic<int>> hits(64);
  WorkEstimate est;
  est.units = 1.0;
  est.overhead_per_unit_s = 1e-3;
  rt_.launch(stream, Dim3{4, 2, 1}, Dim3{8, 1, 1}, est, [&](const ThreadCtx& ctx) {
    hits[ctx.global_id()].fetch_add(1);
  });
  rt_.synchronize(stream);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(rt_.stats().kernels_launched, 1u);
}

TEST_F(RuntimeTest, LaunchRangeCoversAllIndices) {
  auto stream = rt_.create_stream();
  std::vector<std::atomic<int>> hits(1000);
  WorkEstimate est;
  est.units = 1000.0;
  est.overhead_per_unit_s = 1e-6;
  rt_.launch_range(stream, 1000, est, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  rt_.synchronize(stream);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(RuntimeTest, SimulatedDurationFollowsEstimateNotHostSpeed) {
  auto stream = rt_.create_stream();
  WorkEstimate est;
  est.units = 100.0;
  est.overhead_per_unit_s = 0.01;  // 1 simulated second
  const Seconds before = platform_.now();
  rt_.launch_range(stream, 10, est, [](std::size_t, std::size_t) {});
  rt_.synchronize(stream);
  EXPECT_NEAR((platform_.now() - before).get(), 1.0, 1e-9);
}

TEST_F(RuntimeTest, EmptyLaunchThrows) {
  auto stream = rt_.create_stream();
  WorkEstimate est;
  est.overhead_per_unit_s = 1e-3;
  EXPECT_THROW(rt_.launch(stream, Dim3{0, 1, 1}, Dim3{1, 1, 1}, est,
                          [](const ThreadCtx&) {}),
               std::invalid_argument);
  EXPECT_THROW(rt_.launch_range(stream, 0, est, [](std::size_t, std::size_t) {}),
               std::invalid_argument);
}

TEST_F(RuntimeTest, HostSpinsDuringSynchronize) {
  // The synchronous stack: while waiting on the GPU, the CPU reads 100 %
  // utilization (Section VII-A).
  auto stream = rt_.create_stream();
  WorkEstimate est;
  est.units = 1.0;
  est.overhead_per_unit_s = 2.0;  // 2 simulated seconds
  rt_.launch_range(stream, 1, est, [](std::size_t, std::size_t) {});
  rt_.synchronize(stream);
  const auto counters = platform_.cpu().counters();
  EXPECT_NEAR(counters.spin_integral, 2.0, 1e-9);
  EXPECT_NEAR(counters.util_integral, 2.0, 1e-9);  // both cores pegged
}

TEST_F(RuntimeTest, AsyncModeDoesNotSpin) {
  sim::Platform p2;
  Runtime rt2(p2, 2, /*sync_spin=*/false);
  auto stream = rt2.create_stream();
  WorkEstimate est;
  est.units = 1.0;
  est.overhead_per_unit_s = 2.0;
  rt2.launch_range(stream, 1, est, [](std::size_t, std::size_t) {});
  rt2.synchronize(stream);
  EXPECT_NEAR(p2.cpu().counters().spin_integral, 0.0, 1e-12);
}

TEST_F(RuntimeTest, HostSubmitRunsFnAndSimulatesDuration) {
  bool ran = false;
  sim::CpuWork work;
  work.units = 1.0;
  work.overhead_per_unit = 3_s;
  bool completed = false;
  rt_.host_submit(work, [&] { ran = true; }, [&] { completed = true; });
  EXPECT_TRUE(ran);  // real computation happens immediately
  EXPECT_FALSE(completed);
  rt_.device_synchronize();
  EXPECT_TRUE(completed);
  EXPECT_NEAR(platform_.now().get(), 3.0, 1e-9);
}

TEST_F(RuntimeTest, ConcurrentGpuAndCpuWorkOverlap) {
  // GPU 2 s + CPU 3 s submitted together must finish at max, not sum.
  auto stream = rt_.create_stream();
  WorkEstimate est;
  est.units = 1.0;
  est.overhead_per_unit_s = 2.0;
  rt_.launch_range(stream, 1, est, [](std::size_t, std::size_t) {});
  sim::CpuWork work;
  work.units = 1.0;
  work.overhead_per_unit = 3_s;
  rt_.host_submit(work, [] {});
  rt_.device_synchronize();
  EXPECT_NEAR(platform_.now().get(), 3.0, 1e-9);
}

TEST_F(RuntimeTest, EventRecordsCompletionTime) {
  auto stream = rt_.create_stream();
  WorkEstimate est;
  est.units = 1.0;
  est.overhead_per_unit_s = 1.5;
  rt_.launch_range(stream, 1, est, [](std::size_t, std::size_t) {});
  Event ev = rt_.record_event(stream);
  EXPECT_FALSE(ev.complete());
  EXPECT_THROW(ev.time(), std::logic_error);
  rt_.synchronize(stream);
  EXPECT_TRUE(ev.complete());
  EXPECT_NEAR(ev.time().get(), 1.5, 1e-6);
}

TEST_F(RuntimeTest, EventOnIdleStreamCompletesImmediately) {
  auto stream = rt_.create_stream();
  Event ev = rt_.record_event(stream);
  EXPECT_TRUE(ev.complete());
  EXPECT_EQ(ev.time(), platform_.now());
}

TEST_F(RuntimeTest, StreamOutstandingCount) {
  auto stream = rt_.create_stream();
  WorkEstimate est;
  est.units = 1.0;
  est.overhead_per_unit_s = 1.0;
  rt_.launch_range(stream, 1, est, [](std::size_t, std::size_t) {});
  rt_.launch_range(stream, 1, est, [](std::size_t, std::size_t) {});
  EXPECT_EQ(stream.outstanding(), 2u);
  rt_.synchronize(stream);
  EXPECT_EQ(stream.outstanding(), 0u);
}

}  // namespace
}  // namespace gg::cudalite
