#include "src/cudalite/nvml.h"
#include "src/cudalite/nvsettings.h"

#include <gtest/gtest.h>

#include "src/cudalite/api.h"

namespace gg::cudalite {
namespace {

using namespace gg::literals;

class NvmlTest : public ::testing::Test {
 protected:
  NvmlTest() : rt_(platform_, 2) {
    platform_.gpu().set_core_level(0);
    platform_.gpu().set_mem_level(0);
  }

  void run_busy(double uc, double um, double seconds) {
    auto stream = rt_.create_stream();
    WorkEstimate est;
    est.units = 1.0;
    const auto& spec = platform_.gpu().spec();
    est.core_cycles_per_unit = uc * seconds * spec.core_throughput(576_MHz);
    est.mem_bytes_per_unit = um * seconds * spec.mem_bandwidth(900_MHz);
    est.overhead_per_unit_s = seconds;
    rt_.launch_range(stream, 1, est, [](std::size_t, std::size_t) {});
    rt_.synchronize(stream);
  }

  sim::Platform platform_;
  Runtime rt_;
};

TEST_F(NvmlTest, UtilizationPercentagesMatchActivity) {
  NvmlDevice nvml(platform_);
  run_busy(0.62, 0.27, 1.0);
  const UtilizationRates u = nvml.utilization_rates();
  EXPECT_EQ(u.gpu, 62u);
  EXPECT_EQ(u.memory, 27u);
}

TEST_F(NvmlTest, IdleWindowReadsZero) {
  NvmlDevice nvml(platform_);
  platform_.queue().run_until(platform_.now() + 5_s);
  const UtilizationRates u = nvml.utilization_rates();
  EXPECT_EQ(u.gpu, 0u);
  EXPECT_EQ(u.memory, 0u);
}

TEST_F(NvmlTest, SaturatesAtHundred) {
  NvmlDevice nvml(platform_);
  run_busy(1.0, 1.0, 1.0);
  const UtilizationRates u = nvml.utilization_rates();
  EXPECT_EQ(u.gpu, 100u);
  EXPECT_EQ(u.memory, 100u);
}

TEST_F(NvmlTest, WindowResetsBetweenQueries) {
  NvmlDevice nvml(platform_);
  run_busy(0.5, 0.5, 1.0);
  (void)nvml.utilization_rates();
  platform_.queue().run_until(platform_.now() + 1_s);  // idle second
  const UtilizationRates u = nvml.utilization_rates();
  EXPECT_EQ(u.gpu, 0u);
}

TEST_F(NvmlTest, ClockQueriesFollowLevels) {
  NvmlDevice nvml(platform_);
  NvSettings settings(platform_);
  settings.set_clock_levels(3, 1);
  EXPECT_DOUBLE_EQ(nvml.clock(ClockDomain::kCore).get(), 410.0);
  EXPECT_DOUBLE_EQ(nvml.clock(ClockDomain::kMemory).get(), 820.0);
}

TEST_F(NvmlTest, NvSettingsRoundTrip) {
  NvSettings settings(platform_);
  settings.set_clock_levels(2, 4);
  const auto [core, mem] = settings.clock_levels();
  EXPECT_EQ(core, 2u);
  EXPECT_EQ(mem, 4u);
  EXPECT_EQ(settings.core_table().levels(), 6u);
  EXPECT_EQ(settings.mem_table().levels(), 6u);
}

}  // namespace
}  // namespace gg::cudalite
