// End-to-end multi-GPU experiments: correctness of the divided computation
// and the expected scaling behaviour.
#include <gtest/gtest.h>

#include "src/greengpu/multi_runner.h"
#include "src/workloads/hotspot.h"
#include "src/workloads/kmeans.h"

namespace gg {
namespace {

greengpu::MultiRunOptions fast() {
  greengpu::MultiRunOptions o;
  o.pool_workers = 2;
  return o;
}

workloads::KmeansConfig small_kmeans() {
  workloads::KmeansConfig cfg;
  cfg.points = 2048;
  cfg.dims = 4;
  cfg.clusters = 5;
  cfg.iterations = 10;
  return cfg;
}

TEST(MultiGpu, SingleGpuMatchesAnalyticBalance) {
  workloads::Kmeans wl{};
  const auto r = greengpu::run_multi_experiment(
      wl, 1, greengpu::MultiPolicy::division_only(greengpu::MultiDividerKind::kProfiling),
      fast());
  EXPECT_TRUE(r.verified);
  ASSERT_EQ(r.final_shares.size(), 2u);
  EXPECT_NEAR(r.final_shares[0], 1.0 / 7.0, 0.01);  // cpu_slowdown 6
}

TEST(MultiGpu, TwoGpusConvergeToWaterfillShares) {
  workloads::Kmeans wl{};
  const auto r = greengpu::run_multi_experiment(
      wl, 2, greengpu::MultiPolicy::division_only(greengpu::MultiDividerKind::kProfiling),
      fast());
  EXPECT_TRUE(r.verified);
  ASSERT_EQ(r.final_shares.size(), 3u);
  EXPECT_NEAR(r.final_shares[0], 1.0 / 13.0, 0.01);
  EXPECT_NEAR(r.final_shares[1], 6.0 / 13.0, 0.01);
  EXPECT_NEAR(r.final_shares[2], 6.0 / 13.0, 0.01);
}

TEST(MultiGpu, MoreGpusShortenExecution) {
  workloads::Kmeans one(small_kmeans());
  workloads::Kmeans two(small_kmeans());
  const auto policy =
      greengpu::MultiPolicy::division_only(greengpu::MultiDividerKind::kProfiling);
  const auto r1 = greengpu::run_multi_experiment(one, 1, policy, fast());
  const auto r2 = greengpu::run_multi_experiment(two, 2, policy, fast());
  EXPECT_TRUE(r1.verified);
  EXPECT_TRUE(r2.verified);
  EXPECT_LT(r2.exec_time.get(), r1.exec_time.get() * 0.65);
}

TEST(MultiGpu, BaselinePutsEverythingOnGpuZero) {
  workloads::Kmeans wl(small_kmeans());
  const auto r =
      greengpu::run_multi_experiment(wl, 2, greengpu::MultiPolicy::baseline(), fast());
  EXPECT_TRUE(r.verified);
  ASSERT_EQ(r.per_gpu_energy.size(), 2u);
  // Card 1 idles: its energy is its idle power times the run, strictly less
  // than the busy card's.
  EXPECT_LT(r.per_gpu_energy[1].get(), r.per_gpu_energy[0].get());
}

TEST(MultiGpu, FixedSharesHonoured) {
  workloads::Kmeans wl(small_kmeans());
  greengpu::MultiPolicy policy = greengpu::MultiPolicy::baseline();
  policy.fixed_shares = {0.2, 0.4, 0.4};
  const auto r = greengpu::run_multi_experiment(wl, 2, policy, fast());
  EXPECT_TRUE(r.verified);
  for (const auto& it : r.iterations) {
    EXPECT_DOUBLE_EQ(it.shares[0], 0.2);
    EXPECT_DOUBLE_EQ(it.shares[1], 0.4);
  }
}

TEST(MultiGpu, BadFixedSharesThrow) {
  workloads::Kmeans wl(small_kmeans());
  greengpu::MultiPolicy policy = greengpu::MultiPolicy::baseline();
  policy.fixed_shares = {0.5, 0.5};  // wrong size for 2 GPUs
  EXPECT_THROW(greengpu::run_multi_experiment(wl, 2, policy, fast()),
               std::invalid_argument);
}

TEST(MultiGpu, GreenGpuScalesEachCard) {
  workloads::Hotspot wl{};
  const auto green = greengpu::run_multi_experiment(
      wl, 2, greengpu::MultiPolicy::green_gpu(greengpu::MultiDividerKind::kProfiling),
      fast());
  EXPECT_TRUE(green.verified);
  workloads::Hotspot base_wl{};
  greengpu::MultiPolicy base_policy = greengpu::MultiPolicy::baseline();
  const auto base = greengpu::run_multi_experiment(base_wl, 2, base_policy, fast());
  // Holistic multi-GPU beats the all-on-one-GPU default.
  EXPECT_LT(green.total_energy().get(), base.total_energy().get());
  EXPECT_LT(green.exec_time.get(), base.exec_time.get());
}

TEST(MultiGpu, NonDivisibleWorkloadRunsOnGpuZero) {
  const auto r = greengpu::run_multi_experiment(
      "pathfinder", 2, greengpu::MultiPolicy::green_gpu(), fast());
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.per_gpu_energy[0].get(), r.per_gpu_energy[1].get());
}

TEST(MultiGpu, ZeroGpusRejected) {
  workloads::Kmeans wl(small_kmeans());
  EXPECT_THROW(
      greengpu::run_multi_experiment(wl, 0, greengpu::MultiPolicy::baseline(), fast()),
      std::invalid_argument);
}

}  // namespace
}  // namespace gg
