// Cross-cutting accounting invariants: energy conservation between the
// per-iteration records, the meters, and the trace, for every policy kind.
#include <gtest/gtest.h>

#include "src/greengpu/policy.h"
#include "src/greengpu/runner.h"
#include "src/workloads/registry.h"

namespace gg {
namespace {

std::vector<greengpu::Policy> all_policies() {
  return {greengpu::Policy::best_performance(),
          greengpu::Policy::static_pair(2, 3),
          greengpu::Policy::static_division(0.25),
          greengpu::Policy::scaling_only(),
          greengpu::Policy::division_only(),
          greengpu::Policy::division_with(greengpu::DividerKind::kProfiling),
          greengpu::Policy::division_with(greengpu::DividerKind::kEnergyModel),
          greengpu::Policy::green_gpu()};
}

class AccountingTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AccountingTest, EnergyAndTimeConserved) {
  const greengpu::Policy policy = all_policies()[GetParam()];
  greengpu::RunOptions o;
  o.pool_workers = 2;
  o.record_trace = true;
  o.trace_period = Seconds{1.0};
  const auto r = greengpu::run_experiment("kmeans", policy, o);

  EXPECT_TRUE(r.verified) << policy.name;
  EXPECT_GT(r.exec_time.get(), 0.0);
  EXPECT_GT(r.gpu_energy.get(), 0.0);
  EXPECT_GT(r.cpu_energy.get(), 0.0);

  // Iteration-level records sum to (almost) the run totals; the difference
  // is setup/teardown transfer time.
  double iter_energy = 0.0;
  double iter_time = 0.0;
  for (const auto& it : r.iterations) {
    EXPECT_GE(it.duration.get(), 0.0);
    EXPECT_GE(std::max(it.cpu_time.get(), it.gpu_time.get()), 0.0);
    EXPECT_LE(std::max(it.cpu_time.get(), it.gpu_time.get()),
              it.duration.get() + 1e-9);
    iter_energy += it.total_energy().get();
    iter_time += it.duration.get();
  }
  EXPECT_LE(iter_energy, r.total_energy().get() + 1e-6);
  EXPECT_GE(iter_energy, 0.98 * r.total_energy().get());
  EXPECT_LE(iter_time, r.exec_time.get() + 1e-9);
  EXPECT_GE(iter_time, 0.98 * r.exec_time.get());

  // The trace's average powers integrate back to (almost) the meter totals.
  double trace_energy = 0.0;
  for (const auto& s : r.trace) {
    EXPECT_GE(s.gpu_power.get(), 0.0);
    EXPECT_GE(s.cpu_power.get(), 0.0);
    EXPECT_GE(s.gpu_core_util, -1e-12);
    EXPECT_LE(s.gpu_core_util, 1.0 + 1e-12);
    trace_energy += (s.gpu_power.get() + s.cpu_power.get()) * 1.0;
  }
  // Trace covers whole seconds; the tail fraction is uncovered.
  EXPECT_LE(trace_energy, r.total_energy().get() + 1e-6);
  EXPECT_GE(trace_energy, 0.97 * r.total_energy().get());

  // Dynamic energy and emulation identities.
  EXPECT_GE(r.gpu_dynamic_energy().get(), 0.0);
  EXPECT_LE(r.gpu_dynamic_energy().get(), r.gpu_energy.get());
  EXPECT_LE(r.emulated_cpu_throttle_energy().get(), r.total_energy().get() + 1e-6);
  EXPECT_LE(r.cpu_credited_spin_time.get(), r.cpu_spin_time.get() + 1e-12);
  EXPECT_LE(r.cpu_spin_time.get(), r.exec_time.get() * (1.0 + 1e-9) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, AccountingTest, ::testing::Range<std::size_t>(0, 8),
                         [](const auto& param_info) {
                           std::string n = all_policies()[param_info.param].name;
                           for (char& c : n) {
                             if (c == '-' || c == ' ') c = '_';
                           }
                           return n;
                         });

TEST(Accounting, GpuOnlyWorkloadAcrossPolicies) {
  for (const auto& policy : all_policies()) {
    greengpu::RunOptions o;
    o.pool_workers = 2;
    const auto r = greengpu::run_experiment("pathfinder", policy, o);
    EXPECT_TRUE(r.verified) << policy.name;
    EXPECT_EQ(r.final_ratio, 0.0) << policy.name;  // not divisible
  }
}

}  // namespace
}  // namespace gg
