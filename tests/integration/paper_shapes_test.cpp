// End-to-end reproduction properties: the qualitative shapes of the paper's
// figures must hold on the simulated testbed (see DESIGN.md section 5).
#include <gtest/gtest.h>

#include "src/greengpu/policy.h"
#include "src/greengpu/runner.h"
#include "src/workloads/registry.h"

namespace gg {
namespace {

greengpu::RunOptions fast() {
  greengpu::RunOptions o;
  o.pool_workers = 2;
  return o;
}

// --- Fig. 1: frequency sweeps ----------------------------------------------

TEST(Fig1Shapes, MemoryThrottlingNearlyFreeForCoreBoundedNbody) {
  const auto base =
      greengpu::run_experiment("nbody", greengpu::Policy::static_pair(0, 0), fast());
  const auto throttled =
      greengpu::run_experiment("nbody", greengpu::Policy::static_pair(0, 5), fast());
  // Fig. 1a: negligible time impact, real energy saving.
  EXPECT_LT(throttled.exec_time.get(), base.exec_time.get() * 1.02);
  EXPECT_LT(throttled.gpu_energy.get(), base.gpu_energy.get());
}

TEST(Fig1Shapes, CoreThrottlingHurtsCoreBoundedNbody) {
  const auto base =
      greengpu::run_experiment("nbody", greengpu::Policy::static_pair(0, 0), fast());
  const auto throttled =
      greengpu::run_experiment("nbody", greengpu::Policy::static_pair(5, 0), fast());
  // Fig. 1c/1d: both time and energy get worse.
  EXPECT_GT(throttled.exec_time.get(), base.exec_time.get() * 1.3);
  EXPECT_GT(throttled.gpu_energy.get(), base.gpu_energy.get());
}

TEST(Fig1Shapes, StreamclusterCoreKneeAt410MHz) {
  // Section III-A: reducing SC's core clock to ~410 MHz is nearly free;
  // going further hurts.
  const auto base = greengpu::run_experiment("streamcluster",
                                             greengpu::Policy::static_pair(0, 0), fast());
  const auto at_knee = greengpu::run_experiment(
      "streamcluster", greengpu::Policy::static_pair(3, 0), fast());
  const auto below_knee = greengpu::run_experiment(
      "streamcluster", greengpu::Policy::static_pair(5, 0), fast());
  EXPECT_LT(at_knee.exec_time.get(), base.exec_time.get() * 1.03);
  EXPECT_LT(at_knee.gpu_energy.get(), base.gpu_energy.get());
  EXPECT_GT(below_knee.exec_time.get(), base.exec_time.get() * 1.15);
}

TEST(Fig1Shapes, MemoryThrottlingHurtsStreamclusterEventually) {
  const auto base = greengpu::run_experiment("streamcluster",
                                             greengpu::Policy::static_pair(0, 0), fast());
  const auto low_mem = greengpu::run_experiment(
      "streamcluster", greengpu::Policy::static_pair(0, 5), fast());
  EXPECT_GT(low_mem.exec_time.get(), base.exec_time.get() * 1.1);
}

// --- Fig. 2: energy vs division ratio is U-shaped ---------------------------

TEST(Fig2Shape, KmeansEnergyCurveHasInteriorMinimum) {
  double energy_at[4];
  const double ratios[4] = {0.0, 0.10, 0.15, 0.60};
  for (int i = 0; i < 4; ++i) {
    const auto r = greengpu::run_experiment(
        "kmeans", greengpu::Policy::static_division(ratios[i]), fast());
    energy_at[i] = r.total_energy().get();
  }
  // Small CPU shares beat all-GPU; large CPU shares are far worse.
  EXPECT_LT(energy_at[1], energy_at[0]);
  EXPECT_LT(energy_at[2], energy_at[0]);
  EXPECT_GT(energy_at[3], energy_at[0]);
}

// --- Fig. 5/6: frequency scaling -------------------------------------------

TEST(Fig6Shapes, ScalingSavesGpuEnergyOnEveryWorkload) {
  for (const auto& name : workloads::all_workload_names()) {
    const auto base =
        greengpu::run_experiment(name, greengpu::Policy::best_performance(), fast());
    const auto scaled =
        greengpu::run_experiment(name, greengpu::Policy::scaling_only(), fast());
    EXPECT_LE(scaled.gpu_energy.get(), base.gpu_energy.get() * 1.005) << name;
    // "only marginal performance degradation"
    EXPECT_LE(scaled.exec_time.get(), base.exec_time.get() * 1.08) << name;
  }
}

TEST(Fig6Shapes, LowUtilizationWorkloadsSaveMoreThanHighUtilization) {
  // Section VII-A: PF/lud-class workloads save more than bfs-class.
  auto gpu_saving = [&](const std::string& name) {
    const auto base =
        greengpu::run_experiment(name, greengpu::Policy::best_performance(), fast());
    const auto scaled =
        greengpu::run_experiment(name, greengpu::Policy::scaling_only(), fast());
    return 1.0 - scaled.gpu_energy.get() / base.gpu_energy.get();
  };
  const double pf = gpu_saving("pathfinder");
  const double bfs = gpu_saving("bfs");
  EXPECT_GT(pf, bfs);
  EXPECT_LT(bfs, 0.05);  // high-utilization workloads save little
  EXPECT_GT(pf, 0.08);   // low-utilization workloads save a lot
}

TEST(Fig6Shapes, DynamicEnergySavingExceedsTotalSaving) {
  // Fig. 6b: expressed in dynamic (idle-subtracted) terms the savings are
  // several times larger.
  const auto base =
      greengpu::run_experiment("pathfinder", greengpu::Policy::best_performance(), fast());
  const auto scaled =
      greengpu::run_experiment("pathfinder", greengpu::Policy::scaling_only(), fast());
  const double total_saving = 1.0 - scaled.gpu_energy.get() / base.gpu_energy.get();
  const double dyn_saving =
      1.0 - scaled.gpu_dynamic_energy().get() / base.gpu_dynamic_energy().get();
  EXPECT_GT(dyn_saving, total_saving);
}

TEST(Fig6cShape, CpuThrottleEmulationAddsSavings) {
  // CPU/GPU scaling (emulated) must save more than GPU scaling alone.
  const auto base =
      greengpu::run_experiment("lud", greengpu::Policy::best_performance(), fast());
  const auto scaled =
      greengpu::run_experiment("lud", greengpu::Policy::scaling_only(), fast());
  const double gpu_only = 1.0 - scaled.total_energy().get() / base.total_energy().get();
  const double with_cpu =
      1.0 - scaled.emulated_cpu_throttle_energy().get() / base.total_energy().get();
  EXPECT_GT(with_cpu, gpu_only);
}

TEST(Fig5Shape, ScalerTraceTracksUtilizationRamp) {
  greengpu::RunOptions o = fast();
  o.record_trace = true;
  o.trace_period = Seconds{3.0};
  const auto r =
      greengpu::run_experiment("streamcluster", greengpu::Policy::scaling_only(), o);
  ASSERT_GE(r.trace.size(), 5u);
  // Starts at the lowest clocks (driver default)...
  EXPECT_LE(r.trace.front().gpu_core_freq.get(), 410.0);
  // ...and ramps up within a few intervals of the utilization rise.
  double max_core = 0.0, max_mem = 0.0;
  for (const auto& s : r.trace) {
    max_core = std::max(max_core, s.gpu_core_freq.get());
    max_mem = std::max(max_mem, s.gpu_mem_freq.get());
  }
  EXPECT_GE(max_core, 466.0);
  // Fig. 5b: memory settles below peak (at 820 MHz).
  EXPECT_GE(max_mem, 820.0);
  EXPECT_LT(max_mem, 900.0);
}

// --- Fig. 7/8: the two-tier orderings ---------------------------------------

TEST(Fig8Shapes, PolicyOrderingHoldsForBothDivisibleWorkloads) {
  for (const auto& name : workloads::divisible_workload_names()) {
    const auto base =
        greengpu::run_experiment(name, greengpu::Policy::best_performance(), fast());
    const auto scaling =
        greengpu::run_experiment(name, greengpu::Policy::scaling_only(), fast());
    const auto division =
        greengpu::run_experiment(name, greengpu::Policy::division_only(), fast());
    const auto green =
        greengpu::run_experiment(name, greengpu::Policy::green_gpu(), fast());
    // GreenGPU <= Division <= best-performance, and GreenGPU <= Scaling.
    EXPECT_LT(green.total_energy().get(), division.total_energy().get()) << name;
    EXPECT_LT(division.total_energy().get(), base.total_energy().get()) << name;
    EXPECT_LT(green.total_energy().get(), scaling.total_energy().get()) << name;
    // Division contributes more than scaling in this testbed (Section VII-C).
    EXPECT_LT(division.total_energy().get(), scaling.total_energy().get()) << name;
  }
}

TEST(Fig8Shapes, HolisticSavingIsSubstantial) {
  // Paper: 21.04 % average saving vs the Rodinia default for kmeans+hotspot.
  double total_base = 0.0, total_green = 0.0;
  for (const auto& name : workloads::divisible_workload_names()) {
    total_base += greengpu::run_experiment(name, greengpu::Policy::best_performance(),
                                           fast())
                      .total_energy()
                      .get();
    total_green +=
        greengpu::run_experiment(name, greengpu::Policy::green_gpu(), fast())
            .total_energy()
            .get();
  }
  const double saving = 1.0 - total_green / total_base;
  EXPECT_GT(saving, 0.10);  // must be a double-digit effect
}

TEST(Fig7Shapes, DivisionOnlyCloseToStaticOptimum) {
  // Section VII-B: the dynamic division's execution time is within ~6 % of
  // the best static division.
  double best_static = 1e300;
  for (double r = 0.0; r <= 0.90001; r += 0.05) {
    const auto res =
        greengpu::run_experiment("kmeans", greengpu::Policy::static_division(r), fast());
    best_static = std::min(best_static, res.exec_time.get());
  }
  const auto dynamic =
      greengpu::run_experiment("kmeans", greengpu::Policy::division_only(), fast());
  EXPECT_LT(dynamic.exec_time.get(), best_static * 1.10);
}

}  // namespace
}  // namespace gg
