// Randomized end-to-end stress: random workload configurations under random
// policies and parameters must always terminate, verify, and satisfy the
// global accounting invariants.  Seeded, so failures reproduce.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/greengpu/multi_runner.h"
#include "src/greengpu/policy.h"
#include "src/greengpu/runner.h"
#include "src/workloads/hotspot.h"
#include "src/workloads/kmeans.h"
#include "src/workloads/registry.h"

namespace gg {
namespace {

greengpu::Policy random_policy(Rng& rng) {
  switch (rng.uniform_int(6)) {
    case 0: return greengpu::Policy::best_performance();
    case 1:
      return greengpu::Policy::static_pair(rng.uniform_int(6), rng.uniform_int(6));
    case 2: return greengpu::Policy::static_division(rng.uniform(0.0, 0.9));
    case 3: {
      greengpu::GreenGpuParams params;
      params.wma.alpha_core = rng.uniform(0.01, 0.9);
      params.wma.alpha_mem = rng.uniform(0.01, 0.9);
      params.wma.phi = rng.uniform(0.05, 0.95);
      params.wma.beta = rng.uniform(0.05, 0.95);
      params.wma.interval = Seconds{rng.uniform(0.5, 8.0)};
      params.wma.util_filter_alpha = rng.uniform(0.2, 1.0);
      return greengpu::Policy::scaling_only(params);
    }
    case 4: {
      greengpu::GreenGpuParams params;
      params.division.step = rng.uniform(0.01, 0.2);
      params.division.initial_ratio = rng.uniform(0.0, 0.9);
      params.division.safeguard = rng.uniform() < 0.5;
      const auto kind = static_cast<greengpu::DividerKind>(rng.uniform_int(3));
      return greengpu::Policy::division_with(kind, params);
    }
    default: {
      greengpu::Policy p = greengpu::Policy::green_gpu();
      p.cpu_governor = static_cast<greengpu::CpuGovernorKind>(rng.uniform_int(6));
      return p;
    }
  }
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, RandomKmeansConfigUnderRandomPolicy) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 11);
  workloads::KmeansConfig cfg;
  cfg.points = 256 + rng.uniform_int(2048);
  cfg.dims = 2 + rng.uniform_int(6);
  cfg.clusters = 2 + rng.uniform_int(6);
  cfg.iterations = 3 + rng.uniform_int(12);
  cfg.seed = rng.next();
  cfg.profile.core_util = rng.uniform(0.05, 1.0);
  cfg.profile.mem_util = rng.uniform(0.05, 1.0);
  cfg.profile.unit_time_s = rng.uniform(1e-5, 1e-3);
  cfg.profile.units_per_iteration = 1000.0 + rng.uniform(0.0, 1e5);
  cfg.profile.cpu_slowdown = rng.uniform(0.5, 20.0);

  workloads::Kmeans wl(cfg);
  greengpu::RunOptions options;
  options.pool_workers = 1 + rng.uniform_int(4);
  options.sync_spin = rng.uniform() < 0.8;
  const greengpu::Policy policy = random_policy(rng);

  const auto r = greengpu::run_experiment(wl, policy, options);
  EXPECT_TRUE(r.verified) << "policy " << policy.name << " seed " << GetParam();
  EXPECT_GT(r.exec_time.get(), 0.0);
  EXPECT_GT(r.gpu_energy.get(), 0.0);
  EXPECT_GT(r.cpu_energy.get(), 0.0);
  EXPECT_GE(r.gpu_dynamic_energy().get(), -1e-6);
  EXPECT_GE(r.final_ratio, 0.0);
  EXPECT_LE(r.final_ratio, 0.95 + 1e-12);
  EXPECT_EQ(r.iterations.size(), cfg.iterations);
  for (const auto& it : r.iterations) {
    EXPECT_GE(it.duration.get(), 0.0);
    EXPECT_GE(it.total_energy().get(), 0.0);
  }
}

TEST_P(FuzzTest, RandomMultiGpuHotspot) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 40503 + 7);
  workloads::HotspotConfig cfg;
  cfg.rows = 24 + rng.uniform_int(64);
  cfg.cols = 24 + rng.uniform_int(64);
  cfg.iterations = 3 + rng.uniform_int(8);
  cfg.profile.cpu_slowdown = rng.uniform(0.5, 8.0);

  workloads::Hotspot wl(cfg);
  const std::size_t gpus = 1 + rng.uniform_int(4);
  greengpu::MultiPolicy policy =
      rng.uniform() < 0.5
          ? greengpu::MultiPolicy::green_gpu(static_cast<greengpu::MultiDividerKind>(
                rng.uniform_int(2)))
          : greengpu::MultiPolicy::division_only();
  greengpu::MultiRunOptions options;
  options.pool_workers = 2;
  const auto r = greengpu::run_multi_experiment(wl, gpus, policy, options);
  EXPECT_TRUE(r.verified) << "gpus " << gpus << " seed " << GetParam();
  double share_sum = 0.0;
  for (double s : r.final_shares) {
    EXPECT_GE(s, -1e-12);
    share_sum += s;
  }
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
  EXPECT_EQ(r.per_gpu_energy.size(), gpus);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 15));

}  // namespace
}  // namespace gg
