// greengpud — the always-on GreenGPU service.
//
// Three modes, one binary:
//
//   server (default)
//     greengpud --socket /tmp/gg.sock --journal /tmp/gg.journal [--resume]
//     Listens on a Unix socket for the line protocol (see docs/SERVICE.md),
//     runs admitted requests through the greengpu:: controllers on one
//     executor thread, journals every decision, and on SIGTERM/SIGINT stops
//     admitting, finishes in-flight work, writes the report and exits 0.
//     The executor is supervised: an injected crash (--crash-at, throw mode)
//     is caught, backed off (the same exponential-backoff schedule as
//     RecoverySupervisor, computed in-core and slept here in the shell where
//     wall clocks are sanctioned) and retried within --max-restarts.
//
//   client
//     greengpud --client --socket /tmp/gg.sock   (request lines on stdin)
//     greengpud --client --socket /tmp/gg.sock --watch [--from N]
//       [--idle-timeout-ms T]   (stream telemetry frames to stdout)
//
//   replay
//     greengpud --replay /tmp/gg.journal --window 3:7 [service flags]
//     Re-executes the journaled outcomes of records [3,7] from their
//     recorded (seed, device) and verifies them against the journal; prints
//     the window's report lines (byte-identical to the live report's) on
//     success, a divergence diagnosis on failure.
//
//   events
//     greengpud --events /tmp/gg.journal [--from N] [service flags]
//     Regenerates the telemetry stream from the journal — the offline twin
//     of `--watch`: the EVENT lines are byte-identical to what a live
//     subscriber (or a WATCH FROM resume) received for the same records.
//
// Chaos: --socket-fault-rate R (and the --socket-fault-* per-channel
// family) arms a deterministic sim::SocketFaultInjector on the server's
// transport — short reads/writes, EINTR, EPIPE, mid-frame disconnects and
// stalled peers are then drawn from a seeded stream, never from luck.
// SIGPIPE is ignored daemon-wide: a vanished peer surfaces as EPIPE on its
// own connection (slow-consumer eviction), never as process death.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "src/common/backoff.h"
#include "src/common/flags.h"
#include "src/common/killpoint.h"
#include "src/service/core.h"
#include "src/service/socket_server.h"
#include "src/service/types.h"

namespace {

std::atomic<bool> g_shutdown{false};

void on_signal(int) { g_shutdown.store(true, std::memory_order_release); }

gg::service::ServiceConfig config_from_flags(const gg::Flags& flags) {
  gg::service::ServiceConfig config;
  config.devices = static_cast<std::size_t>(flags.get_int("devices", 2));
  config.queue_capacity =
      static_cast<std::size_t>(flags.get_int("queue-cap", 8));
  config.seed = static_cast<std::uint64_t>(
      flags.get_int("seed", static_cast<long long>(config.seed)));
  config.hardened = flags.get_bool("hardened", false);
  config.max_iterations =
      static_cast<std::uint64_t>(flags.get_int("max-iterations", 0));
  config.default_cost_estimate = flags.get_double("default-cost", 60.0);
  config.faults = gg::sim::FaultConfig::from_flags(flags);
  // --faulty-device accepts one index or a comma list ("1" or "0,2").
  const std::string faulty = flags.get_string("faulty-device", "");
  for (std::size_t begin = 0; begin < faulty.size();) {
    std::size_t end = faulty.find(',', begin);
    if (end == std::string::npos) end = faulty.size();
    // GG_BOUNDED(one entry per comma-separated token of one flag value)
    config.faulty_devices.push_back(
        static_cast<std::size_t>(std::stoull(faulty.substr(begin, end - begin))));
    begin = end + 1;
  }
  config.breaker.failure_threshold =
      static_cast<int>(flags.get_int("breaker-threshold", 3));
  config.breaker.probe_after =
      static_cast<int>(flags.get_int("breaker-probe-after", 4));
  config.max_restarts = static_cast<int>(flags.get_int("max-restarts", 8));
  config.backoff.initial =
      gg::Seconds{flags.get_double("backoff-initial-s", 0.01)};
  config.backoff.max = gg::Seconds{flags.get_double("backoff-max-s", 0.1)};
  config.telemetry.ring_capacity =
      static_cast<std::size_t>(flags.get_int("telemetry-ring", 256));
  config.telemetry.max_subscribers =
      static_cast<std::size_t>(flags.get_int("telemetry-max-subs", 16));
  config.telemetry.heartbeat_ticks =
      static_cast<std::uint64_t>(flags.get_int("heartbeat-ticks", 40));
  config.telemetry.stall_budget_ticks =
      static_cast<std::uint64_t>(flags.get_int("stall-ticks", 400));
  config.validate();
  return config;
}

int run_client(const std::string& socket_path) {
  std::string lines;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, stdin) != nullptr) lines += buf;
  if (lines.empty()) return 0;
  std::fputs(gg::service::socket_request(socket_path, lines).c_str(), stdout);
  return 0;
}

int run_watch(const std::string& socket_path, std::uint64_t from,
              int idle_timeout_ms) {
  const std::string request =
      from == 0 ? "WATCH" : "WATCH FROM " + std::to_string(from);
  bool first = true;
  bool refused = false;
  const std::size_t frames = gg::service::socket_watch(
      socket_path, request, idle_timeout_ms,
      [&](const std::string& frame) {
        std::fputs(frame.c_str(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
        // The first frame is the handshake reply; a non-2xx means refused.
        if (first) {
          first = false;
          refused = frame.empty() || frame[0] != '2';
        }
        return !refused;
      });
  return refused || frames == 0 ? 1 : 0;
}

int run_events(const gg::service::ServiceConfig& config,
               const std::string& journal_path, std::uint64_t from) {
  std::string out;
  std::string error;
  if (!gg::service::ServiceCore::events_window(config, journal_path, from, out,
                                               error)) {
    std::fprintf(stderr, "events failed: %s\n", error.c_str());
    return 1;
  }
  std::fputs(out.c_str(), stdout);
  return 0;
}

int run_replay(const gg::service::ServiceConfig& config,
               const std::string& journal_path, const std::string& window) {
  const std::size_t colon = window.find(':');
  if (window.empty() || colon == std::string::npos) {
    std::fprintf(stderr, "--replay needs --window <lo>:<hi>\n");
    return 2;
  }
  const std::size_t lo = std::stoull(window.substr(0, colon));
  const std::size_t hi = std::stoull(window.substr(colon + 1));
  std::string out;
  std::string error;
  if (!gg::service::ServiceCore::replay_window(config, journal_path, lo, hi,
                                               out, error)) {
    std::fprintf(stderr, "replay failed: %s\n", error.c_str());
    return 1;
  }
  std::fputs(out.c_str(), stdout);
  return 0;
}

/// The supervised executor loop: claim under the lock, run outside it, land
/// under the lock.  A CrashInjected from either kill-point is survived with
/// exponential backoff until the restart budget runs out, mirroring
/// RecoverySupervisor's semantics for a process that must not die.
void executor_loop(gg::service::ServiceCore& core, std::mutex& mu,
                   const gg::service::ServiceConfig& config) {
  gg::common::ExponentialBackoff backoff(config.backoff);
  int restarts = 0;
  while (!g_shutdown.load(std::memory_order_acquire) ||
         [&] { std::lock_guard<std::mutex> lock(mu); return !core.drained(); }()) {
    try {
      std::optional<gg::service::ServiceCore::Job> job;
      {
        std::lock_guard<std::mutex> lock(mu);
        job = core.take_next();
      }
      if (!job) {
        if (g_shutdown.load(std::memory_order_acquire)) {
          std::lock_guard<std::mutex> lock(mu);
          if (core.drained()) return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      const auto outcome = gg::service::ServiceCore::run_job(
          core.config(), job->request, job->device, job->vtime_before);
      {
        std::lock_guard<std::mutex> lock(mu);
        core.complete(*job, outcome);
      }
      backoff.reset();
    } catch (const gg::common::CrashInjected& e) {
      if (++restarts > config.max_restarts) {
        std::fprintf(stderr, "greengpud: restart budget (%d) exhausted: %s\n",
                     config.max_restarts, e.what());
        std::exit(70);
      }
      const gg::Seconds delay = backoff.next();
      std::fprintf(stderr, "greengpud: executor crash (%s), restart %d/%d after %.3fs\n",
                   e.what(), restarts, config.max_restarts, delay.get());
      std::this_thread::sleep_for(std::chrono::duration<double>(delay.get()));
      std::lock_guard<std::mutex> lock(mu);
      core.note_restart();
      // The in-flight job stays claimed; the next take_next()/step retries it.
    }
  }
}

int run_server(const gg::service::ServiceConfig& config,
               const std::string& socket_path, const std::string& journal_path,
               const std::string& report_path, bool resume,
               const gg::sim::SocketFaultConfig& socket_faults) {
  gg::service::ServiceCore core(config, journal_path, resume);
  std::mutex mu;

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  gg::service::SocketServer server(socket_path);
  std::optional<gg::sim::SocketFaultInjector> injector;
  if (socket_faults.any_faults()) {
    injector.emplace(socket_faults);
    server.set_fault_injector(&*injector);
  }

  // The transport-to-telemetry bridge: every hook takes the core lock, so
  // stream state mutates in the same critical sections as the protocol.
  gg::service::StreamHooks hooks;
  hooks.subscribe = [&](const std::string& line, std::string& reply) {
    std::lock_guard<std::mutex> lock(mu);
    return core.watch(line, reply);
  };
  hooks.unsubscribe = [&](std::uint64_t id) {
    std::lock_guard<std::mutex> lock(mu);
    core.unwatch(id);
  };
  hooks.next_frame = [&](std::uint64_t id) {
    std::lock_guard<std::mutex> lock(mu);
    return core.next_frame(id);
  };
  hooks.note_progress = [&](std::uint64_t id, bool progressed) {
    std::lock_guard<std::mutex> lock(mu);
    core.telemetry_progress(id, progressed);
  };
  hooks.tick = [&] {
    std::lock_guard<std::mutex> lock(mu);
    return core.telemetry_tick();
  };

  std::thread executor([&] { executor_loop(core, mu, config); });

  server.serve(
      [&](const std::string& line) {
        std::lock_guard<std::mutex> lock(mu);
        return core.handle_line(line);
      },
      hooks, g_shutdown);

  // Graceful drain: the socket stopped admitting; let the executor finish
  // everything queued and in flight, then derive the report from the journal.
  {
    std::lock_guard<std::mutex> lock(mu);
    (void)core.handle_line("DRAIN");
  }
  executor.join();
  if (!report_path.empty()) {
    std::lock_guard<std::mutex> lock(mu);
    core.write_report(report_path);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Daemon-wide: a peer that vanishes mid-write must surface as EPIPE on
    // its own connection (handled as slow-consumer eviction), never as a
    // process-killing signal.
    std::signal(SIGPIPE, SIG_IGN);

    gg::Flags flags(argc, argv);
    const bool client = flags.get_bool("client", false);
    const bool watch = flags.get_bool("watch", false);
    const std::string replay = flags.get_string("replay", "");
    const std::string events = flags.get_string("events", "");
    const std::string socket_path = flags.get_string("socket", "");
    const std::string journal_path = flags.get_string("journal", "");
    const std::string report_path = flags.get_string("report", "");
    const std::string window = flags.get_string("window", "");
    const std::uint64_t from =
        static_cast<std::uint64_t>(flags.get_int("from", 0));
    const int idle_timeout_ms =
        static_cast<int>(flags.get_int("idle-timeout-ms", 10000));
    const bool resume = flags.get_bool("resume", false);

    // --crash-at <point>:<nth>[:shots] arms a kill-point in exit mode: the
    // process dies with _Exit(70) exactly where a real fault would strike,
    // which is what the CI kill-and-restart matrix drives.
    const std::string crash_at = flags.get_string("crash-at", "");

    if (client) {
      flags.reject_unknown();
      if (socket_path.empty()) {
        std::fprintf(stderr, "--client needs --socket\n");
        return 2;
      }
      if (watch) return run_watch(socket_path, from, idle_timeout_ms);
      return run_client(socket_path);
    }

    const gg::service::ServiceConfig config = config_from_flags(flags);
    const gg::sim::SocketFaultConfig socket_faults =
        gg::sim::SocketFaultConfig::from_flags(flags);
    flags.reject_unknown();

    if (!replay.empty()) return run_replay(config, replay, window);
    if (!events.empty()) return run_events(config, events, from);

    if (socket_path.empty() || journal_path.empty()) {
      std::fprintf(stderr, "usage: greengpud --socket <path> --journal <path> "
                           "[--report <path>] [--resume] | --client --socket "
                           "<path> [--watch [--from N]] | --replay <journal> "
                           "--window <lo>:<hi> | --events <journal> [--from N]\n");
      return 2;
    }
    if (!crash_at.empty()) {
      const std::size_t c1 = crash_at.find(':');
      const std::size_t c2 =
          c1 == std::string::npos ? std::string::npos : crash_at.find(':', c1 + 1);
      const std::string point_name =
          crash_at.substr(0, c1 == std::string::npos ? crash_at.size() : c1);
      const std::uint64_t nth =
          c1 == std::string::npos
              ? 1
              : std::stoull(crash_at.substr(c1 + 1, c2 == std::string::npos
                                                        ? std::string::npos
                                                        : c2 - c1 - 1));
      const std::uint64_t shots =
          c2 == std::string::npos ? 1 : std::stoull(crash_at.substr(c2 + 1));
      gg::common::arm_kill_point(gg::common::kill_point_from_string(point_name),
                                 nth, gg::common::CrashMode::kExit, shots);
    }
    return run_server(config, socket_path, journal_path, report_path, resume,
                      socket_faults);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "greengpud: %s\n", e.what());
    return 1;
  }
}
