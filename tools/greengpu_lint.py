#!/usr/bin/env python3
"""greengpu-lint: project-invariant checks the compiler cannot express.

GreenGPU's core contract is determinism: one seed, one report — byte-identical
for any --jobs value, faults included — and an allocation-free scaler/event
hot path (PR 2/3).  The compiler cannot enforce either, so this lint does:

  nondeterminism    Wall-clock reads, std::random_device, rand()/srand(),
                    getenv() and friends are banned outside sanctioned
                    timing code: simulated time comes from
                    sim::EventQueue::now(), randomness from seeded
                    common/rng.h generators, configuration from flags.

  unordered-iter    Iterating an unordered container feeds unspecified
                    (libstdc++-version-dependent) order into whatever
                    consumes the loop, so range-for over any variable
                    declared as std::unordered_{map,set,...} is flagged
                    everywhere, and unordered containers are banned outright
                    in report/serialization translation units.

  hot-alloc         Functions annotated GG_HOT (src/common/annotations.h)
                    must not allocate: new/malloc, make_unique/make_shared,
                    push_back/emplace/insert/resize/reserve, string and
                    stream construction, std::function construction.  This
                    machine-checks PR 3's "zero allocations per step" claim.

  batch-loop-alloc  Functions annotated GG_HOT_BATCH (the batch campaign
                    engine's lockstep steppers and SoA kernels) may allocate
                    in their setup prologue but not inside any loop: a loop
                    body there runs once per cell per iteration, so a single
                    allocation multiplies by the whole campaign.  Flags the
                    hot-alloc allocation patterns, restricted to
                    brace-delimited for/while bodies inside GG_HOT_BATCH
                    functions.

  hot-registry      The functions listed in REQUIRED_HOT below must carry
                    the GG_HOT (or GG_HOT_BATCH) annotation, so the
                    allocation guarantees cannot rot by deleting a marker.
                    (Tree scans only — skipped when explicit files are
                    given.)

  pipeline-blocking-sync
                    Stage callbacks annotated GG_PIPELINE_STAGE (completion
                    lambdas of memcpy_*_async / launch stages in pipeline
                    workloads) must not call synchronize() or
                    device_synchronize(): a blocking wait inside a stage
                    serializes the very pipeline the stage belongs to, and a
                    wait on the stage's own stream deadlocks the scheduler's
                    issue loop.  Ordering belongs to events
                    (stream_wait_event) and completion callbacks.

  checkpoint-write  Snapshot/checkpoint state must reach disk through
                    SnapshotWriter::write_atomic (write `<path>.tmp`, flush,
                    rename — src/common/snapshot.h), the only write path
                    that cannot leave a torn file behind a crash.  A plain
                    ofstream constructed in checkpoint infrastructure (file
                    name mentions snapshot/checkpoint/recovery/journal) or
                    near checkpoint path tokens is flagged; deliberately
                    non-atomic writers (the helper itself, the CRC-framed
                    append-only journal, corruption tests) carry reasoned
                    suppressions.

  service-growth    The service layer (src/service/) runs forever under
                    adversarial load, so every container-growth call
                    (push_back/emplace/push/insert) there must either go
                    through common::BoundedQueue or carry a
                    GG_BOUNDED(<bound>) annotation naming why the growth
                    is bounded — an unbounded queue is how a daemon turns
                    overload into an OOM kill.  A bare GG_BOUNDED() with
                    no reason is itself a diagnostic.

Suppression: a violating line is accepted when it, or the line directly
above it, carries `// GG_LINT_ALLOW(<rule>): <reason>` with a non-empty
reason.  A suppression without a reason is itself a diagnostic
(bare-suppression).

Output: `path:line: error: [rule] message`, sorted by path then line; exit
status 1 if anything was reported, 0 on a clean tree.

Usage:
    greengpu_lint.py [--root DIR]            # scan the tree (default: cwd)
    greengpu_lint.py [--root DIR] FILE...    # scan specific files (fixture
                                             # mode; hot-registry skipped)
"""

from __future__ import annotations

import argparse
import os
import re
import sys

# --------------------------------------------------------------------------
# Configuration
# --------------------------------------------------------------------------

SCAN_DIRS = ("src", "tools", "bench", "examples", "tests")
EXTS = (".h", ".hpp", ".cpp", ".cc")
EXCLUDE_PARTS = ("tests/tools/fixtures",)  # lint's own violation corpus

# nondeterminism: (regex, only_under_src, message)
NONDET_PATTERNS = [
    (re.compile(r"std::random_device"), False,
     "std::random_device is a nondeterministic seed source; use a seeded "
     "generator from src/common/rng.h"),
    (re.compile(r"\b(?:std::)?s?rand\s*\("), False,
     "rand()/srand() draw from hidden global state; use a seeded generator "
     "from src/common/rng.h"),
    (re.compile(r"\bsystem_clock\b|\bhigh_resolution_clock\b"), False,
     "wall-clock reads make runs irreproducible; simulated time comes from "
     "sim::EventQueue::now()"),
    (re.compile(r"\bsteady_clock\b"), True,
     "steady_clock is sanctioned for wall-time measurement in tools/ and "
     "bench/ only; inside src/ all time must come from sim::EventQueue::now()"),
    (re.compile(r"\bgettimeofday\s*\(|\bclock_gettime\s*\(|\bclock\s*\(\s*\)"), False,
     "OS clock reads make runs irreproducible; simulated time comes from "
     "sim::EventQueue::now()"),
    (re.compile(r"(?:::|\bstd::)time\s*\(|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"), False,
     "time() is a wall-clock read; simulated time comes from "
     "sim::EventQueue::now()"),
    (re.compile(r"\bgetenv\s*\("), False,
     "environment reads make runs host-dependent; thread configuration "
     "through src/common/flags.h"),
]

# unordered containers are banned outright in these translation units: they
# produce the repo's externally-visible bytes (CSV/JSON reports, traces,
# telemetry snapshots), where unspecified iteration order breaks the
# byte-identity contract.
REPORT_PATH_RE = re.compile(
    r"(src/common/(csv|json)\.(h|cpp)"
    r"|src/greengpu/(campaign|telemetry)\.(h|cpp)"
    r"|src/sim/trace\.(h|cpp)"
    r"|report|serial)")

UNORDERED_DECL_RE = re.compile(
    r"\b(?:std::)?unordered_(?:map|set|multimap|multiset)\s*<")
# declared variable name after the closing template bracket, e.g.
# `std::unordered_map<K, V> index_;` or `unordered_set<int> seen{...};`
UNORDERED_VAR_RE = re.compile(
    r"\b(?:std::)?unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s*&?\s*"
    r"(\w+)\s*(?:[;={(,)]|$)")

ALLOC_PATTERNS = [
    (re.compile(r"\bnew\b"), "operator new"),
    (re.compile(r"\b(?:malloc|calloc|realloc|strdup)\s*\("), "C allocation"),
    (re.compile(r"\bmake_(?:unique|shared)\b"), "make_unique/make_shared"),
    (re.compile(r"\.(?:push_back|emplace_back|emplace|insert|resize|reserve)\s*\("),
     "container growth"),
    (re.compile(r"\bstd::to_string\b|\bstd::(?:o|i)?stringstream\b|"
                r"\bstd::string\s*[({]"), "string construction"),
    (re.compile(r"\bstd::function\s*<"), "std::function construction"),
    (re.compile(r"\bstd::vector\s*<[^;]*?>\s+\w+\s*[({]"), "local vector"),
]

# hot-registry: (repo-relative file, definition regex, display name).
# These are the functions whose allocation-freedom the benchmarks and the
# PR 3 equivalence suite rely on; each must carry GG_HOT on its definition
# line or the line above.
REQUIRED_HOT = [
    ("src/greengpu/weight_table.cpp",
     re.compile(r"PairIndex\s+WeightTable::update_fused\s*\("),
     "WeightTable::update_fused"),
    ("src/greengpu/weight_table.cpp",
     re.compile(r"PairIndex\s+FixedWeightTable::update_fused\s*\("),
     "FixedWeightTable::update_fused"),
    ("src/greengpu/wma_scaler.cpp",
     re.compile(r"ScalerDecision\s+GpuFrequencyScaler::step_fast\s*\("),
     "GpuFrequencyScaler::step_fast"),
    ("src/sim/event_queue.cpp",
     re.compile(r"EventHandle\s+EventQueue::schedule_at\s*\("),
     "EventQueue::schedule_at"),
    ("src/sim/event_queue.cpp",
     re.compile(r"bool\s+EventQueue::step\s*\("),
     "EventQueue::step"),
    ("src/sim/event_queue.h",
     re.compile(r"std::uint32_t\s+acquire\s*\("),
     "EventSlab::acquire"),
    ("src/greengpu/telemetry.h",
     re.compile(r"void\s+push\s*\("),
     "DecisionRecorder::push"),
    # Batch campaign engine (PR 7): the lockstep stepper and the SoA finalize
    # kernels carry GG_HOT_BATCH, which puts their loop bodies under the
    # batch-loop-alloc rule.
    ("src/greengpu/batch_engine.cpp",
     re.compile(r"void\s+step_lockstep\s*\("),
     "step_lockstep"),
    ("src/sim/soa.h",
     re.compile(r"void\s+batch_saving_vs_baseline\s*\("),
     "batch_saving_vs_baseline"),
    ("src/sim/soa.h",
     re.compile(r"void\s+batch_rel_delta\s*\("),
     "batch_rel_delta"),
    # Async stream machinery (PR 8): the per-stream issue loop runs once per
    # queued op per completion event — the pipeline's hot path.
    ("src/cudalite/stream_scheduler.cpp",
     re.compile(r"void\s+StreamScheduler::pump\s*\("),
     "StreamScheduler::pump"),
]

# pipeline-blocking-sync: blocking waits banned inside GG_PIPELINE_STAGE
# callback bodies (brace-matched from the first '{' after the marker).
PIPELINE_SYNC_RE = re.compile(r"\b(?:device_synchronize|synchronize)\s*\(")

# checkpoint-write: an ofstream construction counts as a checkpoint write
# when the file itself is checkpoint infrastructure, or when the raw lines
# just above (strings and comments included — that is where path literals
# like ".ggsn" live) mention checkpoint tokens.  GG_LINT_ALLOW lines are
# not evidence, or suppression comments would self-trigger the rule.
CKPT_OFSTREAM_RE = re.compile(r"\b(?:std::)?ofstream\b")
CKPT_FILE_RE = re.compile(r"(snapshot|checkpoint|recovery|journal|ckpt)",
                          re.IGNORECASE)
CKPT_TOKEN_RE = re.compile(r"ckpt|checkpoint|snapshot|journal|\.ggsn",
                           re.IGNORECASE)
CKPT_WINDOW = 4  # raw lines above the construction scanned for evidence

ALLOW_RE = re.compile(r"GG_LINT_ALLOW\(([a-z-]+)\)\s*(?::\s*(\S.*))?")

# service-growth: applies to the always-on service layer (and, like the
# checkpoint-write filename heuristic, to any file named after it, which is
# how the fixture corpus exercises the rule).
SERVICE_PATH_RE = re.compile(r"(^|/)src/service/|service[^/]*$")
SERVICE_GROWTH_RE = re.compile(
    r"\.\s*(?:push_back|emplace_back|emplace|push|insert)\s*\(")
BOUNDED_RE = re.compile(r"GG_BOUNDED\(([^)]*)\)")

# --------------------------------------------------------------------------
# Mechanics
# --------------------------------------------------------------------------


class Diagnostic:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def render(self) -> str:
        return f"{self.path}:{self.line}: error: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line structure
    so line numbers survive.  Good enough for token scans; not a parser."""
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                mode = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif mode == "line":
            if c == "\n":
                mode = "code"
                out.append(c)
            else:
                out.append(" ")
        elif mode == "block":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif mode == "str":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "code"
            out.append(c if c == "\n" else " ")
        elif mode == "chr":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                mode = "code"
            out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


def collect_suppressions(raw_lines):
    """line number -> {rule: reason-or-None} from GG_LINT_ALLOW comments."""
    allows = {}
    for ln, line in enumerate(raw_lines, 1):
        m = ALLOW_RE.search(line)
        if m:
            allows.setdefault(ln, {})[m.group(1)] = m.group(2)
    return allows


class FileLinter:
    def __init__(self, relpath: str, raw: str):
        self.relpath = relpath
        self.raw_lines = raw.splitlines()
        self.code = strip_comments_and_strings(raw)
        self.code_lines = self.code.splitlines()
        self.allows = collect_suppressions(self.raw_lines)
        self.diags: list[Diagnostic] = []

    def report(self, line: int, rule: str, message: str) -> None:
        # A suppression covers the line it sits on, or a violation directly
        # below the (possibly multi-line) comment block it starts.
        probes = [line]
        probe = line - 1
        while probe >= 1 and self.raw_lines[probe - 1].lstrip().startswith("//"):
            probes.append(probe)
            probe -= 1
        for p in probes:
            rules = self.allows.get(p, {})
            if rule in rules:
                if rules[rule]:
                    return  # suppressed with a reason
                self.diags.append(Diagnostic(
                    self.relpath, p, "bare-suppression",
                    f"GG_LINT_ALLOW({rule}) needs a reason after ':'"))
                return
        self.diags.append(Diagnostic(self.relpath, line, rule, message))

    # -- nondeterminism ----------------------------------------------------
    def check_nondeterminism(self) -> None:
        under_src = self.relpath.startswith("src/")
        for ln, line in enumerate(self.code_lines, 1):
            for pattern, src_only, message in NONDET_PATTERNS:
                if src_only and not under_src:
                    continue
                if pattern.search(line):
                    self.report(ln, "nondeterminism", message)

    # -- unordered-iter ----------------------------------------------------
    def check_unordered(self) -> None:
        in_report_path = REPORT_PATH_RE.search(self.relpath) is not None
        unordered_vars = set()
        for ln, line in enumerate(self.code_lines, 1):
            if in_report_path and UNORDERED_DECL_RE.search(line):
                self.report(
                    ln, "unordered-iter",
                    "unordered containers are banned in report/serialization "
                    "paths (iteration order is unspecified); use std::map or "
                    "a sorted vector")
            for m in UNORDERED_VAR_RE.finditer(line):
                unordered_vars.add(m.group(1))
        if not unordered_vars:
            return
        names = "|".join(re.escape(v) for v in sorted(unordered_vars))
        range_for = re.compile(
            r"for\s*\([^;)]*:\s*(?:\w+(?:\.|->))*(" + names + r")\b")
        for ln, line in enumerate(self.code_lines, 1):
            m = range_for.search(line)
            if m:
                self.report(
                    ln, "unordered-iter",
                    f"range-for over unordered container '{m.group(1)}' has "
                    "unspecified order; iterate sorted keys or switch to an "
                    "ordered container")

    # -- hot-alloc ---------------------------------------------------------
    def _hot_spans(self):
        """Yield (name, body_start_line, body_end_line) for each GG_HOT
        function.  Body = first '{' after the marker, brace-matched."""
        text = self.code
        for m in re.finditer(r"\bGG_HOT\b", text):
            line_start = text.rfind("\n", 0, m.start()) + 1
            if text[line_start:m.start()].lstrip().startswith("#"):
                continue  # the macro's own #define, not an annotation
            open_idx = text.find("{", m.end())
            if open_idx < 0:
                continue
            sig = text[m.end():open_idx]
            name_m = re.findall(r"([A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)\s*\(", sig)
            name = name_m[0] if name_m else "<unknown>"
            depth = 0
            end_idx = open_idx
            for i in range(open_idx, len(text)):
                if text[i] == "{":
                    depth += 1
                elif text[i] == "}":
                    depth -= 1
                    if depth == 0:
                        end_idx = i
                        break
            start_line = text.count("\n", 0, open_idx) + 1
            end_line = text.count("\n", 0, end_idx) + 1
            yield name, start_line, end_line

    def check_hot_alloc(self) -> None:
        for name, start, end in self._hot_spans():
            for ln in range(start, end + 1):
                line = self.code_lines[ln - 1] if ln - 1 < len(self.code_lines) else ""
                for pattern, what in ALLOC_PATTERNS:
                    if pattern.search(line):
                        self.report(
                            ln, "hot-alloc",
                            f"{what} in GG_HOT function '{name}' — hot paths "
                            "must be allocation-free (see "
                            "src/common/annotations.h)")

    # -- batch-loop-alloc --------------------------------------------------
    def _match_brace(self, open_idx: int) -> int:
        """Index of the '}' matching the '{' at open_idx in self.code."""
        depth = 0
        for i in range(open_idx, len(self.code)):
            if self.code[i] == "{":
                depth += 1
            elif self.code[i] == "}":
                depth -= 1
                if depth == 0:
                    return i
        return len(self.code) - 1

    def check_batch_loop_alloc(self) -> None:
        """GG_HOT_BATCH steppers may allocate in their prologue (gather
        buffers, pointer tables) but never inside a loop — loop bodies run
        once per cell per iteration.  Note GG_HOT's \\bGG_HOT\\b word
        boundary does not match inside GG_HOT_BATCH (underscore is a word
        character), so the two rules never double-report a function."""
        text = self.code
        for m in re.finditer(r"\bGG_HOT_BATCH\b", text):
            line_start = text.rfind("\n", 0, m.start()) + 1
            if text[line_start:m.start()].lstrip().startswith("#"):
                continue  # the macro's own #define, not an annotation
            open_idx = text.find("{", m.end())
            if open_idx < 0:
                continue
            sig = text[m.end():open_idx]
            name_m = re.findall(r"([A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)\s*\(", sig)
            name = name_m[0] if name_m else "<unknown>"
            body_end = self._match_brace(open_idx)
            loop_lines: set[int] = set()
            for lm in re.finditer(r"\b(?:for|while)\s*\(", text[open_idx:body_end]):
                # Match the loop header's parens, then require an immediate
                # '{' — single-statement and do-while tails are skipped
                # rather than mis-spanned.
                i = open_idx + lm.end() - 1
                pdepth = 0
                while i < body_end:
                    if text[i] == "(":
                        pdepth += 1
                    elif text[i] == ")":
                        pdepth -= 1
                        if pdepth == 0:
                            break
                    i += 1
                body_open = text.find("{", i)
                if body_open < 0 or body_open > body_end:
                    continue
                if text[i + 1:body_open].strip():
                    continue
                body_close = self._match_brace(body_open)
                first = text.count("\n", 0, body_open) + 1
                last = text.count("\n", 0, body_close) + 1
                loop_lines.update(range(first, last + 1))
            for ln in sorted(loop_lines):
                line = self.code_lines[ln - 1] if ln - 1 < len(self.code_lines) else ""
                for pattern, what in ALLOC_PATTERNS:
                    if pattern.search(line):
                        self.report(
                            ln, "batch-loop-alloc",
                            f"{what} inside a loop of GG_HOT_BATCH function "
                            f"'{name}' — the batch stepper runs this once per "
                            "cell per iteration; hoist the allocation into "
                            "the prologue (see src/common/annotations.h)")

    # -- pipeline-blocking-sync --------------------------------------------
    def check_pipeline_blocking_sync(self) -> None:
        """Stage callbacks marked GG_PIPELINE_STAGE run inside the stream
        machinery; a blocking wait there serializes (or deadlocks) the
        pipeline.  Body = first '{' after the marker, brace-matched."""
        text = self.code
        for m in re.finditer(r"\bGG_PIPELINE_STAGE\b", text):
            line_start = text.rfind("\n", 0, m.start()) + 1
            if text[line_start:m.start()].lstrip().startswith("#"):
                continue  # the macro's own #define, not an annotation
            open_idx = text.find("{", m.end())
            if open_idx < 0:
                continue
            start = text.count("\n", 0, open_idx) + 1
            end = text.count("\n", 0, self._match_brace(open_idx)) + 1
            for ln in range(start, end + 1):
                line = self.code_lines[ln - 1] if ln - 1 < len(self.code_lines) else ""
                if PIPELINE_SYNC_RE.search(line):
                    self.report(
                        ln, "pipeline-blocking-sync",
                        "blocking synchronize()/device_synchronize() inside a "
                        "GG_PIPELINE_STAGE callback serializes the pipeline "
                        "the stage belongs to (and a wait on the stage's own "
                        "stream deadlocks the issue loop); order with events "
                        "(stream_wait_event) and completion callbacks "
                        "(see src/common/annotations.h)")

    # -- checkpoint-write --------------------------------------------------
    def check_checkpoint_write(self) -> None:
        fname = self.relpath.rsplit("/", 1)[-1]
        infra_file = CKPT_FILE_RE.search(fname) is not None
        for ln, line in enumerate(self.code_lines, 1):
            if not CKPT_OFSTREAM_RE.search(line):
                continue
            evidence = infra_file
            if not evidence:
                lo = max(0, ln - 1 - CKPT_WINDOW)
                for raw in self.raw_lines[lo:ln]:
                    if "GG_LINT_ALLOW" in raw:
                        continue
                    if CKPT_TOKEN_RE.search(raw):
                        evidence = True
                        break
            if evidence:
                self.report(
                    ln, "checkpoint-write",
                    "direct ofstream to a checkpoint/snapshot path is not "
                    "crash-safe (a kill mid-write leaves a torn file); route "
                    "it through SnapshotWriter::write_atomic "
                    "(src/common/snapshot.h)")

    # -- service-growth ----------------------------------------------------
    def check_service_growth(self) -> None:
        if not SERVICE_PATH_RE.search(self.relpath):
            return
        for ln, line in enumerate(self.code_lines, 1):
            if not SERVICE_GROWTH_RE.search(line):
                continue
            annotation = None
            for probe in (ln, ln - 1):
                if probe < 1:
                    continue
                m = BOUNDED_RE.search(self.raw_lines[probe - 1])
                if m:
                    annotation = m
                    break
            if annotation is not None:
                if annotation.group(1).strip():
                    continue  # bounded, with a stated reason
                self.diags.append(Diagnostic(
                    self.relpath, ln, "service-growth",
                    "GG_BOUNDED() needs a reason naming the bound (e.g. "
                    "GG_BOUNDED(capacity enforced by BoundedQueue))"))
                continue
            self.report(
                ln, "service-growth",
                "unbounded container growth in the service layer — route it "
                "through common::BoundedQueue or annotate the site "
                "GG_BOUNDED(<why the growth is bounded>) "
                "(src/common/annotations.h)")

    def run(self) -> list[Diagnostic]:
        self.check_nondeterminism()
        self.check_unordered()
        self.check_hot_alloc()
        self.check_batch_loop_alloc()
        self.check_pipeline_blocking_sync()
        self.check_checkpoint_write()
        self.check_service_growth()
        return self.diags


def check_registry(root: str) -> list[Diagnostic]:
    diags = []
    for relpath, pattern, display in REQUIRED_HOT:
        path = os.path.join(root, relpath)
        try:
            with open(path, encoding="utf-8") as f:
                raw = f.read()
        except OSError:
            diags.append(Diagnostic(
                relpath, 1, "hot-registry",
                f"registry function '{display}' expected here but the file "
                "is missing — update REQUIRED_HOT in tools/greengpu_lint.py"))
            continue
        lines = strip_comments_and_strings(raw).splitlines()
        found = False
        for ln, line in enumerate(lines, 1):
            if pattern.search(line):
                found = True
                prev = lines[ln - 2] if ln >= 2 else ""
                if "GG_HOT" not in line and "GG_HOT" not in prev:
                    diags.append(Diagnostic(
                        relpath, ln, "hot-registry",
                        f"'{display}' is in the hot registry but its "
                        "definition is missing the GG_HOT annotation"))
                break
        if not found:
            diags.append(Diagnostic(
                relpath, 1, "hot-registry",
                f"registry function '{display}' not found — if it moved or "
                "was renamed, update REQUIRED_HOT in tools/greengpu_lint.py"))
    return diags


def iter_tree(root: str):
    for top in SCAN_DIRS:
        base = os.path.join(root, top)
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for fname in sorted(filenames):
                path = os.path.join(dirpath, fname)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                if not rel.endswith(EXTS):
                    continue
                if any(part in rel for part in EXCLUDE_PARTS):
                    continue
                yield path, rel


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("files", nargs="*",
                        help="specific files to lint (skips hot-registry)")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    diags: list[Diagnostic] = []

    if args.files:
        targets = []
        for f in args.files:
            path = os.path.abspath(f)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            if rel.startswith(".."):
                rel = os.path.basename(path)  # outside root: bare name
            targets.append((path, rel))
    else:
        targets = list(iter_tree(root))
        diags.extend(check_registry(root))

    for path, rel in targets:
        try:
            with open(path, encoding="utf-8") as f:
                raw = f.read()
        except OSError as err:
            print(f"greengpu-lint: cannot read {rel}: {err}", file=sys.stderr)
            return 2
        diags.extend(FileLinter(rel, raw).run())

    diags.sort(key=lambda d: (d.path, d.line, d.rule, d.message))
    seen = set()
    diags = [d for d in diags
             if (key := (d.path, d.line, d.rule, d.message)) not in seen
             and not seen.add(key)]
    for d in diags:
        print(d.render())
    if diags:
        print(f"greengpu-lint: {len(diags)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
