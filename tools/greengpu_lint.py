#!/usr/bin/env python3
"""greengpu-lint: project-invariant checks the compiler cannot express.

GreenGPU's core contract is determinism: one seed, one report — byte-identical
for any --jobs value, faults included — and an allocation-free scaler/event
hot path (PR 2/3).  The compiler cannot enforce either, so this lint does:

  nondeterminism    Wall-clock reads, std::random_device, rand()/srand(),
                    getenv() and friends are banned outside sanctioned
                    timing code: simulated time comes from
                    sim::EventQueue::now(), randomness from seeded
                    common/rng.h generators, configuration from flags.

  unordered-iter    Iterating an unordered container feeds unspecified
                    (libstdc++-version-dependent) order into whatever
                    consumes the loop, so range-for over any variable
                    declared as std::unordered_{map,set,...} is flagged
                    everywhere, and unordered containers are banned outright
                    in report/serialization translation units.

  hot-alloc         Functions annotated GG_HOT (src/common/annotations.h)
                    must not allocate: new/malloc, make_unique/make_shared,
                    push_back/emplace/insert/resize/reserve, string and
                    stream construction, std::function construction.  This
                    machine-checks PR 3's "zero allocations per step" claim.

  batch-loop-alloc  Functions annotated GG_HOT_BATCH (the batch campaign
                    engine's lockstep steppers and SoA kernels) may allocate
                    in their setup prologue but not inside any loop: a loop
                    body there runs once per cell per iteration, so a single
                    allocation multiplies by the whole campaign.

  hot-registry      The functions listed in REQUIRED_HOT (tools/gglint/
                    intraprocedural.py) must carry the GG_HOT (or
                    GG_HOT_BATCH) annotation, so the allocation guarantees
                    cannot rot by deleting a marker.  (Tree scans only —
                    skipped when explicit files are given, unless
                    --with-registry forces it, which is what lint.sh
                    --changed does.)

  pipeline-blocking-sync
                    Stage callbacks annotated GG_PIPELINE_STAGE must not
                    call synchronize() or device_synchronize(): a blocking
                    wait inside a stage serializes the very pipeline the
                    stage belongs to.  Ordering belongs to events
                    (stream_wait_event) and completion callbacks.

  checkpoint-write  Snapshot/checkpoint state must reach disk through
                    SnapshotWriter::write_atomic (src/common/snapshot.h),
                    the only write path that cannot leave a torn file
                    behind a crash.

  service-growth    Container growth in src/service/ must go through
                    common::BoundedQueue or carry a reasoned
                    GG_BOUNDED(<bound>) annotation.

The rule logic lives in the shared tools/gglint/ package; gg-analyze
(tools/gg_analyze.py) builds its interprocedural rules on the same scanner.

Suppression: a violating line is accepted when it, or the line directly
above it, carries `// GG_LINT_ALLOW(<rule>): <reason>` with a non-empty
reason.  A suppression without a reason is itself a diagnostic
(bare-suppression).

Output: `path:line: error: [rule] message`, sorted by path then line; exit
status 1 if anything was reported, 0 on a clean tree.  `--format json`
emits the same diagnostics as one stable-key-order JSON document (count,
diagnostics, per-rule counts), so CI can diff violation counts across runs.

Usage:
    greengpu_lint.py [--root DIR] [--format text|json]   # scan the tree
    greengpu_lint.py [--root DIR] FILE...                # specific files
                                  [--with-registry]      # registry anyway
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from gglint.diagnostics import emit, finalize
from gglint.intraprocedural import (FileLinter, check_registry, iter_tree,
                                    resolve_targets)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="diagnostic output format (default: text)")
    parser.add_argument("--with-registry", action="store_true",
                        help="run the hot-registry tree check even when "
                             "explicit files are given (lint.sh --changed)")
    parser.add_argument("files", nargs="*",
                        help="specific files to lint (skips hot-registry)")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    diags: list = []

    if args.files:
        targets = resolve_targets(root, args.files)
        if args.with_registry:
            diags.extend(check_registry(root))
    else:
        targets = list(iter_tree(root))
        diags.extend(check_registry(root))

    for path, rel in targets:
        try:
            with open(path, encoding="utf-8") as f:
                raw = f.read()
        except OSError as err:
            print(f"greengpu-lint: cannot read {rel}: {err}", file=sys.stderr)
            return 2
        diags.extend(FileLinter(rel, raw).run())

    return emit(finalize(diags), "greengpu-lint", args.format,
                sys.stdout, sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
