// bench_service — performance record for the greengpud admission path.
//
//   bench_service [--submissions N] [--out FILE.json]
//
// Drives ServiceCore::handle_line in-process (no socket, no executor
// thread): N SUBMITs against a paused core, timing each call, then drains a
// small batch through the executor to time end-to-end completion.  Records
//   * submissions/sec through the full admission path (validate, seq/seed
//     assignment, admission decision, journal append),
//   * p50/p99 admission latency in microseconds,
//   * completions/sec for the drain batch.
//
// When --out names an existing BENCH json (the default merges into
// BENCH_campaign.json) the "service" section is spliced into it so one file
// carries the whole performance record.
//
// Wall clocks are sanctioned here (tools/), not in src/service/ — the
// service itself never reads one.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/json.h"
#include "src/service/core.h"
#include "src/service/telemetry.h"

namespace {

using namespace gg;
using Clock = std::chrono::steady_clock;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Render the "service" section and merge it into an existing BENCH object
/// (replacing a previous "service" section — it is always written last) or
/// start a fresh one.
void write_out(const std::string& out_file, const std::string& service_json) {
  std::string existing;
  if (std::filesystem::exists(out_file)) existing = slurp(out_file);
  while (!existing.empty() &&
         (existing.back() == '\n' || existing.back() == ' ')) {
    existing.pop_back();
  }
  std::string merged;
  const std::size_t prior = existing.rfind(",\"service\":");
  if (!existing.empty() && existing.back() == '}') {
    if (prior != std::string::npos) {
      existing.erase(prior);
    } else {
      existing.pop_back();
    }
    merged = existing + ",\"service\":" + service_json + "}\n";
  } else {
    merged = "{\"service\":" + service_json + "}\n";
  }
  std::ofstream out(out_file, std::ios::trunc | std::ios::binary);
  out << merged;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::size_t submissions =
      static_cast<std::size_t>(flags.get_int("submissions", 2000));
  const std::string out_file = flags.get_string("out", "BENCH_campaign.json");
  try {
    flags.reject_unknown();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  const auto journal =
      std::filesystem::temp_directory_path() / "gg_bench_service.journal";
  std::filesystem::remove(journal);

  service::ServiceConfig config;
  config.queue_capacity = submissions;  // nothing sheds; every SUBMIT admits
  service::ServiceCore core(config, journal.string(), /*resume=*/false);
  (void)core.handle_line("PAUSE");

  std::printf("bench_service: timing %zu submissions...\n", submissions);
  std::vector<double> latencies_us;
  // GG_BOUNDED(one sample per timed submission, sized up front)
  latencies_us.reserve(submissions);
  const auto start = Clock::now();
  for (std::size_t i = 0; i < submissions; ++i) {
    const auto t0 = Clock::now();
    const std::string reply =
        core.handle_line("SUBMIT bfs best-performance priority=" +
                         std::to_string(i % 4));
    const auto t1 = Clock::now();
    if (reply.compare(0, 3, "202") != 0) {
      std::fprintf(stderr, "unexpected reply: %s\n", reply.c_str());
      return 1;
    }
    // GG_BOUNDED(one sample per submission; the benchmark submits a fixed count)
    latencies_us.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  const double total_s = std::chrono::duration<double>(Clock::now() - start).count();
  const double per_sec = static_cast<double>(submissions) / total_s;

  std::sort(latencies_us.begin(), latencies_us.end());
  const double p50 = latencies_us[latencies_us.size() / 2];
  const double p99 = latencies_us[latencies_us.size() * 99 / 100];
  std::printf("  %.0f submissions/s, admission latency p50=%.1fus p99=%.1fus\n",
              per_sec, p50, p99);

  // Drain a small batch end-to-end so the record also carries the cost of a
  // real completed request (run_experiment dominates).
  constexpr std::size_t kDrain = 4;
  (void)core.handle_line("RESUME");
  const auto drain_start = Clock::now();
  for (std::size_t i = 0; i < kDrain; ++i) {
    if (!core.step()) break;
  }
  const double drain_s =
      std::chrono::duration<double>(Clock::now() - drain_start).count();
  const double completions_per_sec = static_cast<double>(kDrain) / drain_s;
  std::printf("  %.2f completions/s over %zu executed requests\n",
              completions_per_sec, kDrain);

  // Streaming fan-out: publish a realistic event payload through a
  // TelemetryHub at increasing subscriber counts, draining every ring as a
  // healthy consumer would.  Measures the WATCH hot path (assign seq, copy
  // into each ring, format the frame) without socket noise.
  constexpr std::size_t kEvents = 20000;
  const std::string payload =
      "outcome seq=42 device=1 status=ok exec=0.031250 gpu_j=1.234567 "
      "cpu_j=0.765432 verified=1 faults=0 watchdog=0 scaler=12 moves=3 "
      "deadline=met vtime=12.345678";
  const std::size_t fan_counts[] = {1, 4, 16};
  double fan_events_per_sec[3] = {0.0, 0.0, 0.0};
  for (std::size_t f = 0; f < 3; ++f) {
    const std::size_t subs = fan_counts[f];
    service::TelemetryConfig tcfg;
    tcfg.ring_capacity = 256;
    tcfg.max_subscribers = subs;
    service::TelemetryHub hub(tcfg);
    std::vector<std::uint64_t> ids;
    // GG_BOUNDED(one id per benchmark subscriber, fixed fan-out counts)
    for (std::size_t s = 0; s < subs; ++s) ids.push_back(hub.subscribe(1, {}));
    std::size_t delivered = 0;
    const auto fan_start = Clock::now();
    for (std::size_t i = 0; i < kEvents; ++i) {
      hub.publish(payload);
      if (i % 128 == 127) {
        for (const std::uint64_t id : ids) {
          while (hub.next_frame(id).has_value()) ++delivered;
        }
      }
    }
    for (const std::uint64_t id : ids) {
      while (hub.next_frame(id).has_value()) ++delivered;
    }
    const double fan_s =
        std::chrono::duration<double>(Clock::now() - fan_start).count();
    fan_events_per_sec[f] = static_cast<double>(kEvents) / fan_s;
    if (delivered != kEvents * subs || hub.dropped_total() != 0) {
      std::fprintf(stderr, "fan-out accounting broke: delivered=%zu dropped=%llu\n",
                   delivered,
                   static_cast<unsigned long long>(hub.dropped_total()));
      return 1;
    }
    std::printf("  %zu subscriber(s): %.0f events/s published (%zu delivered)\n",
                subs, fan_events_per_sec[f], delivered);
  }

  // Slow-consumer backpressure: one subscriber never drains against a small
  // ring.  The accounting invariant — every published event is either
  // delivered or explicitly DROPPED-accounted — is the record's correctness
  // flag; the drop rate goes in the record for trend-watching.
  service::TelemetryConfig slow_cfg;
  slow_cfg.ring_capacity = 64;
  service::TelemetryHub slow_hub(slow_cfg);
  const std::uint64_t slow_id = slow_hub.subscribe(1, {});
  for (std::size_t i = 0; i < kEvents; ++i) slow_hub.publish(payload);
  std::uint64_t slow_delivered = 0;
  while (const auto frame = slow_hub.next_frame(slow_id)) {
    if (frame->rfind("EVENT ", 0) == 0) ++slow_delivered;
  }
  const bool accounting_exact =
      slow_delivered + slow_hub.dropped_total() == slow_hub.published();
  const double drop_rate = static_cast<double>(slow_hub.dropped_total()) /
                           static_cast<double>(slow_hub.published());
  std::printf("  slow consumer: %llu delivered + %llu dropped of %llu "
              "(accounting %s)\n",
              static_cast<unsigned long long>(slow_delivered),
              static_cast<unsigned long long>(slow_hub.dropped_total()),
              static_cast<unsigned long long>(slow_hub.published()),
              accounting_exact ? "exact" : "BROKEN");

  std::ostringstream service_json;
  {
    JsonWriter w(service_json);
    w.begin_object();
    w.kv("submissions", static_cast<double>(submissions));
    w.kv("submissions_per_sec", per_sec);
    w.kv("admission_latency_p50_us", p50);
    w.kv("admission_latency_p99_us", p99);
    w.kv("drained_requests", static_cast<double>(kDrain));
    w.kv("completions_per_sec", completions_per_sec);
    w.kv("watch_events", static_cast<double>(kEvents));
    w.kv("watch_events_per_sec_subs1", fan_events_per_sec[0]);
    w.kv("watch_events_per_sec_subs4", fan_events_per_sec[1]);
    w.kv("watch_events_per_sec_subs16", fan_events_per_sec[2]);
    w.kv("watch_min_events_per_sec",
         std::min({fan_events_per_sec[0], fan_events_per_sec[1],
                   fan_events_per_sec[2]}));
    w.kv("slow_consumer_drop_rate", drop_rate);
    w.kv("drop_accounting_exact", accounting_exact);
    w.end_object();
  }
  write_out(out_file, service_json.str());
  std::filesystem::remove(journal);
  std::printf("wrote %s\n", out_file.c_str());
  return 0;
}
