// bench_service — performance record for the greengpud admission path.
//
//   bench_service [--submissions N] [--out FILE.json]
//
// Drives ServiceCore::handle_line in-process (no socket, no executor
// thread): N SUBMITs against a paused core, timing each call, then drains a
// small batch through the executor to time end-to-end completion.  Records
//   * submissions/sec through the full admission path (validate, seq/seed
//     assignment, admission decision, journal append),
//   * p50/p99 admission latency in microseconds,
//   * completions/sec for the drain batch.
//
// When --out names an existing BENCH json (the default merges into
// BENCH_campaign.json) the "service" section is spliced into it so one file
// carries the whole performance record.
//
// Wall clocks are sanctioned here (tools/), not in src/service/ — the
// service itself never reads one.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/json.h"
#include "src/service/core.h"

namespace {

using namespace gg;
using Clock = std::chrono::steady_clock;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Render the "service" section and merge it into an existing BENCH object
/// (replacing a previous "service" section — it is always written last) or
/// start a fresh one.
void write_out(const std::string& out_file, const std::string& service_json) {
  std::string existing;
  if (std::filesystem::exists(out_file)) existing = slurp(out_file);
  while (!existing.empty() &&
         (existing.back() == '\n' || existing.back() == ' ')) {
    existing.pop_back();
  }
  std::string merged;
  const std::size_t prior = existing.rfind(",\"service\":");
  if (!existing.empty() && existing.back() == '}') {
    if (prior != std::string::npos) {
      existing.erase(prior);
    } else {
      existing.pop_back();
    }
    merged = existing + ",\"service\":" + service_json + "}\n";
  } else {
    merged = "{\"service\":" + service_json + "}\n";
  }
  std::ofstream out(out_file, std::ios::trunc | std::ios::binary);
  out << merged;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::size_t submissions =
      static_cast<std::size_t>(flags.get_int("submissions", 2000));
  const std::string out_file = flags.get_string("out", "BENCH_campaign.json");
  try {
    flags.reject_unknown();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  const auto journal =
      std::filesystem::temp_directory_path() / "gg_bench_service.journal";
  std::filesystem::remove(journal);

  service::ServiceConfig config;
  config.queue_capacity = submissions;  // nothing sheds; every SUBMIT admits
  service::ServiceCore core(config, journal.string(), /*resume=*/false);
  (void)core.handle_line("PAUSE");

  std::printf("bench_service: timing %zu submissions...\n", submissions);
  std::vector<double> latencies_us;
  // GG_BOUNDED(one sample per timed submission, sized up front)
  latencies_us.reserve(submissions);
  const auto start = Clock::now();
  for (std::size_t i = 0; i < submissions; ++i) {
    const auto t0 = Clock::now();
    const std::string reply =
        core.handle_line("SUBMIT bfs best-performance priority=" +
                         std::to_string(i % 4));
    const auto t1 = Clock::now();
    if (reply.compare(0, 3, "202") != 0) {
      std::fprintf(stderr, "unexpected reply: %s\n", reply.c_str());
      return 1;
    }
    // GG_BOUNDED(one sample per submission; the benchmark submits a fixed count)
    latencies_us.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  const double total_s = std::chrono::duration<double>(Clock::now() - start).count();
  const double per_sec = static_cast<double>(submissions) / total_s;

  std::sort(latencies_us.begin(), latencies_us.end());
  const double p50 = latencies_us[latencies_us.size() / 2];
  const double p99 = latencies_us[latencies_us.size() * 99 / 100];
  std::printf("  %.0f submissions/s, admission latency p50=%.1fus p99=%.1fus\n",
              per_sec, p50, p99);

  // Drain a small batch end-to-end so the record also carries the cost of a
  // real completed request (run_experiment dominates).
  constexpr std::size_t kDrain = 4;
  (void)core.handle_line("RESUME");
  const auto drain_start = Clock::now();
  for (std::size_t i = 0; i < kDrain; ++i) {
    if (!core.step()) break;
  }
  const double drain_s =
      std::chrono::duration<double>(Clock::now() - drain_start).count();
  const double completions_per_sec = static_cast<double>(kDrain) / drain_s;
  std::printf("  %.2f completions/s over %zu executed requests\n",
              completions_per_sec, kDrain);

  std::ostringstream service_json;
  {
    JsonWriter w(service_json);
    w.begin_object();
    w.kv("submissions", static_cast<double>(submissions));
    w.kv("submissions_per_sec", per_sec);
    w.kv("admission_latency_p50_us", p50);
    w.kv("admission_latency_p99_us", p99);
    w.kv("drained_requests", static_cast<double>(kDrain));
    w.kv("completions_per_sec", completions_per_sec);
    w.end_object();
  }
  write_out(out_file, service_json.str());
  std::filesystem::remove(journal);
  std::printf("wrote %s\n", out_file.c_str());
  return 0;
}
