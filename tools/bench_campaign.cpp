// bench_campaign — performance record for the parallel experiment engine.
//
//   bench_campaign [--jobs N] [--out FILE.json]
//
// Runs the default (workload x policy) campaign across a worker sweep
// (--jobs 1, N/2, N) and
//   * asserts the CSV and JSON reports are byte-identical (the determinism
//     contract) at every sweep point, with and without fault injection,
//   * records wall-clock, runs/sec and the parallel speedup, plus a
//     single_core_host marker so the perf gate never compares parallel
//     speedups across host classes,
//   * times the batch campaign engine against the scalar engine on a
//     fault-replicate sweep (the batch engine's target shape: many cells
//     per workload sharing a warm-up prefix) and asserts the two engines'
//     reports are byte-identical at every --jobs value,
//   * times the sim::EventQueue hot paths (schedule/fire, cancelled-entry
//     ride-along, DVFS-style cancel churn) in ns per event,
//   * times one Algorithm 1 scaler step through the fused fast path and the
//     straight-line reference (ns/op + speedup) and asserts their decision
//     streams match over the timed runs,
//   * measures the crash-checkpoint overhead (journal + periodic controller
//     snapshots at --checkpoint-every 0/10/100 vs no checkpointing) and
//     asserts the journaled reports stay byte-identical to the plain run,
// then writes the whole record as JSON (default BENCH_campaign.json).
//
// Exit code 0 iff every identity check passed.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/flags.h"
#include "src/common/json.h"
#include "src/cudalite/nvml.h"
#include "src/cudalite/nvsettings.h"
#include "src/greengpu/campaign.h"
#include "src/greengpu/recovery.h"
#include "src/greengpu/runner.h"
#include "src/greengpu/wma_scaler.h"
#include "src/sim/crash.h"
#include "src/sim/event_queue.h"
#include "src/sim/platform.h"
#include "src/workloads/registry.h"

namespace {

using namespace gg;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct CampaignRun {
  std::string csv;
  std::string json;
  double seconds{0.0};
  std::size_t runs{0};
};

CampaignRun to_run(const greengpu::CampaignResult& result, double seconds) {
  CampaignRun out;
  out.seconds = seconds;
  out.runs = result.cells.size();
  std::ostringstream csv, json;
  greengpu::write_campaign_csv(csv, result);
  greengpu::write_campaign_json(json, result);
  out.csv = csv.str();
  out.json = json.str();
  return out;
}

CampaignRun run_campaign_timed(const greengpu::CampaignConfig& cfg) {
  const auto start = Clock::now();
  const greengpu::CampaignResult result = greengpu::run_campaign(cfg);
  return to_run(result, seconds_since(start));
}

CampaignRun run_campaign_checkpointed_timed(const greengpu::CampaignConfig& cfg,
                                            const greengpu::CheckpointOptions& ckpt) {
  const auto start = Clock::now();
  const greengpu::CampaignResult result = greengpu::run_campaign_checkpointed(cfg, ckpt);
  return to_run(result, seconds_since(start));
}

/// Fault channels that perturb every cell but never abort an un-hardened
/// controller (no launch/host failures, no throttle episodes), so the
/// default four policies all finish and the identity check exercises the
/// per-cell RNG fork.
sim::FaultConfig benign_faults() {
  sim::FaultConfig f;
  f.seed = 0xB16B00B5u;
  f.util_drop_rate = 0.05;
  f.util_stale_rate = 0.05;
  f.util_corrupt_rate = 0.02;
  f.clock_reject_rate = 0.05;
  return f;
}

struct QueueTimings {
  double schedule_fire_ns{0.0};
  double schedule_cancel_fire_ns{0.0};
  double cancel_churn_ns{0.0};
  std::uint64_t events_fired{0};  // anti-elision checksum
  std::uint64_t compactions{0};
};

QueueTimings time_event_queue() {
  using namespace gg::literals;
  QueueTimings t;

  {  // schedule + fire, 1000 events per queue
    constexpr int kReps = 2000, kEvents = 1000;
    const auto start = Clock::now();
    for (int rep = 0; rep < kReps; ++rep) {
      sim::EventQueue q;
      for (int i = 0; i < kEvents; ++i) {
        q.schedule_in(Seconds{static_cast<double>(i)}, [] {});
      }
      q.run_until_empty();
      t.events_fired += q.fired_count();
    }
    t.schedule_fire_ns = seconds_since(start) * 1e9 / (double(kReps) * kEvents);
  }

  {  // half the events cancelled before any fire
    constexpr int kReps = 2000, kEvents = 1000;
    const auto start = Clock::now();
    for (int rep = 0; rep < kReps; ++rep) {
      sim::EventQueue q;
      std::vector<sim::EventHandle> handles;
      handles.reserve(kEvents / 2);
      for (int i = 0; i < kEvents; ++i) {
        sim::EventHandle h = q.schedule_in(Seconds{static_cast<double>(i)}, [] {});
        if (i & 1) handles.push_back(h);
      }
      for (auto& h : handles) h.cancel();
      q.run_until_empty();
      t.events_fired += q.fired_count();
    }
    t.schedule_cancel_fire_ns = seconds_since(start) * 1e9 / (double(kReps) * kEvents);
  }

  {  // DVFS-style churn: standing population repeatedly cancelled + replaced
    constexpr std::size_t kPending = 512;
    constexpr int kReps = 200, kRounds = 16;
    const auto start = Clock::now();
    for (int rep = 0; rep < kReps; ++rep) {
      sim::EventQueue q;
      std::vector<sim::EventHandle> handles(kPending);
      double base = 1.0;
      for (std::size_t i = 0; i < kPending; ++i) {
        handles[i] = q.schedule_at(Seconds{base + static_cast<double>(i)}, [] {});
      }
      for (int round = 0; round < kRounds; ++round) {
        base += 1.0;
        for (std::size_t i = 0; i < kPending; ++i) {
          handles[i].cancel();
          handles[i] = q.schedule_at(Seconds{base + static_cast<double>(i)}, [] {});
        }
      }
      q.run_until_empty();
      t.events_fired += q.fired_count();
      t.compactions += q.compaction_count();
    }
    t.cancel_churn_ns =
        seconds_since(start) * 1e9 / (double(kReps) * kPending * (kRounds + 1));
  }
  return t;
}

struct ScalerTimings {
  double fast_ns{0.0};
  double reference_ns{0.0};
  double speedup{0.0};
  bool decisions_match{true};
  std::uint64_t steps{0};
};

/// ns per full Algorithm 1 step for one implementation; appends the chosen
/// pair of every step to `chosen` so the two runs can be compared.
double time_scaler_steps(bool reference, std::uint64_t steps,
                         std::vector<greengpu::PairIndex>& chosen) {
  sim::Platform platform;
  cudalite::NvmlDevice nvml(platform);
  cudalite::NvSettings settings(platform);
  greengpu::WmaParams params;
  params.reference_impl = reference;
  greengpu::GpuFrequencyScaler scaler(nvml, settings, params);
  scaler.set_record(greengpu::RecordOptions{greengpu::RecordMode::kCounters, 0});
  chosen.reserve(chosen.size() + steps);
  const auto start = Clock::now();
  double t = 0.0;
  for (std::uint64_t i = 0; i < steps; ++i) {
    chosen.push_back(scaler.step(Seconds{t}).chosen);
    t += 3.0;
  }
  return seconds_since(start) * 1e9 / static_cast<double>(steps);
}

ScalerTimings time_scaler_step() {
  ScalerTimings t;
  t.steps = 200000;
  std::vector<greengpu::PairIndex> fast_chosen, ref_chosen;
  // Warm-up pass each to fault in code and settle the tables.
  { std::vector<greengpu::PairIndex> tmp; (void)time_scaler_steps(false, 1000, tmp); }
  { std::vector<greengpu::PairIndex> tmp; (void)time_scaler_steps(true, 1000, tmp); }
  t.fast_ns = time_scaler_steps(false, t.steps, fast_chosen);
  t.reference_ns = time_scaler_steps(true, t.steps, ref_chosen);
  t.speedup = t.fast_ns > 0.0 ? t.reference_ns / t.fast_ns : 0.0;
  t.decisions_match = fast_chosen == ref_chosen;
  return t;
}

/// Sync-vs-pipelined comparison for one pipeline workload, all in simulated
/// units (host-class independent: both schedules run through the same model).
struct PipelineComparison {
  std::string name;
  double sync_seconds{0.0};
  double pipelined_seconds{0.0};
  double makespan_speedup{0.0};
  double sync_energy_j{0.0};
  double pipelined_energy_j{0.0};
  double overlap_efficiency{0.0};  // overlapped / copy-engine-busy seconds
  bool verified{false};
};

PipelineComparison compare_pipeline(const std::string& name) {
  greengpu::RunOptions options;
  options.pool_workers = 2;
  workloads::PipelineTuning tuning = workloads::pipeline_tuning();
  tuning.pipelined = false;
  workloads::set_pipeline_tuning(tuning);
  const greengpu::ExperimentResult sync =
      greengpu::run_experiment(name, greengpu::Policy::best_performance(), options);
  tuning.pipelined = true;
  workloads::set_pipeline_tuning(tuning);
  const greengpu::ExperimentResult pipe =
      greengpu::run_experiment(name, greengpu::Policy::best_performance(), options);

  PipelineComparison c;
  c.name = name;
  c.sync_seconds = sync.exec_time.get();
  c.pipelined_seconds = pipe.exec_time.get();
  c.makespan_speedup =
      c.pipelined_seconds > 0.0 ? c.sync_seconds / c.pipelined_seconds : 0.0;
  c.sync_energy_j = sync.total_energy().get();
  c.pipelined_energy_j = pipe.total_energy().get();
  double copy_busy = 0.0, overlap = 0.0;
  for (const auto& it : pipe.iterations) {
    copy_busy += it.copy_busy_time.get();
    overlap += it.overlap_time.get();
  }
  c.overlap_efficiency = copy_busy > 0.0 ? overlap / copy_busy : 0.0;
  c.verified = sync.verified && pipe.verified;
  return c;
}

bool report_identity(const char* what, const CampaignRun& a, const CampaignRun& b) {
  const bool csv_ok = a.csv == b.csv;
  const bool json_ok = a.json == b.json;
  std::printf("[%s] %s: CSV %s, JSON %s\n", csv_ok && json_ok ? "OK" : "FAIL", what,
              csv_ok ? "identical" : "DIFFERS", json_ok ? "identical" : "DIFFERS");
  return csv_ok && json_ok;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const long long jobs_flag = flags.get_int("jobs", 0);
  const std::string out_file = flags.get_string("out", "BENCH_campaign.json");
  const auto unknown = flags.unconsumed();
  if (!unknown.empty()) {
    for (const auto& key : unknown) std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
    return 2;
  }

  const unsigned host_cpus = std::thread::hardware_concurrency();
  const std::size_t jobs = jobs_flag <= 0 ? (host_cpus ? host_cpus : 1)
                                          : static_cast<std::size_t>(jobs_flag);
  const bool single_core_host = host_cpus <= 1;

  std::printf("bench_campaign: host_cpus=%u jobs=%zu%s\n", host_cpus, jobs,
              single_core_host ? " (single-core host)" : "");

  // Worker sweep: 1, N/2, N (deduplicated; collapses to {1} on a
  // single-core host).  Every point must produce identical bytes.
  std::vector<std::size_t> jobs_sweep{1};
  if (jobs / 2 > 1) jobs_sweep.push_back(jobs / 2);
  if (jobs > jobs_sweep.back()) jobs_sweep.push_back(jobs);

  greengpu::CampaignConfig serial_cfg;
  serial_cfg.jobs = 1;
  greengpu::CampaignConfig parallel_cfg;
  parallel_cfg.jobs = jobs;

  std::printf("running campaign serially (--jobs 1)...\n");
  const CampaignRun serial = run_campaign_timed(serial_cfg);
  std::printf("  %zu runs in %.2f s (%.1f runs/s)\n", serial.runs, serial.seconds,
              serial.runs / serial.seconds);
  std::vector<CampaignRun> sweep_runs{serial};
  bool sweep_identical = true;
  for (std::size_t i = 1; i < jobs_sweep.size(); ++i) {
    greengpu::CampaignConfig cfg = serial_cfg;
    cfg.jobs = jobs_sweep[i];
    std::printf("running campaign with %zu workers...\n", jobs_sweep[i]);
    const CampaignRun run = run_campaign_timed(cfg);
    std::printf("  %zu runs in %.2f s (%.1f runs/s)\n", run.runs, run.seconds,
                run.runs / run.seconds);
    sweep_identical =
        sweep_identical && run.csv == serial.csv && run.json == serial.json;
    sweep_runs.push_back(run);
  }
  const CampaignRun& parallel = sweep_runs.back();
  const double speedup = serial.seconds / parallel.seconds;
  std::printf("  speedup vs --jobs 1: %.2fx\n", speedup);

  bool ok = report_identity("fault-free", serial, parallel) && sweep_identical;
  if (!sweep_identical) std::printf("[FAIL] jobs sweep reports differ\n");

  // Same comparison with fault injection: each cell's fault RNG must fork
  // from the campaign seed by cell index, never by execution order.
  greengpu::CampaignConfig faulted_serial = serial_cfg;
  faulted_serial.options.faults = benign_faults();
  greengpu::CampaignConfig faulted_parallel = parallel_cfg;
  faulted_parallel.options.faults = benign_faults();
  std::printf("re-running with fault injection (benign channels)...\n");
  const CampaignRun f_serial = run_campaign_timed(faulted_serial);
  const CampaignRun f_parallel = run_campaign_timed(faulted_parallel);
  ok = report_identity("fault-injected", f_serial, f_parallel) && ok;

  // Batch engine vs scalar engine on the shape the batch engine targets:
  // a fault-replicate sweep (every policy expanded into kReplicates seeded
  // copies) with a fault-free warm-up window, so the engine can memoize one
  // verification per workload and fork replicates from a shared prefix
  // snapshot.  Same-host, same-config, so the speedup is comparable on any
  // machine; the reports must be byte-identical at every --jobs value.
  constexpr std::size_t kReplicates = 6;
  constexpr std::size_t kWarmup = 4;
  greengpu::CampaignConfig sweep_scalar;
  sweep_scalar.jobs = 1;
  sweep_scalar.engine = greengpu::CampaignEngine::kScalar;
  sweep_scalar.fault_replicates = kReplicates;
  sweep_scalar.options.faults = benign_faults();
  sweep_scalar.options.faults_active_from = kWarmup;
  std::printf("running replicate sweep (x%zu) with the scalar engine...\n", kReplicates);
  const CampaignRun b_scalar = run_campaign_timed(sweep_scalar);
  std::printf("  %zu runs in %.2f s (%.1f runs/s)\n", b_scalar.runs, b_scalar.seconds,
              b_scalar.runs / b_scalar.seconds);
  greengpu::CampaignConfig sweep_batch = sweep_scalar;
  sweep_batch.engine = greengpu::CampaignEngine::kBatch;
  std::printf("running replicate sweep (x%zu) with the batch engine...\n", kReplicates);
  const CampaignRun b_batch = run_campaign_timed(sweep_batch);
  std::printf("  %zu runs in %.2f s (%.1f runs/s)\n", b_batch.runs, b_batch.seconds,
              b_batch.runs / b_batch.seconds);
  const double batch_speedup = b_batch.seconds > 0.0 ? b_scalar.seconds / b_batch.seconds : 0.0;
  std::printf("  batch engine speedup vs scalar: %.2fx\n", batch_speedup);
  ok = report_identity("batch-vs-scalar", b_scalar, b_batch) && ok;
  bool batch_jobs_identical = true;
  for (std::size_t i = 1; i < jobs_sweep.size(); ++i) {
    greengpu::CampaignConfig cfg = sweep_batch;
    cfg.jobs = jobs_sweep[i];
    const CampaignRun run = run_campaign_timed(cfg);
    batch_jobs_identical =
        batch_jobs_identical && run.csv == b_batch.csv && run.json == b_batch.json;
  }
  std::printf("[%s] batch engine across jobs sweep: %s\n",
              batch_jobs_identical ? "OK" : "FAIL",
              batch_jobs_identical ? "identical" : "DIFFER");
  ok = batch_jobs_identical && ok;

  // Pipeline workloads: the asynchronous multi-stream schedule vs the
  // synchronous baseline, in simulated seconds and joules (both sides run
  // through the same model, so the speedup holds on any host class), plus
  // the full determinism matrix over the pipeline campaign — jobs sweep,
  // batch engine, and a kill/resume cycle must all reproduce the bytes.
  const workloads::PipelineTuning saved_tuning = workloads::pipeline_tuning();
  std::printf("comparing pipelined vs synchronous schedules...\n");
  std::vector<PipelineComparison> pipeline_runs;
  double min_pipeline_speedup = 0.0;
  double min_overlap_efficiency = 0.0;
  bool pipeline_verified = true;
  bool pipeline_energy_lower = true;
  for (const std::string& name : workloads::pipeline_workload_names()) {
    const PipelineComparison c = compare_pipeline(name);
    std::printf("  %-16s sync %.1f s -> pipelined %.1f s (%.2fx), "
                "energy %.0f J -> %.0f J, overlap %.0f%%%s\n",
                c.name.c_str(), c.sync_seconds, c.pipelined_seconds,
                c.makespan_speedup, c.sync_energy_j, c.pipelined_energy_j,
                c.overlap_efficiency * 100.0, c.verified ? "" : " [FAIL verify]");
    min_pipeline_speedup = pipeline_runs.empty()
                               ? c.makespan_speedup
                               : std::min(min_pipeline_speedup, c.makespan_speedup);
    min_overlap_efficiency = pipeline_runs.empty()
                                 ? c.overlap_efficiency
                                 : std::min(min_overlap_efficiency, c.overlap_efficiency);
    pipeline_verified = pipeline_verified && c.verified;
    pipeline_energy_lower =
        pipeline_energy_lower && c.pipelined_energy_j < c.sync_energy_j;
    pipeline_runs.push_back(c);
  }
  workloads::set_pipeline_tuning(saved_tuning);
  ok = pipeline_verified && pipeline_energy_lower && ok;

  greengpu::CampaignConfig pipeline_cfg;
  pipeline_cfg.workloads = workloads::pipeline_workload_names();
  pipeline_cfg.jobs = 1;
  std::printf("running pipeline campaign serially (--jobs 1)...\n");
  const CampaignRun p_serial = run_campaign_timed(pipeline_cfg);
  std::printf("  %zu runs in %.2f s (%.1f runs/s)\n", p_serial.runs, p_serial.seconds,
              p_serial.runs / p_serial.seconds);
  bool pipeline_jobs_identical = true;
  for (std::size_t i = 1; i < jobs_sweep.size(); ++i) {
    greengpu::CampaignConfig cfg = pipeline_cfg;
    cfg.jobs = jobs_sweep[i];
    const CampaignRun run = run_campaign_timed(cfg);
    pipeline_jobs_identical =
        pipeline_jobs_identical && run.csv == p_serial.csv && run.json == p_serial.json;
  }
  std::printf("[%s] pipeline campaign across jobs sweep: %s\n",
              pipeline_jobs_identical ? "OK" : "FAIL",
              pipeline_jobs_identical ? "identical" : "DIFFER");
  ok = pipeline_jobs_identical && ok;

  greengpu::CampaignConfig pipeline_batch_cfg = pipeline_cfg;
  pipeline_batch_cfg.engine = greengpu::CampaignEngine::kBatch;
  const CampaignRun p_batch = run_campaign_timed(pipeline_batch_cfg);
  const bool pipeline_engines_identical =
      p_batch.csv == p_serial.csv && p_batch.json == p_serial.json;
  std::printf("[%s] pipeline campaign batch-vs-scalar: %s\n",
              pipeline_engines_identical ? "OK" : "FAIL",
              pipeline_engines_identical ? "identical" : "DIFFER");
  ok = pipeline_engines_identical && ok;

  bool pipeline_resume_identical = false;
  {
    const std::filesystem::path resume_dir =
        std::filesystem::temp_directory_path() / "gg_bench_pipeline_resume";
    std::filesystem::remove_all(resume_dir);
    greengpu::CheckpointOptions ckpt;
    ckpt.dir = resume_dir.string();
    sim::CrashInjector crash(common::KillPoint::kMidCampaignCell, 1,
                             common::CrashMode::kThrow);
    greengpu::RecoverySupervisor supervisor(pipeline_cfg, ckpt);
    const CampaignRun resumed = to_run(supervisor.run(), 0.0);
    pipeline_resume_identical = crash.fired() && resumed.csv == p_serial.csv &&
                                resumed.json == p_serial.json;
    std::filesystem::remove_all(resume_dir);
  }
  std::printf("[%s] pipeline campaign after kill/resume: %s\n",
              pipeline_resume_identical ? "OK" : "FAIL",
              pipeline_resume_identical ? "identical" : "DIFFER");
  ok = pipeline_resume_identical && ok;

  // Checkpoint overhead: the same serial campaign with the crash-safe
  // journal alone (--checkpoint-every 0) and with periodic controller
  // snapshots every 10 and 100 iterations.  Checkpoints are pure
  // observation, so all three reports must stay byte-identical to the
  // plain run measured above.
  std::printf("measuring checkpoint overhead (journal + periodic snapshots)...\n");
  const std::filesystem::path ckpt_root =
      std::filesystem::temp_directory_path() / "gg_bench_checkpoint";
  std::filesystem::remove_all(ckpt_root);
  double ckpt_seconds[3] = {0.0, 0.0, 0.0};
  bool ckpt_identical = true;
  const std::size_t cadences[3] = {0, 10, 100};
  for (int i = 0; i < 3; ++i) {
    greengpu::CheckpointOptions ckpt;
    ckpt.dir = (ckpt_root / ("every-" + std::to_string(cadences[i]))).string();
    ckpt.every = cadences[i];
    const CampaignRun run = run_campaign_checkpointed_timed(serial_cfg, ckpt);
    ckpt_seconds[i] = run.seconds;
    ckpt_identical = ckpt_identical && run.csv == serial.csv && run.json == serial.json;
    std::printf("  --checkpoint-every %-3zu %.2f s (%+.1f%% vs plain serial)\n",
                cadences[i], run.seconds,
                (run.seconds / serial.seconds - 1.0) * 100.0);
  }
  std::filesystem::remove_all(ckpt_root);
  std::printf("[%s] checkpointed reports vs plain run: %s\n",
              ckpt_identical ? "OK" : "FAIL",
              ckpt_identical ? "identical" : "DIFFER");
  ok = ckpt_identical && ok;

  std::printf("timing sim::EventQueue hot paths...\n");
  const QueueTimings q = time_event_queue();
  std::printf("  schedule+fire:        %.1f ns/event\n", q.schedule_fire_ns);
  std::printf("  schedule+cancel+fire: %.1f ns/event\n", q.schedule_cancel_fire_ns);
  std::printf("  cancel churn:         %.1f ns/op (%llu compactions)\n", q.cancel_churn_ns,
              static_cast<unsigned long long>(q.compactions));

  std::printf("timing scaler step (fast vs reference)...\n");
  const ScalerTimings s = time_scaler_step();
  std::printf("  fast path:  %.1f ns/step\n", s.fast_ns);
  std::printf("  reference:  %.1f ns/step\n", s.reference_ns);
  std::printf("[%s] scaler fast-vs-reference: %.2fx speedup, decisions %s\n",
              s.decisions_match ? "OK" : "FAIL", s.speedup,
              s.decisions_match ? "identical" : "DIFFER");
  ok = s.decisions_match && ok;

  std::ofstream out(out_file);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_file.c_str());
    return 2;
  }
  JsonWriter w(out);
  w.begin_object();
  w.kv("host_cpus", static_cast<double>(host_cpus));
  w.kv("jobs", static_cast<double>(jobs));
  w.kv("single_core_host", single_core_host);
  w.key("campaign");
  w.begin_object();
  w.kv("runs", static_cast<double>(serial.runs));
  w.kv("serial_seconds", serial.seconds);
  w.kv("parallel_seconds", parallel.seconds);
  w.kv("serial_runs_per_sec", serial.runs / serial.seconds);
  w.kv("parallel_runs_per_sec", parallel.runs / parallel.seconds);
  w.kv("speedup_vs_jobs1", speedup);
  w.key("jobs_sweep");
  w.begin_array();
  for (std::size_t i = 0; i < sweep_runs.size(); ++i) {
    w.begin_object();
    w.kv("jobs", static_cast<double>(jobs_sweep[i]));
    w.kv("seconds", sweep_runs[i].seconds);
    w.kv("runs_per_sec", sweep_runs[i].runs / sweep_runs[i].seconds);
    w.end_object();
  }
  w.end_array();
  w.kv("identical_reports",
       sweep_identical && serial.csv == parallel.csv && serial.json == parallel.json);
  w.kv("identical_reports_with_faults",
       f_serial.csv == f_parallel.csv && f_serial.json == f_parallel.json);
  w.end_object();
  w.key("batch");
  w.begin_object();
  w.kv("runs", static_cast<double>(b_scalar.runs));
  w.kv("fault_replicates", static_cast<double>(kReplicates));
  w.kv("warmup_iterations", static_cast<double>(kWarmup));
  w.kv("scalar_seconds", b_scalar.seconds);
  w.kv("batch_seconds", b_batch.seconds);
  w.kv("scalar_runs_per_sec", b_scalar.runs / b_scalar.seconds);
  w.kv("batch_runs_per_sec", b_batch.runs / b_batch.seconds);
  w.kv("speedup_vs_scalar", batch_speedup);
  w.kv("identical_reports", b_scalar.csv == b_batch.csv && b_scalar.json == b_batch.json);
  w.kv("identical_reports_across_jobs", batch_jobs_identical);
  w.end_object();
  w.key("pipeline");
  w.begin_object();
  w.key("workloads");
  w.begin_array();
  for (const PipelineComparison& c : pipeline_runs) {
    w.begin_object();
    w.kv("name", c.name);
    w.kv("sync_seconds", c.sync_seconds);
    w.kv("pipelined_seconds", c.pipelined_seconds);
    w.kv("makespan_speedup", c.makespan_speedup);
    w.kv("sync_energy_j", c.sync_energy_j);
    w.kv("pipelined_energy_j", c.pipelined_energy_j);
    w.kv("overlap_efficiency", c.overlap_efficiency);
    w.kv("verified", c.verified);
    w.end_object();
  }
  w.end_array();
  w.kv("min_makespan_speedup", min_pipeline_speedup);
  w.kv("min_overlap_efficiency", min_overlap_efficiency);
  w.kv("all_verified", pipeline_verified);
  w.kv("pipelined_energy_lower", pipeline_energy_lower);
  w.kv("campaign_runs", static_cast<double>(p_serial.runs));
  w.kv("campaign_seconds", p_serial.seconds);
  w.kv("campaign_runs_per_sec", p_serial.runs / p_serial.seconds);
  w.kv("identical_reports_across_jobs", pipeline_jobs_identical);
  w.kv("identical_reports_across_engines", pipeline_engines_identical);
  w.kv("identical_reports_after_resume", pipeline_resume_identical);
  w.end_object();
  w.key("event_queue");
  w.begin_object();
  w.kv("schedule_fire_ns_per_event", q.schedule_fire_ns);
  w.kv("schedule_cancel_fire_ns_per_event", q.schedule_cancel_fire_ns);
  w.kv("cancel_churn_ns_per_op", q.cancel_churn_ns);
  w.kv("churn_compactions", static_cast<double>(q.compactions));
  w.kv("events_fired_checksum", static_cast<double>(q.events_fired));
  w.end_object();
  w.key("scaler");
  w.begin_object();
  w.kv("steps", static_cast<double>(s.steps));
  w.kv("fast_ns_per_step", s.fast_ns);
  w.kv("reference_ns_per_step", s.reference_ns);
  w.kv("speedup_fast_vs_reference", s.speedup);
  w.kv("decisions_identical", s.decisions_match);
  w.end_object();
  w.key("checkpoint");
  w.begin_object();
  w.kv("every_0_seconds", ckpt_seconds[0]);
  w.kv("every_10_seconds", ckpt_seconds[1]);
  w.kv("every_100_seconds", ckpt_seconds[2]);
  w.kv("overhead_every_0", ckpt_seconds[0] / serial.seconds - 1.0);
  w.kv("overhead_every_10", ckpt_seconds[1] / serial.seconds - 1.0);
  w.kv("overhead_every_100", ckpt_seconds[2] / serial.seconds - 1.0);
  w.kv("journaled_reports_identical", ckpt_identical);
  w.end_object();
  w.end_object();
  out << "\n";
  std::printf("wrote %s\n", out_file.c_str());
  return ok ? 0 : 1;
}
