"""Intraprocedural (single-body / single-line) lint rules.

This is the rule set `tools/greengpu_lint.py` has always enforced —
nondeterminism sources, unordered iteration in report paths, hot-path
allocation, batch-loop allocation, pipeline blocking syncs, checkpoint
writes, service growth, the hot registry — now built on the shared
scanner so gg-analyze's interprocedural rules see the same tokens.
See docs/STATIC_ANALYSIS.md for the rule table.
"""

from __future__ import annotations

import os
import re

from gglint.diagnostics import Diagnostic, SuppressionTable
from gglint.scanner import (loop_spans, marker_spans, match_brace,
                            strip_comments_and_strings)

# --------------------------------------------------------------------------
# Configuration
# --------------------------------------------------------------------------

SCAN_DIRS = ("src", "tools", "bench", "examples", "tests")
EXTS = (".h", ".hpp", ".cpp", ".cc")
EXCLUDE_PARTS = ("tests/tools/fixtures",)  # lint's own violation corpus

# nondeterminism: (regex, only_under_src, message)
NONDET_PATTERNS = [
    (re.compile(r"std::random_device"), False,
     "std::random_device is a nondeterministic seed source; use a seeded "
     "generator from src/common/rng.h"),
    (re.compile(r"\b(?:std::)?s?rand\s*\("), False,
     "rand()/srand() draw from hidden global state; use a seeded generator "
     "from src/common/rng.h"),
    (re.compile(r"\bsystem_clock\b|\bhigh_resolution_clock\b"), False,
     "wall-clock reads make runs irreproducible; simulated time comes from "
     "sim::EventQueue::now()"),
    (re.compile(r"\bsteady_clock\b"), True,
     "steady_clock is sanctioned for wall-time measurement in tools/ and "
     "bench/ only; inside src/ all time must come from sim::EventQueue::now()"),
    (re.compile(r"\bgettimeofday\s*\(|\bclock_gettime\s*\(|\bclock\s*\(\s*\)"), False,
     "OS clock reads make runs irreproducible; simulated time comes from "
     "sim::EventQueue::now()"),
    (re.compile(r"(?:::|\bstd::)time\s*\(|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"), False,
     "time() is a wall-clock read; simulated time comes from "
     "sim::EventQueue::now()"),
    (re.compile(r"\bgetenv\s*\("), False,
     "environment reads make runs host-dependent; thread configuration "
     "through src/common/flags.h"),
]

# unordered containers are banned outright in these translation units: they
# produce the repo's externally-visible bytes (CSV/JSON reports, traces,
# telemetry snapshots), where unspecified iteration order breaks the
# byte-identity contract.
REPORT_PATH_RE = re.compile(
    r"(src/common/(csv|json)\.(h|cpp)"
    r"|src/greengpu/(campaign|telemetry)\.(h|cpp)"
    r"|src/sim/trace\.(h|cpp)"
    r"|report|serial)")

UNORDERED_DECL_RE = re.compile(
    r"\b(?:std::)?unordered_(?:map|set|multimap|multiset)\s*<")
# declared variable name after the closing template bracket, e.g.
# `std::unordered_map<K, V> index_;` or `unordered_set<int> seen{...};`
UNORDERED_VAR_RE = re.compile(
    r"\b(?:std::)?unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s*&?\s*"
    r"(\w+)\s*(?:[;={(,)]|$)")

ALLOC_PATTERNS = [
    (re.compile(r"\bnew\b"), "operator new"),
    (re.compile(r"\b(?:malloc|calloc|realloc|strdup)\s*\("), "C allocation"),
    (re.compile(r"\bmake_(?:unique|shared)\b"), "make_unique/make_shared"),
    (re.compile(r"\.(?:push_back|emplace_back|emplace|insert|resize|reserve)\s*\("),
     "container growth"),
    (re.compile(r"\bstd::to_string\b|\bstd::(?:o|i)?stringstream\b|"
                r"\bstd::string\s*[({]"), "string construction"),
    (re.compile(r"\bstd::function\s*<"), "std::function construction"),
    (re.compile(r"\bstd::vector\s*<[^;]*?>\s+\w+\s*[({]"), "local vector"),
]

# hot-registry: (repo-relative file, definition regex, display name).
# These are the functions whose allocation-freedom the benchmarks and the
# PR 3 equivalence suite rely on; each must carry GG_HOT on its definition
# line or the line above.
REQUIRED_HOT = [
    ("src/greengpu/weight_table.cpp",
     re.compile(r"PairIndex\s+WeightTable::update_fused\s*\("),
     "WeightTable::update_fused"),
    ("src/greengpu/weight_table.cpp",
     re.compile(r"PairIndex\s+FixedWeightTable::update_fused\s*\("),
     "FixedWeightTable::update_fused"),
    ("src/greengpu/wma_scaler.cpp",
     re.compile(r"ScalerDecision\s+GpuFrequencyScaler::step_fast\s*\("),
     "GpuFrequencyScaler::step_fast"),
    ("src/sim/event_queue.cpp",
     re.compile(r"EventHandle\s+EventQueue::schedule_at\s*\("),
     "EventQueue::schedule_at"),
    ("src/sim/event_queue.cpp",
     re.compile(r"bool\s+EventQueue::step\s*\("),
     "EventQueue::step"),
    ("src/sim/event_queue.h",
     re.compile(r"std::uint32_t\s+acquire\s*\("),
     "EventSlab::acquire"),
    ("src/greengpu/telemetry.h",
     re.compile(r"void\s+push\s*\("),
     "DecisionRecorder::push"),
    # Batch campaign engine (PR 7): the lockstep stepper and the SoA finalize
    # kernels carry GG_HOT_BATCH, which puts their loop bodies under the
    # batch-loop-alloc rule.
    ("src/greengpu/batch_engine.cpp",
     re.compile(r"void\s+step_lockstep\s*\("),
     "step_lockstep"),
    ("src/sim/soa.h",
     re.compile(r"void\s+batch_saving_vs_baseline\s*\("),
     "batch_saving_vs_baseline"),
    ("src/sim/soa.h",
     re.compile(r"void\s+batch_rel_delta\s*\("),
     "batch_rel_delta"),
    # Async stream machinery (PR 8): the per-stream issue loop runs once per
    # queued op per completion event — the pipeline's hot path.
    ("src/cudalite/stream_scheduler.cpp",
     re.compile(r"void\s+StreamScheduler::pump\s*\("),
     "StreamScheduler::pump"),
]

# pipeline-blocking-sync: blocking waits banned inside GG_PIPELINE_STAGE
# callback bodies (brace-matched from the first '{' after the marker).
PIPELINE_SYNC_RE = re.compile(r"\b(?:device_synchronize|synchronize)\s*\(")

# checkpoint-write: an ofstream construction counts as a checkpoint write
# when the file itself is checkpoint infrastructure, or when the raw lines
# just above (strings and comments included — that is where path literals
# like ".ggsn" live) mention checkpoint tokens.  GG_LINT_ALLOW lines are
# not evidence, or suppression comments would self-trigger the rule.
CKPT_OFSTREAM_RE = re.compile(r"\b(?:std::)?ofstream\b")
CKPT_FILE_RE = re.compile(r"(snapshot|checkpoint|recovery|journal|ckpt)",
                          re.IGNORECASE)
CKPT_TOKEN_RE = re.compile(r"ckpt|checkpoint|snapshot|journal|\.ggsn",
                           re.IGNORECASE)
CKPT_WINDOW = 4  # raw lines above the construction scanned for evidence

# service-growth: applies to the always-on service layer (and, like the
# checkpoint-write filename heuristic, to any file named after it, which is
# how the fixture corpus exercises the rule).
SERVICE_PATH_RE = re.compile(r"(^|/)src/service/|service[^/]*$")
SERVICE_GROWTH_RE = re.compile(
    r"\.\s*(?:push_back|emplace_back|emplace|push|insert)\s*\(")
BOUNDED_RE = re.compile(r"GG_BOUNDED\(([^)]*)\)")

# socket-blocking-write: raw socket syscalls in the service layer are only
# sanctioned inside GG_NONBLOCK_IO-annotated helper bodies, whose contract
# (bounded EINTR retry, EAGAIN deferral, EPIPE -> orderly close) is what
# keeps one stalled WATCH subscriber from wedging the daemon.  The negative
# lookbehind keeps qualified names (ServiceJournal::read) from matching the
# global-scope syscall form (::read).
SOCKET_SYSCALL_RE = re.compile(r"(?<![\w>])::\s*(read|write|send|recv)\s*\(")

# --------------------------------------------------------------------------
# Mechanics
# --------------------------------------------------------------------------


class FileLinter:
    def __init__(self, relpath: str, raw: str):
        self.relpath = relpath
        self.raw_lines = raw.splitlines()
        self.code = strip_comments_and_strings(raw)
        self.code_lines = self.code.splitlines()
        self.suppressions = SuppressionTable(self.raw_lines)
        self.diags: list = []

    def report(self, line: int, rule: str, message: str) -> None:
        hit = self.suppressions.probe(line, rule)
        if hit is not None:
            kind, payload = hit
            if kind == "allowed":
                return  # suppressed with a reason
            self.diags.append(Diagnostic(
                self.relpath, payload, "bare-suppression",
                f"GG_LINT_ALLOW({rule}) needs a reason after ':'"))
            return
        self.diags.append(Diagnostic(self.relpath, line, rule, message))

    # -- nondeterminism ----------------------------------------------------
    def check_nondeterminism(self) -> None:
        under_src = self.relpath.startswith("src/")
        for ln, line in enumerate(self.code_lines, 1):
            for pattern, src_only, message in NONDET_PATTERNS:
                if src_only and not under_src:
                    continue
                if pattern.search(line):
                    self.report(ln, "nondeterminism", message)

    # -- unordered-iter ----------------------------------------------------
    def check_unordered(self) -> None:
        in_report_path = REPORT_PATH_RE.search(self.relpath) is not None
        unordered_vars = set()
        for ln, line in enumerate(self.code_lines, 1):
            if in_report_path and UNORDERED_DECL_RE.search(line):
                self.report(
                    ln, "unordered-iter",
                    "unordered containers are banned in report/serialization "
                    "paths (iteration order is unspecified); use std::map or "
                    "a sorted vector")
            for m in UNORDERED_VAR_RE.finditer(line):
                unordered_vars.add(m.group(1))
        if not unordered_vars:
            return
        names = "|".join(re.escape(v) for v in sorted(unordered_vars))
        range_for = re.compile(
            r"for\s*\([^;)]*:\s*(?:\w+(?:\.|->))*(" + names + r")\b")
        for ln, line in enumerate(self.code_lines, 1):
            m = range_for.search(line)
            if m:
                self.report(
                    ln, "unordered-iter",
                    f"range-for over unordered container '{m.group(1)}' has "
                    "unspecified order; iterate sorted keys or switch to an "
                    "ordered container")

    # -- hot-alloc ---------------------------------------------------------
    def check_hot_alloc(self) -> None:
        for name, open_idx, close_idx in marker_spans(self.code, "GG_HOT"):
            start = self.code.count("\n", 0, open_idx) + 1
            end = self.code.count("\n", 0, close_idx) + 1
            for ln in range(start, end + 1):
                line = self.code_lines[ln - 1] if ln - 1 < len(self.code_lines) else ""
                for pattern, what in ALLOC_PATTERNS:
                    if pattern.search(line):
                        self.report(
                            ln, "hot-alloc",
                            f"{what} in GG_HOT function '{name}' — hot paths "
                            "must be allocation-free (see "
                            "src/common/annotations.h)")

    # -- batch-loop-alloc --------------------------------------------------
    def check_batch_loop_alloc(self) -> None:
        """GG_HOT_BATCH steppers may allocate in their prologue (gather
        buffers, pointer tables) but never inside a loop — loop bodies run
        once per cell per iteration.  Note GG_HOT's \\bGG_HOT\\b word
        boundary does not match inside GG_HOT_BATCH (underscore is a word
        character), so the two rules never double-report a function."""
        for name, open_idx, close_idx in marker_spans(self.code, "GG_HOT_BATCH"):
            loop_lines: set = set()
            for body_open, body_close in loop_spans(self.code, open_idx, close_idx):
                first = self.code.count("\n", 0, body_open) + 1
                last = self.code.count("\n", 0, body_close) + 1
                loop_lines.update(range(first, last + 1))
            for ln in sorted(loop_lines):
                line = self.code_lines[ln - 1] if ln - 1 < len(self.code_lines) else ""
                for pattern, what in ALLOC_PATTERNS:
                    if pattern.search(line):
                        self.report(
                            ln, "batch-loop-alloc",
                            f"{what} inside a loop of GG_HOT_BATCH function "
                            f"'{name}' — the batch stepper runs this once per "
                            "cell per iteration; hoist the allocation into "
                            "the prologue (see src/common/annotations.h)")

    # -- pipeline-blocking-sync --------------------------------------------
    def check_pipeline_blocking_sync(self) -> None:
        """Stage callbacks marked GG_PIPELINE_STAGE run inside the stream
        machinery; a blocking wait there serializes (or deadlocks) the
        pipeline.  Body = first '{' after the marker, brace-matched."""
        for _, open_idx, close_idx in marker_spans(self.code, "GG_PIPELINE_STAGE"):
            start = self.code.count("\n", 0, open_idx) + 1
            end = self.code.count("\n", 0, close_idx) + 1
            for ln in range(start, end + 1):
                line = self.code_lines[ln - 1] if ln - 1 < len(self.code_lines) else ""
                if PIPELINE_SYNC_RE.search(line):
                    self.report(
                        ln, "pipeline-blocking-sync",
                        "blocking synchronize()/device_synchronize() inside a "
                        "GG_PIPELINE_STAGE callback serializes the pipeline "
                        "the stage belongs to (and a wait on the stage's own "
                        "stream deadlocks the issue loop); order with events "
                        "(stream_wait_event) and completion callbacks "
                        "(see src/common/annotations.h)")

    # -- checkpoint-write --------------------------------------------------
    def check_checkpoint_write(self) -> None:
        fname = self.relpath.rsplit("/", 1)[-1]
        infra_file = CKPT_FILE_RE.search(fname) is not None
        for ln, line in enumerate(self.code_lines, 1):
            if not CKPT_OFSTREAM_RE.search(line):
                continue
            evidence = infra_file
            if not evidence:
                lo = max(0, ln - 1 - CKPT_WINDOW)
                for raw in self.raw_lines[lo:ln]:
                    if "GG_LINT_ALLOW" in raw:
                        continue
                    if CKPT_TOKEN_RE.search(raw):
                        evidence = True
                        break
            if evidence:
                self.report(
                    ln, "checkpoint-write",
                    "direct ofstream to a checkpoint/snapshot path is not "
                    "crash-safe (a kill mid-write leaves a torn file); route "
                    "it through SnapshotWriter::write_atomic "
                    "(src/common/snapshot.h)")

    # -- service-growth ----------------------------------------------------
    def check_service_growth(self) -> None:
        if not SERVICE_PATH_RE.search(self.relpath):
            return
        for ln, line in enumerate(self.code_lines, 1):
            if not SERVICE_GROWTH_RE.search(line):
                continue
            annotation = None
            for probe in (ln, ln - 1):
                if probe < 1:
                    continue
                m = BOUNDED_RE.search(self.raw_lines[probe - 1])
                if m:
                    annotation = m
                    break
            if annotation is not None:
                if annotation.group(1).strip():
                    continue  # bounded, with a stated reason
                self.diags.append(Diagnostic(
                    self.relpath, ln, "service-growth",
                    "GG_BOUNDED() needs a reason naming the bound (e.g. "
                    "GG_BOUNDED(capacity enforced by BoundedQueue))"))
                continue
            self.report(
                ln, "service-growth",
                "unbounded container growth in the service layer — route it "
                "through common::BoundedQueue or annotate the site "
                "GG_BOUNDED(<why the growth is bounded>) "
                "(src/common/annotations.h)")

    # -- socket-blocking-write ---------------------------------------------
    def check_socket_write(self) -> None:
        """Raw ::read/::write/::send/::recv in the service layer must live
        inside a GG_NONBLOCK_IO-annotated helper body (first '{' after the
        marker, brace-matched) — anywhere else it is presumed to block the
        daemon's single poll thread."""
        if not SERVICE_PATH_RE.search(self.relpath):
            return
        sanctioned: set = set()
        for _, open_idx, close_idx in marker_spans(self.code, "GG_NONBLOCK_IO"):
            first = self.code.count("\n", 0, open_idx) + 1
            last = self.code.count("\n", 0, close_idx) + 1
            sanctioned.update(range(first, last + 1))
        for ln, line in enumerate(self.code_lines, 1):
            m = SOCKET_SYSCALL_RE.search(line)
            if not m or ln in sanctioned:
                continue
            self.report(
                ln, "socket-blocking-write",
                f"raw ::{m.group(1)}() in the service layer outside a "
                "GG_NONBLOCK_IO helper — a blocking socket call lets one "
                "slow peer wedge the daemon's poll loop; route the byte "
                "through the annotated non-blocking helpers "
                "(src/common/annotations.h)")

    def run(self) -> list:
        self.check_nondeterminism()
        self.check_unordered()
        self.check_hot_alloc()
        self.check_batch_loop_alloc()
        self.check_pipeline_blocking_sync()
        self.check_checkpoint_write()
        self.check_service_growth()
        self.check_socket_write()
        return self.diags


def check_registry(root: str) -> list:
    diags = []
    for relpath, pattern, display in REQUIRED_HOT:
        path = os.path.join(root, relpath)
        try:
            with open(path, encoding="utf-8") as f:
                raw = f.read()
        except OSError:
            diags.append(Diagnostic(
                relpath, 1, "hot-registry",
                f"registry function '{display}' expected here but the file "
                "is missing — update REQUIRED_HOT in tools/gglint/"
                "intraprocedural.py"))
            continue
        lines = strip_comments_and_strings(raw).splitlines()
        found = False
        for ln, line in enumerate(lines, 1):
            if pattern.search(line):
                found = True
                prev = lines[ln - 2] if ln >= 2 else ""
                if "GG_HOT" not in line and "GG_HOT" not in prev:
                    diags.append(Diagnostic(
                        relpath, ln, "hot-registry",
                        f"'{display}' is in the hot registry but its "
                        "definition is missing the GG_HOT annotation"))
                break
        if not found:
            diags.append(Diagnostic(
                relpath, 1, "hot-registry",
                f"registry function '{display}' not found — if it moved or "
                "was renamed, update REQUIRED_HOT in tools/gglint/"
                "intraprocedural.py"))
    return diags


def iter_tree(root: str, dirs=SCAN_DIRS):
    for top in dirs:
        base = os.path.join(root, top)
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for fname in sorted(filenames):
                path = os.path.join(dirpath, fname)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                if not rel.endswith(EXTS):
                    continue
                if any(part in rel for part in EXCLUDE_PARTS):
                    continue
                yield path, rel


def resolve_targets(root: str, files) -> list:
    """Map explicit file arguments to (abspath, display-relpath) pairs the
    way the lint always has: root-relative when under root, bare basename
    otherwise (fixtures referenced from elsewhere)."""
    targets = []
    for f in files:
        path = os.path.abspath(f)
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        if rel.startswith(".."):
            rel = os.path.basename(path)  # outside root: bare name
        targets.append((path, rel))
    return targets
