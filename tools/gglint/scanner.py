"""Token-level C++ scanning shared by greengpu-lint and gg-analyze.

Not a parser: a line-preserving comment/string stripper plus brace-matched
span extraction, good enough to find annotated function bodies, function
definitions and call sites without dragging in a real C++ front end.  The
one place the approximation is load-bearing — raw string literals, whose
contents may contain `new`, `malloc(`, quotes and braces — is handled
exactly (delimiter-matched), so fixture text inside `R"(...)"` can never
masquerade as code.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line structure
    so line numbers survive.  Raw string literals (`R"delim(...)delim"`, with
    optional u8/u/U/L encoding prefix) are matched by delimiter, so embedded
    quotes, parens and braces inside them cannot desynchronize the scan."""
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                if _is_raw_string_start(text, i):
                    i = _blank_raw_string(text, i, out)
                    continue
                mode = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                # Digit separators (1'000'000) are not char literals.
                prev = text[i - 1] if i > 0 else ""
                if prev.isdigit() and nxt.isdigit():
                    out.append(" ")
                    i += 1
                    continue
                mode = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif mode == "line":
            if c == "\n":
                mode = "code"
                out.append(c)
            else:
                out.append(" ")
        elif mode == "block":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif mode == "str":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "code"
            out.append(c if c == "\n" else " ")
        elif mode == "chr":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                mode = "code"
            out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


def _is_raw_string_start(text: str, quote: int) -> bool:
    """True when the '"' at `quote` opens a raw string literal: R" with an
    optional u8/u/U/L prefix, not preceded by an identifier character."""
    j = quote - 1
    if j < 0 or text[j] != "R":
        return False
    k = j - 1
    if k >= 0 and text[k] == "8" and k - 1 >= 0 and text[k - 1] == "u":
        k -= 2
    elif k >= 0 and text[k] in "uUL":
        k -= 1
    return k < 0 or not (text[k].isalnum() or text[k] == "_")


def _blank_raw_string(text: str, quote: int, out: list) -> int:
    """Blank a raw string starting at the '"' (delimiter-matched), append
    the blanks (newlines preserved) to `out`, return the resume index."""
    open_paren = text.find("(", quote + 1)
    if open_paren < 0 or open_paren - quote > 18:  # delimiter is <= 16 chars
        out.append(" ")
        return quote + 1  # malformed; treat as ordinary quote
    delim = text[quote + 1 : open_paren]
    closer = ")" + delim + '"'
    end = text.find(closer, open_paren + 1)
    end = len(text) if end < 0 else end + len(closer)
    for ch in text[quote:end]:
        out.append(ch if ch == "\n" else " ")
    return end


def match_brace(code: str, open_idx: int) -> int:
    """Index of the '}' matching the '{' at open_idx (comment/string-stripped
    text).  Falls back to end-of-text on imbalance."""
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(code) - 1


def match_paren(code: str, open_idx: int) -> int:
    """Index of the ')' matching the '(' at open_idx."""
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(code) - 1


def line_of(code: str, idx: int) -> int:
    return code.count("\n", 0, idx) + 1


# Identifiers that look like function calls but are control flow / operators.
CPP_KEYWORDS = frozenset({
    "if", "for", "while", "switch", "catch", "return", "sizeof", "new",
    "delete", "else", "do", "case", "throw", "alignof", "alignas",
    "decltype", "static_assert", "constexpr", "consteval", "constinit",
    "noexcept", "typeid", "requires", "co_await", "co_return", "co_yield",
    "and", "or", "not", "defined", "assert", "static_cast", "dynamic_cast",
    "const_cast", "reinterpret_cast", "operator",
})

QUALNAME_RE = re.compile(r"[A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*")
_CALL_RE = re.compile(r"([A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*)\s*\(")
_SCOPE_HEAD_RE = re.compile(
    r"(?:class|struct|namespace)\s+(?:\[\[[^\]]*\]\]\s*)?"
    r"(?:GG_\w+\s+)?([A-Za-z_]\w*(?:\s*::\s*[A-Za-z_]\w*)*)\s*(?:final\s*)?"
    r"(?::[^;{]*)?$")


@dataclass
class FunctionDef:
    """One function definition found by the token scanner."""
    name: str            # basename: last :: component as written
    qualname: str        # scope-qualified (enclosing namespaces/classes)
    relpath: str
    params: str          # raw text between the signature's parens
    sig_line: int        # line of the name token
    start_line: int      # line of the opening brace
    end_line: int        # line of the closing brace
    scan_start: int = 0  # char index: params close paren (covers ctor inits)
    scan_end: int = 0    # char index: closing brace
    marker: str = ""     # GG_HOT / GG_HOT_BATCH when the definition carries one

    @property
    def key(self) -> str:
        return f"{self.relpath}:{self.sig_line}:{self.qualname}"


@dataclass
class CallSite:
    callee: str      # basename of the called (or referenced) function
    as_written: str  # qualified text as it appears at the site
    line: int
    kind: str        # "call" | "ref" (address-taken / passed by name)
    recv: str = ""   # receiver identifier for `x.f()` / `x->f()`, else ""


def named_scopes(code: str) -> list:
    """(open_idx, close_idx, name) for every class/struct/namespace brace,
    used to qualify inline member-function definitions."""
    scopes = []
    for m in re.finditer(r"\{", code):
        # The head is the text since the previous ; { } at this nesting.
        start = max(code.rfind(";", 0, m.start()), code.rfind("{", 0, m.start()),
                    code.rfind("}", 0, m.start())) + 1
        head = code[start:m.start()].strip()
        sm = _SCOPE_HEAD_RE.search(head)
        if sm:
            scopes.append((m.start(), match_brace(code, m.start()),
                           re.sub(r"\s+", "", sm.group(1))))
    return scopes


def extract_functions(code: str, relpath: str) -> list:
    """Find function definitions: qualified-name '(' params ')' [trailing
    tokens] '{' body '}'.  Handles const/noexcept/override/ref-qualifiers,
    trailing return types and constructor initializer lists (including
    brace member-inits).  Lambdas are not separate definitions — their
    bodies belong to the enclosing function's span, which is exactly what
    call-site scanning wants."""
    defs = []
    scopes = named_scopes(code)
    taken = []  # body spans already claimed, to skip calls inside them

    for m in _CALL_RE.finditer(code):
        name_start = m.start(1)
        qual = re.sub(r"\s+", "", m.group(1))
        base = qual.rsplit("::", 1)[-1].lstrip("~")
        if base in CPP_KEYWORDS or qual.split("::", 1)[0] == "std":
            continue
        if any(s <= name_start < e for s, e in taken):
            continue  # a call inside an already-extracted body
        open_paren = m.end() - 1
        close_paren = match_paren(code, open_paren)
        body_open = _find_body_brace(code, close_paren + 1)
        if body_open < 0:
            continue
        # Not a definition if the name sits in an expression context.
        p = name_start - 1
        while p >= 0 and code[p] in " \t\n":
            p -= 1
        if p >= 0 and (code[p] in "=,(!|+-/%?.<" or
                       (code[p] == ">" and p >= 1 and code[p - 1] == "-")):
            continue
        prev_word = _word_before(code, p)
        if prev_word in ("return", "co_return", "co_yield", "case", "throw",
                         "new"):
            continue
        body_close = match_brace(code, body_open)
        taken.append((body_open, body_close))
        enclosing = [name for (s, e, name) in scopes if s < name_start < e]
        qualname = "::".join(_merge_scopes(enclosing, qual))
        defs.append(FunctionDef(
            name=base, qualname=qualname, relpath=relpath,
            params=code[open_paren + 1:close_paren],
            sig_line=line_of(code, name_start),
            start_line=line_of(code, body_open),
            end_line=line_of(code, body_close),
            scan_start=close_paren + 1, scan_end=body_close))
    return defs


def _merge_scopes(enclosing: list, qual: str) -> list:
    """`Foo::bar` defined at namespace scope already names its class; avoid
    doubling a segment that the qualified name repeats."""
    first = qual.split("::", 1)[0]
    for i, s in enumerate(enclosing):
        if s.split("::")[-1] == first:
            return enclosing[:i] + [qual]
    return enclosing + [qual]


def _word_before(code: str, p: int) -> str:
    end = p + 1
    while p >= 0 and (code[p].isalnum() or code[p] == "_"):
        p -= 1
    return code[p + 1:end]


def _find_body_brace(code: str, idx: int) -> int:
    """From just after the params' ')', consume tokens a definition may
    carry (const, noexcept(...), override, final, ref-qualifiers, trailing
    return type, ctor initializer list, [[attributes]]) and return the index
    of the body '{', or -1 if this is not a definition."""
    n = len(code)
    i = idx
    while i < n:
        c = code[i]
        if c in " \t\n":
            i += 1
            continue
        if c == "{":
            return i
        if c in ";=,)":
            return -1
        if c == "&":
            i += 1
            continue
        if code.startswith("[[", i):
            close = code.find("]]", i)
            if close < 0:
                return -1
            i = close + 2
            continue
        if c == ":":
            return _skip_ctor_inits(code, i + 1)
        if c == "-" and i + 1 < n and code[i + 1] == ">":
            # Trailing return type: consume until '{' or ';' at depth 0.
            i += 2
            depth = 0
            while i < n:
                ch = code[i]
                if ch in "(<[":
                    depth += 1
                elif ch in ")>]":
                    depth -= 1
                elif ch == "{" and depth <= 0:
                    return i
                elif ch == ";" and depth <= 0:
                    return -1
                i += 1
            return -1
        m = re.match(r"(?:const|noexcept|override|final|mutable|throw|"
                     r"volatile|try|requires|GG_\w+)\b", code[i:])
        if m:
            i += m.end()
            if i < n:
                j = i
                while j < n and code[j] in " \t\n":
                    j += 1
                if j < n and code[j] == "(":
                    i = match_paren(code, j) + 1
            continue
        return -1
    return -1


def _skip_ctor_inits(code: str, i: int) -> int:
    """Consume a constructor initializer list starting after ':'.  A '{'
    directly preceded by an identifier char or '>' is a member brace-init
    (matched and skipped); any other '{' is the body."""
    n = len(code)
    while i < n:
        c = code[i]
        if c == "(":
            i = match_paren(code, i) + 1
            continue
        if c == "{":
            p = i - 1
            while p >= 0 and code[p] in " \t\n":
                p -= 1
            if p >= 0 and (code[p].isalnum() or code[p] in "_>"):
                i = match_brace(code, i) + 1
                continue
            return i
        if c == ";":
            return -1
        i += 1
    return -1


def call_sites(code: str, start: int, end: int, known: frozenset = None) -> list:
    """Call sites (and, when `known` basenames are given, bare function
    references — address-taken or passed by name) inside code[start:end].

    Direct calls `name(` are always reported; bare references are reported
    only for names in `known` and only in address-of position (`&name`, the
    way function pointers are formed) — looser contexts like `(name` or
    `= name` would alias every local variable that happens to share a
    function's name (`value`, `sample`, `b`...) into call edges."""
    sites = []
    span = code[start:end]
    called_spans = []
    for m in _CALL_RE.finditer(span):
        qual = re.sub(r"\s+", "", m.group(1))
        base = qual.rsplit("::", 1)[-1].lstrip("~")
        if base in CPP_KEYWORDS:
            continue
        called_spans.append((m.start(1), m.end(1)))
        sites.append(CallSite(callee=base, as_written=qual,
                              line=line_of(code, start + m.start(1)),
                              kind="call",
                              recv=_receiver_of(span, m.start(1))))
    if known:
        for m in re.finditer(r"[A-Za-z_]\w*", span):
            if m.group(0) not in known:
                continue
            if any(s <= m.start() < e for s, e in called_spans):
                continue
            after = span[m.end():m.end() + 2].lstrip()
            if after.startswith("(") or after.startswith("::"):
                continue
            p = m.start() - 1
            while p >= 0 and span[p] in " \t\n":
                p -= 1
            if p < 0 or span[p] != "&":
                continue
            if p >= 1 and span[p - 1] == "&":
                continue  # rvalue ref / logical-and, not address-of
            sites.append(CallSite(callee=m.group(0), as_written=m.group(0),
                                  line=line_of(code, start + m.start()),
                                  kind="ref"))
    sites.sort(key=lambda s: (s.line, s.callee))
    return sites


def _receiver_of(span: str, name_start: int) -> str:
    """The identifier before `.` or `->` at a call site (`x.f()` -> "x"),
    or "" when the call has no simple receiver (free call, chained call on
    a temporary, qualified call)."""
    p = name_start - 1
    while p >= 0 and span[p] in " \t\n":
        p -= 1
    if p >= 0 and span[p] == ".":
        q = p - 1
    elif p >= 1 and span[p] == ">" and span[p - 1] == "-":
        q = p - 2
    else:
        return ""
    while q >= 0 and span[q] in " \t\n":
        q -= 1
    end = q + 1
    while q >= 0 and (span[q].isalnum() or span[q] == "_"):
        q -= 1
    recv = span[q + 1:end]
    return recv if recv and not recv[0].isdigit() else ""


# Declarations (`Type name;`, `const Ns::Type& name = ...`, `Type name(...)`)
# mined to bind member-call receivers to their classes.  The skip set keeps
# `return foo;`-style text from minting fake types.
_DECL_RE = re.compile(
    r"\b([A-Za-z_]\w*(?:\s*::\s*[A-Za-z_]\w*)*)\s*(?:<[^;<>(){}]*>)?\s*"
    r"[&*]?\s+([A-Za-z_]\w*)\s*[;={(]")
_DECL_SKIP = CPP_KEYWORDS | frozenset({
    "auto", "const", "static", "inline", "extern", "using", "typedef",
    "typename", "template", "struct", "class", "enum", "union", "namespace",
    "public", "private", "protected", "virtual", "friend", "explicit",
    "unsigned", "signed", "long", "short", "int", "double", "float", "bool",
    "char", "void", "goto", "break", "continue", "volatile", "mutable",
    "register", "thread_local",
})


def declared_types(code: str) -> dict:
    """identifier -> set of declared type basenames, mined from declaration-
    shaped text.  Deliberately over-approximate (an identifier reused with
    different types unions them); used only to RESTRICT member-call
    resolution, never to invent edges."""
    out: dict = {}
    for m in _DECL_RE.finditer(code):
        type_txt = re.sub(r"\s+", "", m.group(1))
        type_base = type_txt.rsplit("::", 1)[-1]
        if type_base in _DECL_SKIP or m.group(2) in _DECL_SKIP:
            continue
        out.setdefault(m.group(2), set()).add(type_base)
    return out


def marker_spans(code: str, marker: str) -> list:
    """(display_name, body_open_idx, body_close_idx) for each `marker`
    annotation (GG_HOT, GG_HOT_BATCH, GG_PIPELINE_STAGE): the first '{'
    after the marker, brace-matched.  The marker's own #define is skipped."""
    spans = []
    for m in re.finditer(r"\b" + marker + r"\b", code):
        line_start = code.rfind("\n", 0, m.start()) + 1
        if code[line_start:m.start()].lstrip().startswith("#"):
            continue
        open_idx = code.find("{", m.end())
        if open_idx < 0:
            continue
        sig = code[m.end():open_idx]
        names = re.findall(r"([A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)\s*\(", sig)
        name = names[0] if names else "<unknown>"
        spans.append((name, open_idx, match_brace(code, open_idx)))
    return spans


def loop_spans(code: str, start: int, end: int) -> list:
    """Char spans of brace-delimited for/while bodies inside [start, end)."""
    spans = []
    for lm in re.finditer(r"\b(?:for|while)\s*\(", code[start:end]):
        i = start + lm.end() - 1
        close = match_paren(code, i)
        body_open = code.find("{", close)
        if body_open < 0 or body_open > end:
            continue
        if code[close + 1:body_open].strip():
            continue  # single-statement loop or do-while tail
        spans.append((body_open, match_brace(code, body_open)))
    return spans
