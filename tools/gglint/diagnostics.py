"""Diagnostics, suppressions and output formatting shared by greengpu-lint
and gg-analyze.

A diagnostic renders as `path:line: error: [rule] message` in text mode, or
as one object in a stable-key-order JSON document in `--format json` mode
(so CI can diff violation counts across runs instead of string-matching
stderr).  Suppression is the one project-wide mechanism: a violating line
is accepted when it, or the `//` comment block directly above it, carries
`GG_LINT_ALLOW(<rule>): <non-empty reason>`; a reasonless suppression is
itself a diagnostic (bare-suppression).
"""

from __future__ import annotations

import json
import re


ALLOW_RE = re.compile(r"GG_LINT_ALLOW\(([a-z-]+)\)\s*(?::\s*(\S.*))?")


class Diagnostic:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def render(self) -> str:
        return f"{self.path}:{self.line}: error: [{self.rule}] {self.message}"


def collect_suppressions(raw_lines) -> dict:
    """line number -> {rule: reason-or-None} from GG_LINT_ALLOW comments."""
    allows = {}
    for ln, line in enumerate(raw_lines, 1):
        m = ALLOW_RE.search(line)
        if m:
            allows.setdefault(ln, {})[m.group(1)] = m.group(2)
    return allows


class SuppressionTable:
    """Per-file suppression lookup with the lint's probing discipline: a
    suppression covers the line it sits on, or a violation directly below
    the (possibly multi-line) `//` comment block it starts."""

    def __init__(self, raw_lines):
        self.raw_lines = raw_lines
        self.allows = collect_suppressions(raw_lines)

    def probe(self, line: int, rule: str):
        """Returns ("allowed", reason), ("bare", probe_line) or None."""
        probes = [line]
        probe = line - 1
        while probe >= 1 and self.raw_lines[probe - 1].lstrip().startswith("//"):
            probes.append(probe)
            probe -= 1
        for p in probes:
            rules = self.allows.get(p, {})
            if rule in rules:
                if rules[rule]:
                    return ("allowed", rules[rule])
                return ("bare", p)
        return None


def finalize(diags) -> list:
    """Sort by (path, line, rule, message) and drop exact duplicates — the
    order every golden file in tests/tools/expected/ encodes."""
    diags.sort(key=lambda d: (d.path, d.line, d.rule, d.message))
    seen = set()
    out = []
    for d in diags:
        key = (d.path, d.line, d.rule, d.message)
        if key not in seen:
            seen.add(key)
            out.append(d)
    return out


def emit(diags, tool: str, fmt: str, out, err) -> int:
    """Print finalized diagnostics in `fmt` ('text' or 'json'); returns the
    process exit status (1 when anything was reported).  A downstream pipe
    closing early (`... | head`) is not an error worth a traceback."""
    try:
        return _emit(diags, tool, fmt, out, err)
    except BrokenPipeError:
        return 1 if diags else 0


def _emit(diags, tool: str, fmt: str, out, err) -> int:
    if fmt == "json":
        rule_counts = {}
        for d in diags:
            rule_counts[d.rule] = rule_counts.get(d.rule, 0) + 1
        doc = {
            "count": len(diags),
            "diagnostics": [
                {"line": d.line, "message": d.message, "path": d.path,
                 "rule": d.rule}
                for d in diags
            ],
            "rule_counts": dict(sorted(rule_counts.items())),
            "tool": tool,
        }
        print(json.dumps(doc, indent=2, sort_keys=True), file=out)
    else:
        for d in diags:
            print(d.render(), file=out)
        if diags:
            print(f"{tool}: {len(diags)} violation(s)", file=err)
    return 1 if diags else 0
