"""gglint: GreenGPU's static-analysis library.

Shared by the two command-line front ends:

  tools/greengpu_lint.py   intraprocedural rules (single body / single line)
  tools/gg_analyze.py      interprocedural call-graph rules + the snapshot
                           wire-schema drift gate

Modules:
  scanner          comment/string/raw-string-aware C++ token scanning,
                   function-definition and call-site extraction
  diagnostics      Diagnostic, GG_LINT_ALLOW suppressions, text/JSON output
  intraprocedural  the classic greengpu-lint rule set
  callgraph        project call graph + transitive taint rules
  schema           snapshot field-write fingerprints + schema lock gate
"""
