"""Snapshot wire-schema fingerprints and the schema-drift gate.

The GGSN frame carries a single schema version (`kSnapshotVersion`,
src/common/snapshot.h) for every snapshottable type in the tree, but
nothing ties that number to the actual field-write sequences scattered
across save()/load() participants — PR 8 added copy-engine fields to
three types and the version bump was only remembered in review.  This
module closes the loop mechanically:

  * every function taking a `SnapshotWriter&` or `SnapshotReader&`
    parameter is a schema participant; its ordered field operations
    (u8/b/u32/u64/f64/str/f64_vec on the writer/reader variable, plus
    `call <fn>` for helpers the variable is threaded through) are its
    serialized shape;
  * the canonical text of all participants is committed as
    docs/snapshot_schema.lock, keyed by the kSnapshotVersion it was
    generated under and stamped with a nameless shape fingerprint
    (SHA-256 over sorted kind+op sequences — argument names and file
    locations excluded, so renames and moves do not change it);
  * the gate compares the tree against the lock:

      lock text == current text                      pass
      text drifted, shape identical                  schema-lock-stale
                                                     (regenerate; NO
                                                     version bump needed)
      shape changed, version NOT bumped              schema-drift  <- the bug
      shape changed, version bumped                  schema-lock-stale
                                                     (regenerate)

Known limitation: two adjacent fields of the same type swapping places
changes the lock text but not the nameless fingerprint, so it reports as
stale-lock rather than drift; and renaming a helper that state is
threaded through changes `call:<name>` in the fingerprint even though
the bytes are identical — regenerating after a bump clears it either
way.  Both trades keep the fingerprint free of names that churn.
"""

from __future__ import annotations

import hashlib
import os
import re
from dataclasses import dataclass

from gglint.diagnostics import Diagnostic
from gglint.scanner import (CPP_KEYWORDS, _CALL_RE, extract_functions,
                            line_of, match_paren, strip_comments_and_strings)

LOCK_RELPATH = "docs/snapshot_schema.lock"
SNAPSHOT_HEADER = "src/common/snapshot.h"

_PARAM_RE = re.compile(r"\bSnapshot(Writer|Reader)\s*&\s*(\w+)\b")
_VERSION_RE = re.compile(r"\bkSnapshotVersion\s*=\s*(\d+)")
_TYPED_OPS = frozenset({"u8", "b", "u32", "u64", "f64", "str", "f64_vec"})

_LOCK_HEADER = """\
# GreenGPU snapshot wire-schema lock — machine-written, do not edit.
# Regenerate:  python3 tools/gg_analyze.py --write-lock
#
# One block per SnapshotWriter/SnapshotReader participant, listing its
# ordered field operations.  `shape` fingerprints the nameless layout; when
# it changes, bump kSnapshotVersion (src/common/snapshot.h) FIRST, then
# regenerate.  gg-analyze fails CI when the shape drifts under an unbumped
# version (schema-drift) or when this file is out of date (schema-lock-stale).
"""


@dataclass
class SchemaEntry:
    relpath: str
    qualname: str        # display-qualified (leading gg:: stripped)
    kind: str            # "writer" | "reader"
    ops: list            # [(op, label)] — typed op + arg label, or ("call", fn)
    order: int           # encounter order, for stable duplicate suffixes
    key: str = ""

    def shape_item(self) -> str:
        toks = [f"call:{label}" if op == "call" else op
                for op, label in self.ops]
        return self.kind + "|" + ";".join(toks)


def _display_qualname(qualname: str) -> str:
    return qualname[4:] if qualname.startswith("gg::") else qualname


def _ops_for(code: str, start: int, end: int, var: str) -> list:
    """Ordered field operations on `var` inside code[start:end]."""
    ops = []
    var_word = re.compile(r"\b" + re.escape(var) + r"\b")
    span = code[start:end]
    for m in _CALL_RE.finditer(span):
        qual = re.sub(r"\s+", "", m.group(1))
        base = qual.rsplit("::", 1)[-1].lstrip("~")
        if base in CPP_KEYWORDS:
            continue
        open_paren = start + m.end() - 1
        close_paren = match_paren(code, open_paren)
        args = code[open_paren + 1:close_paren]
        # Receiver of the call, if it is `<ident>.` or `<ident>->`.
        p = start + m.start(1) - 1
        while p >= 0 and code[p] in " \t\n":
            p -= 1
        q = None
        if p >= 0 and code[p] == ".":
            q = p - 1
        elif p >= 1 and code[p] == ">" and code[p - 1] == "-":
            q = p - 2
        recv = None
        if q is not None:
            while q >= 0 and code[q] in " \t\n":
                q -= 1
            w_end = q + 1
            while q >= 0 and (code[q].isalnum() or code[q] == "_"):
                q -= 1
            recv = code[q + 1:w_end]
        if recv == var:
            if base in _TYPED_OPS:
                label = re.sub(r"\s+", " ", args).strip()
                ops.append((base, label))
            # payload()/frame()/expect_done()/remaining() are framing, not
            # layout — not recorded.
        elif var_word.search(args):
            ops.append(("call", base))
    return ops


def build_entries(file_texts) -> list:
    """SchemaEntry per (participant function, writer/reader parameter), in
    deterministic lock order, duplicate keys suffixed ` (2)`, ` (3)`, ..."""
    entries = []
    order = 0
    for relpath, raw in file_texts:
        code = strip_comments_and_strings(raw)
        for d in extract_functions(code, relpath):
            for m in _PARAM_RE.finditer(d.params):
                kind = m.group(1).lower()
                var = m.group(2)
                entries.append(SchemaEntry(
                    relpath=relpath,
                    qualname=_display_qualname(d.qualname),
                    kind=kind,
                    ops=_ops_for(code, d.scan_start, d.scan_end, var),
                    order=order))
                order += 1
    entries.sort(key=lambda e: (e.relpath, e.qualname, e.kind, e.order))
    counts: dict = {}
    for e in entries:
        base_key = f"{e.relpath} :: {e.qualname} #{e.kind}"
        n = counts.get(base_key, 0) + 1
        counts[base_key] = n
        e.key = base_key if n == 1 else f"{base_key} ({n})"
    return entries


def shape_fingerprint(entries) -> str:
    items = sorted(e.shape_item() for e in entries)
    return hashlib.sha256("\n".join(items).encode("utf-8")).hexdigest()


def render_lock(entries, version: int) -> str:
    lines = [_LOCK_HEADER,
             f"version {version}",
             f"shape {shape_fingerprint(entries)}",
             ""]
    for e in entries:
        lines.append(f"[{e.key}]")
        for op, label in e.ops:
            lines.append(f"  {op} {label}".rstrip())
        lines.append("")
    return "\n".join(lines)


def current_version(root: str):
    """kSnapshotVersion and its line number in src/common/snapshot.h, or
    (None, 0) when the header is absent (bare fixture trees)."""
    path = os.path.join(root, SNAPSHOT_HEADER)
    try:
        with open(path, encoding="utf-8") as f:
            raw = f.read()
    except OSError:
        return None, 0
    m = _VERSION_RE.search(raw)
    if not m:
        return None, 0
    return int(m.group(1)), raw.count("\n", 0, m.start()) + 1


def _lock_field(lock_text: str, field: str):
    m = re.search(r"^" + field + r"\s+(\S+)$", lock_text, re.MULTILINE)
    return m.group(1) if m else None


def check(root: str, lock_path: str, file_texts, diags: list) -> None:
    """The gate.  Appends schema-drift / schema-lock-stale diagnostics."""
    entries = build_entries(file_texts)
    version, version_line = current_version(root)
    version = 0 if version is None else version
    current_text = render_lock(entries, version)

    lock_rel = os.path.relpath(lock_path, root).replace(os.sep, "/")
    try:
        with open(lock_path, encoding="utf-8") as f:
            lock_text = f.read()
    except OSError:
        diags.append(Diagnostic(
            lock_rel, 1, "schema-lock-stale",
            "snapshot schema lock is missing — generate it with "
            "`python3 tools/gg_analyze.py --write-lock` and commit it"))
        return

    if lock_text == current_text:
        return

    lock_version = _lock_field(lock_text, "version")
    lock_shape = _lock_field(lock_text, "shape")
    cur_shape = shape_fingerprint(entries)

    if lock_shape == cur_shape:
        if lock_version is not None and lock_version != str(version):
            diags.append(Diagnostic(
                lock_rel, 1, "schema-lock-stale",
                f"lock was generated under kSnapshotVersion {lock_version} "
                f"but the header now says {version} (shape unchanged) — "
                "regenerate with `python3 tools/gg_analyze.py --write-lock`"))
        else:
            diags.append(Diagnostic(
                lock_rel, 1, "schema-lock-stale",
                "snapshot schema lock text is out of date (cosmetic drift: "
                "names, labels or locations changed; the serialized shape is "
                "identical) — regenerate with `python3 tools/gg_analyze.py "
                "--write-lock`; no kSnapshotVersion bump needed"))
        return

    if lock_version == str(version):
        diags.append(Diagnostic(
            SNAPSHOT_HEADER, max(version_line, 1), "schema-drift",
            f"serialized snapshot shape changed but kSnapshotVersion is "
            f"still {version} — an old snapshot would pass the version check "
            "and misload; bump kSnapshotVersion here, then regenerate the "
            "lock with `python3 tools/gg_analyze.py --write-lock`"))
    else:
        diags.append(Diagnostic(
            lock_rel, 1, "schema-lock-stale",
            f"kSnapshotVersion moved from {lock_version} to {version} and "
            "the serialized shape changed with it — regenerate the lock "
            "with `python3 tools/gg_analyze.py --write-lock`"))


def write_lock(root: str, lock_path: str, file_texts) -> str:
    entries = build_entries(file_texts)
    version, _ = current_version(root)
    text = render_lock(entries, 0 if version is None else version)
    with open(lock_path, "w", encoding="utf-8") as f:
        f.write(text)
    return text
