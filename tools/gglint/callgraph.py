"""Interprocedural call-graph analysis: transitive taint rules.

greengpu-lint's body-scan rules see only the annotated function's own
lines, so a one-line helper hides an allocation (or a wall-clock read, or
a blocking wait) from them.  This module builds a project call graph from
the shared token scanner — every function definition in the scanned file
set, every call site and bare function reference (address-taken /
passed-by-name function pointers) inside each body — and propagates taint
backwards from source sites:

  hot-alloc-transitive      GG_HOT / GG_HOT_BATCH functions must not reach
                            an allocation site through ANY call chain (for
                            GG_HOT_BATCH: chains starting inside a loop
                            body; the prologue may allocate).  Allocation
                            sites already suppressed with a reasoned
                            GG_LINT_ALLOW(hot-alloc|batch-loop-alloc) are
                            amortized by declaration and do not taint.

  nondet-transitive         Functions defined in report/serialization/
                            campaign translation units must not reach a
                            wall-clock or unseeded-RNG source through any
                            call chain.  Unlike allocations, a *suppressed*
                            nondeterminism source still taints: the local
                            suppression says "this helper may read the
                            clock for its own purpose", not "report paths
                            may depend on it".

  blocking-sync-transitive  GG_PIPELINE_STAGE callbacks must not reach
                            synchronize()/device_synchronize() through
                            helpers (direct calls are the intraprocedural
                            pipeline-blocking-sync rule's job).

Call resolution is by basename and deliberately conservative: a call to an
overloaded name taints if ANY definition with that basename taints.
Diagnostics carry the full chain (`pump -> submit -> grow`) and the source
site, and are suppressed at the root call site with
`GG_LINT_ALLOW(<rule>): <reason>`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from gglint.diagnostics import Diagnostic, SuppressionTable
from gglint.intraprocedural import (ALLOC_PATTERNS, NONDET_PATTERNS,
                                    PIPELINE_SYNC_RE, REPORT_PATH_RE)
from gglint.scanner import (call_sites, declared_types, extract_functions,
                            line_of, loop_spans, marker_spans,
                            strip_comments_and_strings)


def _class_of(d) -> str:
    """Enclosing class of a definition, or "" for a free function.  The
    scanner does not track which scope components are classes, so this
    leans on the repo's naming convention: classes are CamelCase,
    namespaces lowercase (gg, sim, common, ...)."""
    parts = d.qualname.split("::")
    if len(parts) >= 2 and parts[-2][:1].isupper():
        return parts[-2]
    return ""


@dataclass
class SourceSite:
    """A directly-tainting line inside a function body."""
    what: str      # human description ("operator new", "getenv() read", ...)
    relpath: str
    line: int


@dataclass
class _File:
    relpath: str
    code: str
    code_lines: list
    suppressions: SuppressionTable


class CallGraph:
    """Function definitions + call edges over a fixed file set."""

    def __init__(self):
        self.files: list = []
        self.defs: list = []            # FunctionDef, in scan order
        self.by_basename: dict = {}     # basename -> [def index]
        self.edges: dict = {}           # def index -> [CallSite]
        self.decl_types: dict = {}      # identifier -> set of type basenames
        self._file_of_def: dict = {}    # def index -> _File

    @classmethod
    def build(cls, file_texts) -> "CallGraph":
        """`file_texts` is an iterable of (relpath, raw_text), already
        filtered to the files under analysis (deterministic order)."""
        g = cls()
        for relpath, raw in file_texts:
            code = strip_comments_and_strings(raw)
            f = _File(relpath, code, code.splitlines(),
                      SuppressionTable(raw.splitlines()))
            g.files.append(f)
            for ident, types in declared_types(code).items():
                g.decl_types.setdefault(ident, set()).update(types)
            for d in extract_functions(code, relpath):
                idx = len(g.defs)
                g.defs.append(d)
                g.by_basename.setdefault(d.name, []).append(idx)
                g._file_of_def[idx] = f
        known = frozenset(g.by_basename)
        for idx, d in enumerate(g.defs):
            f = g._file_of_def[idx]
            g.edges[idx] = call_sites(f.code, d.scan_start, d.scan_end, known)
        return g

    def resolve(self, site, caller_class=None) -> list:
        """Candidate def indices for a call site.  Basename match is the
        base rule (overloads stay conservative: all same-named defs are
        candidates), refined three ways, mirroring C++ name lookup:

          * a qualified call (`sim::foo(...)`) keeps only defs whose
            qualified name ends with the written path;
          * a member call whose receiver identifier has a mined declared
            type (`sampler_.sample()` with `GpuUtilSampler sampler_;` in
            view) keeps only defs of those classes — and resolves to
            NOTHING when no scanned class matches, because the method then
            belongs to a type outside the graph (std::, __m128d, ...);
          * a receiver-less call binds by lookup order: inside a member
            function, the caller's own class wins if it has such a member
            (a member name hides outer names), else free functions; a
            known-free caller has no implicit `this`, so only free
            functions are candidates.  `caller_class=None` means the
            caller is unknown — stay fully conservative.
        """
        cands = self.by_basename.get(site.callee, [])
        if not cands:
            return []
        if "::" in site.as_written:
            suffix = site.as_written.split("::")
            matched = [i for i in cands
                       if self.defs[i].qualname.split("::")[-len(suffix):]
                       == suffix]
            return matched or list(cands)
        if site.recv and site.recv != "this":
            types = self.decl_types.get(site.recv)
            if types:
                return [i for i in cands
                        if _class_of(self.defs[i]) in types]
            return list(cands)
        if caller_class is None:
            return list(cands)
        free = [i for i in cands if not _class_of(self.defs[i])]
        if caller_class:
            member = [i for i in cands
                      if _class_of(self.defs[i]) == caller_class]
            if member:
                return member
        return free or list(cands)

    def enclosing_def(self, f: _File, pos: int):
        """Innermost FunctionDef of file `f` whose span contains `pos`."""
        best = None
        for idx, d in enumerate(self.defs):
            if self._file_of_def[idx] is not f:
                continue
            if d.scan_start <= pos <= d.scan_end:
                if best is None or d.scan_start > self.defs[best].scan_start:
                    best = idx
        return best

    def file_of(self, idx: int) -> _File:
        return self._file_of_def[idx]

    def file_named(self, relpath: str):
        for f in self.files:
            if f.relpath == relpath:
                return f
        return None

    # -- taint -------------------------------------------------------------

    def direct_sources(self, source_fn) -> dict:
        """def index -> SourceSite for every function whose own body
        contains a source line (per `source_fn(file, line_text, line_no)`)."""
        out = {}
        for idx, d in enumerate(self.defs):
            f = self._file_of_def[idx]
            start = line_of(f.code, d.scan_start)
            for ln in range(start, d.end_line + 1):
                text = f.code_lines[ln - 1] if ln - 1 < len(f.code_lines) else ""
                site = source_fn(f, text, ln)
                if site is not None:
                    out[idx] = site
                    break
        return out

    def reachers(self, direct: dict) -> set:
        """Def indices that can reach a directly-tainted def through call
        edges (reverse BFS; excludes the direct set itself unless a direct
        def also calls another)."""
        callers: dict = {}
        for idx, sites in self.edges.items():
            cls = _class_of(self.defs[idx])
            for s in sites:
                for callee_idx in self.resolve(s, cls):
                    if callee_idx != idx:
                        callers.setdefault(callee_idx, set()).add(idx)
        seen = set(direct)
        queue = deque(direct)
        reach = set()
        while queue:
            cur = queue.popleft()
            for caller in callers.get(cur, ()):
                if caller not in seen:
                    seen.add(caller)
                    reach.add(caller)
                    queue.append(caller)
        return reach

    def chain_from(self, start_idx: int, direct: dict, reach: set) -> list:
        """Shortest deterministic call chain (list of def indices) from
        `start_idx` to a directly-tainted def; [] if none."""
        if start_idx in direct:
            return [start_idx]
        parent = {start_idx: None}
        queue = deque([start_idx])
        goal = None
        while queue and goal is None:
            cur = queue.popleft()
            nexts = []
            cls = _class_of(self.defs[cur])
            for s in self.edges[cur]:
                for callee_idx in self.resolve(s, cls):
                    if callee_idx == cur or callee_idx in parent:
                        continue
                    if callee_idx in direct or callee_idx in reach:
                        nexts.append(callee_idx)
            d = self.defs
            nexts.sort(key=lambda i: (d[i].relpath, d[i].sig_line, d[i].qualname))
            for nxt in nexts:
                parent[nxt] = cur
                if nxt in direct:
                    goal = nxt
                    break
                queue.append(nxt)
        if goal is None:
            return []
        chain = []
        cur = goal
        while cur is not None:
            chain.append(cur)
            cur = parent[cur]
        chain.reverse()
        return chain


# --------------------------------------------------------------------------
# Source predicates
# --------------------------------------------------------------------------

_ALLOC_ALLOW_RULES = ("hot-alloc", "batch-loop-alloc", "hot-alloc-transitive")


def alloc_source(f: _File, text: str, ln: int):
    for pattern, what in ALLOC_PATTERNS:
        if pattern.search(text):
            for rule in _ALLOC_ALLOW_RULES:
                hit = f.suppressions.probe(ln, rule)
                if hit is not None and hit[0] == "allowed":
                    return None  # amortized by declaration; does not taint
            return SourceSite(what, f.relpath, ln)
    return None


def nondet_source(f: _File, text: str, ln: int):
    under_src = f.relpath.startswith("src/") or "/" not in f.relpath
    for pattern, src_only, _ in NONDET_PATTERNS:
        if src_only and not under_src:
            continue
        if pattern.search(text):
            # Suppressions deliberately do NOT clear nondet taint — see the
            # module docstring.
            what = pattern.pattern.split("|")[0].strip("\\b(").replace("\\s*", "")
            return SourceSite(f"nondeterminism source ({what})", f.relpath, ln)
    return None


def sync_source(f: _File, text: str, ln: int):
    if PIPELINE_SYNC_RE.search(text):
        return SourceSite("blocking synchronize()", f.relpath, ln)
    return None


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------

def _chain_text(graph: CallGraph, first_name: str, chain: list) -> str:
    names = [first_name] + [graph.defs[i].qualname for i in chain]
    return " -> ".join(names)


def _report(diags, f: _File, line: int, rule: str, message: str) -> None:
    hit = f.suppressions.probe(line, rule)
    if hit is not None:
        kind, payload = hit
        if kind == "allowed":
            return
        diags.append(Diagnostic(
            f.relpath, payload, "bare-suppression",
            f"GG_LINT_ALLOW({rule}) needs a reason after ':'"))
        return
    diags.append(Diagnostic(f.relpath, line, rule, message))


def _span_call_sites(graph: CallGraph, f: _File, spans) -> list:
    known = frozenset(graph.by_basename)
    sites = []
    for start, end in spans:
        sites.extend(call_sites(f.code, start, end, known))
    return sites


def _transitive_rule(graph: CallGraph, diags: list, rule: str, roots,
                     direct: dict, reach: set, describe) -> None:
    """`roots` yields (file, display_name, call_site_spans).  For every
    call site in a root's spans whose resolved target taints, report the
    chain at the call-site line."""
    for f, display, spans in roots:
        reported = set()
        root_def = graph.enclosing_def(f, spans[0][0]) if spans else None
        root_class = (_class_of(graph.defs[root_def])
                      if root_def is not None else None)
        for site in _span_call_sites(graph, f, spans):
            targets = [i for i in graph.resolve(site, root_class)
                       if i in direct or i in reach]
            if not targets:
                continue
            d = graph.defs
            targets.sort(key=lambda i: (d[i].relpath, d[i].sig_line, d[i].qualname))
            chain = []
            for t in targets:
                chain = graph.chain_from(t, direct, reach)
                if chain:
                    break
            if not chain:
                continue
            dedupe = (display, site.callee)
            if dedupe in reported:
                continue
            reported.add(dedupe)
            src = direct[chain[-1]]
            _report(diags, f, site.line, rule,
                    describe(display, _chain_text(graph, display, chain), src,
                             site))
    return None


def hot_alloc_transitive(graph: CallGraph, diags: list) -> None:
    direct = graph.direct_sources(alloc_source)
    reach = graph.reachers(direct)

    def roots():
        for f in graph.files:
            for name, open_idx, close_idx in marker_spans(f.code, "GG_HOT"):
                yield f, name, [(open_idx, close_idx)]
            for name, open_idx, close_idx in marker_spans(f.code, "GG_HOT_BATCH"):
                spans = loop_spans(f.code, open_idx, close_idx)
                if spans:
                    yield f, name, spans

    def describe(display, chain, src, site):
        return (f"GG_HOT path '{display}' transitively allocates: {chain} "
                f"({src.what} at {src.relpath}:{src.line}) — hot paths must "
                "be allocation-free through every call chain "
                "(see src/common/annotations.h)")

    _transitive_rule(graph, diags, "hot-alloc-transitive", roots(),
                     direct, reach, describe)


def nondet_transitive(graph: CallGraph, diags: list) -> None:
    direct = graph.direct_sources(nondet_source)
    reach = graph.reachers(direct)

    def roots():
        for f in graph.files:
            if not REPORT_PATH_RE.search(f.relpath) and \
                    "recovery" not in f.relpath:
                continue
            for idx, d in enumerate(graph.defs):
                if graph.file_of(idx) is f:
                    yield f, d.qualname, [(d.scan_start, d.scan_end)]

    def describe(display, chain, src, site):
        return (f"report/serialization entry point '{display}' transitively "
                f"reaches a nondeterminism source: {chain} ({src.what} at "
                f"{src.relpath}:{src.line}) — one seed must produce one "
                "report; route time through sim::EventQueue::now() and "
                "randomness through src/common/rng.h")

    _transitive_rule(graph, diags, "nondet-transitive", roots(),
                     direct, reach, describe)


def blocking_sync_transitive(graph: CallGraph, diags: list) -> None:
    direct = graph.direct_sources(sync_source)
    reach = graph.reachers(direct)

    def roots():
        for f in graph.files:
            for name, open_idx, close_idx in marker_spans(f.code,
                                                          "GG_PIPELINE_STAGE"):
                if name == "<unknown>":  # lambda stage: name it by location
                    name = (f"<stage at {f.relpath}:"
                            f"{line_of(f.code, open_idx)}>")
                yield f, name, [(open_idx, close_idx)]

    def describe(display, chain, src, site):
        return (f"GG_PIPELINE_STAGE callback '{display}' transitively "
                f"reaches a blocking wait: {chain} ({src.what} at "
                f"{src.relpath}:{src.line}) — a stage callback that waits "
                "serializes (or deadlocks) its own pipeline; order with "
                "events and completion callbacks")

    _transitive_rule(graph, diags, "blocking-sync-transitive", roots(),
                     direct, reach, describe)


def run_all(graph: CallGraph, diags: list) -> None:
    hot_alloc_transitive(graph, diags)
    nondet_transitive(graph, diags)
    blocking_sync_transitive(graph, diags)
