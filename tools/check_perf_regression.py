#!/usr/bin/env python3
"""Perf regression gate for BENCH_campaign.json.

Compares a freshly measured record against the committed one:

  check_perf_regression.py --baseline BENCH_campaign.json \
                           --current  BENCH_new.json [--tolerance 0.25]

Checks, in order:
  * hard invariants that must hold on any host: the determinism identity
    flags (including batch-vs-scalar engine identity) and the scaler
    fast-vs-reference decision identity;
  * the scaler fast path must actually be faster than the reference
    (speedup floor, host-independent — both sides ran on the same machine);
  * the batch campaign engine must beat the scalar engine on the replicate
    sweep (speedup floor, host-independent for the same reason);
  * the pipelined schedules must beat their synchronous baselines on
    simulated makespan (speedup floor) and keep a minimum copy/compute
    overlap — fully host-independent: both sides are simulated seconds;
  * the parallel speedup vs --jobs 1, but only when neither record carries
    the single_core_host marker — one worker cannot speed anything up, so
    comparing that number across host classes is meaningless;
  * ns/op and campaign wall-clock regressions vs the baseline, but only
    when the baseline was recorded on the same host class (matching
    host_cpus) — absolute timings are not comparable across machines.

Exit code 0 = pass, 1 = regression/invariant failure, 2 = usage error.
Stdlib only.
"""

import argparse
import json
import sys

# Timed metrics gated when the host class matches ("lower is better").
TIMED_METRICS = [
    ("campaign", "serial_seconds"),
    ("campaign", "parallel_seconds"),
    ("event_queue", "schedule_fire_ns_per_event"),
    ("event_queue", "schedule_cancel_fire_ns_per_event"),
    ("event_queue", "cancel_churn_ns_per_op"),
    ("scaler", "fast_ns_per_step"),
    ("checkpoint", "every_0_seconds"),
    ("checkpoint", "every_10_seconds"),
    ("checkpoint", "every_100_seconds"),
    ("batch", "scalar_seconds"),
    ("batch", "batch_seconds"),
    ("pipeline", "campaign_seconds"),
]

# Invariants that must be true in the current record, on any host.
INVARIANT_FLAGS = [
    ("campaign", "identical_reports"),
    ("campaign", "identical_reports_with_faults"),
    ("scaler", "decisions_identical"),
    ("checkpoint", "journaled_reports_identical"),
    ("batch", "identical_reports"),
    ("batch", "identical_reports_across_jobs"),
    ("pipeline", "all_verified"),
    ("pipeline", "pipelined_energy_lower"),
    ("pipeline", "identical_reports_across_jobs"),
    ("pipeline", "identical_reports_across_engines"),
    ("pipeline", "identical_reports_after_resume"),
    # Streaming telemetry: every event a slow consumer loses must be
    # accounted by DROPPED framing — delivered + dropped == published.
    ("service", "drop_accounting_exact"),
]

# Scaler fast path vs reference, same host by construction.  Wall-clock
# ratio, so it still breathes with host load: repeated runs measure
# 1.77-2.13x on the reference container, hence a floor below that band.
SPEEDUP_FLOOR = 1.5
# Batch engine vs scalar engine on the replicate sweep.  Algorithmic, not
# parallel: both sides run --jobs 1 on the same machine, so the floor holds
# on any host class, single-core included.
BATCH_SPEEDUP_FLOOR = 5.0
# Pipelined vs synchronous schedule, in SIMULATED seconds — pure model
# arithmetic, identical on every host, so the floors are exact gates, not
# noise-tolerant ones.  Measured: kmeans 1.42x / srad 1.49x at the default
# stream depth, overlap efficiency 0.57 / 0.50.
PIPELINE_SPEEDUP_FLOOR = 1.3   # worst workload's makespan speedup
PIPELINE_OVERLAP_FLOOR = 0.3   # worst workload's overlapped/copy-busy ratio
# Telemetry fan-out floor, events/sec at the WORST measured subscriber count
# (16).  The hub hot path is a seq assignment plus one string copy per ring,
# measured in the millions/sec on the reference container; 50k/s is two
# orders of magnitude of headroom for slow CI hosts while still catching an
# accidental O(subscribers^2) or per-publish allocation storm.
STREAM_EVENTS_FLOOR = 50_000.0


def get(record, section, key):
    try:
        return record[section][key]
    except (KeyError, TypeError):
        return None


def main():
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--baseline", required=True, help="committed BENCH_campaign.json")
    p.add_argument("--current", required=True, help="freshly measured record")
    p.add_argument("--tolerance", type=float, default=0.25,
                   help="allowed fractional slowdown vs baseline (default 0.25)")
    args = p.parse_args()

    # A missing/unreadable/malformed BASELINE is not a failure: it just means
    # there is nothing to gate against yet (fresh branch, first record, or a
    # hand-edited file).  Skip cleanly instead of tracebacking in CI.
    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"[SKIP] no usable baseline ({e}); perf gate skipped")
        return 0
    if not isinstance(baseline, dict):
        print(f"[SKIP] baseline {args.baseline} is not a JSON object; "
              "perf gate skipped")
        return 0

    # The CURRENT record was just measured by the caller — if it is broken,
    # the measurement step is broken, and that is a usage error.
    try:
        with open(args.current) as f:
            current = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read current record: {e}", file=sys.stderr)
        return 2
    if not isinstance(current, dict):
        print(f"error: current record {args.current} is not a JSON object",
              file=sys.stderr)
        return 2

    failures = []

    for section, key in INVARIANT_FLAGS:
        value = get(current, section, key)
        if value is None:
            failures.append(f"{section}.{key}: missing from current record")
        elif value is not True:
            failures.append(f"{section}.{key}: expected true, got {value!r}")
        else:
            print(f"[OK]   {section}.{key} = true")

    speedup = get(current, "scaler", "speedup_fast_vs_reference")
    if not isinstance(speedup, (int, float)) or isinstance(speedup, bool):
        failures.append("scaler.speedup_fast_vs_reference: missing from current record")
    elif speedup < SPEEDUP_FLOOR:
        failures.append(
            f"scaler.speedup_fast_vs_reference: {speedup:.2f}x < {SPEEDUP_FLOOR:.1f}x floor")
    else:
        print(f"[OK]   scaler fast path {speedup:.2f}x faster than reference "
              f"(floor {SPEEDUP_FLOOR:.1f}x)")

    batch_speedup = get(current, "batch", "speedup_vs_scalar")
    if not isinstance(batch_speedup, (int, float)) or isinstance(batch_speedup, bool):
        failures.append("batch.speedup_vs_scalar: missing from current record")
    elif batch_speedup < BATCH_SPEEDUP_FLOOR:
        failures.append(
            f"batch.speedup_vs_scalar: {batch_speedup:.2f}x < "
            f"{BATCH_SPEEDUP_FLOOR:.1f}x floor")
    else:
        print(f"[OK]   batch engine {batch_speedup:.2f}x faster than scalar "
              f"(floor {BATCH_SPEEDUP_FLOOR:.1f}x)")

    pipe_speedup = get(current, "pipeline", "min_makespan_speedup")
    if not isinstance(pipe_speedup, (int, float)) or isinstance(pipe_speedup, bool):
        failures.append("pipeline.min_makespan_speedup: missing from current record")
    elif pipe_speedup < PIPELINE_SPEEDUP_FLOOR:
        failures.append(
            f"pipeline.min_makespan_speedup: {pipe_speedup:.2f}x < "
            f"{PIPELINE_SPEEDUP_FLOOR:.1f}x floor (simulated, host-independent)")
    else:
        print(f"[OK]   pipelined schedules {pipe_speedup:.2f}x faster than sync "
              f"(floor {PIPELINE_SPEEDUP_FLOOR:.1f}x, simulated)")

    stream_rate = get(current, "service", "watch_min_events_per_sec")
    if not isinstance(stream_rate, (int, float)) or isinstance(stream_rate, bool):
        failures.append("service.watch_min_events_per_sec: missing from current record")
    elif stream_rate < STREAM_EVENTS_FLOOR:
        failures.append(
            f"service.watch_min_events_per_sec: {stream_rate:.0f}/s < "
            f"{STREAM_EVENTS_FLOOR:.0f}/s floor")
    else:
        print(f"[OK]   telemetry fan-out {stream_rate:.0f} events/s at the worst "
              f"subscriber count (floor {STREAM_EVENTS_FLOOR:.0f}/s)")

    overlap = get(current, "pipeline", "min_overlap_efficiency")
    if not isinstance(overlap, (int, float)) or isinstance(overlap, bool):
        failures.append("pipeline.min_overlap_efficiency: missing from current record")
    elif overlap < PIPELINE_OVERLAP_FLOOR:
        failures.append(
            f"pipeline.min_overlap_efficiency: {overlap:.2f} < "
            f"{PIPELINE_OVERLAP_FLOOR:.1f} floor")
    else:
        print(f"[OK]   pipeline overlap efficiency {overlap:.2f} "
              f"(floor {PIPELINE_OVERLAP_FLOOR:.1f})")

    # Parallel speedup needs real cores on BOTH records: a single-core host
    # legitimately reports ~1.0x, and comparing that against a multi-core
    # baseline (or vice versa) is a host-class artifact, not a regression.
    cur_single = current.get("single_core_host") is True
    base_single = baseline.get("single_core_host") is True
    par_speedup = get(current, "campaign", "speedup_vs_jobs1")
    base_par_speedup = get(baseline, "campaign", "speedup_vs_jobs1")
    if cur_single or base_single:
        print("[SKIP] campaign.speedup_vs_jobs1: single-core host marker set "
              f"(current={cur_single}, baseline={base_single})")
    elif not isinstance(par_speedup, (int, float)) or isinstance(par_speedup, bool):
        failures.append("campaign.speedup_vs_jobs1: missing from current record")
    elif not isinstance(base_par_speedup, (int, float)) or isinstance(base_par_speedup, bool):
        print("[SKIP] campaign.speedup_vs_jobs1: not in baseline (first record)")
    elif par_speedup < base_par_speedup * (1.0 - args.tolerance):
        failures.append(
            f"campaign.speedup_vs_jobs1: {par_speedup:.2f}x vs baseline "
            f"{base_par_speedup:.2f}x (beyond {args.tolerance * 100.0:.0f}% tolerance)")
    else:
        print(f"[OK]   campaign.speedup_vs_jobs1: {par_speedup:.2f}x vs baseline "
              f"{base_par_speedup:.2f}x")

    base_cpus = baseline.get("host_cpus")
    cur_cpus = current.get("host_cpus")
    if base_cpus != cur_cpus:
        print(f"[SKIP] timed comparisons: baseline host_cpus={base_cpus} != "
              f"current host_cpus={cur_cpus} (different host class)")
    else:
        for section, key in TIMED_METRICS:
            base = get(baseline, section, key)
            cur = get(current, section, key)
            if not isinstance(base, (int, float)) or isinstance(base, bool):
                print(f"[SKIP] {section}.{key}: not in baseline (first record)")
                continue
            if not isinstance(cur, (int, float)) or isinstance(cur, bool):
                failures.append(f"{section}.{key}: missing from current record")
                continue
            if base <= 0:
                print(f"[SKIP] {section}.{key}: non-positive baseline {base}")
                continue
            ratio = cur / base
            status = "OK" if ratio <= 1.0 + args.tolerance else "FAIL"
            line = (f"[{status}] {section}.{key}: {cur:.3g} vs baseline {base:.3g} "
                    f"({(ratio - 1.0) * 100.0:+.1f}%, tolerance "
                    f"{args.tolerance * 100.0:.0f}%)")
            print(line)
            if status == "FAIL":
                failures.append(line)

    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
