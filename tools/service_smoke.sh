#!/usr/bin/env bash
# Kill-and-restart smoke matrix for greengpud, the always-on service daemon.
#
# Drives the REAL binary over its Unix socket through the incident matrix:
#
#   golden        uninterrupted run: submit a batch, SIGTERM, graceful drain
#   pre-result    --crash-at service-pre-result:1 — a request executed but
#                 its outcome was never journaled; --resume re-executes it
#   post-admit    --crash-at service-post-admit:N — admission journaled, the
#                 client reply lost; --resume still owns the request
#   sigkill       raw SIGKILL right after the batch: torn-tail territory
#   faulted       the same pre-result crash on a flaky device, exercising
#                 the circuit breaker through the kill
#   replay        greengpud --replay of the golden journal, byte-compared
#                 against the live report
#
# Every resumed report must be byte-identical (cmp) to its uninterrupted
# golden.  Determinism discipline: each batch is PAUSE ... RESUME so the
# executor claims from the complete batch — claim order then depends only
# on priorities, not on socket/executor timing.
#
# Usage: tools/service_smoke.sh [greengpud-binary] [scratch-dir]
set -eu

BIN="${1:-./build/tools/greengpud}"
DIR="${2:-$(mktemp -d /tmp/greengpud-smoke.XXXXXX)}"
mkdir -p "$DIR"
SOCK="$DIR/greengpud.sock"
DPID=0

# Priorities + a generous deadline so the batch exercises ordering, the
# deadline verdict and both simulated devices.
BATCH='PAUSE
SUBMIT bfs best-performance
SUBMIT pathfinder division priority=1
SUBMIT kmeans greengpu priority=2 deadline=900000
SUBMIT lud scaling
RESUME'

# The flaky-device configuration: device 1 drops most kernel launches and
# the policies are un-hardened, so its requests DNF and the breaker opens.
FAULT_FLAGS="--faulty-device 1 --fault-launch 0.9 --breaker-threshold 2 --breaker-probe-after 2"

start_daemon() { # $1=journal $2=report, extra flags after
  local journal="$1" report="$2"
  shift 2
  rm -f "$SOCK"
  # shellcheck disable=SC2086  # extra flags are intentionally word-split
  "$BIN" --socket "$SOCK" --journal "$journal" --report "$report" \
    --devices 2 --seed 7 "$@" &
  DPID=$!
  for _ in $(seq 1 200); do
    [ -S "$SOCK" ] && return 0
    sleep 0.05
  done
  echo "daemon never created $SOCK" >&2
  exit 1
}

submit_batch() {
  printf '%s\n' "$BATCH" | "$BIN" --client --socket "$SOCK" || true
}

stats_field() { # $1=field; value from a STATS round trip (empty if daemon gone)
  printf 'STATS\n' | "$BIN" --client --socket "$SOCK" 2>/dev/null |
    tr ' ' '\n' | sed -n "s/^$1=//p"
}

# Progress is asserted, never slept for: poll the STATS journal/telemetry
# seqs until the daemon has provably journaled at least $2 records.
wait_journal_records() { # $1=field $2=minimum
  local field="$1" min="$2" value=0
  for _ in $(seq 1 200); do
    value=$(stats_field "$field")
    [ -n "$value" ] && [ "$value" -ge "$min" ] && return 0
    sleep 0.05
  done
  echo "$field stuck at '$value', want >= $min" >&2
  exit 1
}

graceful_stop() { # SIGTERM: stop admitting, finish everything, write report
  kill -TERM "$DPID"
  local rc=0
  wait "$DPID" || rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "graceful drain exited $rc, want 0" >&2
    exit 1
  fi
}

expect_crash() { # the armed kill-point must end the process with exit 70
  local rc=0
  wait "$DPID" || rc=$?
  if [ "$rc" -ne 70 ]; then
    echo "expected injected-crash exit 70, got $rc" >&2
    exit 1
  fi
}

check_case() { # $1=name $2=crash-arg ("sigkill" for the raw kill) $3=extra flags
  local name="$1" crash="$2" extra="$3"
  local journal="$DIR/$name.journal" report="$DIR/$name.report"
  local golden="$DIR/golden-${extra:+faulted}.report"
  rm -f "$journal" "$report"
  if [ "$crash" = "sigkill" ]; then
    start_daemon "$journal" "$report" $extra
    submit_batch
    # Let the executor provably reach mid-batch (admissions journaled plus
    # at least one claimed outcome) so the raw kill always lands on a
    # journal with work both behind and ahead of it.
    wait_journal_records journal_records 6
    kill -9 "$DPID"
    wait "$DPID" || true
  else
    start_daemon "$journal" "$report" $extra --crash-at "$crash"
    submit_batch
    expect_crash
  fi
  start_daemon "$journal" "$report" $extra --resume
  graceful_stop
  cmp "$golden" "$report"
  echo "OK: $name resumed byte-identical after ${crash}"
}

# -- goldens -----------------------------------------------------------------
for extra in "" "$FAULT_FLAGS"; do
  tag="golden-${extra:+faulted}"
  start_daemon "$DIR/$tag.journal" "$DIR/$tag.report" $extra
  submit_batch
  graceful_stop
  echo "OK: $tag drained cleanly"
done
# The flaky device must actually have failed work (and the clean one carried
# the batch): otherwise the faulted lane tests nothing.
grep -q "status=failed" "$DIR/golden-faulted.report"
grep -q "status=ok" "$DIR/golden-faulted.report"

# -- kill-and-restart matrix -------------------------------------------------
check_case pre-result "service-pre-result:1" ""
# nth=4 = the batch size: the whole PAUSE-batched admission is journaled
# (nothing claimed yet), then the daemon dies before the last reply is sent.
check_case post-admit "service-post-admit:4" ""
check_case sigkill "sigkill" ""
check_case faulted-pre-result "service-pre-result:3" "$FAULT_FLAGS"

# -- streaming telemetry ------------------------------------------------------
# A live watcher tails a full batch; progress is asserted through the STATS
# telemetry seq (4 jobs x admit/start/outcome = 12 events), and the watcher's
# EVENT transcript must be byte-identical to the offline `--events`
# regeneration of the journal.
start_daemon "$DIR/watch.journal" "$DIR/watch.report"
"$BIN" --client --socket "$SOCK" --watch --idle-timeout-ms 1200 \
  > "$DIR/watch.out" 2>/dev/null &
WPID=$!
wait_journal_records subscribers 1
submit_batch
wait_journal_records journal_records 12
wait_journal_records telemetry_seq 12
graceful_stop
wait "$WPID" || true
head -n 1 "$DIR/watch.out" | grep -q '^200 watching from=1 last=0'
grep '^EVENT ' "$DIR/watch.out" > "$DIR/watch-events.out"
"$BIN" --events "$DIR/watch.journal" --devices 2 --seed 7 > "$DIR/events.out"
cmp "$DIR/events.out" "$DIR/watch-events.out"
echo "OK: live WATCH stream is byte-identical to --events regeneration"

# -- offline replay ----------------------------------------------------------
records=$(wc -l < "$DIR/golden-.report")
"$BIN" --replay "$DIR/golden-.journal" --window "0:$((records - 1))" \
  --devices 2 --seed 7 > "$DIR/replay.out"
cmp "$DIR/golden-.report" "$DIR/replay.out"
echo "OK: full-window replay is byte-identical to the live report"

frecords=$(wc -l < "$DIR/golden-faulted.report")
"$BIN" --replay "$DIR/golden-faulted.journal" --window "2:$((frecords - 1))" \
  --devices 2 --seed 7 $FAULT_FLAGS > "$DIR/replay-faulted.out"
sed -n "3,${frecords}p" "$DIR/golden-faulted.report" > "$DIR/slice-faulted.txt"
cmp "$DIR/slice-faulted.txt" "$DIR/replay-faulted.out"
echo "OK: faulted sub-window replay matches the report slice"

if "$BIN" --replay "$DIR/golden-.journal" --window "0:999" \
    --devices 2 --seed 7 > /dev/null 2>&1; then
  echo "out-of-range replay window was accepted" >&2
  exit 1
fi
if "$BIN" --replay "$DIR/golden-.journal" --window "0:1" \
    --devices 2 --seed 8 > /dev/null 2>&1; then
  echo "replay under a foreign configuration was accepted" >&2
  exit 1
fi
echo "OK: replay refuses bad windows and foreign configurations"

echo "service smoke: all cases passed ($DIR)"
