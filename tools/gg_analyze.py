#!/usr/bin/env python3
"""gg-analyze: interprocedural call-graph analysis + snapshot-schema gate.

greengpu-lint checks one function body at a time; gg-analyze builds the
project call graph (tools/gglint/callgraph.py, on the same token scanner)
and propagates taint through it, so a one-line helper can no longer hide
an allocation, a clock read or a blocking wait from the invariants:

  hot-alloc-transitive      GG_HOT/GG_HOT_BATCH paths reaching an
                            allocation through any call chain (for
                            GG_HOT_BATCH: chains launched inside a loop)
  nondet-transitive         report/serialization entry points reaching a
                            wall-clock or unseeded-RNG source through any
                            call chain (suppressed sources still count —
                            a local waiver is not a report-path waiver)
  blocking-sync-transitive  GG_PIPELINE_STAGE callbacks reaching
                            synchronize()/device_synchronize() via helpers

plus the snapshot wire-schema drift gate (tools/gglint/schema.py):

  schema-drift              the serialized shape of the SnapshotWriter/
                            SnapshotReader participants changed but
                            kSnapshotVersion did not
  schema-lock-stale         docs/snapshot_schema.lock no longer matches
                            the tree (regenerate with --write-lock)

Diagnostics carry the full call chain and the source site, render exactly
like greengpu-lint's (`path:line: error: [rule] message`, or one stable
JSON document with --format json), and are suppressed at the root call
site with `// GG_LINT_ALLOW(<rule>): <reason>`.

Usage:
    gg_analyze.py [--root DIR] [--format text|json]    # whole tree (src/)
    gg_analyze.py [--root DIR] FILE...                 # fixtures: taint
                                                       # rules only, no gate
    gg_analyze.py --write-lock [--lock PATH]           # regenerate the lock
    gg_analyze.py --schema-gate-only                   # just the gate
    gg_analyze.py --list-suppressions                  # inventory table

Exit status: 0 clean, 1 violations, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from gglint import callgraph, schema
from gglint.diagnostics import ALLOW_RE, emit, finalize
from gglint.intraprocedural import iter_tree, resolve_targets

# The call graph covers product code; tools/, bench/ and tests/ have their
# own (intraprocedural) discipline and would flood the graph with fixture
# definitions.
GRAPH_DIRS = ("src",)


def _read_files(targets):
    """[(relpath, raw_text)] for (abspath, relpath) pairs; None on error."""
    out = []
    for path, rel in targets:
        try:
            with open(path, encoding="utf-8") as f:
                out.append((rel, f.read()))
        except OSError as err:
            print(f"gg-analyze: cannot read {rel}: {err}", file=sys.stderr)
            return None
    return out


_COMMENT_LINE_RE = re.compile(r"^\s*//")


def list_suppressions(root: str, out) -> int:
    """Markdown inventory of every GG_LINT_ALLOW in the tree — the table
    committed into docs/STATIC_ANALYSIS.md (tests keep the two in sync).

    Multi-line reasons (continuation `//` lines below the suppression) are
    joined into one cell.  An occurrence preceded by a backtick on its line
    is documentation quoting the syntax, not a suppression, and is skipped.
    """
    rows = []
    for path, rel in iter_tree(root):
        try:
            with open(path, encoding="utf-8") as f:
                raw_lines = f.read().splitlines()
        except OSError:
            continue
        for i, line in enumerate(raw_lines):
            m = ALLOW_RE.search(line)
            if not m or "`" in line[:m.start()]:
                continue
            parts = [(m.group(2) or "").strip()]
            # A pure-comment suppression may continue on following // lines
            # (until the suppressed code line or another suppression).
            if _COMMENT_LINE_RE.match(line):
                for nxt in raw_lines[i + 1:]:
                    if not _COMMENT_LINE_RE.match(nxt) or ALLOW_RE.search(nxt):
                        break
                    parts.append(nxt.lstrip()[2:].strip())
            reason = " ".join(p for p in parts if p) or "(MISSING REASON)"
            reason = reason.replace("|", "\\|")
            rows.append((f"{rel}:{i + 1}", m.group(1), reason))
    rows.sort()
    print("| location | rule | reason |", file=out)
    print("| --- | --- | --- |", file=out)
    for loc, rule, reason in rows:
        print(f"| {loc} | {rule} | {reason} |", file=out)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="diagnostic output format (default: text)")
    parser.add_argument("--lock", default=None,
                        help="schema lock path (default: <root>/"
                             f"{schema.LOCK_RELPATH})")
    parser.add_argument("--write-lock", action="store_true",
                        help="regenerate the schema lock from the tree and "
                             "exit")
    parser.add_argument("--schema-gate-only", action="store_true",
                        help="run only the snapshot-schema gate")
    parser.add_argument("--list-suppressions", action="store_true",
                        help="print the GG_LINT_ALLOW inventory as a "
                             "markdown table and exit")
    parser.add_argument("files", nargs="*",
                        help="analyze only these files (taint rules only; "
                             "the schema gate needs the whole tree)")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    lock_path = args.lock or os.path.join(root, *schema.LOCK_RELPATH.split("/"))

    if args.list_suppressions:
        return list_suppressions(root, sys.stdout)

    if args.files:
        targets = resolve_targets(root, args.files)
    else:
        targets = list(iter_tree(root, dirs=GRAPH_DIRS))
    file_texts = _read_files(targets)
    if file_texts is None:
        return 2

    if args.write_lock:
        schema.write_lock(root, lock_path, file_texts)
        rel = os.path.relpath(lock_path, root).replace(os.sep, "/")
        print(f"gg-analyze: wrote {rel}", file=sys.stderr)
        return 0

    diags: list = []
    if not args.schema_gate_only:
        graph = callgraph.CallGraph.build(file_texts)
        callgraph.run_all(graph, diags)
    if not args.files:  # the gate is meaningless on a partial file list
        schema.check(root, lock_path, file_texts, diags)

    return emit(finalize(diags), "gg-analyze", args.format,
                sys.stdout, sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
