// greengpu_cli — run any workload under any policy from the command line.
//
//   greengpu_cli --workload kmeans --policy greengpu
//   greengpu_cli --workload streamcluster --policy scaling --trace trace.csv
//   greengpu_cli --workload kmeans --policy static-division --ratio 0.10
//   greengpu_cli --workload hotspot --policy division --divider qilin
//   greengpu_cli --workload all --policy greengpu --csv
//   greengpu_cli --list
//
// Flags (all optional unless noted):
//   --workload NAME|all         Table II name (required unless --list)
//   --policy P                  best-performance | scaling | division |
//                               greengpu | static-division | static-pair
//   --ratio R                   CPU share for static-division (default 0.1)
//   --core-level N --mem-level N   levels for static-pair (default 0 0)
//   --divider D                 step | qilin | energy (division policies)
//   --governor G                none|performance|powersave|ondemand|
//                               conservative|wma (scaling policies)
//   --step S --init-ratio R0 --safeguard 0|1     division tier parameters
//   --alpha-c A --alpha-m A --phi P --beta B --interval S    WMA parameters
//   --iterations N              truncate the run (skips verification)
//   --record MODE               telemetry retention: full | ring | counters
//                               (default: full for single runs, counters for
//                               --campaign; pure telemetry — energies and
//                               decisions are identical across modes)
//   --record-ring N             retained tail length for --record ring
//                               (default 256)
//   --jobs N                    fan independent cells across N workers
//                               (campaign / --workload all; 0 = all cores,
//                               default 1; output is identical for any N)
//   --sync 0|1                  synchronous (spinning) stack, default 1
//   --trace FILE.csv            write a 1 Hz platform trace
//   --csv                       machine-readable one-line-per-run output
//   --no-verify                 skip result verification
//   --gpus N                    run on N simulated cards (multi-GPU runner)
//   --replay FILE.csv           replay a utilization trace (time,core,mem)
//                               as the workload instead of a Table II name
//   --campaign                  run the full (workload x policy) matrix;
//                               with --json FILE, write a structured report
//   --engine scalar|batch       campaign execution engine (default scalar).
//                               The batch engine steps a workload row's cells
//                               in lockstep, memoizes one real verification
//                               per workload and forks fault replicates from
//                               a shared warm-up snapshot; reports are
//                               byte-identical to the scalar engine
//   --fault-replicates R        campaign fault-seed sweep: R copies of every
//                               policy, each with a distinct forked seed
//                               (needs an active --fault-* channel)
//   --fault-warmup W            install the fault injector at iteration W
//                               instead of before setup (fault-free warm-up
//                               prefix; lets --engine batch fork replicates)
//
// Pipeline workloads (kmeans_pipeline, srad_stream — opt-in by name, not in
// --workload all; see docs/ARCHITECTURE.md "Asynchronous streams"):
//   --pipeline 0|1              1 (default) overlaps transfers with kernels
//                               on multiple streams; 0 runs the synchronous
//                               baseline (same ops, blocking per chunk)
//   --stream-depth N            double-buffer slots / concurrent in-flight
//                               chunks, in [1, 64] (default 3)
//   --chunks N                  chunks (kmeans_pipeline) or frames per
//                               iteration (srad_stream), in [1, 8192]
//                               (default 8)
//
// Crash consistency (docs/RECOVERY.md):
//   --checkpoint-dir DIR        journal + snapshot directory (enables
//                               checkpointing; created if missing)
//   --checkpoint-every N        also snapshot controller state every N
//                               iterations (N >= 1; omit to disable)
//   --resume                    campaign only: skip cells already in DIR's
//                               journal; the finished report is byte-identical
//                               to an uninterrupted run
//   --crash-at POINT[:N]        die (exit code 70) at the Nth hit of a named
//                               kill-point: pre-scaler-step, post-scaler-step,
//                               mid-checkpoint, mid-campaign-cell
//
// Fault injection (all rates in [0,1]; injector installs only if any is set):
//   --fault-rate R              uniform preset: every channel at rate R
//   --fault-seed N              deterministic fault schedule seed
//   --fault-util-drop R --fault-util-stale R --fault-util-corrupt R
//   --fault-clock-reject R --fault-clock-delay R --fault-clock-clamp R
//   --fault-clock-delay-s S     latency of a delayed clock write (default 0.5)
//   --fault-launch R --fault-host R     kernel-launch / host-chunk failures
//   --fault-throttle-mtbf S     mean time between thermal-throttle episodes
//                               (0 disables; exponential gaps)
//   --fault-throttle-duration S episode length (default 5)
//   --hardened 0|1              enable the hardened controllers (retries,
//                               rerouting, stale-sample hold, watchdog)
//
// Campaign example:
//   greengpu_cli --campaign --json report.json

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "src/common/csv.h"
#include "src/common/flags.h"
#include "src/common/job_pool.h"
#include "src/greengpu/campaign.h"
#include "src/greengpu/multi_runner.h"
#include "src/greengpu/policy.h"
#include "src/greengpu/recovery.h"
#include "src/greengpu/runner.h"
#include "src/sim/crash.h"
#include "src/workloads/registry.h"
#include "src/workloads/trace_workload.h"

namespace {

using namespace gg;

/// Up-front range validation with one-line errors naming the offending
/// flag.  Without this, bad WMA parameters only surface as constructor
/// exceptions deep inside campaign workers (naming the field, not the
/// flag), and fault rates the same; main() prints the message and exits 2.
void validate_flag_ranges(const Flags& flags) {
  const auto reject = [](const std::string& message) {
    throw std::invalid_argument(message);
  };
  if (flags.has("phi")) {
    const double v = flags.get_double("phi", 0.0);
    if (v < 0.0 || v > 1.0) reject("--phi must be in [0, 1]");
  }
  if (flags.has("beta")) {
    const double v = flags.get_double("beta", 0.0);
    if (v <= 0.0 || v >= 1.0) reject("--beta must be in (0, 1)");
  }
  for (const char* name :
       {"fault-rate", "fault-util-drop", "fault-util-stale", "fault-util-corrupt",
        "fault-clock-reject", "fault-clock-delay", "fault-clock-clamp",
        "fault-launch", "fault-host"}) {
    if (!flags.has(name)) continue;
    const double v = flags.get_double(name, 0.0);
    if (v < 0.0 || v > 1.0) reject(std::string("--") + name + " must be in [0, 1]");
  }
  for (const char* name :
       {"fault-clock-delay-s", "fault-throttle-mtbf", "fault-throttle-duration"}) {
    if (!flags.has(name)) continue;
    if (flags.get_double(name, 0.0) < 0.0) {
      reject(std::string("--") + name + " must be >= 0");
    }
  }
  if (flags.has("checkpoint-every") && flags.get_int("checkpoint-every", 0) < 1) {
    reject("--checkpoint-every must be >= 1 (omit the flag to disable "
           "periodic snapshots)");
  }
  if (flags.get_bool("resume", false)) {
    if (!flags.get_bool("campaign", false)) reject("--resume requires --campaign");
    if (flags.get_string("checkpoint-dir", "").empty()) {
      reject("--resume requires --checkpoint-dir");
    }
  }
  if (flags.has("engine")) {
    if (!flags.get_bool("campaign", false)) reject("--engine requires --campaign");
    const std::string v = flags.get_string("engine", "");
    if (!greengpu::campaign_engine_from_string(v).has_value()) {
      reject("--engine must be 'scalar' or 'batch', got '" + v + "'");
    }
  }
  if (flags.has("fault-replicates")) {
    if (!flags.get_bool("campaign", false)) {
      reject("--fault-replicates requires --campaign");
    }
    if (flags.get_int("fault-replicates", 0) < 0) {
      reject("--fault-replicates must be >= 0");
    }
  }
  if (flags.has("fault-warmup") && flags.get_int("fault-warmup", 0) < 0) {
    reject("--fault-warmup must be >= 0");
  }
  if (flags.has("stream-depth")) {
    const long long v = flags.get_int("stream-depth", 3);
    if (v < 1 || v > 64) reject("--stream-depth must be in [1, 64]");
  }
  if (flags.has("chunks")) {
    const long long v = flags.get_int("chunks", 8);
    if (v < 1 || v > 8192) reject("--chunks must be in [1, 8192]");
  }
}

greengpu::CheckpointOptions checkpoint_options_from_flags(const Flags& flags) {
  greengpu::CheckpointOptions ckpt;
  ckpt.dir = flags.get_string("checkpoint-dir", "");
  ckpt.every = static_cast<std::size_t>(flags.get_int("checkpoint-every", 0));
  ckpt.resume = flags.get_bool("resume", false);
  return ckpt;
}

sim::FaultConfig fault_config_from_flags(const Flags& flags) {
  // The --fault-* family is shared with greengpud; the parser lives with the
  // config it builds (src/sim/fault.h).
  sim::FaultConfig cfg = sim::FaultConfig::from_flags(flags);
  return cfg;
}

greengpu::RecordOptions record_options_from_flags(const Flags& flags,
                                                 greengpu::RecordMode default_mode) {
  greengpu::RecordOptions rec;
  rec.mode = greengpu::record_mode_from_string(
      flags.get_string("record", std::string(greengpu::to_string(default_mode))));
  const long long ring = flags.get_int("record-ring", 256);
  if (ring <= 0) throw std::invalid_argument("--record-ring must be > 0");
  rec.ring_capacity = static_cast<std::size_t>(ring);
  return rec;
}

greengpu::Policy policy_from_flags(const Flags& flags) {
  greengpu::GreenGpuParams params;
  params.division.step = flags.get_double("step", params.division.step);
  params.division.initial_ratio =
      flags.get_double("init-ratio", params.division.initial_ratio);
  params.division.safeguard = flags.get_bool("safeguard", params.division.safeguard);
  params.wma.alpha_core = flags.get_double("alpha-c", params.wma.alpha_core);
  params.wma.alpha_mem = flags.get_double("alpha-m", params.wma.alpha_mem);
  params.wma.phi = flags.get_double("phi", params.wma.phi);
  params.wma.beta = flags.get_double("beta", params.wma.beta);
  params.wma.interval = Seconds{flags.get_double("interval", params.wma.interval.get())};
  params.hardening.enabled = flags.get_bool("hardened", false);

  const std::string name = flags.get_string("policy", "greengpu");
  greengpu::Policy policy;
  if (name == "best-performance" || name == "baseline") {
    policy = greengpu::Policy::best_performance();
  } else if (name == "scaling" || name == "frequency-scaling") {
    policy = greengpu::Policy::scaling_only(params);
  } else if (name == "division") {
    policy = greengpu::Policy::division_with(
        greengpu::divider_from_string(flags.get_string("divider", "step")), params);
  } else if (name == "greengpu") {
    policy = greengpu::Policy::green_gpu(params);
    policy.divider = greengpu::divider_from_string(flags.get_string("divider", "step"));
  } else if (name == "static-division") {
    policy = greengpu::Policy::static_division(flags.get_double("ratio", 0.10));
  } else if (name == "static-pair") {
    policy = greengpu::Policy::static_pair(
        static_cast<std::size_t>(flags.get_int("core-level", 0)),
        static_cast<std::size_t>(flags.get_int("mem-level", 0)));
  } else {
    throw std::invalid_argument("unknown policy: " + name);
  }
  if (flags.has("governor")) {
    policy.cpu_governor =
        greengpu::cpu_governor_from_string(flags.get_string("governor", "ondemand"));
  }
  return policy;
}

void print_human(const greengpu::ExperimentResult& r) {
  std::printf("%-14s %-22s exec %9.1f s   GPU %9.0f J   CPU %9.0f J   total %9.0f J",
              r.workload.c_str(), r.policy.c_str(), r.exec_time.get(),
              r.gpu_energy.get(), r.cpu_energy.get(), r.total_energy().get());
  if (r.final_ratio > 0.0) std::printf("   split %2.0f/%2.0f", r.final_ratio * 100.0,
                                       (1.0 - r.final_ratio) * 100.0);
  if (r.fault_event_count > 0) {
    std::printf("   faults %zu (degraded iters %zu)", r.fault_event_count,
                r.degraded_iterations);
  }
  std::printf("   %s\n", r.verify_skipped ? "(unverified)"
                                          : (r.verified ? "verified" : "VERIFY FAILED"));
}

void print_csv_row(CsvWriter& w, const greengpu::ExperimentResult& r) {
  w.row_values(r.workload, r.policy, r.exec_time.get(), r.gpu_energy.get(),
               r.cpu_energy.get(), r.total_energy().get(), r.final_ratio,
               r.gpu_dynamic_energy().get(), r.emulated_cpu_throttle_energy().get(),
               r.verified ? 1 : 0);
}

/// The complete flag vocabulary (the doc comment at the top of this file).
/// A flag outside this list is a typo, and typos must fail loudly: a
/// silently-ignored --fault-rtae changes what experiment actually ran.
void reject_unknown_flags(const Flags& flags) {
  static constexpr const char* kKnown[] = {
      "workload", "policy", "ratio", "core-level", "mem-level", "divider",
      "governor", "step", "init-ratio", "safeguard", "alpha-c", "alpha-m",
      "phi", "beta", "interval", "iterations", "record", "record-ring",
      "jobs", "sync", "trace", "csv", "no-verify", "gpus", "replay",
      "campaign", "json", "markdown", "list", "checkpoint-dir",
      "checkpoint-every", "resume", "crash-at", "hardened", "fault-rate",
      "fault-seed", "fault-util-drop", "fault-util-stale",
      "fault-util-corrupt", "fault-clock-reject", "fault-clock-delay",
      "fault-clock-clamp", "fault-clock-delay-s", "fault-launch",
      "fault-host", "fault-throttle-mtbf", "fault-throttle-duration",
      "engine", "fault-replicates", "fault-warmup", "pipeline",
      "stream-depth", "chunks"};
  for (const char* name : kKnown) (void)flags.has(name);  // has() marks consumed
  flags.reject_unknown();
}

int run(const Flags& flags) {
  reject_unknown_flags(flags);
  validate_flag_ranges(flags);

  // --crash-at arms a process-wide kill-point in exit mode: the run dies
  // with exit code 70 exactly where a SIGKILL would leave it (no flushes),
  // which is what the CI crash-recovery matrix supervises from outside.
  std::optional<sim::CrashInjector> crash;
  const std::string crash_at = flags.get_string("crash-at", "");
  if (!crash_at.empty()) {
    crash.emplace(sim::parse_crash_spec(crash_at), sim::CrashMode::kExit);
  }

  // Worker count for the parallel modes (campaign, --workload all).  Output
  // is byte-identical for every value; only wall-clock changes.
  const long long jobs_flag = flags.get_int("jobs", 1);
  const std::size_t jobs = jobs_flag < 0 ? 0 : static_cast<std::size_t>(jobs_flag);

  // Pipeline tuning is construction-time workload state; set it once before
  // any make_workload call (single runs, --workload all, campaigns alike).
  workloads::PipelineTuning tuning;
  tuning.pipelined = flags.get_bool("pipeline", true);
  tuning.stream_depth = static_cast<std::size_t>(flags.get_int("stream-depth", 3));
  tuning.chunks = static_cast<std::size_t>(flags.get_int("chunks", 8));
  workloads::set_pipeline_tuning(tuning);

  if (flags.get_bool("list", false)) {
    std::printf("workloads:");
    for (const auto& n : workloads::all_workload_names()) std::printf(" %s", n.c_str());
    std::printf("\npipeline workloads:");
    for (const auto& n : workloads::pipeline_workload_names()) {
      std::printf(" %s", n.c_str());
    }
    std::printf("\npolicies: best-performance scaling division greengpu "
                "static-division static-pair\n");
    std::printf("dividers: step qilin energy\n");
    std::printf("governors: none performance powersave ondemand conservative wma\n");
    return 0;
  }

  if (flags.get_bool("campaign", false)) {
    greengpu::CampaignConfig cfg;
    cfg.jobs = jobs;
    cfg.options.record = record_options_from_flags(flags, greengpu::RecordMode::kCounters);
    cfg.options.faults = fault_config_from_flags(flags);
    cfg.options.max_iterations = static_cast<std::size_t>(flags.get_int("iterations", 0));
    cfg.options.faults_active_from =
        static_cast<std::size_t>(flags.get_int("fault-warmup", 0));
    // Validated in validate_flag_ranges; .value() cannot throw here.
    cfg.engine = greengpu::campaign_engine_from_string(
                     flags.get_string("engine", "scalar"))
                     .value();
    cfg.fault_replicates =
        static_cast<std::size_t>(flags.get_int("fault-replicates", 0));
    if (flags.get_bool("hardened", false)) {
      // Fault-injected campaigns need the hardened controllers: un-hardened
      // policies DNF by design on a faulty platform (watchdog abort).
      cfg.policies = {greengpu::Policy::best_performance(), greengpu::Policy::scaling_only(),
                      greengpu::Policy::division_only(), greengpu::Policy::green_gpu()};
      for (auto& p : cfg.policies) p.params.hardening.enabled = true;
    }
    const greengpu::CheckpointOptions ckpt = checkpoint_options_from_flags(flags);
    const std::string wl = flags.get_string("workload", "");
    if (!wl.empty() && wl != "all") cfg.workloads = {wl};
    const std::string json_file = flags.get_string("json", "");
    const bool markdown = flags.get_bool("markdown", false);
    const auto unknown_flags = flags.unconsumed();
    if (!unknown_flags.empty()) {
      for (const auto& key : unknown_flags) {
        std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
      }
      return 2;
    }
    const greengpu::CampaignResult result = greengpu::run_campaign_checkpointed(
        cfg, ckpt,
        [](const std::string& w, const std::string& p, std::size_t done,
           std::size_t total) {
          std::fprintf(stderr, "[%zu/%zu] %s / %s\n", done, total, w.c_str(), p.c_str());
        });
    if (markdown) {
      greengpu::write_campaign_markdown(std::cout, result);
    } else {
      greengpu::write_campaign_csv(std::cout, result);
    }
    if (!json_file.empty()) {
      std::ofstream out(json_file);
      if (!out) {
        std::fprintf(stderr, "cannot open %s\n", json_file.c_str());
        return 2;
      }
      greengpu::write_campaign_json(out, result);
    }
    return result.all_verified() ? 0 : 1;
  }

  // Trace replay mode: the workload is built from a utilization trace file.
  const std::string replay_file = flags.get_string("replay", "");
  if (!replay_file.empty()) {
    std::ifstream in(replay_file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", replay_file.c_str());
      return 2;
    }
    workloads::TraceWorkload wl = workloads::TraceWorkload::from_csv(in);
    const greengpu::Policy policy = policy_from_flags(flags);
    greengpu::RunOptions options;
    options.sync_spin = flags.get_bool("sync", true);
    options.verify = !flags.get_bool("no-verify", false);
    options.faults = fault_config_from_flags(flags);
    options.record = record_options_from_flags(flags, greengpu::RecordMode::kFull);
    const auto unknown_flags = flags.unconsumed();
    if (!unknown_flags.empty()) {
      for (const auto& key : unknown_flags) {
        std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
      }
      return 2;
    }
    std::printf("replaying %zu trace phases (%.1f s at peak clocks)\n",
                wl.phases().size(), wl.trace_duration().get());
    const auto result = greengpu::run_experiment(wl, policy, options);
    print_human(result);
    return result.verified ? 0 : 1;
  }

  const std::string workload = flags.get_string("workload", "");
  if (workload.empty()) {
    std::fprintf(stderr, "missing --workload (or --list / --campaign / --replay); see "
                         "the header of tools/greengpu_cli.cpp for usage\n");
    return 2;
  }
  const std::size_t gpus = static_cast<std::size_t>(flags.get_int("gpus", 1));
  if (gpus > 1) {
    // Multi-GPU path uses the MultiPolicy mapping of the requested policy.
    const std::string pol = flags.get_string("policy", "greengpu");
    greengpu::MultiPolicy mpolicy;
    if (pol == "best-performance" || pol == "baseline") {
      mpolicy = greengpu::MultiPolicy::baseline();
    } else if (pol == "division") {
      mpolicy = greengpu::MultiPolicy::division_only(greengpu::MultiDividerKind::kProfiling);
    } else if (pol == "greengpu") {
      mpolicy = greengpu::MultiPolicy::green_gpu(greengpu::MultiDividerKind::kProfiling);
    } else {
      std::fprintf(stderr, "policy '%s' is not available with --gpus > 1\n", pol.c_str());
      return 2;
    }
    mpolicy.params.hardening.enabled = flags.get_bool("hardened", false);
    greengpu::MultiRunOptions moptions;
    moptions.faults = fault_config_from_flags(flags);
    moptions.record = record_options_from_flags(flags, greengpu::RecordMode::kFull);
    const auto unknown_flags = flags.unconsumed();
    if (!unknown_flags.empty()) {
      for (const auto& key : unknown_flags) {
        std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
      }
      return 2;
    }
    const auto r = greengpu::run_multi_experiment(workload, gpus, mpolicy, moptions);
    std::printf("%-14s %-20s gpus=%zu exec %9.1f s  total %9.0f J  shares",
                r.workload.c_str(), r.policy.c_str(), gpus, r.exec_time.get(),
                r.total_energy().get());
    for (double s : r.final_shares) std::printf(" %.3f", s);
    std::printf("  %s\n", r.verified ? "verified" : "VERIFY FAILED");
    return r.verified ? 0 : 1;
  }
  const greengpu::Policy policy = policy_from_flags(flags);

  greengpu::RunOptions options;
  options.max_iterations = static_cast<std::size_t>(flags.get_int("iterations", 0));
  options.sync_spin = flags.get_bool("sync", true);
  options.verify = !flags.get_bool("no-verify", false);
  options.faults = fault_config_from_flags(flags);
  options.faults_active_from =
      static_cast<std::size_t>(flags.get_int("fault-warmup", 0));
  options.record = record_options_from_flags(flags, greengpu::RecordMode::kFull);
  options.checkpoint_every = static_cast<std::size_t>(flags.get_int("checkpoint-every", 0));
  options.checkpoint_dir = flags.get_string("checkpoint-dir", "");
  if (!options.checkpoint_dir.empty()) {
    std::filesystem::create_directories(options.checkpoint_dir);
  }
  const std::string trace_file = flags.get_string("trace", "");
  options.record_trace = !trace_file.empty();
  const bool csv = flags.get_bool("csv", false);

  const auto unknown = flags.unconsumed();
  if (!unknown.empty()) {
    for (const auto& key : unknown) std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
    return 2;
  }

  std::vector<std::string> names;
  if (workload == "all") {
    names = workloads::all_workload_names();
  } else {
    names.push_back(workload);
  }

  CsvWriter csv_writer(std::cout);
  if (csv) {
    csv_writer.row_values("workload", "policy", "exec_time_s", "gpu_energy_J",
                          "cpu_energy_J", "total_energy_J", "final_cpu_share",
                          "gpu_dynamic_energy_J", "emulated_cpu_throttle_J", "verified");
  }

  // Independent cells fan across the pool; printing stays a serial post-pass
  // over index-determined slots, so output does not depend on --jobs.
  std::vector<greengpu::ExperimentResult> results(names.size());
  common::JobPool pool(jobs);
  pool.run(names.size(), [&](std::size_t i) {
    greengpu::RunOptions cell = options;
    if (cell.checkpoint_every != 0) cell.checkpoint_tag = names[i];
    results[i] = greengpu::run_experiment(names[i], policy, cell);
  });

  int failures = 0;
  for (const auto& result : results) {
    if (csv) {
      print_csv_row(csv_writer, result);
    } else {
      print_human(result);
    }
    if (!result.verified) ++failures;
    if (!trace_file.empty()) {
      std::ofstream out(trace_file);
      if (!out) {
        std::fprintf(stderr, "cannot open %s\n", trace_file.c_str());
        return 2;
      }
      CsvWriter tw(out);
      tw.row_values("time_s", "gpu_core_mhz", "gpu_mem_mhz", "cpu_mhz", "gpu_core_util",
                    "gpu_mem_util", "cpu_util", "gpu_power_w", "cpu_power_w");
      for (const auto& s : result.trace) {
        tw.row_values(s.time.get(), s.gpu_core_freq.get(), s.gpu_mem_freq.get(),
                      s.cpu_freq.get(), s.gpu_core_util, s.gpu_mem_util, s.cpu_util,
                      s.gpu_power.get(), s.cpu_power.get());
      }
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(Flags(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
