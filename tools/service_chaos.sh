#!/usr/bin/env bash
# Deterministic chaos soak for greengpud's streaming telemetry.
#
# Runs the REAL daemon with sim::SocketFaultInjector armed (~10% of every
# transport syscall is perturbed from a fixed seed: short reads/writes,
# EINTR, EPIPE, mid-frame disconnects, stalled peers) and drives the
# subscriber-failure matrix against it:
#
#   load          submissions retried through injected connection kills;
#                 progress asserted via STATS journal_records/telemetry_seq
#   watcher-kill  a live watcher killed with SIGKILL mid-stream — the daemon
#                 must evict the subscriber and keep serving
#   watcher-stall a watcher SIGSTOPped past the stall budget — evicted by
#                 the hub (telemetry_evicted advances), never blocks the poll
#                 loop (PING stays responsive while the peer is wedged)
#   resume        WATCH FROM cursors stitched across injected disconnects
#                 until the stream completes — the result must be
#                 byte-identical to `greengpud --events` on the journal
#   accounting    every watcher transcript must be gapless-or-accounted:
#                 EVENT seqs dense except where a DROPPED <n> frame admits
#                 the gap
#   drain         SIGTERM after all that: clean exit 0, report written
#
# Every failure mode is drawn from the seed, so a red run reproduces.
#
# Usage: tools/service_chaos.sh [greengpud-binary] [scratch-dir]
set -eu

BIN="${1:-./build/tools/greengpud}"
DIR="${2:-$(mktemp -d /tmp/greengpud-chaos.XXXXXX)}"
mkdir -p "$DIR"
SOCK="$DIR/greengpud.sock"
JOURNAL="$DIR/chaos.journal"
REPORT="$DIR/chaos.report"
DPID=0

# ~10% of syscalls perturbed, split across every channel, from a fixed seed.
CHAOS_FLAGS="--socket-fault-rate 0.10 --socket-fault-seed 3131961357"
# Service shape: small ring + short stall budget so backpressure and
# eviction trigger within seconds, fast heartbeats so idle watchers see
# liveness quickly.
SERVICE_FLAGS="--devices 2 --seed 7 --telemetry-ring 8 --stall-ticks 30 --heartbeat-ticks 4"

cleanup() {
  [ "$DPID" -ne 0 ] && kill -9 "$DPID" 2>/dev/null || true
  pkill -P $$ 2>/dev/null || true
}
trap cleanup EXIT

# shellcheck disable=SC2086  # flag strings are intentionally word-split
start_daemon() {
  rm -f "$SOCK"
  "$BIN" --socket "$SOCK" --journal "$JOURNAL" --report "$REPORT" \
    $SERVICE_FLAGS $CHAOS_FLAGS "$@" &
  DPID=$!
  for _ in $(seq 1 200); do
    [ -S "$SOCK" ] && return 0
    sleep 0.05
  done
  echo "daemon never created $SOCK" >&2
  exit 1
}

# One request line, retried across injected connection kills.  Echoes the
# reply; fails the run if the daemon never answers within the budget.
request() { # $1=line $2=grep pattern the reply must match
  local line="$1" want="$2" reply
  for _ in $(seq 1 60); do
    reply=$(printf '%s\n' "$line" | "$BIN" --client --socket "$SOCK" 2>/dev/null || true)
    if printf '%s' "$reply" | grep -q "$want"; then
      printf '%s\n' "$reply"
      return 0
    fi
    sleep 0.05
  done
  echo "no matching reply to '$line' (want /$want/, last: '$reply')" >&2
  exit 1
}

stats_field() { # $1=field name; prints its value from a retried STATS call
  request "STATS" "^200 stats" |
    tr ' ' '\n' | sed -n "s/^$1=//p"
}

wait_stats_at_least() { # $1=field $2=minimum
  local field="$1" min="$2" value=0
  for _ in $(seq 1 200); do
    value=$(stats_field "$field")
    [ "$value" -ge "$min" ] && return 0
    sleep 0.05
  done
  echo "$field stuck at $value, want >= $min" >&2
  exit 1
}

# Gapless-or-accounted: EVENT seqs must be dense except where a DROPPED <n>
# frame admits the gap.  $1=transcript $2=expected first seq (0 = take the
# first EVENT seen).
check_accounted() {
  awk -v first="$2" '
    $1 == "EVENT" {
      if (expected == 0) expected = (first == 0 ? $2 : first)
      if ($2 != expected) {
        printf "seq gap: got EVENT %d, expected %d\n", $2, expected
        exit 1
      }
      expected += 1
    }
    $1 == "DROPPED" { expected += $2 }
  ' "$1"
}

start_daemon
request "PING" "^200 pong" > /dev/null

# -- load under chaos --------------------------------------------------------
# A live watcher tails the whole run; its transcript is audited at the end.
"$BIN" --client --socket "$SOCK" --watch --idle-timeout-ms 1500 \
  > "$DIR/watch-live.out" 2>/dev/null &
LIVE_PID=$!
# A second watcher is killed mid-stream; a third is wedged with SIGSTOP.
"$BIN" --client --socket "$SOCK" --watch --idle-timeout-ms 30000 \
  > "$DIR/watch-killed.out" 2>/dev/null &
KILL_PID=$!
"$BIN" --client --socket "$SOCK" --watch --idle-timeout-ms 30000 \
  > "$DIR/watch-stalled.out" 2>/dev/null &
STALL_PID=$!
disown "$KILL_PID" "$STALL_PID"
sleep 0.3

JOBS=6
for i in $(seq 1 "$JOBS"); do
  request "SUBMIT bfs best-performance" "^202 accepted" > /dev/null
done
# Progress is asserted, not slept for: every job journals admit + start +
# outcome, and the stream seq tracks the journal exactly.
wait_stats_at_least journal_records $((3 * JOBS))
wait_stats_at_least telemetry_seq $((3 * JOBS))
echo "OK: $JOBS jobs journaled and streamed under ~10% socket chaos"

# -- watcher killed mid-stream ----------------------------------------------
# (chaos may have severed its connection already — both shapes are valid)
kill -9 "$KILL_PID" 2>/dev/null || true
request "PING" "^200 pong" > /dev/null
echo "OK: daemon survives a watcher SIGKILL"

# -- watcher wedged with SIGSTOP --------------------------------------------
# A stopped peer must never wedge the daemon: submissions keep executing and
# PING keeps answering while the watcher accepts nothing.  (At this scale
# the wedged frames fit the kernel socket buffer, so this lane proves
# non-blocking liveness; the stall-*eviction* path gets its own high-stall
# lane below, and its exact tick arithmetic is unit-tested in
# tests/service/telemetry_test.cpp.)
kill -STOP "$STALL_PID" 2>/dev/null || true
for i in $(seq 1 "$JOBS"); do
  request "SUBMIT pathfinder division" "^202 accepted" > /dev/null
done
wait_stats_at_least journal_records $((6 * JOBS))
request "PING" "^200 pong" > /dev/null
kill -CONT "$STALL_PID" 2>/dev/null || true
kill "$STALL_PID" 2>/dev/null || true
wait "$STALL_PID" 2>/dev/null || true
echo "OK: SIGSTOPped watcher never wedged the daemon"

# -- resume cursors stitched across chaos ------------------------------------
# Reconnect with WATCH FROM until the whole stream [1, final] has been
# collected; injected disconnects just mean another stitch.  The journal is
# all history by now, so every frame is regenerated backlog — losable
# connections, not losable events.
FINAL=$(stats_field telemetry_seq)
: > "$DIR/watch-stitched.out"
NEXT=1
for _ in $(seq 1 80); do
  "$BIN" --client --socket "$SOCK" --watch --from "$NEXT" \
    --idle-timeout-ms 800 2>/dev/null |
    grep '^EVENT ' >> "$DIR/watch-stitched.out" || true
  LAST=$(tail -n 1 "$DIR/watch-stitched.out" | awk '{print $2}')
  [ -n "$LAST" ] && NEXT=$((LAST + 1))
  [ "$NEXT" -gt "$FINAL" ] && break
done
[ "$NEXT" -gt "$FINAL" ] || {
  echo "resume stitching never reached seq $FINAL" >&2
  exit 1
}
echo "OK: WATCH FROM stitched the full stream across injected disconnects"

# -- graceful drain ----------------------------------------------------------
kill -TERM "$DPID"
rc=0
wait "$DPID" || rc=$?
DPID=0
if [ "$rc" -ne 0 ]; then
  echo "graceful drain exited $rc, want 0" >&2
  exit 1
fi
wait "$LIVE_PID" 2>/dev/null || true
echo "OK: graceful drain under chaos"

# -- audits ------------------------------------------------------------------
# Gapless-or-accounted for every surviving transcript.
check_accounted "$DIR/watch-live.out" 1
check_accounted "$DIR/watch-stitched.out" 1
echo "OK: all transcripts gapless-or-accounted"

# The stitched resume stream must be byte-identical to the offline
# regeneration of the journal — same config, no fault flags needed (the
# stream is a pure function of the journal, chaos knobs excluded from the
# fingerprint).
# shellcheck disable=SC2086
"$BIN" --events "$JOURNAL" $SERVICE_FLAGS > "$DIR/events-golden.out"
cmp "$DIR/events-golden.out" "$DIR/watch-stitched.out"
echo "OK: stitched WATCH FROM stream is byte-identical to --events"

# The live watcher's EVENT lines must be a prefix-consistent subset: dense
# from 1 (checked above); every line it did deliver must match the golden
# byte-for-byte.
grep '^EVENT ' "$DIR/watch-live.out" > "$DIR/live-events.out" || true
if [ -s "$DIR/live-events.out" ]; then
  lines=$(wc -l < "$DIR/live-events.out")
  head -n "$lines" "$DIR/events-golden.out" > "$DIR/golden-prefix.out"
  cmp "$DIR/golden-prefix.out" "$DIR/live-events.out"
fi
echo "OK: live watcher transcript matches the journal golden"

# -- stall-budget eviction lane ----------------------------------------------
# A second daemon where 90% of every write stalls (peer window closed): a
# watcher that cannot take its heartbeats accumulates stalled ticks and must
# be evicted by the stall budget while requests — slow, but served — keep
# flowing.  Seeded like everything else.
JOURNAL2="$DIR/stall.journal"
rm -f "$SOCK"
"$BIN" --socket "$SOCK" --journal "$JOURNAL2" --report "$DIR/stall.report" \
  --devices 2 --seed 7 --stall-ticks 5 --heartbeat-ticks 2 \
  --socket-fault-stall 0.9 --socket-fault-seed 97 &
DPID=$!
for _ in $(seq 1 200); do
  [ -S "$SOCK" ] && break
  sleep 0.05
done
"$BIN" --client --socket "$SOCK" --watch --idle-timeout-ms 30000 \
  > "$DIR/watch-stall-lane.out" 2>/dev/null &
SLOW_PID=$!
for _ in $(seq 1 300); do
  [ "$(stats_field telemetry_evicted)" -ge 1 ] && break
  sleep 0.05
done
[ "$(stats_field telemetry_evicted)" -ge 1 ] || {
  echo "stall-starved watcher was never evicted" >&2
  exit 1
}
request "PING" "^200 pong" > /dev/null
kill "$SLOW_PID" 2>/dev/null || true
wait "$SLOW_PID" 2>/dev/null || true
kill -TERM "$DPID"
rc=0
wait "$DPID" || rc=$?
DPID=0
[ "$rc" -eq 0 ] || { echo "stall lane drain exited $rc" >&2; exit 1; }
echo "OK: stall budget evicted the starved watcher, daemon stayed live"

echo "service chaos: all cases passed ($DIR)"
