#!/usr/bin/env bash
# Single local entry point for the static-analysis layer (what the CI lint
# job runs).  Always runs greengpu-lint; runs clang-format and clang-tidy
# when the tools are installed, and says so when they are not, so a box
# without LLVM still gets the project-invariant checks.
#
# Usage: tools/lint.sh [build-dir]
#   build-dir (default: build) must contain compile_commands.json for the
#   clang-tidy pass (the top-level CMakeLists exports it unconditionally).
set -u

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
STATUS=0

echo "== greengpu-lint =="
if ! python3 tools/greengpu_lint.py --root .; then
  STATUS=1
else
  echo "clean"
fi

echo "== clang-format (check only) =="
if command -v clang-format >/dev/null 2>&1; then
  # shellcheck disable=SC2046
  if ! clang-format --dry-run --Werror \
      $(git ls-files 'src/**/*.h' 'src/**/*.cpp' 'tools/*.cpp' 'bench/*.cpp' \
                     'bench/*.h' 'examples/*.cpp' 'tests/**/*.cpp' \
        | grep -v tests/tools/fixtures); then
    STATUS=1
  else
    echo "clean"
  fi
else
  echo "clang-format not installed: skipped"
fi

echo "== clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "no $BUILD_DIR/compile_commands.json: configure with cmake first"
    STATUS=1
  else
    # shellcheck disable=SC2046
    if ! clang-tidy -p "$BUILD_DIR" --quiet \
        $(git ls-files 'src/**/*.cpp'); then
      STATUS=1
    else
      echo "clean"
    fi
  fi
else
  echo "clang-tidy not installed: skipped"
fi

exit $STATUS
