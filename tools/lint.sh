#!/usr/bin/env bash
# Single local entry point for the static-analysis layer (what the CI lint
# job runs).  Always runs greengpu-lint and gg-analyze (pure python3); runs
# clang-format and clang-tidy when the tools are installed, and says so when
# they are not, so a box without LLVM still gets the project-invariant
# checks.
#
# Usage: tools/lint.sh [--changed] [build-dir]
#   build-dir (default: build) must contain compile_commands.json for the
#   clang-tidy pass (the top-level CMakeLists exports it unconditionally).
#
#   --changed restricts the per-file passes (greengpu-lint file rules,
#   clang-format, clang-tidy) to files that differ from the merge-base with
#   origin/main (falling back to main, then HEAD~1).  The whole-tree rules
#   cannot be scoped that way and always see the full tree: hot-registry
#   (a deleted annotation changes no surviving line), gg-analyze's
#   call-graph taint rules (an edit to a leaf callee indicts unchanged
#   roots), and the snapshot-schema gate (the lock spans every participant).
set -u

cd "$(dirname "$0")/.."
CHANGED_MODE=0
if [ "${1:-}" = "--changed" ]; then
  CHANGED_MODE=1
  shift
fi
BUILD_DIR="${1:-build}"
STATUS=0

# In --changed mode, collect tracked C++ files that differ from the base.
CHANGED_FILES=()
if [ "$CHANGED_MODE" = 1 ]; then
  BASE=""
  for ref in origin/main main HEAD~1; do
    if BASE=$(git merge-base "$ref" HEAD 2>/dev/null); then
      break
    fi
    BASE=""
  done
  if [ -z "$BASE" ]; then
    echo "lint.sh --changed: no base ref found, falling back to full run"
    CHANGED_MODE=0
  else
    while IFS= read -r f; do
      case "$f" in
        tests/tools/fixtures/*) continue ;;
        *.cpp|*.h|*.hpp|*.cu|*.cuh) [ -f "$f" ] && CHANGED_FILES+=("$f") ;;
      esac
    done < <(git diff --name-only "$BASE" HEAD; git diff --name-only HEAD)
    echo "== changed mode: ${#CHANGED_FILES[@]} C++ file(s) vs $(git rev-parse --short "$BASE") =="
  fi
fi

echo "== greengpu-lint =="
if [ "$CHANGED_MODE" = 1 ]; then
  if [ "${#CHANGED_FILES[@]}" = 0 ]; then
    # No file-scoped work, but the tree-wide registry rule still runs.
    LINT_ARGS=()
  else
    LINT_ARGS=("${CHANGED_FILES[@]}" --with-registry)
  fi
else
  LINT_ARGS=()
fi
if ! python3 tools/greengpu_lint.py --root . "${LINT_ARGS[@]}"; then
  STATUS=1
else
  echo "clean"
fi

echo "== gg-analyze (call graph + snapshot-schema gate) =="
# Always whole-tree: taint chains and the schema lock cross file boundaries.
if ! python3 tools/gg_analyze.py --root .; then
  STATUS=1
else
  echo "clean"
fi

echo "== clang-format (check only) =="
if command -v clang-format >/dev/null 2>&1; then
  if [ "$CHANGED_MODE" = 1 ]; then
    FMT_FILES=("${CHANGED_FILES[@]}")
  else
    # shellcheck disable=SC2207
    FMT_FILES=($(git ls-files 'src/**/*.h' 'src/**/*.cpp' 'tools/*.cpp' \
                              'bench/*.cpp' 'bench/*.h' 'examples/*.cpp' \
                              'tests/**/*.cpp' \
                 | grep -v tests/tools/fixtures))
  fi
  if [ "${#FMT_FILES[@]}" = 0 ]; then
    echo "no files to check"
  elif ! clang-format --dry-run --Werror "${FMT_FILES[@]}"; then
    STATUS=1
  else
    echo "clean"
  fi
else
  echo "clang-format not installed: skipped"
fi

echo "== clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "no $BUILD_DIR/compile_commands.json: configure with cmake first"
    STATUS=1
  else
    if [ "$CHANGED_MODE" = 1 ]; then
      TIDY_FILES=()
      for f in "${CHANGED_FILES[@]}"; do
        case "$f" in src/*.cpp|src/*/*.cpp|src/*/*/*.cpp) TIDY_FILES+=("$f") ;; esac
      done
    else
      # shellcheck disable=SC2207
      TIDY_FILES=($(git ls-files 'src/**/*.cpp'))
    fi
    if [ "${#TIDY_FILES[@]}" = 0 ]; then
      echo "no files to check"
    elif ! clang-tidy -p "$BUILD_DIR" --quiet "${TIDY_FILES[@]}"; then
      STATUS=1
    else
      echo "clean"
    fi
  fi
else
  echo "clang-tidy not installed: skipped"
fi

exit $STATUS
