# Empty compiler generated dependencies file for greengpu_cli.
# This may be replaced when dependencies are built.
