file(REMOVE_RECURSE
  "CMakeFiles/greengpu_cli.dir/greengpu_cli.cpp.o"
  "CMakeFiles/greengpu_cli.dir/greengpu_cli.cpp.o.d"
  "greengpu_cli"
  "greengpu_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greengpu_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
