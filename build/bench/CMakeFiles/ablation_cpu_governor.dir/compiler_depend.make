# Empty compiler generated dependencies file for ablation_cpu_governor.
# This may be replaced when dependencies are built.
