file(REMOVE_RECURSE
  "CMakeFiles/ablation_cpu_governor.dir/ablation_cpu_governor.cpp.o"
  "CMakeFiles/ablation_cpu_governor.dir/ablation_cpu_governor.cpp.o.d"
  "ablation_cpu_governor"
  "ablation_cpu_governor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cpu_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
