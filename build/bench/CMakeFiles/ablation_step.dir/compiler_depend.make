# Empty compiler generated dependencies file for ablation_step.
# This may be replaced when dependencies are built.
