file(REMOVE_RECURSE
  "CMakeFiles/ablation_step.dir/ablation_step.cpp.o"
  "CMakeFiles/ablation_step.dir/ablation_step.cpp.o.d"
  "ablation_step"
  "ablation_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
