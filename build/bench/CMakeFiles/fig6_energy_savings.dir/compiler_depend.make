# Empty compiler generated dependencies file for fig6_energy_savings.
# This may be replaced when dependencies are built.
