file(REMOVE_RECURSE
  "CMakeFiles/fig6_energy_savings.dir/fig6_energy_savings.cpp.o"
  "CMakeFiles/fig6_energy_savings.dir/fig6_energy_savings.cpp.o.d"
  "fig6_energy_savings"
  "fig6_energy_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_energy_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
