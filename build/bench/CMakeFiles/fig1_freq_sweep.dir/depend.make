# Empty dependencies file for fig1_freq_sweep.
# This may be replaced when dependencies are built.
