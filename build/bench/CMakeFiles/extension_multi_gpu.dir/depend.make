# Empty dependencies file for extension_multi_gpu.
# This may be replaced when dependencies are built.
