file(REMOVE_RECURSE
  "CMakeFiles/extension_multi_gpu.dir/extension_multi_gpu.cpp.o"
  "CMakeFiles/extension_multi_gpu.dir/extension_multi_gpu.cpp.o.d"
  "extension_multi_gpu"
  "extension_multi_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_multi_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
