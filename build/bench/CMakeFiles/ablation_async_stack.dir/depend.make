# Empty dependencies file for ablation_async_stack.
# This may be replaced when dependencies are built.
