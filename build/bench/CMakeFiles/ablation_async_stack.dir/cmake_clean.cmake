file(REMOVE_RECURSE
  "CMakeFiles/ablation_async_stack.dir/ablation_async_stack.cpp.o"
  "CMakeFiles/ablation_async_stack.dir/ablation_async_stack.cpp.o.d"
  "ablation_async_stack"
  "ablation_async_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_async_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
