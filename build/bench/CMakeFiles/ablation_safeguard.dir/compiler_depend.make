# Empty compiler generated dependencies file for ablation_safeguard.
# This may be replaced when dependencies are built.
