file(REMOVE_RECURSE
  "CMakeFiles/ablation_safeguard.dir/ablation_safeguard.cpp.o"
  "CMakeFiles/ablation_safeguard.dir/ablation_safeguard.cpp.o.d"
  "ablation_safeguard"
  "ablation_safeguard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_safeguard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
