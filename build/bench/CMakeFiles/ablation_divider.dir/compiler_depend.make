# Empty compiler generated dependencies file for ablation_divider.
# This may be replaced when dependencies are built.
