file(REMOVE_RECURSE
  "CMakeFiles/ablation_divider.dir/ablation_divider.cpp.o"
  "CMakeFiles/ablation_divider.dir/ablation_divider.cpp.o.d"
  "ablation_divider"
  "ablation_divider.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_divider.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
