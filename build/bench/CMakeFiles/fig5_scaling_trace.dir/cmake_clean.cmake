file(REMOVE_RECURSE
  "CMakeFiles/fig5_scaling_trace.dir/fig5_scaling_trace.cpp.o"
  "CMakeFiles/fig5_scaling_trace.dir/fig5_scaling_trace.cpp.o.d"
  "fig5_scaling_trace"
  "fig5_scaling_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_scaling_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
