# Empty dependencies file for ablation_init_ratio.
# This may be replaced when dependencies are built.
