file(REMOVE_RECURSE
  "CMakeFiles/ablation_init_ratio.dir/ablation_init_ratio.cpp.o"
  "CMakeFiles/ablation_init_ratio.dir/ablation_init_ratio.cpp.o.d"
  "ablation_init_ratio"
  "ablation_init_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_init_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
