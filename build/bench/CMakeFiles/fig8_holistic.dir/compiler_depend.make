# Empty compiler generated dependencies file for fig8_holistic.
# This may be replaced when dependencies are built.
