file(REMOVE_RECURSE
  "CMakeFiles/fig8_holistic.dir/fig8_holistic.cpp.o"
  "CMakeFiles/fig8_holistic.dir/fig8_holistic.cpp.o.d"
  "fig8_holistic"
  "fig8_holistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_holistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
