file(REMOVE_RECURSE
  "CMakeFiles/ablation_wma_params.dir/ablation_wma_params.cpp.o"
  "CMakeFiles/ablation_wma_params.dir/ablation_wma_params.cpp.o.d"
  "ablation_wma_params"
  "ablation_wma_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wma_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
