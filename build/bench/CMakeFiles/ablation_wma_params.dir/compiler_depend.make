# Empty compiler generated dependencies file for ablation_wma_params.
# This may be replaced when dependencies are built.
