# Empty compiler generated dependencies file for fig7_division_trace.
# This may be replaced when dependencies are built.
