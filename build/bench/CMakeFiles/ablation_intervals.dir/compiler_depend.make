# Empty compiler generated dependencies file for ablation_intervals.
# This may be replaced when dependencies are built.
