file(REMOVE_RECURSE
  "CMakeFiles/ablation_intervals.dir/ablation_intervals.cpp.o"
  "CMakeFiles/ablation_intervals.dir/ablation_intervals.cpp.o.d"
  "ablation_intervals"
  "ablation_intervals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_intervals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
