file(REMOVE_RECURSE
  "CMakeFiles/gg_cudalite.dir/api.cpp.o"
  "CMakeFiles/gg_cudalite.dir/api.cpp.o.d"
  "CMakeFiles/gg_cudalite.dir/thread_pool.cpp.o"
  "CMakeFiles/gg_cudalite.dir/thread_pool.cpp.o.d"
  "libgg_cudalite.a"
  "libgg_cudalite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gg_cudalite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
