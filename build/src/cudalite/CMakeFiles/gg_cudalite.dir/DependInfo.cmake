
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cudalite/api.cpp" "src/cudalite/CMakeFiles/gg_cudalite.dir/api.cpp.o" "gcc" "src/cudalite/CMakeFiles/gg_cudalite.dir/api.cpp.o.d"
  "/root/repo/src/cudalite/thread_pool.cpp" "src/cudalite/CMakeFiles/gg_cudalite.dir/thread_pool.cpp.o" "gcc" "src/cudalite/CMakeFiles/gg_cudalite.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/gg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
