file(REMOVE_RECURSE
  "libgg_cudalite.a"
)
