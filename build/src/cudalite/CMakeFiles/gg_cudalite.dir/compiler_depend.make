# Empty compiler generated dependencies file for gg_cudalite.
# This may be replaced when dependencies are built.
