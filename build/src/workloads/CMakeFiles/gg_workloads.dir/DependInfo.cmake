
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bfs.cpp" "src/workloads/CMakeFiles/gg_workloads.dir/bfs.cpp.o" "gcc" "src/workloads/CMakeFiles/gg_workloads.dir/bfs.cpp.o.d"
  "/root/repo/src/workloads/hotspot.cpp" "src/workloads/CMakeFiles/gg_workloads.dir/hotspot.cpp.o" "gcc" "src/workloads/CMakeFiles/gg_workloads.dir/hotspot.cpp.o.d"
  "/root/repo/src/workloads/kmeans.cpp" "src/workloads/CMakeFiles/gg_workloads.dir/kmeans.cpp.o" "gcc" "src/workloads/CMakeFiles/gg_workloads.dir/kmeans.cpp.o.d"
  "/root/repo/src/workloads/lud.cpp" "src/workloads/CMakeFiles/gg_workloads.dir/lud.cpp.o" "gcc" "src/workloads/CMakeFiles/gg_workloads.dir/lud.cpp.o.d"
  "/root/repo/src/workloads/nbody.cpp" "src/workloads/CMakeFiles/gg_workloads.dir/nbody.cpp.o" "gcc" "src/workloads/CMakeFiles/gg_workloads.dir/nbody.cpp.o.d"
  "/root/repo/src/workloads/pathfinder.cpp" "src/workloads/CMakeFiles/gg_workloads.dir/pathfinder.cpp.o" "gcc" "src/workloads/CMakeFiles/gg_workloads.dir/pathfinder.cpp.o.d"
  "/root/repo/src/workloads/profile.cpp" "src/workloads/CMakeFiles/gg_workloads.dir/profile.cpp.o" "gcc" "src/workloads/CMakeFiles/gg_workloads.dir/profile.cpp.o.d"
  "/root/repo/src/workloads/qrng.cpp" "src/workloads/CMakeFiles/gg_workloads.dir/qrng.cpp.o" "gcc" "src/workloads/CMakeFiles/gg_workloads.dir/qrng.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/gg_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/gg_workloads.dir/registry.cpp.o.d"
  "/root/repo/src/workloads/sobol.cpp" "src/workloads/CMakeFiles/gg_workloads.dir/sobol.cpp.o" "gcc" "src/workloads/CMakeFiles/gg_workloads.dir/sobol.cpp.o.d"
  "/root/repo/src/workloads/srad.cpp" "src/workloads/CMakeFiles/gg_workloads.dir/srad.cpp.o" "gcc" "src/workloads/CMakeFiles/gg_workloads.dir/srad.cpp.o.d"
  "/root/repo/src/workloads/streamcluster.cpp" "src/workloads/CMakeFiles/gg_workloads.dir/streamcluster.cpp.o" "gcc" "src/workloads/CMakeFiles/gg_workloads.dir/streamcluster.cpp.o.d"
  "/root/repo/src/workloads/trace_workload.cpp" "src/workloads/CMakeFiles/gg_workloads.dir/trace_workload.cpp.o" "gcc" "src/workloads/CMakeFiles/gg_workloads.dir/trace_workload.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/workloads/CMakeFiles/gg_workloads.dir/workload.cpp.o" "gcc" "src/workloads/CMakeFiles/gg_workloads.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cudalite/CMakeFiles/gg_cudalite.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
