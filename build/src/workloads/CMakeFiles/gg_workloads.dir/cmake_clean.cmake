file(REMOVE_RECURSE
  "CMakeFiles/gg_workloads.dir/bfs.cpp.o"
  "CMakeFiles/gg_workloads.dir/bfs.cpp.o.d"
  "CMakeFiles/gg_workloads.dir/hotspot.cpp.o"
  "CMakeFiles/gg_workloads.dir/hotspot.cpp.o.d"
  "CMakeFiles/gg_workloads.dir/kmeans.cpp.o"
  "CMakeFiles/gg_workloads.dir/kmeans.cpp.o.d"
  "CMakeFiles/gg_workloads.dir/lud.cpp.o"
  "CMakeFiles/gg_workloads.dir/lud.cpp.o.d"
  "CMakeFiles/gg_workloads.dir/nbody.cpp.o"
  "CMakeFiles/gg_workloads.dir/nbody.cpp.o.d"
  "CMakeFiles/gg_workloads.dir/pathfinder.cpp.o"
  "CMakeFiles/gg_workloads.dir/pathfinder.cpp.o.d"
  "CMakeFiles/gg_workloads.dir/profile.cpp.o"
  "CMakeFiles/gg_workloads.dir/profile.cpp.o.d"
  "CMakeFiles/gg_workloads.dir/qrng.cpp.o"
  "CMakeFiles/gg_workloads.dir/qrng.cpp.o.d"
  "CMakeFiles/gg_workloads.dir/registry.cpp.o"
  "CMakeFiles/gg_workloads.dir/registry.cpp.o.d"
  "CMakeFiles/gg_workloads.dir/sobol.cpp.o"
  "CMakeFiles/gg_workloads.dir/sobol.cpp.o.d"
  "CMakeFiles/gg_workloads.dir/srad.cpp.o"
  "CMakeFiles/gg_workloads.dir/srad.cpp.o.d"
  "CMakeFiles/gg_workloads.dir/streamcluster.cpp.o"
  "CMakeFiles/gg_workloads.dir/streamcluster.cpp.o.d"
  "CMakeFiles/gg_workloads.dir/trace_workload.cpp.o"
  "CMakeFiles/gg_workloads.dir/trace_workload.cpp.o.d"
  "CMakeFiles/gg_workloads.dir/workload.cpp.o"
  "CMakeFiles/gg_workloads.dir/workload.cpp.o.d"
  "libgg_workloads.a"
  "libgg_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gg_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
