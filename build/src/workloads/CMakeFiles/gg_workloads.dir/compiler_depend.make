# Empty compiler generated dependencies file for gg_workloads.
# This may be replaced when dependencies are built.
