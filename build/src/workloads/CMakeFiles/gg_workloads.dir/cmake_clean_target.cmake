file(REMOVE_RECURSE
  "libgg_workloads.a"
)
