
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cpu_device.cpp" "src/sim/CMakeFiles/gg_sim.dir/cpu_device.cpp.o" "gcc" "src/sim/CMakeFiles/gg_sim.dir/cpu_device.cpp.o.d"
  "/root/repo/src/sim/dvfs.cpp" "src/sim/CMakeFiles/gg_sim.dir/dvfs.cpp.o" "gcc" "src/sim/CMakeFiles/gg_sim.dir/dvfs.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/gg_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/gg_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/gpu_device.cpp" "src/sim/CMakeFiles/gg_sim.dir/gpu_device.cpp.o" "gcc" "src/sim/CMakeFiles/gg_sim.dir/gpu_device.cpp.o.d"
  "/root/repo/src/sim/platform.cpp" "src/sim/CMakeFiles/gg_sim.dir/platform.cpp.o" "gcc" "src/sim/CMakeFiles/gg_sim.dir/platform.cpp.o.d"
  "/root/repo/src/sim/power_meter.cpp" "src/sim/CMakeFiles/gg_sim.dir/power_meter.cpp.o" "gcc" "src/sim/CMakeFiles/gg_sim.dir/power_meter.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/gg_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/gg_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
