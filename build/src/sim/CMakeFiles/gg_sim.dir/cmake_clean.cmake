file(REMOVE_RECURSE
  "CMakeFiles/gg_sim.dir/cpu_device.cpp.o"
  "CMakeFiles/gg_sim.dir/cpu_device.cpp.o.d"
  "CMakeFiles/gg_sim.dir/dvfs.cpp.o"
  "CMakeFiles/gg_sim.dir/dvfs.cpp.o.d"
  "CMakeFiles/gg_sim.dir/event_queue.cpp.o"
  "CMakeFiles/gg_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/gg_sim.dir/gpu_device.cpp.o"
  "CMakeFiles/gg_sim.dir/gpu_device.cpp.o.d"
  "CMakeFiles/gg_sim.dir/platform.cpp.o"
  "CMakeFiles/gg_sim.dir/platform.cpp.o.d"
  "CMakeFiles/gg_sim.dir/power_meter.cpp.o"
  "CMakeFiles/gg_sim.dir/power_meter.cpp.o.d"
  "CMakeFiles/gg_sim.dir/trace.cpp.o"
  "CMakeFiles/gg_sim.dir/trace.cpp.o.d"
  "libgg_sim.a"
  "libgg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
