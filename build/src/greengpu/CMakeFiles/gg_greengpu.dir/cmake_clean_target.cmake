file(REMOVE_RECURSE
  "libgg_greengpu.a"
)
