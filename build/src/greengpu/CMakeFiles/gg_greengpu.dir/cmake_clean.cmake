file(REMOVE_RECURSE
  "CMakeFiles/gg_greengpu.dir/campaign.cpp.o"
  "CMakeFiles/gg_greengpu.dir/campaign.cpp.o.d"
  "CMakeFiles/gg_greengpu.dir/cpu_governor.cpp.o"
  "CMakeFiles/gg_greengpu.dir/cpu_governor.cpp.o.d"
  "CMakeFiles/gg_greengpu.dir/division.cpp.o"
  "CMakeFiles/gg_greengpu.dir/division.cpp.o.d"
  "CMakeFiles/gg_greengpu.dir/loss.cpp.o"
  "CMakeFiles/gg_greengpu.dir/loss.cpp.o.d"
  "CMakeFiles/gg_greengpu.dir/model_dividers.cpp.o"
  "CMakeFiles/gg_greengpu.dir/model_dividers.cpp.o.d"
  "CMakeFiles/gg_greengpu.dir/multi_division.cpp.o"
  "CMakeFiles/gg_greengpu.dir/multi_division.cpp.o.d"
  "CMakeFiles/gg_greengpu.dir/multi_runner.cpp.o"
  "CMakeFiles/gg_greengpu.dir/multi_runner.cpp.o.d"
  "CMakeFiles/gg_greengpu.dir/runner.cpp.o"
  "CMakeFiles/gg_greengpu.dir/runner.cpp.o.d"
  "CMakeFiles/gg_greengpu.dir/weight_table.cpp.o"
  "CMakeFiles/gg_greengpu.dir/weight_table.cpp.o.d"
  "CMakeFiles/gg_greengpu.dir/wma_scaler.cpp.o"
  "CMakeFiles/gg_greengpu.dir/wma_scaler.cpp.o.d"
  "libgg_greengpu.a"
  "libgg_greengpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gg_greengpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
