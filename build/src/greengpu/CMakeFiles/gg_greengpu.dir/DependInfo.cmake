
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/greengpu/campaign.cpp" "src/greengpu/CMakeFiles/gg_greengpu.dir/campaign.cpp.o" "gcc" "src/greengpu/CMakeFiles/gg_greengpu.dir/campaign.cpp.o.d"
  "/root/repo/src/greengpu/cpu_governor.cpp" "src/greengpu/CMakeFiles/gg_greengpu.dir/cpu_governor.cpp.o" "gcc" "src/greengpu/CMakeFiles/gg_greengpu.dir/cpu_governor.cpp.o.d"
  "/root/repo/src/greengpu/division.cpp" "src/greengpu/CMakeFiles/gg_greengpu.dir/division.cpp.o" "gcc" "src/greengpu/CMakeFiles/gg_greengpu.dir/division.cpp.o.d"
  "/root/repo/src/greengpu/loss.cpp" "src/greengpu/CMakeFiles/gg_greengpu.dir/loss.cpp.o" "gcc" "src/greengpu/CMakeFiles/gg_greengpu.dir/loss.cpp.o.d"
  "/root/repo/src/greengpu/model_dividers.cpp" "src/greengpu/CMakeFiles/gg_greengpu.dir/model_dividers.cpp.o" "gcc" "src/greengpu/CMakeFiles/gg_greengpu.dir/model_dividers.cpp.o.d"
  "/root/repo/src/greengpu/multi_division.cpp" "src/greengpu/CMakeFiles/gg_greengpu.dir/multi_division.cpp.o" "gcc" "src/greengpu/CMakeFiles/gg_greengpu.dir/multi_division.cpp.o.d"
  "/root/repo/src/greengpu/multi_runner.cpp" "src/greengpu/CMakeFiles/gg_greengpu.dir/multi_runner.cpp.o" "gcc" "src/greengpu/CMakeFiles/gg_greengpu.dir/multi_runner.cpp.o.d"
  "/root/repo/src/greengpu/runner.cpp" "src/greengpu/CMakeFiles/gg_greengpu.dir/runner.cpp.o" "gcc" "src/greengpu/CMakeFiles/gg_greengpu.dir/runner.cpp.o.d"
  "/root/repo/src/greengpu/weight_table.cpp" "src/greengpu/CMakeFiles/gg_greengpu.dir/weight_table.cpp.o" "gcc" "src/greengpu/CMakeFiles/gg_greengpu.dir/weight_table.cpp.o.d"
  "/root/repo/src/greengpu/wma_scaler.cpp" "src/greengpu/CMakeFiles/gg_greengpu.dir/wma_scaler.cpp.o" "gcc" "src/greengpu/CMakeFiles/gg_greengpu.dir/wma_scaler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/gg_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cudalite/CMakeFiles/gg_cudalite.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
