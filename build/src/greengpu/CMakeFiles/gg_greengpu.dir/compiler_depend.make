# Empty compiler generated dependencies file for gg_greengpu.
# This may be replaced when dependencies are built.
