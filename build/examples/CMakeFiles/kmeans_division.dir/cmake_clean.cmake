file(REMOVE_RECURSE
  "CMakeFiles/kmeans_division.dir/kmeans_division.cpp.o"
  "CMakeFiles/kmeans_division.dir/kmeans_division.cpp.o.d"
  "kmeans_division"
  "kmeans_division.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmeans_division.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
