# Empty compiler generated dependencies file for kmeans_division.
# This may be replaced when dependencies are built.
