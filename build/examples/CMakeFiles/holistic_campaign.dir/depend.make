# Empty dependencies file for holistic_campaign.
# This may be replaced when dependencies are built.
