file(REMOVE_RECURSE
  "CMakeFiles/holistic_campaign.dir/holistic_campaign.cpp.o"
  "CMakeFiles/holistic_campaign.dir/holistic_campaign.cpp.o.d"
  "holistic_campaign"
  "holistic_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holistic_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
