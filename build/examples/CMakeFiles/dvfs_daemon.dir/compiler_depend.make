# Empty compiler generated dependencies file for dvfs_daemon.
# This may be replaced when dependencies are built.
