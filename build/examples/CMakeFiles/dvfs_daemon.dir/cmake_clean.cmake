file(REMOVE_RECURSE
  "CMakeFiles/dvfs_daemon.dir/dvfs_daemon.cpp.o"
  "CMakeFiles/dvfs_daemon.dir/dvfs_daemon.cpp.o.d"
  "dvfs_daemon"
  "dvfs_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvfs_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
