file(REMOVE_RECURSE
  "CMakeFiles/division_behavior_test.dir/division_behavior_test.cpp.o"
  "CMakeFiles/division_behavior_test.dir/division_behavior_test.cpp.o.d"
  "division_behavior_test"
  "division_behavior_test.pdb"
  "division_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/division_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
