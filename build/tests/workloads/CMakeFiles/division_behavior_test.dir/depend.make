# Empty dependencies file for division_behavior_test.
# This may be replaced when dependencies are built.
