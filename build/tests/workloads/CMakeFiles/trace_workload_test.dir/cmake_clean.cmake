file(REMOVE_RECURSE
  "CMakeFiles/trace_workload_test.dir/trace_workload_test.cpp.o"
  "CMakeFiles/trace_workload_test.dir/trace_workload_test.cpp.o.d"
  "trace_workload_test"
  "trace_workload_test.pdb"
  "trace_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
