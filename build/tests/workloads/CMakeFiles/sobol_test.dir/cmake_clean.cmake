file(REMOVE_RECURSE
  "CMakeFiles/sobol_test.dir/sobol_test.cpp.o"
  "CMakeFiles/sobol_test.dir/sobol_test.cpp.o.d"
  "sobol_test"
  "sobol_test.pdb"
  "sobol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sobol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
