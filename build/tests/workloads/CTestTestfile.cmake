# CMake generated Testfile for 
# Source directory: /root/repo/tests/workloads
# Build directory: /root/repo/build/tests/workloads
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/workloads/profile_test[1]_include.cmake")
include("/root/repo/build/tests/workloads/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/workloads/division_behavior_test[1]_include.cmake")
include("/root/repo/build/tests/workloads/trace_workload_test[1]_include.cmake")
include("/root/repo/build/tests/workloads/sobol_test[1]_include.cmake")
include("/root/repo/build/tests/workloads/kernels_test[1]_include.cmake")
