# CMake generated Testfile for 
# Source directory: /root/repo/tests/cudalite
# Build directory: /root/repo/build/tests/cudalite
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/cudalite/thread_pool_test[1]_include.cmake")
include("/root/repo/build/tests/cudalite/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/cudalite/nvml_test[1]_include.cmake")
include("/root/repo/build/tests/cudalite/determinism_test[1]_include.cmake")
include("/root/repo/build/tests/cudalite/failure_test[1]_include.cmake")
