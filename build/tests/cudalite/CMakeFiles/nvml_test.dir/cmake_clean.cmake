file(REMOVE_RECURSE
  "CMakeFiles/nvml_test.dir/nvml_test.cpp.o"
  "CMakeFiles/nvml_test.dir/nvml_test.cpp.o.d"
  "nvml_test"
  "nvml_test.pdb"
  "nvml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
