# Empty compiler generated dependencies file for weight_table_test.
# This may be replaced when dependencies are built.
