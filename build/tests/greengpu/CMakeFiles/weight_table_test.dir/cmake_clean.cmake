file(REMOVE_RECURSE
  "CMakeFiles/weight_table_test.dir/weight_table_test.cpp.o"
  "CMakeFiles/weight_table_test.dir/weight_table_test.cpp.o.d"
  "weight_table_test"
  "weight_table_test.pdb"
  "weight_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weight_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
