# Empty dependencies file for multi_division_test.
# This may be replaced when dependencies are built.
