file(REMOVE_RECURSE
  "CMakeFiles/multi_division_test.dir/multi_division_test.cpp.o"
  "CMakeFiles/multi_division_test.dir/multi_division_test.cpp.o.d"
  "multi_division_test"
  "multi_division_test.pdb"
  "multi_division_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_division_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
