# Empty dependencies file for wma_scaler_test.
# This may be replaced when dependencies are built.
