file(REMOVE_RECURSE
  "CMakeFiles/wma_scaler_test.dir/wma_scaler_test.cpp.o"
  "CMakeFiles/wma_scaler_test.dir/wma_scaler_test.cpp.o.d"
  "wma_scaler_test"
  "wma_scaler_test.pdb"
  "wma_scaler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wma_scaler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
