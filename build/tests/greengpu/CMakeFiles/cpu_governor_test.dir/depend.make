# Empty dependencies file for cpu_governor_test.
# This may be replaced when dependencies are built.
