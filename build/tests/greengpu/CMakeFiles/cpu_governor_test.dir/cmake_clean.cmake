file(REMOVE_RECURSE
  "CMakeFiles/cpu_governor_test.dir/cpu_governor_test.cpp.o"
  "CMakeFiles/cpu_governor_test.dir/cpu_governor_test.cpp.o.d"
  "cpu_governor_test"
  "cpu_governor_test.pdb"
  "cpu_governor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_governor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
