file(REMOVE_RECURSE
  "CMakeFiles/model_dividers_test.dir/model_dividers_test.cpp.o"
  "CMakeFiles/model_dividers_test.dir/model_dividers_test.cpp.o.d"
  "model_dividers_test"
  "model_dividers_test.pdb"
  "model_dividers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_dividers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
