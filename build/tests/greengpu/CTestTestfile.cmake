# CMake generated Testfile for 
# Source directory: /root/repo/tests/greengpu
# Build directory: /root/repo/build/tests/greengpu
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/greengpu/loss_test[1]_include.cmake")
include("/root/repo/build/tests/greengpu/weight_table_test[1]_include.cmake")
include("/root/repo/build/tests/greengpu/division_test[1]_include.cmake")
include("/root/repo/build/tests/greengpu/ondemand_test[1]_include.cmake")
include("/root/repo/build/tests/greengpu/wma_scaler_test[1]_include.cmake")
include("/root/repo/build/tests/greengpu/runner_test[1]_include.cmake")
include("/root/repo/build/tests/greengpu/cpu_governor_test[1]_include.cmake")
include("/root/repo/build/tests/greengpu/model_dividers_test[1]_include.cmake")
include("/root/repo/build/tests/greengpu/multi_division_test[1]_include.cmake")
include("/root/repo/build/tests/greengpu/campaign_test[1]_include.cmake")
