file(REMOVE_RECURSE
  "CMakeFiles/power_meter_test.dir/power_meter_test.cpp.o"
  "CMakeFiles/power_meter_test.dir/power_meter_test.cpp.o.d"
  "power_meter_test"
  "power_meter_test.pdb"
  "power_meter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_meter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
