# Empty dependencies file for cpu_device_property_test.
# This may be replaced when dependencies are built.
