file(REMOVE_RECURSE
  "CMakeFiles/cpu_device_property_test.dir/cpu_device_property_test.cpp.o"
  "CMakeFiles/cpu_device_property_test.dir/cpu_device_property_test.cpp.o.d"
  "cpu_device_property_test"
  "cpu_device_property_test.pdb"
  "cpu_device_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_device_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
