# CMake generated Testfile for 
# Source directory: /root/repo/tests/sim
# Build directory: /root/repo/build/tests/sim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim/event_queue_test[1]_include.cmake")
include("/root/repo/build/tests/sim/dvfs_test[1]_include.cmake")
include("/root/repo/build/tests/sim/power_meter_test[1]_include.cmake")
include("/root/repo/build/tests/sim/gpu_device_test[1]_include.cmake")
include("/root/repo/build/tests/sim/cpu_device_test[1]_include.cmake")
include("/root/repo/build/tests/sim/platform_test[1]_include.cmake")
include("/root/repo/build/tests/sim/gpu_device_property_test[1]_include.cmake")
include("/root/repo/build/tests/sim/cpu_device_property_test[1]_include.cmake")
include("/root/repo/build/tests/sim/specs_test[1]_include.cmake")
