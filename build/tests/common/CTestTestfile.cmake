# CMake generated Testfile for 
# Source directory: /root/repo/tests/common
# Build directory: /root/repo/build/tests/common
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common/units_test[1]_include.cmake")
include("/root/repo/build/tests/common/rng_test[1]_include.cmake")
include("/root/repo/build/tests/common/csv_test[1]_include.cmake")
include("/root/repo/build/tests/common/stats_test[1]_include.cmake")
include("/root/repo/build/tests/common/fixed_point_test[1]_include.cmake")
include("/root/repo/build/tests/common/ring_buffer_test[1]_include.cmake")
include("/root/repo/build/tests/common/flags_test[1]_include.cmake")
include("/root/repo/build/tests/common/json_test[1]_include.cmake")
