#include "src/workloads/workload.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/sim/fault.h"

namespace gg::workloads {

void ProfiledWorkload::run_iteration(cudalite::Runtime& rt, cudalite::Stream& stream,
                                     std::size_t iter, double cpu_ratio,
                                     std::function<void()> on_gpu_done,
                                     std::function<void()> on_cpu_done) {
  if (iter >= iterations()) throw std::out_of_range("run_iteration: iteration index");
  if (cpu_ratio < 0.0 || cpu_ratio > 1.0) {
    throw std::invalid_argument("run_iteration: cpu_ratio out of [0,1]");
  }
  if (!divisible()) cpu_ratio = 0.0;

  const IntensityProfile prof = profile(iter);
  const double total_units = prof.units_per_iteration;
  const double cpu_units = cpu_ratio * total_units;
  const double gpu_units = total_units - cpu_units;

  const std::size_t items = real_items();
  const auto split = static_cast<std::size_t>(
      std::llround(cpu_ratio * static_cast<double>(items)));

  auto& platform = rt.platform();
  const auto& gpu_spec = platform.gpu().spec();
  const auto& cpu_spec = platform.cpu().spec();

  sim::FaultInjector* faults = platform.faults();

  if (gpu_units > 0.0 && split < items) {
    const cudalite::WorkEstimate est =
        make_gpu_estimate(gpu_spec, platform.gpu().core_table().peak(),
                          platform.gpu().mem_table().peak(), prof, gpu_units);
    const bool accepted = rt.launch_range(
        stream, items - split,
        est,
        [this, split, iter](std::size_t begin, std::size_t end) {
          gpu_chunk(split + begin, split + end, iter);
        },
        on_gpu_done);
    if (!accepted && rt.fault_tolerance().reroute_failed_side) {
      // Route the GPU share to the CPU for this iteration: the surviving
      // side does the work (slower, recorded as degradation), results stay
      // correct.
      if (faults != nullptr) {
        faults->note(sim::FaultChannel::kHarness, sim::FaultOutcome::kRerouted,
                     stream.device());
      }
      const sim::CpuWork work =
          make_cpu_work(cpu_spec, platform.cpu().table().peak(), prof, gpu_units);
      const bool routed = rt.host_submit(
          work, [this, split, items, iter] { cpu_chunk(split, items, iter); },
          on_gpu_done);
      if (!routed) {
        // Last resort: compute inline (zero simulated cost) so verify()
        // still holds; the harness owns the correctness of the output.
        if (faults != nullptr) {
          faults->note(sim::FaultChannel::kHarness, sim::FaultOutcome::kForcedCompletion,
                       stream.device());
        }
        if (rt.compute_enabled()) cpu_chunk(split, items, iter);
        if (on_gpu_done) on_gpu_done();
      }
    }
    // Without rerouting, a rejected side never signals completion — the
    // un-hardened pthread blocking on a CUDA error; the runner's watchdog
    // decides what happens next.
  } else if (on_gpu_done) {
    // No GPU share this iteration.
    on_gpu_done();
  }

  if (cpu_units > 0.0 && split > 0) {
    const sim::CpuWork work =
        make_cpu_work(cpu_spec, platform.cpu().table().peak(), prof, cpu_units);
    const bool accepted = rt.host_submit(
        work, [this, split, iter] { cpu_chunk(0, split, iter); }, on_cpu_done);
    if (!accepted && rt.fault_tolerance().reroute_failed_side) {
      if (faults != nullptr) {
        faults->note(sim::FaultChannel::kHarness, sim::FaultOutcome::kRerouted,
                     stream.device());
      }
      const cudalite::WorkEstimate est =
          make_gpu_estimate(gpu_spec, platform.gpu().core_table().peak(),
                            platform.gpu().mem_table().peak(), prof, cpu_units);
      const bool routed = rt.launch_range(
          stream, split, est,
          [this, iter](std::size_t begin, std::size_t end) {
            gpu_chunk(begin, end, iter);
          },
          on_cpu_done);
      if (!routed) {
        if (faults != nullptr) {
          faults->note(sim::FaultChannel::kHarness, sim::FaultOutcome::kForcedCompletion,
                       stream.device());
        }
        if (rt.compute_enabled()) cpu_chunk(0, split, iter);
        if (on_cpu_done) on_cpu_done();
      }
    }
  } else if (on_cpu_done) {
    on_cpu_done();
  }
}

void ProfiledWorkload::run_iteration_multi(cudalite::Runtime& rt,
                                           std::vector<cudalite::Stream>& streams,
                                           std::size_t iter, const ShareVector& shares,
                                           std::function<void(std::size_t)> on_done) {
  if (iter >= iterations()) throw std::out_of_range("run_iteration_multi: iteration index");
  if (streams.empty() || shares.size() != streams.size() + 1) {
    throw std::invalid_argument(
        "run_iteration_multi: need shares for the CPU plus one per stream");
  }
  double sum = 0.0;
  for (double s : shares) {
    if (s < 0.0) throw std::invalid_argument("run_iteration_multi: negative share");
    sum += s;
  }
  if (std::fabs(sum - 1.0) > 1e-9) {
    throw std::invalid_argument("run_iteration_multi: shares must sum to 1");
  }

  ShareVector effective = shares;
  if (!divisible()) {
    // Everything on GPU 0 (the single-device default of the paper's
    // GPU-only experiments).
    std::fill(effective.begin(), effective.end(), 0.0);
    effective[1] = 1.0;
  }

  const IntensityProfile prof = profile(iter);
  const double total_units = prof.units_per_iteration;
  const std::size_t items = real_items();
  auto& platform = rt.platform();
  const auto& gpu_spec = platform.gpu().spec();
  const auto& cpu_spec = platform.cpu().spec();

  // Partition the real item range proportionally to the shares; slot k owns
  // [bounds[k], bounds[k+1]).
  std::vector<std::size_t> bounds(effective.size() + 1, 0);
  double acc = 0.0;
  for (std::size_t slot = 0; slot < effective.size(); ++slot) {
    acc += effective[slot];
    bounds[slot + 1] =
        std::min(items, static_cast<std::size_t>(std::llround(acc * items)));
  }
  bounds.back() = items;

  sim::FaultInjector* faults = platform.faults();

  // CPU slot.
  {
    const double units = effective[0] * total_units;
    const std::size_t begin = bounds[0];
    const std::size_t end = bounds[1];
    if (units > 0.0 && end > begin) {
      const sim::CpuWork work =
          make_cpu_work(cpu_spec, platform.cpu().table().peak(), prof, units);
      auto signal = [on_done] { if (on_done) on_done(0); };
      const bool accepted = rt.host_submit(
          work, [this, begin, end, iter] { cpu_chunk(begin, end, iter); }, signal);
      if (!accepted && rt.fault_tolerance().reroute_failed_side) {
        // Route the CPU slot's range to GPU 0.
        if (faults != nullptr) {
          faults->note(sim::FaultChannel::kHarness, sim::FaultOutcome::kRerouted,
                       streams[0].device());
        }
        const cudalite::WorkEstimate est = make_gpu_estimate(
            gpu_spec, platform.gpu(streams[0].device()).core_table().peak(),
            platform.gpu(streams[0].device()).mem_table().peak(), prof, units);
        const bool routed = rt.launch_range(
            streams[0], end - begin, est,
            [this, begin, iter](std::size_t b, std::size_t e) {
              gpu_chunk(begin + b, begin + e, iter);
            },
            signal);
        if (!routed) {
          if (faults != nullptr) {
            faults->note(sim::FaultChannel::kHarness,
                         sim::FaultOutcome::kForcedCompletion, streams[0].device());
          }
          if (rt.compute_enabled()) cpu_chunk(begin, end, iter);
          signal();
        }
      }
    } else if (on_done) {
      on_done(0);
    }
  }

  // GPU slots.
  for (std::size_t k = 0; k < streams.size(); ++k) {
    const double units = effective[k + 1] * total_units;
    const std::size_t begin = bounds[k + 1];
    const std::size_t end = bounds[k + 2];
    if (units > 0.0 && end > begin) {
      const cudalite::WorkEstimate est = make_gpu_estimate(
          gpu_spec, platform.gpu(streams[k].device()).core_table().peak(),
          platform.gpu(streams[k].device()).mem_table().peak(), prof, units);
      auto signal = [on_done, k] { if (on_done) on_done(k + 1); };
      const bool accepted = rt.launch_range(
          streams[k], end - begin, est,
          [this, begin, iter](std::size_t b, std::size_t e) {
            gpu_chunk(begin + b, begin + e, iter);
          },
          signal);
      if (!accepted && rt.fault_tolerance().reroute_failed_side) {
        // Route the failed GPU slot's range to the CPU.
        if (faults != nullptr) {
          faults->note(sim::FaultChannel::kHarness, sim::FaultOutcome::kRerouted,
                       streams[k].device());
        }
        const sim::CpuWork work =
            make_cpu_work(cpu_spec, platform.cpu().table().peak(), prof, units);
        const bool routed = rt.host_submit(
            work, [this, begin, end, iter] { cpu_chunk(begin, end, iter); }, signal);
        if (!routed) {
          if (faults != nullptr) {
            faults->note(sim::FaultChannel::kHarness,
                         sim::FaultOutcome::kForcedCompletion, streams[k].device());
          }
          if (rt.compute_enabled()) cpu_chunk(begin, end, iter);
          signal();
        }
      }
    } else if (on_done) {
      on_done(k + 1);
    }
  }
}

}  // namespace gg::workloads
