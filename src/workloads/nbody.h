// nbody (CUDA SDK): all-pairs gravitational simulation.
//
// One iteration is one timestep: every body accumulates force from all
// bodies (reading the previous-step positions) and integrates, so a
// body-range split is race-free under double buffering.
//
// Section III-A identifies nbody as core-bounded: arithmetic dominates
// (N^2 interactions against N loads), so the profile carries high core and
// moderate memory utilization — throttling memory is nearly free, throttling
// cores is not (Fig. 1).
#pragma once

#include <cstdint>
#include <vector>

#include "src/workloads/workload.h"

namespace gg::workloads {

struct NbodyConfig {
  std::size_t bodies{1024};
  std::size_t iterations{50};  // Table II: 50 iterations
  double dt{1e-3};
  std::uint64_t seed{31};
  /// Core-bounded: high core, moderate memory; 131072 sim units/iteration.
  IntensityProfile profile{0.96, 0.38, 1.5e-5, 131072.0, 14.0, 0.9};
};

class Nbody final : public ProfiledWorkload {
 public:
  explicit Nbody(NbodyConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "nbody"; }
  [[nodiscard]] std::string_view description() const override {
    return "High core utilization (core-bounded), moderate memory utilization";
  }
  [[nodiscard]] std::size_t iterations() const override { return config_.iterations; }
  [[nodiscard]] bool divisible() const override { return false; }
  [[nodiscard]] IntensityProfile profile(std::size_t iter) const override;

  void setup(cudalite::Runtime& rt) override;
  void finish_iteration(cudalite::Runtime& rt, std::size_t iter) override;
  void teardown(cudalite::Runtime& rt) override;
  [[nodiscard]] bool verify() const override;

 protected:
  [[nodiscard]] std::size_t real_items() const override { return config_.bodies; }
  void gpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) override;
  void cpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) override;

 private:
  void step_range(std::size_t begin, std::size_t end);

  NbodyConfig config_;
  // Structure-of-arrays, double buffered: x/y/z position + velocity.
  std::vector<double> pos_in_, pos_out_;  // 3N each
  std::vector<double> vel_in_, vel_out_;
  std::vector<double> mass_;
  std::vector<double> initial_pos_, initial_vel_;
  std::vector<double> result_pos_;
  cudalite::DeviceBuffer<double> dev_pos_;
  bool ran_{false};
};

}  // namespace gg::workloads
