#include "src/workloads/hotspot.h"

#include <cmath>
#include <utility>

#include "src/common/rng.h"

namespace gg::workloads {

namespace {
// Stencil coefficients (fixed constants in the Rodinia kernel's spirit).
constexpr double kRx = 0.1;       // lateral coupling
constexpr double kRy = 0.1;
constexpr double kRz = 0.05;      // coupling to ambient
constexpr double kAmbient = 80.0;
constexpr double kPowerScale = 0.5;
}  // namespace

Hotspot::Hotspot(HotspotConfig config) : config_(config) {
  Rng rng(config_.seed);
  const std::size_t n = config_.rows * config_.cols;
  temp_in_.resize(n);
  temp_out_.assign(n, 0.0);
  power_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    temp_in_[i] = rng.uniform(70.0, 90.0);
    power_[i] = rng.uniform(0.0, 1.0);
  }
  initial_temp_ = temp_in_;
}

IntensityProfile Hotspot::profile(std::size_t /*iter*/) const { return config_.profile; }

void Hotspot::setup(cudalite::Runtime& rt) {
  temp_in_ = initial_temp_;
  const std::size_t n = temp_in_.size();
  temp_out_.assign(n, 0.0);
  dev_temp_a_ = rt.alloc<double>(n);
  dev_temp_b_ = rt.alloc<double>(n);
  dev_power_ = rt.alloc<double>(n);
  rt.memcpy_h2d(dev_temp_a_, temp_in_);
  rt.memcpy_h2d(dev_power_, power_);
  ran_ = false;
}

void Hotspot::reference_step(const std::vector<double>& in, std::vector<double>& out,
                             const std::vector<double>& power, std::size_t rows,
                             std::size_t cols) {
  auto at = [cols](const std::vector<double>& g, std::size_t r, std::size_t c) {
    return g[r * cols + c];
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double center = at(in, r, c);
      const double north = r > 0 ? at(in, r - 1, c) : center;
      const double south = r + 1 < rows ? at(in, r + 1, c) : center;
      const double west = c > 0 ? at(in, r, c - 1) : center;
      const double east = c + 1 < cols ? at(in, r, c + 1) : center;
      out[r * cols + c] = center + kRy * (north + south - 2.0 * center) +
                          kRx * (west + east - 2.0 * center) +
                          kRz * (kAmbient - center) +
                          kPowerScale * power[r * cols + c];
    }
  }
}

void Hotspot::step_rows(std::size_t begin, std::size_t end) {
  const std::size_t rows = config_.rows;
  const std::size_t cols = config_.cols;
  auto at = [this, cols](std::size_t r, std::size_t c) { return temp_in_[r * cols + c]; };
  for (std::size_t r = begin; r < end; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double center = at(r, c);
      const double north = r > 0 ? at(r - 1, c) : center;
      const double south = r + 1 < rows ? at(r + 1, c) : center;
      const double west = c > 0 ? at(r, c - 1) : center;
      const double east = c + 1 < cols ? at(r, c + 1) : center;
      temp_out_[r * cols + c] = center + kRy * (north + south - 2.0 * center) +
                                kRx * (west + east - 2.0 * center) +
                                kRz * (kAmbient - center) +
                                kPowerScale * power_[r * cols + c];
    }
  }
}

void Hotspot::gpu_chunk(std::size_t begin, std::size_t end, std::size_t /*iter*/) {
  step_rows(begin, end);
}

void Hotspot::cpu_chunk(std::size_t begin, std::size_t end, std::size_t /*iter*/) {
  step_rows(begin, end);
}

void Hotspot::finish_iteration(cudalite::Runtime& /*rt*/, std::size_t /*iter*/) {
  // Barrier point: both halves have written temp_out_; swap buffers.
  std::swap(temp_in_, temp_out_);
}

void Hotspot::teardown(cudalite::Runtime& rt) {
  // Mirror the device-side round trip of the real application.
  rt.memcpy_h2d(dev_temp_b_, temp_in_);
  rt.memcpy_d2h(result_, dev_temp_b_);
  rt.free(dev_temp_a_);
  rt.free(dev_temp_b_);
  rt.free(dev_power_);
  ran_ = true;
}

bool Hotspot::verify() const {
  if (!ran_) return false;
  std::vector<double> in = initial_temp_;
  std::vector<double> out(in.size(), 0.0);
  for (std::size_t it = 0; it < config_.iterations; ++it) {
    reference_step(in, out, power_, config_.rows, config_.cols);
    std::swap(in, out);
  }
  if (result_.size() != in.size()) return false;
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (std::fabs(result_[i] - in[i]) > 1e-9) return false;
  }
  return true;
}

}  // namespace gg::workloads
