// hotspot (Rodinia): thermal stencil, the paper's second division workload.
//
// An iteration is one barrier step of the transient temperature solver
// (the "common barrier point" iteration type of Section IV).  Rows are the
// division unit: rows [0, split) update on the CPU path, [split, R) on the
// GPU path; both read the previous-step grid, so the split is race-free.
// `finish_iteration` swaps the double buffers.
//
// Table II: 2048 x 2048 grid, 600 iterations; medium core utilization, low
// memory utilization.  The Rodinia hotspot GPU kernel is halo-bound, which is
// why the measured energy-optimal division on the testbed is 50/50
// (Section VII-B): the profile's cpu_slowdown of 1.0 encodes that.
#pragma once

#include <cstdint>
#include <vector>

#include "src/workloads/workload.h"

namespace gg::workloads {

struct HotspotConfig {
  std::size_t rows{192};  // real (host) problem size
  std::size_t cols{192};
  std::size_t iterations{30};
  std::uint64_t seed{7};
  /// Table II class: medium core, low memory; 2048 sim rows per iteration,
  /// unit_time set so one iteration spans ~123 s (>= 40x scaling interval).
  IntensityProfile profile{0.50, 0.22, 6.0e-2, 2048.0, 1.0, 0.85};
};

class Hotspot final : public ProfiledWorkload {
 public:
  explicit Hotspot(HotspotConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "hotspot"; }
  [[nodiscard]] std::string_view description() const override {
    return "Medium core utilization, low memory utilization";
  }
  [[nodiscard]] std::size_t iterations() const override { return config_.iterations; }
  [[nodiscard]] bool divisible() const override { return true; }
  [[nodiscard]] IntensityProfile profile(std::size_t iter) const override;

  void setup(cudalite::Runtime& rt) override;
  void finish_iteration(cudalite::Runtime& rt, std::size_t iter) override;
  void teardown(cudalite::Runtime& rt) override;
  [[nodiscard]] bool verify() const override;

  [[nodiscard]] const HotspotConfig& config() const { return config_; }

 protected:
  [[nodiscard]] std::size_t real_items() const override { return config_.rows; }
  void gpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) override;
  void cpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) override;

 private:
  void step_rows(std::size_t begin, std::size_t end);
  static void reference_step(const std::vector<double>& in, std::vector<double>& out,
                             const std::vector<double>& power, std::size_t rows,
                             std::size_t cols);

  HotspotConfig config_;
  std::vector<double> temp_in_;
  std::vector<double> temp_out_;
  std::vector<double> power_;
  std::vector<double> initial_temp_;
  std::vector<double> result_;
  cudalite::DeviceBuffer<double> dev_temp_a_;
  cudalite::DeviceBuffer<double> dev_temp_b_;
  cudalite::DeviceBuffer<double> dev_power_;
  bool ran_{false};
};

}  // namespace gg::workloads
