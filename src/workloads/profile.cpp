#include "src/workloads/profile.h"

#include <algorithm>
#include <stdexcept>

namespace gg::workloads {

cudalite::WorkEstimate make_gpu_estimate(const sim::GpuSpec& gpu, Megahertz core_peak,
                                         Megahertz mem_peak, const IntensityProfile& p,
                                         double units) {
  if (p.core_util < 0.0 || p.core_util > 1.0 || p.mem_util < 0.0 || p.mem_util > 1.0) {
    throw std::invalid_argument("IntensityProfile: utilization out of [0,1]");
  }
  if (p.unit_time_s <= 0.0) throw std::invalid_argument("IntensityProfile: unit_time <= 0");
  if (units <= 0.0) throw std::invalid_argument("make_gpu_estimate: units <= 0");

  cudalite::WorkEstimate e;
  e.units = units;
  e.core_cycles_per_unit = p.core_util * p.unit_time_s * gpu.core_throughput(core_peak);
  e.mem_bytes_per_unit = p.mem_util * p.unit_time_s * gpu.mem_bandwidth(mem_peak);
  // The pipelined-serialization floor: at peak clocks the unit takes exactly
  // unit_time_s and both utilizations equal their targets.
  e.overhead_per_unit_s = p.unit_time_s;
  return e;
}

sim::CpuWork make_cpu_work(const sim::CpuSpec& cpu, Megahertz cpu_peak,
                           const IntensityProfile& p, double units) {
  if (units <= 0.0) throw std::invalid_argument("make_cpu_work: units <= 0");
  if (p.cpu_slowdown <= 0.0) throw std::invalid_argument("IntensityProfile: cpu_slowdown <= 0");
  if (p.cpu_compute_fraction < 0.0 || p.cpu_compute_fraction > 1.0) {
    throw std::invalid_argument("IntensityProfile: cpu_compute_fraction out of [0,1]");
  }
  const double unit_time_cpu = p.cpu_slowdown * p.unit_time_s;
  sim::CpuWork w;
  w.units = units;
  w.ops_per_unit = p.cpu_compute_fraction * unit_time_cpu * cpu.throughput(cpu_peak);
  w.overhead_per_unit = Seconds{(1.0 - p.cpu_compute_fraction) * unit_time_cpu};
  w.active_cores = 0;  // all cores (the OpenMP side of Rodinia)
  return w;
}

}  // namespace gg::workloads
