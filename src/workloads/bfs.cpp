#include "src/workloads/bfs.h"

#include <algorithm>
#include <limits>

#include "src/common/rng.h"

namespace gg::workloads {

namespace {
constexpr int kInf = std::numeric_limits<int>::max() / 2;
}

Bfs::Bfs(BfsConfig config) : config_(config) {
  Rng rng(config_.seed);
  const std::size_t n = config_.nodes;
  // Random out-edges, then transpose into an in-edge CSR.  A chain edge
  // v-1 -> v guarantees connectivity so distances are finite.
  std::vector<std::vector<std::size_t>> in_adj(n);
  for (std::size_t v = 1; v < n; ++v) in_adj[v].push_back(v - 1);
  const std::size_t extra_edges = n * (config_.avg_degree - 1);
  for (std::size_t e = 0; e < extra_edges; ++e) {
    const std::size_t u = rng.uniform_int(n);
    const std::size_t v = rng.uniform_int(n);
    if (u != v) in_adj[v].push_back(u);
  }
  row_offsets_.resize(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) row_offsets_[v + 1] = row_offsets_[v] + in_adj[v].size();
  in_neighbors_.resize(row_offsets_[n]);
  for (std::size_t v = 0; v < n; ++v) {
    std::copy(in_adj[v].begin(), in_adj[v].end(),
              in_neighbors_.begin() + static_cast<std::ptrdiff_t>(row_offsets_[v]));
  }
}

IntensityProfile Bfs::profile(std::size_t /*iter*/) const { return config_.profile; }

void Bfs::setup(cudalite::Runtime& rt) {
  const std::size_t n = config_.nodes;
  dist_in_.assign(n, kInf);
  dist_in_[0] = 0;  // source
  dist_out_ = dist_in_;
  dev_dist_ = rt.alloc<int>(n);
  rt.memcpy_h2d(dev_dist_, dist_in_);
  ran_ = false;
}

void Bfs::gpu_chunk(std::size_t begin, std::size_t end, std::size_t /*iter*/) {
  for (std::size_t v = begin; v < end; ++v) {
    int best = dist_in_[v];
    for (std::size_t e = row_offsets_[v]; e < row_offsets_[v + 1]; ++e) {
      const int cand = dist_in_[in_neighbors_[e]];
      if (cand < kInf && cand + 1 < best) best = cand + 1;
    }
    dist_out_[v] = best;
  }
}

void Bfs::cpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) {
  gpu_chunk(begin, end, iter);  // identical relaxation
}

void Bfs::finish_iteration(cudalite::Runtime& /*rt*/, std::size_t /*iter*/) {
  std::swap(dist_in_, dist_out_);
}

void Bfs::teardown(cudalite::Runtime& rt) {
  rt.memcpy_h2d(dev_dist_, dist_in_);
  rt.memcpy_d2h(result_, dev_dist_);
  rt.free(dev_dist_);
  ran_ = true;
}

bool Bfs::verify() const {
  if (!ran_) return false;
  // Serial reference: identical rounds of relaxation.
  const std::size_t n = config_.nodes;
  std::vector<int> in(n, kInf);
  std::vector<int> out(n, kInf);
  in[0] = 0;
  for (std::size_t it = 0; it < config_.iterations; ++it) {
    for (std::size_t v = 0; v < n; ++v) {
      int best = in[v];
      for (std::size_t e = row_offsets_[v]; e < row_offsets_[v + 1]; ++e) {
        const int cand = in[in_neighbors_[e]];
        if (cand < kInf && cand + 1 < best) best = cand + 1;
      }
      out[v] = best;
    }
    std::swap(in, out);
  }
  return result_ == in;
}

}  // namespace gg::workloads
