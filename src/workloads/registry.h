// Name-based workload factory covering the full Table II suite.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/workloads/workload.h"

namespace gg::workloads {

/// Names of all Table II workloads, in the paper's order.
[[nodiscard]] std::vector<std::string> all_workload_names();

/// Construct a workload by its Table II name ("bfs", "lud", "nbody",
/// "pathfinder" (PF), "QG", "srad_v2", "hotspot", "kmeans",
/// "streamcluster").  Throws std::invalid_argument for unknown names.
[[nodiscard]] WorkloadPtr make_workload(std::string_view name);

/// The two divisible workloads the paper's two-tier experiments use.
[[nodiscard]] std::vector<std::string> divisible_workload_names();

/// The asynchronous pipeline workloads ("kmeans_pipeline", "srad_stream").
/// Not part of all_workload_names(): the Table II suite is the paper's
/// fixed nine; campaigns opt in by listing them explicitly.
[[nodiscard]] std::vector<std::string> pipeline_workload_names();

/// Construction-time tuning applied by make_workload to the pipeline
/// workloads (the CLI maps --pipeline / --stream-depth / --chunks here).
struct PipelineTuning {
  /// False builds the synchronous baseline: same ops, one stream, a
  /// blocking synchronize per chunk.
  bool pipelined{true};
  /// Double-buffer slots (concurrent in-flight chunks).
  std::size_t stream_depth{3};
  /// Chunks (kmeans_pipeline) / frames (srad_stream) per iteration.
  std::size_t chunks{8};
};

/// Replace the process-wide pipeline tuning.  Call before constructing
/// workloads; concurrent make_workload calls (campaign workers) only read.
void set_pipeline_tuning(const PipelineTuning& tuning);
[[nodiscard]] PipelineTuning pipeline_tuning();

}  // namespace gg::workloads
