// Name-based workload factory covering the full Table II suite.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/workloads/workload.h"

namespace gg::workloads {

/// Names of all Table II workloads, in the paper's order.
[[nodiscard]] std::vector<std::string> all_workload_names();

/// Construct a workload by its Table II name ("bfs", "lud", "nbody",
/// "pathfinder" (PF), "QG", "srad_v2", "hotspot", "kmeans",
/// "streamcluster").  Throws std::invalid_argument for unknown names.
[[nodiscard]] WorkloadPtr make_workload(std::string_view name);

/// The two divisible workloads the paper's two-tier experiments use.
[[nodiscard]] std::vector<std::string> divisible_workload_names();

}  // namespace gg::workloads
