// Workload intensity profiles and calibration helpers.
//
// Each workload in Table II is characterized by how hard it drives the GPU
// cores and memory (and how fast a CPU-side implementation is relative to the
// GPU).  Profiles are specified in terms of *target utilizations at peak
// frequencies*; `make_gpu_estimate` converts them into the work quantities
// (cycles, bytes, overhead) the device model consumes, so the utilization a
// monitor would measure at peak clocks matches the target by construction —
// and responds physically when clocks change.
#pragma once

#include <cstddef>

#include "src/cudalite/api.h"
#include "src/sim/specs.h"

namespace gg::workloads {

/// Target behaviour of one simulated work unit.
struct IntensityProfile {
  /// GPU core utilization this phase shows at peak clocks, in [0, 1].
  double core_util{0.5};
  /// GPU memory utilization at peak clocks, in [0, 1].
  double mem_util{0.5};
  /// Simulated duration of one unit at peak clocks, seconds.
  double unit_time_s{1e-3};
  /// Units per iteration (the "enlarged" Table II problem sizes).
  double units_per_iteration{1000.0};
  /// CPU time per unit / GPU time per unit, both at peak clocks.  6 means
  /// the GPU processes a unit 6x faster; time-balanced division then sits
  /// near r = 1/(1+6).
  double cpu_slowdown{8.0};
  /// Fraction of the CPU unit time that scales with CPU frequency (the rest
  /// is memory-stall/overhead time).
  double cpu_compute_fraction{0.85};
};

/// Build the GPU work estimate for `units` units of the given profile on the
/// given hardware.  Peak-clock utilization equals the profile targets:
///   cycles/unit = core_util * unit_time * core_throughput(peak)
///   bytes/unit  = mem_util  * unit_time * mem_bandwidth(peak)
///   overhead    = unit_time   (the pipelined serialization floor)
[[nodiscard]] cudalite::WorkEstimate make_gpu_estimate(const sim::GpuSpec& gpu,
                                                       Megahertz core_peak,
                                                       Megahertz mem_peak,
                                                       const IntensityProfile& p,
                                                       double units);

/// Build the CPU work description for `units` units of the profile:
/// per-unit CPU time at peak = cpu_slowdown * unit_time, split into a
/// frequency-scaling ops component and a fixed overhead component.
[[nodiscard]] sim::CpuWork make_cpu_work(const sim::CpuSpec& cpu, Megahertz cpu_peak,
                                         const IntensityProfile& p, double units);

}  // namespace gg::workloads
