#include "src/workloads/qrng.h"

#include <cmath>

namespace gg::workloads {

Qrng::Qrng(QrngConfig config) : config_(config) {}

IntensityProfile Qrng::profile(std::size_t iter) const {
  const std::size_t phase = (iter / config_.phase_length) % 2;
  return phase == 0 ? config_.heavy_profile : config_.light_profile;
}

double Qrng::radical_inverse(std::uint64_t index) {
  // Reverse the bits of the index and interpret as a binary fraction.
  std::uint64_t v = index;
  v = ((v >> 1) & 0x5555555555555555ULL) | ((v & 0x5555555555555555ULL) << 1);
  v = ((v >> 2) & 0x3333333333333333ULL) | ((v & 0x3333333333333333ULL) << 2);
  v = ((v >> 4) & 0x0F0F0F0F0F0F0F0FULL) | ((v & 0x0F0F0F0F0F0F0F0FULL) << 4);
  v = ((v >> 8) & 0x00FF00FF00FF00FFULL) | ((v & 0x00FF00FF00FF00FFULL) << 8);
  v = ((v >> 16) & 0x0000FFFF0000FFFFULL) | ((v & 0x0000FFFF0000FFFFULL) << 16);
  v = (v >> 32) | (v << 32);
  return static_cast<double>(v >> 11) * 0x1.0p-53;
}

void Qrng::setup(cudalite::Runtime& rt) {
  values_.assign(config_.points, 0.0);
  sums_.clear();
  dev_values_ = rt.alloc<double>(config_.points);
  ran_ = false;
}

void Qrng::gpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) {
  // Iteration `iter` emits points [iter*N, (iter+1)*N) of Sobol dimension
  // iter mod kDimensions (the SDK generator fills one dimension per pass).
  const std::uint64_t base = static_cast<std::uint64_t>(iter) * config_.points +
                             config_.seed;
  const std::size_t dim = iter % kDimensions;
  const std::size_t phase = (iter / config_.phase_length) % 2;
  for (std::size_t i = begin; i < end; ++i) {
    const double u = sobol_.sample(base + i + 1, dim);
    if (phase == 0) {
      // Heavy phase: map through an inverse-CND-like transform (Moro's
      // rational approximation shape; exact constants are irrelevant to the
      // reproduction, determinism is what matters).
      const double x = u - 0.5;
      const double r = x * x;
      values_[i] = x * (2.50662823884 + r * (-18.61500062529 + r * 41.39119773534)) /
                   (1.0 + r * (-8.47351093090 + r * 23.08336743743));
    } else {
      // Light phase: plain sequence output.
      values_[i] = u;
    }
  }
}

void Qrng::cpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) {
  gpu_chunk(begin, end, iter);
}

void Qrng::finish_iteration(cudalite::Runtime& rt, std::size_t /*iter*/) {
  if (!rt.compute_enabled()) return;
  double s = 0.0;
  for (const double v : values_) s += v;
  sums_.push_back(s);
}

void Qrng::teardown(cudalite::Runtime& rt) {
  rt.memcpy_h2d(dev_values_, values_);
  std::vector<double> back;
  rt.memcpy_d2h(back, dev_values_);
  rt.free(dev_values_);
  ran_ = !back.empty();
}

bool Qrng::verify() const {
  if (!ran_ || sums_.size() != config_.iterations) return false;
  // Recompute every iteration's reduction serially.
  for (std::size_t it = 0; it < config_.iterations; ++it) {
    const std::uint64_t base = static_cast<std::uint64_t>(it) * config_.points +
                               config_.seed;
    const std::size_t dim = it % kDimensions;
    const std::size_t phase = (it / config_.phase_length) % 2;
    double s = 0.0;
    for (std::size_t i = 0; i < config_.points; ++i) {
      const double u = sobol_.sample(base + i + 1, dim);
      if (phase == 0) {
        const double x = u - 0.5;
        const double r = x * x;
        s += x * (2.50662823884 + r * (-18.61500062529 + r * 41.39119773534)) /
             (1.0 + r * (-8.47351093090 + r * 23.08336743743));
      } else {
        s += u;
      }
    }
    if (std::fabs(s - sums_[it]) > 1e-9 * (1.0 + std::fabs(s))) return false;
  }
  return true;
}

}  // namespace gg::workloads
