// srad_stream: streaming diffusion over an unbounded frame sequence.
//
// Each iteration pulls `frames_per_iteration` fresh frames from a seeded
// generator keyed by the GLOBAL frame index (so host memory stays
// O(frames_per_iteration x frame), independent of stream length), pushes each
// through upload -> diffusion kernel -> download -> CPU checksum, and folds
// the per-frame checksums into a running total in frame order at the
// iteration barrier.  With `pipelined` on, frames ride `stream_depth`
// in-order streams round-robin (slot buffers double-buffer the device side);
// with it off the same ops run on one stream with a blocking synchronize per
// frame.  Transfers dominate by construction (`sim_*_bytes`), so the pipeline
// speedup measures DMA/kernel overlap.
#pragma once

#include <cstdint>
#include <vector>

#include "src/workloads/workload.h"

namespace gg::workloads {

struct SradStreamConfig {
  std::size_t rows{64};
  std::size_t cols{64};
  std::size_t iterations{10};
  /// Frames streamed per iteration (the CLI's --chunks).
  std::size_t frames_per_iteration{8};
  /// Concurrent in-flight frames when pipelined.
  std::size_t stream_depth{3};
  bool pipelined{true};
  std::uint64_t seed{7};
  /// Diffusion update factor.
  double lambda{0.125};
  /// Simulated transfer sizes per frame (up ~0.5 s, down ~0.2 s at 3 GB/s).
  double sim_h2d_bytes{1.5e9};
  double sim_d2h_bytes{6.0e8};
  /// Per-frame CPU checksum time at peak clocks.
  double checksum_seconds{0.10};
  /// Diffusion-kernel intensity: unit_time_s is the per-frame kernel time at
  /// peak clocks (memory-heavy, like srad_v2).
  IntensityProfile profile{0.25, 0.80, 0.35, 8.0, 1.0, 0.85};
};

class SradStream final : public Workload {
 public:
  explicit SradStream(SradStreamConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "srad_stream"; }
  [[nodiscard]] std::string_view description() const override {
    return "Streaming diffusion over unbounded chunked frames; transfer-bound";
  }
  [[nodiscard]] std::size_t iterations() const override { return config_.iterations; }
  [[nodiscard]] bool divisible() const override { return false; }
  [[nodiscard]] IntensityProfile profile(std::size_t iter) const override;

  void setup(cudalite::Runtime& rt) override;
  void run_iteration(cudalite::Runtime& rt, cudalite::Stream& stream, std::size_t iter,
                     double cpu_ratio, std::function<void()> on_gpu_done,
                     std::function<void()> on_cpu_done) override;
  void run_iteration_multi(cudalite::Runtime& rt, std::vector<cudalite::Stream>& streams,
                           std::size_t iter, const ShareVector& shares,
                           std::function<void(std::size_t)> on_done) override;
  void finish_iteration(cudalite::Runtime& rt, std::size_t iter) override;
  void teardown(cudalite::Runtime& rt) override;
  [[nodiscard]] bool verify() const override;

  [[nodiscard]] const SradStreamConfig& config() const { return config_; }
  [[nodiscard]] double checksum() const { return checksum_; }

 private:
  [[nodiscard]] std::size_t frame_elems() const { return config_.rows * config_.cols; }
  /// Deterministic frame synthesis keyed by the global frame index.
  void generate_frame(std::size_t global_frame, double* out) const;
  /// One diffusion step over rows [row_begin, row_end) of `in` into `out`.
  void diffuse_rows(const double* in, double* out, std::size_t row_begin,
                    std::size_t row_end) const;

  SradStreamConfig config_;
  std::vector<double> scratch_frame_;            // reused across enqueues (eager H2D)
  std::vector<double> host_out_;                 // frames_per_iteration x frame
  std::vector<double> frame_checksums_;          // per frame-in-iteration
  std::vector<cudalite::DeviceBuffer<double>> dev_in_;   // per slot
  std::vector<cudalite::DeviceBuffer<double>> dev_out_;  // per slot
  std::vector<cudalite::Stream> streams_;
  double checksum_{0.0};
  std::size_t pending_d2h_{0};
  std::size_t pending_checksums_{0};
  bool ran_{false};
};

}  // namespace gg::workloads
