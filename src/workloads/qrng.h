// QG / quasirandomGenerator (CUDA SDK): Niederreiter-style quasirandom
// sequence generation with an inverse-CND transform pass.
//
// The generator alternates between a compute-heavy phase (sequence +
// Moro-inverse transform) and a light bookkeeping phase, which is why the
// paper classifies QG as "utilizations highly fluctuate" (Table II) — the
// case that stresses the WMA scaler's responsiveness.
//
// Table II: 600 iterations, 16777216 points.
#pragma once

#include <cstdint>
#include <vector>

#include "src/workloads/sobol.h"
#include "src/workloads/workload.h"

namespace gg::workloads {

struct QrngConfig {
  std::size_t points{8192};   // real points per iteration
  std::size_t iterations{45}; // paper enlargement: 600 (configurable)
  std::uint64_t seed{59};
  /// Heavy phase (generation + transform): high core, low-moderate memory.
  IntensityProfile heavy_profile{0.90, 0.30, 8.0e-8, 16777216.0, 10.0, 0.9};
  /// Light phase (reseed/bookkeeping): low everything.
  IntensityProfile light_profile{0.25, 0.12, 8.0e-8, 16777216.0, 10.0, 0.9};
  /// Phase length in iterations (alternating heavy/light).
  std::size_t phase_length{5};
};

class Qrng final : public ProfiledWorkload {
 public:
  explicit Qrng(QrngConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "QG"; }
  [[nodiscard]] std::string_view description() const override {
    return "Utilizations highly fluctuate";
  }
  [[nodiscard]] std::size_t iterations() const override { return config_.iterations; }
  [[nodiscard]] bool divisible() const override { return false; }
  [[nodiscard]] IntensityProfile profile(std::size_t iter) const override;

  void setup(cudalite::Runtime& rt) override;
  void finish_iteration(cudalite::Runtime& rt, std::size_t iter) override;
  void teardown(cudalite::Runtime& rt) override;
  [[nodiscard]] bool verify() const override;

  /// Van der Corput radical inverse in base 2 of `index` (dimension 0 of
  /// the Sobol sequence; kept for reference and tests).
  [[nodiscard]] static double radical_inverse(std::uint64_t index);

  /// Number of Sobol dimensions cycled across iterations.
  static constexpr std::size_t kDimensions = 4;

  [[nodiscard]] const std::vector<double>& iteration_sums() const { return sums_; }

 protected:
  [[nodiscard]] std::size_t real_items() const override { return config_.points; }
  void gpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) override;
  void cpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) override;

 private:
  QrngConfig config_;
  Sobol sobol_{kDimensions};
  std::vector<double> values_;  // per-point output of the current iteration
  std::vector<double> sums_;    // per-iteration reduction results
  cudalite::DeviceBuffer<double> dev_values_;
  bool ran_{false};
};

}  // namespace gg::workloads
