// Sobol quasirandom sequence generator.
//
// The CUDA SDK `quasirandomGenerator` the paper enlarges as "QG" computes a
// Niederreiter/Sobol low-discrepancy sequence; this is a faithful
// multi-dimensional Sobol generator with Joe-Kuo style direction numbers for
// the first dimensions.  Dimension 0 degenerates to the van der Corput
// radical inverse.
#pragma once

#include <cstdint>
#include <vector>

namespace gg::workloads {

class Sobol {
 public:
  static constexpr std::size_t kMaxDimensions = 8;
  static constexpr int kBits = 52;  // fits a double's mantissa exactly

  /// Throws std::invalid_argument for dimensions outside [1, kMaxDimensions].
  explicit Sobol(std::size_t dimensions);

  [[nodiscard]] std::size_t dimensions() const { return v_.size(); }

  /// The `index`-th point's coordinate in dimension `dim`, in [0, 1).
  /// Points are indexed from 0 (point 0 is the origin, by convention).
  [[nodiscard]] double sample(std::uint64_t index, std::size_t dim) const;

  /// Convenience: all coordinates of one point.
  [[nodiscard]] std::vector<double> point(std::uint64_t index) const;

 private:
  // v_[dim][bit]: direction integers, kBits entries per dimension.
  std::vector<std::vector<std::uint64_t>> v_;
};

/// Star discrepancy proxy used in tests: the maximum deviation of the
/// empirical CDF from uniform over `n` points of dimension `dim`, evaluated
/// on a fixed grid of axis-aligned anchors.  Low-discrepancy sequences beat
/// pseudorandom ones by a wide margin on this metric.
[[nodiscard]] double uniformity_deviation(const Sobol& sobol, std::size_t dim,
                                          std::uint64_t n);

}  // namespace gg::workloads
