#include "src/workloads/trace_workload.h"

#include <stdexcept>
#include <string>

#include "src/common/csv.h"
#include "src/common/rng.h"

namespace gg::workloads {

TraceWorkload::TraceWorkload(std::vector<TracePhase> phases, std::uint64_t seed)
    : phases_(std::move(phases)), seed_(seed) {
  if (phases_.empty()) throw std::invalid_argument("TraceWorkload: empty trace");
  for (const auto& p : phases_) {
    if (p.core_util < 0.0 || p.core_util > 1.0 || p.mem_util < 0.0 || p.mem_util > 1.0) {
      throw std::invalid_argument("TraceWorkload: utilization out of [0,1]");
    }
    if (p.duration_s <= 0.0) {
      throw std::invalid_argument("TraceWorkload: non-positive phase duration");
    }
  }
}

TraceWorkload TraceWorkload::from_csv(std::istream& is) {
  std::vector<TracePhase> phases;
  std::string line;
  double prev_time = 0.0;
  bool have_prev = false;
  double prev_core = -1.0, prev_mem = -1.0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto fields = csv_parse_line(line);
    if (fields.size() < 3) {
      throw std::invalid_argument("TraceWorkload: need time_s,core_util,mem_util");
    }
    double t, core, mem;
    try {
      t = std::stod(fields[0]);
      core = std::stod(fields[1]);
      mem = std::stod(fields[2]);
    } catch (const std::exception&) {
      if (phases.empty() && !have_prev) continue;  // header row
      throw std::invalid_argument("TraceWorkload: unparsable row: " + line);
    }
    // Accept percentages.
    if (core > 1.0 || mem > 1.0) {
      core /= 100.0;
      mem /= 100.0;
    }
    if (have_prev) {
      const double dt = t - prev_time;
      if (dt <= 0.0) throw std::invalid_argument("TraceWorkload: non-increasing time");
      if (!phases.empty() && prev_core == phases.back().core_util &&
          prev_mem == phases.back().mem_util) {
        phases.back().duration_s += dt;  // merge equal consecutive samples
      } else {
        phases.push_back(TracePhase{prev_core, prev_mem, dt});
      }
    }
    prev_time = t;
    prev_core = core;
    prev_mem = mem;
    have_prev = true;
  }
  // Final sample: assume it holds for the median sampling interval (1 s for
  // nvidia-smi-style traces), approximated by the last phase's granularity.
  if (have_prev) {
    const double tail = phases.empty() ? 1.0 : phases.back().duration_s;
    if (!phases.empty() && prev_core == phases.back().core_util &&
        prev_mem == phases.back().mem_util) {
      phases.back().duration_s += tail;
    } else {
      phases.push_back(TracePhase{prev_core, prev_mem, tail});
    }
  }
  return TraceWorkload(std::move(phases));
}

IntensityProfile TraceWorkload::profile(std::size_t iter) const {
  if (iter >= phases_.size()) throw std::out_of_range("TraceWorkload: phase index");
  const TracePhase& p = phases_[iter];
  IntensityProfile prof;
  prof.core_util = p.core_util;
  prof.mem_util = p.mem_util;
  prof.units_per_iteration = 1000.0;
  prof.unit_time_s = p.duration_s / prof.units_per_iteration;
  prof.cpu_slowdown = 8.0;  // unused: trace replay is not divisible
  return prof;
}

Seconds TraceWorkload::trace_duration() const {
  double total = 0.0;
  for (const auto& p : phases_) total += p.duration_s;
  return Seconds{total};
}

void TraceWorkload::setup(cudalite::Runtime& /*rt*/) {
  checksums_.assign(kItems, 0);
  final_checksum_ = 0;
  ran_ = false;
}

void TraceWorkload::gpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) {
  // Real (if synthetic) computation: fold a hash per item so any split or
  // scheduling bug corrupts the checksum.
  for (std::size_t i = begin; i < end; ++i) {
    std::uint64_t s = seed_ ^ (iter * 0x9E3779B97F4A7C15ULL) ^ i;
    checksums_[i] ^= splitmix64(s);
  }
}

void TraceWorkload::cpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) {
  gpu_chunk(begin, end, iter);
}

void TraceWorkload::teardown(cudalite::Runtime& /*rt*/) {
  final_checksum_ = 0;
  for (const std::uint64_t c : checksums_) final_checksum_ ^= c;
  ran_ = true;
}

bool TraceWorkload::verify() const {
  if (!ran_) return false;
  std::uint64_t expected = 0;
  for (std::size_t iter = 0; iter < phases_.size(); ++iter) {
    for (std::size_t i = 0; i < kItems; ++i) {
      std::uint64_t s = seed_ ^ (iter * 0x9E3779B97F4A7C15ULL) ^ i;
      expected ^= splitmix64(s);
    }
  }
  return expected == final_checksum_;
}

}  // namespace gg::workloads
