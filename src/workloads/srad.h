// srad_v2 (Rodinia): speckle-reducing anisotropic diffusion.
//
// One iteration is one diffusion update of the image: each pixel computes a
// diffusion coefficient from its local gradients and relaxes toward its
// neighbours.  Rows are independent given the previous-step image, so a
// row-range split is race-free under double buffering.
//
// Table II: 2048 columns x 2048 rows; HIGH core utilization, MEDIUM memory
// utilization (the gradient arithmetic dominates, with significant image
// traffic).
#pragma once

#include <cstdint>
#include <vector>

#include "src/workloads/workload.h"

namespace gg::workloads {

struct SradConfig {
  std::size_t rows{128};
  std::size_t cols{128};
  std::size_t iterations{30};
  double lambda{0.05};
  std::uint64_t seed{67};
  /// Table II class: high core, medium memory; 2048 sim rows/iteration.
  IntensityProfile profile{0.88, 0.48, 8.0e-4, 2048.0, 11.0, 0.9};
};

class Srad final : public ProfiledWorkload {
 public:
  explicit Srad(SradConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "srad_v2"; }
  [[nodiscard]] std::string_view description() const override {
    return "High core utilization, medium memory utilization";
  }
  [[nodiscard]] std::size_t iterations() const override { return config_.iterations; }
  [[nodiscard]] bool divisible() const override { return false; }
  [[nodiscard]] IntensityProfile profile(std::size_t iter) const override;

  void setup(cudalite::Runtime& rt) override;
  void finish_iteration(cudalite::Runtime& rt, std::size_t iter) override;
  void teardown(cudalite::Runtime& rt) override;
  [[nodiscard]] bool verify() const override;

 protected:
  [[nodiscard]] std::size_t real_items() const override { return config_.rows; }
  void gpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) override;
  void cpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) override;

 private:
  void step_rows(const std::vector<double>& in, std::vector<double>& out,
                 std::size_t begin, std::size_t end) const;

  SradConfig config_;
  std::vector<double> img_in_;
  std::vector<double> img_out_;
  std::vector<double> initial_img_;
  std::vector<double> result_;
  cudalite::DeviceBuffer<double> dev_img_;
  bool ran_{false};
};

}  // namespace gg::workloads
