#include "src/workloads/registry.h"

#include <stdexcept>

#include "src/workloads/bfs.h"
#include "src/workloads/hotspot.h"
#include "src/workloads/kmeans.h"
#include "src/workloads/kmeans_pipeline.h"
#include "src/workloads/lud.h"
#include "src/workloads/nbody.h"
#include "src/workloads/pathfinder.h"
#include "src/workloads/qrng.h"
#include "src/workloads/srad.h"
#include "src/workloads/srad_stream.h"
#include "src/workloads/streamcluster.h"

namespace gg::workloads {

namespace {
/// Process-wide pipeline tuning; written by set_pipeline_tuning before runs,
/// only read by make_workload afterwards.
PipelineTuning g_pipeline_tuning{};
}  // namespace

std::vector<std::string> pipeline_workload_names() {
  return {"kmeans_pipeline", "srad_stream"};
}

void set_pipeline_tuning(const PipelineTuning& tuning) { g_pipeline_tuning = tuning; }

PipelineTuning pipeline_tuning() { return g_pipeline_tuning; }

std::vector<std::string> all_workload_names() {
  return {"bfs",     "lud",     "nbody",  "pathfinder", "QG",
          "srad_v2", "hotspot", "kmeans", "streamcluster"};
}

std::vector<std::string> divisible_workload_names() { return {"kmeans", "hotspot"}; }

WorkloadPtr make_workload(std::string_view name) {
  if (name == "bfs") return std::make_unique<Bfs>();
  if (name == "lud") return std::make_unique<Lud>();
  if (name == "nbody") return std::make_unique<Nbody>();
  if (name == "pathfinder" || name == "PF") return std::make_unique<Pathfinder>();
  if (name == "QG" || name == "qrng") return std::make_unique<Qrng>();
  if (name == "srad_v2" || name == "srad") return std::make_unique<Srad>();
  if (name == "hotspot") return std::make_unique<Hotspot>();
  if (name == "kmeans") return std::make_unique<Kmeans>();
  if (name == "streamcluster" || name == "SC") return std::make_unique<Streamcluster>();
  if (name == "kmeans_pipeline") {
    KmeansPipelineConfig cfg;
    cfg.pipelined = g_pipeline_tuning.pipelined;
    cfg.stream_depth = g_pipeline_tuning.stream_depth;
    cfg.chunks = g_pipeline_tuning.chunks;
    return std::make_unique<KmeansPipeline>(cfg);
  }
  if (name == "srad_stream") {
    SradStreamConfig cfg;
    cfg.pipelined = g_pipeline_tuning.pipelined;
    cfg.stream_depth = g_pipeline_tuning.stream_depth;
    cfg.frames_per_iteration = g_pipeline_tuning.chunks;
    return std::make_unique<SradStream>(cfg);
  }
  throw std::invalid_argument("unknown workload: " + std::string(name));
}

}  // namespace gg::workloads
