// bfs (Rodinia): level-synchronous breadth-first search.
//
// Structured as rounds of frontier relaxation (Bellman-Ford style): each
// iteration relaxes every vertex against its in-neighbours' distances from
// the previous round, which is exactly what the level-synchronous Rodinia
// kernel computes per launch and is race-free under a vertex-range split.
//
// Table II: 65536 iterations enlargement; high core AND high memory
// utilization — the class for which the paper reports the smallest scaling
// savings (throttling anything hurts).
#pragma once

#include <cstdint>
#include <vector>

#include "src/workloads/workload.h"

namespace gg::workloads {

struct BfsConfig {
  std::size_t nodes{8192};
  std::size_t avg_degree{8};
  /// Relaxation rounds.  The paper enlarges bfs to 65536 iterations for
  /// stable power readings; 96 rounds (~2.3 simulated minutes) is enough to
  /// amortize the clock ramp from the driver-default lowest levels.
  std::size_t iterations{96};
  std::uint64_t seed{11};
  /// Table II class: high core, high memory; 65536 sim units/iteration.
  IntensityProfile profile{0.88, 0.86, 2.2e-5, 65536.0, 12.0, 0.85};
};

class Bfs final : public ProfiledWorkload {
 public:
  explicit Bfs(BfsConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "bfs"; }
  [[nodiscard]] std::string_view description() const override {
    return "High core and memory utilization";
  }
  [[nodiscard]] std::size_t iterations() const override { return config_.iterations; }
  [[nodiscard]] bool divisible() const override { return false; }
  [[nodiscard]] IntensityProfile profile(std::size_t iter) const override;

  void setup(cudalite::Runtime& rt) override;
  void finish_iteration(cudalite::Runtime& rt, std::size_t iter) override;
  void teardown(cudalite::Runtime& rt) override;
  [[nodiscard]] bool verify() const override;

  [[nodiscard]] const std::vector<int>& distances() const { return result_; }

 protected:
  [[nodiscard]] std::size_t real_items() const override { return config_.nodes; }
  void gpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) override;
  void cpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) override;

 private:
  BfsConfig config_;
  // CSR of in-edges.
  std::vector<std::size_t> row_offsets_;
  std::vector<std::size_t> in_neighbors_;
  std::vector<int> dist_in_;
  std::vector<int> dist_out_;
  std::vector<int> result_;
  cudalite::DeviceBuffer<int> dev_dist_;
  bool ran_{false};
};

}  // namespace gg::workloads
