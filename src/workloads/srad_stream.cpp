#include "src/workloads/srad_stream.h"

#include <cmath>
#include <stdexcept>

#include "src/common/annotations.h"
#include "src/common/rng.h"
#include "src/sim/fault.h"

namespace gg::workloads {

SradStream::SradStream(SradStreamConfig config) : config_(config) {
  if (config_.rows < 2 || config_.cols < 2) {
    throw std::invalid_argument("SradStream: frame must be at least 2x2");
  }
  if (config_.frames_per_iteration == 0) {
    throw std::invalid_argument("SradStream: frames_per_iteration must be >= 1");
  }
  if (config_.stream_depth == 0) {
    throw std::invalid_argument("SradStream: stream_depth must be >= 1");
  }
}

IntensityProfile SradStream::profile(std::size_t /*iter*/) const {
  IntensityProfile p = config_.profile;
  p.units_per_iteration = static_cast<double>(config_.frames_per_iteration);
  return p;
}

void SradStream::generate_frame(std::size_t global_frame, double* out) const {
  // One independent generator per frame so any frame is reproducible without
  // the ones before it (the O(chunk)-memory property of the stream).
  Rng rng(config_.seed + 0x9E3779B97F4A7C15ULL * (global_frame + 1));
  for (std::size_t i = 0; i < frame_elems(); ++i) out[i] = rng.uniform(0.0, 255.0);
}

void SradStream::diffuse_rows(const double* in, double* out, std::size_t row_begin,
                              std::size_t row_end) const {
  const std::size_t rows = config_.rows;
  const std::size_t cols = config_.cols;
  for (std::size_t r = row_begin; r < row_end; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double x = in[r * cols + c];
      const double n = in[(r == 0 ? r : r - 1) * cols + c];
      const double s = in[(r == rows - 1 ? r : r + 1) * cols + c];
      const double w = in[r * cols + (c == 0 ? c : c - 1)];
      const double e = in[r * cols + (c == cols - 1 ? c : c + 1)];
      out[r * cols + c] = x + config_.lambda * (n + s + w + e - 4.0 * x);
    }
  }
}

void SradStream::setup(cudalite::Runtime& rt) {
  const std::size_t slots = config_.pipelined ? config_.stream_depth : 1;
  dev_in_.clear();
  dev_out_.clear();
  for (std::size_t s = 0; s < slots; ++s) {
    dev_in_.push_back(rt.alloc<double>(frame_elems()));
    dev_out_.push_back(rt.alloc<double>(frame_elems()));
  }
  scratch_frame_.assign(frame_elems(), 0.0);
  host_out_.assign(config_.frames_per_iteration * frame_elems(), 0.0);
  frame_checksums_.assign(config_.frames_per_iteration, 0.0);
  streams_.clear();
  const std::size_t n_streams = config_.pipelined ? config_.stream_depth : 1;
  for (std::size_t s = 0; s < n_streams; ++s) streams_.push_back(rt.create_stream());
  checksum_ = 0.0;
  ran_ = false;
}

void SradStream::run_iteration(cudalite::Runtime& rt, cudalite::Stream& /*stream*/,
                               std::size_t iter, double /*cpu_ratio*/,
                               std::function<void()> on_gpu_done,
                               std::function<void()> on_cpu_done) {
  if (iter >= config_.iterations) throw std::out_of_range("SradStream: iteration index");
  auto& platform = rt.platform();
  const cudalite::WorkEstimate est =
      make_gpu_estimate(platform.gpu().spec(), platform.gpu().core_table().peak(),
                        platform.gpu().mem_table().peak(), profile(iter), 1.0);
  IntensityProfile cp = config_.profile;
  cp.unit_time_s = config_.checksum_seconds;
  cp.cpu_slowdown = 1.0;
  const sim::CpuWork checksum_work =
      make_cpu_work(platform.cpu().spec(), platform.cpu().table().peak(), cp, 1.0);

  const std::size_t fpi = config_.frames_per_iteration;
  pending_d2h_ = fpi;
  pending_checksums_ = fpi;

  for (std::size_t f = 0; f < fpi; ++f) {
    const std::size_t slot = config_.pipelined ? f % config_.stream_depth : 0;
    cudalite::Stream& s = streams_[slot];
    const std::size_t global_frame = iter * fpi + f;

    // Stage 1: synthesize the next frame and upload it.  The real copy is
    // eager (host program order), so the single scratch buffer is safe to
    // reuse even though the simulated transfers overlap.
    if (rt.compute_enabled()) generate_frame(global_frame, scratch_frame_.data());
    rt.memcpy_h2d_async(s, dev_in_[slot], scratch_frame_, config_.sim_h2d_bytes);

    // Stage 2: diffusion step, row-parallel.  In-order stream: the kernel
    // cannot start before the slot's upload landed.
    if (!rt.launch_range(
            s, config_.rows, est,
            [this, slot](std::size_t b, std::size_t e) {
              diffuse_rows(dev_in_[slot].data(), dev_out_[slot].data(), b, e);
            })) {
      // Rejected launch: force-complete inline so the downstream D2H still
      // moves correct data (degradation recorded; kernel charge lost).
      sim::FaultInjector* faults = platform.faults();
      if (faults != nullptr) {
        faults->note(sim::FaultChannel::kHarness, sim::FaultOutcome::kForcedCompletion,
                     s.device());
      }
      if (rt.compute_enabled()) diffuse_rows(dev_in_[slot].data(), dev_out_[slot].data(),
                                             0, config_.rows);
    }

    // Stage 3: download into the frame's own host region (per frame, never
    // per slot — a later frame's eager copy must not clobber what this
    // frame's checksum stage reads at simulated completion).
    double* frame_out = &host_out_[f * frame_elems()];
    rt.memcpy_d2h_async(
        s, frame_out, dev_out_[slot], frame_elems(), config_.sim_d2h_bytes,
        [this, &rt, f, frame_out, checksum_work, on_gpu_done, on_cpu_done]
        GG_PIPELINE_STAGE {
          auto signal = [this, on_cpu_done] {
            if (--pending_checksums_ == 0 && on_cpu_done) on_cpu_done();
          };
          const bool ok = rt.host_submit(
              checksum_work,
              [this, f, frame_out] {
                double sum = 0.0;
                for (std::size_t i = 0; i < frame_elems(); ++i) sum += frame_out[i];
                frame_checksums_[f] = sum;
              },
              signal);
          if (!ok) {
            sim::FaultInjector* faults = rt.platform().faults();
            if (faults != nullptr) {
              faults->note(sim::FaultChannel::kHarness,
                           sim::FaultOutcome::kForcedCompletion);
            }
            if (rt.compute_enabled()) {
              double sum = 0.0;
              for (std::size_t i = 0; i < frame_elems(); ++i) sum += frame_out[i];
              frame_checksums_[f] = sum;
            }
            signal();
          }
          if (--pending_d2h_ == 0 && on_gpu_done) on_gpu_done();
        });

    if (!config_.pipelined) rt.synchronize(s);
  }
}

void SradStream::run_iteration_multi(cudalite::Runtime& rt,
                                     std::vector<cudalite::Stream>& streams,
                                     std::size_t iter, const ShareVector& /*shares*/,
                                     std::function<void(std::size_t)> on_done) {
  for (std::size_t k = 1; k < streams.size(); ++k) {
    if (on_done) on_done(k + 1);
  }
  run_iteration(
      rt, streams[0], iter, 0.0, [on_done] { if (on_done) on_done(1); },
      [on_done] { if (on_done) on_done(0); });
}

void SradStream::finish_iteration(cudalite::Runtime& rt, std::size_t /*iter*/) {
  // Fold the per-frame checksums in frame order: completion order of the
  // D2H callbacks depends on the schedule, the folded total must not.
  if (rt.compute_enabled()) {
    for (std::size_t f = 0; f < config_.frames_per_iteration; ++f) {
      checksum_ += frame_checksums_[f];
    }
  }
}

void SradStream::teardown(cudalite::Runtime& rt) {
  for (auto& b : dev_in_) rt.free(b);
  for (auto& b : dev_out_) rt.free(b);
  dev_in_.clear();
  dev_out_.clear();
  streams_.clear();
  ran_ = true;
}

bool SradStream::verify() const {
  if (!ran_) return false;
  // Serial reference over the whole stream, identical math and identical
  // summation order (per-frame element order, frames folded in order).
  std::vector<double> in(frame_elems());
  std::vector<double> out(frame_elems());
  double ref = 0.0;
  const std::size_t total = config_.iterations * config_.frames_per_iteration;
  for (std::size_t g = 0; g < total; ++g) {
    generate_frame(g, in.data());
    diffuse_rows(in.data(), out.data(), 0, config_.rows);
    double sum = 0.0;
    for (std::size_t i = 0; i < frame_elems(); ++i) sum += out[i];
    ref += sum;
  }
  const double tol = 1e-9 * std::max(1.0, std::fabs(ref));
  return std::fabs(checksum_ - ref) <= tol;
}

}  // namespace gg::workloads
