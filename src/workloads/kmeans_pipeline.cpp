#include "src/workloads/kmeans_pipeline.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/common/annotations.h"
#include "src/common/rng.h"
#include "src/sim/fault.h"

namespace gg::workloads {

namespace {
double dist2(const double* p, const double* c, std::size_t dims) {
  double s = 0.0;
  for (std::size_t d = 0; d < dims; ++d) {
    const double diff = p[d] - c[d];
    s += diff * diff;
  }
  return s;
}
}  // namespace

KmeansPipeline::KmeansPipeline(KmeansPipelineConfig config) : config_(config) {
  if (config_.chunks == 0 || config_.chunks > config_.points) {
    throw std::invalid_argument("KmeansPipeline: chunks must be in [1, points]");
  }
  if (config_.stream_depth == 0) {
    throw std::invalid_argument("KmeansPipeline: stream_depth must be >= 1");
  }
  Rng rng(config_.seed);
  const std::size_t n = config_.points;
  const std::size_t dims = config_.dims;
  const std::size_t k = config_.clusters;
  host_points_.resize(n * dims);
  std::vector<double> anchors(k * dims);
  for (auto& a : anchors) a = rng.uniform(-10.0, 10.0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t blob = rng.uniform_int(k);
    for (std::size_t d = 0; d < dims; ++d) {
      host_points_[i * dims + d] = anchors[blob * dims + d] + rng.normal(0.0, 1.0);
    }
  }
  initial_centroids_.assign(host_points_.begin(),
                            host_points_.begin() + static_cast<std::ptrdiff_t>(k * dims));
  centroids_ = initial_centroids_;
  chunk_assign_.assign(n, 0);
}

IntensityProfile KmeansPipeline::profile(std::size_t /*iter*/) const {
  IntensityProfile p = config_.profile;
  p.units_per_iteration = static_cast<double>(config_.chunks);
  return p;
}

std::size_t KmeansPipeline::chunk_begin(std::size_t c) const {
  const std::size_t base = config_.points / config_.chunks;
  const std::size_t rem = config_.points % config_.chunks;
  return c * base + std::min(c, rem);
}

void KmeansPipeline::setup(cudalite::Runtime& rt) {
  const std::size_t slots = config_.pipelined ? config_.stream_depth : 1;
  const std::size_t max_chunk =
      config_.points / config_.chunks + (config_.points % config_.chunks != 0 ? 1 : 0);
  dev_points_.clear();
  dev_assign_.clear();
  for (std::size_t s = 0; s < slots; ++s) {
    dev_points_.push_back(rt.alloc<double>(max_chunk * config_.dims));
    dev_assign_.push_back(rt.alloc<int>(max_chunk));
  }
  dev_centroids_ = rt.alloc<double>(centroids_.size());
  centroids_ = initial_centroids_;
  chunk_assign_.assign(config_.points, 0);
  partial_sums_.assign(config_.chunks,
                       std::vector<double>(config_.clusters * config_.dims, 0.0));
  partial_counts_.assign(config_.chunks, std::vector<std::size_t>(config_.clusters, 0));
  rt.memcpy_h2d(dev_centroids_, centroids_);
  streams_.clear();
  if (config_.pipelined) {
    // One copy stream + one compute stream per double-buffer slot.
    for (std::size_t s = 0; s < 2 * slots; ++s) streams_.push_back(rt.create_stream());
  } else {
    streams_.push_back(rt.create_stream());
  }
  ran_ = false;
}

void KmeansPipeline::assign_chunk(std::size_t slot, std::size_t b, std::size_t e) {
  const std::size_t dims = config_.dims;
  const std::size_t k = config_.clusters;
  const double* points = dev_points_[slot].data();
  int* out = dev_assign_[slot].data();
  for (std::size_t i = b; i < e; ++i) {
    double best = std::numeric_limits<double>::max();
    int best_c = 0;
    for (std::size_t cl = 0; cl < k; ++cl) {
      const double d = dist2(&points[i * dims], &centroids_[cl * dims], dims);
      if (d < best) {
        best = d;
        best_c = static_cast<int>(cl);
      }
    }
    out[i] = best_c;
  }
}

void KmeansPipeline::reduce_chunk(std::size_t c) {
  const std::size_t dims = config_.dims;
  const std::size_t begin = chunk_begin(c);
  const std::size_t end = chunk_begin(c + 1);
  std::vector<double>& sums = partial_sums_[c];
  std::vector<std::size_t>& counts = partial_counts_[c];
  std::fill(sums.begin(), sums.end(), 0.0);
  std::fill(counts.begin(), counts.end(), std::size_t{0});
  for (std::size_t i = begin; i < end; ++i) {
    const auto cl = static_cast<std::size_t>(chunk_assign_[i]);
    ++counts[cl];
    for (std::size_t d = 0; d < dims; ++d) sums[cl * dims + d] += host_points_[i * dims + d];
  }
}

void KmeansPipeline::submit_reduce(cudalite::Runtime& rt, std::size_t c,
                                   const std::function<void()>& on_cpu_done) {
  IntensityProfile rp = config_.profile;
  rp.unit_time_s = config_.reduce_seconds;
  rp.cpu_slowdown = 1.0;
  auto& platform = rt.platform();
  const sim::CpuWork work =
      make_cpu_work(platform.cpu().spec(), platform.cpu().table().peak(), rp, 1.0);
  auto signal = [this, on_cpu_done] {
    if (--pending_reduce_ == 0 && on_cpu_done) on_cpu_done();
  };
  if (!rt.host_submit(work, [this, c] { reduce_chunk(c); }, signal)) {
    // Rejected host chunk: compute inline (zero simulated cost) so the
    // pipeline keeps flowing and the results stay correct.
    sim::FaultInjector* faults = platform.faults();
    if (faults != nullptr) {
      faults->note(sim::FaultChannel::kHarness, sim::FaultOutcome::kForcedCompletion);
    }
    if (rt.compute_enabled()) reduce_chunk(c);
    signal();
  }
}

void KmeansPipeline::run_iteration(cudalite::Runtime& rt, cudalite::Stream& /*stream*/,
                                   std::size_t iter, double /*cpu_ratio*/,
                                   std::function<void()> on_gpu_done,
                                   std::function<void()> on_cpu_done) {
  if (iter >= config_.iterations) {
    throw std::out_of_range("KmeansPipeline: iteration index");
  }
  auto& platform = rt.platform();
  const cudalite::WorkEstimate est =
      make_gpu_estimate(platform.gpu().spec(), platform.gpu().core_table().peak(),
                        platform.gpu().mem_table().peak(), profile(iter), 1.0);
  pending_d2h_ = config_.chunks;
  pending_reduce_ = config_.chunks;

  for (std::size_t c = 0; c < config_.chunks; ++c) {
    const std::size_t slot = config_.pipelined ? c % config_.stream_depth : 0;
    cudalite::Stream& cs = streams_[config_.pipelined ? 2 * slot : 0];
    cudalite::Stream& ks = streams_[config_.pipelined ? 2 * slot + 1 : 0];
    const std::size_t begin = chunk_begin(c);
    const std::size_t count = chunk_begin(c + 1) - begin;

    // Stage 1: upload the chunk's points into the slot buffer.
    rt.memcpy_h2d_async(cs, dev_points_[slot], &host_points_[begin * config_.dims],
                        count * config_.dims, config_.sim_h2d_bytes);
    if (config_.pipelined) {
      // Compute must not start before the slot's upload landed.
      const cudalite::Event uploaded = rt.record_event(cs);
      rt.stream_wait_event(ks, uploaded);
    }

    // Stage 2: assignment kernel over the slot buffer.
    if (!rt.launch_range(
            ks, count, est,
            [this, slot](std::size_t b, std::size_t e) {
              assign_chunk(slot, b, e);
            })) {
      // Rejected launch: force-complete inline so the stream-ordered D2H
      // below still downloads correct data (the injector records the
      // degradation; the simulated kernel charge is lost).
      sim::FaultInjector* faults = platform.faults();
      if (faults != nullptr) {
        faults->note(sim::FaultChannel::kHarness, sim::FaultOutcome::kForcedCompletion,
                     ks.device());
      }
      if (rt.compute_enabled()) assign_chunk(slot, 0, count);
    }

    // Stage 3: download the chunk's assignments into its own host region
    // (per-chunk, never per-slot: the eager copy of a later chunk must not
    // clobber data this chunk's reduce stage reads at simulated time).
    rt.memcpy_d2h_async(
        ks, &chunk_assign_[begin], dev_assign_[slot], count, config_.sim_d2h_bytes,
        [this, &rt, c, on_gpu_done, on_cpu_done] GG_PIPELINE_STAGE {
          submit_reduce(rt, c, on_cpu_done);
          if (--pending_d2h_ == 0 && on_gpu_done) on_gpu_done();
        });

    if (config_.pipelined) {
      // Guard the slot's buffers: the next chunk on this slot may not start
      // its upload before this chunk's download retired.
      const cudalite::Event drained = rt.record_event(ks);
      rt.stream_wait_event(cs, drained);
    } else {
      // Synchronous baseline: drain after every chunk (the blocking-stack
      // schedule the pipeline's makespan is compared against).
      rt.synchronize(ks);
    }
  }
}

void KmeansPipeline::run_iteration_multi(cudalite::Runtime& rt,
                                         std::vector<cudalite::Stream>& streams,
                                         std::size_t iter, const ShareVector& /*shares*/,
                                         std::function<void(std::size_t)> on_done) {
  // Non-divisible: the pipeline owns its streams and runs on GPU 0; extra
  // slots signal immediately.
  for (std::size_t k = 1; k < streams.size(); ++k) {
    if (on_done) on_done(k + 1);
  }
  run_iteration(
      rt, streams[0], iter, 0.0, [on_done] { if (on_done) on_done(1); },
      [on_done] { if (on_done) on_done(0); });
}

void KmeansPipeline::finish_iteration(cudalite::Runtime& rt, std::size_t /*iter*/) {
  // Reduction point: merge the per-chunk partials in chunk order, then
  // refresh the device centroids (blocking H2D, same as the classic kmeans).
  if (rt.compute_enabled()) {
    const std::size_t dims = config_.dims;
    const std::size_t k = config_.clusters;
    std::vector<double> sums(k * dims, 0.0);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t c = 0; c < config_.chunks; ++c) {
      for (std::size_t i = 0; i < k * dims; ++i) sums[i] += partial_sums_[c][i];
      for (std::size_t i = 0; i < k; ++i) counts[i] += partial_counts_[c][i];
    }
    for (std::size_t cl = 0; cl < k; ++cl) {
      if (counts[cl] == 0) continue;
      for (std::size_t d = 0; d < dims; ++d) {
        centroids_[cl * dims + d] = sums[cl * dims + d] / static_cast<double>(counts[cl]);
      }
    }
  }
  rt.memcpy_h2d(dev_centroids_, centroids_);
}

void KmeansPipeline::teardown(cudalite::Runtime& rt) {
  rt.memcpy_d2h(result_centroids_, dev_centroids_);
  for (auto& b : dev_points_) rt.free(b);
  for (auto& b : dev_assign_) rt.free(b);
  rt.free(dev_centroids_);
  dev_points_.clear();
  dev_assign_.clear();
  streams_.clear();
  ran_ = true;
}

bool KmeansPipeline::verify() const {
  if (!ran_) return false;
  // Scalar reference mirroring the chunked execution exactly: per-chunk
  // partial sums merged in chunk order (floating-point summation grouping
  // matters, so the reference groups identically).
  const std::size_t n = config_.points;
  const std::size_t dims = config_.dims;
  const std::size_t k = config_.clusters;
  std::vector<double> ref = initial_centroids_;
  std::vector<int> assign(n, 0);
  for (std::size_t it = 0; it < config_.iterations; ++it) {
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      int best_c = 0;
      for (std::size_t cl = 0; cl < k; ++cl) {
        const double d = dist2(&host_points_[i * dims], &ref[cl * dims], dims);
        if (d < best) {
          best = d;
          best_c = static_cast<int>(cl);
        }
      }
      assign[i] = best_c;
    }
    std::vector<double> sums(k * dims, 0.0);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t c = 0; c < config_.chunks; ++c) {
      std::vector<double> psums(k * dims, 0.0);
      std::vector<std::size_t> pcounts(k, 0);
      for (std::size_t i = chunk_begin(c); i < chunk_begin(c + 1); ++i) {
        const auto cl = static_cast<std::size_t>(assign[i]);
        ++pcounts[cl];
        for (std::size_t d = 0; d < dims; ++d) psums[cl * dims + d] += host_points_[i * dims + d];
      }
      for (std::size_t i = 0; i < k * dims; ++i) sums[i] += psums[i];
      for (std::size_t i = 0; i < k; ++i) counts[i] += pcounts[i];
    }
    for (std::size_t cl = 0; cl < k; ++cl) {
      if (counts[cl] == 0) continue;
      for (std::size_t d = 0; d < dims; ++d) {
        ref[cl * dims + d] = sums[cl * dims + d] / static_cast<double>(counts[cl]);
      }
    }
  }
  if (result_centroids_.size() != ref.size()) return false;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (std::fabs(result_centroids_[i] - ref[i]) > 1e-9) return false;
  }
  return true;
}

}  // namespace gg::workloads
