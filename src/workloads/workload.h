// Workload interface: the application structure of Section VI.
//
// Every workload is a sequence of *iterations* (the paper's division
// granularity: a reduction point in kmeans, a barrier step in hotspot, a
// chunk for embarrassingly parallel codes).  Each iteration's work can be
// split r/(1-r) between CPU and GPU; the CPU and GPU chunks are launched
// concurrently (the pthreads + CUDA structure of [16], [23]) and the caller
// measures per-side completion times.
//
// Workloads REALLY compute: `setup` builds real inputs, the per-iteration
// chunk functions run actual kernels on the cudalite pool, and `verify`
// checks the final output against a scalar reference.  In parallel, each
// workload carries an `IntensityProfile` per iteration that drives the
// simulated timing/energy (calibrated to the Table II utilization classes
// with the paper's enlarged problem sizes).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/cudalite/api.h"
#include "src/workloads/profile.h"

namespace gg::workloads {

/// Work shares for a multi-device iteration: slot 0 is the CPU, slots 1..N
/// are the GPUs.  Shares are fractions of the iteration's work and must sum
/// to 1 (within floating-point tolerance).
using ShareVector = std::vector<double>;

class Workload {
 public:
  virtual ~Workload() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Table II style description of the utilization characteristics.
  [[nodiscard]] virtual std::string_view description() const = 0;
  /// Number of iterations in a full run.
  [[nodiscard]] virtual std::size_t iterations() const = 0;
  /// Whether the iteration work can be divided between CPU and GPU (the
  /// paper's two-tier experiments divide kmeans and hotspot).
  [[nodiscard]] virtual bool divisible() const = 0;

  /// Simulation intensity for iteration `iter` (fluctuating workloads vary
  /// this with the iteration index).
  [[nodiscard]] virtual IntensityProfile profile(std::size_t iter) const = 0;

  /// Allocate device buffers and copy inputs (charges simulated H2D time).
  virtual void setup(cudalite::Runtime& rt) = 0;

  /// Launch iteration `iter` with CPU share `cpu_ratio` (clamped to 0 when
  /// !divisible()).  Does not synchronize: `on_gpu_done` / `on_cpu_done`
  /// fire at each side's simulated completion; a side with no work signals
  /// completion immediately.
  virtual void run_iteration(cudalite::Runtime& rt, cudalite::Stream& stream,
                             std::size_t iter, double cpu_ratio,
                             std::function<void()> on_gpu_done,
                             std::function<void()> on_cpu_done) = 0;

  /// Multi-device variant ("one pthread for one GPU", Section VI): launch
  /// iteration `iter` split across the CPU (shares[0]) and one stream per
  /// GPU (shares[1 + k] on streams[k]).  `on_done(slot)` fires at each
  /// slot's simulated completion; a slot with no work signals immediately.
  /// Non-divisible workloads put everything on GPU 0.
  virtual void run_iteration_multi(cudalite::Runtime& rt,
                                   std::vector<cudalite::Stream>& streams,
                                   std::size_t iter, const ShareVector& shares,
                                   std::function<void(std::size_t)> on_done) = 0;

  /// Called after both sides of iteration `iter` completed: merge step
  /// (e.g. kmeans centroid update, hotspot buffer swap).
  virtual void finish_iteration(cudalite::Runtime& rt, std::size_t iter) = 0;

  /// Copy results back (charges simulated D2H time).
  virtual void teardown(cudalite::Runtime& rt) = 0;

  /// Check final results against the scalar reference; call after a full
  /// run + teardown.
  [[nodiscard]] virtual bool verify() const = 0;
};

/// Base class implementing the generic split-launch plumbing.  Subclasses
/// provide the real chunk kernels over item ranges plus per-iteration
/// profiles; the base converts the CPU ratio into simulated work estimates
/// and real index ranges.
class ProfiledWorkload : public Workload {
 public:
  void run_iteration(cudalite::Runtime& rt, cudalite::Stream& stream, std::size_t iter,
                     double cpu_ratio, std::function<void()> on_gpu_done,
                     std::function<void()> on_cpu_done) override;

  void run_iteration_multi(cudalite::Runtime& rt, std::vector<cudalite::Stream>& streams,
                           std::size_t iter, const ShareVector& shares,
                           std::function<void(std::size_t)> on_done) override;

  /// Default: nothing to merge.
  void finish_iteration(cudalite::Runtime& /*rt*/, std::size_t /*iter*/) override {}

 protected:
  /// Number of real (host-memory) items an iteration processes; chunk
  /// functions receive ranges over [0, real_items()).
  [[nodiscard]] virtual std::size_t real_items() const = 0;

  /// Real computation of items [begin, end) on the GPU path.  Runs on the
  /// cudalite pool; must only write state owned by those items.
  virtual void gpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) = 0;

  /// Real computation of items [begin, end) on the CPU path.
  virtual void cpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) = 0;
};

using WorkloadPtr = std::unique_ptr<Workload>;

}  // namespace gg::workloads
