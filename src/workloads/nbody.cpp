#include "src/workloads/nbody.h"

#include <cmath>
#include <utility>

#include "src/common/rng.h"

namespace gg::workloads {

namespace {
constexpr double kSoftening2 = 1e-3;  // softened gravity, avoids singularities
}

Nbody::Nbody(NbodyConfig config) : config_(config) {
  Rng rng(config_.seed);
  const std::size_t n = config_.bodies;
  pos_in_.resize(3 * n);
  vel_in_.resize(3 * n);
  mass_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (int d = 0; d < 3; ++d) {
      pos_in_[3 * i + d] = rng.uniform(-1.0, 1.0);
      vel_in_[3 * i + d] = rng.uniform(-0.1, 0.1);
    }
    mass_[i] = rng.uniform(0.5, 1.5);
  }
  initial_pos_ = pos_in_;
  initial_vel_ = vel_in_;
  pos_out_ = pos_in_;
  vel_out_ = vel_in_;
}

IntensityProfile Nbody::profile(std::size_t /*iter*/) const { return config_.profile; }

void Nbody::setup(cudalite::Runtime& rt) {
  pos_in_ = initial_pos_;
  vel_in_ = initial_vel_;
  pos_out_ = pos_in_;
  vel_out_ = vel_in_;
  dev_pos_ = rt.alloc<double>(pos_in_.size());
  rt.memcpy_h2d(dev_pos_, pos_in_);
  ran_ = false;
}

void Nbody::step_range(std::size_t begin, std::size_t end) {
  const std::size_t n = config_.bodies;
  for (std::size_t i = begin; i < end; ++i) {
    double ax = 0.0, ay = 0.0, az = 0.0;
    const double xi = pos_in_[3 * i], yi = pos_in_[3 * i + 1], zi = pos_in_[3 * i + 2];
    for (std::size_t j = 0; j < n; ++j) {
      const double dx = pos_in_[3 * j] - xi;
      const double dy = pos_in_[3 * j + 1] - yi;
      const double dz = pos_in_[3 * j + 2] - zi;
      const double r2 = dx * dx + dy * dy + dz * dz + kSoftening2;
      const double inv_r3 = mass_[j] / (r2 * std::sqrt(r2));
      ax += dx * inv_r3;
      ay += dy * inv_r3;
      az += dz * inv_r3;
    }
    const double dt = config_.dt;
    vel_out_[3 * i] = vel_in_[3 * i] + ax * dt;
    vel_out_[3 * i + 1] = vel_in_[3 * i + 1] + ay * dt;
    vel_out_[3 * i + 2] = vel_in_[3 * i + 2] + az * dt;
    pos_out_[3 * i] = xi + vel_out_[3 * i] * dt;
    pos_out_[3 * i + 1] = yi + vel_out_[3 * i + 1] * dt;
    pos_out_[3 * i + 2] = zi + vel_out_[3 * i + 2] * dt;
  }
}

void Nbody::gpu_chunk(std::size_t begin, std::size_t end, std::size_t /*iter*/) {
  step_range(begin, end);
}

void Nbody::cpu_chunk(std::size_t begin, std::size_t end, std::size_t /*iter*/) {
  step_range(begin, end);
}

void Nbody::finish_iteration(cudalite::Runtime& /*rt*/, std::size_t /*iter*/) {
  std::swap(pos_in_, pos_out_);
  std::swap(vel_in_, vel_out_);
}

void Nbody::teardown(cudalite::Runtime& rt) {
  rt.memcpy_h2d(dev_pos_, pos_in_);
  rt.memcpy_d2h(result_pos_, dev_pos_);
  rt.free(dev_pos_);
  ran_ = true;
}

bool Nbody::verify() const {
  if (!ran_) return false;
  // Serial reference: identical operation order per body, so results match
  // to a tight tolerance.
  const std::size_t n = config_.bodies;
  std::vector<double> pi = initial_pos_, po = initial_pos_;
  std::vector<double> vi = initial_vel_, vo = initial_vel_;
  for (std::size_t it = 0; it < config_.iterations; ++it) {
    for (std::size_t i = 0; i < n; ++i) {
      double ax = 0.0, ay = 0.0, az = 0.0;
      const double xi = pi[3 * i], yi = pi[3 * i + 1], zi = pi[3 * i + 2];
      for (std::size_t j = 0; j < n; ++j) {
        const double dx = pi[3 * j] - xi;
        const double dy = pi[3 * j + 1] - yi;
        const double dz = pi[3 * j + 2] - zi;
        const double r2 = dx * dx + dy * dy + dz * dz + kSoftening2;
        const double inv_r3 = mass_[j] / (r2 * std::sqrt(r2));
        ax += dx * inv_r3;
        ay += dy * inv_r3;
        az += dz * inv_r3;
      }
      const double dt = config_.dt;
      vo[3 * i] = vi[3 * i] + ax * dt;
      vo[3 * i + 1] = vi[3 * i + 1] + ay * dt;
      vo[3 * i + 2] = vi[3 * i + 2] + az * dt;
      po[3 * i] = xi + vo[3 * i] * dt;
      po[3 * i + 1] = yi + vo[3 * i + 1] * dt;
      po[3 * i + 2] = zi + vo[3 * i + 2] * dt;
    }
    std::swap(pi, po);
    std::swap(vi, vo);
  }
  if (result_pos_.size() != pi.size()) return false;
  for (std::size_t i = 0; i < pi.size(); ++i) {
    if (std::fabs(result_pos_[i] - pi[i]) > 1e-9) return false;
  }
  return true;
}

}  // namespace gg::workloads
