// Trace-driven workload: replay a utilization trace through the controllers.
//
// The paper characterizes workloads by their nvidia-smi utilization traces
// (Section III-A).  `TraceWorkload` closes the loop: feed any such trace —
// e.g. captured from real hardware with
//   `nvidia-smi --query-gpu=utilization.gpu,utilization.memory --format=csv -l 1`
// — and the simulated GreenGPU stack manages an application with exactly
// that utilization signature.  Each trace phase becomes one iteration.
#pragma once

#include <istream>
#include <vector>

#include "src/workloads/workload.h"

namespace gg::workloads {

/// One phase of the trace: constant utilizations for a duration.
struct TracePhase {
  double core_util{0.0};
  double mem_util{0.0};
  double duration_s{1.0};
};

class TraceWorkload final : public ProfiledWorkload {
 public:
  /// `phases` must be non-empty with valid utilizations and positive
  /// durations.
  explicit TraceWorkload(std::vector<TracePhase> phases, std::uint64_t seed = 131);

  /// Parse a CSV trace of `time_s,core_util,mem_util` samples (header row
  /// optional; utilizations as 0-1 fractions or 0-100 percentages).
  /// Consecutive samples with equal utilizations merge into one phase.
  [[nodiscard]] static TraceWorkload from_csv(std::istream& is);

  [[nodiscard]] std::string_view name() const override { return "trace-replay"; }
  [[nodiscard]] std::string_view description() const override {
    return "Replayed utilization trace";
  }
  [[nodiscard]] std::size_t iterations() const override { return phases_.size(); }
  [[nodiscard]] bool divisible() const override { return false; }
  [[nodiscard]] IntensityProfile profile(std::size_t iter) const override;

  void setup(cudalite::Runtime& rt) override;
  void teardown(cudalite::Runtime& rt) override;
  [[nodiscard]] bool verify() const override;

  [[nodiscard]] const std::vector<TracePhase>& phases() const { return phases_; }
  /// Total trace duration at peak clocks.
  [[nodiscard]] Seconds trace_duration() const;

 protected:
  [[nodiscard]] std::size_t real_items() const override { return kItems; }
  void gpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) override;
  void cpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) override;

 private:
  static constexpr std::size_t kItems = 4096;

  std::vector<TracePhase> phases_;
  std::uint64_t seed_;
  std::vector<std::uint64_t> checksums_;  // per item, folded across iterations
  std::uint64_t final_checksum_{0};
  bool ran_{false};
};

}  // namespace gg::workloads
