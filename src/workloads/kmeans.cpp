#include "src/workloads/kmeans.h"

#include <cmath>
#include <limits>

#include "src/common/rng.h"

namespace gg::workloads {

namespace {
/// Squared euclidean distance between a point and a centroid.
double dist2(const double* p, const double* c, std::size_t dims) {
  double s = 0.0;
  for (std::size_t d = 0; d < dims; ++d) {
    const double diff = p[d] - c[d];
    s += diff * diff;
  }
  return s;
}

/// One full serial kmeans pass (assignment + update) used by the reference.
void reference_step(const std::vector<double>& points, std::vector<double>& centroids,
                    std::vector<int>& assignments, std::size_t n, std::size_t dims,
                    std::size_t k) {
  for (std::size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::max();
    int best_c = 0;
    for (std::size_t c = 0; c < k; ++c) {
      const double d = dist2(&points[i * dims], &centroids[c * dims], dims);
      if (d < best) {
        best = d;
        best_c = static_cast<int>(c);
      }
    }
    assignments[i] = best_c;
  }
  std::vector<double> sums(k * dims, 0.0);
  std::vector<std::size_t> counts(k, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::size_t>(assignments[i]);
    ++counts[c];
    for (std::size_t d = 0; d < dims; ++d) sums[c * dims + d] += points[i * dims + d];
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (counts[c] == 0) continue;  // keep the old centroid for empty clusters
    for (std::size_t d = 0; d < dims; ++d) {
      centroids[c * dims + d] = sums[c * dims + d] / static_cast<double>(counts[c]);
    }
  }
}
}  // namespace

Kmeans::Kmeans(KmeansConfig config) : config_(config) {
  Rng rng(config_.seed);
  const std::size_t n = config_.points;
  const std::size_t dims = config_.dims;
  const std::size_t k = config_.clusters;
  host_points_.resize(n * dims);
  // Gaussian blobs around k well-separated anchors so clustering is
  // meaningful (and the verify comparison is numerically stable).
  std::vector<double> anchors(k * dims);
  for (auto& a : anchors) a = rng.uniform(-10.0, 10.0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t blob = rng.uniform_int(k);
    for (std::size_t d = 0; d < dims; ++d) {
      host_points_[i * dims + d] = anchors[blob * dims + d] + rng.normal(0.0, 1.0);
    }
  }
  // Initial centroids: the first k points (the Rodinia convention).
  initial_centroids_.assign(host_points_.begin(),
                            host_points_.begin() + static_cast<std::ptrdiff_t>(k * dims));
  centroids_ = initial_centroids_;
  assignments_.assign(n, 0);
}

IntensityProfile Kmeans::profile(std::size_t /*iter*/) const { return config_.profile; }

void Kmeans::setup(cudalite::Runtime& rt) {
  dev_points_ = rt.alloc<double>(host_points_.size());
  dev_centroids_ = rt.alloc<double>(centroids_.size());
  rt.memcpy_h2d(dev_points_, host_points_);
  rt.memcpy_h2d(dev_centroids_, centroids_);
  centroids_ = initial_centroids_;
  assignments_.assign(config_.points, 0);
  ran_ = false;
}

void Kmeans::assign_range(const double* points, std::size_t begin, std::size_t end) {
  const std::size_t dims = config_.dims;
  const std::size_t k = config_.clusters;
  for (std::size_t i = begin; i < end; ++i) {
    double best = std::numeric_limits<double>::max();
    int best_c = 0;
    for (std::size_t c = 0; c < k; ++c) {
      const double d = dist2(&points[i * dims], &centroids_[c * dims], dims);
      if (d < best) {
        best = d;
        best_c = static_cast<int>(c);
      }
    }
    assignments_[i] = best_c;
  }
}

void Kmeans::gpu_chunk(std::size_t begin, std::size_t end, std::size_t /*iter*/) {
  // GPU path reads the device-resident copies (as the CUDA kernel would).
  assign_range(dev_points_.data(), begin, end);
}

void Kmeans::cpu_chunk(std::size_t begin, std::size_t end, std::size_t /*iter*/) {
  assign_range(host_points_.data(), begin, end);
}

void Kmeans::finish_iteration(cudalite::Runtime& rt, std::size_t /*iter*/) {
  // Reduction point: recompute centroids on the host from the merged
  // assignments, then refresh the device copy for the next iteration.
  if (rt.compute_enabled()) {
    const std::size_t n = config_.points;
    const std::size_t dims = config_.dims;
    const std::size_t k = config_.clusters;
    std::vector<double> sums(k * dims, 0.0);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = static_cast<std::size_t>(assignments_[i]);
      ++counts[c];
      for (std::size_t d = 0; d < dims; ++d) sums[c * dims + d] += host_points_[i * dims + d];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      for (std::size_t d = 0; d < dims; ++d) {
        centroids_[c * dims + d] = sums[c * dims + d] / static_cast<double>(counts[c]);
      }
    }
  }
  rt.memcpy_h2d(dev_centroids_, centroids_);
}

void Kmeans::teardown(cudalite::Runtime& rt) {
  rt.memcpy_d2h(result_centroids_, dev_centroids_);
  rt.free(dev_points_);
  rt.free(dev_centroids_);
  ran_ = true;
}

bool Kmeans::verify() const {
  if (!ran_) return false;
  // Scalar reference: rerun the full algorithm serially from the stored
  // initial state; the divided execution must match bit-for-bit up to
  // summation order (same order here), so compare with a tight tolerance.
  std::vector<double> ref_centroids = initial_centroids_;
  std::vector<int> ref_assignments(config_.points, 0);
  for (std::size_t it = 0; it < config_.iterations; ++it) {
    reference_step(host_points_, ref_centroids, ref_assignments, config_.points,
                   config_.dims, config_.clusters);
  }
  if (result_centroids_.size() != ref_centroids.size()) return false;
  for (std::size_t i = 0; i < ref_centroids.size(); ++i) {
    if (std::fabs(result_centroids_[i] - ref_centroids[i]) > 1e-9) return false;
  }
  return true;
}

}  // namespace gg::workloads
