#include "src/workloads/lud.h"

#include <cmath>
#include <stdexcept>

#include "src/common/rng.h"

namespace gg::workloads {

Lud::Lud(LudConfig config) : config_(config) {
  if (config_.dim < 2) throw std::invalid_argument("Lud: dim must be >= 2");
}

IntensityProfile Lud::profile(std::size_t /*iter*/) const { return config_.profile; }

std::vector<double> Lud::make_matrix(std::size_t iter) const {
  Rng rng(config_.seed + iter * 0x9E3779B9ULL);
  const std::size_t n = config_.dim;
  std::vector<double> a(n * n);
  for (auto& x : a) x = rng.uniform(-1.0, 1.0);
  // Diagonal dominance keeps pivot-free Doolittle elimination stable.
  for (std::size_t i = 0; i < n; ++i) a[i * n + i] += static_cast<double>(n);
  return a;
}

void Lud::setup(cudalite::Runtime& rt) {
  dev_matrix_ = rt.alloc<double>(config_.dim * config_.dim);
  // Sized here, not by the compute chunks: the teardown writeback's
  // simulated transfer charges lu_.size() bytes, and model-only runs (which
  // never execute the chunks) must charge exactly what full runs charge.
  lu_.assign(config_.dim * config_.dim, 0.0);
  original_.clear();
  ran_ = false;
}

void Lud::gpu_chunk(std::size_t /*begin*/, std::size_t /*end*/, std::size_t iter) {
  // One launch factors the whole matrix (sequential pivot steps).
  original_ = make_matrix(iter);
  lu_ = original_;
  const std::size_t n = config_.dim;
  for (std::size_t k = 0; k < n; ++k) {
    const double pivot = lu_[k * n + k];
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = lu_[i * n + k] / pivot;
      lu_[i * n + k] = factor;
      for (std::size_t j = k + 1; j < n; ++j) {
        lu_[i * n + j] -= factor * lu_[k * n + j];
      }
    }
  }
}

void Lud::cpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) {
  gpu_chunk(begin, end, iter);
}

void Lud::teardown(cudalite::Runtime& rt) {
  rt.memcpy_h2d(dev_matrix_, lu_);
  std::vector<double> back;
  rt.memcpy_d2h(back, dev_matrix_);
  rt.free(dev_matrix_);
  ran_ = !back.empty();
}

bool Lud::verify() const {
  if (!ran_ || lu_.empty() || original_.empty()) return false;
  // Check L * U == A for the last factored matrix.
  const std::size_t n = config_.dim;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      const std::size_t kmax = std::min(i, j);
      for (std::size_t k = 0; k <= kmax; ++k) {
        const double l = (k == i) ? 1.0 : lu_[i * n + k];
        const double u = lu_[k * n + j];
        sum += l * u;
      }
      if (std::fabs(sum - original_[i * n + j]) > 1e-8 * static_cast<double>(n)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace gg::workloads
