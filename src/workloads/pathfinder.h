// pathfinder / PF (Rodinia): dynamic-programming shortest path over a grid.
//
// One iteration processes one grid row: cost'[c] = weight(t, c) +
// min(cost[c-1], cost[c], cost[c+1]).  Columns are independent within a row,
// so a column-range split is race-free; grid weights are generated on the fly
// from a hash so the paper-scale grid needs no storage.
//
// Table II: 2048x2048 dimensions; LOW core and memory utilization — the DP
// row kernel is tiny and launch-latency dominated, the class where frequency
// scaling saves the most (Fig. 6).
#pragma once

#include <cstdint>
#include <vector>

#include "src/workloads/workload.h"

namespace gg::workloads {

struct PathfinderConfig {
  std::size_t cols{4096};
  std::size_t iterations{60};  // rows processed
  std::uint64_t seed{47};
  /// Table II class: low core, low memory; 2048 sim units/iteration.
  IntensityProfile profile{0.30, 0.20, 5.0e-4, 2048.0, 4.0, 0.8};
};

class Pathfinder final : public ProfiledWorkload {
 public:
  explicit Pathfinder(PathfinderConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "pathfinder"; }
  [[nodiscard]] std::string_view description() const override {
    return "Low core and memory utilization";
  }
  [[nodiscard]] std::size_t iterations() const override { return config_.iterations; }
  [[nodiscard]] bool divisible() const override { return false; }
  [[nodiscard]] IntensityProfile profile(std::size_t iter) const override;

  void setup(cudalite::Runtime& rt) override;
  void finish_iteration(cudalite::Runtime& rt, std::size_t iter) override;
  void teardown(cudalite::Runtime& rt) override;
  [[nodiscard]] bool verify() const override;

  /// Deterministic grid weight at (row, col).
  [[nodiscard]] int weight(std::size_t row, std::size_t col) const;

 protected:
  [[nodiscard]] std::size_t real_items() const override { return config_.cols; }
  void gpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) override;
  void cpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) override;

 private:
  PathfinderConfig config_;
  std::vector<long long> cost_in_;
  std::vector<long long> cost_out_;
  std::vector<long long> result_;
  cudalite::DeviceBuffer<long long> dev_cost_;
  bool ran_{false};
};

}  // namespace gg::workloads
