// kmeans (Rodinia): the paper's primary division workload.
//
// An iteration is one assignment pass over all points followed by the
// centroid-update reduction (the "reduction point" the paper cites as the
// natural iteration boundary).  The assignment pass is divisible: points
// [0, split) are assigned on the CPU path and [split, N) on the GPU path;
// `finish_iteration` recomputes centroids on the host and refreshes the
// device copy (a real H2D transfer, charged to the bus model).
//
// Table II: 988040 data points; medium core utilization, low memory
// utilization.
#pragma once

#include <cstdint>
#include <vector>

#include "src/workloads/workload.h"

namespace gg::workloads {

struct KmeansConfig {
  std::size_t points{16384};   // real (host) problem size
  std::size_t dims{8};
  std::size_t clusters{8};
  std::size_t iterations{40};
  std::uint64_t seed{42};
  /// Simulated intensity (Table II class: medium core, low memory) with the
  /// paper's enlarged size: 988040 points per iteration.  unit_time is set
  /// so one iteration spans ~124 s, keeping the division interval >= 40x
  /// the 3 s scaling interval (Section IV).
  IntensityProfile profile{0.58, 0.25, 1.25e-4, 988040.0, 6.0, 0.85};
};

class Kmeans final : public ProfiledWorkload {
 public:
  explicit Kmeans(KmeansConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "kmeans"; }
  [[nodiscard]] std::string_view description() const override {
    return "Medium core utilization, low memory utilization";
  }
  [[nodiscard]] std::size_t iterations() const override { return config_.iterations; }
  [[nodiscard]] bool divisible() const override { return true; }
  [[nodiscard]] IntensityProfile profile(std::size_t iter) const override;

  void setup(cudalite::Runtime& rt) override;
  void finish_iteration(cudalite::Runtime& rt, std::size_t iter) override;
  void teardown(cudalite::Runtime& rt) override;
  [[nodiscard]] bool verify() const override;

  [[nodiscard]] const std::vector<double>& centroids() const { return centroids_; }
  [[nodiscard]] const KmeansConfig& config() const { return config_; }

 protected:
  [[nodiscard]] std::size_t real_items() const override { return config_.points; }
  void gpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) override;
  void cpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) override;

 private:
  void assign_range(const double* points, std::size_t begin, std::size_t end);

  KmeansConfig config_;
  std::vector<double> host_points_;       // N x D row-major
  std::vector<double> initial_centroids_; // K x D, for the verify reference
  std::vector<double> centroids_;         // K x D, current
  std::vector<int> assignments_;          // N
  cudalite::DeviceBuffer<double> dev_points_;
  cudalite::DeviceBuffer<double> dev_centroids_;
  std::vector<double> result_centroids_;  // copied back at teardown
  bool ran_{false};
};

}  // namespace gg::workloads
