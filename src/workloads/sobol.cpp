#include "src/workloads/sobol.h"

#include <cmath>
#include <stdexcept>

namespace gg::workloads {

namespace {

/// Joe-Kuo (new-joe-kuo-6) parameters for dimensions 2..8: primitive
/// polynomial degree s, encoded polynomial a (coefficients between the
/// leading and trailing 1), and initial direction numbers m_1..m_s.
struct SobolParams {
  int s;
  std::uint32_t a;
  std::uint32_t m[8];
};

constexpr SobolParams kParams[] = {
    {1, 0, {1}},                      // dim 2
    {2, 1, {1, 3}},                   // dim 3
    {3, 1, {1, 3, 1}},                // dim 4
    {3, 2, {1, 1, 1}},                // dim 5
    {4, 1, {1, 1, 3, 3}},             // dim 6
    {4, 4, {1, 3, 5, 13}},            // dim 7
    {5, 2, {1, 1, 5, 5, 17}},         // dim 8
};

}  // namespace

Sobol::Sobol(std::size_t dimensions) {
  if (dimensions == 0 || dimensions > kMaxDimensions) {
    throw std::invalid_argument("Sobol: dimensions must be in [1, 8]");
  }
  v_.resize(dimensions);
  // Dimension 0: van der Corput — direction numbers are single bits.
  v_[0].resize(kBits);
  for (int bit = 0; bit < kBits; ++bit) {
    v_[0][bit] = 1ULL << (kBits - 1 - bit);
  }
  for (std::size_t d = 1; d < dimensions; ++d) {
    const SobolParams& p = kParams[d - 1];
    auto& v = v_[d];
    v.resize(kBits);
    for (int i = 0; i < p.s && i < kBits; ++i) {
      v[i] = static_cast<std::uint64_t>(p.m[i]) << (kBits - 1 - i);
    }
    for (int i = p.s; i < kBits; ++i) {
      // Recurrence: v_i = v_{i-s} >> s XOR a-selected earlier terms.
      std::uint64_t value = v[i - p.s] ^ (v[i - p.s] >> p.s);
      for (int k = 1; k < p.s; ++k) {
        if ((p.a >> (p.s - 1 - k)) & 1u) value ^= v[i - k];
      }
      v[i] = value;
    }
  }
}

double Sobol::sample(std::uint64_t index, std::size_t dim) const {
  if (dim >= v_.size()) throw std::out_of_range("Sobol: dimension");
  // Natural-order construction: XOR the direction number of every set bit
  // of the index (dimension 0 then equals the van der Corput sequence
  // exactly; the Gray-code variant would emit the same point set permuted).
  std::uint64_t bits = index;
  std::uint64_t x = 0;
  const auto& v = v_[dim];
  for (int bit = 0; bits != 0 && bit < kBits; ++bit, bits >>= 1) {
    if (bits & 1ULL) x ^= v[bit];
  }
  return static_cast<double>(x) * std::ldexp(1.0, -kBits);
}

std::vector<double> Sobol::point(std::uint64_t index) const {
  std::vector<double> out(v_.size());
  for (std::size_t d = 0; d < v_.size(); ++d) out[d] = sample(index, d);
  return out;
}

double uniformity_deviation(const Sobol& sobol, std::size_t dim, std::uint64_t n) {
  // One-dimensional Kolmogorov-style deviation on 64 anchors.
  constexpr int kAnchors = 64;
  double worst = 0.0;
  for (int a = 1; a <= kAnchors; ++a) {
    const double threshold = static_cast<double>(a) / kAnchors;
    std::uint64_t below = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (sobol.sample(i, dim) < threshold) ++below;
    }
    const double empirical = static_cast<double>(below) / static_cast<double>(n);
    worst = std::max(worst, std::fabs(empirical - threshold));
  }
  return worst;
}

}  // namespace gg::workloads
