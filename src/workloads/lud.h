// lud (Rodinia): LU decomposition.
//
// Each iteration factors a fresh diagonally dominant matrix (the paper runs
// 10 iterations of an 8192x8192 factorization).  The elimination is
// inherently sequential across pivot steps, so the real kernel runs as a
// single-range launch; the simulated intensity carries the Table II class.
//
// Table II: 10 iterations, 8192x8192; medium core utilization, low memory
// utilization.
#pragma once

#include <cstdint>
#include <vector>

#include "src/workloads/workload.h"

namespace gg::workloads {

struct LudConfig {
  std::size_t dim{96};
  std::size_t iterations{10};
  std::uint64_t seed{23};
  /// Table II class: medium core, low memory; 8192 sim units (pivot steps).
  IntensityProfile profile{0.55, 0.20, 3.5e-4, 8192.0, 9.0, 0.85};
};

class Lud final : public ProfiledWorkload {
 public:
  explicit Lud(LudConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "lud"; }
  [[nodiscard]] std::string_view description() const override {
    return "Medium core utilization, low memory utilization";
  }
  [[nodiscard]] std::size_t iterations() const override { return config_.iterations; }
  [[nodiscard]] bool divisible() const override { return false; }
  [[nodiscard]] IntensityProfile profile(std::size_t iter) const override;

  void setup(cudalite::Runtime& rt) override;
  void teardown(cudalite::Runtime& rt) override;
  [[nodiscard]] bool verify() const override;

 protected:
  [[nodiscard]] std::size_t real_items() const override { return 1; }
  void gpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) override;
  void cpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) override;

 private:
  [[nodiscard]] std::vector<double> make_matrix(std::size_t iter) const;

  LudConfig config_;
  std::vector<double> lu_;       // in-place L\U of the last factored matrix
  std::vector<double> original_; // its source matrix, for verification
  cudalite::DeviceBuffer<double> dev_matrix_;
  bool ran_{false};
};

}  // namespace gg::workloads
