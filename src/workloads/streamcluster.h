// streamcluster / SC (Rodinia, from PARSEC): online clustering.
//
// Each iteration is one `pgain` round: a candidate centre is proposed and
// every point computes its distance to it to evaluate the reassignment gain;
// the centre is opened if the total gain is positive.  The distance pass is
// the memory-streaming kernel that makes SC memory-bounded (Section III-A),
// and the alternation between long streaming passes and short bookkeeping
// phases is why Table II classifies its utilizations as highly fluctuating.
//
// Table II: 65536 points with 512 dimensions.
#pragma once

#include <cstdint>
#include <vector>

#include "src/workloads/workload.h"

namespace gg::workloads {

struct StreamclusterConfig {
  std::size_t points{4096};  // real problem size
  std::size_t dims{32};
  std::size_t iterations{40};  // pgain rounds
  std::uint64_t seed{83};
  /// Memory-streaming phase.  Both anchors follow the paper: 0.70 core
  /// utilization puts the core-throttling knee at ~410 MHz (0.70 x 576,
  /// Section III-A) and 0.70 memory utilization makes the WMA equilibrium
  /// the 820 MHz memory level Fig. 5b converges to.
  IntensityProfile heavy_profile{0.70, 0.70, 2.2e-5, 65536.0, 7.0, 0.8};
  /// Bookkeeping phase: light on both.
  IntensityProfile light_profile{0.30, 0.40, 2.2e-5, 65536.0, 7.0, 0.8};
  /// Phase length in iterations (~10 s per phase at peak clocks).
  std::size_t phase_length{7};
  /// Iterations of low activity before the stream ramps up (reproduces the
  /// warm-up ramp visible in the Fig. 5 trace).
  std::size_t warmup_iterations{3};
};

class Streamcluster final : public ProfiledWorkload {
 public:
  explicit Streamcluster(StreamclusterConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "streamcluster"; }
  [[nodiscard]] std::string_view description() const override {
    return "Utilizations highly fluctuate";
  }
  [[nodiscard]] std::size_t iterations() const override { return config_.iterations; }
  [[nodiscard]] bool divisible() const override { return false; }
  [[nodiscard]] IntensityProfile profile(std::size_t iter) const override;

  void setup(cudalite::Runtime& rt) override;
  void finish_iteration(cudalite::Runtime& rt, std::size_t iter) override;
  void teardown(cudalite::Runtime& rt) override;
  [[nodiscard]] bool verify() const override;

  /// Total assignment cost after the run (the clustering objective).
  [[nodiscard]] double total_cost() const;

 protected:
  [[nodiscard]] std::size_t real_items() const override { return config_.points; }
  void gpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) override;
  void cpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) override;

 private:
  [[nodiscard]] std::size_t candidate_for(std::size_t iter) const;
  [[nodiscard]] double dist2(std::size_t a, std::size_t b) const;

  StreamclusterConfig config_;
  std::vector<double> coords_;     // points x dims
  std::vector<double> assign_cost_;  // current per-point cost
  std::vector<double> cand_cost_;    // per-point cost to the candidate
  std::vector<double> final_costs_;
  cudalite::DeviceBuffer<double> dev_coords_;
  bool ran_{false};
};

}  // namespace gg::workloads
