// kmeans_pipeline: the three-stage double-buffered pipeline workload of the
// asynchronous cudalite stack.
//
// Each iteration streams the point set through the GPU in `chunks` slices:
// upload (H2D on the DMA copy engine) -> assign (kernel) -> download of the
// chunk's assignments (D2H) -> per-chunk partial centroid reduction on the
// CPU.  With `pipelined` on, the stages run on `stream_depth` double-buffered
// slot pairs (one copy stream + one compute stream per slot, chained with
// record_event / stream_wait_event), so chunk c+1's upload overlaps chunk c's
// assignment in simulated time; with it off the same ops are issued on one
// stream with a blocking synchronize after every chunk — the synchronous
// baseline the makespan comparison is against.
//
// The simulated transfers are deliberately large (`sim_h2d_bytes`, decoupled
// from the real buffer exactly like WorkEstimate decouples kernel cost), so
// the workload is TRANSFER-BOUND: the copy engine is the pipeline bottleneck
// and the overlap win is the difference between the serialized and the
// pipelined schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "src/workloads/workload.h"

namespace gg::workloads {

struct KmeansPipelineConfig {
  std::size_t points{8192};  // real (host) problem size per iteration
  std::size_t dims{8};
  std::size_t clusters{8};
  std::size_t iterations{12};
  /// Slices per iteration; chunk sizes are balanced (any value in
  /// [1, points] works, the CLI exposes it as --chunks).
  std::size_t chunks{8};
  /// Double-buffer slots (concurrent in-flight chunks) when pipelined.
  std::size_t stream_depth{3};
  /// False = synchronous baseline: same ops, one stream, a blocking
  /// synchronize per chunk.
  bool pipelined{true};
  std::uint64_t seed{42};
  /// Simulated transfer sizes per chunk (3 GB/s bus: 1.5e9 B ~ 0.5 s up,
  /// 1.2e8 B ~ 40 ms down) — the knobs that make the pipeline
  /// transfer-bound.
  double sim_h2d_bytes{1.5e9};
  double sim_d2h_bytes{1.2e8};
  /// Per-chunk CPU partial-reduction time at peak clocks.
  double reduce_seconds{0.30};
  /// Assignment-kernel intensity: unit_time_s is the per-chunk kernel time
  /// at peak clocks; units_per_iteration must equal `chunks`.
  IntensityProfile profile{0.60, 0.35, 0.45, 8.0, 1.0, 0.85};
};

class KmeansPipeline final : public Workload {
 public:
  explicit KmeansPipeline(KmeansPipelineConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "kmeans_pipeline"; }
  [[nodiscard]] std::string_view description() const override {
    return "Transfer-bound chunked kmeans; three-stage double-buffered pipeline";
  }
  [[nodiscard]] std::size_t iterations() const override { return config_.iterations; }
  [[nodiscard]] bool divisible() const override { return false; }
  [[nodiscard]] IntensityProfile profile(std::size_t iter) const override;

  void setup(cudalite::Runtime& rt) override;
  void run_iteration(cudalite::Runtime& rt, cudalite::Stream& stream, std::size_t iter,
                     double cpu_ratio, std::function<void()> on_gpu_done,
                     std::function<void()> on_cpu_done) override;
  void run_iteration_multi(cudalite::Runtime& rt, std::vector<cudalite::Stream>& streams,
                           std::size_t iter, const ShareVector& shares,
                           std::function<void(std::size_t)> on_done) override;
  void finish_iteration(cudalite::Runtime& rt, std::size_t iter) override;
  void teardown(cudalite::Runtime& rt) override;
  [[nodiscard]] bool verify() const override;

  [[nodiscard]] const KmeansPipelineConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<double>& centroids() const { return centroids_; }

 private:
  /// Balanced chunk ranges: chunk c covers [chunk_begin(c), chunk_begin(c+1)).
  [[nodiscard]] std::size_t chunk_begin(std::size_t c) const;
  /// Assign points [b, e) (chunk-local indices) from the slot buffer — the
  /// disjoint sub-range a single launch_range worker owns.
  void assign_chunk(std::size_t slot, std::size_t b, std::size_t e);
  void reduce_chunk(std::size_t c);
  void submit_reduce(cudalite::Runtime& rt, std::size_t c,
                     const std::function<void()>& on_cpu_done);

  KmeansPipelineConfig config_;
  std::vector<double> host_points_;        // N x D row-major
  std::vector<double> initial_centroids_;  // K x D, for the verify reference
  std::vector<double> centroids_;          // K x D, current
  std::vector<int> chunk_assign_;          // N, per-chunk D2H destinations
  /// Per-chunk partial reductions, merged in chunk order at the reduction
  /// point (verify mirrors the exact same summation grouping).
  std::vector<std::vector<double>> partial_sums_;        // chunks x (K x D)
  std::vector<std::vector<std::size_t>> partial_counts_; // chunks x K
  std::vector<cudalite::DeviceBuffer<double>> dev_points_;  // per slot
  std::vector<cudalite::DeviceBuffer<int>> dev_assign_;     // per slot
  cudalite::DeviceBuffer<double> dev_centroids_;
  std::vector<cudalite::Stream> streams_;  // pipelined: [copy, compute] per slot
  std::vector<double> result_centroids_;   // copied back at teardown
  std::size_t pending_d2h_{0};
  std::size_t pending_reduce_{0};
  bool ran_{false};
};

}  // namespace gg::workloads
