#include "src/workloads/pathfinder.h"

#include <algorithm>
#include <utility>

#include "src/common/rng.h"

namespace gg::workloads {

Pathfinder::Pathfinder(PathfinderConfig config) : config_(config) {}

IntensityProfile Pathfinder::profile(std::size_t /*iter*/) const { return config_.profile; }

int Pathfinder::weight(std::size_t row, std::size_t col) const {
  // Stateless hash of (seed, row, col) -> weight in [0, 10).
  std::uint64_t s = config_.seed ^ (row * 0x9E3779B97F4A7C15ULL) ^
                    (col * 0xC2B2AE3D27D4EB4FULL);
  return static_cast<int>(splitmix64(s) % 10);
}

void Pathfinder::setup(cudalite::Runtime& rt) {
  const std::size_t c = config_.cols;
  cost_in_.resize(c);
  for (std::size_t j = 0; j < c; ++j) cost_in_[j] = weight(0, j);
  cost_out_.assign(c, 0);
  dev_cost_ = rt.alloc<long long>(c);
  rt.memcpy_h2d(dev_cost_, cost_in_);
  ran_ = false;
}

void Pathfinder::gpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) {
  const std::size_t c = config_.cols;
  const std::size_t row = iter + 1;  // row 0 seeded the costs
  for (std::size_t j = begin; j < end; ++j) {
    long long best = cost_in_[j];
    if (j > 0) best = std::min(best, cost_in_[j - 1]);
    if (j + 1 < c) best = std::min(best, cost_in_[j + 1]);
    cost_out_[j] = best + weight(row, j);
  }
}

void Pathfinder::cpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) {
  gpu_chunk(begin, end, iter);
}

void Pathfinder::finish_iteration(cudalite::Runtime& /*rt*/, std::size_t /*iter*/) {
  std::swap(cost_in_, cost_out_);
}

void Pathfinder::teardown(cudalite::Runtime& rt) {
  rt.memcpy_h2d(dev_cost_, cost_in_);
  rt.memcpy_d2h(result_, dev_cost_);
  rt.free(dev_cost_);
  ran_ = true;
}

bool Pathfinder::verify() const {
  if (!ran_) return false;
  const std::size_t c = config_.cols;
  std::vector<long long> in(c), out(c);
  for (std::size_t j = 0; j < c; ++j) in[j] = weight(0, j);
  for (std::size_t it = 0; it < config_.iterations; ++it) {
    const std::size_t row = it + 1;
    for (std::size_t j = 0; j < c; ++j) {
      long long best = in[j];
      if (j > 0) best = std::min(best, in[j - 1]);
      if (j + 1 < c) best = std::min(best, in[j + 1]);
      out[j] = best + weight(row, j);
    }
    std::swap(in, out);
  }
  return result_ == in;
}

}  // namespace gg::workloads
