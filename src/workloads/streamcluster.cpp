#include "src/workloads/streamcluster.h"

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"

namespace gg::workloads {

Streamcluster::Streamcluster(StreamclusterConfig config) : config_(config) {
  Rng rng(config_.seed);
  coords_.resize(config_.points * config_.dims);
  for (auto& c : coords_) c = rng.uniform(0.0, 1.0);
}

IntensityProfile Streamcluster::profile(std::size_t iter) const {
  if (iter < config_.warmup_iterations) {
    IntensityProfile warm = config_.light_profile;
    warm.core_util *= 0.4;
    warm.mem_util *= 0.4;
    return warm;
  }
  const std::size_t phase =
      ((iter - config_.warmup_iterations) / config_.phase_length) % 2;
  return phase == 0 ? config_.heavy_profile : config_.light_profile;
}

std::size_t Streamcluster::candidate_for(std::size_t iter) const {
  return (iter * 131 + 7) % config_.points;
}

double Streamcluster::dist2(std::size_t a, std::size_t b) const {
  const double* pa = &coords_[a * config_.dims];
  const double* pb = &coords_[b * config_.dims];
  double s = 0.0;
  for (std::size_t d = 0; d < config_.dims; ++d) {
    const double diff = pa[d] - pb[d];
    s += diff * diff;
  }
  return s;
}

void Streamcluster::setup(cudalite::Runtime& rt) {
  // Initially every point is assigned to centre 0.
  assign_cost_.resize(config_.points);
  for (std::size_t i = 0; i < config_.points; ++i) assign_cost_[i] = dist2(i, 0);
  cand_cost_.assign(config_.points, 0.0);
  dev_coords_ = rt.alloc<double>(coords_.size());
  rt.memcpy_h2d(dev_coords_, coords_);
  ran_ = false;
}

void Streamcluster::gpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) {
  const std::size_t cand = candidate_for(iter);
  for (std::size_t i = begin; i < end; ++i) cand_cost_[i] = dist2(i, cand);
}

void Streamcluster::cpu_chunk(std::size_t begin, std::size_t end, std::size_t iter) {
  gpu_chunk(begin, end, iter);
}

void Streamcluster::finish_iteration(cudalite::Runtime& rt, std::size_t /*iter*/) {
  if (!rt.compute_enabled()) return;
  // Open the candidate centre if reassignments reduce total cost
  // (a facility cost of 1.0 models the opening penalty).
  constexpr double kFacilityCost = 1.0;
  double gain = -kFacilityCost;
  for (std::size_t i = 0; i < config_.points; ++i) {
    gain += std::max(0.0, assign_cost_[i] - cand_cost_[i]);
  }
  if (gain > 0.0) {
    for (std::size_t i = 0; i < config_.points; ++i) {
      assign_cost_[i] = std::min(assign_cost_[i], cand_cost_[i]);
    }
  }
}

void Streamcluster::teardown(cudalite::Runtime& rt) {
  rt.free(dev_coords_);
  final_costs_ = assign_cost_;
  ran_ = true;
}

double Streamcluster::total_cost() const {
  double s = 0.0;
  for (const double c : final_costs_) s += c;
  return s;
}

bool Streamcluster::verify() const {
  if (!ran_) return false;
  // Serial reference of the whole pgain sequence.
  std::vector<double> ref(config_.points);
  for (std::size_t i = 0; i < config_.points; ++i) ref[i] = dist2(i, 0);
  std::vector<double> cand(config_.points);
  constexpr double kFacilityCost = 1.0;
  for (std::size_t it = 0; it < config_.iterations; ++it) {
    const std::size_t c = candidate_for(it);
    double gain = -kFacilityCost;
    for (std::size_t i = 0; i < config_.points; ++i) {
      cand[i] = dist2(i, c);
      gain += std::max(0.0, ref[i] - cand[i]);
    }
    if (gain > 0.0) {
      for (std::size_t i = 0; i < config_.points; ++i) ref[i] = std::min(ref[i], cand[i]);
    }
  }
  if (final_costs_.size() != ref.size()) return false;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (std::fabs(final_costs_[i] - ref[i]) > 1e-12) return false;
  }
  return true;
}

}  // namespace gg::workloads
