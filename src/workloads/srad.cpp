#include "src/workloads/srad.h"

#include <cmath>
#include <utility>

#include "src/common/rng.h"

namespace gg::workloads {

Srad::Srad(SradConfig config) : config_(config) {
  Rng rng(config_.seed);
  const std::size_t n = config_.rows * config_.cols;
  img_in_.resize(n);
  // Speckled image: positive intensities with multiplicative noise.
  for (auto& p : img_in_) p = std::exp(rng.uniform(0.0, 2.0));
  initial_img_ = img_in_;
  img_out_.assign(n, 0.0);
}

IntensityProfile Srad::profile(std::size_t /*iter*/) const { return config_.profile; }

void Srad::setup(cudalite::Runtime& rt) {
  img_in_ = initial_img_;
  img_out_.assign(img_in_.size(), 0.0);
  dev_img_ = rt.alloc<double>(img_in_.size());
  rt.memcpy_h2d(dev_img_, img_in_);
  ran_ = false;
}

void Srad::step_rows(const std::vector<double>& in, std::vector<double>& out,
                     std::size_t begin, std::size_t end) const {
  const std::size_t rows = config_.rows;
  const std::size_t cols = config_.cols;
  auto at = [cols, &in](std::size_t r, std::size_t c) { return in[r * cols + c]; };
  for (std::size_t r = begin; r < end; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double j = at(r, c);
      const double jn = r > 0 ? at(r - 1, c) : j;
      const double js = r + 1 < rows ? at(r + 1, c) : j;
      const double jw = c > 0 ? at(r, c - 1) : j;
      const double je = c + 1 < cols ? at(r, c + 1) : j;
      // Instantaneous coefficient of variation (SRAD's q0 statistic shape).
      const double dn = jn - j, ds = js - j, dw = jw - j, de = je - j;
      const double g2 = (dn * dn + ds * ds + dw * dw + de * de) / (j * j);
      const double l = (dn + ds + dw + de) / j;
      const double num = 0.5 * g2 - (1.0 / 16.0) * l * l;
      const double den = 1.0 + 0.25 * l;
      const double qsq = num / (den * den);
      // Diffusion coefficient, clamped to [0, 1].
      double cdiff = 1.0 / (1.0 + qsq);
      if (cdiff < 0.0) cdiff = 0.0;
      if (cdiff > 1.0) cdiff = 1.0;
      out[r * cols + c] = j + config_.lambda * cdiff * (dn + ds + dw + de);
    }
  }
}

void Srad::gpu_chunk(std::size_t begin, std::size_t end, std::size_t /*iter*/) {
  step_rows(img_in_, img_out_, begin, end);
}

void Srad::cpu_chunk(std::size_t begin, std::size_t end, std::size_t /*iter*/) {
  step_rows(img_in_, img_out_, begin, end);
}

void Srad::finish_iteration(cudalite::Runtime& /*rt*/, std::size_t /*iter*/) {
  std::swap(img_in_, img_out_);
}

void Srad::teardown(cudalite::Runtime& rt) {
  rt.memcpy_h2d(dev_img_, img_in_);
  rt.memcpy_d2h(result_, dev_img_);
  rt.free(dev_img_);
  ran_ = true;
}

bool Srad::verify() const {
  if (!ran_) return false;
  std::vector<double> in = initial_img_;
  std::vector<double> out(in.size(), 0.0);
  for (std::size_t it = 0; it < config_.iterations; ++it) {
    step_rows(in, out, 0, config_.rows);
    std::swap(in, out);
  }
  if (result_.size() != in.size()) return false;
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (std::fabs(result_[i] - in[i]) > 1e-9 * (1.0 + std::fabs(in[i]))) return false;
  }
  return true;
}

}  // namespace gg::workloads
