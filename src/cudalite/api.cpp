#include "src/cudalite/api.h"

#include <cstring>

namespace gg::cudalite {

Runtime::Runtime(sim::Platform& platform, std::size_t pool_workers, bool sync_spin)
    : platform_(&platform), pool_workers_(pool_workers), sync_spin_(sync_spin) {}

ThreadPool& Runtime::pool() {
  if (!pool_) pool_ = std::make_unique<ThreadPool>(pool_workers_);
  return *pool_;
}

void* Runtime::raw_alloc(std::size_t bytes, std::size_t alignment) {
  if (bytes == 0) throw std::invalid_argument("cudalite: zero-byte allocation");
  Allocation a;
  a.bytes = bytes;
  a.storage = std::make_unique<std::byte[]>(bytes + alignment);
  void* p = a.storage.get();
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t aligned = (addr + alignment - 1) & ~(alignment - 1);
  a.aligned = reinterpret_cast<void*>(aligned);
  void* result = a.aligned;
  allocations_.push_back(std::move(a));
  stats_.device_bytes_in_use += bytes;
  stats_.device_bytes_peak = std::max(stats_.device_bytes_peak, stats_.device_bytes_in_use);
  return result;
}

void Runtime::raw_free(void* p, std::size_t bytes) {
  if (p == nullptr) return;
  for (auto it = allocations_.begin(); it != allocations_.end(); ++it) {
    if (it->aligned == p) {
      stats_.device_bytes_in_use -= it->bytes;
      allocations_.erase(it);
      return;
    }
  }
  (void)bytes;
  throw std::invalid_argument("cudalite: free of unknown device pointer");
}

void Runtime::charge_transfer(double bytes, bool h2d) {
  if (h2d) {
    ++stats_.h2d_copies;
    stats_.bytes_h2d += bytes;
  } else {
    ++stats_.d2h_copies;
    stats_.bytes_d2h += bytes;
  }
  const Seconds t = platform_->bus().transfer_time(bytes);
  auto& queue = platform_->queue();
  const Seconds deadline = queue.now() + t;
  // Blocking copy: host spins for the duration unless the CPU is executing
  // its own divided chunk (the copy is issued from the GPU-owner pthread).
  const bool spin = sync_spin_ && !platform_->cpu().busy();
  if (spin) platform_->cpu().set_spinning(true);
  queue.run_until(deadline);
  if (spin) platform_->cpu().set_spinning(false);
}

void Runtime::set_device(std::size_t index) {
  if (index >= platform_->gpu_count()) {
    throw std::out_of_range("cudalite: device index out of range");
  }
  current_device_ = index;
}

Stream Runtime::create_stream() {
  return Stream{std::make_shared<std::size_t>(0), current_device_};
}

bool Runtime::admit_launch(std::size_t device) {
  sim::FaultInjector* faults = platform_->faults();
  if (faults == nullptr) return true;
  for (int attempt = 0;; ++attempt) {
    if (!faults->draw_launch_fail(device)) {
      if (attempt > 0) {
        faults->note(sim::FaultChannel::kLaunch, sim::FaultOutcome::kRetrySucceeded,
                     device);
      }
      return true;
    }
    faults->note(sim::FaultChannel::kLaunch, sim::FaultOutcome::kLaunchFailed, device);
    if (attempt >= tolerance_.max_launch_retries) {
      if (tolerance_.max_launch_retries > 0) {
        faults->note(sim::FaultChannel::kLaunch, sim::FaultOutcome::kRetriesExhausted,
                     device);
      }
      ++stats_.launches_rejected;
      return false;
    }
    ++stats_.launch_retries;
  }
}

bool Runtime::admit_host_task() {
  sim::FaultInjector* faults = platform_->faults();
  if (faults == nullptr) return true;
  for (int attempt = 0;; ++attempt) {
    if (!faults->draw_host_fail()) {
      if (attempt > 0) {
        faults->note(sim::FaultChannel::kHostTask, sim::FaultOutcome::kRetrySucceeded);
      }
      return true;
    }
    faults->note(sim::FaultChannel::kHostTask, sim::FaultOutcome::kHostTaskFailed);
    if (attempt >= tolerance_.max_launch_retries) {
      if (tolerance_.max_launch_retries > 0) {
        faults->note(sim::FaultChannel::kHostTask, sim::FaultOutcome::kRetriesExhausted);
      }
      ++stats_.host_tasks_rejected;
      return false;
    }
    ++stats_.launch_retries;
  }
}

bool Runtime::launch(Stream& stream, Dim3 grid, Dim3 block, const WorkEstimate& estimate,
                     const std::function<void(const ThreadCtx&)>& fn,
                     std::function<void()> on_complete) {
  const std::size_t n_blocks = grid.total();
  const std::size_t threads_per_block = block.total();
  if (n_blocks == 0 || threads_per_block == 0) {
    throw std::invalid_argument("cudalite: empty launch configuration");
  }
  if (!admit_launch(stream.device_)) return false;
  // Real execution: one pool task per block; threads within a block run
  // sequentially (kernels here carry no intra-block synchronization).
  // Model-only launches submit the identical simulated work without running
  // the kernel body.
  if (compute_enabled()) pool().parallel_for(n_blocks, [&](std::size_t flat_block) {
    ThreadCtx ctx;
    ctx.grid_dim = grid;
    ctx.block_dim = block;
    ctx.block_idx.x = static_cast<unsigned>(flat_block % grid.x);
    ctx.block_idx.y = static_cast<unsigned>((flat_block / grid.x) % grid.y);
    ctx.block_idx.z = static_cast<unsigned>(flat_block / (static_cast<std::size_t>(grid.x) * grid.y));
    for (unsigned tz = 0; tz < block.z; ++tz) {
      for (unsigned ty = 0; ty < block.y; ++ty) {
        for (unsigned tx = 0; tx < block.x; ++tx) {
          ctx.thread_idx = Dim3{tx, ty, tz};
          fn(ctx);
        }
      }
    }
  });
  ++stats_.kernels_launched;
  auto counter = stream.outstanding_;
  ++*counter;
  platform_->gpu(stream.device_).submit(estimate.to_kernel_work(),
                                        [counter, cb = std::move(on_complete)] {
                                          --*counter;
                                          if (cb) cb();
                                        });
  return true;
}

bool Runtime::launch_range(Stream& stream, std::size_t n, const WorkEstimate& estimate,
                           const std::function<void(std::size_t, std::size_t)>& fn,
                           std::function<void()> on_complete) {
  if (n == 0) throw std::invalid_argument("cudalite: empty launch_range");
  if (!admit_launch(stream.device_)) return false;
  if (compute_enabled()) pool().parallel_for_chunks(n, fn);
  ++stats_.kernels_launched;
  auto counter = stream.outstanding_;
  ++*counter;
  platform_->gpu(stream.device_).submit(estimate.to_kernel_work(),
                                        [counter, cb = std::move(on_complete)] {
                                          --*counter;
                                          if (cb) cb();
                                        });
  return true;
}

Event Runtime::record_event(Stream& stream) {
  Event ev;
  if (*stream.outstanding_ == 0) {
    ev.state_->complete = true;
    ev.state_->when = platform_->now();
    return ev;
  }
  // Piggy-back on the device FIFO: submit a negligible marker kernel that
  // completes right after the stream's current tail.
  sim::KernelWork marker;
  marker.units = 1.0;
  marker.overhead_per_unit = Seconds{1e-9};
  auto counter = stream.outstanding_;
  ++*counter;
  auto* platform = platform_;
  platform_->gpu(stream.device_).submit(marker, [counter, state = ev.state_, platform] {
    --*counter;
    state->complete = true;
    state->when = platform->now();
  });
  return ev;
}

bool Runtime::host_submit(const sim::CpuWork& work, const std::function<void()>& fn,
                          std::function<void()> on_complete) {
  if (!admit_host_task()) return false;
  if (fn && compute_enabled()) fn();
  ++stats_.host_tasks;
  platform_->cpu().submit(work, std::move(on_complete));
  return true;
}

void Runtime::run_queue_until(const std::function<bool()>& done) {
  auto& queue = platform_->queue();
  auto& cpu = platform_->cpu();
  bool spun = false;
  while (!done()) {
    if (sync_spin_ && !cpu.busy() && !cpu.spinning()) {
      cpu.set_spinning(true);
      spun = true;
    }
    if (!queue.step()) {
      if (spun) cpu.set_spinning(false);
      throw std::logic_error("cudalite: waiting but event queue is empty");
    }
  }
  if (spun) cpu.set_spinning(false);
}

void Runtime::synchronize(Stream& stream) {
  auto counter = stream.outstanding_;
  run_queue_until([counter] { return *counter == 0; });
}

void Runtime::device_synchronize() {
  auto* platform = platform_;
  run_queue_until([platform] {
    if (platform->cpu().busy()) return false;
    for (std::size_t i = 0; i < platform->gpu_count(); ++i) {
      if (platform->gpu(i).busy()) return false;
    }
    return true;
  });
}

}  // namespace gg::cudalite
