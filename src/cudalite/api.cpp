#include "src/cudalite/api.h"

#include <cstring>

namespace gg::cudalite {

Runtime::Runtime(sim::Platform& platform, std::size_t pool_workers, bool sync_spin)
    : platform_(&platform), pool_workers_(pool_workers), sync_spin_(sync_spin) {
  schedulers_.reserve(platform.gpu_count());
  for (std::size_t i = 0; i < platform.gpu_count(); ++i) {
    schedulers_.push_back(std::make_unique<StreamScheduler>(platform.gpu(i),
                                                            platform.copy_engine(i)));
  }
}

RuntimeStats Runtime::stats() const {
  RuntimeStats s = stats_;
  for (std::size_t i = 0; i < platform_->gpu_count(); ++i) {
    s.overlapped_seconds += platform_->copy_engine(i).counters().overlap_integral;
  }
  for (const auto& sched : schedulers_) {
    s.peak_stream_depth = std::max<std::uint64_t>(s.peak_stream_depth,
                                                  sched->peak_stream_depth());
  }
  return s;
}

ThreadPool& Runtime::pool() {
  if (!pool_) pool_ = std::make_unique<ThreadPool>(pool_workers_);
  return *pool_;
}

void* Runtime::raw_alloc(std::size_t bytes, std::size_t alignment) {
  if (bytes == 0) throw std::invalid_argument("cudalite: zero-byte allocation");
  Allocation a;
  a.bytes = bytes;
  a.storage = std::make_unique<std::byte[]>(bytes + alignment);
  void* p = a.storage.get();
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t aligned = (addr + alignment - 1) & ~(alignment - 1);
  a.aligned = reinterpret_cast<void*>(aligned);
  void* result = a.aligned;
  allocations_.push_back(std::move(a));
  stats_.device_bytes_in_use += bytes;
  stats_.device_bytes_peak = std::max(stats_.device_bytes_peak, stats_.device_bytes_in_use);
  return result;
}

void Runtime::raw_free(void* p, std::size_t bytes) {
  if (p == nullptr) return;
  for (auto it = allocations_.begin(); it != allocations_.end(); ++it) {
    if (it->aligned == p) {
      stats_.device_bytes_in_use -= it->bytes;
      allocations_.erase(it);
      return;
    }
  }
  (void)bytes;
  throw std::invalid_argument("cudalite: free of unknown device pointer");
}

void Runtime::charge_transfer(std::uint64_t bytes, bool h2d) {
  if (h2d) {
    ++stats_.h2d_copies;
    stats_.bytes_h2d += bytes;
  } else {
    ++stats_.d2h_copies;
    stats_.bytes_d2h += bytes;
  }
  auto& queue = platform_->queue();
  // Blocking copy: host spins for the duration unless the CPU is executing
  // its own divided chunk (the copy is issued from the GPU-owner pthread).
  const bool spin = sync_spin_ && !platform_->cpu().busy();
  if (spin) platform_->cpu().set_spinning(true);
  // The transfer rides the same DMA engine as async copies (FIFO behind any
  // in-flight ones); on an idle engine it completes at exactly the
  // synchronous stack's `now + transfer_time` instant.
  bool done = false;
  platform_->copy_engine(current_device_)
      .submit(static_cast<double>(bytes), [&done] { done = true; });
  while (!done) {
    if (!queue.step()) {
      if (spin) platform_->cpu().set_spinning(false);
      throw std::logic_error("cudalite: blocking copy but event queue is empty");
    }
  }
  // Fire co-timed events the synchronous run_until(deadline) would have
  // fired before returning control to the host.
  queue.run_until(queue.now());
  if (spin) platform_->cpu().set_spinning(false);
}

void Runtime::enqueue_kernel(Stream& stream, const sim::KernelWork& work,
                             std::function<void()> on_complete) {
  auto s = stream.state_;
  StreamScheduler* scheduler = schedulers_[s->device].get();
  StreamOp op;
  op.kind = StreamOp::Kind::kKernel;
  op.work = work;
  op.on_complete = [scheduler, s, cb = std::move(on_complete)] {
    --s->in_flight_kernel;
    --s->incomplete;
    scheduler->pump(s);
    if (cb) cb();
  };
  scheduler->enqueue(s, std::move(op));
}

void Runtime::enqueue_copy(Stream& stream, std::uint64_t bytes, bool h2d,
                           std::function<void()> on_complete) {
  if (h2d) {
    ++stats_.h2d_copies;
    stats_.bytes_h2d += bytes;
  } else {
    ++stats_.d2h_copies;
    stats_.bytes_d2h += bytes;
  }
  ++stats_.async_copies;
  auto s = stream.state_;
  StreamScheduler* scheduler = schedulers_[s->device].get();
  StreamOp op;
  op.kind = StreamOp::Kind::kCopy;
  op.bytes = static_cast<double>(bytes);
  op.on_complete = [scheduler, s, cb = std::move(on_complete)] {
    --s->in_flight_copy;
    --s->incomplete;
    scheduler->pump(s);
    if (cb) cb();
  };
  scheduler->enqueue(s, std::move(op));
}

void Runtime::stream_wait_event(Stream& stream, const Event& event) {
  auto s = stream.state_;
  StreamOp op;
  op.kind = StreamOp::Kind::kWaitEvent;
  op.event = event.state_;
  schedulers_[s->device]->enqueue(s, std::move(op));
}

void Runtime::set_device(std::size_t index) {
  if (index >= platform_->gpu_count()) {
    throw std::out_of_range("cudalite: device index out of range");
  }
  current_device_ = index;
}

Stream Runtime::create_stream() {
  return Stream{schedulers_[current_device_]->create_stream(current_device_)};
}

bool Runtime::admit_launch(std::size_t device) {
  sim::FaultInjector* faults = platform_->faults();
  if (faults == nullptr) return true;
  for (int attempt = 0;; ++attempt) {
    if (!faults->draw_launch_fail(device)) {
      if (attempt > 0) {
        faults->note(sim::FaultChannel::kLaunch, sim::FaultOutcome::kRetrySucceeded,
                     device);
      }
      return true;
    }
    faults->note(sim::FaultChannel::kLaunch, sim::FaultOutcome::kLaunchFailed, device);
    if (attempt >= tolerance_.max_launch_retries) {
      if (tolerance_.max_launch_retries > 0) {
        faults->note(sim::FaultChannel::kLaunch, sim::FaultOutcome::kRetriesExhausted,
                     device);
      }
      ++stats_.launches_rejected;
      return false;
    }
    ++stats_.launch_retries;
  }
}

bool Runtime::admit_host_task() {
  sim::FaultInjector* faults = platform_->faults();
  if (faults == nullptr) return true;
  for (int attempt = 0;; ++attempt) {
    if (!faults->draw_host_fail()) {
      if (attempt > 0) {
        faults->note(sim::FaultChannel::kHostTask, sim::FaultOutcome::kRetrySucceeded);
      }
      return true;
    }
    faults->note(sim::FaultChannel::kHostTask, sim::FaultOutcome::kHostTaskFailed);
    if (attempt >= tolerance_.max_launch_retries) {
      if (tolerance_.max_launch_retries > 0) {
        faults->note(sim::FaultChannel::kHostTask, sim::FaultOutcome::kRetriesExhausted);
      }
      ++stats_.host_tasks_rejected;
      return false;
    }
    ++stats_.launch_retries;
  }
}

bool Runtime::launch(Stream& stream, Dim3 grid, Dim3 block, const WorkEstimate& estimate,
                     const std::function<void(const ThreadCtx&)>& fn,
                     std::function<void()> on_complete) {
  const std::size_t n_blocks = grid.total();
  const std::size_t threads_per_block = block.total();
  if (n_blocks == 0 || threads_per_block == 0) {
    throw std::invalid_argument("cudalite: empty launch configuration");
  }
  if (!admit_launch(stream.device())) return false;
  // Real execution: one pool task per block; threads within a block run
  // sequentially (kernels here carry no intra-block synchronization).
  // Model-only launches submit the identical simulated work without running
  // the kernel body.
  if (compute_enabled()) pool().parallel_for(n_blocks, [&](std::size_t flat_block) {
    ThreadCtx ctx;
    ctx.grid_dim = grid;
    ctx.block_dim = block;
    ctx.block_idx.x = static_cast<unsigned>(flat_block % grid.x);
    ctx.block_idx.y = static_cast<unsigned>((flat_block / grid.x) % grid.y);
    ctx.block_idx.z = static_cast<unsigned>(flat_block / (static_cast<std::size_t>(grid.x) * grid.y));
    for (unsigned tz = 0; tz < block.z; ++tz) {
      for (unsigned ty = 0; ty < block.y; ++ty) {
        for (unsigned tx = 0; tx < block.x; ++tx) {
          ctx.thread_idx = Dim3{tx, ty, tz};
          fn(ctx);
        }
      }
    }
  });
  ++stats_.kernels_launched;
  enqueue_kernel(stream, estimate.to_kernel_work(), std::move(on_complete));
  return true;
}

bool Runtime::launch_range(Stream& stream, std::size_t n, const WorkEstimate& estimate,
                           const std::function<void(std::size_t, std::size_t)>& fn,
                           std::function<void()> on_complete) {
  if (n == 0) throw std::invalid_argument("cudalite: empty launch_range");
  if (!admit_launch(stream.device())) return false;
  if (compute_enabled()) pool().parallel_for_chunks(n, fn);
  ++stats_.kernels_launched;
  enqueue_kernel(stream, estimate.to_kernel_work(), std::move(on_complete));
  return true;
}

Event Runtime::record_event(Stream& stream) {
  Event ev;
  auto s = stream.state_;
  if (s->incomplete == 0) {
    ev.state_->complete = true;
    ev.state_->when = platform_->now();
    return ev;
  }
  // Piggy-back on the device FIFO: a negligible marker kernel, stream-ordered
  // behind everything enqueued so far (the scheduler holds it back while any
  // prior copy is pending or in flight).
  sim::KernelWork marker;
  marker.units = 1.0;
  marker.overhead_per_unit = Seconds{1e-9};
  StreamScheduler* scheduler = schedulers_[s->device].get();
  auto* platform = platform_;
  StreamOp op;
  op.kind = StreamOp::Kind::kRecordEvent;
  op.work = marker;
  op.on_complete = [scheduler, s, state = ev.state_, platform] {
    --s->in_flight_kernel;
    --s->incomplete;
    state->complete = true;
    state->when = platform->now();
    scheduler->notify_event_complete(*state);
    scheduler->pump(s);
  };
  scheduler->enqueue(s, std::move(op));
  return ev;
}

bool Runtime::host_submit(const sim::CpuWork& work, const std::function<void()>& fn,
                          std::function<void()> on_complete) {
  if (!admit_host_task()) return false;
  if (fn && compute_enabled()) fn();
  ++stats_.host_tasks;
  platform_->cpu().submit(work, std::move(on_complete));
  return true;
}

void Runtime::run_queue_until(const std::function<bool()>& done) {
  auto& queue = platform_->queue();
  auto& cpu = platform_->cpu();
  bool spun = false;
  while (!done()) {
    if (sync_spin_ && !cpu.busy() && !cpu.spinning()) {
      cpu.set_spinning(true);
      spun = true;
    }
    if (!queue.step()) {
      if (spun) cpu.set_spinning(false);
      throw std::logic_error("cudalite: waiting but event queue is empty");
    }
  }
  if (spun) cpu.set_spinning(false);
}

void Runtime::synchronize(Stream& stream) {
  auto s = stream.state_;
  run_queue_until([s] { return s->incomplete == 0; });
}

void Runtime::device_synchronize() {
  auto* platform = platform_;
  run_queue_until([platform] {
    if (platform->cpu().busy()) return false;
    for (std::size_t i = 0; i < platform->gpu_count(); ++i) {
      if (platform->gpu(i).busy()) return false;
      if (platform->copy_engine(i).busy()) return false;
    }
    return true;
  });
}

}  // namespace gg::cudalite
