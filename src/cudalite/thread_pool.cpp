#include "src/cudalite/thread_pool.h"

#include <algorithm>
#include <exception>

namespace gg::cudalite {

ThreadPool::ThreadPool(std::size_t workers) {
  std::size_t n = workers ? workers : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  done_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

std::size_t ThreadPool::chunk_count(std::size_t n) const {
  if (n == 0) return 0;
  // 4 chunks per worker bounds tail imbalance without oversubscribing.
  const std::size_t target = worker_count() * 4;
  return std::min(n, std::max<std::size_t>(1, target));
}

void ThreadPool::run_chunks(const std::shared_ptr<Batch>& batch) {
  // Pull chunks until the batch is exhausted.  Whoever retires the last
  // chunk clears `current_` and wakes the waiters.
  for (;;) {
    const std::size_t chunk = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= batch->chunks) return;
    try {
      batch->run_chunk(chunk);
    } catch (...) {
      std::lock_guard<std::mutex> lock(batch->error_mutex);
      if (!batch->error) batch->error = std::current_exception();
    }
    if (batch->done.fetch_add(1, std::memory_order_acq_rel) + 1 == batch->chunks) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (current_ == batch) current_.reset();
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return shutdown_ || current_ != nullptr; });
      if (shutdown_) return;
      batch = current_;  // shared ownership keeps the batch alive for us
    }
    run_chunks(batch);
    // Park until this batch stops being current so a fast worker doesn't
    // spin on an exhausted batch.
    {
      std::unique_lock<std::mutex> lock(mutex_);
      done_cv_.wait(lock, [this, &batch] { return shutdown_ || current_ != batch; });
      if (shutdown_) return;
    }
  }
}

void ThreadPool::parallel_chunk_indices(
    std::size_t n, const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = chunk_count(n);
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;

  auto batch = std::make_shared<Batch>();
  batch->chunks = chunks;
  batch->run_chunk = [&fn, base, extra](std::size_t chunk) {
    // First `extra` chunks get one extra element; offsets are closed-form.
    const std::size_t begin = chunk * base + std::min(chunk, extra);
    const std::size_t end = begin + base + (chunk < extra ? 1 : 0);
    fn(chunk, begin, end);
  };

  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = batch;
  }
  work_cv_.notify_all();

  // The submitting thread participates too, then waits for stragglers.
  run_chunks(batch);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&batch] {
      return batch->done.load(std::memory_order_acquire) == batch->chunks;
    });
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  parallel_chunk_indices(n, [&fn](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::parallel_for_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  parallel_chunk_indices(n, [&fn](std::size_t, std::size_t begin, std::size_t end) {
    fn(begin, end);
  });
}

}  // namespace gg::cudalite
