// Per-device stream scheduler: issues from multiple in-order streams into
// the device's kernel FIFO and DMA copy-engine FIFO.
//
// Each stream is a deque of pending ops (kernels, async copies, event
// records, event waits) plus in-flight counters split by engine.  The issue
// rule preserves per-stream ordering while exposing cross-engine overlap:
//
//   * the head op may issue while same-engine ops from this stream are in
//     flight (the target FIFO serializes them in order anyway), but must
//     wait for in-flight ops on the OTHER engine — an H2D copy cannot pass a
//     kernel of its own stream, and vice versa;
//   * a kWaitEvent op blocks the head until its event completes, expressing
//     cross-stream dependency edges without blocking the host.
//
// Cross-stream arbitration needs no extra policy: both FIFOs are themselves
// in-order, so submission order (deterministic: host program order plus
// simulated completion order) decides interleaving — one seed, one schedule.
//
// Ops carry their full completion callback pre-built at enqueue time
// (bookkeeping + user callback fused into one closure), so the GG_HOT issue
// path `pump` moves closures into the FIFOs without allocating.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/annotations.h"
#include "src/sim/copy_engine.h"
#include "src/sim/gpu_device.h"

namespace gg::cudalite {

class StreamScheduler;
struct StreamState;

/// Shared completion state behind cudalite::Event.  `waiters` holds the
/// streams whose head is a wait on this event; completion pumps them.
struct EventState {
  bool complete{false};
  Seconds when{0.0};
  std::vector<std::pair<StreamScheduler*, std::shared_ptr<StreamState>>> waiters;
};

/// One enqueued stream operation.
struct StreamOp {
  enum class Kind : std::uint8_t { kKernel, kCopy, kRecordEvent, kWaitEvent };
  Kind kind{Kind::kKernel};
  /// kKernel / kRecordEvent: the work submitted to the GPU FIFO.
  sim::KernelWork work{};
  /// kCopy: simulated bytes submitted to the copy-engine FIFO.
  double bytes{0.0};
  /// Pre-built completion closure (bookkeeping + user callback).
  std::function<void()> on_complete;
  /// kWaitEvent: the dependency edge.
  std::shared_ptr<EventState> event;
};

/// Per-stream in-order state, shared by Stream handles and the scheduler.
struct StreamState {
  std::size_t device{0};
  /// Ops enqueued and not yet completed (waits count until popped).
  std::size_t incomplete{0};
  /// Issued-but-uncompleted ops, split by target engine.
  std::size_t in_flight_kernel{0};
  std::size_t in_flight_copy{0};
  std::deque<StreamOp> pending;
  /// True while this stream sits in some event's `waiters` list (the head is
  /// a blocked kWaitEvent).  Guards against duplicate registration when
  /// later enqueues re-pump a stream already parked on the same event;
  /// cleared by notify_event_complete before the wake-up pump.
  bool wait_registered{false};
  /// Deepest `pending` ever got — the per-stream queue-depth signal.
  std::size_t peak_pending{0};
};

class StreamScheduler {
 public:
  StreamScheduler(sim::GpuDevice& gpu, sim::CopyEngine& copy)
      : gpu_(&gpu), copy_(&copy) {}

  StreamScheduler(const StreamScheduler&) = delete;
  StreamScheduler& operator=(const StreamScheduler&) = delete;

  /// Register a fresh in-order stream bound to `device`.
  [[nodiscard]] std::shared_ptr<StreamState> create_stream(std::size_t device) {
    auto s = std::make_shared<StreamState>();
    s->device = device;
    return s;
  }

  /// Append an op to the stream and issue as far as ordering allows.
  void enqueue(const std::shared_ptr<StreamState>& s, StreamOp op);

  /// Event completed: re-pump every stream whose head waits on it.
  void notify_event_complete(EventState& event);

  /// Issue loop: drain the stream's pending deque into the FIFOs until the
  /// head is blocked (cross-engine in-flight op or incomplete event).
  void pump(const std::shared_ptr<StreamState>& s);

  /// Deepest any of this scheduler's streams ever queued.
  [[nodiscard]] std::size_t peak_stream_depth() const { return peak_depth_; }

 private:
  sim::GpuDevice* gpu_;
  sim::CopyEngine* copy_;
  std::size_t peak_depth_{0};
};

}  // namespace gg::cudalite
