// cudalite: a CUDA-3.2-style host runtime bound to the simulated platform.
//
// The paper's workload-division tier is plain application code: pthreads that
// launch CUDA kernels on the GPU and worker kernels on the CPU cores, with the
// data size of every launch adjustable per iteration.  cudalite reproduces
// that programming structure offline:
//
//  * kernels REALLY execute (on a host thread pool) so results can be
//    validated, and
//  * every launch carries a `WorkEstimate` that drives the simulated GPU's
//    timing/energy model, so controllers observe realistic signals.
//
// Synchronous semantics follow CUDA 3.2 on a GeForce 8800: one kernel at a
// time per device, blocking memcpys, and busy-wait synchronization (the host
// spins at 100 % CPU while waiting — the behaviour that defeats the ondemand
// governor in Section VII-A).
//
// On top of that baseline the runtime also exposes the asynchronous stack
// (the hypothetical one discussed with Fig. 6c, now real): per-device
// StreamSchedulers issue from multiple in-order streams into the kernel FIFO
// and the DMA copy-engine FIFO, `memcpy_h2d_async`/`memcpy_d2h_async`
// overlap transfers with kernel execution in simulated time, and
// `stream_wait_event` expresses cross-stream dependency edges.  Real data
// still moves eagerly at enqueue, in host program order — a stronger
// guarantee than pinned-memory cudaMemcpyAsync, which keeps verification
// simple while the simulated schedule overlaps.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/cudalite/stream_scheduler.h"
#include "src/cudalite/thread_pool.h"
#include "src/sim/platform.h"

namespace gg::cudalite {

/// CUDA-style 3D extent.
struct Dim3 {
  unsigned x{1};
  unsigned y{1};
  unsigned z{1};
  [[nodiscard]] std::size_t total() const {
    return static_cast<std::size_t>(x) * y * z;
  }
};

/// Per-thread launch context (flattened helpers provided for 1D kernels).
struct ThreadCtx {
  Dim3 grid_dim;
  Dim3 block_dim;
  Dim3 block_idx;
  Dim3 thread_idx;

  /// Flat global thread id for 1D launches.
  [[nodiscard]] std::size_t global_id() const {
    const std::size_t block = static_cast<std::size_t>(block_idx.z) * grid_dim.y * grid_dim.x +
                              static_cast<std::size_t>(block_idx.y) * grid_dim.x + block_idx.x;
    const std::size_t thread =
        static_cast<std::size_t>(thread_idx.z) * block_dim.y * block_dim.x +
        static_cast<std::size_t>(thread_idx.y) * block_dim.x + thread_idx.x;
    return block * block_dim.total() + thread;
  }
};

/// Work metrics of one launch, consumed by the GPU timing/energy model.
/// Profiles in `workloads/` compute these from problem sizes.
struct WorkEstimate {
  double units{1.0};
  double core_cycles_per_unit{0.0};
  double mem_bytes_per_unit{0.0};
  double overhead_per_unit_s{0.0};

  [[nodiscard]] sim::KernelWork to_kernel_work() const {
    return sim::KernelWork{units, core_cycles_per_unit, mem_bytes_per_unit,
                           Seconds{overhead_per_unit_s}};
  }
};

class Runtime;

/// What a launch really executes.
///
///  * kFull — kernels and host chunks run on the pool and memcpys move real
///    bytes (the default; results can be verified against scalar references).
///  * kModelOnly — the real computation and data movement are skipped while
///    EVERY simulated side effect (work submission, transfer charges, fault
///    draws, completion callbacks) happens identically.  Simulated timing,
///    energy and controller decisions are bit-identical to kFull by
///    construction, because real kernel output never feeds the model.  This
///    is the cell-stepping mode of the batched campaign engine, which
///    memoizes one kFull execution per workload for verification instead.
enum class ComputeMode {
  kFull,
  kModelOnly,
};

/// Typed handle to device memory.  Device memory is owned by the Runtime and
/// freed when the Runtime dies (or via Runtime::free).
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool valid() const { return data_ != nullptr; }

  /// Raw device-side pointer: cudalite kernels may touch device memory
  /// directly (they run on the host), mirroring `__global__` code
  /// dereferencing device pointers.
  [[nodiscard]] T* data() const { return data_; }
  [[nodiscard]] T& operator[](std::size_t i) const { return data_[i]; }

 private:
  friend class Runtime;
  DeviceBuffer(T* data, std::size_t size) : data_(data), size_(size) {}
  T* data_{nullptr};
  std::size_t size_{0};
};

/// In-order execution stream backed by the per-device StreamScheduler: ops
/// enqueue in host program order and issue into the kernel/copy-engine FIFOs
/// as far as ordering allows.  A stream is bound to the device that was
/// current when it was created, CUDA-style.
class Stream {
 public:
  /// Ops enqueued to this stream and not yet completed (in simulated time).
  [[nodiscard]] std::size_t outstanding() const { return state_->incomplete; }
  [[nodiscard]] std::size_t device() const { return state_->device; }
  /// Deepest the pending-op queue ever got (per-stream depth signal).
  [[nodiscard]] std::size_t peak_pending() const { return state_->peak_pending; }

 private:
  friend class Runtime;
  explicit Stream(std::shared_ptr<StreamState> state) : state_(std::move(state)) {}
  std::shared_ptr<StreamState> state_;
};

/// Timestamp marker, CUDA-event style: records simulated completion time.
/// Streams can wait on it (`Runtime::stream_wait_event`) without blocking
/// the host.
class Event {
 public:
  [[nodiscard]] bool complete() const { return state_->complete; }
  /// Simulated time the event fired; throws if not complete.
  [[nodiscard]] Seconds time() const {
    if (!state_->complete) throw std::logic_error("Event: not complete");
    return state_->when;
  }

 private:
  friend class Runtime;
  Event() : state_(std::make_shared<EventState>()) {}
  std::shared_ptr<EventState> state_;
};

/// Runtime statistics (for tests and the characterization bench).
struct RuntimeStats {
  std::uint64_t kernels_launched{0};
  std::uint64_t host_tasks{0};
  std::uint64_t h2d_copies{0};
  std::uint64_t d2h_copies{0};
  /// Simulated bytes moved, exact integer accounting: doubles silently lose
  /// precision past 2^53 bytes on long streaming runs.
  std::uint64_t bytes_h2d{0};
  std::uint64_t bytes_d2h{0};
  /// Copies issued through the asynchronous stream API.
  std::uint64_t async_copies{0};
  /// Seconds a DMA transfer was in flight while a kernel executed, summed
  /// over every device's copy engine (filled by stats()).
  double overlapped_seconds{0.0};
  /// Deepest any stream's pending-op queue ever got (filled by stats()).
  std::uint64_t peak_stream_depth{0};
  std::size_t device_bytes_in_use{0};
  std::size_t device_bytes_peak{0};
  /// Fault-layer accounting: transient failures re-drawn within a launch
  /// call, and launches/host submissions that failed for good.
  std::uint64_t launch_retries{0};
  std::uint64_t launches_rejected{0};
  std::uint64_t host_tasks_rejected{0};
};

/// Tolerance the launch paths apply when the platform injects faults
/// (see sim/fault.h).  Default zero: a transient fault surfaces to the
/// caller immediately — the perfect-platform behaviour when no injector is
/// installed, and the un-hardened behaviour when one is.
struct FaultTolerance {
  /// Immediate re-tries of a transiently rejected launch / host submission.
  int max_launch_retries{0};
  /// Allow `ProfiledWorkload` to route a failed side's item range to the
  /// surviving side for the iteration.
  bool reroute_failed_side{false};
};

class Runtime {
 public:
  /// Bind to a platform.  `pool_workers` = 0 picks hardware concurrency.
  /// `sync_spin` models CUDA 3.2 blocking synchronization (host spins at
  /// 100 % while waiting for the GPU); set false for the hypothetical
  /// asynchronous stack discussed with Fig. 6c.
  explicit Runtime(sim::Platform& platform, std::size_t pool_workers = 0,
                   bool sync_spin = true);

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] sim::Platform& platform() { return *platform_; }
  /// The host execution pool.  Created on first use so model-only runtimes
  /// never pay the worker-thread spawn.
  [[nodiscard]] ThreadPool& pool();
  /// Counters valid as of now: the copy-engine overlap and stream-depth
  /// fields are derived from the platform/schedulers at call time.
  [[nodiscard]] RuntimeStats stats() const;
  [[nodiscard]] bool sync_spin() const { return sync_spin_; }
  void set_sync_spin(bool v) { sync_spin_ = v; }
  [[nodiscard]] ComputeMode compute_mode() const { return compute_mode_; }
  void set_compute_mode(ComputeMode mode) { compute_mode_ = mode; }
  /// True when real computation runs (kFull).  Workloads consult this before
  /// doing host-side data work whose only consumer is verify().
  [[nodiscard]] bool compute_enabled() const {
    return compute_mode_ == ComputeMode::kFull;
  }
  [[nodiscard]] const FaultTolerance& fault_tolerance() const { return tolerance_; }
  void set_fault_tolerance(const FaultTolerance& t) { tolerance_ = t; }

  // --- Device selection (cudaSetDevice-style) ------------------------------
  [[nodiscard]] std::size_t device_count() const { return platform_->gpu_count(); }
  /// Select the device subsequent create_stream calls bind to.
  void set_device(std::size_t index);
  [[nodiscard]] std::size_t current_device() const { return current_device_; }

  // --- Device memory ------------------------------------------------------
  template <typename T>
  DeviceBuffer<T> alloc(std::size_t count) {
    void* p = raw_alloc(count * sizeof(T), alignof(T));
    return DeviceBuffer<T>{static_cast<T*>(p), count};
  }
  template <typename T>
  void free(DeviceBuffer<T>& buf) {
    raw_free(buf.data(), buf.size() * sizeof(T));
    buf = DeviceBuffer<T>{};
  }

  /// Blocking host-to-device copy: copies bytes and advances simulated time
  /// by the bus transfer duration (host spins meanwhile, if sync_spin).
  template <typename T>
  void memcpy_h2d(DeviceBuffer<T>& dst, const T* src, std::size_t count) {
    check_range(dst, count, "memcpy_h2d");
    if (compute_enabled()) std::copy(src, src + count, dst.data());
    charge_transfer(count * sizeof(T), /*h2d=*/true);
  }
  template <typename T>
  void memcpy_h2d(DeviceBuffer<T>& dst, const std::vector<T>& src) {
    memcpy_h2d(dst, src.data(), src.size());
  }
  template <typename T>
  void memcpy_d2h(T* dst, const DeviceBuffer<T>& src, std::size_t count) {
    check_range(src, count, "memcpy_d2h");
    if (compute_enabled()) std::copy(src.data(), src.data() + count, dst);
    charge_transfer(count * sizeof(T), /*h2d=*/false);
  }
  template <typename T>
  void memcpy_d2h(std::vector<T>& dst, const DeviceBuffer<T>& src) {
    dst.resize(src.size());
    memcpy_d2h(dst.data(), src, src.size());
  }

  // --- Asynchronous copies (stream-ordered, overlap with kernels) ----------
  /// Enqueue a host-to-device copy on `stream`.  Real bytes move eagerly at
  /// enqueue (host program order); the SIMULATED transfer advances on the
  /// device's DMA copy engine concurrently with kernel execution, charging
  /// `sim_bytes` bytes when > 0 (decoupling simulated transfer size from the
  /// real buffer, exactly like WorkEstimate decouples kernel cost), else the
  /// real byte count.  `on_complete` fires at the simulated completion.
  template <typename T>
  void memcpy_h2d_async(Stream& stream, DeviceBuffer<T>& dst, const T* src,
                        std::size_t count, double sim_bytes = 0.0,
                        std::function<void()> on_complete = {}) {
    check_range(dst, count, "memcpy_h2d_async");
    if (compute_enabled()) std::copy(src, src + count, dst.data());
    enqueue_copy(stream, effective_bytes(count * sizeof(T), sim_bytes),
                 /*h2d=*/true, std::move(on_complete));
  }
  template <typename T>
  void memcpy_h2d_async(Stream& stream, DeviceBuffer<T>& dst, const std::vector<T>& src,
                        double sim_bytes = 0.0, std::function<void()> on_complete = {}) {
    memcpy_h2d_async(stream, dst, src.data(), src.size(), sim_bytes,
                     std::move(on_complete));
  }
  /// Device-to-host counterpart; same eager-data / simulated-transfer split.
  template <typename T>
  void memcpy_d2h_async(Stream& stream, T* dst, const DeviceBuffer<T>& src,
                        std::size_t count, double sim_bytes = 0.0,
                        std::function<void()> on_complete = {}) {
    check_range(src, count, "memcpy_d2h_async");
    if (compute_enabled()) std::copy(src.data(), src.data() + count, dst);
    enqueue_copy(stream, effective_bytes(count * sizeof(T), sim_bytes),
                 /*h2d=*/false, std::move(on_complete));
  }

  // --- Kernel launch ------------------------------------------------------
  [[nodiscard]] Stream create_stream();

  /// Launch a per-thread kernel: `fn(ctx)` for every thread of the grid.
  /// Computation happens now (host pool); simulated completion is governed by
  /// `estimate`.  Optional `on_complete` fires at the simulated completion.
  /// Returns false when the platform's fault injector rejected the launch
  /// (after `fault_tolerance().max_launch_retries` re-tries): nothing was
  /// executed or submitted, and `on_complete` will never fire.
  bool launch(Stream& stream, Dim3 grid, Dim3 block, const WorkEstimate& estimate,
              const std::function<void(const ThreadCtx&)>& fn,
              std::function<void()> on_complete = {});

  /// Fast path for 1D data-parallel kernels: `fn(begin, end)` over disjoint
  /// index ranges covering [0, n).  Same failure contract as `launch`.
  bool launch_range(Stream& stream, std::size_t n, const WorkEstimate& estimate,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::function<void()> on_complete = {});

  /// Record an event that completes when all work submitted to `stream` so
  /// far has finished (in simulated time).
  [[nodiscard]] Event record_event(Stream& stream);

  /// Make all ops enqueued to `stream` AFTER this call wait (in simulated
  /// time, without blocking the host) until `event` completes — the
  /// cross-stream dependency edge of a pipeline.
  void stream_wait_event(Stream& stream, const Event& event);

  // --- Host-side tasks (the CPU chunk of a divided iteration) -------------
  /// Execute `fn` now on the pool and submit `work` to the simulated CPU;
  /// `on_complete` fires at the simulated completion.  Returns false when
  /// the fault injector rejected the chunk (nothing ran; same contract as
  /// `launch`).
  bool host_submit(const sim::CpuWork& work, const std::function<void()>& fn,
                   std::function<void()> on_complete = {});

  // --- Synchronization ----------------------------------------------------
  /// Block (in simulated time) until the stream drains.
  void synchronize(Stream& stream);
  /// Block until both devices are idle and all submitted work retired.
  void device_synchronize();
  /// Block until `done()` becomes true, driving the event queue; the host
  /// spins (if sync_spin) whenever the CPU is otherwise idle — the join
  /// barrier of the pthreads structure.
  void wait_until(const std::function<bool()>& done) { run_queue_until(done); }

 private:
  void* raw_alloc(std::size_t bytes, std::size_t alignment);
  void raw_free(void* p, std::size_t bytes);
  /// Blocking transfer: submits to the current device's copy engine and
  /// drives the queue until it completes (host spins meanwhile, if
  /// sync_spin).  With an idle engine this reproduces the synchronous
  /// `now + transfer_time` completion instant bit-for-bit.
  void charge_transfer(std::uint64_t bytes, bool h2d);
  /// Stream-ordered transfer: stats + pre-built completion closure into the
  /// scheduler.
  void enqueue_copy(Stream& stream, std::uint64_t bytes, bool h2d,
                    std::function<void()> on_complete);
  void enqueue_kernel(Stream& stream, const sim::KernelWork& work,
                      std::function<void()> on_complete);
  [[nodiscard]] static std::uint64_t effective_bytes(std::size_t real_bytes,
                                                     double sim_bytes) {
    return sim_bytes > 0.0 ? static_cast<std::uint64_t>(sim_bytes)
                           : static_cast<std::uint64_t>(real_bytes);
  }
  template <typename T>
  static void check_range(const DeviceBuffer<T>& buf, std::size_t count, const char* what) {
    if (!buf.valid() || count > buf.size()) {
      throw std::out_of_range(std::string(what) + ": range exceeds device buffer");
    }
  }
  /// Drive the event queue until `done()` is true, managing the spin state.
  void run_queue_until(const std::function<bool()>& done);
  /// Draw the launch-fault channel (with bounded re-tries); true = admit.
  bool admit_launch(std::size_t device);
  bool admit_host_task();

  sim::Platform* platform_;
  std::unique_ptr<ThreadPool> pool_;  // lazy, see pool()
  std::size_t pool_workers_;
  bool sync_spin_;
  ComputeMode compute_mode_{ComputeMode::kFull};
  std::size_t current_device_{0};
  RuntimeStats stats_;
  FaultTolerance tolerance_;
  /// One scheduler per device, created up front (cheap, no threads).
  std::vector<std::unique_ptr<StreamScheduler>> schedulers_;

  struct Allocation {
    std::unique_ptr<std::byte[]> storage;
    void* aligned{nullptr};
    std::size_t bytes{0};
  };
  std::vector<Allocation> allocations_;
};

}  // namespace gg::cudalite
