// NVML / nvidia-smi style monitoring interface.
//
// The paper reads GPU core and memory utilizations with `nvidia-smi`
// (Section VI).  This header reproduces the relevant slice of that interface:
// utilization rates are integer percentages averaged over the window since
// the previous query, exactly how the tool reports them.
//
// On real hardware the query intermittently fails or returns a stale window;
// when a `FaultInjector` is installed on the platform, `try_utilization_rates`
// surfaces those failures the way the driver does: an error status for a
// dropped read (the window keeps accumulating), a repeated value with a
// zero-length window for a stale read, and garbage percentages for a
// corrupted one.  `utilization_rates()` keeps the original perfect-platform
// semantics for callers that predate the fault layer.
#pragma once

#include "src/sim/fault.h"
#include "src/sim/monitor.h"
#include "src/sim/platform.h"

namespace gg::cudalite {

/// Mirrors nvmlUtilization_t: integer percentages.
struct UtilizationRates {
  unsigned gpu{0};     // core part: "GPU busy cycles / total cycles"
  unsigned memory{0};  // memory part: "actual bandwidth / rated peak bandwidth"
};

/// DMA copy-engine activity as integer percentages of the sampling window:
/// `busy` = a transfer was in flight, `overlap` = it ran concurrently with a
/// kernel (overlap <= busy).  The asynchronous-stack signal the WMA tier can
/// fold into its memory-domain view (see WmaParams::observe_copy_engine).
struct CopyEngineRates {
  unsigned busy{0};
  unsigned overlap{0};
};

/// Result status of one monitoring query (the NVML return-code equivalent).
enum class NvmlStatus { kSuccess, kDriverError };

/// One utilization query with enough metadata for a controller to judge it:
/// `window` is the averaging window the rates cover (a zero-length window
/// means the driver served a stale repeat of the previous sample).
struct UtilizationSample {
  UtilizationRates rates{};
  Seconds window{0.0};
  NvmlStatus status{NvmlStatus::kSuccess};
  [[nodiscard]] bool ok() const { return status == NvmlStatus::kSuccess; }
};

/// Clock domains exposed by the management interface.
enum class ClockDomain { kCore, kMemory };

/// Handle to one GPU's management interface.
class NvmlDevice {
 public:
  explicit NvmlDevice(sim::Platform& platform, std::size_t device = 0)
      : platform_(&platform), device_(device),
        sampler_(platform.gpu(device), platform.queue()),
        copy_sampler_(platform.copy_engine(device), platform.queue()),
        last_query_(platform.queue().now()) {}

  /// Utilization averaged since the previous call, as integer percent
  /// (rounded to nearest, saturated to 100).  Perfect-platform path: never
  /// fails, even with a fault injector installed.
  UtilizationRates utilization_rates() {
    const sim::GpuUtilization u = sampler_.sample();
    last_query_ = platform_->queue().now();
    last_rates_ = UtilizationRates{to_percent(u.core), to_percent(u.memory)};
    return last_rates_;
  }

  /// Fallible query: consults the platform's fault injector (if any) and
  /// reports errors / stale windows the way the real driver surfaces them.
  /// Without an injector this returns exactly what `utilization_rates()`
  /// would, with `window` = time since the previous successful query.
  UtilizationSample try_utilization_rates() {
    sim::FaultInjector* faults = platform_->faults();
    if (faults != nullptr) {
      switch (faults->draw_util_fault(device_)) {
        case sim::UtilFault::kDrop:
          // The poll failed; nothing is consumed, so the next successful
          // query averages over the longer window.
          faults->note(sim::FaultChannel::kUtilRead, sim::FaultOutcome::kUtilDropped,
                       device_);
          return UtilizationSample{last_rates_, Seconds{0.0}, NvmlStatus::kDriverError};
        case sim::UtilFault::kStale:
          // The driver served the previous sample again: same values, a
          // window of zero length.
          faults->note(sim::FaultChannel::kUtilRead, sim::FaultOutcome::kUtilStale,
                       device_);
          return UtilizationSample{last_rates_, Seconds{0.0}, NvmlStatus::kSuccess};
        case sim::UtilFault::kCorrupt: {
          // The window advances (the counters were consumed) but the values
          // are garbage.
          faults->note(sim::FaultChannel::kUtilRead, sim::FaultOutcome::kUtilCorrupted,
                       device_);
          const Seconds window = platform_->queue().now() - last_query_;
          (void)sampler_.sample();
          last_query_ = platform_->queue().now();
          const auto [core, mem] = faults->corrupt_utilization(device_);
          last_rates_ = UtilizationRates{core, mem};
          return UtilizationSample{last_rates_, window, NvmlStatus::kSuccess};
        }
        case sim::UtilFault::kNone:
          break;
      }
    }
    const Seconds window = platform_->queue().now() - last_query_;
    return UtilizationSample{utilization_rates(), window, NvmlStatus::kSuccess};
  }

  /// Copy-engine busy/overlap fractions averaged since the previous call,
  /// as integer percent.  A separate sampling window from the utilization
  /// queries; always succeeds (the DMA counters live host-side, so the
  /// fault channels of the utilization poll do not apply).
  CopyEngineRates copy_engine_rates() {
    const sim::CopyEngineUtilization u = copy_sampler_.sample();
    return CopyEngineRates{to_percent(u.busy), to_percent(u.overlap)};
  }

  /// Current clock of a domain in MHz.
  [[nodiscard]] Megahertz clock(ClockDomain domain) const {
    return domain == ClockDomain::kCore ? platform_->gpu(device_).core_frequency()
                                        : platform_->gpu(device_).mem_frequency();
  }

  [[nodiscard]] std::size_t device() const { return device_; }

  /// Serialize the monitoring-window state (sampler baseline, last query
  /// instant, last served rates) so a restored handle reports the exact
  /// windowed averages the saved one would have.
  void save(common::SnapshotWriter& w) const {
    sampler_.save(w);
    copy_sampler_.save(w);
    w.f64(last_query_.get());
    w.u64(last_rates_.gpu);
    w.u64(last_rates_.memory);
  }
  void load(common::SnapshotReader& r) {
    sampler_.load(r);
    copy_sampler_.load(r);
    last_query_ = Seconds{r.f64()};
    last_rates_.gpu = static_cast<unsigned>(r.u64());
    last_rates_.memory = static_cast<unsigned>(r.u64());
  }

 private:
  static unsigned to_percent(double u) {
    const double p = u * 100.0 + 0.5;
    if (p <= 0.0) return 0;
    if (p >= 100.0) return 100;
    return static_cast<unsigned>(p);
  }

  sim::Platform* platform_;
  std::size_t device_{0};
  sim::GpuUtilSampler sampler_;
  sim::CopyEngineSampler copy_sampler_;
  Seconds last_query_{0.0};
  UtilizationRates last_rates_{};
};

}  // namespace gg::cudalite
