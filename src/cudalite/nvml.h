// NVML / nvidia-smi style monitoring interface.
//
// The paper reads GPU core and memory utilizations with `nvidia-smi`
// (Section VI).  This header reproduces the relevant slice of that interface:
// utilization rates are integer percentages averaged over the window since
// the previous query, exactly how the tool reports them.
#pragma once

#include "src/sim/monitor.h"
#include "src/sim/platform.h"

namespace gg::cudalite {

/// Mirrors nvmlUtilization_t: integer percentages.
struct UtilizationRates {
  unsigned gpu{0};     // core part: "GPU busy cycles / total cycles"
  unsigned memory{0};  // memory part: "actual bandwidth / rated peak bandwidth"
};

/// Clock domains exposed by the management interface.
enum class ClockDomain { kCore, kMemory };

/// Handle to one GPU's management interface.
class NvmlDevice {
 public:
  explicit NvmlDevice(sim::Platform& platform, std::size_t device = 0)
      : platform_(&platform), device_(device),
        sampler_(platform.gpu(device), platform.queue()) {}

  /// Utilization averaged since the previous call, as integer percent
  /// (rounded to nearest, saturated to 100).
  UtilizationRates utilization_rates() {
    const sim::GpuUtilization u = sampler_.sample();
    return UtilizationRates{to_percent(u.core), to_percent(u.memory)};
  }

  /// Current clock of a domain in MHz.
  [[nodiscard]] Megahertz clock(ClockDomain domain) const {
    return domain == ClockDomain::kCore ? platform_->gpu(device_).core_frequency()
                                        : platform_->gpu(device_).mem_frequency();
  }

  [[nodiscard]] std::size_t device() const { return device_; }

 private:
  static unsigned to_percent(double u) {
    const double p = u * 100.0 + 0.5;
    if (p <= 0.0) return 0;
    if (p >= 100.0) return 100;
    return static_cast<unsigned>(p);
  }

  sim::Platform* platform_;
  std::size_t device_{0};
  sim::GpuUtilSampler sampler_;
};

}  // namespace gg::cudalite
