#include "src/cudalite/stream_scheduler.h"

#include <algorithm>

namespace gg::cudalite {

void StreamScheduler::enqueue(const std::shared_ptr<StreamState>& s, StreamOp op) {
  ++s->incomplete;
  s->pending.push_back(std::move(op));
  s->peak_pending = std::max(s->peak_pending, s->pending.size());
  peak_depth_ = std::max(peak_depth_, s->peak_pending);
  pump(s);
}

void StreamScheduler::notify_event_complete(EventState& event) {
  // Steal the list before pumping: a pumped stream may hit another wait on
  // the same event and re-register without invalidating this iteration.
  std::vector<std::pair<StreamScheduler*, std::shared_ptr<StreamState>>> waiters =
      std::move(event.waiters);
  event.waiters.clear();
  for (auto& [scheduler, stream] : waiters) {
    stream->wait_registered = false;  // the pump may re-park on another event
    scheduler->pump(stream);
  }
}

GG_HOT void StreamScheduler::pump(const std::shared_ptr<StreamState>& s) {
  while (!s->pending.empty()) {
    StreamOp& head = s->pending.front();
    if (head.kind == StreamOp::Kind::kWaitEvent) {
      if (!head.event->complete) {
        // The event may live on another device's scheduler, so the waiter
        // entry carries `this` for the completion-side pump.  Register at
        // most once: later enqueues re-pump a parked stream, and without the
        // guard every re-pump would push a duplicate entry.
        if (!s->wait_registered) {
          s->wait_registered = true;
          // GG_LINT_ALLOW(hot-alloc): at most one entry per blocked stream
          head.event->waiters.push_back({this, s});
        }
        return;
      }
      s->pending.pop_front();
      --s->incomplete;  // waits complete at pop: nothing issues downstream
      continue;
    }
    const bool kernel_engine = head.kind != StreamOp::Kind::kCopy;
    if (kernel_engine ? s->in_flight_copy != 0 : s->in_flight_kernel != 0) {
      return;  // in-order: cannot pass an in-flight op on the other engine
    }
    StreamOp op = std::move(head);
    s->pending.pop_front();
    if (kernel_engine) {
      ++s->in_flight_kernel;
      // GG_LINT_ALLOW(hot-alloc-transitive): the device FIFOs behind
      // submit() are std::deques whose depth is bounded by the per-stream
      // in-flight window (one op per engine here), so growth amortizes to
      // zero after the first chunk.
      gpu_->submit(op.work, std::move(op.on_complete));
    } else {
      ++s->in_flight_copy;
      // GG_LINT_ALLOW(hot-alloc-transitive): same bounded-FIFO argument as
      // the kernel-engine submit above.
      copy_->submit(op.bytes, std::move(op.on_complete));
    }
  }
}

}  // namespace gg::cudalite
