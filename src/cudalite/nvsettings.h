// nvidia-settings style clock control (the Coolbits path of Section VI).
//
// On the testbed the frequency-scaling daemon drives GPU clocks through
// `nvidia-settings`; this wrapper is the equivalent actuator over the
// simulated device.  Only frequency scaling is available — the GeForce 8800
// exposes no voltage control, which is why the paper's GPU-side savings are
// smaller than CPU DVFS could deliver (Section VII-C).
//
// Real clock writes are not reliable: the driver rejects them under load,
// applies them late, clamps them, or overrides them entirely during a
// thermal-throttle episode.  When a `FaultInjector` is installed,
// `set_clock_levels_checked` surfaces each of those outcomes; the plain
// `set_clock_levels` keeps the fire-and-forget interface (exactly what a
// daemon shelling out to `nvidia-settings` without checking the exit code
// experiences).
#pragma once

#include <cstddef>
#include <utility>

#include "src/sim/fault.h"
#include "src/sim/platform.h"

namespace gg::cudalite {

/// Outcome of one clock write.
enum class ClockWriteStatus {
  kApplied,    ///< Both domains now hold the requested levels.
  kRejected,   ///< The driver refused; clocks unchanged.
  kDelayed,    ///< Accepted but lands only after a latency window.
  kClamped,    ///< Partially applied: each domain moved one level toward the target.
  kThrottled,  ///< A thermal episode pins the clocks; the request is remembered
               ///< and restored when the episode ends.
};

struct ClockWriteResult {
  ClockWriteStatus status{ClockWriteStatus::kApplied};
  /// Levels actually in effect right after the call.
  std::size_t core_level{0};
  std::size_t mem_level{0};
  [[nodiscard]] bool ok() const { return status == ClockWriteStatus::kApplied; }
};

class NvSettings {
 public:
  explicit NvSettings(sim::Platform& platform, std::size_t device = 0)
      : platform_(&platform), device_(device) {}

  /// Enforce a (core level, memory level) pair; levels index the DVFS tables
  /// with 0 = peak.  Fire-and-forget: any failure is silent, like ignoring
  /// the `nvidia-settings` exit code.
  void set_clock_levels(std::size_t core_level, std::size_t mem_level) {
    (void)set_clock_levels_checked(core_level, mem_level);
  }

  /// Enforce a pair and report what actually happened.  Consults the
  /// platform's fault injector (if any); without one the write always
  /// applies, preserving the perfect-platform behaviour bit-for-bit.
  ClockWriteResult set_clock_levels_checked(std::size_t core_level,
                                            std::size_t mem_level) {
    sim::GpuDevice& gpu = platform_->gpu(device_);
    sim::FaultInjector* faults = platform_->faults();
    if (faults != nullptr) {
      // Remember the latest target so a throttle episode restores it.
      faults->note_requested_levels(device_, core_level, mem_level);
      if (faults->throttled(device_)) {
        faults->note(sim::FaultChannel::kClockWrite, sim::FaultOutcome::kClockThrottled,
                     device_);
        return ClockWriteResult{ClockWriteStatus::kThrottled, gpu.core_level(),
                                gpu.mem_level()};
      }
      switch (faults->draw_clock_fault(device_)) {
        case sim::ClockFault::kReject:
          faults->note(sim::FaultChannel::kClockWrite, sim::FaultOutcome::kClockRejected,
                       device_);
          return ClockWriteResult{ClockWriteStatus::kRejected, gpu.core_level(),
                                  gpu.mem_level()};
        case sim::ClockFault::kDelay: {
          faults->note(sim::FaultChannel::kClockWrite, sim::FaultOutcome::kClockDelayed,
                       device_);
          sim::Platform* platform = platform_;
          const std::size_t device = device_;
          faults->schedule_in(faults->config().clock_delay,
                              [platform, device, core_level, mem_level] {
                                sim::FaultInjector* f = platform->faults();
                                // A throttle episode that started meanwhile
                                // wins; the episode end restores the target.
                                if (f != nullptr && f->throttled(device)) return;
                                platform->gpu(device).set_core_level(core_level);
                                platform->gpu(device).set_mem_level(mem_level);
                              });
          return ClockWriteResult{ClockWriteStatus::kDelayed, gpu.core_level(),
                                  gpu.mem_level()};
        }
        case sim::ClockFault::kClamp: {
          faults->note(sim::FaultChannel::kClockWrite, sim::FaultOutcome::kClockClamped,
                       device_);
          gpu.set_core_level(step_toward(gpu.core_level(), core_level));
          gpu.set_mem_level(step_toward(gpu.mem_level(), mem_level));
          const bool done =
              gpu.core_level() == core_level && gpu.mem_level() == mem_level;
          return ClockWriteResult{done ? ClockWriteStatus::kApplied
                                       : ClockWriteStatus::kClamped,
                                  gpu.core_level(), gpu.mem_level()};
        }
        case sim::ClockFault::kNone:
          break;
      }
    }
    gpu.set_core_level(core_level);
    gpu.set_mem_level(mem_level);
    return ClockWriteResult{ClockWriteStatus::kApplied, core_level, mem_level};
  }

  [[nodiscard]] std::pair<std::size_t, std::size_t> clock_levels() const {
    return {platform_->gpu(device_).core_level(), platform_->gpu(device_).mem_level()};
  }

  [[nodiscard]] const sim::DvfsTable& core_table() const {
    return platform_->gpu(device_).core_table();
  }
  [[nodiscard]] const sim::DvfsTable& mem_table() const {
    return platform_->gpu(device_).mem_table();
  }

  [[nodiscard]] std::size_t device() const { return device_; }

 private:
  static std::size_t step_toward(std::size_t current, std::size_t target) {
    if (current < target) return current + 1;
    if (current > target) return current - 1;
    return current;
  }

  sim::Platform* platform_;
  std::size_t device_{0};
};

}  // namespace gg::cudalite
