// nvidia-settings style clock control (the Coolbits path of Section VI).
//
// On the testbed the frequency-scaling daemon drives GPU clocks through
// `nvidia-settings`; this wrapper is the equivalent actuator over the
// simulated device.  Only frequency scaling is available — the GeForce 8800
// exposes no voltage control, which is why the paper's GPU-side savings are
// smaller than CPU DVFS could deliver (Section VII-C).
#pragma once

#include <cstddef>
#include <utility>

#include "src/sim/platform.h"

namespace gg::cudalite {

class NvSettings {
 public:
  explicit NvSettings(sim::Platform& platform, std::size_t device = 0)
      : platform_(&platform), device_(device) {}

  /// Enforce a (core level, memory level) pair; levels index the DVFS tables
  /// with 0 = peak.
  void set_clock_levels(std::size_t core_level, std::size_t mem_level) {
    platform_->gpu(device_).set_core_level(core_level);
    platform_->gpu(device_).set_mem_level(mem_level);
  }

  [[nodiscard]] std::pair<std::size_t, std::size_t> clock_levels() const {
    return {platform_->gpu(device_).core_level(), platform_->gpu(device_).mem_level()};
  }

  [[nodiscard]] const sim::DvfsTable& core_table() const {
    return platform_->gpu(device_).core_table();
  }
  [[nodiscard]] const sim::DvfsTable& mem_table() const {
    return platform_->gpu(device_).mem_table();
  }

  [[nodiscard]] std::size_t device() const { return device_; }

 private:
  sim::Platform* platform_;
  std::size_t device_{0};
};

}  // namespace gg::cudalite
