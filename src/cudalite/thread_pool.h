// Host thread pool backing cudalite kernel execution.
//
// Kernels in this reproduction really compute (results are verified against
// scalar references), so launches need a parallel executor.  The pool provides
// `parallel_for` with static chunking and an ordered map-reduce so floating
// point reductions stay bit-deterministic regardless of worker timing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/thread_annotations.h"

namespace gg::cudalite {

class ThreadPool {
 public:
  /// `workers` = 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool() GG_NO_THREAD_SAFETY_ANALYSIS;  // lock_guard opaque to analysis

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// Run fn(i) for i in [0, n) across the pool; blocks until done.
  /// Exceptions from fn propagate (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Run fn(begin, end) over disjoint chunks covering [0, n); blocks.
  /// Chunk boundaries are deterministic (independent of scheduling).
  void parallel_for_chunks(std::size_t n,
                           const std::function<void(std::size_t, std::size_t)>& fn);

  /// Deterministic reduction: map each chunk to a partial with `map(begin,
  /// end)`, then fold partials in chunk order with `combine`.
  template <typename T>
  T map_reduce(std::size_t n, T init,
               const std::function<T(std::size_t, std::size_t)>& map,
               const std::function<T(T, T)>& combine) {
    const std::size_t chunks = chunk_count(n);
    std::vector<T> partials(chunks, init);
    parallel_chunk_indices(n, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
      partials[chunk] = map(begin, end);
    });
    T acc = init;
    for (const T& p : partials) acc = combine(acc, p);
    return acc;
  }

  /// Number of chunks `parallel_for_chunks`/`map_reduce` will use for n items.
  [[nodiscard]] std::size_t chunk_count(std::size_t n) const;

 private:
  struct Batch {
    std::size_t chunks{0};
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::function<void(std::size_t)> run_chunk;  // takes chunk index
    /// First exception wins; read by the submitter only after the done_cv_
    /// wait establishes a happens-before with every worker.
    std::exception_ptr error GG_GUARDED_BY(error_mutex);
    std::mutex error_mutex;
  };

  /// std::unique_lock / condition_variable juggling is opaque to Clang's
  /// analysis (libstdc++ primitives are unannotated); the GG_GUARDED_BY
  /// contracts still police any new accessor.
  void worker_loop() GG_NO_THREAD_SAFETY_ANALYSIS;
  void run_chunks(const std::shared_ptr<Batch>& batch) GG_NO_THREAD_SAFETY_ANALYSIS;
  void parallel_chunk_indices(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn)
      GG_NO_THREAD_SAFETY_ANALYSIS;

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Shared ownership: workers hold a reference while executing, so the batch
  // outlives the submitting call even if a worker wakes late.
  std::shared_ptr<Batch> current_ GG_GUARDED_BY(mutex_);
  bool shutdown_ GG_GUARDED_BY(mutex_){false};
};

}  // namespace gg::cudalite
